#!/usr/bin/env python3
"""ace-lint: nondeterminism checker for the ACE simulation codebase.

The simulator's reproducibility contract (DESIGN.md, "Determinism &
Reproducibility") says a run is a pure function of its config and seed —
bit-identical across processes, ASLR layouts, and library hash seeds.
This linter statically rejects the constructs that historically break that
contract:

  unordered-iter        iteration over std::unordered_map/unordered_set —
                        visit order depends on hashing/layout, never on the
                        data; any protocol decision or digest fed from such
                        a loop silently becomes run-dependent.
  unordered-container   declaring std::unordered_{map,set} in protocol or
                        simulation code. Keyed lookup is fine, so this is
                        allowed with a justification comment; the point is
                        to force each use to state why iteration order can
                        never leak out of it.
  banned-random         rand()/srand()/std::random_device/std::mt19937 —
                        all randomness must flow through util/rng.h (seeded
                        xoshiro streams).
  banned-clock          wall-clock reads (time(), clock(), gettimeofday,
                        std::chrono::*_clock::now()) — simulation time is
                        EventQueue::now(); wall time differs per run.
  pointer-key           std::map/std::set ordered on a pointer key (or
                        std::less<T*>): iteration order is address order,
                        i.e. allocator/ASLR order.
  addr-compare          relational comparison of two addresses-of — same
                        hazard as pointer-key without the container.
  float-accum-unordered accumulating a floating-point sum inside an
                        (allowlisted) unordered iteration: even when the
                        visit *set* is fixed, FP addition is not
                        associative, so the sum depends on visit order.
  overlay-adjacency-write
                        direct mutation of the overlay's logical adjacency
                        (logical_.add_edge / remove_edge / set_weight /
                        isolate) outside the version-bumping OverlayNetwork
                        mutators. The incremental engine and the query-path
                        snapshot trust topology_version()/global_version()
                        to observe every adjacency change; a bypassing
                        write silently serves stale cached closures and
                        snapshots.
  bad-allow             an allow-comment with no justification text, or
                        naming an unknown rule.

Suppression: put, on the flagged line or the line above it,

    // ace-lint: allow(<rule>): <justification>

The justification is mandatory — an empty one is itself an error. An
allowance covers exactly one source line.

Usage:
    ace_lint.py [--root DIR] [paths...]   # default paths: src examples
    ace_lint.py --self-test               # run the embedded fixture suite

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

RULES = {
    "unordered-iter": "iteration over an unordered container",
    "unordered-container": "unordered container in protocol/simulation code",
    "banned-random": "randomness source outside util/rng",
    "banned-clock": "wall-clock read in simulation code",
    "pointer-key": "ordered container keyed on a pointer",
    "addr-compare": "relational comparison of addresses",
    "float-accum-unordered": "float accumulation inside unordered iteration",
    "overlay-adjacency-write":
        "overlay adjacency mutated without a version bump",
    "bad-allow": "malformed ace-lint allow comment",
}

# Paths (relative, '/'-separated) exempt from specific rules.
BANNED_RANDOM_EXEMPT = ("src/util/rng.h", "src/util/rng.cpp")
BANNED_CLOCK_EXEMPT = ("src/util/logging.h", "src/util/logging.cpp")
# Unordered/pointer/float rules guard protocol + simulation code only;
# tests and benches may iterate however they like for assertions/reporting.
STRUCTURAL_RULE_PREFIXES = ("src/", "examples/")

ALLOW_RE = re.compile(
    r"//\s*ace-lint:\s*allow\(([a-z-]+)\)\s*(?::\s*(.*\S))?\s*$")

DECL_UNORDERED_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{()]*?>\s*"
    r"([A-Za-z_]\w*)\s*[;{=]")
RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(\s*[^;()]*?:\s*([A-Za-z_][\w.>\-]*)\s*\)")
ITER_FOR_RE = re.compile(
    r"\bfor\s*\(\s*[^;]*=\s*([A-Za-z_]\w*)(?:\.|->)c?begin\s*\(")
BANNED_RANDOM_RE = re.compile(
    r"\bstd::random_device\b|\bstd::mt19937(?:_64)?\b|"
    r"(?<![\w:])s?rand\s*\(")
BANNED_CLOCK_RE = re.compile(
    r"\bstd::chrono::(?:system|steady|high_resolution)_clock::now\b|"
    r"\bgettimeofday\s*\(|(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0|&\w+)?\s*\)|"
    r"(?<![\w:.])clock\s*\(\s*\)")
POINTER_KEY_RE = re.compile(
    r"\bstd::(?:map|set|multimap|multiset)\s*<\s*(?:[\w:]|\s)+\*|"
    r"\bstd::less\s*<\s*(?:[\w:]|\s)+\*\s*>")
ADDR_COMPARE_RE = re.compile(
    r"&\s*[A-Za-z_][\w.\[\]>\-]*\s*(?:<|>|<=|>=)\s*&\s*[A-Za-z_]")
FLOAT_ACCUM_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\+=")
# Direct writes to the overlay's logical adjacency. `logical_` is the
# OverlayNetwork member; any mutating call on it must go through (or be)
# a version-bumping mutator, else topology_version() lies to the caches.
OVERLAY_ADJACENCY_WRITE_RE = re.compile(
    r"\blogical_\s*(?:\.|->)\s*"
    r"(?:add_edge|add_new_edge|remove_edge|set_weight|isolate)\s*\(")


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class SourceFile:
    path: str  # repo-relative, '/'-separated
    raw_lines: list[str]
    # raw_lines with comments and string/char literals blanked (same length).
    code_lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.code_lines = strip_comments_and_strings(self.raw_lines)


def strip_comments_and_strings(lines: list[str]) -> list[str]:
    """Blanks //, /* */ comments and "..."/'...' literals, keeping layout."""
    out: list[str] = []
    in_block = False
    for line in lines:
        buf: list[str] = []
        i, n = 0, len(line)
        while i < n:
            ch = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if in_block:
                if ch == "*" and nxt == "/":
                    in_block = False
                    buf.append("  ")
                    i += 2
                else:
                    buf.append(" ")
                    i += 1
            elif ch == "/" and nxt == "/":
                buf.append(" " * (n - i))
                break
            elif ch == "/" and nxt == "*":
                in_block = True
                buf.append("  ")
                i += 2
            elif ch in "\"'":
                quote = ch
                buf.append(" ")
                i += 1
                while i < n:
                    if line[i] == "\\":
                        buf.append("  ")
                        i += 2
                    elif line[i] == quote:
                        buf.append(" ")
                        i += 1
                        break
                    else:
                        buf.append(" ")
                        i += 1
            else:
                buf.append(ch)
                i += 1
        out.append("".join(buf))
    return out


def parse_allowances(src: SourceFile, findings: list[Finding]):
    """Maps line number -> set of allowed rules (line and line-after scope)."""
    allowed: dict[int, set[str]] = {}
    for idx, line in enumerate(src.raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            if "ace-lint:" in line and "allow" in line:
                findings.append(Finding(
                    src.path, idx, "bad-allow",
                    "unparseable ace-lint comment (expected "
                    "'// ace-lint: allow(<rule>): <justification>')"))
            continue
        rule, justification = m.group(1), m.group(2)
        if rule not in RULES or rule == "bad-allow":
            findings.append(Finding(
                src.path, idx, "bad-allow", f"unknown rule '{rule}'"))
            continue
        if not justification:
            findings.append(Finding(
                src.path, idx, "bad-allow",
                f"allow({rule}) needs a justification after the colon"))
            continue
        # Covers this line and the next source line. Consecutive pure-allow
        # comment lines chain down to the first non-comment line.
        target = idx
        code = src.code_lines[idx - 1].strip()
        if not code:  # comment-only line: find the next non-blank code line
            j = idx
            while j < len(src.code_lines) and not src.code_lines[j].strip():
                j += 1
            target = j + 1
        allowed.setdefault(idx, set()).add(rule)
        allowed.setdefault(target, set()).add(rule)
    return allowed


def is_allowed(allowed, lineno: int, rule: str) -> bool:
    return rule in allowed.get(lineno, set())


def structural_scope(path: str) -> bool:
    return path.startswith(STRUCTURAL_RULE_PREFIXES)


def collect_unordered_names(src: SourceFile) -> set[str]:
    names: set[str] = set()
    text = "\n".join(src.code_lines)
    for m in DECL_UNORDERED_RE.finditer(text):
        names.add(m.group(1))
    return names


def float_var_names(src: SourceFile) -> set[str]:
    names: set[str] = set()
    decl = re.compile(r"\b(?:double|float)\s+([A-Za-z_]\w*)")
    for line in src.code_lines:
        for m in decl.finditer(line):
            names.add(m.group(1))
    return names


def loop_body_range(src: SourceFile, start_idx: int) -> range:
    """Line indexes (0-based) of the loop body opened at start_idx."""
    depth = 0
    opened = False
    for j in range(start_idx, min(start_idx + 200, len(src.code_lines))):
        for ch in src.code_lines[j]:
            if ch == "{":
                depth += 1
                opened = True
            elif ch == "}":
                depth -= 1
                if opened and depth == 0:
                    return range(start_idx, j + 1)
        if not opened and j > start_idx:
            # Braceless single-statement body.
            return range(start_idx, j + 1)
    return range(start_idx, min(start_idx + 200, len(src.code_lines)))


def lint_source(src: SourceFile) -> list[Finding]:
    findings: list[Finding] = []
    allowed = parse_allowances(src, findings)
    unordered_names = collect_unordered_names(src)
    floats = float_var_names(src)
    structural = structural_scope(src.path)

    for idx, code in enumerate(src.code_lines, start=1):
        if structural:
            m = DECL_UNORDERED_RE.search(code)
            if m is None and "std::unordered_" in code and \
                    re.search(r"\bstd::unordered_\w+\s*<", code):
                m = re.search(r"\bstd::unordered_\w+\s*<", code)
            if m and not is_allowed(allowed, idx, "unordered-container"):
                findings.append(Finding(
                    src.path, idx, "unordered-container",
                    "unordered container in protocol/simulation code — "
                    "justify with "
                    "'// ace-lint: allow(unordered-container): why "
                    "iteration order cannot leak'"))

            iter_name = None
            rm = RANGE_FOR_RE.search(code)
            if rm:
                base = re.split(r"\.|->", rm.group(1))[0]
                last = re.split(r"\.|->", rm.group(1))[-1]
                if base in unordered_names or last in unordered_names:
                    iter_name = base
            im = ITER_FOR_RE.search(code)
            if im and im.group(1) in unordered_names:
                iter_name = im.group(1)
            if iter_name is not None:
                if not is_allowed(allowed, idx, "unordered-iter"):
                    findings.append(Finding(
                        src.path, idx, "unordered-iter",
                        f"iterating unordered container '{iter_name}' — "
                        "visit order is hash/layout dependent; iterate a "
                        "sorted snapshot or an index-keyed vector instead"))
                # Float accumulation stays an error even under
                # allow(unordered-iter): the allowance argues the *set*
                # doesn't leak, but FP sums leak the *order*.
                for j in loop_body_range(src, idx - 1):
                    fm = FLOAT_ACCUM_RE.search(src.code_lines[j])
                    if fm and fm.group(1) in floats and \
                            not is_allowed(allowed, j + 1,
                                           "float-accum-unordered"):
                        findings.append(Finding(
                            src.path, j + 1, "float-accum-unordered",
                            f"accumulating float '{fm.group(1)}' inside an "
                            "unordered iteration — FP addition is not "
                            "associative, the sum depends on visit order"))

            pm = POINTER_KEY_RE.search(code)
            if pm and not is_allowed(allowed, idx, "pointer-key"):
                findings.append(Finding(
                    src.path, idx, "pointer-key",
                    "ordered container keyed on a pointer — iteration "
                    "order is address (ASLR/allocator) order; key on a "
                    "stable id instead"))

            am = ADDR_COMPARE_RE.search(code)
            if am and not is_allowed(allowed, idx, "addr-compare"):
                findings.append(Finding(
                    src.path, idx, "addr-compare",
                    "relational comparison of addresses — ordering depends "
                    "on allocation layout; compare stable ids"))

            wm = OVERLAY_ADJACENCY_WRITE_RE.search(code)
            if wm and not is_allowed(allowed, idx, "overlay-adjacency-write"):
                findings.append(Finding(
                    src.path, idx, "overlay-adjacency-write",
                    "direct write to the overlay's logical adjacency — "
                    "bypasses the topology_version() bump the incremental "
                    "caches rely on; go through the OverlayNetwork mutators "
                    "(connect/disconnect/join/leave)"))

        if src.path not in BANNED_RANDOM_EXEMPT:
            bm = BANNED_RANDOM_RE.search(code)
            if bm and not is_allowed(allowed, idx, "banned-random"):
                findings.append(Finding(
                    src.path, idx, "banned-random",
                    f"'{bm.group(0).strip()}' — all randomness must come "
                    "from a seeded ace::Rng stream (util/rng.h)"))

        if src.path not in BANNED_CLOCK_EXEMPT:
            cm = BANNED_CLOCK_RE.search(code)
            if cm and not is_allowed(allowed, idx, "banned-clock"):
                findings.append(Finding(
                    src.path, idx, "banned-clock",
                    f"'{cm.group(0).strip()}' — wall-clock reads differ "
                    "per run; use simulation time (EventQueue::now())"))

    return findings


def load_file(root: str, rel: str) -> SourceFile:
    with open(os.path.join(root, rel), encoding="utf-8",
              errors="replace") as fh:
        raw = fh.read().splitlines()
    return SourceFile(path=rel.replace(os.sep, "/"), raw_lines=raw)


def iter_sources(root: str, paths: list[str]):
    exts = (".h", ".hpp", ".cpp", ".cc", ".cxx")
    for path in paths:
        full = os.path.join(root, path)
        if os.path.isfile(full):
            yield os.path.relpath(full, root)
            continue
        if not os.path.isdir(full):
            raise FileNotFoundError(f"no such file or directory: {path}")
        for dirpath, dirnames, filenames in os.walk(full):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(exts):
                    yield os.path.relpath(os.path.join(dirpath, name), root)


def run_lint(root: str, paths: list[str]) -> int:
    findings: list[Finding] = []
    count = 0
    for rel in iter_sources(root, paths):
        count += 1
        findings.extend(lint_source(load_file(root, rel)))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f.render())
    if findings:
        print(f"ace-lint: {len(findings)} finding(s) in {count} file(s)",
              file=sys.stderr)
        return 1
    print(f"ace-lint: clean ({count} files)", file=sys.stderr)
    return 0


# ---------------------------------------------------------------------------
# Self-test fixtures: (name, path, source, expected rule codes).
# ---------------------------------------------------------------------------

FIXTURES = [
    ("range_for_over_unordered_map", "src/x/a.cpp", """
#include <unordered_map>
// ace-lint: allow(unordered-container): self-test fixture
std::unordered_map<int, int> table;
void f() {
  for (const auto& [k, v] : table) {
    (void)k;
  }
}
""", ["unordered-iter"]),
    ("iterator_loop_over_unordered_set", "src/x/b.cpp", """
#include <unordered_set>
// ace-lint: allow(unordered-container): self-test fixture
std::unordered_set<int> seen;
void f() {
  for (auto it = seen.begin(); it != seen.end(); ++it) {
  }
}
""", ["unordered-iter"]),
    ("allowed_iteration_is_clean", "src/x/c.cpp", """
#include <unordered_map>
// ace-lint: allow(unordered-container): counts drained into a sorted vector
std::unordered_map<int, int> counts;
void f() {
  // ace-lint: allow(unordered-iter): drained into a vector sorted below
  for (const auto& [k, v] : counts) {
  }
}
""", []),
    ("declaration_needs_justification", "src/x/d.h", """
#include <unordered_map>
struct S {
  std::unordered_map<int, int> index_;
};
""", ["unordered-container"]),
    ("allow_without_justification", "src/x/e.h", """
#include <unordered_map>
// ace-lint: allow(unordered-container)
std::unordered_map<int, int> index_;
""", ["bad-allow", "unordered-container"]),
    ("allow_unknown_rule", "src/x/f.h", """
// ace-lint: allow(made-up-rule): whatever
int x;
""", ["bad-allow"]),
    ("rand_banned", "src/x/g.cpp", """
#include <cstdlib>
int f() { return rand() % 6; }
""", ["banned-random"]),
    ("random_device_banned", "src/x/h.cpp", """
#include <random>
std::random_device rd;
""", ["banned-random"]),
    ("rng_module_exempt", "src/util/rng.cpp", """
#include <random>
std::random_device rd;
""", []),
    ("clock_now_banned", "src/x/i.cpp", """
#include <chrono>
auto f() { return std::chrono::steady_clock::now(); }
""", ["banned-clock"]),
    ("time_null_banned", "src/x/j.cpp", """
#include <ctime>
auto f() { return time(nullptr); }
""", ["banned-clock"]),
    ("sim_time_methods_fine", "src/x/k.cpp", """
struct Q { double next_time(); double now(); };
double f(Q& q) { return q.next_time() + q.now(); }
""", []),
    ("pointer_keyed_map", "src/x/l.cpp", """
#include <map>
struct Peer;
std::map<Peer*, int> ranks;
""", ["pointer-key"]),
    ("address_comparison", "src/x/m.cpp", """
bool f(int a, int b) { return &a < &b; }
""", ["addr-compare"]),
    ("float_accum_in_allowed_loop", "src/x/n.cpp", """
#include <unordered_map>
// ace-lint: allow(unordered-container): self-test fixture
std::unordered_map<int, double> weights;
double f() {
  double total = 0;
  // ace-lint: allow(unordered-iter): claims the sum is order-free (it isn't)
  for (const auto& [k, w] : weights) {
    total += w;
  }
  return total;
}
""", ["float-accum-unordered"]),
    ("comments_and_strings_ignored", "src/x/o.cpp", """
// rand() in a comment, time(NULL) too
const char* s = "std::random_device inside a string";
/* std::mt19937 in a block comment */
int x;
""", []),
    ("tests_exempt_from_structural_rules", "tests/t.cpp", """
#include <unordered_map>
std::unordered_map<int, int> m;
void f() {
  for (const auto& [k, v] : m) {
  }
}
""", []),
    ("tests_still_banned_random", "tests/u.cpp", """
#include <random>
std::mt19937 gen;
""", ["banned-random"]),
    ("overlay_adjacency_bypass", "src/x/p.cpp", """
struct G { bool add_edge(int, int, double); bool remove_edge(int, int); };
struct O {
  G logical_;
  void hack() {
    logical_.add_edge(1, 2, 0.5);
    logical_.remove_edge(1, 2);
  }
};
""", ["overlay-adjacency-write"]),
    ("overlay_adjacency_allowed_mutator", "src/x/q.cpp", """
struct G { void isolate(int); };
struct O {
  G logical_;
  void leave(int p) {
    // ace-lint: allow(overlay-adjacency-write): the version-bumping mutator
    logical_.isolate(p);
  }
};
""", []),
    ("overlay_adjacency_reads_fine", "src/x/r.cpp", """
struct G { int degree(int) const; bool has_edge(int, int) const; };
struct O {
  G logical_;
  int deg(int p) const { return logical_.degree(p); }
  bool linked(int a, int b) const { return logical_.has_edge(a, b); }
};
""", []),
]


def self_test() -> int:
    failures = 0
    for name, path, source, expected in FIXTURES:
        src = SourceFile(path=path, raw_lines=source.splitlines())
        got = sorted({f.rule for f in lint_source(src)})
        want = sorted(set(expected))
        if got != want:
            failures += 1
            print(f"FAIL {name}: expected {want}, got {got}", file=sys.stderr)
            for f in lint_source(src):
                print(f"  {f.render()}", file=sys.stderr)
        else:
            print(f"ok   {name}")
    if failures:
        print(f"ace-lint self-test: {failures} failure(s)", file=sys.stderr)
        return 1
    print(f"ace-lint self-test: all {len(FIXTURES)} fixtures pass")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=None,
                        help="files/directories to lint (default: "
                             "src examples)")
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded fixture suite and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    paths = args.paths or ["src", "examples"]
    try:
        return run_lint(root, paths)
    except FileNotFoundError as err:
        print(f"ace-lint: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
