#!/usr/bin/env python3
"""ace-lint v2: determinism + parallel-safety checker for the ACE codebase.

A multi-pass, cross-file analyzer. The pipeline (DESIGN.md §12):

  pass 1  lex        — per file: blank comments/strings (layout-preserving),
                       record which columns held string literals, join into
                       a position-addressable text stream.
  pass 2  index      — per file: allowance/exempt directives, unordered
                       container names, float vars, atomic vars, reserve()
                       receivers, TrialRunner variables, // ace-hot tags,
                       class definitions (members + digest_into bodies).
                       File indexes merge into a project-wide symbol index
                       so rules can see across header/impl boundaries.
  pass 3  rules      — per-file line rules (the v1 determinism family),
                       then the flow rules (worker-shared-write,
                       hot-path-alloc), then the project rules
                       (digest-coverage).
  pass 4  report     — stale-allow (an allowance that suppressed nothing),
                       text or JSONL output, optional baseline diffing.

Determinism rules (v1 family — a run is a pure function of config + seed):

  unordered-iter        iteration over std::unordered_map/unordered_set —
                        visit order depends on hashing/layout, never on the
                        data; any protocol decision or digest fed from such
                        a loop silently becomes run-dependent.
  unordered-container   declaring std::unordered_{map,set} in protocol or
                        simulation code. Keyed lookup is fine, so this is
                        allowed with a justification comment; the point is
                        to force each use to state why iteration order can
                        never leak out of it.
  banned-random         rand()/srand()/std::random_device/std::mt19937 —
                        all randomness must flow through util/rng.h (seeded
                        xoshiro streams).
  banned-clock          wall-clock reads (time(), clock(), gettimeofday,
                        std::chrono::*_clock::now()) — simulation time is
                        EventQueue::now(); wall time differs per run.
  pointer-key           std::map/std::set ordered on a pointer key (or
                        std::less<T*>): iteration order is address order,
                        i.e. allocator/ASLR order.
  addr-compare          relational comparison of two addresses-of — same
                        hazard as pointer-key without the container.
  float-accum-unordered accumulating a floating-point sum inside an
                        (allowlisted) unordered iteration: even when the
                        visit *set* is fixed, FP addition is not
                        associative, so the sum depends on visit order.
  overlay-adjacency-write
                        direct mutation of the overlay's logical adjacency
                        (logical_.add_edge / remove_edge / set_weight /
                        isolate) outside the version-bumping OverlayNetwork
                        mutators. The incremental engine and the query-path
                        snapshot trust topology_version()/global_version()
                        to observe every adjacency change; a bypassing
                        write silently serves stale cached closures and
                        snapshots.
  bad-allow             an allow-comment with no justification text, or
                        naming an unknown rule.

Parallel-safety + hot-path rules (v2 family):

  worker-shared-write   a write through a by-reference capture inside a
                        lambda handed to TrialRunner::run/run_indexed/
                        run_subtasks that is neither slot-indexed by a
                        lambda index parameter, nor an atomic, nor under a
                        lock. run/run_indexed lambdas take one trial index;
                        run_subtasks lambdas take (lane, index) and may
                        subscript by either — per-lane scratch arenas and
                        per-subtask result slots are both legitimate. The
                        runner's contract is that concurrent bodies share
                        no mutable state; this is the static check behind
                        it.
  hot-path-alloc        a function tagged `// ace-hot` may not allocate in
                        steady state: no new/make_unique/make_shared, no
                        std::function construction, no std::string
                        construction/concat, and push_back/emplace_back
                        only into containers that are reserve()d somewhere
                        in the file or clear()ed in the same function
                        (capacity reuse).
  digest-coverage       every data member (trailing-underscore convention)
                        of a class defining digest_into must appear in the
                        digest body or carry an exempt directive
                        `// ace-digest: exempt(member): why` inside the
                        class. A stale exempt (member digested after all,
                        or no such member) is itself a finding, as is an
                        exempt without a reason.
  stale-allow           an `ace-lint: allow(...)` whose rule no longer
                        fires on the covered line. Suppressions must decay
                        with the code they excuse.
  raw-id-cast           a strong id (HostId/PeerId/LocalNodeId/TrialIndex/
                        TopologyVersion, util/strong_id.h) constructed from
                        a raw value — `Id{expr}` with a non-literal
                        argument, or `static_cast<Id>(...)` — without a
                        `// ace-id: boundary(reason)` annotation on the
                        same or preceding line. Feeding `.value()` INTO a
                        kernel is always fine; the lint guards the reverse
                        direction, where a raw integer is blessed into a
                        domain. Structural scope (src/, examples/): tests
                        and benches construct ids from literals freely.

Suppression: put, on the flagged line or the line above it,

    // ace-lint: allow(<rule>): <justification>

The justification is mandatory — an empty one is itself an error. An
allowance covers exactly one source line. bad-allow and stale-allow cannot
be suppressed (use the baseline for transitional states).

Usage:
    ace_lint.py [--root DIR] [paths...]   # default paths: src examples
    ace_lint.py --self-test               # run the embedded fixture suite
    ace_lint.py --format=jsonl ...        # machine-readable findings
    ace_lint.py --baseline F --diff ...   # gate only NEW findings
    ace_lint.py --baseline F --validate-baseline ...
                                          # parse baseline, fail on expired
    ace_lint.py --baseline F --update-baseline ...
                                          # rewrite baseline from findings

Exit status: 0 clean (or all findings baselined under --diff), 1 findings,
2 usage/internal error.
"""

from __future__ import annotations

import argparse
import bisect
import json
import os
import re
import sys
from dataclasses import dataclass, field

RULES = {
    "unordered-iter": "iteration over an unordered container",
    "unordered-container": "unordered container in protocol/simulation code",
    "banned-random": "randomness source outside util/rng",
    "banned-clock": "wall-clock read in simulation code",
    "pointer-key": "ordered container keyed on a pointer",
    "addr-compare": "relational comparison of addresses",
    "float-accum-unordered": "float accumulation inside unordered iteration",
    "overlay-adjacency-write":
        "overlay adjacency mutated without a version bump",
    "bad-allow": "malformed ace-lint allow comment",
    "worker-shared-write":
        "unguarded shared write inside a TrialRunner worker lambda",
    "hot-path-alloc": "allocation inside an // ace-hot function",
    "digest-coverage": "digest_into member coverage violation",
    "stale-allow": "allow-comment whose rule no longer fires",
    "raw-id-cast":
        "strong id constructed from a raw value without a boundary note",
}

# Rules that cannot themselves be allow()ed away.
UNSUPPRESSABLE = {"bad-allow", "stale-allow"}

# Paths (relative, '/'-separated) exempt from specific rules.
BANNED_RANDOM_EXEMPT = ("src/util/rng.h", "src/util/rng.cpp")
BANNED_CLOCK_EXEMPT = ("src/util/logging.h", "src/util/logging.cpp")
# Unordered/pointer/float/digest rules guard protocol + simulation code
# only; tests and benches may iterate however they like for assertions and
# reporting. worker-shared-write, hot-path-alloc, and the clock/random bans
# apply everywhere (a racy test or a wall-clock read is wrong anywhere).
STRUCTURAL_RULE_PREFIXES = ("src/", "examples/")

ALLOW_RE = re.compile(
    r"//\s*ace-lint:\s*allow\(([a-z-]+)\)\s*(?::\s*(.*\S))?\s*$")
EXEMPT_RE = re.compile(
    r"//\s*ace-digest:\s*exempt\(([A-Za-z_]\w*)\)\s*(?::\s*(.*\S))?\s*$")
HOT_TAG_RE = re.compile(r"//\s*ace-hot\b")

DECL_UNORDERED_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{()]*?>\s*"
    r"([A-Za-z_]\w*)\s*[;{=]")
RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(\s*[^;()]*?:\s*([A-Za-z_][\w.>\-]*)\s*\)")
ITER_FOR_RE = re.compile(
    r"\bfor\s*\(\s*[^;]*=\s*([A-Za-z_]\w*)(?:\.|->)c?begin\s*\(")
BANNED_RANDOM_RE = re.compile(
    r"\bstd::random_device\b|\bstd::mt19937(?:_64)?\b|"
    r"(?<![\w:])s?rand\s*\(")
BANNED_CLOCK_RE = re.compile(
    r"\bstd::chrono::(?:system|steady|high_resolution)_clock::now\b|"
    r"\bgettimeofday\s*\(|(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0|&\w+)?\s*\)|"
    r"(?<![\w:.])clock\s*\(\s*\)")
POINTER_KEY_RE = re.compile(
    r"\bstd::(?:map|set|multimap|multiset)\s*<\s*(?:[\w:]|\s)+\*|"
    r"\bstd::less\s*<\s*(?:[\w:]|\s)+\*\s*>")
ADDR_COMPARE_RE = re.compile(
    r"&\s*[A-Za-z_][\w.\[\]>\-]*\s*(?:<|>|<=|>=)\s*&\s*[A-Za-z_]")
FLOAT_ACCUM_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\+=")
# Direct writes to the overlay's logical adjacency. `logical_` is the
# OverlayNetwork member; any mutating call on it must go through (or be)
# a version-bumping mutator, else topology_version() lies to the caches.
OVERLAY_ADJACENCY_WRITE_RE = re.compile(
    r"\blogical_\s*(?:\.|->)\s*"
    r"(?:add_edge|add_new_edge|remove_edge|set_weight|isolate)\s*\(")

# Strong id domains (util/strong_id.h). Constructing one FROM a raw value
# is a domain boundary that must be annotated; the types themselves live in
# strong_id.h, which is exempt (it defines the machinery).
STRONG_ID_NAMES = r"(?:HostId|PeerId|LocalNodeId|TrialIndex|TopologyVersion)"
RAW_ID_STATIC_CAST_RE = re.compile(
    rf"\bstatic_cast<\s*(?:ace::)?({STRONG_ID_NAMES})\s*>")
# `PeerId{expr}` or `PeerId name{expr}` — declaration or temporary.
RAW_ID_BRACE_RE = re.compile(
    rf"\b(?:ace::)?({STRONG_ID_NAMES})(?:\s+[A-Za-z_]\w*)?\s*\{{([^{{}}]*)\}}")
# Arguments that are NOT a boundary: empty (default/zero), a single integer
# literal, or a literal arithmetic expression (digits and operators only).
ID_LITERAL_ARG_RE = re.compile(r"[\d\s'+*/%()uUlL-]*\d[\d\s'+*/%()uUlL-]*")
ACE_ID_BOUNDARY_RE = re.compile(r"//\s*ace-id:\s*boundary\(([^)]*\S[^)]*)\)")
RAW_ID_EXEMPT = ("src/util/strong_id.h",)

# An lvalue chain: base identifier followed by member/subscript selectors.
CHAIN = r"[A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*|\[[^\][]*\])*"


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str
    code: str = ""  # stripped raw source line, for baseline matching

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_json(self) -> str:
        return json.dumps(
            {"path": self.path, "line": self.line, "rule": self.rule,
             "message": self.message, "code": self.code},
            sort_keys=True)

    def key(self) -> tuple[str, str, str]:
        # Baseline identity: line numbers drift, code content mostly
        # doesn't; a moved-but-unchanged finding stays baselined.
        return (self.path, self.rule, self.code)


# ---------------------------------------------------------------------------
# Pass 1: lexing. Comments and string/char literals are blanked in place so
# every downstream regex sees only code, at unchanged line/column positions.
# ---------------------------------------------------------------------------


def strip_comments_and_strings(
        lines: list[str]) -> tuple[list[str], list[list[bool]]]:
    """Blanks //, /* */ comments and "..."/'...' literals, keeping layout.

    Returns (code_lines, string_masks); string_masks[i][j] is True when
    column j of line i sat inside a string/char literal (used by the
    hot-path string-concat check).
    """
    out: list[str] = []
    masks: list[list[bool]] = []
    in_block = False
    for line in lines:
        buf: list[str] = []
        mask: list[bool] = []
        i, n = 0, len(line)
        while i < n:
            ch = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if in_block:
                if ch == "*" and nxt == "/":
                    in_block = False
                    buf.append("  ")
                    mask.extend((False, False))
                    i += 2
                else:
                    buf.append(" ")
                    mask.append(False)
                    i += 1
            elif ch == "/" and nxt == "/":
                buf.append(" " * (n - i))
                mask.extend([False] * (n - i))
                break
            elif ch == "/" and nxt == "*":
                in_block = True
                buf.append("  ")
                mask.extend((False, False))
                i += 2
            elif ch in "\"'":
                quote = ch
                buf.append(" ")
                mask.append(True)
                i += 1
                while i < n:
                    if line[i] == "\\":
                        buf.append("  ")
                        mask.extend((True, True))
                        i += 2
                    elif line[i] == quote:
                        buf.append(" ")
                        mask.append(True)
                        i += 1
                        break
                    else:
                        buf.append(" ")
                        mask.append(True)
                        i += 1
            else:
                buf.append(ch)
                mask.append(False)
                i += 1
        out.append("".join(buf))
        mask.extend([False] * (len(out[-1]) - len(mask)))
        masks.append(mask)
    return out, masks


@dataclass
class SourceFile:
    path: str  # repo-relative, '/'-separated
    raw_lines: list[str]
    # raw_lines with comments and string/char literals blanked (same length).
    code_lines: list[str] = field(default_factory=list)
    string_masks: list[list[bool]] = field(default_factory=list)
    # Joined code text + per-line start offsets (position <-> line mapping).
    text: str = ""
    line_offsets: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.code_lines, self.string_masks = strip_comments_and_strings(
            self.raw_lines)
        offsets, pos = [], 0
        for line in self.code_lines:
            offsets.append(pos)
            pos += len(line) + 1
        self.text = "\n".join(self.code_lines)
        self.line_offsets = offsets

    def line_of(self, pos: int) -> int:
        """1-based line number of a position in self.text."""
        return bisect.bisect_right(self.line_offsets, pos)

    def pos_of_line(self, lineno: int) -> int:
        return self.line_offsets[lineno - 1]

    def raw(self, lineno: int) -> str:
        return self.raw_lines[lineno - 1] if lineno <= len(
            self.raw_lines) else ""


def match_brace(text: str, open_pos: int) -> int:
    """Position of the '}' matching the '{' at open_pos (-1 if unbalanced)."""
    depth = 0
    for i in range(open_pos, len(text)):
        ch = text[i]
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth == 0:
                return i
    return -1


def strip_angles(s: str) -> str:
    """Removes balanced <...> template argument groups (best-effort)."""
    out: list[str] = []
    depth = 0
    for ch in s:
        if ch == "<":
            depth += 1
        elif ch == ">":
            if depth > 0:
                depth -= 1
                continue
        if depth == 0:
            out.append(ch)
    return "".join(out)


def normalize_chain(chain: str) -> str:
    return re.sub(r"\s+", "", chain).replace("->", ".")


def chain_base(chain: str) -> str:
    return re.split(r"\.|->|\[", normalize_chain(chain))[0]


# ---------------------------------------------------------------------------
# Pass 2: indexing. FileIndex collects per-file symbols and directives;
# ProjectIndex merges the class/digest view so rules can cross file
# boundaries (members in the header, digest_into body in the .cpp).
# ---------------------------------------------------------------------------


@dataclass
class ClassInfo:
    name: str
    path: str
    line: int
    # (member_name, line) for trailing-underscore data members at class depth.
    members: list[tuple[str, int]] = field(default_factory=list)
    # member -> (line, reason or None) from // ace-digest: exempt(...) lines.
    exempts: dict[str, tuple[int, str | None]] = field(default_factory=dict)
    declares_digest: bool = False
    inline_digest_body: str | None = None


MEMBER_STMT_RE = re.compile(r"(?:^|\s)([A-Za-z_]\w*_)\s*$")
ACE_MACRO_RE = re.compile(r"\bACE_[A-Z_]+\s*\([^()]*\)|\bACE_[A-Z_]+\b")
CLASS_RE = re.compile(
    r"\b(class|struct)\s+([A-Za-z_]\w*)\s*(?:final\s*)?(?::[^;{}]*)?\{")
OUTLINE_DIGEST_RE = re.compile(
    r"\bvoid\s+([A-Za-z_]\w*)::digest_into\s*\([^)]*\)\s*(?:const\s*)?\{")
DIGEST_DECL_RE = re.compile(r"(?<![\w.>])digest_into\s*\(")
TRIAL_VAR_RE = re.compile(r"\bTrialRunner\s*[&*]?\s+([A-Za-z_]\w*)\b")
ATOMIC_VAR_RE = re.compile(
    r"\bstd::atomic(?:<[^;<>]*>|_\w+)\s*[&*]?\s+([A-Za-z_]\w*)\b")
RESERVE_RE = re.compile(rf"({CHAIN})\s*(?:\.|->)\s*reserve\s*\(")
STMT_SKIP_RE = re.compile(
    r"^\s*(?:using\b|typedef\b|friend\b|static\b|public\s*:|private\s*:|"
    r"protected\s*:|enum\b)")


def parse_class_members(src: SourceFile, body_start: int, body_end: int,
                        info: ClassInfo) -> None:
    """Walks a class body, collecting depth-0 member statements, exempt
    directives, and the inline digest_into body (if defined here)."""
    text = src.text
    # Exempt directives anywhere inside the class body's line range.
    for lineno in range(src.line_of(body_start), src.line_of(body_end) + 1):
        m = EXEMPT_RE.search(src.raw(lineno))
        if m:
            info.exempts[m.group(1)] = (lineno, m.group(2))
    pos = body_start + 1
    stmt: list[str] = []
    stmt_line = src.line_of(pos)
    while pos < body_end:
        ch = text[pos]
        if ch == "{":
            close = match_brace(text, pos)
            if close == -1 or close > body_end:
                return  # malformed; bail quietly
            snippet = "".join(stmt)
            if DIGEST_DECL_RE.search(snippet):
                info.declares_digest = True
                info.inline_digest_body = text[pos + 1:close]
            # Peek past the brace group: an initializer or nested type ends
            # with ';' (keep accumulating); a function body does not (drop).
            nxt = close + 1
            while nxt < body_end and text[nxt] in " \t\n":
                nxt += 1
            if nxt < body_end and text[nxt] == ";":
                pos = close + 1  # ';' handled on a later iteration
            else:
                stmt = []
                stmt_line = src.line_of(nxt if nxt < body_end else body_end)
                pos = close + 1
            continue
        if ch == ";":
            flush_member_stmt("".join(stmt), stmt_line, info)
            stmt = []
            stmt_line = src.line_of(pos + 1)
            pos += 1
            continue
        if not stmt and ch in " \t\n":
            stmt_line = src.line_of(pos + 1)
        stmt.append(ch)
        pos += 1


ACCESS_LABEL_RE = re.compile(r"^(?:(?:public|private|protected)\s*:\s*)+")


def flush_member_stmt(stmt: str, line: int, info: ClassInfo) -> None:
    flat = ACCESS_LABEL_RE.sub("", " ".join(stmt.split()))
    if not flat:
        return
    if DIGEST_DECL_RE.search(flat):
        info.declares_digest = True
    if STMT_SKIP_RE.match(flat):
        return
    cleaned = strip_angles(ACE_MACRO_RE.sub(" ", flat))
    if "(" in cleaned or ")" in cleaned:
        return  # function declaration / constructor / using-alias
    cleaned = cleaned.split("=")[0].rstrip()
    m = MEMBER_STMT_RE.search(cleaned)
    if m:
        info.members.append((m.group(1), line))


class FileIndex:
    def __init__(self, src: SourceFile, findings: list[Finding]):
        self.src = src
        # lineno -> {rule -> allow-site lineno}
        self.allowed: dict[int, dict[str, int]] = {}
        self.allow_sites: list[tuple[int, str]] = []
        self.used_allow_sites: set[tuple[int, str]] = set()
        self._parse_allowances(findings)
        self.unordered_names = {
            m.group(1) for m in DECL_UNORDERED_RE.finditer(src.text)}
        self.float_vars = {
            m.group(1) for line in src.code_lines
            for m in re.finditer(r"\b(?:double|float)\s+([A-Za-z_]\w*)", line)}
        self.atomic_vars = {
            m.group(1) for m in ATOMIC_VAR_RE.finditer(src.text)}
        self.trial_vars = {
            m.group(1) for m in TRIAL_VAR_RE.finditer(src.text)}
        self.reserve_receivers = {
            normalize_chain(m.group(1))
            for m in RESERVE_RE.finditer(src.text)}
        self.hot_tags = [
            idx + 1 for idx, line in enumerate(src.raw_lines)
            if HOT_TAG_RE.search(line)]
        self.classes: list[ClassInfo] = []
        self._parse_classes()
        # class name -> out-of-line digest_into body text defined here.
        self.digest_defs: dict[str, str] = {}
        for m in OUTLINE_DIGEST_RE.finditer(src.text):
            open_pos = m.end() - 1
            close = match_brace(src.text, open_pos)
            if close != -1:
                self.digest_defs[m.group(1)] = src.text[open_pos + 1:close]

    def _parse_allowances(self, findings: list[Finding]) -> None:
        src = self.src
        for idx, line in enumerate(src.raw_lines, start=1):
            m = ALLOW_RE.search(line)
            if not m:
                if "ace-lint:" in line and "allow" in line:
                    findings.append(Finding(
                        src.path, idx, "bad-allow",
                        "unparseable ace-lint comment (expected "
                        "'// ace-lint: allow(<rule>): <justification>')",
                        src.raw(idx).strip()))
                continue
            rule, justification = m.group(1), m.group(2)
            if rule not in RULES or rule in UNSUPPRESSABLE:
                findings.append(Finding(
                    src.path, idx, "bad-allow",
                    f"unknown or unsuppressable rule '{rule}'",
                    src.raw(idx).strip()))
                continue
            if not justification:
                findings.append(Finding(
                    src.path, idx, "bad-allow",
                    f"allow({rule}) needs a justification after the colon",
                    src.raw(idx).strip()))
                continue
            # Covers this line and the next source line. Consecutive
            # pure-allow comment lines chain down to the first code line.
            target = idx
            code = src.code_lines[idx - 1].strip()
            if not code:  # comment-only line: next non-blank code line
                j = idx
                while j < len(src.code_lines) and \
                        not src.code_lines[j].strip():
                    j += 1
                target = j + 1
            self.allow_sites.append((idx, rule))
            self.allowed.setdefault(idx, {}).setdefault(rule, idx)
            self.allowed.setdefault(target, {}).setdefault(rule, idx)

    def is_allowed(self, lineno: int, rule: str) -> bool:
        site = self.allowed.get(lineno, {}).get(rule)
        if site is None:
            return False
        self.used_allow_sites.add((site, rule))
        return True

    def _parse_classes(self) -> None:
        text = self.src.text
        for m in CLASS_RE.finditer(text):
            if text[max(0, m.start() - 8):m.start()].rstrip().endswith("enum"):
                continue  # enum class
            open_pos = m.end() - 1
            close = match_brace(text, open_pos)
            if close == -1:
                continue
            info = ClassInfo(name=m.group(2), path=self.src.path,
                             line=self.src.line_of(m.start()))
            parse_class_members(self.src, open_pos, close, info)
            self.classes.append(info)


class ProjectIndex:
    """Cross-file view: classes by name + digest_into bodies by class."""

    def __init__(self, file_indexes: list["FileIndex"]):
        self.files = file_indexes
        self.digest_bodies: dict[str, str] = {}
        for fi in file_indexes:
            self.digest_bodies.update(fi.digest_defs)


# ---------------------------------------------------------------------------
# Pass 3a: per-line determinism rules (the v1 family).
# ---------------------------------------------------------------------------


def structural_scope(path: str) -> bool:
    return path.startswith(STRUCTURAL_RULE_PREFIXES)


def loop_body_range(src: SourceFile, start_idx: int) -> range:
    """Line indexes (0-based) of the loop body opened at start_idx."""
    depth = 0
    opened = False
    for j in range(start_idx, min(start_idx + 200, len(src.code_lines))):
        for ch in src.code_lines[j]:
            if ch == "{":
                depth += 1
                opened = True
            elif ch == "}":
                depth -= 1
                if opened and depth == 0:
                    return range(start_idx, j + 1)
        if not opened and j > start_idx:
            # Braceless single-statement body.
            return range(start_idx, j + 1)
    return range(start_idx, min(start_idx + 200, len(src.code_lines)))


def run_line_rules(fi: FileIndex, findings: list[Finding]) -> None:
    src = fi.src
    structural = structural_scope(src.path)
    for idx, code in enumerate(src.code_lines, start=1):
        raw = src.raw(idx).strip()
        if structural:
            m = DECL_UNORDERED_RE.search(code)
            if m is None and "std::unordered_" in code and \
                    re.search(r"\bstd::unordered_\w+\s*<", code):
                m = re.search(r"\bstd::unordered_\w+\s*<", code)
            if m and not fi.is_allowed(idx, "unordered-container"):
                findings.append(Finding(
                    src.path, idx, "unordered-container",
                    "unordered container in protocol/simulation code — "
                    "justify with "
                    "'// ace-lint: allow(unordered-container): why "
                    "iteration order cannot leak'", raw))

            iter_name = None
            rm = RANGE_FOR_RE.search(code)
            if rm:
                base = re.split(r"\.|->", rm.group(1))[0]
                last = re.split(r"\.|->", rm.group(1))[-1]
                if base in fi.unordered_names or last in fi.unordered_names:
                    iter_name = base
            im = ITER_FOR_RE.search(code)
            if im and im.group(1) in fi.unordered_names:
                iter_name = im.group(1)
            if iter_name is not None:
                if not fi.is_allowed(idx, "unordered-iter"):
                    findings.append(Finding(
                        src.path, idx, "unordered-iter",
                        f"iterating unordered container '{iter_name}' — "
                        "visit order is hash/layout dependent; iterate a "
                        "sorted snapshot or an index-keyed vector instead",
                        raw))
                # Float accumulation stays an error even under
                # allow(unordered-iter): the allowance argues the *set*
                # doesn't leak, but FP sums leak the *order*.
                for j in loop_body_range(src, idx - 1):
                    fm = FLOAT_ACCUM_RE.search(src.code_lines[j])
                    if fm and fm.group(1) in fi.float_vars and \
                            not fi.is_allowed(j + 1, "float-accum-unordered"):
                        findings.append(Finding(
                            src.path, j + 1, "float-accum-unordered",
                            f"accumulating float '{fm.group(1)}' inside an "
                            "unordered iteration — FP addition is not "
                            "associative, the sum depends on visit order",
                            src.raw(j + 1).strip()))

            pm = POINTER_KEY_RE.search(code)
            if pm and not fi.is_allowed(idx, "pointer-key"):
                findings.append(Finding(
                    src.path, idx, "pointer-key",
                    "ordered container keyed on a pointer — iteration "
                    "order is address (ASLR/allocator) order; key on a "
                    "stable id instead", raw))

            am = ADDR_COMPARE_RE.search(code)
            if am and not fi.is_allowed(idx, "addr-compare"):
                findings.append(Finding(
                    src.path, idx, "addr-compare",
                    "relational comparison of addresses — ordering depends "
                    "on allocation layout; compare stable ids", raw))

            wm = OVERLAY_ADJACENCY_WRITE_RE.search(code)
            if wm and not fi.is_allowed(idx, "overlay-adjacency-write"):
                findings.append(Finding(
                    src.path, idx, "overlay-adjacency-write",
                    "direct write to the overlay's logical adjacency — "
                    "bypasses the topology_version() bump the incremental "
                    "caches rely on; go through the OverlayNetwork mutators "
                    "(connect/disconnect/join/leave)", raw))

        if src.path not in BANNED_RANDOM_EXEMPT:
            bm = BANNED_RANDOM_RE.search(code)
            if bm and not fi.is_allowed(idx, "banned-random"):
                findings.append(Finding(
                    src.path, idx, "banned-random",
                    f"'{bm.group(0).strip()}' — all randomness must come "
                    "from a seeded ace::Rng stream (util/rng.h)", raw))

        if src.path not in BANNED_CLOCK_EXEMPT:
            cm = BANNED_CLOCK_RE.search(code)
            if cm and not fi.is_allowed(idx, "banned-clock"):
                findings.append(Finding(
                    src.path, idx, "banned-clock",
                    f"'{cm.group(0).strip()}' — wall-clock reads differ "
                    "per run; use simulation time (EventQueue::now())", raw))


# ---------------------------------------------------------------------------
# Pass 3a': raw-id-cast. Every `Id{non-literal}` or `static_cast<Id>(...)`
# blesses a raw integer into an id domain; the site must say WHY the raw
# value is a member of that domain via `// ace-id: boundary(reason)` on the
# same or preceding line. Literal constructions (`PeerId{3}`, `HostId{}`)
# are unambiguous and exempt, as is strong_id.h itself.
# ---------------------------------------------------------------------------


def run_raw_id_cast(fi: FileIndex, findings: list[Finding]) -> None:
    src = fi.src
    if not structural_scope(src.path) or src.path in RAW_ID_EXEMPT:
        return
    covered: set[int] = set()
    for idx in range(1, len(src.raw_lines) + 1):
        if ACE_ID_BOUNDARY_RE.search(src.raw(idx)):
            covered.add(idx)
            covered.add(idx + 1)

    def flag(idx: int, what: str) -> None:
        if idx in covered or fi.is_allowed(idx, "raw-id-cast"):
            return
        findings.append(Finding(
            src.path, idx, "raw-id-cast",
            f"{what} constructs a strong id from a raw value — annotate "
            "the domain crossing with '// ace-id: boundary(reason)' on "
            "this or the preceding line (or stay in the domain)",
            src.raw(idx).strip()))

    for idx, code in enumerate(src.code_lines, start=1):
        sm = RAW_ID_STATIC_CAST_RE.search(code)
        if sm:
            flag(idx, f"static_cast<{sm.group(1)}>")
            continue
        for bm in RAW_ID_BRACE_RE.finditer(code):
            arg = bm.group(2).strip()
            if not arg or ID_LITERAL_ARG_RE.fullmatch(arg):
                continue
            flag(idx, f"{bm.group(1)}{{{arg}}}")
            break


# ---------------------------------------------------------------------------
# Pass 3b: worker-shared-write. Finds lambdas handed to TrialRunner::run /
# run_indexed / run_subtasks, then flags writes through by-reference captures
# that are not slot-indexed by an index parameter, atomic, lambda-local, or
# lock-guarded. run/run_indexed bodies get one trial index; run_subtasks
# bodies get (lane, index) and may subscript by either — lane-indexed scratch
# arenas and index-slotted results are the sanctioned shapes (DESIGN.md §15).
# ---------------------------------------------------------------------------

WRITE_ASSIGN_RE = re.compile(
    rf"(?<![\w.\]>])({CHAIN})\s*"
    r"(=(?![=])|\+=|-=|\*=|/=|%=|\|=|&=|\^=|<<=|>>=)")
WRITE_PREINC_RE = re.compile(rf"(?:\+\+|--)\s*({CHAIN})")
WRITE_POSTINC_RE = re.compile(rf"(?<![\w.\]>])({CHAIN})\s*(?:\+\+|--)")
MUTATING_CALLS = (
    "push_back|emplace_back|push_front|emplace_front|insert|erase|clear|"
    "resize|assign|pop_back|pop_front|push|pop|emplace|merge")
WRITE_MUTCALL_RE = re.compile(
    rf"(?<![\w.\]>])({CHAIN})\s*(?:\.|->)\s*(?:{MUTATING_CALLS})\s*\(")
ATOMIC_CALLS_RE = re.compile(
    r"\.\s*(?:store|fetch_add|fetch_sub|fetch_or|fetch_and|fetch_xor|"
    r"exchange|compare_exchange_\w+)\s*\(")
LOCK_DECL_RE = re.compile(
    r"\b(?:MutexLock|std::lock_guard|std::unique_lock|std::scoped_lock)\b")
LOCAL_DECL_RE = re.compile(
    r"(?:^|[;{}()])\s*(?:const\s+|constexpr\s+)*"
    r"(?:auto|bool|int|unsigned|long|short|float|double|char|size_t|"
    r"std::\w+|[A-Z]\w*)(?:::\w+)*\s*[&*]?\s+([A-Za-z_]\w*)\s*(?:=|\{|;|\()")
BINDING_RE = re.compile(r"auto\s*&?\s*\[([^\]]*)\]")
FORVAR_RE = re.compile(
    r"for\s*\(\s*(?:const\s+)?(?:auto|[A-Za-z_][\w:<>]*)\s*[&*]?\s*"
    r"([A-Za-z_]\w*)\s*[:=]")


def collect_locals(body: str, params: list[str]) -> set[str]:
    flat = strip_angles(body)
    names = set(params)
    for m in LOCAL_DECL_RE.finditer(flat):
        names.add(m.group(1))
    for m in FORVAR_RE.finditer(flat):
        names.add(m.group(1))
    for m in BINDING_RE.finditer(flat):
        for part in m.group(1).split(","):
            part = part.strip()
            if part:
                names.add(part)
    return names


def lambda_after(text: str, pos: int) -> tuple[str, list[str], int, int] | \
        None:
    """Parses the first lambda at/after pos: returns (capture_list_text,
    param_names, body_start, body_end) or None if no lambda argument."""
    lb = text.find("[", pos)
    if lb == -1 or lb - pos > 400:
        return None
    rb = text.find("]", lb)
    if rb == -1:
        return None
    captures = text[lb + 1:rb]
    i = rb + 1
    while i < len(text) and text[i] in " \t\n":
        i += 1
    params: list[str] = []
    if i < len(text) and text[i] == "(":
        depth = 0
        j = i
        while j < len(text):
            if text[j] == "(":
                depth += 1
            elif text[j] == ")":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        param_text = strip_angles(text[i + 1:j])
        for seg in param_text.split(","):
            pm = re.search(r"([A-Za-z_]\w*)\s*$", seg.strip())
            if pm:
                params.append(pm.group(1))
        i = j + 1
    open_pos = text.find("{", i)
    if open_pos == -1:
        return None
    close = match_brace(text, open_pos)
    if close == -1:
        return None
    return captures, params, open_pos + 1, close


def first_subscript(chain: str) -> str | None:
    m = re.search(r"\[([^\][]*)\]", chain)
    return m.group(1) if m else None


def run_worker_shared_write(fi: FileIndex, findings: list[Finding]) -> None:
    src = fi.src
    text = src.text
    call_res = [re.compile(rf"\b{re.escape(v)}\s*(?:\.|->)\s*"
                           r"(run|run_indexed|run_subtasks)\s*\(")
                for v in sorted(fi.trial_vars)]
    call_res.append(re.compile(r"(?<![\w.>:])(run_indexed)\s*\("))
    # run_subtasks is a TrialRunner-only name, so bind the rule to ANY call
    # of it — including member calls whose TrialRunner* declaration lives in
    # another file (`subtasks_->run_subtasks(...)` in engine.cpp, declared
    # in engine.h) that the per-file trial_vars index cannot see.
    call_res.append(re.compile(r"\b(run_subtasks)\s*\("))
    seen_lambdas: set[int] = set()
    for call_re in call_res:
        for cm in call_re.finditer(text):
            method = cm.group(1)
            lam = lambda_after(text, cm.end())
            if lam is None:
                continue
            captures, params, body_start, body_end = lam
            if body_start in seen_lambdas:
                continue
            seen_lambdas.add(body_start)
            if "&" not in captures:
                continue  # by-value / captureless: no shared writes
            # run/run_indexed bodies take one trial index; run_subtasks
            # bodies take (lane, index) and may slot by either one.
            index_params = params if method == "run_subtasks" else params[:1]
            body = text[body_start:body_end]
            locals_ = collect_locals(body, params)
            guarded_from = None
            lk = LOCK_DECL_RE.search(body)
            if lk:
                guarded_from = body_start + lk.start()
            hits: list[tuple[int, str]] = []
            for wre in (WRITE_ASSIGN_RE, WRITE_PREINC_RE, WRITE_POSTINC_RE,
                        WRITE_MUTCALL_RE):
                for wm in wre.finditer(body):
                    hits.append((body_start + wm.start(1), wm.group(1)))
            for abs_pos, chain in sorted(hits):
                base = chain_base(chain)
                if base in locals_ or base in fi.atomic_vars:
                    continue
                sub = first_subscript(chain)
                if sub and any(re.search(rf"\b{re.escape(p)}\b", sub)
                               for p in index_params):
                    continue  # slot-indexed by a lambda index parameter
                if guarded_from is not None and abs_pos > guarded_from:
                    continue  # after a scoped lock acquisition
                lineno = src.line_of(abs_pos)
                # Atomic member calls parse as mutating-call hits when the
                # receiver chain ends at the atomic op; drop them.
                line_txt = src.code_lines[lineno - 1]
                if ATOMIC_CALLS_RE.search(line_txt):
                    continue
                if fi.is_allowed(lineno, "worker-shared-write"):
                    continue
                findings.append(Finding(
                    src.path, lineno, "worker-shared-write",
                    f"write to '{normalize_chain(chain)}' (captured by "
                    "reference) inside a TrialRunner worker lambda — not "
                    "slot-indexed by a lambda index parameter and not "
                    "guarded; use per-index slots, a per-lane arena, an "
                    "atomic, or a MutexLock",
                    src.raw(lineno).strip()))


# ---------------------------------------------------------------------------
# Pass 3c: hot-path-alloc. Functions tagged // ace-hot may not allocate in
# steady state. push_back/emplace_back is fine when the receiver is
# reserve()d anywhere in the file (sized once at construction) or
# clear()ed/assign()ed in the same function (capacity reuse).
# ---------------------------------------------------------------------------

HOT_NEW_RE = re.compile(r"(?<![\w:])new\b")
HOT_MAKE_RE = re.compile(r"\bstd::make_(?:unique|shared)\s*<")
HOT_FUNCTION_RE = re.compile(r"\bstd::function\s*<")
HOT_TOSTRING_RE = re.compile(r"\bstd::to_string\s*\(")
HOT_STRING_RE = re.compile(r"\bstd::string\b(?!\s*[&*])")
HOT_PUSH_RE = re.compile(
    rf"(?<![\w.\]>])({CHAIN})\s*(?:\.|->)\s*(?:push_back|emplace_back)\s*\(")
CLEARED_RE = re.compile(
    rf"({CHAIN})\s*(?:\.|->)\s*(?:clear|assign)\s*\(")
FUNC_NAME_RE = re.compile(r"([A-Za-z_][\w:~]*)\s*\(")


def hot_function_bodies(fi: FileIndex):
    """Yields (name, sig_line, body_start, body_end) per // ace-hot tag."""
    src = fi.src
    for tag_line in fi.hot_tags:
        # Signature starts on the tag line (trailing comment) or the next
        # non-blank code line.
        sig_idx = tag_line
        while sig_idx <= len(src.code_lines) and \
                not src.code_lines[sig_idx - 1].strip():
            sig_idx += 1
        if sig_idx > len(src.code_lines):
            continue
        sig_pos = src.pos_of_line(sig_idx)
        open_pos = src.text.find("{", sig_pos)
        if open_pos == -1:
            continue
        close = match_brace(src.text, open_pos)
        if close == -1:
            continue
        sig_text = src.text[sig_pos:open_pos]
        nm = FUNC_NAME_RE.search(sig_text)
        name = nm.group(1) if nm else "<function>"
        yield name, sig_idx, open_pos + 1, close


def run_hot_path_alloc(fi: FileIndex, findings: list[Finding]) -> None:
    src = fi.src

    def flag(abs_pos: int, what: str, name: str) -> None:
        lineno = src.line_of(abs_pos)
        if fi.is_allowed(lineno, "hot-path-alloc"):
            return
        findings.append(Finding(
            src.path, lineno, "hot-path-alloc",
            f"{what} in hot function '{name}' (// ace-hot) — hot paths "
            "must be allocation-free in steady state; preallocate in the "
            "constructor or reuse cleared capacity", src.raw(lineno).strip()))

    for name, _sig, body_start, body_end in hot_function_bodies(fi):
        body = src.text[body_start:body_end]
        cleared = {normalize_chain(m.group(1))
                   for m in CLEARED_RE.finditer(body)}
        for m in HOT_NEW_RE.finditer(body):
            flag(body_start + m.start(), "operator new", name)
        for m in HOT_MAKE_RE.finditer(body):
            flag(body_start + m.start(), "make_unique/make_shared", name)
        for m in HOT_FUNCTION_RE.finditer(body):
            flag(body_start + m.start(), "std::function construction", name)
        for m in HOT_TOSTRING_RE.finditer(body):
            flag(body_start + m.start(), "std::to_string", name)
        for m in HOT_STRING_RE.finditer(body):
            flag(body_start + m.start(), "std::string construction", name)
        for m in HOT_PUSH_RE.finditer(body):
            recv = normalize_chain(m.group(1))
            if recv in fi.reserve_receivers or recv in cleared:
                continue
            flag(body_start + m.start(),
                 f"unreserved push_back into '{recv}'", name)
        # String-literal concatenation: a '+' whose neighbor (skipping
        # whitespace) sat inside a string literal.
        for lineno in range(src.line_of(body_start),
                            src.line_of(body_end) + 1):
            code = src.code_lines[lineno - 1]
            mask = src.string_masks[lineno - 1]
            for i, ch in enumerate(code):
                if ch != "+" or (i + 1 < len(code) and code[i + 1] == "+") \
                        or (i > 0 and code[i - 1] == "+"):
                    continue
                left = i - 1
                while left >= 0 and code[left] == " ":
                    left -= 1
                right = i + 1
                while right < len(code) and code[right] == " ":
                    right += 1
                if (left >= 0 and left < len(mask) and mask[left]) or \
                        (right < len(mask) and mask[right]):
                    if not fi.is_allowed(lineno, "hot-path-alloc"):
                        findings.append(Finding(
                            src.path, lineno, "hot-path-alloc",
                            f"string concatenation in hot function "
                            f"'{name}' (// ace-hot) — allocates; format "
                            "outside the hot path", src.raw(lineno).strip()))
                    break


# ---------------------------------------------------------------------------
# Pass 3d: digest-coverage (project-wide). Every data member of a class that
# declares digest_into must either appear in the digest body or carry an
# explicit justified '// ace-digest: exempt(member_): why' directive.
# ---------------------------------------------------------------------------


def run_digest_coverage(project: ProjectIndex,
                        findings: list[Finding]) -> None:
    for fi in project.files:
        if not structural_scope(fi.src.path):
            continue
        for info in fi.classes:
            if not info.declares_digest:
                continue
            body = info.inline_digest_body
            if body is None:
                body = project.digest_bodies.get(info.name)
            if body is None:
                continue  # declared here, defined in a file not linted
            used_exempts: set[str] = set()
            for name, lineno in info.members:
                covered = re.search(rf"\b{re.escape(name)}\b", body)
                exempt = info.exempts.get(name)
                if covered:
                    if exempt is not None:
                        ex_line, _reason = exempt
                        if not fi.is_allowed(ex_line, "digest-coverage"):
                            findings.append(Finding(
                                fi.src.path, ex_line, "digest-coverage",
                                f"stale exempt: '{name}' of {info.name} IS "
                                "read by digest_into — delete the "
                                "'ace-digest: exempt' directive",
                                fi.src.raw(ex_line).strip()))
                        used_exempts.add(name)
                    continue
                if exempt is not None:
                    ex_line, reason = exempt
                    used_exempts.add(name)
                    if not reason:
                        if not fi.is_allowed(ex_line, "digest-coverage"):
                            findings.append(Finding(
                                fi.src.path, ex_line, "digest-coverage",
                                f"exempt for '{name}' of {info.name} has no "
                                "justification — write "
                                f"'// ace-digest: exempt({name}): why this "
                                "is not protocol-visible state'",
                                fi.src.raw(ex_line).strip()))
                    continue
                if not fi.is_allowed(lineno, "digest-coverage"):
                    findings.append(Finding(
                        fi.src.path, lineno, "digest-coverage",
                        f"member '{name}' of {info.name} is not read by its "
                        "digest_into — digest it or justify with "
                        f"'// ace-digest: exempt({name}): reason'",
                        fi.src.raw(lineno).strip()))
            for name, (ex_line, _reason) in info.exempts.items():
                if name in used_exempts:
                    continue
                if not fi.is_allowed(ex_line, "digest-coverage"):
                    findings.append(Finding(
                        fi.src.path, ex_line, "digest-coverage",
                        f"exempt names '{name}' which is not a data member "
                        f"of {info.name} — stale or misspelled directive",
                        fi.src.raw(ex_line).strip()))


# ---------------------------------------------------------------------------
# Pass 3e: stale-allow. Any allow() site whose rule never fired at its
# target line is dead weight — the code was fixed, the rule changed, or the
# justification never matched anything. Unsuppressable here too: allowing
# 'stale-allow' would be a self-licensing loophole.
# ---------------------------------------------------------------------------


def run_stale_allow(fi: FileIndex, findings: list[Finding]) -> None:
    for lineno, rule in fi.allow_sites:
        if (lineno, rule) in fi.used_allow_sites:
            continue
        findings.append(Finding(
            fi.src.path, lineno, "stale-allow",
            f"allow({rule}) never matched a finding — the code it excused "
            "is gone or the suppression is on the wrong line; delete it",
            fi.src.raw(lineno).strip()))


# ---------------------------------------------------------------------------
# Driver: all passes over all files, stale-allow last (it needs the
# used_allow_sites bookkeeping the other passes produce).
# ---------------------------------------------------------------------------


def analyze(sources: list[SourceFile]) -> list[Finding]:
    findings: list[Finding] = []
    fis = [FileIndex(src, findings) for src in sources]
    project = ProjectIndex(fis)
    for fi in fis:
        run_line_rules(fi, findings)
        run_raw_id_cast(fi, findings)
        run_worker_shared_write(fi, findings)
        run_hot_path_alloc(fi, findings)
    run_digest_coverage(project, findings)
    for fi in fis:
        run_stale_allow(fi, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


# ---------------------------------------------------------------------------
# I/O and baseline machinery.
# ---------------------------------------------------------------------------


def load_file(root: str, rel: str) -> SourceFile:
    with open(os.path.join(root, rel), encoding="utf-8",
              errors="replace") as fh:
        raw = fh.read().splitlines()
    return SourceFile(path=rel.replace(os.sep, "/"), raw_lines=raw)


def iter_sources(root: str, paths: list[str]):
    exts = (".h", ".hpp", ".cpp", ".cc", ".cxx")
    for path in paths:
        full = os.path.join(root, path)
        if os.path.isfile(full):
            yield os.path.relpath(full, root)
            continue
        if not os.path.isdir(full):
            raise FileNotFoundError(f"no such file or directory: {path}")
        for dirpath, dirnames, filenames in os.walk(full):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(exts):
                    yield os.path.relpath(os.path.join(dirpath, name), root)


def load_baseline(path: str) -> list[dict]:
    """Baseline = JSONL, one finding per line; '#' comments and blank lines
    allowed. Identity is (path, rule, code) so line drift never expires an
    entry — only fixing (or changing) the flagged line does."""
    entries: list[dict] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as err:
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON ({err})") from err
            for key in ("path", "rule", "code"):
                if key not in obj or not isinstance(obj[key], str):
                    raise ValueError(
                        f"{path}:{lineno}: baseline entry missing string "
                        f"field '{key}'")
            if obj["rule"] not in RULES:
                raise ValueError(
                    f"{path}:{lineno}: unknown rule '{obj['rule']}'")
            entries.append(obj)
    return entries


def split_against_baseline(findings: list[Finding],
                           entries: list[dict]):
    """Consumes baseline entries (multiset on (path, rule, code)); returns
    (new_findings, baselined_findings, expired_entries)."""
    pool: dict[tuple[str, str, str], int] = {}
    for e in entries:
        k = (e["path"], e["rule"], e["code"].strip())
        pool[k] = pool.get(k, 0) + 1
    new: list[Finding] = []
    old: list[Finding] = []
    for f in findings:
        k = f.key()
        if pool.get(k, 0) > 0:
            pool[k] -= 1
            old.append(f)
        else:
            new.append(f)
    expired = [k for k, n in pool.items() for _ in range(n)]
    return new, old, expired


def emit(findings: list[Finding], fmt: str) -> None:
    for f in findings:
        print(f.to_json() if fmt == "jsonl" else f.render())


def run_lint(root: str, paths: list[str], fmt: str = "text",
             baseline_path: str | None = None, diff: bool = False,
             update_baseline: bool = False) -> int:
    sources = [load_file(root, rel) for rel in iter_sources(root, paths)]
    findings = analyze(sources)
    count = len(sources)

    if update_baseline:
        if baseline_path is None:
            print("ace-lint: --update-baseline requires --baseline",
                  file=sys.stderr)
            return 2
        with open(baseline_path, "w", encoding="utf-8") as fh:
            fh.write("# ace-lint baseline — accepted pre-existing findings."
                     "\n# Regenerate: tools/ace_lint.py <paths> "
                     "--baseline <this file> --update-baseline\n")
            for f in findings:
                fh.write(f.to_json() + "\n")
        print(f"ace-lint: wrote {len(findings)} finding(s) to "
              f"{baseline_path}", file=sys.stderr)
        return 0

    if baseline_path is not None and diff:
        entries = load_baseline(baseline_path)
        new, old, expired = split_against_baseline(findings, entries)
        emit(new, fmt)
        for k in expired:
            print(f"ace-lint: warning: expired baseline entry "
                  f"{k[0]} [{k[1]}] '{k[2]}' — rerun with "
                  "--update-baseline", file=sys.stderr)
        if new:
            print(f"ace-lint: {len(new)} new finding(s) "
                  f"({len(old)} baselined) in {count} file(s)",
                  file=sys.stderr)
            return 1
        print(f"ace-lint: clean ({count} files, {len(old)} baselined, "
              f"{len(expired)} expired baseline entr"
              f"{'y' if len(expired) == 1 else 'ies'})", file=sys.stderr)
        return 0

    emit(findings, fmt)
    if findings:
        print(f"ace-lint: {len(findings)} finding(s) in {count} file(s)",
              file=sys.stderr)
        return 1
    print(f"ace-lint: clean ({count} files)", file=sys.stderr)
    return 0


def validate_baseline(baseline_path: str, root: str,
                      paths: list[str]) -> int:
    """CI hygiene gate: the baseline must parse and contain no expired
    entries (an expired entry means the debt was paid — delete the line)."""
    try:
        entries = load_baseline(baseline_path)
    except (ValueError, OSError) as err:
        print(f"ace-lint: baseline invalid: {err}", file=sys.stderr)
        return 1
    sources = [load_file(root, rel) for rel in iter_sources(root, paths)]
    findings = analyze(sources)
    _new, _old, expired = split_against_baseline(findings, entries)
    if expired:
        for k in expired:
            print(f"ace-lint: expired baseline entry {k[0]} [{k[1]}] "
                  f"'{k[2]}'", file=sys.stderr)
        print(f"ace-lint: {len(expired)} expired baseline entr"
              f"{'y' if len(expired) == 1 else 'ies'} — the finding no "
              "longer fires; delete the stale line(s) or rerun "
              "--update-baseline", file=sys.stderr)
        return 1
    print(f"ace-lint: baseline ok ({len(entries)} entr"
          f"{'y' if len(entries) == 1 else 'ies'}, none expired)",
          file=sys.stderr)
    return 0


# ---------------------------------------------------------------------------
# Self-test fixtures. Two shapes:
#   (name, path, source, expected-rules)            — single file
#   (name, [(path, source), ...], expected-rules)   — cross-file analysis
# `expected` is the SET of rule codes that must fire (and no others).
# ---------------------------------------------------------------------------

FIXTURES = [
    ("range_for_over_unordered_map", "src/x/a.cpp", """
#include <unordered_map>
// ace-lint: allow(unordered-container): self-test fixture
std::unordered_map<int, int> table;
void f() {
  for (const auto& [k, v] : table) {
    (void)k;
  }
}
""", ["unordered-iter"]),
    ("iterator_loop_over_unordered_set", "src/x/b.cpp", """
#include <unordered_set>
// ace-lint: allow(unordered-container): self-test fixture
std::unordered_set<int> seen;
void f() {
  for (auto it = seen.begin(); it != seen.end(); ++it) {
  }
}
""", ["unordered-iter"]),
    ("allowed_iteration_is_clean", "src/x/c.cpp", """
#include <unordered_map>
// ace-lint: allow(unordered-container): counts drained into a sorted vector
std::unordered_map<int, int> counts;
void f() {
  // ace-lint: allow(unordered-iter): drained into a vector sorted below
  for (const auto& [k, v] : counts) {
  }
}
""", []),
    ("declaration_needs_justification", "src/x/d.h", """
#include <unordered_map>
struct S {
  std::unordered_map<int, int> index_;
};
""", ["unordered-container"]),
    ("allow_without_justification", "src/x/e.h", """
#include <unordered_map>
// ace-lint: allow(unordered-container)
std::unordered_map<int, int> index_;
""", ["bad-allow", "unordered-container"]),
    ("allow_unknown_rule", "src/x/f.h", """
// ace-lint: allow(made-up-rule): whatever
int x;
""", ["bad-allow"]),
    ("rand_banned", "src/x/g.cpp", """
#include <cstdlib>
int f() { return rand() % 6; }
""", ["banned-random"]),
    ("random_device_banned", "src/x/h.cpp", """
#include <random>
std::random_device rd;
""", ["banned-random"]),
    ("rng_module_exempt", "src/util/rng.cpp", """
#include <random>
std::random_device rd;
""", []),
    ("clock_now_banned", "src/x/i.cpp", """
#include <chrono>
auto f() { return std::chrono::steady_clock::now(); }
""", ["banned-clock"]),
    ("time_null_banned", "src/x/j.cpp", """
#include <ctime>
auto f() { return time(nullptr); }
""", ["banned-clock"]),
    ("sim_time_methods_fine", "src/x/k.cpp", """
struct Q { double next_time(); double now(); };
double f(Q& q) { return q.next_time() + q.now(); }
""", []),
    ("pointer_keyed_map", "src/x/l.cpp", """
#include <map>
struct Peer;
std::map<Peer*, int> ranks;
""", ["pointer-key"]),
    ("address_comparison", "src/x/m.cpp", """
bool f(int a, int b) { return &a < &b; }
""", ["addr-compare"]),
    ("float_accum_in_allowed_loop", "src/x/n.cpp", """
#include <unordered_map>
// ace-lint: allow(unordered-container): self-test fixture
std::unordered_map<int, double> weights;
double f() {
  double total = 0;
  // ace-lint: allow(unordered-iter): claims the sum is order-free (it isn't)
  for (const auto& [k, w] : weights) {
    total += w;
  }
  return total;
}
""", ["float-accum-unordered"]),
    ("comments_and_strings_ignored", "src/x/o.cpp", """
// rand() in a comment, time(NULL) too
const char* s = "std::random_device inside a string";
/* std::mt19937 in a block comment */
int x;
""", []),
    ("tests_exempt_from_structural_rules", "tests/t.cpp", """
#include <unordered_map>
std::unordered_map<int, int> m;
void f() {
  for (const auto& [k, v] : m) {
  }
}
""", []),
    ("tests_still_banned_random", "tests/u.cpp", """
#include <random>
std::mt19937 gen;
""", ["banned-random"]),
    ("overlay_adjacency_bypass", "src/x/p.cpp", """
struct G { bool add_edge(int, int, double); bool remove_edge(int, int); };
struct O {
  G logical_;
  void hack() {
    logical_.add_edge(1, 2, 0.5);
    logical_.remove_edge(1, 2);
  }
};
""", ["overlay-adjacency-write"]),
    ("overlay_adjacency_allowed_mutator", "src/x/q.cpp", """
struct G { void isolate(int); };
struct O {
  G logical_;
  void leave(int p) {
    // ace-lint: allow(overlay-adjacency-write): the version-bumping mutator
    logical_.isolate(p);
  }
};
""", []),
    ("overlay_adjacency_reads_fine", "src/x/r.cpp", """
struct G { int degree(int) const; bool has_edge(int, int) const; };
struct O {
  G logical_;
  int deg(int p) const { return logical_.degree(p); }
  bool linked(int a, int b) const { return logical_.has_edge(a, b); }
};
""", []),

    # --- worker-shared-write ------------------------------------------------
    ("worker_captured_write_flagged", "src/x/ws1.cpp", """
struct TrialRunner { template <class F> void run_indexed(int, F); };
void f(TrialRunner& runner) {
  double total = 0.0;
  runner.run_indexed(8, [&](std::size_t i) {
    total += static_cast<double>(i);
  });
}
""", ["worker-shared-write"]),
    ("worker_slot_indexed_clean", "src/x/ws2.cpp", """
#include <vector>
struct TrialRunner { template <class F> void run_indexed(int, F); };
void f(TrialRunner& runner) {
  std::vector<double> slots(8);
  runner.run_indexed(8, [&](std::size_t i) {
    slots[i] = static_cast<double>(i) * 2.0;
  });
}
""", []),
    ("worker_atomic_clean", "src/x/ws3.cpp", """
#include <atomic>
struct TrialRunner { template <class F> void run_indexed(int, F); };
void f(TrialRunner& runner) {
  std::atomic<std::size_t> done{0};
  runner.run_indexed(8, [&](std::size_t i) {
    done.fetch_add(1, std::memory_order_relaxed);
  });
}
""", []),
    ("worker_local_write_clean", "src/x/ws4.cpp", """
struct TrialRunner { template <class F> void run_indexed(int, F); };
void f(TrialRunner& runner) {
  runner.run_indexed(8, [&](std::size_t i) {
    double local = 0.0;
    local += static_cast<double>(i);
    (void)local;
  });
}
""", []),
    ("worker_container_push_flagged", "src/x/ws5.cpp", """
#include <vector>
struct TrialRunner { template <class F> void run_indexed(int, F); };
void f(TrialRunner& runner) {
  std::vector<int> results;
  runner.run_indexed(8, [&](std::size_t i) {
    results.push_back(static_cast<int>(i));
  });
}
""", ["worker-shared-write"]),
    ("worker_lock_guarded_clean", "src/x/ws6.cpp", """
#include <mutex>
struct TrialRunner { template <class F> void run_indexed(int, F); };
void f(TrialRunner& runner, std::mutex& m) {
  int total = 0;
  runner.run_indexed(8, [&](std::size_t i) {
    std::lock_guard<std::mutex> lock(m);
    total += static_cast<int>(i);
  });
}
""", []),
    ("worker_allowed_write", "src/x/ws7.cpp", """
struct TrialRunner { template <class F> void run_indexed(int, F); };
void f(TrialRunner& runner) {
  int flag = 0;
  runner.run_indexed(1, [&](std::size_t i) {
    // ace-lint: allow(worker-shared-write): single-trial run, no workers
    flag = 1;
  });
}
""", []),
    ("worker_rule_applies_in_tests", "tests/ws8.cpp", """
struct TrialRunner { template <class F> void run_indexed(int, F); };
void f(TrialRunner& runner) {
  std::size_t calls = 0;
  runner.run_indexed(4, [&](std::size_t i) {
    ++calls;
  });
}
""", ["worker-shared-write"]),
    ("worker_subtasks_captured_write_flagged", "src/x/ws9.cpp", """
struct TrialRunner { template <class F> void run_subtasks(int, F); };
void f(TrialRunner& runner) {
  int merged = 0;
  runner.run_subtasks(8, [&](std::size_t lane, std::size_t index) {
    merged += static_cast<int>(lane + index);
  });
}
""", ["worker-shared-write"]),
    ("worker_subtasks_lane_slot_clean", "src/x/ws10.cpp", """
#include <vector>
struct Scratch { void reset(); };
struct TrialRunner { template <class F> void run_subtasks(int, F); };
void f(TrialRunner* subtasks, std::vector<int>& slots,
       std::vector<Scratch>& scratch) {
  // Both sanctioned shapes: per-subtask result slots keyed by the second
  // parameter, per-lane scratch arenas keyed by the first (DESIGN.md §15).
  subtasks->run_subtasks(8, [&](std::size_t lane, std::size_t index) {
    scratch[lane].reset();
    slots[index] = static_cast<int>(lane);
  });
}
""", []),
    ("worker_query_slot_replay_clean", "src/x/ws11.cpp", """
#include <vector>
struct QueryResult { int traffic; };
struct QueryStats { void add(const QueryResult&); };
struct Scratch {};
QueryResult run_one(int key, Scratch& scratch);
struct TrialRunner { template <class F> void run_subtasks(int, F); };
void f(TrialRunner* subtasks, std::vector<int>& keys,
       std::vector<QueryResult>& slots, std::vector<Scratch>& scratch) {
  // The parallel measurement shape (sample_queries): each subtask writes
  // only its own index-keyed result slot from lane-keyed scratch; the
  // order-sensitive aggregation replays sequentially after the join.
  subtasks->run_subtasks(8, [&](std::size_t lane, std::size_t index) {
    slots[index] = run_one(keys[index], scratch[lane]);
  });
  QueryStats stats;
  for (const QueryResult& slot : slots) stats.add(slot);
}
""", []),
    ("worker_query_stats_merge_flagged", "src/x/ws12.cpp", """
struct QueryResult { int traffic; };
struct QueryStats { void merge(const QueryStats&); };
QueryStats measure_one(std::size_t index);
struct TrialRunner { template <class F> void run_subtasks(int, F); };
void f(TrialRunner* subtasks) {
  QueryStats stats;
  subtasks->run_subtasks(8, [&](std::size_t lane, std::size_t index) {
    stats.merge(measure_one(index));
  });
}
""", ["worker-shared-write"]),

    # --- hot-path-alloc -----------------------------------------------------
    ("hot_new_flagged", "src/x/h1.cpp", """
// ace-hot
void kernel() {
  int* p = new int[16];
  delete[] p;
}
""", ["hot-path-alloc"]),
    ("hot_make_unique_flagged", "src/x/h2.cpp", """
#include <memory>
struct Big {};
// ace-hot
void kernel() {
  auto p = std::make_unique<Big>();
  (void)p;
}
""", ["hot-path-alloc"]),
    ("hot_unreserved_push_flagged", "src/x/h3.cpp", """
#include <vector>
struct K {
  std::vector<int> out_;
  // ace-hot
  void run() {
    out_.push_back(1);
  }
};
""", ["hot-path-alloc"]),
    ("hot_file_reserved_push_clean", "src/x/h4.cpp", """
#include <vector>
struct K {
  std::vector<int> out_;
  K() { out_.reserve(64); }
  // ace-hot
  void run() {
    out_.push_back(1);
  }
};
""", []),
    # Oracle estimate paths (src/oracle/) are // ace-hot query kernels: an
    # unreserved push_back while answering a delay query is a regression.
    ("hot_oracle_estimate_alloc_flagged", "src/oracle/x1.cpp", """
#include <vector>
struct Oracle {
  std::vector<float> coords_;
  std::vector<float> scratch_;
  // ace-hot
  double delay(std::size_t a, std::size_t b) {
    scratch_.push_back(coords_[a]);
    return coords_[a] + coords_[b];
  }
};
""", ["hot-path-alloc"]),
    ("hot_oracle_estimate_index_clean", "src/oracle/x2.cpp", """
#include <cstddef>
struct Oracle {
  const float* coords_;
  std::size_t dims_;
  // ace-hot
  double delay(std::size_t a, std::size_t b) const {
    double sum = 0;
    for (std::size_t k = 0; k < dims_; ++k) {
      const double d = coords_[a * dims_ + k] - coords_[b * dims_ + k];
      sum += d * d;
    }
    return sum;
  }
};
""", []),
    ("hot_cleared_push_clean", "src/x/h5.cpp", """
#include <vector>
// ace-hot
void run(std::vector<int>& scratch) {
  scratch.clear();
  scratch.push_back(1);
}
""", []),
    ("hot_std_function_flagged", "src/x/h6.cpp", """
#include <functional>
// ace-hot
void run() {
  std::function<int(int)> f = [](int x) { return x; };
  (void)f;
}
""", ["hot-path-alloc"]),
    ("hot_string_concat_flagged", "src/x/h7.cpp", """
#include <string>
// ace-hot
void run(std::string& out, int id) {
  out = "peer-" + std::to_string(id);
}
""", ["hot-path-alloc"]),
    ("untagged_function_not_checked", "src/x/h8.cpp", """
#include <memory>
struct Big {};
void cold_setup() {
  auto p = std::make_unique<Big>();
  (void)p;
}
""", []),
    ("hot_allowed_alloc", "src/x/h9.cpp", """
// ace-hot
void run() {
  // ace-lint: allow(hot-path-alloc): one-time lazy init, branch-guarded
  int* p = new int;
  delete p;
}
""", []),

    # --- digest-coverage ----------------------------------------------------
    ("digest_missing_member_flagged", "src/x/d1.h", """
#include <cstdint>
struct Fnv1a;
class Counter {
 public:
  void digest_into(Fnv1a& digest) const {
    digest.update(hits_);
  }
 private:
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};
""", ["digest-coverage"]),
    ("digest_all_covered_clean", "src/x/d2.h", """
#include <cstdint>
struct Fnv1a;
class Counter {
 public:
  void digest_into(Fnv1a& digest) const {
    digest.update(hits_);
    digest.update(misses_);
  }
 private:
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};
""", []),
    ("digest_exempt_with_reason_clean", "src/x/d3.h", """
#include <cstdint>
struct Fnv1a;
class Counter {
 public:
  void digest_into(Fnv1a& digest) const {
    digest.update(hits_);
  }
 private:
  std::uint64_t hits_ = 0;
  // ace-digest: exempt(scratch_): rebuilt from hits_ on demand, not state
  std::uint64_t scratch_ = 0;
};
""", []),
    ("digest_stale_exempt_flagged", "src/x/d4.h", """
#include <cstdint>
struct Fnv1a;
class Counter {
 public:
  void digest_into(Fnv1a& digest) const {
    digest.update(hits_);
  }
 private:
  // ace-digest: exempt(hits_): not protocol state (it is — and digested)
  std::uint64_t hits_ = 0;
};
""", ["digest-coverage"]),
    ("digest_exempt_without_reason_flagged", "src/x/d5.h", """
#include <cstdint>
struct Fnv1a;
class Counter {
 public:
  void digest_into(Fnv1a& digest) const {
    digest.update(hits_);
  }
 private:
  std::uint64_t hits_ = 0;
  // ace-digest: exempt(scratch_)
  std::uint64_t scratch_ = 0;
};
""", ["digest-coverage"]),
    ("digest_unknown_exempt_flagged", "src/x/d6.h", """
#include <cstdint>
struct Fnv1a;
class Counter {
 public:
  void digest_into(Fnv1a& digest) const {
    digest.update(hits_);
  }
 private:
  // ace-digest: exempt(retired_member_): member was deleted last release
  std::uint64_t hits_ = 0;
};
""", ["digest-coverage"]),
    ("digest_cross_file_coverage", [
        ("src/x/d7.h", """
#include <cstdint>
struct Fnv1a;
class Meter {
 public:
  void digest_into(Fnv1a& digest) const;
 private:
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};
"""),
        ("src/x/d7.cpp", """
#include "d7.h"
void Meter::digest_into(Fnv1a& digest) const {
  digest.update(reads_);
}
"""),
    ], ["digest-coverage"]),
    ("digest_cross_file_clean", [
        ("src/x/d8.h", """
#include <cstdint>
struct Fnv1a;
class Meter {
 public:
  void digest_into(Fnv1a& digest) const;
 private:
  std::uint64_t reads_ = 0;
};
"""),
        ("src/x/d8.cpp", """
#include "d8.h"
void Meter::digest_into(Fnv1a& digest) const {
  digest.update(reads_);
}
"""),
    ], []),
    ("digest_tests_scope_skipped", "tests/d9.h", """
#include <cstdint>
struct Fnv1a;
class Counter {
 public:
  void digest_into(Fnv1a& digest) const {
    digest.update(hits_);
  }
 private:
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};
""", []),

    # --- stale-allow --------------------------------------------------------
    ("stale_allow_flagged", "src/x/s1.cpp", """
// ace-lint: allow(banned-random): there used to be a rand() call here
int f() { return 4; }
""", ["stale-allow"]),
    ("stale_allow_structural_in_tests", "tests/s2.cpp", """
#include <unordered_map>
// ace-lint: allow(unordered-container): structural rules don't run here
std::unordered_map<int, int> m;
""", ["stale-allow"]),
    ("used_allow_not_stale", "src/x/s3.cpp", """
#include <cstdlib>
// ace-lint: allow(banned-random): seeding fixture, justified
int f() { return rand(); }
""", []),
    ("stale_allow_not_suppressable", "src/x/s4.cpp", """
// ace-lint: allow(stale-allow): trying to suppress the suppressor
int x;
""", ["bad-allow"]),
    # --- raw-id-cast --------------------------------------------------------
    ("raw_id_brace_from_variable_flagged", "src/x/id1.cpp", """
#include "util/strong_id.h"
ace::PeerId bless(std::uint32_t raw) { return ace::PeerId{raw}; }
""", ["raw-id-cast"]),
    ("raw_id_static_cast_flagged", "src/x/id2.cpp", """
#include "util/strong_id.h"
ace::PeerId bless(std::uint32_t raw) {
  return static_cast<ace::PeerId>(raw);
}
""", ["raw-id-cast"]),
    ("raw_id_boundary_same_line_ok", "src/x/id3.cpp", """
#include "util/strong_id.h"
ace::PeerId bless(std::uint32_t raw) {
  return ace::PeerId{raw};  // ace-id: boundary(slot index by construction)
}
""", []),
    ("raw_id_boundary_preceding_line_ok", "src/x/id4.cpp", """
#include "util/strong_id.h"
ace::PeerId bless(std::uint32_t raw) {
  // ace-id: boundary(slot index by construction)
  return ace::PeerId{raw};
}
""", []),
    ("raw_id_literal_and_default_ok", "src/x/id5.cpp", """
#include "util/strong_id.h"
void f() {
  ace::PeerId a{3};
  ace::PeerId b{};
  ace::HostId h;
  for (ace::PeerId p{0}; p < 8; ++p) { (void)p; }
  (void)a; (void)b; (void)h;
}
""", []),
    ("raw_id_declaration_flagged", "src/x/id6.cpp", """
#include "util/strong_id.h"
void f(std::size_t n) {
  const ace::PeerId q{static_cast<std::uint32_t>(n)};
  (void)q;
}
""", ["raw-id-cast"]),
    ("raw_id_value_into_kernel_ok", "src/x/id7.cpp", """
#include "util/strong_id.h"
double kernel(std::uint32_t node);
double lookup(ace::PeerId p) { return kernel(p.value()); }
""", []),
    ("raw_id_out_of_scope_in_tests", "tests/id8.cpp", """
#include "util/strong_id.h"
ace::PeerId bless(std::uint32_t raw) { return ace::PeerId{raw}; }
""", []),
    ("raw_id_empty_boundary_reason_still_fires", "src/x/id9.cpp", """
#include "util/strong_id.h"
ace::PeerId bless(std::uint32_t raw) {
  return ace::PeerId{raw};  // ace-id: boundary()
}
""", ["raw-id-cast"]),
]


def self_test() -> int:
    failures = 0
    for fixture in FIXTURES:
        name, spec, expected = fixture[0], fixture[1], fixture[-1]
        if isinstance(spec, str):
            files = [(spec, fixture[2])]
        else:
            files = spec
        sources = [SourceFile(path=p, raw_lines=s.splitlines())
                   for p, s in files]
        findings = analyze(sources)
        got = sorted({f.rule for f in findings})
        want = sorted(set(expected))
        if got != want:
            failures += 1
            print(f"FAIL {name}: expected {want}, got {got}",
                  file=sys.stderr)
            for f in findings:
                print(f"  {f.render()}", file=sys.stderr)
        else:
            print(f"ok   {name}")
    if failures:
        print(f"ace-lint self-test: {failures} failure(s)", file=sys.stderr)
        return 1
    print(f"ace-lint self-test: all {len(FIXTURES)} fixtures pass")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=None,
                        help="files/directories to lint (default: "
                             "src examples)")
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--format", choices=("text", "jsonl"),
                        default="text", dest="fmt",
                        help="finding output format (default: text)")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="JSONL baseline of accepted findings")
    parser.add_argument("--diff", action="store_true",
                        help="with --baseline: fail only on findings NOT "
                             "in the baseline")
    parser.add_argument("--update-baseline", action="store_true",
                        help="with --baseline: rewrite the baseline from "
                             "the current findings")
    parser.add_argument("--validate-baseline", action="store_true",
                        help="with --baseline: check the baseline parses "
                             "and has no expired entries, then exit")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded fixture suite and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    paths = args.paths or ["src", "examples"]
    try:
        if args.validate_baseline:
            if args.baseline is None:
                print("ace-lint: --validate-baseline requires --baseline",
                      file=sys.stderr)
                return 2
            return validate_baseline(args.baseline, root, paths)
        return run_lint(root, paths, fmt=args.fmt,
                        baseline_path=args.baseline, diff=args.diff,
                        update_baseline=args.update_baseline)
    except FileNotFoundError as err:
        print(f"ace-lint: {err}", file=sys.stderr)
        return 2
    except ValueError as err:
        print(f"ace-lint: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
