#!/usr/bin/env python3
"""Compare BENCH_*.json perf records against a baseline directory.

Every bench binary drops a BENCH_<name>.json perf record (wall time,
trials/sec, oracle cache counters, provenance) into its --out-dir;
bench_micro additionally records per-case ns/op under "cases". This script
diffs a fresh set of records against checked-in (or CI-cached) baselines
and fails when any metric regressed by more than --threshold.

Comparison rules, per record:
  * both sides carry a "cases" object  ->  per-case ns/op comparison
    (bench_micro); a case missing from either side is reported but never
    fails the run (benchmarks come and go);
  * otherwise                          ->  wall_time_s comparison, plus a
    "rebuild_s" comparison (engine-round wall time — the metric the
    intra-trial batch path accelerates) whenever both sides carry it, at
    the top level and inside per-cell "records" arrays (BENCH_scale.json).

A record with no matching baseline seeds the baseline (the file is copied
into --baseline-dir) and passes — so the first run of a fresh checkout or
a cold CI cache establishes the reference instead of failing. Pass
--no-seed to treat missing baselines as errors instead.

Wall-clock numbers are only comparable on the same machine class; the CI
bench-smoke job keeps its baselines in a runner-scoped cache for exactly
that reason.

Exit status: 0 = no regression, 1 = regression or (with --no-seed)
missing baseline, 2 = usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path


def load_record(path: Path):
    try:
        with path.open() as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        return None


def compare_metric(label: str, base: float, cur: float, threshold: float):
    """Returns (regressed, delta-or-None, line) for one metric."""
    if base <= 0:
        return (False, None,
                f"  {label}: baseline {base:g} not comparable, skipped")
    ratio = cur / base - 1.0
    mark = "ok"
    if ratio > threshold:
        mark = "REGRESSION"
    elif ratio < -threshold:
        mark = "improved"
    line = (f"  {label}: {base:g} -> {cur:g} "
            f"({ratio:+.1%}, threshold {threshold:.0%}) {mark}")
    return mark == "REGRESSION", ratio, line


def compare_record(name: str, baseline: dict, current: dict,
                   threshold: float):
    """Prints the per-metric report. Returns (regressed, worst) where
    `worst` is the record's largest relative slowdown as a "+x.x% label"
    string (None when nothing was comparable)."""
    regressed = False
    worst = None  # (ratio, label)
    base_cases = baseline.get("cases")
    cur_cases = current.get("cases")
    if isinstance(base_cases, dict) and isinstance(cur_cases, dict):
        for case in sorted(base_cases):
            if case not in cur_cases:
                print(f"  {case}: missing from current run (not failing)")
                continue
            bad, ratio, line = compare_metric(f"{case} ns/op",
                                              base_cases[case],
                                              cur_cases[case], threshold)
            regressed |= bad
            if ratio is not None and (worst is None or ratio > worst[0]):
                worst = (ratio, case)
            print(line)
        for case in sorted(set(cur_cases) - set(base_cases)):
            print(f"  {case}: new case, no baseline (not failing)")
    else:
        bad, ratio, line = compare_metric(
            "wall_time_s", float(baseline.get("wall_time_s", 0.0)),
            float(current.get("wall_time_s", 0.0)), threshold)
        print(line)
        regressed = bad
        if ratio is not None:
            worst = (ratio, "wall_time_s")
        # rebuild_s gates exactly like wall time once both sides carry it
        # (older baselines predate the field; they keep passing untouched).
        if "rebuild_s" in baseline and "rebuild_s" in current:
            bad, ratio, line = compare_metric(
                "rebuild_s", float(baseline["rebuild_s"]),
                float(current["rebuild_s"]), threshold)
            print(line)
            regressed |= bad
            if ratio is not None and (worst is None or ratio > worst[0]):
                worst = (ratio, "rebuild_s")
        # qps is a throughput (higher is better), so the regression
        # direction is inverted: gate on its reciprocal, seconds per
        # query, which compare_metric treats like any other time.
        if baseline.get("qps") and current.get("qps"):
            bad, ratio, line = compare_metric(
                "s_per_query (1/qps)", 1.0 / float(baseline["qps"]),
                1.0 / float(current["qps"]), threshold)
            print(line)
            regressed |= bad
            if ratio is not None and (worst is None or ratio > worst[0]):
                worst = (ratio, "qps")
        # Per-cell records (BENCH_scale.json): match cells on their
        # identifying keys and gate each cell's rebuild_s individually, so
        # one topology scale regressing can't hide inside the total.
        base_records = baseline.get("records")
        cur_records = current.get("records")
        if isinstance(base_records, list) and isinstance(cur_records, list):
            def cell_key(rec):
                return tuple(
                    (k, rec[k]) for k in ("hosts", "oracle") if k in rec)
            cur_by_key = {cell_key(r): r for r in cur_records}
            for rec in base_records:
                if "rebuild_s" not in rec:
                    continue
                other = cur_by_key.get(cell_key(rec))
                label = "/".join(
                    str(v) for _, v in cell_key(rec)) or "record"
                if other is None or "rebuild_s" not in other:
                    print(f"  {label}: missing from current run "
                          "(not failing)")
                    continue
                bad, ratio, line = compare_metric(
                    f"{label} rebuild_s", float(rec["rebuild_s"]),
                    float(other["rebuild_s"]), threshold)
                print(line)
                regressed |= bad
                if ratio is not None and (worst is None
                                          or ratio > worst[0]):
                    worst = (ratio, f"{label} rebuild_s")
    # Peak RSS is informational only: memory moves with allocator, OS page
    # accounting, and oracle mode, so it never trips the regression gate.
    base_rss = baseline.get("peak_rss_bytes")
    cur_rss = current.get("peak_rss_bytes")
    if cur_rss:
        if base_rss:
            print(f"  peak_rss: {base_rss / 2**20:.1f} MiB -> "
                  f"{cur_rss / 2**20:.1f} MiB (informational)")
        else:
            print(f"  peak_rss: {cur_rss / 2**20:.1f} MiB (informational)")
    summary = None
    if worst is not None:
        summary = f"{worst[0]:+.1%} {worst[1]}"
    return regressed, summary


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--current-dir", default=".", type=Path,
                        help="directory holding freshly produced "
                             "BENCH_*.json records (default: .)")
    parser.add_argument("--baseline-dir", default=Path("bench/baselines"),
                        type=Path,
                        help="directory of baseline records "
                             "(default: bench/baselines)")
    parser.add_argument("--threshold", default=0.25, type=float,
                        help="relative regression that fails the run "
                             "(default: 0.25 = 25%%)")
    parser.add_argument("--no-seed", action="store_true",
                        help="fail on a missing baseline instead of seeding "
                             "it from the current record")
    args = parser.parse_args()

    records = sorted(args.current_dir.glob("BENCH_*.json"))
    if not records:
        print(f"error: no BENCH_*.json under {args.current_dir}",
              file=sys.stderr)
        return 2

    failed = False
    seeded = 0
    outcomes = []  # (record name, status, worst-delta summary or None)
    for record_path in records:
        current = load_record(record_path)
        if current is None:
            return 2
        baseline_path = args.baseline_dir / record_path.name
        print(f"{record_path.name}:")
        if not baseline_path.exists():
            if args.no_seed:
                print("  no baseline (--no-seed): FAIL")
                failed = True
                outcomes.append((record_path.name, "MISSING BASELINE", None))
                continue
            args.baseline_dir.mkdir(parents=True, exist_ok=True)
            shutil.copyfile(record_path, baseline_path)
            print(f"  no baseline; seeded {baseline_path}")
            seeded += 1
            outcomes.append((record_path.name, "seeded", None))
            continue
        baseline = load_record(baseline_path)
        if baseline is None:
            return 2
        regressed, summary = compare_record(record_path.name, baseline,
                                            current, args.threshold)
        failed |= regressed
        outcomes.append((record_path.name,
                         "REGRESSION" if regressed else "ok", summary))

    # Per-case regression summary: one line per record, worst delta first,
    # so a long CI log ends with the actionable overview.
    print(f"\nsummary (threshold {args.threshold:.0%}):")
    for name, status, summary in sorted(
            outcomes, key=lambda o: (o[1] not in ("REGRESSION",
                                                  "MISSING BASELINE"), o[0])):
        detail = f" (worst: {summary})" if summary else ""
        print(f"  {name}: {status}{detail}")
    if seeded:
        print(f"{seeded} baseline(s) seeded; subsequent runs will compare.")
    print("bench-compare:", "FAIL" if failed else "PASS")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
