#!/usr/bin/env python3
"""determinism_check: assert bitwise-reproducible simulation.

Runs every example binary twice with --digest-out under deliberately
different process environments — perturbed malloc (MALLOC_PERTURB_),
shifted environment-block size (changes initial stack layout), and, when
`setarch` is available, ASLR disabled on one run only — then byte-diffs
the two digest traces. Any dependence on address layout, hash seeding, or
allocation order shows up as a trace mismatch, and the first differing row
names the phase and subsystem that diverged (see util/digest.h).

Usage:
    determinism_check.py --build-dir BUILD [--keep] [example ...]

Exit status: 0 all traces identical, 1 divergence or run failure, 2 usage.
"""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import sys
import tempfile

# entry name -> (binary, run-A args[, run-B args]). Each binary must
# support --digest-out and exercise a distinct slice of the stack: static
# rounds, churn + workload, depth sweep, cache composition. Binaries are
# resolved under <build-dir>/examples/ unless the name carries a subdir
# (e.g. "bench/bench_optrate"). When run-B args are given, the two runs use
# DIFFERENT configurations that must still produce identical traces — the
# *-intra entries use this to pin down that the intra-trial conflict-free
# batch path (DESIGN.md §15) is byte-identical at any lane count. A literal
# "{work_dir}" in an argument is replaced with the scratch directory. The
# *-lossy entries rerun a binary through the event-driven fault-injecting
# transport (src/transport/), whose drop/jitter draws must be exactly as
# reproducible as the ideal analytic mode.
EXAMPLES = {
    "quickstart": ("quickstart",
                   ["--peers=64", "--phys-nodes=256", "--rounds=4",
                    "--seed=42"]),
    "quickstart-lossy": ("quickstart",
                         ["--peers=64", "--phys-nodes=256", "--rounds=4",
                          "--seed=42", "--transport=lossy",
                          "--loss-rate=0.05", "--jitter=0.5"]),
    # The *-landmark/*-vivaldi entries rerun quickstart with an approximate
    # cost oracle attached (src/oracle/): the belief path must be exactly as
    # reproducible as the exact mode, and the trace must carry the extra
    # "cost-oracle" digest component on every row.
    "quickstart-landmark": ("quickstart",
                            ["--peers=64", "--phys-nodes=256", "--rounds=4",
                             "--seed=42", "--oracle=landmark:8"]),
    "quickstart-vivaldi": ("quickstart",
                           ["--peers=64", "--phys-nodes=256", "--rounds=4",
                            "--seed=42", "--oracle=vivaldi:4"]),
    "gnutella_churn": ("gnutella_churn",
                       ["--peers=64", "--phys-nodes=256", "--duration=180",
                        "--seed=7"]),
    "gnutella_churn-lossy": ("gnutella_churn",
                             ["--peers=64", "--phys-nodes=256",
                              "--duration=180", "--seed=7",
                              "--transport=lossy", "--loss-rate=0.05"]),
    "depth_tuning": ("depth_tuning",
                     ["--peers=48", "--phys-nodes=192", "--max-depth=2",
                      "--seed=11"]),
    "cache_combo": ("cache_combo",
                    ["--peers=48", "--phys-nodes=192", "--duration=120",
                     "--seed=5"]),
    # Intra-trial parallelism: run A sequential, run B on 8 rebuild lanes.
    # The digest traces must match byte-for-byte on top of the usual
    # environment perturbation (two-phase commit in canonical order).
    "quickstart-intra": ("quickstart",
                         ["--peers=64", "--phys-nodes=256", "--rounds=4",
                          "--seed=42", "--intra-threads=1"],
                         ["--peers=64", "--phys-nodes=256", "--rounds=4",
                          "--seed=42", "--intra-threads=8"]),
    "quickstart-intra-lossy": ("quickstart",
                               ["--peers=64", "--phys-nodes=256",
                                "--rounds=4", "--seed=42",
                                "--transport=lossy", "--loss-rate=0.05",
                                "--intra-threads=1"],
                               ["--peers=64", "--phys-nodes=256",
                                "--rounds=4", "--seed=42",
                                "--transport=lossy", "--loss-rate=0.05",
                                "--intra-threads=8"]),
    # Query-lane determinism (DESIGN.md §16): run A measures on one lane,
    # run B on 8. The trace's measure-blind/measure-ace query-stats rows
    # fold every per-query Welford update, so one out-of-order add() or a
    # cross-lane scratch leak flips the diff.
    "quickstart-query-intra": ("quickstart",
                               ["--peers=64", "--phys-nodes=256",
                                "--rounds=2", "--queries=120", "--seed=42",
                                "--intra-threads=1"],
                               ["--peers=64", "--phys-nodes=256",
                                "--rounds=2", "--queries=120", "--seed=42",
                                "--intra-threads=8"]),
    # The optrate bench is the parallel path's flagship workload: one large
    # trial whose --threads flag drives the intra-trial pool directly.
    "optrate-intra": ("bench/bench_optrate",
                      ["--phys-nodes=512", "--peers=128", "--queries=30",
                       "--rounds=3", "--maintenance-rounds=2", "--seed=9",
                       "--threads=1", "--out-dir={work_dir}"],
                      ["--phys-nodes=512", "--peers=128", "--queries=30",
                       "--rounds=3", "--maintenance-rounds=2", "--seed=9",
                       "--threads=8", "--out-dir={work_dir}"]),
}


def perturbed_env(variant: int) -> dict:
    """A process environment that shifts heap and stack layout."""
    env = dict(os.environ)
    if variant == 0:
        env.pop("MALLOC_PERTURB_", None)
        for k in list(env):
            if k.startswith("ACE_DETCHECK_PAD"):
                del env[k]
    else:
        # Poison freed memory with a different byte and grow the
        # environment block so argv/envp land at different addresses.
        env["MALLOC_PERTURB_"] = str(42 + variant)
        for i in range(16 * variant):
            env[f"ACE_DETCHECK_PAD{i}"] = "x" * 97
    return env


def run_once(binary: str, args: list, out_path: str, variant: int,
             disable_aslr: bool) -> int:
    cmd = [binary, *args, f"--digest-out={out_path}"]
    if disable_aslr and shutil.which("setarch"):
        cmd = ["setarch", os.uname().machine, "-R", *cmd]
    proc = subprocess.run(cmd, env=perturbed_env(variant),
                          stdout=subprocess.DEVNULL,
                          stderr=subprocess.PIPE)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr.decode(errors="replace"))
    return proc.returncode


def first_diff(path_a: str, path_b: str):
    with open(path_a, "rb") as fa, open(path_b, "rb") as fb:
        a_lines, b_lines = fa.readlines(), fb.readlines()
    for i, (la, lb) in enumerate(zip(a_lines, b_lines), start=1):
        if la != lb:
            return i, la, lb
    if len(a_lines) != len(b_lines):
        i = min(len(a_lines), len(b_lines)) + 1
        la = a_lines[i - 1] if i <= len(a_lines) else b"<missing>"
        lb = b_lines[i - 1] if i <= len(b_lines) else b"<missing>"
        return i, la, lb
    return None


def check_example(name: str, build_dir: str, work_dir: str) -> bool:
    entry = EXAMPLES[name]
    binary_name, args_a = entry[0], entry[1]
    args_b = entry[2] if len(entry) > 2 else args_a
    subdir = "" if os.sep in binary_name or "/" in binary_name else "examples"
    binary = os.path.join(build_dir, subdir, binary_name)
    if not os.path.exists(binary):
        print(f"FAIL {name}: binary not found at {binary}", file=sys.stderr)
        return False
    args_a = [a.replace("{work_dir}", work_dir) for a in args_a]
    args_b = [a.replace("{work_dir}", work_dir) for a in args_b]
    trace_a = os.path.join(work_dir, f"{name}.a.csv")
    trace_b = os.path.join(work_dir, f"{name}.b.csv")
    if run_once(binary, args_a, trace_a, variant=0, disable_aslr=False) != 0:
        print(f"FAIL {name}: run A exited nonzero", file=sys.stderr)
        return False
    if run_once(binary, args_b, trace_b, variant=1, disable_aslr=True) != 0:
        print(f"FAIL {name}: run B exited nonzero", file=sys.stderr)
        return False
    diff = first_diff(trace_a, trace_b)
    if diff is not None:
        line, la, lb = diff
        print(f"FAIL {name}: digest traces diverge at line {line}:",
              file=sys.stderr)
        print(f"  run A: {la.decode(errors='replace').rstrip()}",
              file=sys.stderr)
        print(f"  run B: {lb.decode(errors='replace').rstrip()}",
              file=sys.stderr)
        return False
    with open(trace_a) as fh:
        rows = sum(1 for _ in fh)
    print(f"ok   {name}: {rows} trace rows identical across perturbed runs")
    return True


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("examples", nargs="*",
                        help=f"examples to check (default: all of "
                             f"{', '.join(EXAMPLES)})")
    parser.add_argument("--build-dir", required=True,
                        help="CMake build directory holding examples/")
    parser.add_argument("--keep", action="store_true",
                        help="keep the digest trace files (prints their dir)")
    args = parser.parse_args(argv)

    names = args.examples or list(EXAMPLES)
    for name in names:
        if name not in EXAMPLES:
            print(f"unknown example '{name}' (have: {', '.join(EXAMPLES)})",
                  file=sys.stderr)
            return 2

    work_dir = tempfile.mkdtemp(prefix="ace-determinism-")
    try:
        ok = all([check_example(n, args.build_dir, work_dir) for n in names])
    finally:
        if args.keep:
            print(f"traces kept in {work_dir}")
        else:
            shutil.rmtree(work_dir, ignore_errors=True)
    if ok:
        print(f"determinism_check: all {len(names)} examples reproducible")
        return 0
    print("determinism_check: FAILED", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
