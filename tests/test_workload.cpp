#include "overlay/workload.h"

#include <gtest/gtest.h>

#include <memory>

#include "util/stats.h"

namespace ace {
namespace {

CatalogConfig small_catalog() {
  CatalogConfig config;
  config.object_count = 100;
  config.zipf_exponent = 0.8;
  config.base_replication = 0.2;
  config.min_replication = 0.01;
  return config;
}

TEST(Catalog, ReplicationMonotoneInRank) {
  ObjectCatalog catalog{small_catalog()};
  for (ObjectId o = 1; o < 100; ++o)
    EXPECT_LE(catalog.replication(o), catalog.replication(o - 1));
  EXPECT_GE(catalog.replication(99), small_catalog().min_replication);
}

TEST(Catalog, ReplicationOutOfRangeThrows) {
  ObjectCatalog catalog{small_catalog()};
  EXPECT_THROW(catalog.replication(100), std::out_of_range);
}

TEST(Catalog, ZeroObjectsThrows) {
  CatalogConfig config;
  config.object_count = 0;
  EXPECT_THROW(ObjectCatalog{config}, std::invalid_argument);
}

TEST(Catalog, HoldsIsDeterministic) {
  ObjectCatalog a{small_catalog()};
  ObjectCatalog b{small_catalog()};
  for (PeerId p{0}; p < 50; ++p)
    for (ObjectId o = 0; o < 20; ++o)
      EXPECT_EQ(a.holds(p, o), b.holds(p, o));
}

TEST(Catalog, HoldsFractionTracksReplication) {
  ObjectCatalog catalog{small_catalog()};
  const ObjectId popular = 0;
  std::size_t holders = 0;
  const std::size_t peers = 20000;
  for (PeerId p{0}; p < peers; ++p)
    if (catalog.holds(p, popular)) ++holders;
  const double fraction = static_cast<double>(holders) / peers;
  EXPECT_NEAR(fraction, catalog.replication(popular),
              catalog.replication(popular) * 0.15);
}

TEST(Catalog, DifferentSeedsDifferentPlacement) {
  CatalogConfig c1 = small_catalog();
  CatalogConfig c2 = small_catalog();
  c2.placement_seed = 0xdeadbeef;
  ObjectCatalog a{c1}, b{c2};
  std::size_t differences = 0;
  for (PeerId p{0}; p < 500; ++p)
    for (ObjectId o = 0; o < 10; ++o)
      if (a.holds(p, o) != b.holds(p, o)) ++differences;
  EXPECT_GT(differences, 0u);
}

TEST(Catalog, SampleObjectFavorsPopularRanks) {
  ObjectCatalog catalog{small_catalog()};
  Rng rng{1};
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[catalog.sample_object(rng)];
  EXPECT_GT(counts[0], counts[50]);
}

TEST(Catalog, HoldersAmongFindsExactSet) {
  ObjectCatalog catalog{small_catalog()};
  std::vector<PeerId> peers;
  for (PeerId p{0}; p < 200; ++p) peers.push_back(p);
  const auto holders = catalog.holders_among(peers, 3);
  for (const PeerId h : holders) EXPECT_TRUE(catalog.holds(h, 3));
  std::size_t expected = 0;
  for (const PeerId p : peers)
    if (catalog.holds(p, 3)) ++expected;
  EXPECT_EQ(holders.size(), expected);
}

struct WorkloadFixture {
  WorkloadFixture() : rng{7}, catalog{small_catalog()} {
    Graph g{16};
    for (NodeId u = 0; u + 1 < 16; ++u) g.add_edge(u, u + 1, 1.0);
    physical = std::make_unique<PhysicalNetwork>(std::move(g));
    overlay = std::make_unique<OverlayNetwork>(*physical);
    for (std::uint32_t h = 0; h < 16; ++h) overlay->add_peer(HostId{h});
  }
  Rng rng;
  ObjectCatalog catalog;
  std::unique_ptr<PhysicalNetwork> physical;
  std::unique_ptr<OverlayNetwork> overlay;
  Simulator sim;
};

TEST(Workload, QueryRateApproximatelyHonored) {
  WorkloadFixture f;
  WorkloadConfig config;
  config.queries_per_peer_per_s = 0.05;  // 16 peers -> 0.8 q/s expected
  std::size_t seen = 0;
  QueryWorkload workload{*f.overlay, f.catalog, f.sim, f.rng, config,
                         [&](SimTime, PeerId, ObjectId) { ++seen; }};
  workload.start();
  f.sim.run_until(2000.0);
  const double rate = static_cast<double>(seen) / 2000.0;
  EXPECT_NEAR(rate, 0.8, 0.08);
  EXPECT_EQ(workload.queries_issued(), seen);
}

TEST(Workload, SourcesAreOnlinePeersOnly) {
  WorkloadFixture f;
  // Take half the peers offline.
  Rng aux{9};
  for (PeerId p{0}; p < 8; ++p) f.overlay->leave(p, 0, aux);
  WorkloadConfig config;
  config.queries_per_peer_per_s = 0.1;
  QueryWorkload workload{*f.overlay, f.catalog, f.sim, f.rng, config,
                         [&](SimTime, PeerId source, ObjectId) {
                           EXPECT_TRUE(f.overlay->is_online(source));
                           EXPECT_GE(source, 8u);
                         }};
  workload.start();
  f.sim.run_until(300.0);
}

TEST(Workload, StopHaltsQueries) {
  WorkloadFixture f;
  WorkloadConfig config;
  config.queries_per_peer_per_s = 0.1;
  std::size_t seen = 0;
  QueryWorkload workload{*f.overlay, f.catalog, f.sim, f.rng, config,
                         [&](SimTime, PeerId, ObjectId) { ++seen; }};
  workload.start();
  f.sim.run_until(50.0);
  const std::size_t at_stop = seen;
  EXPECT_GT(at_stop, 0u);
  workload.stop();
  f.sim.run_until(500.0);
  EXPECT_EQ(seen, at_stop);
}

TEST(Workload, InvalidConfigThrows) {
  WorkloadFixture f;
  WorkloadConfig config;
  config.queries_per_peer_per_s = 0.0;
  EXPECT_THROW(QueryWorkload(*f.overlay, f.catalog, f.sim, f.rng, config,
                             [](SimTime, PeerId, ObjectId) {}),
               std::invalid_argument);
  WorkloadConfig ok;
  EXPECT_THROW(QueryWorkload(*f.overlay, f.catalog, f.sim, f.rng, ok,
                             QueryWorkload::QueryCallback{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace ace
