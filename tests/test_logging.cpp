#include "util/logging.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ace {
namespace {

TEST(Logging, ParseKnownNames) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
}

TEST(Logging, NameRoundTripsThroughParse) {
  for (const LogLevel level : {LogLevel::kDebug, LogLevel::kInfo,
                               LogLevel::kWarn, LogLevel::kError,
                               LogLevel::kOff}) {
    EXPECT_EQ(parse_log_level(log_level_name(level)), level);
  }
}

TEST(Logging, RejectsUnknownNames) {
  EXPECT_THROW(parse_log_level(""), std::invalid_argument);
  EXPECT_THROW(parse_log_level("verbose"), std::invalid_argument);
  EXPECT_THROW(parse_log_level("WARN"), std::invalid_argument);
  EXPECT_THROW(parse_log_level("warn "), std::invalid_argument);
}

TEST(Logging, UnknownNameErrorIsActionable) {
  try {
    parse_log_level("chatty");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("chatty"), std::string::npos);
    EXPECT_NE(what.find("debug|info|warn|error|off"), std::string::npos);
  }
}

TEST(Logging, ThresholdRoundTrip) {
  const LogLevel before = log_threshold();
  set_log_threshold(LogLevel::kError);
  EXPECT_EQ(log_threshold(), LogLevel::kError);
  set_log_threshold(before);
}

}  // namespace
}  // namespace ace
