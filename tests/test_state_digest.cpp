#include "util/digest.h"

#include <gtest/gtest.h>

#include <memory>

#include "ace/engine.h"
#include "graph/graph.h"
#include "net/physical_network.h"
#include "overlay/overlay_network.h"

namespace ace {
namespace {

// Feeds raw bytes only (no length delimiter), matching the published
// FNV-1a test-vector convention.
std::uint64_t fnv1a_bytes(std::string_view s) {
  Fnv1a h;
  for (const char c : s) h.update_byte(static_cast<std::uint8_t>(c));
  return h.value();
}

TEST(Fnv1a, MatchesPublishedTestVectors) {
  // Reference vectors for 64-bit FNV-1a (Fowler/Noll/Vo). Pinning these
  // guards the constants and the byte-feeding order across platforms.
  EXPECT_EQ(Fnv1a{}.value(), Fnv1a::kOffsetBasis);
  EXPECT_EQ(fnv1a_bytes("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a_bytes("foobar"), 0x85944171f73967e8ull);
}

TEST(Fnv1a, Uint64FeedsLittleEndianBytes) {
  Fnv1a via_int;
  via_int.update(0x0807060504030201ull);
  Fnv1a via_bytes;
  for (std::uint8_t b = 1; b <= 8; ++b) via_bytes.update_byte(b);
  EXPECT_EQ(via_int.value(), via_bytes.value());
}

TEST(Fnv1a, StringsAreLengthDelimited) {
  // Without the length suffix, ("ab","c") and ("a","bc") would collide.
  Fnv1a ab_c;
  ab_c.update(std::string_view{"ab"});
  ab_c.update(std::string_view{"c"});
  Fnv1a a_bc;
  a_bc.update(std::string_view{"a"});
  a_bc.update(std::string_view{"bc"});
  EXPECT_NE(ab_c.value(), a_bc.value());
}

TEST(Fnv1a, SignedZerosDigestEqually) {
  Fnv1a pos, neg, one;
  pos.update_double(0.0);
  neg.update_double(-0.0);
  one.update_double(1.0);
  EXPECT_EQ(pos.value(), neg.value());
  EXPECT_NE(pos.value(), one.value());
}

TEST(UnorderedDigest, OrderInsensitive) {
  UnorderedDigest forward, backward;
  for (const std::uint64_t e : {11ull, 22ull, 33ull}) forward.add(e);
  for (const std::uint64_t e : {33ull, 22ull, 11ull}) backward.add(e);
  EXPECT_EQ(forward.value(), backward.value());
}

TEST(UnorderedDigest, SensitiveToMultisetChanges) {
  UnorderedDigest once, twice, other;
  once.add(7);
  twice.add(7);
  twice.add(7);
  other.add(8);
  EXPECT_NE(once.value(), twice.value());  // multiplicity matters
  EXPECT_NE(once.value(), other.value());
  EXPECT_EQ(UnorderedDigest{}.value(), UnorderedDigest{}.value());
}

TEST(DigestHex, FixedWidthLowercase) {
  EXPECT_EQ(digest_hex(0), "0000000000000000");
  EXPECT_EQ(digest_hex(0xdeadbeefull), "00000000deadbeef");
  EXPECT_EQ(digest_hex(~0ull), "ffffffffffffffff");
}

StateDigest sample_digest() {
  StateDigest d;
  d.add("overlay-adjacency", 0x1111);
  d.add("cost-tables", 0x2222);
  d.add("forwarding-trees", 0x3333);
  return d;
}

TEST(StateDigest, FirstDivergenceNamesFirstDifferingComponent) {
  const StateDigest a = sample_digest();
  EXPECT_EQ(first_divergence(a, a), "");

  StateDigest tampered = a;
  tampered.components[1].second ^= 1;
  EXPECT_EQ(first_divergence(a, tampered), "cost-tables");

  // A divergence in an earlier component wins even when later ones differ.
  tampered.components[0].second ^= 1;
  EXPECT_EQ(first_divergence(a, tampered), "overlay-adjacency");

  StateDigest truncated = a;
  truncated.components.pop_back();
  EXPECT_EQ(first_divergence(a, truncated), "component-set");
}

TEST(StateDigest, CombinedCoversNamesAndValues) {
  const StateDigest a = sample_digest();
  StateDigest renamed = a;
  renamed.components[2].first = "forwarding";
  StateDigest revalued = a;
  revalued.components[2].second ^= 1;
  EXPECT_NE(a.combined(), renamed.combined());
  EXPECT_NE(a.combined(), revalued.combined());
  EXPECT_EQ(a.combined(), sample_digest().combined());
}

TEST(StateDigestDeathTest, MismatchNamesFirstDivergingComponent) {
  const StateDigest expected = sample_digest();
  StateDigest actual = sample_digest();
  actual.components[1].second = 0x9999;
  EXPECT_DEATH(check_state_digests_equal(expected, actual),
               "first diverging component: cost-tables");
  check_state_digests_equal(expected, sample_digest());  // equal: no death
}

TEST(DigestTrace, CsvFormat) {
  DigestTrace trace;
  trace.record("start", sample_digest());
  trace.record("end", "event-queue", 0xabcull);
  EXPECT_EQ(trace.rows(), 5u);  // 3 components + combined + explicit row
  const std::string csv = trace.csv();
  EXPECT_TRUE(csv.starts_with("label,component,digest\n"));
  EXPECT_NE(csv.find("start,cost-tables,0000000000002222\n"),
            std::string::npos);
  EXPECT_NE(csv.find("start,combined,"), std::string::npos);
  EXPECT_NE(csv.find("end,event-queue,0000000000000abc\n"),
            std::string::npos);
}

// Hand-built deterministic substrate: a 16-host line with unit delays (all
// link costs are small integers, exactly representable in a double) and an
// 8-peer ring with two chords. Every digest input is fully pinned by
// construction, so the engine digest below can be a golden constant.
struct GoldenFixture {
  GoldenFixture() {
    Graph g{16};
    for (NodeId u = 0; u + 1 < 16; ++u) g.add_edge(u, u + 1, 1.0);
    physical = std::make_unique<PhysicalNetwork>(std::move(g));
    overlay = std::make_unique<OverlayNetwork>(*physical);
    for (std::size_t i = 0; i < 8; ++i)
      overlay->add_peer(static_cast<HostId>(2 * i), true);
    for (std::uint32_t p = 0; p < 8; ++p)
      overlay->connect(PeerId{p}, PeerId{(p + 1) % 8});
    overlay->connect(PeerId{0}, PeerId{4});
    overlay->connect(PeerId{2}, PeerId{6});
  }
  std::unique_ptr<PhysicalNetwork> physical;
  std::unique_ptr<OverlayNetwork> overlay;
};

StateDigest golden_engine_digest() {
  GoldenFixture f;
  AceEngine engine{*f.overlay, AceConfig{}};
  Rng rng{5};
  engine.rebuild_all_trees();
  return engine.state_digest();
}

TEST(StateDigest, EngineDigestIsStableAcrossRuns) {
  const StateDigest a = golden_engine_digest();
  const StateDigest b = golden_engine_digest();
  EXPECT_EQ(first_divergence(a, b), "");
  EXPECT_EQ(a, b);
}

TEST(StateDigest, EngineDigestMatchesGoldenValue) {
  // Golden value for the pinned fixture above. A change here means the
  // simulation is no longer bitwise-reproducible with prior builds: either
  // an intentional protocol/digest change (re-pin, and say so in the PR) or
  // an accidental nondeterminism/ordering change (fix it). Use
  // first_divergence() against a saved trace to attribute the component.
  EXPECT_EQ(digest_hex(golden_engine_digest().combined()),
            "d2145612a52d7ea8");
}

TEST(StateDigest, EngineDigestSeesOverlayMutations) {
  GoldenFixture f;
  AceEngine engine{*f.overlay, AceConfig{}};
  Rng rng{5};
  engine.rebuild_all_trees();
  const StateDigest before = engine.state_digest();
  ASSERT_TRUE(f.overlay->disconnect(PeerId{2}, PeerId{6}));
  EXPECT_EQ(first_divergence(before, engine.state_digest()),
            "overlay-adjacency");
}

}  // namespace
}  // namespace ace
