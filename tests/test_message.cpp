#include "proto/message.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace ace {
namespace {

TEST(Message, TypeNamesDistinct) {
  std::set<std::string> names;
  for (const MessageType t :
       {MessageType::kPing, MessageType::kPong, MessageType::kQuery,
        MessageType::kQueryHit, MessageType::kProbe, MessageType::kProbeReply,
        MessageType::kCostTable, MessageType::kConnect,
        MessageType::kDisconnect}) {
    names.insert(message_type_name(t));
  }
  EXPECT_EQ(names.size(), 9u);
}

TEST(Message, SizeFactorsMatchSizing) {
  MessageSizing sizing;
  EXPECT_DOUBLE_EQ(size_factor(sizing, MessageType::kQuery), sizing.query);
  EXPECT_DOUBLE_EQ(size_factor(sizing, MessageType::kPing), sizing.ping);
  EXPECT_DOUBLE_EQ(size_factor(sizing, MessageType::kQueryHit),
                   sizing.query_hit);
}

TEST(Message, CostTableScalesWithEntries) {
  MessageSizing sizing;
  const double empty = size_factor(sizing, MessageType::kCostTable, 0);
  const double ten = size_factor(sizing, MessageType::kCostTable, 10);
  EXPECT_DOUBLE_EQ(empty, sizing.cost_table_base);
  EXPECT_DOUBLE_EQ(ten, sizing.cost_table_base +
                            10 * sizing.cost_table_per_entry);
  EXPECT_GT(ten, empty);
}

TEST(Message, ControlMessagesSmallerThanQueries) {
  // The accounting assumption behind the overhead model: probes and pings
  // are cheap relative to query payloads.
  MessageSizing sizing;
  EXPECT_LT(size_factor(sizing, MessageType::kProbe),
            size_factor(sizing, MessageType::kQuery));
  EXPECT_LT(size_factor(sizing, MessageType::kPing),
            size_factor(sizing, MessageType::kQuery));
}

TEST(Message, GuidsMonotonicallyUnique) {
  GuidAllocator guids;
  const Guid a = guids.next();
  const Guid b = guids.next();
  const Guid c = guids.next();
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(guids.issued(), 3u);
}

TEST(Message, GuidAllocatorsIndependent) {
  // Per-simulation allocation: a fresh allocator restarts the sequence, so
  // message ids never depend on what else ran earlier in the process.
  GuidAllocator first;
  (void)first.next();
  (void)first.next();
  GuidAllocator second;
  EXPECT_EQ(second.next(), Guid{1});
  EXPECT_EQ(first.next(), Guid{3});
}

TEST(Message, HeaderToString) {
  MessageHeader header;
  header.guid = 42;
  header.type = MessageType::kQuery;
  header.ttl = 7;
  header.hops = 2;
  const std::string s = to_string(header);
  EXPECT_NE(s.find("QUERY"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("ttl=7"), std::string::npos);
  EXPECT_NE(s.find("hops=2"), std::string::npos);
}

}  // namespace
}  // namespace ace
