#include "transport/transport.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/experiment.h"
#include "graph/generators.h"

namespace ace {
namespace {

// Mismatched overlay over a BA physical topology (same construction as the
// engine tests) — the transport needs real path delays, not a toy graph.
struct Fixture {
  explicit Fixture(std::size_t hosts = 256, std::size_t peers = 48,
                   double degree = 5.0, std::uint64_t seed = 3) {
    Rng topo{seed};
    BaOptions ba;
    ba.nodes = hosts;
    physical = std::make_unique<PhysicalNetwork>(barabasi_albert(ba, topo));
    OverlayOptions oo;
    oo.peers = peers;
    oo.mean_degree = degree;
    const Graph logical = random_overlay(oo, topo);
    const auto host_list = assign_hosts_uniform(*physical, peers, topo);
    overlay = std::make_unique<OverlayNetwork>(*physical, logical, host_list);
  }

  Transport make_transport(TransportConfig config,
                           std::uint64_t seed = 2004) {
    config.mode = TransportMode::kLossy;
    return Transport{sim, *overlay, guids, config,
                     Rng::stream(seed, "transport")};
  }

  std::unique_ptr<PhysicalNetwork> physical;
  std::unique_ptr<OverlayNetwork> overlay;
  Simulator sim;
  GuidAllocator guids;
};

TEST(TransportMode, NamesRoundTrip) {
  EXPECT_EQ(parse_transport_mode("ideal"), TransportMode::kIdeal);
  EXPECT_EQ(parse_transport_mode("lossy"), TransportMode::kLossy);
  EXPECT_STREQ(transport_mode_name(TransportMode::kIdeal), "ideal");
  EXPECT_STREQ(transport_mode_name(TransportMode::kLossy), "lossy");
  EXPECT_THROW(parse_transport_mode("udp"), std::invalid_argument);
}

TEST(TransportConfigTest, FromOptions) {
  const char* argv[] = {"prog", "--transport=lossy", "--loss-rate=0.25",
                        "--jitter=1.5"};
  const Options options{4, const_cast<char**>(argv)};
  const TransportConfig config = transport_config_from_options(options);
  EXPECT_EQ(config.mode, TransportMode::kLossy);
  EXPECT_DOUBLE_EQ(config.faults.drop_probability, 0.25);
  EXPECT_DOUBLE_EQ(config.faults.extra_jitter_max_s, 1.5);
}

TEST(TransportConfigTest, DefaultsToIdeal) {
  const char* argv[] = {"prog"};
  const Options options{1, const_cast<char**>(argv)};
  const TransportConfig config = transport_config_from_options(options);
  EXPECT_EQ(config.mode, TransportMode::kIdeal);
  EXPECT_DOUBLE_EQ(config.faults.drop_probability, 0.0);
}

TEST(TransportConfigTest, RejectsBadLossRate) {
  const char* argv[] = {"prog", "--loss-rate=1.5"};
  const Options options{2, const_cast<char**>(argv)};
  EXPECT_THROW(transport_config_from_options(options),
               std::invalid_argument);
}

TEST(TransportTest, DeliveryLatencyMatchesLinkDelay) {
  Fixture f;
  Transport transport = f.make_transport({});
  std::vector<Transport::Delivery> deliveries;
  transport.set_delivery_handler(
      [&](const Transport::Delivery& d) { deliveries.push_back(d); });

  const PeerId from = f.overlay->online_peers().front();
  std::vector<PeerId> targets;
  for (const Neighbor& n : f.overlay->neighbors(from))
    targets.push_back(static_cast<PeerId>(n.node));
  ASSERT_GE(targets.size(), 2u);
  for (const PeerId to : targets)
    transport.send(MessageType::kPing, from, to);

  EXPECT_EQ(transport.in_flight(), targets.size());
  f.sim.run_all();
  EXPECT_EQ(transport.in_flight(), 0u);
  ASSERT_EQ(deliveries.size(), targets.size());

  // Each message arrives exactly one path delay after it was sent, so the
  // arrival order is the order of the link delays.
  for (const Transport::Delivery& d : deliveries) {
    EXPECT_DOUBLE_EQ(d.delivered_at - d.sent_at,
                     f.overlay->peer_delay(d.from, d.to));
  }
  EXPECT_TRUE(std::is_sorted(deliveries.begin(), deliveries.end(),
                             [](const auto& a, const auto& b) {
                               return a.delivered_at < b.delivered_at;
                             }));
}

TEST(TransportTest, ZeroLossDeliversEverything) {
  Fixture f;
  Transport transport = f.make_transport({});
  const PeerId from = f.overlay->online_peers().front();
  const PeerId to =
      static_cast<PeerId>(f.overlay->neighbors(from).front().node);
  for (int i = 0; i < 50; ++i) transport.send(MessageType::kPing, from, to);
  f.sim.run_all();
  EXPECT_EQ(transport.stats().sent, 50u);
  EXPECT_EQ(transport.stats().delivered, 50u);
  EXPECT_EQ(transport.stats().dropped, 0u);
}

TEST(TransportTest, DropProbabilityHonoredStatistically) {
  Fixture f;
  TransportConfig config;
  config.faults.drop_probability = 0.3;
  Transport transport = f.make_transport(config);
  const PeerId from = f.overlay->online_peers().front();
  const PeerId to =
      static_cast<PeerId>(f.overlay->neighbors(from).front().node);
  const std::size_t sends = 2000;
  for (std::size_t i = 0; i < sends; ++i)
    transport.send(MessageType::kPing, from, to);
  f.sim.run_all();
  const double observed =
      static_cast<double>(transport.stats().dropped) / sends;
  // Pinned seed, so this is deterministic; the band just documents that the
  // fault stream actually approximates the configured rate.
  EXPECT_NEAR(observed, 0.3, 0.04);
  EXPECT_EQ(transport.stats().delivered + transport.stats().dropped, sends);
}

TEST(TransportTest, ProbeReturnsLinkCostAndChargesTraffic) {
  Fixture f;
  Transport transport = f.make_transport({});
  const PeerId from = f.overlay->online_peers().front();
  const PeerId to =
      static_cast<PeerId>(f.overlay->neighbors(from).front().node);
  double traffic = 0;
  const std::optional<Weight> cost = transport.probe(from, to, traffic);
  ASSERT_TRUE(cost.has_value());
  EXPECT_DOUBLE_EQ(*cost, f.overlay->peer_delay(from, to));
  // One PROBE plus one PROBE_REPLY, each size x delay — the same formula
  // the analytic kIdeal accounting charges.
  const MessageSizing sizing;
  EXPECT_DOUBLE_EQ(traffic, (sizing.probe + sizing.probe_reply) *
                                f.overlay->peer_delay(from, to));
  EXPECT_EQ(transport.stats().retries, 0u);
  EXPECT_EQ(transport.stats().probe_failures, 0u);
}

TEST(TransportTest, ProbeGivesUpAfterConfiguredAttempts) {
  Fixture f;
  TransportConfig config;
  config.faults.drop_probability = 1.0;
  config.max_probe_attempts = 3;
  Transport transport = f.make_transport(config);
  const PeerId from = f.overlay->online_peers().front();
  const PeerId to =
      static_cast<PeerId>(f.overlay->neighbors(from).front().node);
  double traffic = 0;
  EXPECT_FALSE(transport.probe(from, to, traffic).has_value());
  // Every attempt's request went on the wire (and was charged) before loss.
  EXPECT_EQ(transport.stats().sent, 3u);
  EXPECT_EQ(transport.stats().retries, 2u);
  EXPECT_EQ(transport.stats().probe_failures, 1u);
  EXPECT_GT(traffic, 0.0);
}

TEST(TransportTest, ConnectHandshakeFailsCleanlyUnderTotalLoss) {
  Fixture f;
  TransportConfig config;
  config.faults.drop_probability = 1.0;
  config.max_connect_attempts = 2;
  Transport transport = f.make_transport(config);
  const PeerId from = f.overlay->online_peers().front();
  const PeerId to =
      static_cast<PeerId>(f.overlay->neighbors(from).front().node);
  double traffic = 0;
  EXPECT_FALSE(transport.connect_handshake(from, to, traffic));
  EXPECT_EQ(transport.stats().retries, 1u);
  EXPECT_EQ(transport.stats().connects_failed, 1u);
}

TEST(TransportTest, ConnectHandshakeSucceedsWithoutFaults) {
  Fixture f;
  Transport transport = f.make_transport({});
  const PeerId from = f.overlay->online_peers().front();
  const PeerId to =
      static_cast<PeerId>(f.overlay->neighbors(from).front().node);
  double traffic = 0;
  EXPECT_TRUE(transport.connect_handshake(from, to, traffic));
  EXPECT_EQ(transport.stats().connects_failed, 0u);
  // CONNECT + ACK both travel the wire.
  const MessageSizing sizing;
  EXPECT_DOUBLE_EQ(traffic,
                   2 * sizing.connect * f.overlay->peer_delay(from, to));
}

TEST(TransportTest, StaleTableVersionsRejected) {
  Fixture f;
  Transport transport = f.make_transport({});
  const PeerId owner = f.overlay->online_peers().front();
  const std::size_t degree = f.overlay->degree(owner);
  ASSERT_GT(degree, 0u);
  double traffic = 0;
  transport.publish_table(owner, /*version=*/2, /*entries=*/4, traffic);
  f.sim.run_all();
  EXPECT_EQ(transport.stats().stale_tables, 0u);

  // An older version arriving later (a delayed retransmit, say) must be
  // rejected by every receiver, leaving the accepted version monotone.
  transport.publish_table(owner, /*version=*/1, /*entries=*/4, traffic);
  f.sim.run_all();
  EXPECT_EQ(transport.stats().stale_tables, degree);
  for (const Neighbor& n : f.overlay->neighbors(owner)) {
    EXPECT_EQ(transport.accepted_version(static_cast<PeerId>(n.node), owner),
              2u);
  }
}

TEST(TransportTest, JitterReordersAndTriggersStaleRejection) {
  Fixture f;
  TransportConfig config;
  config.faults.extra_jitter_max_s = 500.0;  // >> any path delay
  Transport transport = f.make_transport(config);
  const PeerId owner = f.overlay->online_peers().front();
  double traffic = 0;
  // Ten consecutive versions put on the wire back-to-back: with jitter far
  // exceeding the path delay, arrivals interleave and out-of-order
  // deliveries must be rejected as stale.
  for (std::uint64_t v = 1; v <= 10; ++v)
    transport.publish_table(owner, v, 4, traffic);
  f.sim.run_all();
  EXPECT_GT(transport.stats().stale_tables, 0u);
  // Whatever the arrival order, each receiver's accepted version is one it
  // actually received, and later rejects never lowered it.
  for (const Neighbor& n : f.overlay->neighbors(owner)) {
    const std::uint64_t accepted =
        transport.accepted_version(static_cast<PeerId>(n.node), owner);
    EXPECT_GE(accepted, 1u);
    EXPECT_LE(accepted, 10u);
  }
}

TEST(TransportTest, BlackoutWindowDropsMessages) {
  Fixture f;
  const PeerId from = f.overlay->online_peers().front();
  const PeerId to =
      static_cast<PeerId>(f.overlay->neighbors(from).front().node);
  TransportConfig config;
  config.faults.blackouts.push_back(Blackout{to, 0.0, 5.0});
  Transport transport = f.make_transport(config);

  transport.send(MessageType::kPing, from, to);  // t=0: inside the window
  f.sim.at(10.0, [&] {
    transport.send(MessageType::kPing, from, to);  // t=10: window over
  });
  f.sim.run_all();
  EXPECT_EQ(transport.stats().dropped, 1u);
  EXPECT_EQ(transport.stats().delivered, 1u);
}

TEST(TransportTest, BlackoutDoesNotShiftFaultStream) {
  // The drop/jitter draws follow a fixed per-transmission schedule, so
  // adding a blackout for an uninvolved peer must not change which other
  // messages get dropped.
  Fixture f1, f2;
  TransportConfig config;
  config.faults.drop_probability = 0.5;
  TransportConfig with_blackout = config;
  const PeerId bystander = f1.overlay->online_peers().back();
  with_blackout.faults.blackouts.push_back(Blackout{bystander, 0.0, 1e9});

  Transport plain = f1.make_transport(config);
  Transport shadowed = f2.make_transport(with_blackout);
  const PeerId from = f1.overlay->online_peers().front();
  const PeerId to =
      static_cast<PeerId>(f1.overlay->neighbors(from).front().node);
  ASSERT_NE(to, bystander);
  ASSERT_NE(from, bystander);
  for (int i = 0; i < 200; ++i) {
    plain.send(MessageType::kPing, from, to);
    shadowed.send(MessageType::kPing, from, to);
  }
  f1.sim.run_all();
  f2.sim.run_all();
  EXPECT_EQ(plain.stats().dropped, shadowed.stats().dropped);
  EXPECT_EQ(plain.stats().delivered, shadowed.stats().delivered);
}

TEST(TransportTest, DigestCoversInFlightState) {
  Fixture f;
  Transport transport = f.make_transport({});
  Fnv1a before;
  transport.digest_into(before);

  const PeerId from = f.overlay->online_peers().front();
  const PeerId to =
      static_cast<PeerId>(f.overlay->neighbors(from).front().node);
  transport.send(MessageType::kPing, from, to);
  Fnv1a pending;
  transport.digest_into(pending);
  EXPECT_NE(before.value(), pending.value());

  f.sim.run_all();
  Fnv1a drained;
  transport.digest_into(drained);
  EXPECT_NE(pending.value(), drained.value());
}

// ---------------------------------------------------------------------
// End-to-end: the lossy transport under the experiment drivers.
// ---------------------------------------------------------------------

ScenarioConfig sweep_scenario() {
  ScenarioConfig config;
  config.physical_nodes = 256;
  config.peers = 64;
  config.mean_degree = 6.0;
  config.catalog.object_count = 100;
  config.catalog.base_replication = 0.2;
  config.catalog.min_replication = 0.05;
  config.seed = 99;
  return config;
}

TEST(TransportEndToEnd, LossyAtZeroLossMatchesIdealQueryPath) {
  const std::vector<std::uint32_t> depths{1, 2};
  const auto ideal =
      run_depth_sweep(sweep_scenario(), AceConfig{}, depths, 5, 25);
  TransportConfig lossless;
  lossless.mode = TransportMode::kLossy;  // event-driven wire, zero faults
  const auto lossy = run_depth_sweep(sweep_scenario(), AceConfig{}, depths, 5,
                                     25, nullptr, lossless);
  ASSERT_EQ(ideal.size(), lossy.size());
  for (std::size_t i = 0; i < ideal.size(); ++i) {
    // With no faults every probe measures the same constant path delay the
    // analytic mode records, so the optimized topology — and therefore the
    // query path — is identical.
    EXPECT_DOUBLE_EQ(lossy[i].traffic_blind, ideal[i].traffic_blind);
    EXPECT_DOUBLE_EQ(lossy[i].traffic_ace, ideal[i].traffic_ace);
    EXPECT_DOUBLE_EQ(lossy[i].reduction_rate, ideal[i].reduction_rate);
  }
}

TEST(TransportEndToEnd, LossyConvergesUnderModerateLoss) {
  TransportConfig faulty;
  faulty.mode = TransportMode::kLossy;
  faulty.faults.drop_probability = 0.1;
  const std::vector<std::uint32_t> depths{2};
  const auto samples = run_depth_sweep(sweep_scenario(), AceConfig{}, depths,
                                       6, 25, nullptr, faulty);
  ASSERT_EQ(samples.size(), 1u);
  // ACE still beats blind flooding: lost probes degrade the closure but the
  // retry ladder and stale-entry fallback keep optimization effective.
  EXPECT_GT(samples[0].reduction_rate, 0.2);
  EXPECT_LT(samples[0].traffic_ace, samples[0].traffic_blind);
}

DynamicConfig lossy_dynamic() {
  DynamicConfig config;
  config.scenario = sweep_scenario();
  config.churn.mean_lifetime_s = 120.0;
  config.churn.lifetime_variance = 60.0;
  config.workload.queries_per_peer_per_s = 0.02;
  config.ace_period_s = 15.0;
  config.duration_s = 300.0;
  config.report_buckets = 4;
  config.transport.mode = TransportMode::kLossy;
  config.transport.faults.drop_probability = 0.05;
  config.transport.faults.extra_jitter_max_s = 0.5;
  return config;
}

TEST(TransportEndToEnd, LossyDynamicRunsAreByteIdentical) {
  DynamicConfig config = lossy_dynamic();
  DigestTrace first, second;
  config.digest_trace = &first;
  const DynamicResult a = run_dynamic(config);
  config.digest_trace = &second;
  const DynamicResult b = run_dynamic(config);
  ASSERT_GT(first.rows(), 0u);
  // Fault injection is deterministic: two runs of the same seed produce
  // byte-identical digest traces, transport-inflight component included.
  EXPECT_EQ(first.csv(), second.csv());
  EXPECT_EQ(a.transport.sent, b.transport.sent);
  EXPECT_EQ(a.transport.dropped, b.transport.dropped);
  EXPECT_GT(a.transport.sent, 0u);
  EXPECT_GT(a.transport.dropped, 0u);
}

TEST(TransportEndToEnd, DynamicResultReportsTransportStats) {
  DynamicConfig config = lossy_dynamic();
  const DynamicResult result = run_dynamic(config);
  EXPECT_GT(result.transport.sent, 0u);
  EXPECT_GT(result.transport.delivered, 0u);
  EXPECT_GT(result.transport.traffic, 0.0);
  // Ideal mode leaves the stats untouched.
  DynamicConfig ideal = lossy_dynamic();
  ideal.transport = TransportConfig{};
  const DynamicResult baseline = run_dynamic(ideal);
  EXPECT_EQ(baseline.transport.sent, 0u);
}

}  // namespace
}  // namespace ace
