#include "util/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace ace {
namespace {

TEST(TableWriter, AsciiContainsTitleHeaderAndRows) {
  TableWriter t{"Fig X", {"h", "traffic"}};
  t.add_row({std::int64_t{1}, 12.5});
  t.add_row({std::int64_t{2}, 9.25});
  const std::string out = t.ascii();
  EXPECT_NE(out.find("Fig X"), std::string::npos);
  EXPECT_NE(out.find("traffic"), std::string::npos);
  EXPECT_NE(out.find("12.50"), std::string::npos);
  EXPECT_NE(out.find("9.25"), std::string::npos);
}

TEST(TableWriter, PrecisionApplied) {
  TableWriter t{"p", {"v"}};
  t.set_precision(4);
  t.add_row({1.23456789});
  EXPECT_NE(t.ascii().find("1.2346"), std::string::npos);
}

TEST(TableWriter, PrecisionOutOfRangeThrows) {
  TableWriter t{"p", {"v"}};
  EXPECT_THROW(t.set_precision(-1), std::invalid_argument);
  EXPECT_THROW(t.set_precision(13), std::invalid_argument);
}

TEST(TableWriter, RowWidthMismatchThrows) {
  TableWriter t{"t", {"a", "b"}};
  EXPECT_THROW(t.add_row({std::string{"only-one"}}), std::invalid_argument);
}

TEST(TableWriter, NoColumnsThrows) {
  EXPECT_THROW(TableWriter("t", {}), std::invalid_argument);
}

TEST(TableWriter, CsvBasicLayout) {
  TableWriter t{"t", {"a", "b"}};
  t.add_row({std::string{"x"}, std::int64_t{7}});
  EXPECT_EQ(t.csv(), "a,b\nx,7\n");
}

TEST(TableWriter, CsvEscapesCommasAndQuotes) {
  TableWriter t{"t", {"a"}};
  t.add_row({std::string{"hello, \"world\""}});
  EXPECT_EQ(t.csv(), "a\n\"hello, \"\"world\"\"\"\n");
}

TEST(TableWriter, PrintWritesCsvFile) {
  TableWriter t{"t", {"a"}};
  t.add_row({std::int64_t{5}});
  const std::string path = testing::TempDir() + "/ace_table_test.csv";
  std::ostringstream sink;
  t.print(sink, path);
  EXPECT_NE(sink.str().find("a"), std::string::npos);
  std::ifstream file{path};
  ASSERT_TRUE(file.good());
  std::string line;
  std::getline(file, line);
  EXPECT_EQ(line, "a");
  std::remove(path.c_str());
}

TEST(TableWriter, RowsCounted) {
  TableWriter t{"t", {"a"}};
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({std::int64_t{1}});
  t.add_row({std::int64_t{2}});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Fixed, FormatsWithDigits) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(3.14159, 0), "3");
  EXPECT_EQ(fixed(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace ace
