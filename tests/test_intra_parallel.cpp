// Intra-trial parallelism (DESIGN.md §15): the engine partitions each
// round's stale peers into conflict-free batches and precomputes their
// closures/trees on the TrialRunner pool, committing in canonical order.
// These tests pin the two halves of that contract: the coloring invariant
// (no two peers in one batch share a closure member) and byte-identical
// digest traces at any lane count, in both ideal and lossy transport
// modes. The *Stress* suite re-runs the batched path repeatedly and is the
// workload behind the tsan.intra_parallel ctest entry.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ace/engine.h"
#include "core/experiment.h"
#include "core/trial_runner.h"
#include "graph/generators.h"
#include "transport/transport.h"
#include "util/digest.h"

namespace ace {
namespace {

// A mismatched overlay over a BA physical topology (the test_engine
// fixture): random logical links across random hosts.
struct Fixture {
  explicit Fixture(std::size_t hosts = 256, std::size_t peers = 48,
                   double degree = 5.0, std::uint64_t seed = 3) {
    Rng topo{seed};
    BaOptions ba;
    ba.nodes = hosts;
    physical = std::make_unique<PhysicalNetwork>(barabasi_albert(ba, topo));
    OverlayOptions oo;
    oo.peers = peers;
    oo.mean_degree = degree;
    const Graph logical = random_overlay(oo, topo);
    const auto host_list = assign_hosts_uniform(*physical, peers, topo);
    overlay = std::make_unique<OverlayNetwork>(*physical, logical, host_list);
  }
  std::unique_ptr<PhysicalNetwork> physical;
  std::unique_ptr<OverlayNetwork> overlay;
};

// Asserts the coloring invariant over one round's recorded batches: within
// a batch, no closure member may appear under two different rebuilding
// peers (a shared member means a shared CostTable/TopologyVersion read
// racing a commit, exactly what the coloring exists to exclude).
void expect_batches_disjoint(const std::vector<AceEngine::RebuildBatch>&
                                 batches) {
  for (std::size_t b = 0; b < batches.size(); ++b) {
    const AceEngine::RebuildBatch& batch = batches[b];
    ASSERT_EQ(batch.peers.size(), batch.members.size());
    ASSERT_FALSE(batch.peers.empty());
    std::set<PeerId> seen;
    for (std::size_t i = 0; i < batch.members.size(); ++i) {
      for (const PeerId member : batch.members[i]) {
        EXPECT_TRUE(seen.insert(member).second)
            << "batch " << b << ": closure member " << member.value()
            << " shared between two rebuilding peers (peer "
            << batch.peers[i].value() << " among them)";
      }
    }
  }
}

// Property test: across randomized topologies, and across rounds that
// interleave churn (leaves with repair, rejoins), every batch the batched
// path forms is closure-disjoint.
TEST(IntraParallel, BatchesAreClosureDisjointUnderChurn) {
  for (const std::uint64_t seed : {3u, 11u, 29u}) {
    Fixture f{192, 40, 5.0, seed};
    AceEngine engine{*f.overlay, AceConfig{}};
    TrialRunner pool{4};
    engine.set_subtask_runner(&pool);
    engine.set_record_batches(true);
    Rng rng{seed * 7 + 1};
    Rng churn_rng{seed + 100};

    // Cold build: every peer is stale, so the round exercises the widest
    // batches the topology admits.
    (void)engine.rebuild_all_trees();
    expect_batches_disjoint(engine.last_rebuild_batches());
    std::size_t rounds_with_batches =
        engine.last_rebuild_batches().empty() ? 0u : 1u;

    std::vector<PeerId> departed;
    for (int round = 0; round < 6; ++round) {
      if (round == 2 || round == 4) {
        // Churn burst: two peers leave (with neighbor repair), staling
        // every closure they appeared in; one departed peer rejoins.
        for (int k = 0; k < 2; ++k) {
          const auto online = f.overlay->online_peers();
          ASSERT_GT(online.size(), 8u);
          const PeerId p = online[static_cast<std::size_t>(
              churn_rng.next_below(online.size()))];
          const std::vector<PeerId> dropped =
              f.overlay->leave(p, 3, churn_rng);
          engine.on_peer_leave(p, dropped);
          departed.push_back(p);
        }
        const PeerId back = departed.front();
        departed.erase(departed.begin());
        f.overlay->join(back, 4, churn_rng);
        engine.on_peer_join(back);
      }
      (void)engine.step_round(rng);
      expect_batches_disjoint(engine.last_rebuild_batches());
      if (!engine.last_rebuild_batches().empty()) ++rounds_with_batches;
    }
    // The invariant must not have held vacuously.
    EXPECT_GT(rounds_with_batches, 1u) << "seed " << seed;
  }
}

// Runs a fixed scenario for `rounds` ACE rounds on `lanes` rebuild lanes
// and returns the per-round digest trace. Lossy mode routes every probe /
// exchange / establishment through the fault-injecting transport.
std::string trace_for(std::size_t lanes, bool lossy,
                      std::size_t rounds = 5) {
  ScenarioConfig config;
  config.physical_nodes = 192;
  config.peers = 48;
  config.mean_degree = 5.0;
  config.seed = 77;
  Scenario scenario{config};

  AceConfig ace;
  ace.transport = lossy ? TransportMode::kLossy : TransportMode::kIdeal;
  AceEngine engine{scenario.overlay(), ace};
  TrialRunner pool{lanes};
  if (lanes > 1) engine.set_subtask_runner(&pool);

  Simulator sim;
  std::unique_ptr<Transport> wire;
  if (lossy) {
    TransportConfig tc;
    tc.mode = TransportMode::kLossy;
    tc.faults.drop_probability = 0.05;
    tc.faults.extra_jitter_max_s = 0.5;
    wire = std::make_unique<Transport>(sim, scenario.overlay(),
                                       scenario.guids(), tc,
                                       Rng::stream(config.seed, "transport"));
    engine.attach_transport(wire.get());
  }

  DigestTrace trace;
  for (std::size_t r = 1; r <= rounds; ++r) {
    (void)engine.step_round(scenario.rng());
    if (lossy) sim.run_all();
    trace.record("round-" + std::to_string(r),
                 engine.state_digest(lossy ? &sim : nullptr));
  }
  return trace.csv();
}

// The tentpole acceptance check, in-process: the digest trace — which
// folds in every cost table, closure, tree, routing entry, rng stream, and
// probe charge — is byte-identical at 1, 2, and 8 lanes.
TEST(IntraParallel, TraceBytesIdenticalAcrossLaneCountsIdeal) {
  const std::string sequential = trace_for(1, /*lossy=*/false);
  ASSERT_FALSE(sequential.empty());
  EXPECT_EQ(sequential, trace_for(2, false));
  EXPECT_EQ(sequential, trace_for(8, false));
}

// Same, through the lossy transport: drop/jitter draws happen during the
// sequential commit phase, so fault injection must replay identically too.
TEST(IntraParallel, TraceBytesIdenticalAcrossLaneCountsLossy) {
  const std::string sequential = trace_for(1, /*lossy=*/true);
  ASSERT_FALSE(sequential.empty());
  EXPECT_EQ(sequential, trace_for(2, true));
  EXPECT_EQ(sequential, trace_for(8, true));
}

// Stress workload for ThreadSanitizer (see the tsan.intra_parallel ctest
// entry, which repeats this suite 10 times): fresh engine + 8-lane pool
// per repetition, cold rebuild plus batched rounds, so precompute slots,
// lane scratch arenas, and the pool's job lifecycle all cycle repeatedly.
TEST(IntraParallelStress, RepeatedBatchedRoundsAreRaceFree) {
  for (std::uint64_t rep = 0; rep < 4; ++rep) {
    Fixture f{128, 32, 5.0, 50 + rep};
    AceEngine engine{*f.overlay, AceConfig{}};
    TrialRunner pool{8};
    engine.set_subtask_runner(&pool);
    Rng rng{rep + 1};
    (void)engine.rebuild_all_trees();
    for (int r = 0; r < 3; ++r) (void)engine.step_round(rng);
  }
}

}  // namespace
}  // namespace ace
