#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace ace {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_DOUBLE_EQ(g.mean_degree(), 0.0);
}

TEST(Graph, AddNodesSequentialIds) {
  Graph g;
  EXPECT_EQ(g.add_node(), 0u);
  EXPECT_EQ(g.add_node(), 1u);
  EXPECT_EQ(g.node_count(), 2u);
}

TEST(Graph, AddEdgeBasics) {
  Graph g{3};
  EXPECT_TRUE(g.add_edge(0, 1, 2.5));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));  // undirected
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(*g.edge_weight(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(*g.edge_weight(1, 0), 2.5);
}

TEST(Graph, DuplicateEdgeRejected) {
  Graph g{2};
  EXPECT_TRUE(g.add_edge(0, 1, 1.0));
  EXPECT_FALSE(g.add_edge(0, 1, 2.0));
  EXPECT_FALSE(g.add_edge(1, 0, 2.0));
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(*g.edge_weight(0, 1), 1.0);
}

TEST(Graph, SelfLoopRejected) {
  Graph g{2};
  EXPECT_FALSE(g.add_edge(1, 1, 1.0));
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Graph, NonPositiveWeightThrows) {
  Graph g{2};
  EXPECT_THROW(g.add_edge(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, -1.0), std::invalid_argument);
}

TEST(Graph, OutOfRangeThrows) {
  Graph g{2};
  EXPECT_THROW(g.add_edge(0, 2, 1.0), std::out_of_range);
  EXPECT_THROW(g.has_edge(5, 0), std::out_of_range);
  EXPECT_THROW(g.neighbors(2), std::out_of_range);
  EXPECT_THROW(g.degree(9), std::out_of_range);
}

TEST(Graph, RemoveEdge) {
  Graph g{3};
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  EXPECT_TRUE(g.remove_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_FALSE(g.remove_edge(0, 1));  // already gone
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(Graph, SetWeight) {
  Graph g{2};
  g.add_edge(0, 1, 1.0);
  EXPECT_TRUE(g.set_weight(0, 1, 9.0));
  EXPECT_DOUBLE_EQ(*g.edge_weight(1, 0), 9.0);
  EXPECT_FALSE(g.set_weight(0, 1, 9.0) && false);  // still true for existing
  Graph g2{2};
  EXPECT_FALSE(g2.set_weight(0, 1, 2.0));  // missing edge
  EXPECT_THROW(g.set_weight(0, 1, -2.0), std::invalid_argument);
}

TEST(Graph, EdgeWeightMissingIsNullopt) {
  Graph g{2};
  EXPECT_FALSE(g.edge_weight(0, 1).has_value());
}

TEST(Graph, NeighborsAreSymmetric) {
  Graph g{4};
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 2.0);
  ASSERT_EQ(g.degree(0), 2u);
  ASSERT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.neighbors(1)[0].node, 0u);
  EXPECT_DOUBLE_EQ(g.neighbors(1)[0].weight, 1.0);
}

TEST(Graph, EdgesListsEachOnce) {
  Graph g{4};
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 3.0);
  const auto edges = g.edges();
  EXPECT_EQ(edges.size(), 3u);
  for (const Edge& e : edges) EXPECT_LT(e.u, e.v);
}

TEST(Graph, TotalWeight) {
  Graph g{3};
  g.add_edge(0, 1, 1.5);
  g.add_edge(1, 2, 2.5);
  EXPECT_DOUBLE_EQ(g.total_weight(), 4.0);
}

TEST(Graph, IsolateDropsAllIncidentEdges) {
  Graph g{4};
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(0, 3, 1.0);
  g.add_edge(1, 2, 1.0);
  auto removed = g.isolate(0);
  std::sort(removed.begin(), removed.end());
  EXPECT_EQ(removed, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(Graph, MeanDegree) {
  Graph g{4};
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  EXPECT_DOUBLE_EQ(g.mean_degree(), 1.0);
  g.add_edge(0, 2, 1.0);
  EXPECT_DOUBLE_EQ(g.mean_degree(), 1.5);
}

TEST(Graph, ManyEdgesStressConsistency) {
  const std::size_t n = 100;
  Graph g{n};
  std::size_t added = 0;
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; v += 7) ++added, g.add_edge(u, v, 1.0 + u);
  EXPECT_EQ(g.edge_count(), added);
  std::size_t degree_sum = 0;
  for (NodeId u = 0; u < n; ++u) degree_sum += g.degree(u);
  EXPECT_EQ(degree_sum, 2 * added);  // handshake lemma
}

}  // namespace
}  // namespace ace
