#include "baselines/index_cache.h"

#include <gtest/gtest.h>

#include <memory>

namespace ace {
namespace {

TEST(LruCache, InsertLookupEvict) {
  LruIndexCache cache{2};
  cache.insert(1, PeerId{100});
  cache.insert(2, PeerId{200});
  EXPECT_EQ(cache.lookup(1), 100u);
  // Inserting a third evicts the least recently used (object 2, since 1 was
  // just refreshed).
  cache.insert(3, PeerId{300});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.lookup(2), kInvalidPeer);
  EXPECT_EQ(cache.lookup(1), 100u);
  EXPECT_EQ(cache.lookup(3), 300u);
}

TEST(LruCache, InsertUpdatesExisting) {
  LruIndexCache cache{2};
  cache.insert(1, PeerId{100});
  cache.insert(1, PeerId{101});
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.lookup(1), 101u);
}

TEST(LruCache, PeekDoesNotRefresh) {
  LruIndexCache cache{2};
  cache.insert(1, PeerId{100});
  cache.insert(2, PeerId{200});
  EXPECT_EQ(cache.peek(1), 100u);  // no recency bump
  cache.insert(3, PeerId{300});
  // Without the bump, object 1 was LRU and is evicted.
  EXPECT_EQ(cache.peek(1), kInvalidPeer);
  EXPECT_EQ(cache.peek(2), 200u);
}

TEST(LruCache, EraseAndClear) {
  LruIndexCache cache{4};
  cache.insert(1, PeerId{100});
  cache.insert(2, PeerId{200});
  cache.erase(1);
  EXPECT_EQ(cache.size(), 1u);
  cache.erase(42);  // no-op
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCache, HitMissCounters) {
  LruIndexCache cache{2};
  cache.insert(1, PeerId{100});
  cache.lookup(1);
  cache.lookup(9);
  cache.lookup(9);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(LruCache, ZeroCapacityThrows) {
  EXPECT_THROW(LruIndexCache{0}, std::invalid_argument);
}

struct LayerFixture {
  LayerFixture() {
    CatalogConfig cc;
    cc.object_count = 50;
    cc.base_replication = 0.3;
    cc.min_replication = 0.05;
    catalog = std::make_unique<ObjectCatalog>(cc);
    Graph g{16};
    for (NodeId u = 0; u + 1 < 16; ++u) g.add_edge(u, u + 1, 1.0);
    physical = std::make_unique<PhysicalNetwork>(std::move(g));
    overlay = std::make_unique<OverlayNetwork>(*physical);
    for (std::uint32_t h = 0; h < 10; ++h) overlay->add_peer(HostId{h});
    layer = std::make_unique<IndexCacheLayer>(*catalog, 10, 4);
    layer->bind_overlay(*overlay);
  }
  // Any peer that actually holds `o` per the catalog.
  PeerId some_holder(ObjectId o) const {
    for (PeerId p{0}; p < 10; ++p)
      if (catalog->holds(p, o)) return p;
    return kInvalidPeer;
  }
  // A peer that does NOT hold `o`.
  PeerId some_non_holder(ObjectId o) const {
    for (PeerId p{0}; p < 10; ++p)
      if (!catalog->holds(p, o)) return p;
    return kInvalidPeer;
  }
  std::unique_ptr<ObjectCatalog> catalog;
  std::unique_ptr<PhysicalNetwork> physical;
  std::unique_ptr<OverlayNetwork> overlay;
  std::unique_ptr<IndexCacheLayer> layer;
};

TEST(CacheLayer, RealHoldersAnswerHolds) {
  LayerFixture f;
  for (ObjectId o = 0; o < 50; ++o) {
    const PeerId holder = f.some_holder(o);
    if (holder == kInvalidPeer) continue;
    EXPECT_EQ(f.layer->answers(holder, o), AnswerKind::kHolds);
  }
}

TEST(CacheLayer, MissWithoutCacheEntry) {
  LayerFixture f;
  for (ObjectId o = 0; o < 50; ++o) {
    const PeerId non_holder = f.some_non_holder(o);
    if (non_holder == kInvalidPeer) continue;
    EXPECT_EQ(f.layer->answers(non_holder, o), AnswerKind::kNo);
  }
}

TEST(CacheLayer, LearnFromPopulatesPathPeers) {
  LayerFixture f;
  ObjectId object = 0;
  PeerId holder = kInvalidPeer, src = kInvalidPeer, mid = kInvalidPeer;
  // Find an object with a holder and two distinct non-holders.
  for (ObjectId o = 0; o < 50 && holder == kInvalidPeer; ++o) {
    const PeerId h = f.some_holder(o);
    if (h == kInvalidPeer) continue;
    PeerId a = kInvalidPeer, b = kInvalidPeer;
    for (PeerId p{0}; p < 10; ++p) {
      if (f.catalog->holds(p, o) || p == h) continue;
      if (a == kInvalidPeer)
        a = p;
      else if (b == kInvalidPeer)
        b = p;
    }
    if (a != kInvalidPeer && b != kInvalidPeer) {
      object = o;
      holder = h;
      src = a;
      mid = b;
    }
  }
  ASSERT_NE(holder, kInvalidPeer);

  QueryResult qr;
  qr.found = true;
  qr.first_responder = holder;
  qr.visit_parents = {{src, kInvalidPeer}, {mid, src}, {holder, mid}};
  f.layer->learn_from(qr, object);
  // The peers on the inverse path now answer from cache.
  EXPECT_EQ(f.layer->answers(mid, object), AnswerKind::kCached);
  EXPECT_EQ(f.layer->answers(src, object), AnswerKind::kCached);
  EXPECT_GE(f.layer->total_entries(), 2u);
}

TEST(CacheLayer, StaleEntryEvictedWhenHolderOffline) {
  LayerFixture f;
  ObjectId object = 0;
  PeerId holder = f.some_holder(object);
  while (holder == kInvalidPeer) holder = f.some_holder(++object);
  const PeerId learner = f.some_non_holder(object);
  ASSERT_NE(learner, kInvalidPeer);

  QueryResult qr;
  qr.found = true;
  qr.first_responder = holder;
  qr.visit_parents = {{learner, kInvalidPeer}, {holder, learner}};
  f.layer->learn_from(qr, object);
  ASSERT_EQ(f.layer->answers(learner, object), AnswerKind::kCached);

  Rng rng{1};
  f.overlay->leave(holder, 0, rng);
  // Holder offline -> the cached pointer is stale and gets evicted.
  EXPECT_EQ(f.layer->answers(learner, object), AnswerKind::kNo);
  EXPECT_EQ(f.layer->answers(learner, object), AnswerKind::kNo);
}

TEST(CacheLayer, LeaveClearsOwnCache) {
  LayerFixture f;
  ObjectId object = 0;
  PeerId holder = f.some_holder(object);
  while (holder == kInvalidPeer) holder = f.some_holder(++object);
  const PeerId learner = f.some_non_holder(object);
  QueryResult qr;
  qr.found = true;
  qr.first_responder = holder;
  qr.visit_parents = {{learner, kInvalidPeer}, {holder, learner}};
  f.layer->learn_from(qr, object);
  ASSERT_GT(f.layer->cache_of(learner).size(), 0u);
  f.layer->on_peer_leave(learner);
  EXPECT_EQ(f.layer->cache_of(learner).size(), 0u);
}

TEST(CacheLayer, CachedAnswerResolvesThroughToRealHolder) {
  LayerFixture f;
  ObjectId object = 0;
  PeerId holder = f.some_holder(object);
  while (holder == kInvalidPeer) holder = f.some_holder(++object);
  const PeerId learner = f.some_non_holder(object);
  const PeerId second = [&] {
    for (PeerId p{0}; p < 10; ++p)
      if (!f.catalog->holds(p, object) && p != learner) return p;
    return kInvalidPeer;
  }();
  ASSERT_NE(second, kInvalidPeer);

  // learner caches object -> holder.
  QueryResult first_query;
  first_query.found = true;
  first_query.first_responder = holder;
  first_query.visit_parents = {{learner, kInvalidPeer}, {holder, learner}};
  f.layer->learn_from(first_query, object);

  // A later query is answered from learner's cache; learning from that
  // response must record the *holder*, not the cache peer.
  QueryResult second_query;
  second_query.found = true;
  second_query.first_responder = learner;
  second_query.answered_from_cache = true;
  second_query.visit_parents = {{second, kInvalidPeer}, {learner, second}};
  f.layer->learn_from(second_query, object);
  EXPECT_EQ(f.layer->cache_of(second).peek(object), holder);
}

TEST(CacheLayer, IgnoresUnfoundQueries) {
  LayerFixture f;
  QueryResult qr;
  qr.found = false;
  f.layer->learn_from(qr, 0);
  EXPECT_EQ(f.layer->total_entries(), 0u);
}

TEST(CacheLayer, CacheOfOutOfRangeThrows) {
  LayerFixture f;
  EXPECT_THROW(f.layer->cache_of(PeerId{99}), std::out_of_range);
}

}  // namespace
}  // namespace ace
