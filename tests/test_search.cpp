#include "search/flooding.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

namespace ace {
namespace {

// Test oracle: a fixed set of holder peers.
class FixedOracle final : public ContentOracle {
 public:
  explicit FixedOracle(std::set<PeerId> holders)
      : holders_{std::move(holders)} {}
  AnswerKind answers(PeerId peer, ObjectId) const override {
    return holders_.contains(peer) ? AnswerKind::kHolds : AnswerKind::kNo;
  }

 private:
  std::set<PeerId> holders_;
};

// Physical line with unit delays so peer_delay(a, b) = |host_a - host_b|.
struct SearchFixture {
  explicit SearchFixture(std::size_t hosts = 16) {
    Graph g{hosts};
    for (NodeId u = 0; u + 1 < hosts; ++u) g.add_edge(u, u + 1, 1.0);
    physical = std::make_unique<PhysicalNetwork>(std::move(g));
    overlay = std::make_unique<OverlayNetwork>(*physical);
  }
  std::unique_ptr<PhysicalNetwork> physical;
  std::unique_ptr<OverlayNetwork> overlay;
};

TEST(ForwardingTableTest, SetAndQuery) {
  ForwardingTable table;
  EXPECT_FALSE(table.has_entry(PeerId{3}));
  table.set_flooding(PeerId{3}, {PeerId{7}, PeerId{1}, PeerId{5}});
  ASSERT_TRUE(table.has_entry(PeerId{3}));
  const auto flood = table.flooding(PeerId{3});
  EXPECT_EQ(std::vector<PeerId>(flood.begin(), flood.end()),
            (std::vector<PeerId>{PeerId{1}, PeerId{5}, PeerId{7}}));  // sorted
  EXPECT_EQ(table.entries(), 1u);
}

TEST(ForwardingTableTest, InvalidateAndFallback) {
  ForwardingTable table;
  table.set_flooding(PeerId{0}, {PeerId{1}});
  table.invalidate(PeerId{0});
  EXPECT_FALSE(table.has_entry(PeerId{0}));
  EXPECT_THROW(table.flooding(PeerId{0}), std::logic_error);
  table.set_flooding(PeerId{0}, {PeerId{1}});
  table.set_flooding(PeerId{2}, {PeerId{0}});
  table.invalidate_all();
  EXPECT_EQ(table.entries(), 0u);
}

TEST(ForwardingTableTest, NonFloodingComplement) {
  SearchFixture f;
  const PeerId a = f.overlay->add_peer(HostId{0});
  const PeerId b = f.overlay->add_peer(HostId{1});
  const PeerId c = f.overlay->add_peer(HostId{2});
  const PeerId d = f.overlay->add_peer(HostId{3});
  f.overlay->connect(a, b);
  f.overlay->connect(a, c);
  f.overlay->connect(a, d);
  ForwardingTable table;
  table.set_flooding(a, {b});
  const auto non_flooding = table.non_flooding(*f.overlay, a);
  EXPECT_EQ(std::set<PeerId>(non_flooding.begin(), non_flooding.end()),
            (std::set<PeerId>{c, d}));
  // No entry -> everything is a flooding target, complement empty.
  EXPECT_TRUE(table.non_flooding(*f.overlay, b).empty());
}

TEST(RunQuery, TriangleFloodingAccounting) {
  SearchFixture f;
  const PeerId a = f.overlay->add_peer(HostId{0});
  const PeerId b = f.overlay->add_peer(HostId{1});
  const PeerId c = f.overlay->add_peer(HostId{2});
  f.overlay->connect(a, b);  // cost 1
  f.overlay->connect(a, c);  // cost 2
  f.overlay->connect(b, c);  // cost 1
  const FixedOracle nobody{{}};
  const QueryResult r = run_query(*f.overlay, a, 0, nobody,
                                  ForwardingMode::kBlindFlooding, nullptr);
  // Transmissions: a->b, a->c, b->c, c->b: traffic = 1 + 2 + 1 + 1 = 5.
  EXPECT_EQ(r.messages, 4u);
  EXPECT_EQ(r.duplicates, 2u);
  EXPECT_EQ(r.scope, 2u);
  EXPECT_DOUBLE_EQ(r.traffic_cost, 5.0);
  EXPECT_FALSE(r.found);
}

TEST(RunQuery, ResponseTimeIsTwicePathDelay) {
  SearchFixture f;
  // Chain of overlay links with physical costs 1, 2, 3.
  const PeerId a = f.overlay->add_peer(HostId{0});
  const PeerId b = f.overlay->add_peer(HostId{1});
  const PeerId c = f.overlay->add_peer(HostId{3});
  const PeerId d = f.overlay->add_peer(HostId{6});
  f.overlay->connect(a, b);
  f.overlay->connect(b, c);
  f.overlay->connect(c, d);
  const FixedOracle holder{{d}};
  const QueryResult r = run_query(*f.overlay, a, 0, holder,
                                  ForwardingMode::kBlindFlooding, nullptr);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.first_responder, d);
  EXPECT_DOUBLE_EQ(r.response_time, 2.0 * 6.0);
  EXPECT_FALSE(r.answered_from_cache);
  // Response traffic: QUERY_HIT over the 3 inverse links.
  EXPECT_DOUBLE_EQ(r.response_traffic, 6.0);
}

TEST(RunQuery, FirstResponderIsEarliestByDelayNotHops) {
  SearchFixture f;
  const PeerId a = f.overlay->add_peer(HostId{8});
  const PeerId near_two_hops = f.overlay->add_peer(HostId{10});
  const PeerId relay = f.overlay->add_peer(HostId{9});
  const PeerId far_one_hop = f.overlay->add_peer(HostId{0});  // cost 8 direct
  f.overlay->connect(a, relay);                // 1
  f.overlay->connect(relay, near_two_hops);    // 1
  f.overlay->connect(a, far_one_hop);          // 8
  const FixedOracle holders{{near_two_hops, far_one_hop}};
  const QueryResult r = run_query(*f.overlay, a, 0, holders,
                                  ForwardingMode::kBlindFlooding, nullptr);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.first_responder, near_two_hops);
  EXPECT_DOUBLE_EQ(r.response_time, 4.0);
}

TEST(RunQuery, TtlLimitsScope) {
  SearchFixture f{32};
  std::vector<PeerId> chain;
  for (std::uint32_t h = 0; h < 10; ++h)
    chain.push_back(f.overlay->add_peer(HostId{h}));
  for (std::size_t i = 0; i + 1 < chain.size(); ++i)
    f.overlay->connect(chain[i], chain[i + 1]);
  const FixedOracle nobody{{}};
  QueryOptions options;
  options.ttl = 3;
  const QueryResult r = run_query(*f.overlay, chain[0], 0, nobody,
                                  ForwardingMode::kBlindFlooding, nullptr,
                                  options);
  EXPECT_EQ(r.scope, 3u);
  // Unlimited TTL covers the chain.
  const QueryResult full = run_query(*f.overlay, chain[0], 0, nobody,
                                     ForwardingMode::kBlindFlooding, nullptr);
  EXPECT_EQ(full.scope, 9u);
}

TEST(RunQuery, TreeRoutingUsesFloodingSets) {
  SearchFixture f;
  const PeerId a = f.overlay->add_peer(HostId{0});
  const PeerId b = f.overlay->add_peer(HostId{1});
  const PeerId c = f.overlay->add_peer(HostId{2});
  f.overlay->connect(a, b);
  f.overlay->connect(a, c);
  f.overlay->connect(b, c);
  ForwardingTable table;
  table.set_flooding(a, {b});     // a only queries b
  table.set_flooding(b, {a, c});  // b relays to c
  table.set_flooding(c, {b});
  const FixedOracle nobody{{}};
  const QueryResult r = run_query(*f.overlay, a, 0, nobody,
                                  ForwardingMode::kTreeRouting, &table);
  // a->b (1), b->c (1): no duplicates, full scope retained.
  EXPECT_EQ(r.messages, 2u);
  EXPECT_EQ(r.duplicates, 0u);
  EXPECT_EQ(r.scope, 2u);
  EXPECT_DOUBLE_EQ(r.traffic_cost, 2.0);
}

TEST(RunQuery, TreeRoutingFallsBackToFloodWithoutEntry) {
  SearchFixture f;
  const PeerId a = f.overlay->add_peer(HostId{0});
  const PeerId b = f.overlay->add_peer(HostId{1});
  const PeerId c = f.overlay->add_peer(HostId{2});
  f.overlay->connect(a, b);
  f.overlay->connect(a, c);
  ForwardingTable table;  // empty: everyone floods
  const FixedOracle nobody{{}};
  const QueryResult r = run_query(*f.overlay, a, 0, nobody,
                                  ForwardingMode::kTreeRouting, &table);
  EXPECT_EQ(r.scope, 2u);
}

TEST(RunQuery, StaleTreeEntrySkipsMissingLinks) {
  SearchFixture f;
  const PeerId a = f.overlay->add_peer(HostId{0});
  const PeerId b = f.overlay->add_peer(HostId{1});
  const PeerId c = f.overlay->add_peer(HostId{2});
  f.overlay->connect(a, b);
  f.overlay->connect(a, c);
  ForwardingTable table;
  table.set_flooding(a, {b, c});
  f.overlay->disconnect(a, c);  // c link vanished after the tree was built
  const FixedOracle nobody{{}};
  const QueryResult r = run_query(*f.overlay, a, 0, nobody,
                                  ForwardingMode::kTreeRouting, &table);
  EXPECT_EQ(r.messages, 1u);
  EXPECT_EQ(r.scope, 1u);
}

TEST(RunQuery, OfflineSourceThrows) {
  SearchFixture f;
  const PeerId a = f.overlay->add_peer(HostId{0}, /*online=*/false);
  const FixedOracle nobody{{}};
  EXPECT_THROW(run_query(*f.overlay, a, 0, nobody,
                         ForwardingMode::kBlindFlooding, nullptr),
               std::invalid_argument);
}

TEST(RunQuery, RecordPathsProducesValidParents) {
  SearchFixture f;
  std::vector<PeerId> peers;
  for (std::uint32_t h = 0; h < 6; ++h)
    peers.push_back(f.overlay->add_peer(HostId{h}));
  for (std::size_t i = 0; i + 1 < peers.size(); ++i)
    f.overlay->connect(peers[i], peers[i + 1]);
  f.overlay->connect(peers[0], peers[3]);
  const FixedOracle nobody{{}};
  QueryOptions options;
  options.record_paths = true;
  const QueryResult r = run_query(*f.overlay, peers[0], 0, nobody,
                                  ForwardingMode::kBlindFlooding, nullptr,
                                  options);
  ASSERT_EQ(r.visit_parents.size(), 6u);
  EXPECT_EQ(r.visit_parents.front().first, peers[0]);
  EXPECT_EQ(r.visit_parents.front().second, kInvalidPeer);
  std::set<PeerId> seen;
  for (const auto& [peer, parent] : r.visit_parents) {
    if (parent != kInvalidPeer) {
      EXPECT_TRUE(seen.contains(parent)) << "parent visited before child";
    }
    seen.insert(peer);
  }
}

TEST(RunQuery, DisconnectedOverlayPartialScope) {
  SearchFixture f;
  const PeerId a = f.overlay->add_peer(HostId{0});
  const PeerId b = f.overlay->add_peer(HostId{1});
  f.overlay->add_peer(HostId{2});  // isolated
  f.overlay->connect(a, b);
  const FixedOracle nobody{{}};
  const QueryResult r = run_query(*f.overlay, a, 0, nobody,
                                  ForwardingMode::kBlindFlooding, nullptr);
  EXPECT_EQ(r.scope, 1u);
}

TEST(RunQuery, RelayInstructionsHonoredEvenOnDuplicateArrival) {
  // The source S's tree delegates "X relays to C". X first learns the query
  // through the faster D path (so the S->X copy arrives as a duplicate);
  // X must still forward to C — the relay obligation survives the race.
  SearchFixture f{32};
  const PeerId s = f.overlay->add_peer(HostId{0});
  const PeerId d = f.overlay->add_peer(HostId{1});   // S-D cost 1
  const PeerId x = f.overlay->add_peer(HostId{2});   // D-X cost 1; S-X cost 2...
  const PeerId c = f.overlay->add_peer(HostId{3});   // X-C cost 1
  f.overlay->connect(s, d);
  f.overlay->connect(d, x);
  f.overlay->connect(s, x);
  f.overlay->connect(x, c);

  ForwardingTable table;
  TreeRouting s_tree;
  s_tree.flooding = {d, x};
  s_tree.children.emplace_back(x, std::vector<PeerId>{c});
  table.set_tree(s, std::move(s_tree));
  table.set_flooding(d, {x});  // D relays toward X (fast path)
  table.set_flooding(x, {});   // X's own tree forwards nowhere
  table.set_flooding(c, {});

  const FixedOracle nobody{{}};
  const QueryResult r = run_query(*f.overlay, s, 0, nobody,
                                  ForwardingMode::kTreeRouting, &table);
  // All three peers reached: D (direct), X (via D first, S copy duplicate),
  // and C (X honoring S's instruction when the duplicate arrives).
  EXPECT_EQ(r.scope, 3u);
  EXPECT_GE(r.duplicates, 1u);
}

TEST(RunQuery, HybridPeriodicalPartialFloodsCheapestLinks) {
  SearchFixture f{32};
  // Star source with four neighbors of increasing cost; partial degree 2
  // must pick the two cheapest.
  const PeerId s = f.overlay->add_peer(HostId{10});
  const PeerId n1 = f.overlay->add_peer(HostId{11});  // 1
  const PeerId n2 = f.overlay->add_peer(HostId{8});   // 2
  const PeerId n3 = f.overlay->add_peer(HostId{15});  // 5
  const PeerId n4 = f.overlay->add_peer(HostId{2});   // 8
  for (const PeerId q : {n1, n2, n3, n4}) f.overlay->connect(s, q);
  const FixedOracle nobody{{}};
  QueryOptions options;
  options.hpf_partial = 2;
  options.hpf_period = 2;  // hop 0 floods; hop 1 partial
  // The SOURCE is hop 0 -> floods all four. Give a deeper structure:
  const PeerId deep_cheap = f.overlay->add_peer(HostId{12});  // cost 1 from n1
  const PeerId deep_far = f.overlay->add_peer(HostId{25});    // cost 14 from n1
  const PeerId deep_mid = f.overlay->add_peer(HostId{14});    // cost 3 from n1
  for (const PeerId q : {deep_cheap, deep_far, deep_mid})
    f.overlay->connect(n1, q);
  const QueryResult r =
      run_query(*f.overlay, s, 0, nobody, ForwardingMode::kHybridPeriodical,
                nullptr, options);
  // Source floods all 4 neighbors; n1 (hop 1, partial=2) forwards to its 2
  // cheapest children only: deep_cheap and deep_mid, not deep_far.
  EXPECT_EQ(r.scope, 6u);
  EXPECT_EQ(r.messages, 4u + 2u);
}

TEST(RunQuery, HybridPeriodicalFullFloodOnPeriodHops) {
  SearchFixture f{32};
  // Chain with a wide hop-2 fan: period 2 means hop 2 floods everyone.
  const PeerId s = f.overlay->add_peer(HostId{0});
  const PeerId a = f.overlay->add_peer(HostId{1});
  const PeerId b = f.overlay->add_peer(HostId{2});
  std::vector<PeerId> fan;
  for (std::uint32_t h = 10; h < 16; ++h)
    fan.push_back(f.overlay->add_peer(HostId{h}));
  f.overlay->connect(s, a);
  f.overlay->connect(a, b);
  for (const PeerId q : fan) f.overlay->connect(b, q);
  const FixedOracle nobody{{}};
  QueryOptions options;
  options.hpf_partial = 1;
  options.hpf_period = 2;
  const QueryResult r =
      run_query(*f.overlay, s, 0, nobody, ForwardingMode::kHybridPeriodical,
                nullptr, options);
  // hop0 (s) floods -> a; hop1 (a) partial(1) -> b; hop2 (b) floods -> all
  // six fan peers.
  EXPECT_EQ(r.scope, 2u + fan.size());
}

TEST(RunQuery, HybridPeriodicalBetweenTreeAndBlindOnTraffic) {
  SearchFixture f{64};
  std::vector<PeerId> peers;
  Rng rng{21};
  for (std::uint32_t h = 0; h < 40; ++h)
    peers.push_back(f.overlay->add_peer(HostId{h}));
  for (std::size_t i = 1; i < peers.size(); ++i)
    f.overlay->connect(peers[i], peers[rng.next_below(i)]);
  for (int extra = 0; extra < 60; ++extra)
    f.overlay->connect(peers[rng.next_below(peers.size())],
                       peers[rng.next_below(peers.size())]);
  const FixedOracle nobody{{}};
  const QueryResult blind = run_query(
      *f.overlay, peers[0], 0, nobody, ForwardingMode::kBlindFlooding,
      nullptr);
  QueryOptions options;
  options.hpf_partial = 2;
  options.hpf_period = 3;
  const QueryResult hpf =
      run_query(*f.overlay, peers[0], 0, nobody,
                ForwardingMode::kHybridPeriodical, nullptr, options);
  EXPECT_LT(hpf.traffic_cost, blind.traffic_cost);
  // Periodic full floods keep the scope high.
  EXPECT_GE(hpf.scope, blind.scope * 9 / 10);
}

TEST(SampleQueries, AggregatesOverCatalog) {
  SearchFixture f;
  std::vector<PeerId> peers;
  for (std::uint32_t h = 0; h < 8; ++h)
    peers.push_back(f.overlay->add_peer(HostId{h}));
  for (std::size_t i = 0; i + 1 < peers.size(); ++i)
    f.overlay->connect(peers[i], peers[i + 1]);
  CatalogConfig cc;
  cc.object_count = 50;
  cc.base_replication = 0.5;
  cc.min_replication = 0.2;
  ObjectCatalog catalog{cc};
  CatalogOracle oracle{catalog};
  Rng rng{3};
  const QueryStats stats =
      sample_queries(*f.overlay, catalog, oracle,
                     ForwardingMode::kBlindFlooding, nullptr, 40, rng);
  EXPECT_EQ(stats.queries(), 40u);
  EXPECT_GT(stats.mean_traffic(), 0.0);
  EXPECT_GT(stats.mean_scope(), 0.0);
  EXPECT_GT(stats.success_rate(), 0.5);  // heavily replicated catalog
}

}  // namespace
}  // namespace ace
