// Behavioural coverage for util/sync.h and compile coverage for
// util/thread_annotations.h. The annotation macros are no-ops outside
// Clang, so this file must build warning-free under both GCC and Clang;
// the CI thread-safety job additionally compiles it with
// -Werror=thread-safety, where the AnnotatedCounter pattern below is
// exactly what the analysis checks.

#include "util/sync.h"
#include "util/thread_annotations.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <thread>
#include <vector>

namespace ace {
namespace {

// The canonical annotated structure: a counter guarded by a Mutex. Under
// Clang -Wthread-safety, touching count_ without the capability is a
// compile error; under GCC the macros vanish and this is a plain class.
class AnnotatedCounter {
 public:
  void increment() ACE_EXCLUDES(mutex_) {
    MutexLock lock{mutex_};
    ++count_;
  }

  std::size_t value() ACE_EXCLUDES(mutex_) {
    MutexLock lock{mutex_};
    return count_;
  }

 private:
  Mutex mutex_;
  std::size_t count_ ACE_GUARDED_BY(mutex_) = 0;
};

TEST(Annotations, MutexLockExcludesContention) {
  AnnotatedCounter counter;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::size_t i = 0; i < kPerThread; ++i) counter.increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Annotations, CondVarHandshake) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;     // guarded by mutex (by convention in this test)
  bool consumed = false;  // guarded by mutex

  std::thread consumer([&] {
    MutexLock lock{mutex};
    while (!ready) cv.wait(lock);
    consumed = true;
    cv.notify_all();
  });

  {
    MutexLock lock{mutex};
    ready = true;
    cv.notify_all();
    while (!consumed) cv.wait(lock);
  }
  consumer.join();
  {
    MutexLock lock{mutex};
    EXPECT_TRUE(consumed);
  }
}

TEST(Annotations, TryLockReportsContention) {
  Mutex mutex;
  mutex.lock();
  std::thread other([&] {
    // The capability is per-program-point for the analysis; at runtime the
    // mutex is genuinely held by the main thread, so try_lock must fail.
    if (mutex.try_lock()) {
      mutex.unlock();
      FAIL() << "try_lock acquired a held mutex";
    }
  });
  other.join();
  mutex.unlock();
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(Annotations, ThreadOwnershipBindsAndReasserts) {
  ThreadOwnership owner;
  owner.assert_held();  // first access binds this thread
  owner.assert_held();  // re-assertion from the bound thread is fine
}

TEST(Annotations, ThreadOwnershipDetachAllowsHandoff) {
  ThreadOwnership owner;
  owner.assert_held();  // bind to the main thread
  owner.detach();       // intentional sequential handoff
  std::thread worker([&owner] {
    owner.assert_held();  // rebinding from the new thread must succeed
    owner.assert_held();
  });
  worker.join();
  // Hand back: without a detach this would abort in audit builds.
  owner.detach();
  owner.assert_held();
}

TEST(Annotations, ThreadOwnershipCopyResetsBinding) {
  // Structures containing a ThreadOwnership stay copyable/movable
  // (Scenario is returned by value); the copy is a fresh handoff point.
  ThreadOwnership original;
  original.assert_held();
  ThreadOwnership copy{original};
  std::thread worker([&copy] { copy.assert_held(); });
  worker.join();
  original.assert_held();  // the original's binding is undisturbed
}

// The macros must also expand cleanly in isolation (a GCC build compiles
// them away; the Clang job checks their semantics). A few representative
// expansions beyond what the classes above already use:
class ACE_CAPABILITY("mutex") MacroSmokeCapability {
 public:
  void acquire() ACE_ACQUIRE() {}
  void release() ACE_RELEASE() {}
  bool try_acquire() ACE_TRY_ACQUIRE(true) { return true; }
  MacroSmokeCapability* self() ACE_RETURN_CAPABILITY(this) { return this; }
};

class MacroSmoke {
 public:
  void needs_both() ACE_REQUIRES(first_, second_) {}
  void reads_shared() ACE_REQUIRES_SHARED(first_) {}
  void unchecked() ACE_NO_THREAD_SAFETY_ANALYSIS {}

 private:
  MacroSmokeCapability first_;
  MacroSmokeCapability second_;
  int value_ ACE_GUARDED_BY(first_) = 0;
  int* pointee_ ACE_PT_GUARDED_BY(second_) = nullptr;
};

TEST(Annotations, MacrosExpandCleanly) {
  MacroSmokeCapability cap;
  ASSERT_TRUE(cap.try_acquire());
  EXPECT_EQ(cap.self(), &cap);
  MacroSmoke smoke;
  smoke.unchecked();
  (void)smoke;
}

}  // namespace
}  // namespace ace
