// Regression tests for the determinism layer: named Rng streams, the
// churn/workload stream-isolation contract, and double-run digest-trace
// equality of the full dynamic experiment. These are the in-process
// counterpart of tools/determinism_check.py (which additionally perturbs
// heap/stack/ASLR across processes).
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "core/experiment.h"
#include "overlay/churn.h"
#include "overlay/workload.h"
#include "util/digest.h"
#include "util/rng.h"

namespace ace {
namespace {

TEST(RngStream, DeterministicPerName) {
  Rng a = Rng::stream(42, "churn");
  Rng b = Rng::stream(42, "churn");
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngStream, IndependentAcrossNamesAndMasters) {
  Rng churn = Rng::stream(42, "churn");
  Rng workload = Rng::stream(42, "workload");
  Rng other_master = Rng::stream(43, "churn");
  const std::uint64_t base = Rng::stream(42, "churn").next();
  EXPECT_EQ(churn.next(), base);
  EXPECT_NE(workload.next(), base);
  EXPECT_NE(other_master.next(), base);
}

// Shared substrate for the stream-isolation tests: unit-delay line of
// hosts, every peer online, ring overlay (mirrors the churn-test fixture).
struct Fixture {
  explicit Fixture(std::size_t online, std::size_t offline = 0) {
    Graph g{64};
    for (NodeId u = 0; u + 1 < 64; ++u) g.add_edge(u, u + 1, 1.0);
    physical = std::make_unique<PhysicalNetwork>(std::move(g));
    overlay = std::make_unique<OverlayNetwork>(*physical);
    for (std::size_t i = 0; i < online + offline; ++i)
      overlay->add_peer(static_cast<HostId>(i % 64), i < online);
    for (std::size_t i = 0; i < online; ++i)
      overlay->connect(static_cast<PeerId>(i),
                       static_cast<PeerId>((i + 1) % online));
  }
  std::unique_ptr<PhysicalNetwork> physical;
  std::unique_ptr<OverlayNetwork> overlay;
  Simulator sim;
};

TEST(StreamIsolation, ChurnDriverNeverTouchesCallerRngAfterConstruction) {
  Fixture f{20, 20};
  ChurnConfig config;
  config.mean_lifetime_s = 10.0;
  config.lifetime_variance = 5.0;
  Rng caller{9};
  ChurnDriver churn{*f.overlay, f.sim, caller, config};
  const Rng snapshot = caller;  // state right after construction
  churn.start();
  f.sim.run_until(100.0);
  ASSERT_GT(churn.leaves(), 20u);  // plenty of churn activity happened...
  Rng mirror = snapshot;
  for (int i = 0; i < 8; ++i)      // ...yet the caller stream is untouched
    EXPECT_EQ(caller.next(), mirror.next());
}

TEST(StreamIsolation, WorkloadNeverTouchesCallerRngAfterConstruction) {
  Fixture f{16};
  const ObjectCatalog catalog{CatalogConfig{}};
  Rng caller{9};
  std::size_t seen = 0;
  WorkloadConfig config;
  config.queries_per_peer_per_s = 0.1;
  QueryWorkload workload{*f.overlay, catalog,  f.sim,
                         caller,     config,   [&](SimTime, PeerId, ObjectId) {
                           ++seen;
                         }};
  const Rng snapshot = caller;
  workload.start();
  f.sim.run_until(100.0);
  ASSERT_GT(seen, 0u);
  Rng mirror = snapshot;
  for (int i = 0; i < 8; ++i) EXPECT_EQ(caller.next(), mirror.next());
}

using QueryEvent = std::tuple<SimTime, PeerId, ObjectId>;

// Runs the query workload over the fixture for `duration` seconds,
// optionally with an (effectively quiescent) churn driver armed, and
// returns the emitted (time, source, object) sequence.
std::vector<QueryEvent> run_workload(bool with_churn, double duration) {
  Fixture f{16};
  const ObjectCatalog catalog{CatalogConfig{}};
  std::unique_ptr<ChurnDriver> churn;
  if (with_churn) {
    ChurnConfig config;
    // Lifetimes concentrated far beyond `duration`: the driver constructs,
    // draws every residual lifetime, and arms a departure event per peer,
    // but no churn event fires inside the measurement window.
    config.mean_lifetime_s = 1e6;
    config.lifetime_variance = 1.0;
    Rng churn_rng = Rng::stream(7, "churn");
    churn = std::make_unique<ChurnDriver>(*f.overlay, f.sim, churn_rng,
                                          config);
    churn->start();
  }
  std::vector<QueryEvent> events;
  WorkloadConfig config;
  config.queries_per_peer_per_s = 0.1;
  Rng workload_rng = Rng::stream(7, "workload");
  QueryWorkload workload{
      *f.overlay, catalog, f.sim, workload_rng, config,
      [&](SimTime t, PeerId source, ObjectId object) {
        events.emplace_back(t, source, object);
      }};
  workload.start();
  f.sim.run_until(duration);
  if (churn) EXPECT_EQ(churn->leaves(), 0u);  // premise: quiescent
  return events;
}

// The regression the named streams exist for: before stream isolation,
// merely *constructing* the churn driver (which draws lifetimes) shifted a
// shared generator and changed every subsequent query. With owned forked
// streams the (time, source, object) sequence is bit-identical whether or
// not churn is armed.
TEST(StreamIsolation, QuerySequenceUnchangedByArmingChurn) {
  const std::vector<QueryEvent> without = run_workload(false, 500.0);
  const std::vector<QueryEvent> with = run_workload(true, 500.0);
  ASSERT_GT(without.size(), 100u);
  EXPECT_EQ(without, with);
}

DynamicConfig small_dynamic_config(DigestTrace* trace) {
  DynamicConfig config;
  config.scenario.physical_nodes = 128;
  config.scenario.peers = 32;
  config.scenario.mean_degree = 4.0;
  config.scenario.seed = 99;
  config.scenario.catalog.object_count = 100;
  config.churn.mean_lifetime_s = 60.0;
  config.churn.lifetime_variance = 30.0 * 30.0;
  config.churn.join_degree = 4;
  config.workload.queries_per_peer_per_s = 0.01;
  config.ace_period_s = 15.0;
  config.duration_s = 60.0;
  config.report_buckets = 2;
  config.digest_trace = trace;
  return config;
}

// End-to-end: two runs of the full dynamic experiment (churn + workload +
// ACE rounds) from one config produce byte-identical phase-boundary digest
// traces.
TEST(Determinism, DynamicRunDigestTraceIsReproducible) {
  DigestTrace first, second;
  run_dynamic(small_dynamic_config(&first));
  run_dynamic(small_dynamic_config(&second));
  ASSERT_GT(first.rows(), 0u);
  EXPECT_EQ(first.csv(), second.csv());
}

}  // namespace
}  // namespace ace
