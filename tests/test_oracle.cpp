// Cost-oracle subsystem tests: spec parsing, the exact-oracle differential
// (byte-identical to PhysicalNetwork::delay), landmark triangulation bounds
// and shared-coordinate equivalence with the baseline, Vivaldi determinism,
// statistical error bounds for both approximate oracles, and the overlay /
// cost-table / engine-digest integration contract (exact attaches nothing;
// approximate runs are reproducible and carry the "cost-oracle" component).
#include "oracle/cost_oracle.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ace/engine.h"
#include "baselines/landmark.h"
#include "core/experiment.h"
#include "graph/generators.h"
#include "net/physical_network.h"
#include "oracle/exact_oracle.h"
#include "oracle/landmark_oracle.h"
#include "oracle/vivaldi_oracle.h"
#include "overlay/overlay_network.h"
#include "util/rng.h"

namespace ace {
namespace {

PhysicalNetwork ba_network(std::size_t hosts, std::uint64_t seed = 5) {
  Rng rng{seed};
  BaOptions options;
  options.nodes = hosts;
  options.edges_per_node = 2;
  return PhysicalNetwork{barabasi_albert(options, rng)};
}

PhysicalNetwork waxman_network(std::size_t hosts, std::uint64_t seed = 6) {
  Rng rng{seed};
  WaxmanOptions options;
  options.nodes = hosts;
  return PhysicalNetwork{waxman(options, rng)};
}

// Deterministic sample of host pairs (distinct endpoints).
std::vector<std::pair<HostId, HostId>> sample_pairs(std::size_t hosts,
                                                    std::size_t count,
                                                    std::uint64_t seed) {
  Rng rng{seed};
  std::vector<std::pair<HostId, HostId>> pairs;
  pairs.reserve(count);
  while (pairs.size() < count) {
    // ace-id: boundary(uniform draws below host count are host ids)
    const HostId a{static_cast<std::uint32_t>(rng.next_below(hosts))};
    // ace-id: boundary(uniform draws below host count are host ids)
    const HostId b{static_cast<std::uint32_t>(rng.next_below(hosts))};
    if (a != b) pairs.emplace_back(a, b);
  }
  return pairs;
}

double mean_relative_error(const CostOracle& oracle,
                           const PhysicalNetwork& net,
                           std::span<const std::pair<HostId, HostId>> pairs) {
  double sum = 0;
  std::size_t n = 0;
  for (const auto& [a, b] : pairs) {
    const Weight exact = net.delay(a, b);
    if (exact <= 0) continue;
    sum += std::abs(oracle.delay(a, b) - exact) / exact;
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

// --- spec parsing -----------------------------------------------------

TEST(OracleSpec, ParsesAndRoundTrips) {
  EXPECT_EQ(parse_oracle_spec("exact").kind, OracleKind::kExact);
  EXPECT_EQ(parse_oracle_spec("").kind, OracleKind::kExact);

  const OracleConfig lm = parse_oracle_spec("landmark:24");
  EXPECT_EQ(lm.kind, OracleKind::kLandmark);
  EXPECT_EQ(lm.landmarks, 24u);
  EXPECT_EQ(oracle_spec(lm), "landmark:24");
  EXPECT_EQ(parse_oracle_spec("landmark").landmarks, 16u);  // default K

  const OracleConfig vv = parse_oracle_spec("vivaldi:6:10:4");
  EXPECT_EQ(vv.kind, OracleKind::kVivaldi);
  EXPECT_EQ(vv.vivaldi_dims, 6u);
  EXPECT_EQ(vv.vivaldi_rounds, 10u);
  EXPECT_EQ(vv.vivaldi_pivots, 4u);
  EXPECT_EQ(oracle_spec(vv), "vivaldi:6");

  EXPECT_THROW(parse_oracle_spec("meridian"), std::invalid_argument);
  EXPECT_THROW(parse_oracle_spec("landmark:0"), std::invalid_argument);
  EXPECT_THROW(parse_oracle_spec("landmark:3:4"), std::invalid_argument);
  EXPECT_THROW(parse_oracle_spec("vivaldi:2:3:4:5"), std::invalid_argument);
  EXPECT_THROW(parse_oracle_spec("landmarkX"), std::invalid_argument);
  EXPECT_THROW(parse_oracle_spec("vivaldi:-3"), std::invalid_argument);
}

TEST(OracleSpec, ProvenanceOnlyForApproximateModes) {
  ProvenanceEntries entries;
  append_oracle_provenance(entries, OracleConfig{});
  EXPECT_TRUE(entries.empty());  // exact: byte-identical CSVs

  append_oracle_provenance(entries, parse_oracle_spec("landmark:8"));
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].first, "oracle");
  EXPECT_EQ(entries[0].second, "landmark:8");

  entries.clear();
  append_oracle_provenance(entries, parse_oracle_spec("vivaldi:4"));
  ASSERT_EQ(entries.size(), 3u);  // spec + rounds + pivots
  EXPECT_EQ(entries[0].second, "vivaldi:4");
}

TEST(OracleFactory, BuildsEveryKind) {
  const PhysicalNetwork net = ba_network(64);
  const auto exact = make_cost_oracle(net, parse_oracle_spec("exact"), 1);
  const auto lm = make_cost_oracle(net, parse_oracle_spec("landmark:4"), 1);
  const auto vv = make_cost_oracle(net, parse_oracle_spec("vivaldi:3"), 1);
  EXPECT_EQ(exact->kind(), OracleKind::kExact);
  EXPECT_EQ(lm->kind(), OracleKind::kLandmark);
  EXPECT_EQ(vv->kind(), OracleKind::kVivaldi);
  EXPECT_EQ(exact->spec(), "exact");
  EXPECT_EQ(lm->spec(), "landmark:4");
  EXPECT_EQ(vv->spec(), "vivaldi:3");
}

// --- exact oracle -----------------------------------------------------

TEST(ExactOracle, MatchesPhysicalNetworkExactly) {
  const PhysicalNetwork net = ba_network(256);
  const ExactOracle oracle{net};
  for (const auto& [a, b] : sample_pairs(256, 200, 17)) {
    EXPECT_EQ(oracle.delay(a, b), net.delay(a, b));  // bitwise, not approx
  }
  EXPECT_EQ(oracle.delay(HostId{9}, HostId{9}), 0.0);
}

TEST(ExactOracle, BatchMatchesScalar) {
  const PhysicalNetwork net = ba_network(128);
  const ExactOracle oracle{net};
  std::vector<HostId> targets;
  for (std::uint32_t h = 0; h < 128; h += 3) targets.push_back(HostId{h});
  std::vector<float> out(targets.size());
  oracle.delays_from(HostId{11}, targets, out);
  for (std::size_t i = 0; i < targets.size(); ++i)
    EXPECT_EQ(out[i], static_cast<float>(net.delay(HostId{11}, targets[i])));
  std::vector<float> wrong(targets.size() + 1);
  EXPECT_THROW(oracle.delays_from(HostId{11}, targets, wrong),
               std::invalid_argument);
}

// --- landmark oracle --------------------------------------------------

TEST(LandmarkOracle, SharesCoordinatesWithBaselinePrimitive) {
  const PhysicalNetwork net = ba_network(128);
  const LandmarkOracle oracle{net, 6, 77};
  // The oracle's frozen coordinates must be exactly the shared
  // landmark_coordinates primitive evaluated over its landmark set.
  std::vector<HostId> hosts;
  for (std::uint32_t h = 0; h < 128; ++h) hosts.push_back(HostId{h});
  const auto reference =
      landmark_coordinates(net, hosts, oracle.landmark_hosts());
  for (std::uint32_t h = 0; h < 128; ++h) {
    const auto coords = oracle.coordinates(HostId{h});
    ASSERT_EQ(coords.size(), 6u);
    for (std::size_t k = 0; k < coords.size(); ++k)
      EXPECT_EQ(coords[k], static_cast<float>(reference[h][k]));
  }
}

TEST(LandmarkOracle, TriangulationBoundsHoldOnTrueMetric) {
  // Shortest-path delay is a metric, so for every pair the true delay lies
  // in [max_k |a_k - b_k|, min_k (a_k + b_k)] — the estimate is the
  // midpoint, so its error is at most half the interval width.
  const PhysicalNetwork net = waxman_network(128);
  const LandmarkOracle oracle{net, 8, 3};
  for (const auto& [a, b] : sample_pairs(128, 150, 23)) {
    const auto ca = oracle.coordinates(a);
    const auto cb = oracle.coordinates(b);
    float lower = 0.0f, upper = ca[0] + cb[0];
    for (std::size_t k = 0; k < ca.size(); ++k) {
      lower = std::max(lower, std::abs(ca[k] - cb[k]));
      upper = std::min(upper, ca[k] + cb[k]);
    }
    const Weight exact = net.delay(a, b);
    // Float-rounded coordinates: allow a hair of slack on each side.
    EXPECT_LE(lower - 1e-3, exact);
    EXPECT_GE(upper + 1e-3, exact);
    const Weight est = oracle.delay(a, b);
    EXPECT_GE(est + 1e-6, lower - 1e-3);
    EXPECT_LE(est - 1e-6, upper + 1e-3);
  }
}

TEST(LandmarkOracle, StatisticalErrorBoundOnSmallNets) {
  // Empirical regression bound, not a theory claim: K=16 landmark
  // triangulation holds well under 40% mean relative error on both
  // topology families at this scale (measured ~15-25%).
  const PhysicalNetwork ba = ba_network(256);
  const LandmarkOracle ba_oracle{ba, 16, 11};
  EXPECT_LT(mean_relative_error(ba_oracle, ba, sample_pairs(256, 300, 31)),
            0.40);
  const PhysicalNetwork wax = waxman_network(256);
  const LandmarkOracle wax_oracle{wax, 16, 11};
  EXPECT_LT(mean_relative_error(wax_oracle, wax, sample_pairs(256, 300, 37)),
            0.40);
}

TEST(LandmarkOracle, DeterministicAndSeedSensitive) {
  const PhysicalNetwork net = ba_network(128);
  const LandmarkOracle a{net, 8, 42};
  const LandmarkOracle b{net, 8, 42};
  const LandmarkOracle c{net, 8, 43};
  Fnv1a da, db, dc;
  a.digest_into(da);
  b.digest_into(db);
  c.digest_into(dc);
  EXPECT_EQ(da.value(), db.value());
  EXPECT_NE(da.value(), dc.value());
}

TEST(LandmarkOracle, PropertiesAndErrors) {
  const PhysicalNetwork net = ba_network(96);
  const LandmarkOracle oracle{net, 5, 9};
  for (const auto& [a, b] : sample_pairs(96, 60, 41)) {
    EXPECT_EQ(oracle.delay(a, b), oracle.delay(b, a));  // symmetric
    EXPECT_GE(oracle.delay(a, b), 0.0);
  }
  EXPECT_EQ(oracle.delay(HostId{7}, HostId{7}), 0.0);
  EXPECT_THROW(oracle.delay(HostId{96}, HostId{0}), std::out_of_range);
  EXPECT_THROW(oracle.coordinates(HostId{96}), std::out_of_range);
  EXPECT_THROW((LandmarkOracle{net, 0, 1}), std::invalid_argument);
  EXPECT_THROW((LandmarkOracle{net, 97, 1}), std::invalid_argument);
}

TEST(LandmarkOracle, MemorySublinearInPairSpace) {
  // O(K*N) coordinates — at N=512, K=8 that is ~16 KiB where a dense row
  // set for every source would be N * N * 8 = 2 MiB.
  const PhysicalNetwork net = ba_network(512);
  const LandmarkOracle oracle{net, 8, 2};
  EXPECT_GE(oracle.memory_bytes(), 512u * 8u * sizeof(float));
  EXPECT_LT(oracle.memory_bytes(), 512u * 8u * sizeof(float) * 2);
}

// --- vivaldi oracle ---------------------------------------------------

TEST(VivaldiOracle, DeterministicSeedSensitiveAndSymmetric) {
  const PhysicalNetwork net = ba_network(128);
  const VivaldiConfig config{};
  const VivaldiOracle a{net, config, 42};
  const VivaldiOracle b{net, config, 42};
  const VivaldiOracle c{net, config, 43};
  Fnv1a da, db, dc;
  a.digest_into(da);
  b.digest_into(db);
  c.digest_into(dc);
  EXPECT_EQ(da.value(), db.value());
  EXPECT_NE(da.value(), dc.value());
  for (const auto& [x, y] : sample_pairs(128, 60, 51)) {
    EXPECT_EQ(a.delay(x, y), a.delay(y, x));
    EXPECT_EQ(a.delay(x, y), b.delay(x, y));  // bitwise reproducible
    EXPECT_GE(a.delay(x, y), 0.0);
  }
  EXPECT_EQ(a.delay(HostId{3}, HostId{3}), 0.0);
  EXPECT_THROW(a.delay(HostId{128}, HostId{0}), std::out_of_range);
}

TEST(VivaldiOracle, EmbeddingBeatsUninitializedCoordinates) {
  // The refinement rounds must actually pull the embedding toward the true
  // delays: the refined oracle's error is far below the unrefined
  // (1-round, 1-pivot) one, and under a loose absolute regression bound.
  const PhysicalNetwork net = ba_network(256);
  VivaldiConfig refined;
  refined.rounds = 16;
  refined.pivots_per_round = 8;
  const VivaldiOracle oracle{net, refined, 13};
  VivaldiConfig raw;
  raw.rounds = 1;
  raw.pivots_per_round = 1;
  const VivaldiOracle unrefined{net, raw, 13};
  const auto pairs = sample_pairs(256, 300, 61);
  const double refined_err = mean_relative_error(oracle, net, pairs);
  const double raw_err = mean_relative_error(unrefined, net, pairs);
  EXPECT_LT(refined_err, raw_err);
  EXPECT_LT(refined_err, 0.60);  // measured ~0.2-0.3 at this scale
}

TEST(VivaldiOracle, MemoryIsDimsTimesHosts) {
  const PhysicalNetwork net = ba_network(512);
  VivaldiConfig config;
  config.dims = 4;
  const VivaldiOracle oracle{net, config, 1};
  EXPECT_GE(oracle.memory_bytes(), 512u * 4u * sizeof(float));
  EXPECT_LT(oracle.memory_bytes(), 512u * 4u * sizeof(float) * 2);
  EXPECT_EQ(oracle.coordinates(HostId{0}).size(), 4u);
  EXPECT_THROW((VivaldiOracle{net, VivaldiConfig{0, 1, 1}, 1}),
               std::invalid_argument);
  EXPECT_THROW((VivaldiOracle{net, VivaldiConfig{2, 0, 1}, 1}),
               std::invalid_argument);
}

TEST(ApproximateOracles, BatchMatchesScalar) {
  const PhysicalNetwork net = ba_network(128);
  const LandmarkOracle lm{net, 6, 3};
  const VivaldiOracle vv{net, VivaldiConfig{}, 3};
  std::vector<HostId> targets;
  for (std::uint32_t h = 0; h < 128; h += 5) targets.push_back(HostId{h});
  std::vector<float> out(targets.size());
  lm.delays_from(HostId{2}, targets, out);
  for (std::size_t i = 0; i < targets.size(); ++i)
    EXPECT_EQ(out[i], static_cast<float>(lm.delay(HostId{2}, targets[i])));
  vv.delays_from(HostId{2}, targets, out);
  for (std::size_t i = 0; i < targets.size(); ++i)
    EXPECT_EQ(out[i], static_cast<float>(vv.delay(HostId{2}, targets[i])));
}

// --- overlay / engine integration -------------------------------------

TEST(OverlayOracle, EstimateRoutesThroughAttachedOracle) {
  const PhysicalNetwork net = ba_network(128);
  OverlayNetwork overlay{net};
  const PeerId p = overlay.add_peer(HostId{3});
  const PeerId q = overlay.add_peer(HostId{90});
  overlay.connect(p, q);

  // No oracle: estimate IS ground truth, probe IS the link cost.
  EXPECT_EQ(overlay.cost_oracle(), nullptr);
  EXPECT_EQ(overlay.peer_cost_estimate(p, q), overlay.peer_delay(p, q));
  EXPECT_EQ(overlay.probe_estimate(p, q), overlay.link_cost(p, q));

  const LandmarkOracle oracle{net, 6, 5};
  overlay.set_cost_oracle(&oracle);
  EXPECT_EQ(overlay.peer_cost_estimate(p, q),
            oracle.delay(HostId{3}, HostId{90}));
  // Ground truth is never rerouted.
  EXPECT_EQ(overlay.peer_delay(p, q), net.delay(HostId{3}, HostId{90}));
  const Weight est = oracle.delay(HostId{3}, HostId{90});
  EXPECT_EQ(overlay.probe_estimate(p, q), est > 0 ? est : 1e-6);

  overlay.set_cost_oracle(nullptr);
  EXPECT_EQ(overlay.peer_cost_estimate(p, q), overlay.peer_delay(p, q));
}

TEST(ScenarioOracle, ExactAttachesNothingApproximateAttaches) {
  ScenarioConfig config;
  config.physical_nodes = 256;
  config.peers = 64;
  Scenario exact{config};
  EXPECT_EQ(exact.cost_oracle(), nullptr);
  EXPECT_EQ(exact.overlay().cost_oracle(), nullptr);

  config.oracle = parse_oracle_spec("landmark:8");
  Scenario approx{config};
  ASSERT_NE(approx.cost_oracle(), nullptr);
  EXPECT_EQ(approx.cost_oracle(), approx.overlay().cost_oracle());
  EXPECT_EQ(approx.cost_oracle()->spec(), "landmark:8");
}

TEST(ScenarioOracle, EngineRunsAndValidatesUnderApproximateOracle) {
  // Cost tables record estimates, the invariant auditor accepts them, and
  // the engine converges without touching ground-truth link weights.
  ScenarioConfig config;
  config.physical_nodes = 256;
  config.peers = 64;
  config.oracle = parse_oracle_spec("landmark:8");
  Scenario scenario{config};
  AceEngine engine{scenario.overlay(), AceConfig{}};
  for (int r = 0; r < 3; ++r) engine.step_round(scenario.rng());
  scenario.overlay().debug_validate();

  // Refresh a table store against the oracle-backed overlay: recorded
  // beliefs are the oracle's (clamped) estimates, not link weights, and
  // the invariant auditor accepts them.
  const OverlayNetwork& overlay = scenario.overlay();
  CostTableStore store;
  store.ensure_size(overlay.peer_count());
  ProbeOverhead overhead;
  for (const PeerId p : overlay.online_peers())
    store.refresh_peer(overlay, p, overhead);
  store.debug_validate(overlay);

  const CostOracle& oracle = *scenario.cost_oracle();
  bool checked = false;
  for (const PeerId p : overlay.online_peers()) {
    for (const auto& n : overlay.neighbors(p)) {
      const Weight est =
          oracle.delay(overlay.host_of(p), overlay.host_of(peer_of(n)));
      EXPECT_EQ(store.table(p).cost_to(peer_of(n)), est > 0 ? est : 1e-6);
      EXPECT_NE(store.table(p).cost_to(peer_of(n)), 0.0);
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

TEST(ScenarioOracle, DigestCarriesOracleComponentOnlyWhenAttached) {
  ScenarioConfig config;
  config.physical_nodes = 256;
  config.peers = 64;
  Scenario exact{config};
  AceEngine exact_engine{exact.overlay(), AceConfig{}};
  const StateDigest exact_digest = exact_engine.state_digest();
  for (const auto& [name, value] : exact_digest.components)
    EXPECT_NE(name, "cost-oracle");

  config.oracle = parse_oracle_spec("vivaldi:4");
  Scenario approx{config};
  AceEngine approx_engine{approx.overlay(), AceConfig{}};
  const StateDigest approx_digest = approx_engine.state_digest();
  bool found = false;
  for (const auto& [name, value] : approx_digest.components)
    found = found || name == "cost-oracle";
  EXPECT_TRUE(found);
}

TEST(ScenarioOracle, ApproximateRunsAreByteReproducible) {
  // Two full engine runs per approximate mode must record identical digest
  // traces — the double-run determinism contract of DESIGN.md §14.
  for (const char* spec : {"landmark:8", "vivaldi:4"}) {
    auto run = [&](DigestTrace& trace) {
      ScenarioConfig config;
      config.physical_nodes = 256;
      config.peers = 64;
      config.oracle = parse_oracle_spec(spec);
      Scenario scenario{config};
      AceEngine engine{scenario.overlay(), AceConfig{}};
      for (int r = 1; r <= 3; ++r) {
        engine.step_round(scenario.rng());
        trace.record("round-" + std::to_string(r), engine.state_digest());
      }
    };
    DigestTrace first, second;
    run(first);
    run(second);
    EXPECT_EQ(first.csv(), second.csv()) << "oracle spec: " << spec;
  }
}

}  // namespace
}  // namespace ace
