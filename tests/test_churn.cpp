#include "overlay/churn.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/stats.h"

namespace ace {
namespace {

struct ChurnFixture {
  ChurnFixture(std::size_t online, std::size_t offline, std::uint64_t seed = 1)
      : rng{seed} {
    Graph g{64};
    for (NodeId u = 0; u + 1 < 64; ++u) g.add_edge(u, u + 1, 1.0);
    physical = std::make_unique<PhysicalNetwork>(std::move(g));
    overlay = std::make_unique<OverlayNetwork>(*physical);
    for (std::size_t i = 0; i < online + offline; ++i)
      overlay->add_peer(static_cast<HostId>(i % 64), i < online);
    // Ring links among online peers so nobody starts isolated.
    for (std::size_t i = 0; i < online; ++i)
      overlay->connect(static_cast<PeerId>(i),
                       static_cast<PeerId>((i + 1) % online));
  }
  Rng rng;
  std::unique_ptr<PhysicalNetwork> physical;
  std::unique_ptr<OverlayNetwork> overlay;
  Simulator sim;
};

TEST(Churn, PopulationStaysConstant) {
  ChurnFixture f{20, 20};
  ChurnConfig config;
  config.mean_lifetime_s = 10.0;
  config.lifetime_variance = 5.0;
  ChurnDriver churn{*f.overlay, f.sim, f.rng, config};
  churn.start();
  for (double t = 10; t <= 100; t += 10) {
    f.sim.run_until(t);
    EXPECT_EQ(f.overlay->online_count(), 20u) << "at t=" << t;
  }
  EXPECT_GT(churn.leaves(), 20u);  // plenty of turnover at 10 s lifetimes
  EXPECT_EQ(churn.joins(), churn.leaves());
}

TEST(Churn, HooksInvoked) {
  ChurnFixture f{10, 10};
  ChurnConfig config;
  config.mean_lifetime_s = 5.0;
  config.lifetime_variance = 2.0;
  ChurnDriver churn{*f.overlay, f.sim, f.rng, config};
  std::size_t join_calls = 0, leave_calls = 0;
  churn.on_join = [&](PeerId p) {
    ++join_calls;
    EXPECT_TRUE(f.overlay->is_online(p));
  };
  churn.on_leave = [&](PeerId p, std::span<const PeerId> dropped) {
    ++leave_calls;
    EXPECT_FALSE(f.overlay->is_online(p));
    for (const PeerId q : dropped)
      EXPECT_FALSE(f.overlay->are_connected(p, q));
  };
  churn.start();
  f.sim.run_until(50.0);
  EXPECT_EQ(join_calls, churn.joins());
  EXPECT_EQ(leave_calls, churn.leaves());
  EXPECT_GT(join_calls, 0u);
}

TEST(Churn, JoinersGetBootstrapLinks) {
  ChurnFixture f{16, 16};
  ChurnConfig config;
  config.mean_lifetime_s = 5.0;
  config.lifetime_variance = 2.0;
  config.join_degree = 3;
  ChurnDriver churn{*f.overlay, f.sim, f.rng, config};
  churn.on_join = [&](PeerId p) { EXPECT_GE(f.overlay->degree(p), 1u); };
  churn.start();
  f.sim.run_until(60.0);
  EXPECT_GT(churn.joins(), 0u);
}

TEST(Churn, LifetimeDistributionMatchesConfig) {
  ChurnFixture f{4, 0};
  ChurnConfig config;
  config.mean_lifetime_s = 600.0;
  config.lifetime_variance = 300.0;
  ChurnDriver churn{*f.overlay, f.sim, f.rng, config};
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(churn.draw_lifetime());
  EXPECT_NEAR(stats.mean(), 600.0, 6.0);
  EXPECT_NEAR(stats.variance(), 300.0, 30.0);
}

TEST(Churn, ExponentialLifetimesWhenVarianceDisabled) {
  ChurnFixture f{4, 0};
  ChurnConfig config;
  config.mean_lifetime_s = 100.0;
  config.lifetime_variance = 0.0;  // exponential mode
  ChurnDriver churn{*f.overlay, f.sim, f.rng, config};
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(churn.draw_lifetime());
  EXPECT_NEAR(stats.mean(), 100.0, 2.0);
  // Exponential: variance = mean^2.
  EXPECT_NEAR(stats.variance(), 100.0 * 100.0, 1500.0);
}

TEST(Churn, InvalidLifetimeThrows) {
  ChurnFixture f{4, 0};
  ChurnConfig config;
  config.mean_lifetime_s = 0.0;
  EXPECT_THROW(ChurnDriver(*f.overlay, f.sim, f.rng, config),
               std::invalid_argument);
}

TEST(Churn, OnlinePeersStayConnectedEnough) {
  ChurnFixture f{24, 24};
  ChurnConfig config;
  config.mean_lifetime_s = 8.0;
  config.lifetime_variance = 4.0;
  config.join_degree = 4;
  config.repair_min_degree = 2;
  ChurnDriver churn{*f.overlay, f.sim, f.rng, config};
  churn.start();
  f.sim.run_until(100.0);
  // After heavy churn, no online peer should be fully isolated.
  for (const PeerId p : f.overlay->online_peers())
    EXPECT_GE(f.overlay->degree(p), 1u) << "peer " << p;
}

}  // namespace
}  // namespace ace
