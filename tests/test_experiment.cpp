#include "core/experiment.h"

#include <gtest/gtest.h>

#include "graph/shortest_path.h"

namespace ace {
namespace {

ScenarioConfig tiny_scenario() {
  ScenarioConfig config;
  config.physical_nodes = 256;
  config.peers = 64;
  config.mean_degree = 6.0;
  config.catalog.object_count = 100;
  config.catalog.base_replication = 0.2;
  config.catalog.min_replication = 0.05;
  config.seed = 99;
  return config;
}

TEST(ScenarioTest, BuildsConnectedStack) {
  Scenario scenario{tiny_scenario()};
  EXPECT_EQ(scenario.overlay().peer_count(), 64u);
  EXPECT_EQ(scenario.overlay().online_count(), 64u);
  EXPECT_TRUE(is_connected(scenario.overlay().logical()));
  EXPECT_EQ(scenario.physical().host_count(), 256u);
  EXPECT_NEAR(scenario.overlay().mean_online_degree(), 6.0, 1.5);
}

TEST(ScenarioTest, RejectsMorePeersThanHosts) {
  ScenarioConfig config = tiny_scenario();
  config.peers = 10000;
  EXPECT_THROW(Scenario{config}, std::invalid_argument);
}

TEST(ScenarioTest, AllPhysicalModelsBuild) {
  for (const PhysicalModel model :
       {PhysicalModel::kBarabasiAlbert, PhysicalModel::kWaxman,
        PhysicalModel::kTransitStub}) {
    ScenarioConfig config = tiny_scenario();
    config.physical_model = model;
    Scenario scenario{config};
    EXPECT_GT(scenario.physical().host_count(), 0u);
  }
}

TEST(ScenarioTest, PowerLawOverlayModelBuilds) {
  ScenarioConfig config = tiny_scenario();
  config.overlay_model = OverlayModel::kPowerLaw;
  Scenario scenario{config};
  EXPECT_TRUE(is_connected(scenario.overlay().logical()));
}

TEST(ScenarioTest, MeasureReturnsSaneStats) {
  Scenario scenario{tiny_scenario()};
  const QueryStats stats = scenario.measure_blind(20);
  EXPECT_EQ(stats.queries(), 20u);
  EXPECT_GT(stats.mean_traffic(), 0.0);
  // Connected overlay + unlimited TTL: full scope on every query.
  EXPECT_DOUBLE_EQ(stats.mean_scope(), 63.0);
}

TEST(ScenarioTest, SameSeedSameMeasurement) {
  Scenario a{tiny_scenario()};
  Scenario b{tiny_scenario()};
  EXPECT_DOUBLE_EQ(a.measure_blind(10).mean_traffic(),
                   b.measure_blind(10).mean_traffic());
}

TEST(StaticRun, TrafficAndResponseDrop) {
  // Mid-sized scenario: at 64 peers the transient tree staleness during
  // active optimization dents the measured scope too much for a tight
  // assertion; 128 peers is the smallest comfortable scale.
  ScenarioConfig config = tiny_scenario();
  config.physical_nodes = 512;
  config.peers = 128;
  Scenario scenario{config};
  const StaticRunResult result =
      run_static_optimization(scenario, AceConfig{}, 8, 30);
  ASSERT_EQ(result.samples.size(), 9u);
  EXPECT_EQ(result.samples[0].step, 0u);
  EXPECT_GT(result.samples[0].traffic, 0.0);
  // The paper reports ~50% traffic cuts at convergence; the full-size bench
  // (bench_fig07_08_static) reproduces both that and the ~35% response
  // improvement. At this 64-peer toy scale the traffic cut is strong while
  // response time is roughly neutral (blind flooding's parallelism matters
  // more in very small overlays), so only bound the regression.
  EXPECT_GT(result.traffic_reduction(), 0.4);
  EXPECT_GT(result.response_reduction(), -0.35);
  // Scope retained within a small tolerance.
  EXPECT_NEAR(result.samples.back().scope, result.samples.front().scope,
              result.samples.front().scope * 0.1);
}

TEST(StaticRun, OverheadRecordedPerStep) {
  Scenario scenario{tiny_scenario()};
  const StaticRunResult result =
      run_static_optimization(scenario, AceConfig{}, 2, 10);
  EXPECT_DOUBLE_EQ(result.samples[0].overhead, 0.0);
  EXPECT_GT(result.samples[1].overhead, 0.0);
}

TEST(DepthSweep, ReductionGrowsOverheadGrows) {
  const std::vector<std::uint32_t> depths{1, 2, 3};
  const auto samples =
      run_depth_sweep(tiny_scenario(), AceConfig{}, depths, 5, 25);
  ASSERT_EQ(samples.size(), 3u);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].h, depths[i]);
    EXPECT_GT(samples[i].reduction_rate, 0.0);
    EXPECT_LT(samples[i].reduction_rate, 1.0);
    EXPECT_GT(samples[i].overhead_per_round, 0.0);
    // Same starting topology for every depth.
    EXPECT_DOUBLE_EQ(samples[i].traffic_blind, samples[0].traffic_blind);
  }
  // Overhead strictly grows with h (bounded digest adds per-level cost).
  EXPECT_GT(samples[2].overhead_per_round, samples[0].overhead_per_round);
}

TEST(DepthSweep, OptimizationRateLinearInR) {
  DepthSample sample;
  sample.gain_per_query = 10.0;
  sample.overhead_per_round = 5.0;
  EXPECT_DOUBLE_EQ(optimization_rate(sample, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(optimization_rate(sample, 2.0), 4.0);
  sample.overhead_per_round = 0.0;
  EXPECT_DOUBLE_EQ(optimization_rate(sample, 1.0), 0.0);
}

DynamicConfig tiny_dynamic() {
  DynamicConfig config;
  config.scenario = tiny_scenario();
  config.churn.mean_lifetime_s = 120.0;
  config.churn.lifetime_variance = 60.0;
  config.workload.queries_per_peer_per_s = 0.02;
  config.ace_period_s = 15.0;
  config.duration_s = 300.0;
  config.report_buckets = 4;
  return config;
}

TEST(DynamicRun, ProducesBucketsAndChurn) {
  DynamicConfig config = tiny_dynamic();
  const DynamicResult result = run_dynamic(config);
  EXPECT_EQ(result.buckets.size(), 4u);
  EXPECT_GT(result.overall.queries(), 0u);
  EXPECT_GT(result.joins, 0u);
  EXPECT_EQ(result.joins, result.leaves);
  EXPECT_GT(result.total_overhead, 0.0);
  std::size_t bucket_queries = 0;
  for (const auto& b : result.buckets) bucket_queries += b.queries;
  EXPECT_EQ(bucket_queries, result.overall.queries());
}

TEST(DynamicRun, AceBeatsGnutellaLikeOnQueryTraffic) {
  DynamicConfig with_ace = tiny_dynamic();
  DynamicConfig without = tiny_dynamic();
  without.enable_ace = false;
  const DynamicResult ace = run_dynamic(with_ace);
  const DynamicResult gnutella = run_dynamic(without);
  EXPECT_LT(ace.overall.mean_traffic(), gnutella.overall.mean_traffic());
  // No optimization -> no overhead.
  EXPECT_DOUBLE_EQ(gnutella.total_overhead, 0.0);
}

TEST(DynamicRun, CacheCutsTrafficFurther) {
  DynamicConfig plain = tiny_dynamic();
  DynamicConfig cached = tiny_dynamic();
  cached.enable_cache = true;
  cached.cache_capacity = 20;
  const DynamicResult a = run_dynamic(plain);
  const DynamicResult b = run_dynamic(cached);
  EXPECT_GT(b.cache_hits, 0u);
  EXPECT_LT(b.overall.mean_traffic(), a.overall.mean_traffic());
}

}  // namespace
}  // namespace ace
