// Unit coverage of the strong id-domain layer (util/strong_id.h): value
// semantics, sentinel bit pattern, within-domain arithmetic, heterogeneous
// integer comparison, hashing, stream formatting, digest feeding, and the
// typed IdVector/IdSpan containers. Cross-domain *misuse* is covered by the
// negative-compile harness in tests/compile_fail/ — everything here is the
// positive contract.
#include "util/strong_id.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "util/digest.h"

namespace ace {
namespace {

TEST(StrongId, DefaultConstructsToZero) {
  EXPECT_EQ(PeerId{}.value(), 0u);
  EXPECT_EQ(HostId{}.value(), 0u);
  EXPECT_EQ(TopologyVersion{}.value(), 0u);
}

TEST(StrongId, ExplicitConstructionRoundTrips) {
  const PeerId p{42};
  EXPECT_EQ(p.value(), 42u);
  EXPECT_EQ(p.to_underlying(), 42u);
}

TEST(StrongId, SentinelIsAllOnes) {
  // The same bit pattern the raw kInvalid* constants used, so digests of
  // sentinel-bearing state are unchanged by the typed migration.
  EXPECT_EQ(kInvalidPeer.value(), 0xffffffffu);
  EXPECT_EQ(kInvalidHost.value(), 0xffffffffu);
  EXPECT_EQ(kInvalidLocalNode.value(), 0xffffffffu);
  EXPECT_EQ(TopologyVersion::invalid().value(), 0xffffffffffffffffull);
  EXPECT_FALSE(kInvalidPeer.valid());
  EXPECT_TRUE(PeerId{0}.valid());
}

TEST(StrongId, SameDomainComparison) {
  EXPECT_EQ(PeerId{3}, PeerId{3});
  EXPECT_NE(PeerId{3}, PeerId{4});
  EXPECT_LT(PeerId{3}, PeerId{4});
  EXPECT_GE(PeerId{4}, PeerId{4});
}

TEST(StrongId, HeterogeneousIntegerComparisonIsSignSafe) {
  const PeerId p{3};
  EXPECT_EQ(p, 3);
  EXPECT_EQ(p, 3u);
  EXPECT_EQ(p, std::size_t{3});
  EXPECT_LT(p, 4);
  EXPECT_GT(p, 2);
  // A negative literal can never equal an unsigned id (std::cmp_* rules,
  // not the usual arithmetic conversions).
  EXPECT_NE(p, -1);
  EXPECT_GT(p, -1);
}

TEST(StrongId, IncrementAndOffsetStayInDomain) {
  PeerId p{5};
  EXPECT_EQ((++p).value(), 6u);
  EXPECT_EQ((p++).value(), 6u);
  EXPECT_EQ(p.value(), 7u);
  EXPECT_EQ((p + 3).value(), 10u);
  EXPECT_EQ((p - 2).value(), 5u);
  EXPECT_EQ(PeerId{9} - PeerId{4}, 5u);  // same-domain difference is raw
}

TEST(StrongId, LoopIdiomAgainstContainerSize) {
  const std::vector<int> values{10, 11, 12};
  std::size_t visited = 0;
  for (PeerId p{0}; p < values.size(); ++p) ++visited;
  EXPECT_EQ(visited, values.size());
}

TEST(StrongId, StreamsAsBareValue) {
  std::ostringstream os;
  os << PeerId{17} << " " << HostId{3};
  EXPECT_EQ(os.str(), "17 3");
}

TEST(StrongId, HashMatchesUnderlyingAndWorksAsMapKey) {
  EXPECT_EQ(std::hash<PeerId>{}(PeerId{7}), std::hash<std::uint32_t>{}(7u));
  std::unordered_map<PeerId, int> by_peer;
  by_peer[PeerId{1}] = 10;
  by_peer[PeerId{2}] = 20;
  EXPECT_EQ(by_peer.at(PeerId{2}), 20);
  std::map<PeerId, int> ordered{{PeerId{2}, 2}, {PeerId{1}, 1}};
  EXPECT_EQ(ordered.begin()->first, PeerId{1});
}

TEST(StrongId, DigestFeedsUnderlyingValue) {
  // The Fnv1a strong-id overload must produce the exact bytes the raw
  // integer feed produced — this is what keeps the golden engine digest
  // byte-identical across the typed migration.
  Fnv1a typed, raw;
  typed.update(PeerId{123});
  raw.update(std::uint64_t{123});
  EXPECT_EQ(typed.value(), raw.value());
  Fnv1a version_typed, version_raw;
  version_typed.update(TopologyVersion{987654321});
  version_raw.update(std::uint64_t{987654321});
  EXPECT_EQ(version_typed.value(), version_raw.value());
}

TEST(StrongId, SatisfiesStrongIdConcept) {
  static_assert(StrongIdType<PeerId>);
  static_assert(StrongIdType<HostId>);
  static_assert(StrongIdType<TopologyVersion>);
  static_assert(!StrongIdType<std::uint32_t>);
  static_assert(!StrongIdType<int>);
}

TEST(TypedEdge, DefaultsToInvalidEndpoints) {
  const PeerEdge e;
  EXPECT_EQ(e.u, kInvalidPeer);
  EXPECT_EQ(e.v, kInvalidPeer);
  EXPECT_EQ(e.weight, 0.0);
  const PeerEdge f{PeerId{1}, PeerId{2}, 3.0};
  EXPECT_NE(e, f);
  EXPECT_EQ(f, (PeerEdge{PeerId{1}, PeerId{2}, 3.0}));
}

TEST(IdVector, IndexesByOwnDomainOnly) {
  IdVector<PeerId, double> costs(4, 1.5);
  EXPECT_EQ(costs.size(), 4u);
  costs[PeerId{2}] = 9.0;
  EXPECT_DOUBLE_EQ(costs[PeerId{2}], 9.0);
  EXPECT_DOUBLE_EQ(costs[PeerId{0}], 1.5);
}

TEST(IdVector, GrowShrinkAndIterate) {
  IdVector<LocalNodeId, int> v;
  EXPECT_TRUE(v.empty());
  v.push_back(1);
  v.emplace_back(2);
  v.push_back(3);
  v.pop_back();
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.front(), 1);
  EXPECT_EQ(v.back(), 2);
  v.resize(5, 7);
  EXPECT_EQ(std::count(v.begin(), v.end(), 7), 3);
  v.assign(2, 0);
  EXPECT_EQ(v.size(), 2u);
  v.clear();
  EXPECT_TRUE(v.empty());
}

TEST(IdVector, EqualityAndRawStorage) {
  IdVector<PeerId, int> a(3, 1), b(3, 1);
  EXPECT_EQ(a, b);
  b[PeerId{1}] = 2;
  EXPECT_NE(a, b);
  // Kernels take the flat storage; data() is the sanctioned escape hatch.
  int* raw = a.data();
  raw[2] = 42;
  EXPECT_EQ(a[PeerId{2}], 42);
}

TEST(IdSpan, ViewsAnIdVectorWithSameDomain) {
  IdVector<PeerId, int> owned(3, 5);
  IdSpan<PeerId, int> view = owned;
  view[PeerId{1}] = 6;
  EXPECT_EQ(owned[PeerId{1}], 6);
  IdSpan<PeerId, const int> cview = owned;
  EXPECT_EQ(cview[PeerId{1}], 6);
  EXPECT_EQ(cview.size(), 3u);
}

#if defined(ACE_AUDIT_INVARIANTS) && defined(GTEST_HAS_DEATH_TEST)
TEST(IdVectorDeathTest, AuditBuildsCatchOutOfRangeIndex) {
  IdVector<PeerId, int> v(2, 0);
  EXPECT_DEATH((void)v[PeerId{2}], "");
}
#endif

}  // namespace
}  // namespace ace
