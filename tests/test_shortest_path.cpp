#include "graph/shortest_path.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/csr.h"
#include "graph/generators.h"

namespace ace {
namespace {

// Small fixture graph:
//   0 --1-- 1 --1-- 2
//   |               |
//   +------10-------+       3 isolated
Graph diamond() {
  Graph g{4};
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 10.0);
  return g;
}

TEST(Dijkstra, PicksCheaperMultiHopPath) {
  const Graph g = diamond();
  const auto r = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(r.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(r.dist[1], 1.0);
  EXPECT_DOUBLE_EQ(r.dist[2], 2.0);  // via 1, not the direct 10
  EXPECT_EQ(r.parent[2], 1u);
  EXPECT_EQ(r.dist[3], kUnreachable);
}

TEST(Dijkstra, SourceOutOfRangeThrows) {
  const Graph g = diamond();
  EXPECT_THROW(dijkstra(g, 4), std::out_of_range);
}

TEST(Dijkstra, PathExtraction) {
  const Graph g = diamond();
  const auto r = dijkstra(g, 0);
  EXPECT_EQ(extract_path(r, 2), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(extract_path(r, 0), (std::vector<NodeId>{0}));
  EXPECT_TRUE(extract_path(r, 3).empty());
  EXPECT_THROW(extract_path(r, 9), std::out_of_range);
}

TEST(Dijkstra, TargetsEarlyStopMatchesFull) {
  Rng rng{21};
  BaOptions options;
  options.nodes = 300;
  const Graph g = barabasi_albert(options, rng);
  const auto full = dijkstra(g, 0);
  const std::vector<NodeId> targets{5, 50, 299};
  const auto partial = dijkstra_to_targets(g, 0, targets);
  for (const NodeId t : targets)
    EXPECT_DOUBLE_EQ(partial.dist[t], full.dist[t]);
}

TEST(Dijkstra, DuplicateTargetsHandled) {
  const Graph g = diamond();
  const std::vector<NodeId> targets{1, 1, 2};
  const auto r = dijkstra_to_targets(g, 0, targets);
  EXPECT_DOUBLE_EQ(r.dist[1], 1.0);
  EXPECT_DOUBLE_EQ(r.dist[2], 2.0);
}

TEST(Bfs, HopCounts) {
  const Graph g = diamond();
  const auto hops = bfs_hops(g, 0);
  EXPECT_EQ(hops[0], 0u);
  EXPECT_EQ(hops[1], 1u);
  EXPECT_EQ(hops[2], 1u);  // direct edge counts one hop regardless of weight
  EXPECT_EQ(hops[3], kUnreachableHops);
}

TEST(Bfs, NodesWithinHops) {
  Graph g{5};  // path 0-1-2-3-4
  for (NodeId u = 0; u + 1 < 5; ++u) g.add_edge(u, u + 1, 1.0);
  EXPECT_EQ(nodes_within_hops(g, 0, 0), (std::vector<NodeId>{0}));
  EXPECT_EQ(nodes_within_hops(g, 0, 2), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(nodes_within_hops(g, 2, 1), (std::vector<NodeId>{2, 1, 3}));
  EXPECT_EQ(nodes_within_hops(g, 0, 10).size(), 5u);
}

TEST(Prim, KnownMst) {
  // Classic 4-node example; MST weight = 1 + 2 + 3.
  Graph g{4};
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 3.0);
  g.add_edge(0, 3, 10.0);
  g.add_edge(0, 2, 9.0);
  const MstResult mst = prim_mst(g, 0);
  EXPECT_EQ(mst.edges.size(), 3u);
  EXPECT_DOUBLE_EQ(mst.total_weight, 6.0);
}

TEST(Prim, SpansOnlyRootComponent) {
  Graph g{5};
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(3, 4, 1.0);  // separate component
  const MstResult mst = prim_mst(g, 0);
  EXPECT_EQ(mst.edges.size(), 2u);
}

TEST(Prim, TreeWeightNeverExceedsAnySpanningSubgraph) {
  Rng rng{22};
  ErdosRenyiOptions options;
  options.nodes = 60;
  options.edge_prob = 0.2;
  Graph g = erdos_renyi(options, rng);
  // Randomize weights.
  for (const Edge& e : g.edges()) g.set_weight(e.u, e.v, rng.uniform_real(1, 100));
  const MstResult mst = prim_mst(g, 0);
  // MST weight <= weight of BFS tree (any spanning tree of the component).
  const auto r = dijkstra(g, 0);
  Weight bfs_tree_weight = 0;
  std::size_t reachable = 0;
  for (NodeId v = 1; v < g.node_count(); ++v) {
    if (r.parent[v] == kInvalidNode) continue;
    bfs_tree_weight += *g.edge_weight(r.parent[v], v);
    ++reachable;
  }
  EXPECT_EQ(mst.edges.size(), reachable);
  EXPECT_LE(mst.total_weight, bfs_tree_weight + 1e-9);
}

TEST(Prim, RootOutOfRangeThrows) {
  const Graph g = diamond();
  EXPECT_THROW(prim_mst(g, 7), std::out_of_range);
}

TEST(Connectivity, Detection) {
  Graph g{3};
  EXPECT_FALSE(is_connected(g));
  g.add_edge(0, 1, 1.0);
  EXPECT_FALSE(is_connected(g));
  g.add_edge(1, 2, 1.0);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(is_connected(Graph{}));
  EXPECT_TRUE(is_connected(Graph{1}));
}

TEST(Connectivity, ComponentLabels) {
  Graph g{6};
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(3, 4, 1.0);
  const auto labels = connected_components(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[2], labels[3]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[2]);
  EXPECT_NE(labels[5], labels[0]);
  EXPECT_NE(labels[5], labels[2]);
  const auto max_label = *std::max_element(labels.begin(), labels.end());
  EXPECT_EQ(max_label, 2u);  // three components: 0..2
}

TEST(Csr, SnapshotPreservesAdjacencyOrder) {
  const Graph g = diamond();
  const CsrGraph csr{g};
  ASSERT_EQ(csr.node_count(), g.node_count());
  EXPECT_EQ(csr.arc_count(), 2 * g.edge_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto& adj = g.neighbors(u);
    const auto targets = csr.targets(u);
    const auto weights = csr.weights(u);
    ASSERT_EQ(targets.size(), adj.size());
    ASSERT_EQ(weights.size(), adj.size());
    for (std::size_t i = 0; i < adj.size(); ++i) {
      EXPECT_EQ(targets[i], adj[i].node);
      EXPECT_DOUBLE_EQ(weights[i], adj[i].weight);
    }
  }
}

// Differential check of the CSR kernel against the adjacency-list
// reference: bit-identical distances and identical reachability on random
// graphs, including via the reusable epoch-stamped solver.
TEST(Csr, KernelMatchesReferenceOnRandomGraphs) {
  for (const std::uint64_t seed : {31u, 32u, 33u}) {
    Rng rng{seed};
    BaOptions options;
    options.nodes = 257;  // odd size: exercises partial last heap node
    const Graph g = barabasi_albert(options, rng);
    const CsrGraph csr{g};
    CsrDijkstra solver{csr};
    for (const NodeId source : {NodeId{0}, NodeId{17}, NodeId{256}}) {
      const auto ref = dijkstra_reference(g, source);
      const auto fast = dijkstra(g, source);
      solver.run(source);
      for (NodeId v = 0; v < g.node_count(); ++v) {
        // Exact equality: both kernels relax with the same double sums.
        EXPECT_EQ(fast.dist[v], ref.dist[v]);
        EXPECT_EQ(solver.dist(v), ref.dist[v]);
        EXPECT_EQ(solver.parent(v) == kInvalidNode,
                  ref.parent[v] == kInvalidNode);
      }
    }
  }
}

TEST(Csr, SolverEpochResetBetweenRuns) {
  Graph g{5};  // path 0-1-2, pair 3-4 unreachable from 0
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(3, 4, 1.0);
  const CsrGraph csr{g};
  CsrDijkstra solver{csr};
  solver.run(0);
  EXPECT_DOUBLE_EQ(solver.dist(2), 2.0);
  EXPECT_EQ(solver.dist(3), kUnreachable);
  solver.run(3);  // second epoch: old run's marks must not leak
  EXPECT_DOUBLE_EQ(solver.dist(4), 1.0);
  EXPECT_EQ(solver.dist(0), kUnreachable);
  EXPECT_EQ(solver.parent(0), kInvalidNode);
}

TEST(Csr, TargetsEarlyStopMatchesFull) {
  Rng rng{34};
  BaOptions options;
  options.nodes = 300;
  const Graph g = barabasi_albert(options, rng);
  const CsrGraph csr{g};
  CsrDijkstra solver{csr};
  solver.run(9);
  const std::vector<Weight> full{solver.dist(5), solver.dist(150),
                                 solver.dist(299)};
  const std::vector<NodeId> targets{5, 150, 299};
  solver.run_to_targets(9, targets);
  EXPECT_EQ(solver.dist(5), full[0]);
  EXPECT_EQ(solver.dist(150), full[1]);
  EXPECT_EQ(solver.dist(299), full[2]);
}

TEST(Dijkstra, RandomGraphTriangleInequality) {
  Rng rng{23};
  BaOptions options;
  options.nodes = 200;
  const Graph g = barabasi_albert(options, rng);
  const auto from0 = dijkstra(g, 0);
  const auto from7 = dijkstra(g, 7);
  // d(0,v) <= d(0,7) + d(7,v) for all v.
  for (NodeId v = 0; v < g.node_count(); ++v)
    EXPECT_LE(from0.dist[v], from0.dist[7] + from7.dist[v] + 1e-9);
}

}  // namespace
}  // namespace ace
