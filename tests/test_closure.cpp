#include "ace/closure.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

namespace ace {
namespace {

// Overlay shaped like the paper's Fig. 5 example region: a ring of 5 peers
// with one chord, plus an outlying peer two hops away.
struct Fixture {
  Fixture() {
    Graph g{16};
    for (NodeId u = 0; u + 1 < 16; ++u) g.add_edge(u, u + 1, 1.0);
    physical = std::make_unique<PhysicalNetwork>(std::move(g));
    overlay = std::make_unique<OverlayNetwork>(*physical);
    for (std::uint32_t h = 0; h < 8; ++h) overlay->add_peer(HostId{h});
    // Star around 0 plus ring edges.
    overlay->connect(PeerId{0}, PeerId{1});
    overlay->connect(PeerId{0}, PeerId{2});
    overlay->connect(PeerId{1}, PeerId{2});
    overlay->connect(PeerId{2}, PeerId{3});
    overlay->connect(PeerId{3}, PeerId{4});
  }
  std::unique_ptr<PhysicalNetwork> physical;
  std::unique_ptr<OverlayNetwork> overlay;
};

std::set<PeerId> members(const LocalClosure& c) {
  return {c.nodes.begin(), c.nodes.end()};
}

TEST(Closure, DepthZeroIsJustSource) {
  Fixture f;
  const LocalClosure c = build_closure(*f.overlay, PeerId{0}, 0);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.nodes[LocalNodeId{0}], 0u);
  EXPECT_EQ(c.local.edge_count(), 0u);
}

TEST(Closure, DepthOneCoversDirectNeighbors) {
  Fixture f;
  const LocalClosure c = build_closure(*f.overlay, PeerId{0}, 1);
  EXPECT_EQ(members(c), (std::set<PeerId>{PeerId{0}, PeerId{1}, PeerId{2}}));
  // Induced edges: 0-1, 0-2, 1-2.
  EXPECT_EQ(c.local.edge_count(), 3u);
}

TEST(Closure, DepthTwoAddsNextRing) {
  Fixture f;
  const LocalClosure c = build_closure(*f.overlay, PeerId{0}, 2);
  EXPECT_EQ(members(c), (std::set<PeerId>{PeerId{0}, PeerId{1}, PeerId{2}, PeerId{3}}));
  EXPECT_EQ(c.local.edge_count(), 4u);  // + 2-3
}

TEST(Closure, DepthsRecorded) {
  Fixture f;
  const LocalClosure c = build_closure(*f.overlay, PeerId{0}, 3);
  EXPECT_EQ(c.depth[c.to_local(PeerId{0})], 0u);
  EXPECT_EQ(c.depth[c.to_local(PeerId{1})], 1u);
  EXPECT_EQ(c.depth[c.to_local(PeerId{3})], 2u);
  EXPECT_EQ(c.depth[c.to_local(PeerId{4})], 3u);
}

TEST(Closure, PathCostAccumulatesAlongBfsTree) {
  Fixture f;
  const LocalClosure c = build_closure(*f.overlay, PeerId{0}, 3);
  EXPECT_DOUBLE_EQ(c.path_cost[c.to_local(PeerId{0})], 0.0);
  // Peer 3 discovered via 2: cost(0,2) + cost(2,3) = 2 + 1.
  EXPECT_DOUBLE_EQ(c.path_cost[c.to_local(PeerId{3})],
                   f.overlay->link_cost(PeerId{0}, PeerId{2}) + f.overlay->link_cost(PeerId{2}, PeerId{3}));
}

TEST(Closure, LocalIndexRoundTrips) {
  Fixture f;
  const LocalClosure c = build_closure(*f.overlay, PeerId{0}, 2);
  for (LocalNodeId li{0}; li < c.size(); ++li)
    EXPECT_EQ(c.to_local(c.to_global(li)), li);
  EXPECT_EQ(c.to_local(PeerId{7}), kInvalidLocalNode);  // outside closure
}

TEST(Closure, InducedWeightsMatchOverlay) {
  Fixture f;
  const LocalClosure c = build_closure(*f.overlay, PeerId{0}, 2);
  const LocalNodeId l2 = c.to_local(PeerId{2});
  const LocalNodeId l3 = c.to_local(PeerId{3});
  EXPECT_DOUBLE_EQ(*c.local.edge_weight(l2.value(), l3.value()),
                   f.overlay->link_cost(PeerId{2}, PeerId{3}));
}

TEST(Closure, TableEntriesEqualsInducedDegreeSum) {
  Fixture f;
  const LocalClosure c = build_closure(*f.overlay, PeerId{0}, 1);
  EXPECT_EQ(c.table_entries(), 2u * c.local.edge_count());
}

TEST(Closure, LargeDepthSaturatesAtComponent) {
  Fixture f;
  const LocalClosure c = build_closure(*f.overlay, PeerId{0}, 50);
  EXPECT_EQ(members(c), (std::set<PeerId>{PeerId{0}, PeerId{1}, PeerId{2}, PeerId{3}, PeerId{4}}));
}

TEST(Closure, OfflineSourceThrows) {
  Fixture f;
  const PeerId off = f.overlay->add_peer(HostId{9}, /*online=*/false);
  EXPECT_THROW(build_closure(*f.overlay, off, 1), std::invalid_argument);
}

TEST(Closure, IsolatedSourceIsSingleton) {
  Fixture f;
  const PeerId lonely = f.overlay->add_peer(HostId{10});
  const LocalClosure c = build_closure(*f.overlay, lonely, 3);
  EXPECT_EQ(c.size(), 1u);
}

}  // namespace
}  // namespace ace
