#include "baselines/ltm.h"

#include <gtest/gtest.h>

#include <memory>

#include "graph/generators.h"
#include "graph/shortest_path.h"

namespace ace {
namespace {

// Physical line with unit delays.
struct Fixture {
  explicit Fixture(std::size_t hosts = 64) {
    Graph g{hosts};
    for (NodeId u = 0; u + 1 < hosts; ++u) g.add_edge(u, u + 1, 1.0);
    physical = std::make_unique<PhysicalNetwork>(std::move(g));
    overlay = std::make_unique<OverlayNetwork>(*physical);
  }
  std::unique_ptr<PhysicalNetwork> physical;
  std::unique_ptr<OverlayNetwork> overlay;
  Rng rng{31};
};

TEST(Ltm, CutsRedundantSlowLink) {
  Fixture f;
  // Triangle: s@0, r@1, v@10. Direct s-v costs 10; via r costs 1 + 9 = 10
  // (not slower) -> redundant, cut.
  const PeerId s = f.overlay->add_peer(HostId{0});
  const PeerId r = f.overlay->add_peer(HostId{1});
  const PeerId v = f.overlay->add_peer(HostId{10});
  f.overlay->connect(s, r);
  f.overlay->connect(r, v);
  f.overlay->connect(s, v);
  LtmConfig config;
  config.min_degree = 1;
  config.adds_per_round = 0;
  LtmEngine engine{*f.overlay, config};
  LtmRoundReport report;
  engine.step_peer(s, f.rng, report);
  EXPECT_EQ(report.cuts, 1u);
  EXPECT_FALSE(f.overlay->are_connected(s, v));
  EXPECT_TRUE(f.overlay->are_connected(s, r));
  EXPECT_TRUE(f.overlay->are_connected(r, v));
}

TEST(Ltm, KeepsLinksWhenTwoHopStrictlySlower) {
  Fixture f;
  // On a line topology every "between" relay ties the direct link exactly
  // (additive metric), so a sub-unit slack demands a strictly faster
  // detour — none exists, nothing is cut.
  const PeerId s = f.overlay->add_peer(HostId{0});
  const PeerId r = f.overlay->add_peer(HostId{5});
  const PeerId v = f.overlay->add_peer(HostId{3});
  f.overlay->connect(s, r);
  f.overlay->connect(r, v);
  f.overlay->connect(s, v);
  LtmConfig config;
  config.min_degree = 1;
  config.adds_per_round = 0;
  config.slack = 0.95;
  LtmEngine engine{*f.overlay, config};
  LtmRoundReport report;
  engine.step_peer(s, f.rng, report);
  EXPECT_EQ(report.cuts, 0u);
  EXPECT_TRUE(f.overlay->are_connected(s, v));
  EXPECT_TRUE(f.overlay->are_connected(s, r));
}

TEST(Ltm, MinDegreeGuardsBothEndpoints) {
  Fixture f;
  const PeerId s = f.overlay->add_peer(HostId{0});
  const PeerId r = f.overlay->add_peer(HostId{1});
  const PeerId v = f.overlay->add_peer(HostId{10});
  f.overlay->connect(s, r);
  f.overlay->connect(r, v);
  f.overlay->connect(s, v);
  LtmConfig config;
  config.min_degree = 2;  // v has degree 2: a cut would strand it
  config.adds_per_round = 0;
  LtmEngine engine{*f.overlay, config};
  LtmRoundReport report;
  engine.step_peer(s, f.rng, report);
  EXPECT_EQ(report.cuts, 0u);
}

TEST(Ltm, AddsCloserTwoHopPeer) {
  Fixture f;
  // s@0 -- far@20 -- near@2: near probes at 2 < worst link (20) -> adopt.
  const PeerId s = f.overlay->add_peer(HostId{0});
  const PeerId far = f.overlay->add_peer(HostId{20});
  const PeerId near_peer = f.overlay->add_peer(HostId{2});
  f.overlay->connect(s, far);
  f.overlay->connect(far, near_peer);
  LtmConfig config;
  config.adds_per_round = 1;
  LtmEngine engine{*f.overlay, config};
  LtmRoundReport report;
  engine.step_peer(s, f.rng, report);
  EXPECT_EQ(report.adds, 1u);
  EXPECT_TRUE(f.overlay->are_connected(s, near_peer));
}

TEST(Ltm, DetectorOverheadCharged) {
  Fixture f;
  const PeerId s = f.overlay->add_peer(HostId{0});
  const PeerId a = f.overlay->add_peer(HostId{1});
  const PeerId b = f.overlay->add_peer(HostId{2});
  f.overlay->connect(s, a);
  f.overlay->connect(a, b);
  LtmEngine engine{*f.overlay, LtmConfig{}};
  LtmRoundReport report;
  engine.step_peer(s, f.rng, report);
  // TTL-2 flood from s: s->a, then a->b.
  EXPECT_EQ(report.detectors, 2u);
  EXPECT_GT(report.detector_traffic, 0.0);
}

TEST(Ltm, RoundImprovesMismatchedOverlay) {
  Rng topo{7};
  BaOptions ba;
  ba.nodes = 256;
  PhysicalNetwork physical{barabasi_albert(ba, topo)};
  OverlayOptions oo;
  oo.peers = 64;
  oo.mean_degree = 6.0;
  const Graph logical = small_world_overlay(oo, topo);
  const auto hosts = assign_hosts_uniform(physical, 64, topo);
  OverlayNetwork overlay{physical, logical, hosts};

  const double before = overlay.logical().total_weight() /
                        static_cast<double>(overlay.logical().edge_count());
  LtmEngine engine{overlay, LtmConfig{}};
  Rng rng{9};
  for (int round = 0; round < 6; ++round) engine.step_round(rng);
  const double after = overlay.logical().total_weight() /
                       static_cast<double>(overlay.logical().edge_count());
  EXPECT_LT(after, before);
  EXPECT_TRUE(is_connected(overlay.logical()));
}

TEST(Ltm, ReportMerge) {
  LtmRoundReport a, b;
  a.detectors = 1;
  a.detector_traffic = 2.0;
  a.cuts = 3;
  b.detectors = 4;
  b.detector_traffic = 5.0;
  b.adds = 6;
  b.peers_stepped = 7;
  a.merge(b);
  EXPECT_EQ(a.detectors, 5u);
  EXPECT_DOUBLE_EQ(a.detector_traffic, 7.0);
  EXPECT_EQ(a.cuts, 3u);
  EXPECT_EQ(a.adds, 6u);
  EXPECT_EQ(a.peers_stepped, 7u);
}

}  // namespace
}  // namespace ace
