#include "overlay/overlay_network.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"
#include "graph/shortest_path.h"

namespace ace {
namespace {

// Physical line 0-1-2-3-4 with unit delays.
PhysicalNetwork line_network() {
  Graph g{5};
  for (NodeId u = 0; u + 1 < 5; ++u) g.add_edge(u, u + 1, 1.0);
  return PhysicalNetwork{std::move(g)};
}

class OverlayTest : public ::testing::Test {
 protected:
  PhysicalNetwork physical_ = line_network();
};

TEST_F(OverlayTest, AddPeerAndAttributes) {
  OverlayNetwork overlay{physical_};
  const PeerId p = overlay.add_peer(HostId{0});
  const PeerId q = overlay.add_peer(HostId{4}, /*online=*/false);
  EXPECT_EQ(overlay.peer_count(), 2u);
  EXPECT_EQ(overlay.online_count(), 1u);
  EXPECT_TRUE(overlay.is_online(p));
  EXPECT_FALSE(overlay.is_online(q));
  EXPECT_EQ(overlay.host_of(p), 0u);
  EXPECT_EQ(overlay.host_of(q), 4u);
}

TEST_F(OverlayTest, BadHostThrows) {
  OverlayNetwork overlay{physical_};
  EXPECT_THROW(overlay.add_peer(HostId{99}), std::out_of_range);
}

TEST_F(OverlayTest, ConnectUsesPhysicalDelayAsWeight) {
  OverlayNetwork overlay{physical_};
  const PeerId a = overlay.add_peer(HostId{0});
  const PeerId b = overlay.add_peer(HostId{3});
  ASSERT_TRUE(overlay.connect(a, b));
  EXPECT_DOUBLE_EQ(overlay.link_cost(a, b), 3.0);
  EXPECT_DOUBLE_EQ(overlay.peer_delay(a, b), 3.0);
}

TEST_F(OverlayTest, ConnectRules) {
  OverlayNetwork overlay{physical_};
  const PeerId a = overlay.add_peer(HostId{0});
  const PeerId b = overlay.add_peer(HostId{1});
  const PeerId off = overlay.add_peer(HostId{2}, /*online=*/false);
  EXPECT_FALSE(overlay.connect(a, a));
  EXPECT_FALSE(overlay.connect(a, off));
  EXPECT_TRUE(overlay.connect(a, b));
  EXPECT_FALSE(overlay.connect(a, b));  // duplicate
  EXPECT_TRUE(overlay.are_connected(b, a));
}

TEST_F(OverlayTest, CoLocatedPeersGetPositiveEpsilonWeight) {
  OverlayNetwork overlay{physical_};
  const PeerId a = overlay.add_peer(HostId{2});
  const PeerId b = overlay.add_peer(HostId{2});  // same host
  ASSERT_TRUE(overlay.connect(a, b));
  EXPECT_GT(overlay.link_cost(a, b), 0.0);
  EXPECT_LT(overlay.link_cost(a, b), 1e-3);
}

TEST_F(OverlayTest, DisconnectAndLinkCostThrow) {
  OverlayNetwork overlay{physical_};
  const PeerId a = overlay.add_peer(HostId{0});
  const PeerId b = overlay.add_peer(HostId{1});
  overlay.connect(a, b);
  EXPECT_TRUE(overlay.disconnect(a, b));
  EXPECT_FALSE(overlay.disconnect(a, b));
  EXPECT_THROW(overlay.link_cost(a, b), std::invalid_argument);
}

TEST_F(OverlayTest, FromGraphInstallsEverything) {
  Graph logical{3};
  logical.add_edge(0, 1, 99.0);  // placeholder weight, must be replaced
  logical.add_edge(1, 2, 99.0);
  const std::vector<HostId> hosts{HostId{0}, HostId{2}, HostId{4}};
  OverlayNetwork overlay{physical_, logical, hosts};
  EXPECT_EQ(overlay.peer_count(), 3u);
  EXPECT_EQ(overlay.online_count(), 3u);
  EXPECT_DOUBLE_EQ(overlay.link_cost(PeerId{0}, PeerId{1}), 2.0);  // host 0 -> host 2
  EXPECT_DOUBLE_EQ(overlay.link_cost(PeerId{1}, PeerId{2}), 2.0);  // host 2 -> host 4
  EXPECT_FALSE(overlay.are_connected(PeerId{0}, PeerId{2}));
}

TEST_F(OverlayTest, FromGraphSizeMismatchThrows) {
  Graph logical{3};
  const std::vector<HostId> hosts{HostId{0}, HostId{1}};
  EXPECT_THROW(OverlayNetwork(physical_, logical, hosts),
               std::invalid_argument);
}

TEST_F(OverlayTest, OnlinePeersListedAscending) {
  OverlayNetwork overlay{physical_};
  overlay.add_peer(HostId{0});
  overlay.add_peer(HostId{1}, false);
  overlay.add_peer(HostId{2});
  const auto online = overlay.online_peers();
  EXPECT_EQ(online, (std::vector<PeerId>{PeerId{0}, PeerId{2}}));
}

TEST_F(OverlayTest, RandomOnlinePeerRespectsExclusion) {
  OverlayNetwork overlay{physical_};
  overlay.add_peer(HostId{0});
  overlay.add_peer(HostId{1});
  Rng rng{1};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(overlay.random_online_peer(rng, PeerId{0}), 1u);
  OverlayNetwork lonely{physical_};
  lonely.add_peer(HostId{0});
  EXPECT_THROW(lonely.random_online_peer(rng, PeerId{0}), std::logic_error);
}

TEST_F(OverlayTest, JoinConnectsToTargetDegree) {
  OverlayNetwork overlay{physical_};
  for (std::uint32_t h = 0; h < 5; ++h) overlay.add_peer(HostId{h});
  const PeerId fresh = overlay.add_peer(HostId{0}, /*online=*/false);
  Rng rng{2};
  const std::size_t links = overlay.join(fresh, 3, rng);
  EXPECT_EQ(links, 3u);
  EXPECT_TRUE(overlay.is_online(fresh));
  EXPECT_EQ(overlay.degree(fresh), 3u);
}

TEST_F(OverlayTest, JoinAloneCreatesNoLinks) {
  OverlayNetwork overlay{physical_};
  const PeerId only = overlay.add_peer(HostId{0}, false);
  Rng rng{3};
  EXPECT_EQ(overlay.join(only, 4, rng), 0u);
  EXPECT_TRUE(overlay.is_online(only));
}

TEST_F(OverlayTest, LeaveIsolatesAndRepairs) {
  OverlayNetwork overlay{physical_};
  // Star around peer 0 with 4 leaves.
  const PeerId hub = overlay.add_peer(HostId{0});
  std::vector<PeerId> leaves;
  for (std::uint32_t h = 1; h < 5; ++h)
    leaves.push_back(overlay.add_peer(HostId{h}));
  for (const PeerId leaf : leaves) overlay.connect(hub, leaf);
  Rng rng{4};
  const auto dropped = overlay.leave(hub, /*repair_min_degree=*/1, rng);
  EXPECT_EQ(dropped.size(), 4u);
  EXPECT_FALSE(overlay.is_online(hub));
  EXPECT_EQ(overlay.degree(hub), 0u);
  // Every leaf reconnected to at least one other online peer.
  for (const PeerId leaf : leaves) EXPECT_GE(overlay.degree(leaf), 1u);
  EXPECT_EQ(overlay.online_count(), 4u);
}

TEST_F(OverlayTest, MeanOnlineDegreeIgnoresOffline) {
  OverlayNetwork overlay{physical_};
  const PeerId a = overlay.add_peer(HostId{0});
  const PeerId b = overlay.add_peer(HostId{1});
  overlay.add_peer(HostId{2}, false);
  overlay.connect(a, b);
  EXPECT_DOUBLE_EQ(overlay.mean_online_degree(), 1.0);
}

TEST(AssignHosts, DistinctAndBounded) {
  Rng topo{5}, rng{6};
  BaOptions options;
  options.nodes = 100;
  PhysicalNetwork net{barabasi_albert(options, topo)};
  const auto hosts = assign_hosts_uniform(net, 40, rng);
  EXPECT_EQ(hosts.size(), 40u);
  auto sorted = hosts;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  EXPECT_LT(sorted.back(), 100u);
  EXPECT_THROW(assign_hosts_uniform(net, 101, rng), std::invalid_argument);
}

}  // namespace
}  // namespace ace
