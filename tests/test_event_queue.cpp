#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace ace {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoForEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, NowTracksLastPop) {
  EventQueue q;
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  q.schedule(2.5, [] {});
  q.run_next();
  EXPECT_DOUBLE_EQ(q.now(), 2.5);
}

TEST(EventQueue, PastSchedulingThrows) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.run_next();
  EXPECT_THROW(q.schedule(4.0, [] {}), std::invalid_argument);
  EXPECT_NO_THROW(q.schedule(5.0, [] {}));  // same time allowed
}

TEST(EventQueue, EmptyCallbackThrows) {
  EventQueue q;
  EXPECT_THROW(q.schedule(1.0, EventQueue::Callback{}), std::invalid_argument);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.cancel(id));  // double cancel
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelMiddleEventSkipped) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  const EventId id = q.schedule(2.0, [&] { order.push_back(2); });
  q.schedule(3.0, [&] { order.push_back(3); });
  q.cancel(id);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, SizeCountsLiveEventsOnly) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(5.0, [] {});
  q.cancel(a);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(EventQueue, EmptyPopThrows) {
  EventQueue q;
  EXPECT_THROW(q.run_next(), std::logic_error);
  EXPECT_THROW(q.next_time(), std::logic_error);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] {
    ++fired;
    q.schedule(2.0, [&] { ++fired; });
  });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, ManyEventsStress) {
  EventQueue q;
  std::size_t count = 0;
  double last = -1;
  for (int i = 0; i < 10000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    q.schedule(t, [&, t] {
      EXPECT_GE(t, last);
      last = t;
      ++count;
    });
  }
  while (!q.empty()) q.run_next();
  EXPECT_EQ(count, 10000u);
}

}  // namespace
}  // namespace ace
