#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace ace {
namespace {

TEST(Simulator, AfterSchedulesRelative) {
  Simulator sim;
  std::vector<double> times;
  sim.after(1.0, [&] {
    times.push_back(sim.now());
    sim.after(2.0, [&] { times.push_back(sim.now()); });
  });
  sim.run_all();
  EXPECT_EQ(times, (std::vector<double>{1.0, 3.0}));
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator sim;
  EXPECT_THROW(sim.after(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(5.0, [&] { ++fired; });
  sim.at(10.0, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(5.0), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_EQ(sim.run_until(20.0), 1u);
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilPastDeadlineThrows) {
  Simulator sim;
  sim.at(5.0, [] {});
  sim.run_until(5.0);
  EXPECT_THROW(sim.run_until(4.0), std::invalid_argument);
}

TEST(Simulator, PeriodicFiresAtMultiples) {
  Simulator sim;
  std::vector<double> times;
  sim.every(2.0, [&](SimTime t) { times.push_back(t); });
  sim.run_until(9.0);
  EXPECT_EQ(times, (std::vector<double>{2.0, 4.0, 6.0, 8.0}));
}

TEST(Simulator, PeriodicWithExplicitStart) {
  Simulator sim;
  std::vector<double> times;
  sim.every(3.0, [&](SimTime t) { times.push_back(t); }, 1.0);
  sim.run_until(8.0);
  EXPECT_EQ(times, (std::vector<double>{1.0, 4.0, 7.0}));
}

TEST(Simulator, StopPeriodicHalts) {
  Simulator sim;
  int fired = 0;
  const std::size_t handle = sim.every(1.0, [&](SimTime) { ++fired; });
  sim.run_until(3.5);
  EXPECT_EQ(fired, 3);
  sim.stop_periodic(handle);
  sim.run_until(10.0);
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, StopPeriodicFromInsideCallback) {
  Simulator sim;
  int fired = 0;
  std::size_t handle = 0;
  handle = sim.every(1.0, [&](SimTime) {
    if (++fired == 2) sim.stop_periodic(handle);
  });
  sim.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StopPeriodicBadHandleThrows) {
  Simulator sim;
  EXPECT_THROW(sim.stop_periodic(3), std::out_of_range);
}

TEST(Simulator, InvalidPeriodThrows) {
  Simulator sim;
  EXPECT_THROW(sim.every(0.0, [](SimTime) {}), std::invalid_argument);
  EXPECT_THROW(sim.every(-1.0, [](SimTime) {}), std::invalid_argument);
}

TEST(Simulator, PeriodicKeepsSingleEventPending) {
  Simulator sim;
  sim.every(1.0, [](SimTime) {});
  sim.run_until(100.0);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, CancelOneShotEvent) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.after(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run_until(5.0);
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelAlreadyFiredEventReturnsFalse) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.after(1.0, [&] { ran = true; });
  sim.run_until(2.0);
  EXPECT_TRUE(ran);
  // The event already executed; cancelling its id is a harmless no-op.
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelTwiceReturnsFalse) {
  Simulator sim;
  const EventId id = sim.after(1.0, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, EveryWithStartInThePastThrows) {
  Simulator sim;
  sim.at(5.0, [] {});
  sim.run_until(5.0);
  ASSERT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_THROW(sim.every(1.0, [](SimTime) {}, 2.0), std::invalid_argument);
}

TEST(Simulator, StopPeriodicInsideCallbackLeavesQueueEmpty) {
  Simulator sim;
  std::size_t handle = 0;
  handle = sim.every(1.0, [&](SimTime) { sim.stop_periodic(handle); });
  sim.run_until(10.0);
  // Stopping from inside the firing callback must not leave the periodic's
  // next event armed.
  EXPECT_EQ(sim.pending_events(), 0u);
  // And stopping an already-stopped periodic stays a no-op.
  sim.stop_periodic(handle);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, TwoPeriodicsInterleave) {
  Simulator sim;
  std::vector<int> order;
  sim.every(2.0, [&](SimTime) { order.push_back(2); });
  sim.every(3.0, [&](SimTime) { order.push_back(3); });
  sim.run_until(6.0);
  // Firings at 2,3,4,6,6 — at the tied time 6 the period-3 process fires
  // first because its event was scheduled earlier (at t=3 vs t=4).
  EXPECT_EQ(order, (std::vector<int>{2, 3, 2, 3, 2}));
}

TEST(Simulator, RunAllHonorsMaxEvents) {
  Simulator sim;
  // Self-perpetuating event chain.
  std::function<void()> chain = [&] { sim.after(1.0, chain); };
  sim.after(1.0, chain);
  EXPECT_EQ(sim.run_all(50), 50u);
}

}  // namespace
}  // namespace ace
