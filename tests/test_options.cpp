#include "util/options.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace ace {
namespace {

Options parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Options{static_cast<int>(argv.size()), argv.data()};
}

TEST(Options, ParsesKeyValue) {
  const Options o = parse({"--peers=512", "--mean-degree=7.5"});
  EXPECT_EQ(o.get_int("peers", 0), 512);
  EXPECT_DOUBLE_EQ(o.get_double("mean-degree", 0), 7.5);
}

TEST(Options, DefaultsUsedWhenMissing) {
  const Options o = parse({});
  EXPECT_EQ(o.get_int("peers", 1024), 1024);
  EXPECT_EQ(o.get_string("mode", "ace"), "ace");
  EXPECT_TRUE(o.get_bool("thing", true));
}

TEST(Options, BareFlagIsTrue) {
  const Options o = parse({"--verbose"});
  EXPECT_TRUE(o.get_bool("verbose", false));
}

TEST(Options, BooleanSpellings) {
  Options o;
  for (const char* v : {"1", "true", "yes", "on", "TRUE", "Yes"}) {
    o.set("k", v);
    EXPECT_TRUE(o.get_bool("k", false)) << v;
  }
  for (const char* v : {"0", "false", "no", "off", "FALSE"}) {
    o.set("k", v);
    EXPECT_FALSE(o.get_bool("k", true)) << v;
  }
  o.set("k", "maybe");
  EXPECT_THROW(o.get_bool("k", false), std::invalid_argument);
}

TEST(Options, MalformedNumbersThrow) {
  Options o;
  o.set("n", "twelve");
  EXPECT_THROW(o.get_int("n", 0), std::invalid_argument);
  o.set("x", "fast");
  EXPECT_THROW(o.get_double("x", 0), std::invalid_argument);
}

TEST(Options, HelpDetected) {
  EXPECT_TRUE(parse({"--help"}).help_requested());
  EXPECT_TRUE(parse({"-h"}).help_requested());
  EXPECT_FALSE(parse({}).help_requested());
}

TEST(Options, PositionalArgumentRejected) {
  EXPECT_THROW(parse({"peers=3"}), std::invalid_argument);
}

TEST(Options, EnvironmentFallback) {
  ASSERT_EQ(setenv("ACE_TEST_OPTION_FOO", "99", 1), 0);
  const Options o = parse({});
  EXPECT_EQ(o.get_int("test-option-foo", 0), 99);
  // CLI beats environment.
  const Options o2 = parse({"--test-option-foo=7"});
  EXPECT_EQ(o2.get_int("test-option-foo", 0), 7);
  unsetenv("ACE_TEST_OPTION_FOO");
}

TEST(Options, EnvNameMapping) {
  EXPECT_EQ(env_name_for("phys-nodes"), "ACE_PHYS_NODES");
  EXPECT_EQ(env_name_for("a.b"), "ACE_A_B");
  EXPECT_EQ(env_name_for("simple"), "ACE_SIMPLE");
}

}  // namespace
}  // namespace ace
