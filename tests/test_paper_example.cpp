// Reproduces the paper's worked examples:
//  * Figure 2 — the MSU/Tsinghua mismatch: an inefficient overlay makes a
//    query cross the expensive inter-AS link three times; the matching
//    overlay crosses it once. ACE must transform the former toward the
//    latter.
//  * Figures 3/5/6 + Tables 1/2 — per-peer overlay trees built in 1- and
//    2-neighbor closures cut the total query cost and the number of
//    twice-traversed paths relative to blind flooding, while retaining the
//    search scope. (The OCR of the paper loses the concrete example
//    numbers, so the assertions here check the exact relationships the
//    text states rather than unreadable constants.)
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "ace/engine.h"
#include "ace/tree_builder.h"
#include "search/flooding.h"

namespace ace {
namespace {

class NobodyOracle final : public ContentOracle {
 public:
  AnswerKind answers(PeerId, ObjectId) const override {
    return AnswerKind::kNo;
  }
};

// Physical topology of Fig. 2(c): two campus clusters bridged by one long
// link. Hosts 0,1 at MSU (delay 1 between them); hosts 2,3 at Tsinghua
// (delay 1); bridge 1-2 with delay 20.
PhysicalNetwork fig2_physical() {
  Graph g{4};
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(1, 2, 20.0);
  return PhysicalNetwork{std::move(g)};
}

TEST(PaperFig2, MismatchedOverlayCostsMultipleBridgeCrossings) {
  PhysicalNetwork physical = fig2_physical();
  // Mismatched overlay of Fig 2(a): A(0) - C(2) - B(1) - D(3): every logical
  // hop crosses the bridge.
  OverlayNetwork bad{physical};
  for (std::uint32_t h = 0; h < 4; ++h) bad.add_peer(HostId{h});
  bad.connect(PeerId{0}, PeerId{2});
  bad.connect(PeerId{2}, PeerId{1});
  bad.connect(PeerId{1}, PeerId{3});

  // Matching overlay of Fig 2(b): A-B, B-C, C-D.
  OverlayNetwork good{physical};
  for (std::uint32_t h = 0; h < 4; ++h) good.add_peer(HostId{h});
  good.connect(PeerId{0}, PeerId{1});
  good.connect(PeerId{1}, PeerId{2});
  good.connect(PeerId{2}, PeerId{3});

  const NobodyOracle oracle;
  const QueryResult bad_result =
      run_query(bad, PeerId{0}, 0, oracle, ForwardingMode::kBlindFlooding, nullptr);
  const QueryResult good_result =
      run_query(good, PeerId{0}, 0, oracle, ForwardingMode::kBlindFlooding, nullptr);
  // Same scope, radically different cost.
  EXPECT_EQ(bad_result.scope, 3u);
  EXPECT_EQ(good_result.scope, 3u);
  // Mismatched: links cost 21 (0-2), 20 (2-1), 21 (1-3); the chain carries
  // the query across each link once, crossing the 20-unit bridge every hop.
  EXPECT_DOUBLE_EQ(bad_result.traffic_cost, 62.0);
  // Matched: 1 + 20 + 1 = 22.
  EXPECT_DOUBLE_EQ(good_result.traffic_cost, 22.0);
  EXPECT_GT(bad_result.traffic_cost, 2.5 * good_result.traffic_cost);
}

TEST(PaperFig2, AceRepairsTheMismatchedOverlay) {
  PhysicalNetwork physical = fig2_physical();
  OverlayNetwork overlay{physical};
  for (std::uint32_t h = 0; h < 4; ++h) overlay.add_peer(HostId{h});
  // Mismatched but redundant overlay (phase 3 works on non-tree links).
  overlay.connect(PeerId{0}, PeerId{2});
  overlay.connect(PeerId{0}, PeerId{3});
  overlay.connect(PeerId{1}, PeerId{3});
  overlay.connect(PeerId{2}, PeerId{3});

  Rng rng{7};
  AceConfig config;
  config.optimizer.policy = ReplacementPolicy::kClosest;
  AceEngine engine{overlay, config};
  const NobodyOracle oracle;
  const double before =
      run_query(overlay, PeerId{0}, 0, oracle, ForwardingMode::kBlindFlooding,
                nullptr)
          .traffic_cost;
  for (int round = 0; round < 6; ++round) engine.step_round(rng);
  const double after =
      run_query(overlay, PeerId{0}, 0, oracle, ForwardingMode::kTreeRouting,
                &engine.forwarding())
          .traffic_cost;
  // Phase 3 rewires the long 0-3 link to the cheap 0-1 link, roughly
  // halving the cost; one residual redundant bridge link remains invisible
  // to 1-closures (no triangle spans it), so the floor is ~2 bridge
  // crossings rather than the ideal 1.
  EXPECT_LT(after, before * 0.75);
  EXPECT_LE(after, 46.0);
}

// The Fig. 5 five-peer example region: a connected overlay with redundant
// links, every peer building its own tree in an h-neighbor closure.
struct ExampleFixture {
  ExampleFixture() {
    // Hosts on a line; delays are host distance.
    Graph g{24};
    for (NodeId u = 0; u + 1 < 24; ++u) g.add_edge(u, u + 1, 1.0);
    physical = std::make_unique<PhysicalNetwork>(std::move(g));
    overlay = std::make_unique<OverlayNetwork>(*physical);
    // Five peers F, C, D, E, B with a ring + chords (mirrors Fig 5's shape).
    f = overlay->add_peer(HostId{0});
    c = overlay->add_peer(HostId{5});
    d = overlay->add_peer(HostId{9});
    e = overlay->add_peer(HostId{14});
    b = overlay->add_peer(HostId{20});
    overlay->connect(f, c);
    overlay->connect(c, d);
    overlay->connect(d, e);
    overlay->connect(e, b);
    overlay->connect(f, b);  // closing the ring: expensive chord
    overlay->connect(c, e);  // inner chord
    overlay->connect(f, d);  // inner chord
  }
  std::vector<std::vector<PeerId>> trees_at_depth(std::uint32_t h) const {
    std::vector<std::vector<PeerId>> flooding(overlay->peer_count());
    for (const PeerId p : overlay->online_peers()) {
      const LocalTree tree = build_local_tree(build_closure(*overlay, p, h));
      flooding[p.value()] = tree.flooding;
    }
    return flooding;
  }
  static double total_cost(const std::vector<TreeWalkStep>& steps) {
    double cost = 0;
    for (const auto& s : steps) cost += s.cost;
    return cost;
  }
  static std::size_t duplicates(const std::vector<TreeWalkStep>& steps) {
    std::size_t n = 0;
    for (const auto& s : steps)
      if (s.duplicate) ++n;
    return n;
  }
  std::size_t reached(const std::vector<TreeWalkStep>& steps) const {
    std::set<PeerId> peers;
    for (const auto& s : steps)
      peers.insert(s.to);
    return peers.size();
  }
  std::unique_ptr<PhysicalNetwork> physical;
  std::unique_ptr<OverlayNetwork> overlay;
  PeerId f, c, d, e, b;
};

TEST(PaperTables, BlindFloodingTraversesRedundantPaths) {
  ExampleFixture fx;
  // Blind flooding = per-peer "trees" that include every neighbor.
  std::vector<std::vector<PeerId>> all(fx.overlay->peer_count());
  for (const PeerId p : fx.overlay->online_peers())
    for (const auto& n : fx.overlay->neighbors(p))
      all[p.value()].push_back(peer_of(n));
  const auto steps = walk_query_over_trees(*fx.overlay, all, fx.f);
  EXPECT_EQ(fx.reached(steps), 4u);
  // Every one of the 7 undirected links is crossed in both directions
  // except the 4 first-arrival... at minimum there are duplicates.
  EXPECT_GT(ExampleFixture::duplicates(steps), 0u);
}

TEST(PaperTables, OneClosureTreesCutCostRetainScope) {
  ExampleFixture fx;
  std::vector<std::vector<PeerId>> all(fx.overlay->peer_count());
  for (const PeerId p : fx.overlay->online_peers())
    for (const auto& n : fx.overlay->neighbors(p))
      all[p.value()].push_back(peer_of(n));
  const auto blind = walk_query_over_trees(*fx.overlay, all, fx.f);
  const auto h1 = walk_query_over_trees(*fx.overlay, fx.trees_at_depth(1), fx.f);
  // Scope retained.
  EXPECT_EQ(fx.reached(h1), fx.reached(blind));
  // Cost and duplicate count reduced (Table 1 vs blind flooding).
  EXPECT_LT(ExampleFixture::total_cost(h1), ExampleFixture::total_cost(blind));
  EXPECT_LE(ExampleFixture::duplicates(h1), ExampleFixture::duplicates(blind));
}

TEST(PaperTables, TwoClosureTreesAtLeastAsGoodAsOneClosure) {
  ExampleFixture fx;
  const auto h1 = walk_query_over_trees(*fx.overlay, fx.trees_at_depth(1), fx.f);
  const auto h2 = walk_query_over_trees(*fx.overlay, fx.trees_at_depth(2), fx.f);
  EXPECT_EQ(fx.reached(h2), fx.reached(h1));
  // "The number of unnecessary messages and the total traffic is decreased
  // as the value of h is increased."
  EXPECT_LE(ExampleFixture::total_cost(h2), ExampleFixture::total_cost(h1));
  EXPECT_LE(ExampleFixture::duplicates(h2), ExampleFixture::duplicates(h1));
}

TEST(PaperTables, EveryPeerAsSourceKeepsFullScope) {
  ExampleFixture fx;
  const auto trees = fx.trees_at_depth(1);
  for (const PeerId source : fx.overlay->online_peers()) {
    const auto steps = walk_query_over_trees(*fx.overlay, trees, source);
    EXPECT_EQ(fx.reached(steps), 4u) << "source " << source;
  }
}

}  // namespace
}  // namespace ace
