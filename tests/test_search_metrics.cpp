#include "search/metrics.h"

#include <gtest/gtest.h>

namespace ace {
namespace {

QueryResult make_result(double traffic, std::size_t scope, bool found,
                        double response) {
  QueryResult r;
  r.traffic_cost = traffic;
  r.scope = scope;
  r.found = found;
  r.response_time = response;
  r.messages = scope + 1;
  r.duplicates = 1;
  return r;
}

TEST(QueryStats, EmptyDefaults) {
  QueryStats stats;
  EXPECT_EQ(stats.queries(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean_traffic(), 0.0);
  EXPECT_DOUBLE_EQ(stats.success_rate(), 0.0);
  EXPECT_DOUBLE_EQ(stats.traffic_per_scope(), 0.0);
}

TEST(QueryStats, MeansAccumulate) {
  QueryStats stats;
  stats.add(make_result(10, 4, true, 2.0));
  stats.add(make_result(20, 6, true, 4.0));
  EXPECT_EQ(stats.queries(), 2u);
  EXPECT_DOUBLE_EQ(stats.mean_traffic(), 15.0);
  EXPECT_DOUBLE_EQ(stats.mean_scope(), 5.0);
  EXPECT_DOUBLE_EQ(stats.mean_response_time(), 3.0);
  EXPECT_DOUBLE_EQ(stats.mean_messages(), 6.0);
  EXPECT_DOUBLE_EQ(stats.mean_duplicates(), 1.0);
  EXPECT_DOUBLE_EQ(stats.traffic_per_scope(), 3.0);
}

TEST(QueryStats, ResponseTimeOnlyCountsFoundQueries) {
  QueryStats stats;
  stats.add(make_result(10, 4, true, 2.0));
  stats.add(make_result(10, 4, false, 999.0));  // not found: ignored
  EXPECT_DOUBLE_EQ(stats.mean_response_time(), 2.0);
  EXPECT_DOUBLE_EQ(stats.success_rate(), 0.5);
}

TEST(QueryStats, MergeMatchesSingleStream) {
  QueryStats a, b, all;
  for (int i = 1; i <= 10; ++i) {
    const auto r = make_result(i, i, i % 2 == 0, i * 0.5);
    (i <= 5 ? a : b).add(r);
    all.add(r);
  }
  a.merge(b);
  EXPECT_EQ(a.queries(), all.queries());
  EXPECT_DOUBLE_EQ(a.mean_traffic(), all.mean_traffic());
  EXPECT_DOUBLE_EQ(a.mean_response_time(), all.mean_response_time());
  EXPECT_DOUBLE_EQ(a.success_rate(), all.success_rate());
}

TEST(QueryStats, UnderlyingRunningStatsExposed) {
  QueryStats stats;
  stats.add(make_result(10, 4, true, 2.0));
  stats.add(make_result(30, 4, true, 2.0));
  EXPECT_DOUBLE_EQ(stats.traffic().min(), 10.0);
  EXPECT_DOUBLE_EQ(stats.traffic().max(), 30.0);
  EXPECT_EQ(stats.response().count(), 2u);
  EXPECT_EQ(stats.scope().count(), 2u);
}

}  // namespace
}  // namespace ace
