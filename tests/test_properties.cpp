// Property-based suites: invariants checked across parameter sweeps
// (seeds, overlay densities, closure depths) with parameterized gtest.
#include <gtest/gtest.h>

#include <set>

#include "ace/p2p_lab.h"

namespace ace {
namespace {

class NobodyOracle final : public ContentOracle {
 public:
  AnswerKind answers(PeerId, ObjectId) const override {
    return AnswerKind::kNo;
  }
};

// ---------------------------------------------------------------------
// Query execution invariants over random overlays.
// ---------------------------------------------------------------------

struct QueryCase {
  std::uint64_t seed;
  double mean_degree;
};

class QueryProperty : public ::testing::TestWithParam<QueryCase> {
 protected:
  void SetUp() override {
    const QueryCase param = GetParam();
    Rng topo{param.seed};
    BaOptions ba;
    ba.nodes = 256;
    physical_ = std::make_unique<PhysicalNetwork>(barabasi_albert(ba, topo));
    OverlayOptions oo;
    oo.peers = 60;
    oo.mean_degree = param.mean_degree;
    const Graph logical = random_overlay(oo, topo);
    const auto hosts = assign_hosts_uniform(*physical_, oo.peers, topo);
    overlay_ = std::make_unique<OverlayNetwork>(*physical_, logical, hosts);
  }
  std::unique_ptr<PhysicalNetwork> physical_;
  std::unique_ptr<OverlayNetwork> overlay_;
  NobodyOracle oracle_;
};

TEST_P(QueryProperty, MessagesSplitIntoScopePlusDuplicates) {
  const QueryResult r = run_query(*overlay_, PeerId{0}, 0, oracle_,
                                  ForwardingMode::kBlindFlooding, nullptr);
  // Every transmission either discovers a new peer or is a duplicate.
  EXPECT_EQ(r.messages, r.scope + r.duplicates);
}

TEST_P(QueryProperty, FloodingReachesWholeConnectedOverlay) {
  const QueryResult r = run_query(*overlay_, PeerId{0}, 0, oracle_,
                                  ForwardingMode::kBlindFlooding, nullptr);
  EXPECT_EQ(r.scope, overlay_->online_count() - 1);
}

TEST_P(QueryProperty, ScopeMonotoneInTtl) {
  std::size_t previous = 0;
  for (const std::uint8_t ttl : {std::uint8_t{1}, std::uint8_t{2},
                                 std::uint8_t{3}, std::uint8_t{5},
                                 std::uint8_t{8}}) {
    QueryOptions options;
    options.ttl = ttl;
    const QueryResult r =
        run_query(*overlay_, PeerId{0}, 0, oracle_, ForwardingMode::kBlindFlooding,
                  nullptr, options);
    EXPECT_GE(r.scope, previous) << "ttl " << int(ttl);
    previous = r.scope;
  }
}

TEST_P(QueryProperty, TreeRoutingNeverCostsMoreThanFlooding) {
  // Build per-peer trees, then compare full-coverage costs.
  ForwardingTable table;
  for (const PeerId p : overlay_->online_peers()) {
    const LocalTree tree = build_local_tree(build_closure(*overlay_, p, 1));
    table.set_flooding(p, tree.flooding);
  }
  const QueryResult blind = run_query(
      *overlay_, PeerId{0}, 0, oracle_, ForwardingMode::kBlindFlooding, nullptr);
  const QueryResult tree = run_query(*overlay_, PeerId{0}, 0, oracle_,
                                     ForwardingMode::kTreeRouting, &table);
  EXPECT_LE(tree.traffic_cost, blind.traffic_cost);
  EXPECT_GE(tree.scope, blind.scope * 95 / 100);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QueryProperty,
    ::testing::Values(QueryCase{1, 4.0}, QueryCase{2, 4.0}, QueryCase{3, 6.0},
                      QueryCase{4, 6.0}, QueryCase{5, 8.0}, QueryCase{6, 8.0},
                      QueryCase{7, 10.0}, QueryCase{8, 10.0}));

// ---------------------------------------------------------------------
// Tree-builder invariants across depths and seeds.
// ---------------------------------------------------------------------

struct TreeCase {
  std::uint64_t seed;
  std::uint32_t depth;
};

class TreeProperty : public ::testing::TestWithParam<TreeCase> {
 protected:
  void SetUp() override {
    Rng topo{GetParam().seed};
    BaOptions ba;
    ba.nodes = 200;
    physical_ = std::make_unique<PhysicalNetwork>(barabasi_albert(ba, topo));
    OverlayOptions oo;
    oo.peers = 50;
    oo.mean_degree = 6.0;
    const Graph logical = random_overlay(oo, topo);
    const auto hosts = assign_hosts_uniform(*physical_, oo.peers, topo);
    overlay_ = std::make_unique<OverlayNetwork>(*physical_, logical, hosts);
  }
  std::unique_ptr<PhysicalNetwork> physical_;
  std::unique_ptr<OverlayNetwork> overlay_;
};

TEST_P(TreeProperty, FloodingSetsPartitionNeighbors) {
  for (const PeerId p : overlay_->online_peers()) {
    const LocalTree tree =
        build_local_tree(build_closure(*overlay_, p, GetParam().depth));
    std::set<PeerId> neighbors;
    for (const auto& n : overlay_->neighbors(p)) neighbors.insert(peer_of(n));
    std::set<PeerId> classified;
    for (const PeerId q : tree.flooding) {
      EXPECT_TRUE(neighbors.contains(q));
      EXPECT_TRUE(classified.insert(q).second) << "duplicate classification";
    }
    for (const PeerId q : tree.non_flooding) {
      EXPECT_TRUE(neighbors.contains(q));
      EXPECT_TRUE(classified.insert(q).second) << "peer in both sets";
    }
    EXPECT_EQ(classified.size(), neighbors.size());
  }
}

TEST_P(TreeProperty, TreeEdgesExistInOverlay) {
  for (const PeerId p : overlay_->online_peers()) {
    const LocalTree tree =
        build_local_tree(build_closure(*overlay_, p, GetParam().depth));
    for (const PeerEdge& e : tree.edges) {
      EXPECT_TRUE(overlay_->are_connected(e.u, e.v));
      EXPECT_DOUBLE_EQ(e.weight, overlay_->link_cost(e.u, e.v));
    }
  }
}

TEST_P(TreeProperty, TreeSpansClosure) {
  for (const PeerId p : overlay_->online_peers()) {
    const LocalClosure closure =
        build_closure(*overlay_, p, GetParam().depth);
    const LocalTree tree = build_local_tree(closure);
    if (is_connected(closure.local)) {
      EXPECT_EQ(tree.edges.size(), closure.size() - 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TreeProperty,
    ::testing::Values(TreeCase{1, 1}, TreeCase{2, 1}, TreeCase{1, 2},
                      TreeCase{2, 2}, TreeCase{1, 3}, TreeCase{3, 3}));

TEST_P(TreeProperty, ClosuresAreMonotoneInDepth) {
  for (const PeerId p : overlay_->online_peers()) {
    const LocalClosure shallow =
        build_closure(*overlay_, p, GetParam().depth);
    const LocalClosure deep =
        build_closure(*overlay_, p, GetParam().depth + 1);
    EXPECT_GE(deep.size(), shallow.size());
    for (const PeerId member : shallow.nodes)
      EXPECT_NE(deep.to_local(member), kInvalidLocalNode)
          << "member " << member << " lost at deeper closure";
  }
}

TEST_P(TreeProperty, TreeRoutingChildrenFormAProperTree) {
  for (const PeerId p : overlay_->online_peers()) {
    const LocalClosure closure =
        build_closure(*overlay_, p, GetParam().depth);
    const LocalTree tree = build_local_tree(closure);
    const TreeRouting routing = make_tree_routing(tree, p);
    // Every node appears as a child at most once, the source never does,
    // and the child count equals the edge count (it is a tree).
    std::set<PeerId> seen_children;
    std::size_t child_count = 0;
    for (const auto& [parent, children] : routing.children) {
      (void)parent;
      for (const PeerId c : children) {
        EXPECT_NE(c, p);
        EXPECT_TRUE(seen_children.insert(c).second)
            << "peer " << c << " has two parents";
        ++child_count;
      }
    }
    EXPECT_EQ(child_count, tree.edges.size());
    // The routing root's children are exactly the flooding set.
    std::set<PeerId> flooding(tree.flooding.begin(), tree.flooding.end());
    const std::vector<PeerId>* root_kids = routing.find_children(p);
    std::set<PeerId> root_children;
    if (root_kids != nullptr)
      root_children.insert(root_kids->begin(), root_kids->end());
    EXPECT_EQ(root_children, flooding);
  }
}

// ---------------------------------------------------------------------
// HPF invariants: partial degree and period monotonicity.
// ---------------------------------------------------------------------

class HpfProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HpfProperty, TrafficMonotoneInPartialDegree) {
  Rng topo{GetParam()};
  BaOptions ba;
  ba.nodes = 256;
  PhysicalNetwork physical{barabasi_albert(ba, topo)};
  OverlayOptions oo;
  oo.peers = 56;
  oo.mean_degree = 6.0;
  const Graph logical = small_world_overlay(oo, topo);
  const auto hosts = assign_hosts_uniform(physical, oo.peers, topo);
  OverlayNetwork overlay{physical, logical, hosts};
  NobodyOracle oracle;

  double previous_traffic = 0;
  std::size_t previous_scope = 0;
  for (const std::size_t partial : {1u, 2u, 3u, 5u, 100u}) {
    QueryOptions options;
    options.hpf_partial = partial;
    options.hpf_period = 4;
    const QueryResult r =
        run_query(overlay, PeerId{0}, 0, oracle, ForwardingMode::kHybridPeriodical,
                  nullptr, options);
    EXPECT_GE(r.traffic_cost, previous_traffic) << "partial " << partial;
    EXPECT_GE(r.scope + 2, previous_scope) << "partial " << partial;
    previous_traffic = r.traffic_cost;
    previous_scope = r.scope;
  }
  // With partial >= max degree, HPF degenerates to blind flooding.
  const QueryResult blind = run_query(
      overlay, PeerId{0}, 0, oracle, ForwardingMode::kBlindFlooding, nullptr);
  EXPECT_DOUBLE_EQ(previous_traffic, blind.traffic_cost);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HpfProperty, ::testing::Values(3, 5, 8));

// ---------------------------------------------------------------------
// Optimizer invariants across seeds and policies.
// ---------------------------------------------------------------------

struct OptCase {
  std::uint64_t seed;
  ReplacementPolicy policy;
};

class OptimizerProperty : public ::testing::TestWithParam<OptCase> {};

TEST_P(OptimizerProperty, OptimizationNeverDisconnectsAndNeverWorsens) {
  Rng topo{GetParam().seed};
  BaOptions ba;
  ba.nodes = 256;
  PhysicalNetwork physical{barabasi_albert(ba, topo)};
  OverlayOptions oo;
  oo.peers = 48;
  oo.mean_degree = 6.0;
  const Graph logical = random_overlay(oo, topo);
  const auto hosts = assign_hosts_uniform(physical, oo.peers, topo);
  OverlayNetwork overlay{physical, logical, hosts};

  AceConfig config;
  config.optimizer.policy = GetParam().policy;
  AceEngine engine{overlay, config};
  Rng rng{GetParam().seed ^ 0xabcdef};
  auto mean_link = [&overlay] {
    return overlay.logical().total_weight() /
           static_cast<double>(overlay.logical().edge_count());
  };
  const double before = mean_link();
  for (int round = 0; round < 6; ++round) {
    engine.step_round(rng);
    EXPECT_TRUE(is_connected(overlay.logical()));
  }
  // Establishment may grow the link count, but the mean link must shorten.
  EXPECT_LE(mean_link(), before);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OptimizerProperty,
    ::testing::Values(OptCase{1, ReplacementPolicy::kRandom},
                      OptCase{2, ReplacementPolicy::kRandom},
                      OptCase{3, ReplacementPolicy::kNaive},
                      OptCase{4, ReplacementPolicy::kNaive},
                      OptCase{5, ReplacementPolicy::kClosest},
                      OptCase{6, ReplacementPolicy::kClosest}));

// ---------------------------------------------------------------------
// Physical network consistency across generator models.
// ---------------------------------------------------------------------

class PhysicalProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PhysicalProperty, DelaysAreAMetric) {
  Rng topo{GetParam()};
  BaOptions ba;
  ba.nodes = 128;
  PhysicalNetwork net{barabasi_albert(ba, topo)};
  Rng pick{GetParam() ^ 0x5555};
  for (int i = 0; i < 30; ++i) {
    const auto a = static_cast<HostId>(pick.next_below(128));
    const auto b = static_cast<HostId>(pick.next_below(128));
    const auto c = static_cast<HostId>(pick.next_below(128));
    EXPECT_DOUBLE_EQ(net.delay(a, a), 0.0);
    EXPECT_NEAR(net.delay(a, b), net.delay(b, a), 1e-4);
    EXPECT_LE(net.delay(a, c), net.delay(a, b) + net.delay(b, c) + 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PhysicalProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace ace
