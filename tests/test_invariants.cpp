// Death tests for the correctness tooling: the ACE_CHECK macro family and
// the per-subsystem debug_validate() invariant auditors. Each test corrupts
// a structure on purpose and asserts the auditor dies with a diagnostic
// that names the violated invariant.
#include <gtest/gtest.h>

#include <memory>

#include "ace/closure.h"
#include "ace/cost_table.h"
#include "ace/tree_builder.h"
#include "graph/generators.h"
#include "net/physical_network.h"
#include "search/flooding.h"
#include "sim/event_queue.h"
#include "util/check.h"
#include "util/rng.h"

namespace ace {
namespace {

// ---------------------------------------------------------------- macros --

TEST(CheckMacros, PassingChecksAreSilent) {
  ACE_CHECK(1 + 1 == 2) << "never rendered";
  ACE_CHECK_EQ(4, 4);
  ACE_CHECK_NE(4, 5);
  ACE_CHECK_LT(4, 5);
  ACE_CHECK_LE(5, 5);
  ACE_CHECK_GT(5, 4);
  ACE_CHECK_GE(5, 5);
}

TEST(CheckMacros, FailureReportsConditionAndMessage) {
  EXPECT_DEATH(ACE_CHECK(2 > 3) << "peer " << 42 << " broke",
               "ACE_CHECK failed: 2 > 3.*peer 42 broke");
}

TEST(CheckMacros, BinaryFailureReportsBothValues) {
  const int lhs = 7;
  const int rhs = 9;
  EXPECT_DEATH(ACE_CHECK_EQ(lhs, rhs), "lhs == rhs \\(7 vs 9\\)");
  EXPECT_DEATH(ACE_CHECK_GE(lhs, rhs), "lhs >= rhs \\(7 vs 9\\)");
}

TEST(CheckMacros, FailureNamesTheSourceLocation) {
  EXPECT_DEATH(ACE_CHECK(false), "test_invariants\\.cpp");
}

TEST(CheckMacros, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  ACE_CHECK([&] {
    ++calls;
    return true;
  }());
  EXPECT_EQ(calls, 1);
}

TEST(CheckMacros, DanglingElseSafe) {
  // Must parse as a single statement under an unbraced if/else.
  const bool flag = true;
  if (flag)
    ACE_CHECK(true);
  else
    FAIL() << "ACE_CHECK swallowed the else branch";
}

TEST(CheckMacros, RuntimeAuditToggleRoundTrips) {
  const bool before = invariant_audits_enabled();
  set_invariant_audits(true);
  EXPECT_TRUE(invariant_audits_enabled());
  set_invariant_audits(false);
  EXPECT_FALSE(invariant_audits_enabled());
  set_invariant_audits(before);
}

// -------------------------------------------------------------- fixtures --

struct LabFixture {
  LabFixture() {
    Rng rng{1234};
    WaxmanOptions wopts;
    wopts.nodes = 64;
    wopts.alpha = 0.6;
    wopts.beta = 0.4;
    physical = std::make_unique<PhysicalNetwork>(waxman(wopts, rng));
    const auto hosts = assign_hosts_uniform(*physical, 32, rng);
    OverlayOptions oopts;
    oopts.peers = 32;
    oopts.mean_degree = 4.0;
    overlay = std::make_unique<OverlayNetwork>(
        *physical, random_overlay(oopts, rng), hosts);
  }

  std::unique_ptr<PhysicalNetwork> physical;
  std::unique_ptr<OverlayNetwork> overlay;
};

// -------------------------------------------------------------- auditors --

TEST(InvariantAuditors, HealthyStatePasses) {
  LabFixture lab;
  lab.overlay->debug_validate();
  const LocalClosure closure = build_closure(*lab.overlay, PeerId{0}, 2);
  closure.debug_validate(2);
  const LocalTree tree = build_local_tree(closure);
  debug_validate_tree(closure, tree);

  CostTableStore store;
  ProbeOverhead overhead;
  for (const PeerId p : lab.overlay->online_peers())
    store.refresh_peer(*lab.overlay, p, overhead);
  store.debug_validate(*lab.overlay);

  ForwardingTable table;
  table.ensure_size(lab.overlay->peer_count());
  table.set_tree(PeerId{0}, make_tree_routing(tree, PeerId{0}));
  table.debug_validate(*lab.overlay);
}

TEST(InvariantAuditorsDeath, ClosureHopBoundBreach) {
  LabFixture lab;
  LocalClosure closure = build_closure(*lab.overlay, PeerId{0}, 2);
  closure.depth.back() = 9;  // corrupt: member claims depth past the bound
  EXPECT_DEATH(closure.debug_validate(2), "hop bound");
}

TEST(InvariantAuditorsDeath, ClosureIndexBijectionBreak) {
  LabFixture lab;
  LocalClosure closure = build_closure(*lab.overlay, PeerId{0}, 1);
  ASSERT_GE(closure.size(), 2u);
  // Corrupt: two local ids claim the same global peer.
  for (auto& entry : closure.member_index)
    if (entry.first == closure.nodes[LocalNodeId{1}]) entry.second = LocalNodeId{0};
  EXPECT_DEATH(closure.debug_validate(1), "member_index");
}

TEST(InvariantAuditorsDeath, ClosureMisalignedArrays) {
  LabFixture lab;
  LocalClosure closure = build_closure(*lab.overlay, PeerId{0}, 1);
  closure.depth.pop_back();  // corrupt: depth no longer aligned with nodes
  EXPECT_DEATH(closure.debug_validate(1), "depth misaligned");
}

TEST(InvariantAuditorsDeath, CostTableRecordsSelf) {
  LabFixture lab;
  CostTableStore store;
  store.ensure_size(lab.overlay->peer_count());
  ProbeOverhead overhead;
  store.refresh_peer(*lab.overlay, PeerId{3}, overhead);
  store.table(PeerId{3}).record(PeerId{3}, 1.0);  // corrupt: peer probes itself
  EXPECT_DEATH(store.debug_validate(*lab.overlay), "recorded itself");
}

TEST(InvariantAuditorsDeath, CostTableDisagreesWithLiveLink) {
  LabFixture lab;
  CostTableStore store;
  store.ensure_size(lab.overlay->peer_count());
  ProbeOverhead overhead;
  store.refresh_peer(*lab.overlay, PeerId{3}, overhead);
  const PeerId neighbor = peer_of(lab.overlay->neighbors(PeerId{3}).front());
  // Corrupt: the recorded probe cost drifts away from the live link cost.
  store.table(PeerId{3}).record(neighbor,
                               lab.overlay->link_cost(PeerId{3}, neighbor) + 5.0);
  EXPECT_DEATH(store.debug_validate(*lab.overlay),
               "disagrees with the live overlay link");
}

TEST(InvariantAuditorsDeath, CostTableAsymmetry) {
  LabFixture lab;
  CostTableStore store;
  store.ensure_size(lab.overlay->peer_count());
  // Corrupt: a records b at one cost, b records a at another (and neither
  // pair is overlay-linked, so only the symmetry rule can object).
  PeerId a{0}, b{0};
  for (PeerId p{1}; p < lab.overlay->peer_count(); ++p) {
    if (!lab.overlay->are_connected(PeerId{0}, p)) {
      b = p;
      break;
    }
  }
  ASSERT_NE(a, b);
  store.table(a).record(b, 2.0);
  store.table(b).record(a, 3.0);
  EXPECT_DEATH(store.debug_validate(*lab.overlay), "asymmetry");
}

TEST(InvariantAuditorsDeath, TreeWithCycle) {
  LabFixture lab;
  const LocalClosure closure = build_closure(*lab.overlay, PeerId{0}, 2);
  LocalTree tree = build_local_tree(closure);
  ASSERT_GE(tree.edges.size(), 2u);
  tree.edges.push_back(tree.edges.front());  // corrupt: duplicated edge
  EXPECT_DEATH(debug_validate_tree(closure, tree), "cycle");
}

TEST(InvariantAuditorsDeath, TreeEdgeEscapesClosure) {
  LabFixture lab;
  const LocalClosure closure = build_closure(*lab.overlay, PeerId{0}, 1);
  LocalTree tree = build_local_tree(closure);
  ASSERT_FALSE(tree.edges.empty());
  tree.edges.front().u = kInvalidPeer;  // corrupt: endpoint outside closure
  EXPECT_DEATH(debug_validate_tree(closure, tree), "outside the closure");
}

TEST(InvariantAuditorsDeath, TreeDoubleClassifiesNeighbor) {
  LabFixture lab;
  const LocalClosure closure = build_closure(*lab.overlay, PeerId{0}, 1);
  LocalTree tree = build_local_tree(closure);
  ASSERT_FALSE(tree.flooding.empty());
  // Corrupt: one direct neighbor listed on both sides of the partition.
  tree.non_flooding.push_back(tree.flooding.front());
  EXPECT_DEATH(debug_validate_tree(closure, tree),
               "both flooding and non-flooding");
}

TEST(InvariantAuditorsDeath, TreeTotalWeightDrift) {
  LabFixture lab;
  const LocalClosure closure = build_closure(*lab.overlay, PeerId{0}, 1);
  LocalTree tree = build_local_tree(closure);
  tree.total_weight += 1.0;  // corrupt: cached aggregate out of sync
  EXPECT_DEATH(debug_validate_tree(closure, tree), "total_weight");
}

TEST(InvariantAuditorsDeath, ForwardingEntryOutlivesLink) {
  LabFixture lab;
  ForwardingTable table;
  table.ensure_size(lab.overlay->peer_count());
  // Corrupt: peer 0 would forward to a peer it is not connected to.
  PeerId stranger = kInvalidPeer;
  for (PeerId p{1}; p < lab.overlay->peer_count(); ++p) {
    if (!lab.overlay->are_connected(PeerId{0}, p)) {
      stranger = p;
      break;
    }
  }
  ASSERT_NE(stranger, kInvalidPeer);
  table.set_flooding(PeerId{0}, {stranger});
  EXPECT_DEATH(table.debug_validate(*lab.overlay), "stale flooding entry");
}

TEST(InvariantAuditorsDeath, ForwardingEntryForOfflinePeer) {
  LabFixture lab;
  ForwardingTable table;
  table.ensure_size(lab.overlay->peer_count());
  const PeerId p{5};
  const PeerId neighbor = peer_of(lab.overlay->neighbors(p).front());
  table.set_flooding(p, {neighbor});
  Rng rng{7};
  lab.overlay->leave(p, 0, rng);  // departs without invalidating its entry
  EXPECT_DEATH(table.debug_validate(*lab.overlay),
               "entry for offline peer");
}

TEST(InvariantAuditors, EventQueueHealthyStatePasses) {
  EventQueue queue;
  queue.schedule(1.0, [] {});
  const EventId cancelled = queue.schedule(2.0, [] {});
  queue.schedule(3.0, [] {});
  queue.cancel(cancelled);
  queue.debug_validate();
  queue.run_next();
  queue.debug_validate();
  EXPECT_EQ(queue.size(), 1u);
}

TEST(InvariantAuditors, OverlayStaysValidThroughChurnPrimitives) {
  LabFixture lab;
  Rng rng{99};
  for (int round = 0; round < 10; ++round) {
    const PeerId victim = lab.overlay->random_online_peer(rng);
    lab.overlay->leave(victim, 2, rng);
    lab.overlay->debug_validate();
    lab.overlay->join(victim, 4, rng);
    lab.overlay->debug_validate();
  }
}

}  // namespace
}  // namespace ace
