#include "net/physical_network.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/shortest_path.h"

namespace ace {
namespace {

Graph diamond() {
  Graph g{4};
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 10.0);
  g.add_edge(2, 3, 2.0);
  return g;
}

TEST(PhysicalNetwork, DelayUsesShortestPath) {
  PhysicalNetwork net{diamond()};
  EXPECT_DOUBLE_EQ(net.delay(HostId{0}, HostId{2}), 2.0);  // via 1, not direct 10
  EXPECT_DOUBLE_EQ(net.delay(HostId{0}, HostId{3}), 4.0);
  EXPECT_DOUBLE_EQ(net.delay(HostId{0}, HostId{0}), 0.0);
}

TEST(PhysicalNetwork, DelayIsSymmetric) {
  PhysicalNetwork net{diamond()};
  EXPECT_DOUBLE_EQ(net.delay(HostId{0}, HostId{3}), net.delay(HostId{3}, HostId{0}));
  EXPECT_DOUBLE_EQ(net.delay(HostId{1}, HostId{2}), net.delay(HostId{2}, HostId{1}));
}

TEST(PhysicalNetwork, ProbeRttIsTwiceOneWay) {
  PhysicalNetwork net{diamond()};
  EXPECT_DOUBLE_EQ(net.probe_rtt(HostId{0}, HostId{3}), 8.0);
}

TEST(PhysicalNetwork, PathExtraction) {
  PhysicalNetwork net{diamond()};
  EXPECT_EQ(net.path(HostId{0}, HostId{2}), (std::vector<HostId>{HostId{0}, HostId{1}, HostId{2}}));
  EXPECT_EQ(net.path(HostId{0}, HostId{0}), (std::vector<HostId>{HostId{0}}));
  EXPECT_EQ(net.path_hops(HostId{0}, HostId{3}), 3u);
  EXPECT_EQ(net.path_hops(HostId{0}, HostId{0}), 0u);
}

TEST(PhysicalNetwork, UnreachableHosts) {
  Graph g{3};
  g.add_edge(0, 1, 1.0);  // node 2 isolated
  PhysicalNetwork net{std::move(g)};
  EXPECT_EQ(net.delay(HostId{0}, HostId{2}), kUnreachable);
  EXPECT_TRUE(net.path(HostId{0}, HostId{2}).empty());
}

TEST(PhysicalNetwork, OutOfRangeThrows) {
  PhysicalNetwork net{diamond()};
  EXPECT_THROW(net.delay(HostId{0}, HostId{9}), std::out_of_range);
  EXPECT_THROW(net.delay(HostId{9}, HostId{0}), std::out_of_range);
  EXPECT_THROW(net.path(HostId{0}, HostId{9}), std::out_of_range);
}

TEST(PhysicalNetwork, CachesRows) {
  PhysicalNetwork net{diamond()};
  net.delay(HostId{0}, HostId{1});
  net.delay(HostId{0}, HostId{2});
  net.delay(HostId{0}, HostId{3});
  EXPECT_EQ(net.rows_computed(), 1u);  // one Dijkstra served all three
}

TEST(PhysicalNetwork, ReusesReverseRow) {
  PhysicalNetwork net{diamond()};
  net.delay(HostId{0}, HostId{3});  // computes row 0
  net.delay(HostId{3}, HostId{0});  // should reuse row 0 by symmetry
  EXPECT_EQ(net.rows_computed(), 1u);
}

TEST(PhysicalNetwork, EvictionBoundRespected) {
  Rng rng{1};
  BaOptions options;
  options.nodes = 64;
  PhysicalNetwork net{barabasi_albert(options, rng), /*max_cached_rows=*/4};
  for (std::uint32_t a = 0; a < 32; ++a)
    net.delay(HostId{a}, HostId{(a + 1) % 64});
  EXPECT_LE(net.rows_cached(), 4u);
  // Still correct after evictions.
  EXPECT_DOUBLE_EQ(net.delay(HostId{0}, HostId{5}), net.delay(HostId{5}, HostId{0}));
}

TEST(PhysicalNetwork, RowCacheStatsCountHitsAndMisses) {
  PhysicalNetwork net{diamond()};
  net.delay(HostId{0}, HostId{1});  // miss: computes row 0
  net.delay(HostId{0}, HostId{2});  // hit
  net.delay(HostId{0}, HostId{3});  // hit
  net.delay(HostId{3}, HostId{0});  // hit: symmetry reuses row 0
  const RowCacheStats stats = net.row_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.rows, 1u);
  EXPECT_EQ(stats.bytes, 4 * (sizeof(float) + sizeof(NodeId)));
  EXPECT_EQ(stats.max_rows, 8192u);
  EXPECT_EQ(stats.max_bytes, 0u);  // auto policy: small topology, unlimited
}

TEST(PhysicalNetwork, ByteBudgetTriggersEviction) {
  // Each diamond row is 4 * (float + NodeId) = 32 bytes; a 64-byte budget
  // holds exactly two rows.
  PhysicalNetwork net{diamond(), /*max_cached_rows=*/0,
                      /*max_cache_bytes=*/64};
  net.delay(HostId{0}, HostId{3});  // row 0
  net.delay(HostId{1}, HostId{3});  // row 1
  net.delay(HostId{2}, HostId{3});  // row 2 -> evicts one row
  const RowCacheStats stats = net.row_cache_stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.rows, 2u);
  EXPECT_LE(stats.bytes, stats.max_bytes);
}

TEST(PhysicalNetwork, LruKeepsTouchedRowEvictsStale) {
  PhysicalNetwork net{diamond(), /*max_cached_rows=*/2};
  net.delay(HostId{0}, HostId{1});  // miss: row 0
  net.delay(HostId{1}, HostId{2});  // miss: row 1
  net.delay(HostId{0}, HostId{3});  // hit: touches row 0, making row 1 least-recent
  net.delay(HostId{2}, HostId{3});  // miss: row 2 -> evicts row 1, not the touched row 0
  EXPECT_EQ(net.row_cache_stats().misses, 3u);
  net.delay(HostId{0}, HostId{2});  // row 0 survived: hit
  EXPECT_EQ(net.row_cache_stats().misses, 3u);
  net.delay(HostId{1}, HostId{3});  // row 1 was evicted: recomputes
  EXPECT_EQ(net.row_cache_stats().misses, 4u);
  EXPECT_EQ(net.row_cache_stats().evictions, 2u);
}

TEST(PhysicalNetwork, AgreesWithDirectDijkstra) {
  Rng rng{2};
  BaOptions options;
  options.nodes = 200;
  Graph g = barabasi_albert(options, rng);
  const auto ref = dijkstra(g, 17);
  PhysicalNetwork net{std::move(g)};
  for (std::uint32_t v = 0; v < 200; v += 13)
    EXPECT_NEAR(net.delay(HostId{17}, HostId{v}), ref.dist[v], 1e-4);
}

}  // namespace
}  // namespace ace
