#include "net/physical_network.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/shortest_path.h"

namespace ace {
namespace {

Graph diamond() {
  Graph g{4};
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 10.0);
  g.add_edge(2, 3, 2.0);
  return g;
}

TEST(PhysicalNetwork, DelayUsesShortestPath) {
  PhysicalNetwork net{diamond()};
  EXPECT_DOUBLE_EQ(net.delay(0, 2), 2.0);  // via 1, not direct 10
  EXPECT_DOUBLE_EQ(net.delay(0, 3), 4.0);
  EXPECT_DOUBLE_EQ(net.delay(0, 0), 0.0);
}

TEST(PhysicalNetwork, DelayIsSymmetric) {
  PhysicalNetwork net{diamond()};
  EXPECT_DOUBLE_EQ(net.delay(0, 3), net.delay(3, 0));
  EXPECT_DOUBLE_EQ(net.delay(1, 2), net.delay(2, 1));
}

TEST(PhysicalNetwork, ProbeRttIsTwiceOneWay) {
  PhysicalNetwork net{diamond()};
  EXPECT_DOUBLE_EQ(net.probe_rtt(0, 3), 8.0);
}

TEST(PhysicalNetwork, PathExtraction) {
  PhysicalNetwork net{diamond()};
  EXPECT_EQ(net.path(0, 2), (std::vector<HostId>{0, 1, 2}));
  EXPECT_EQ(net.path(0, 0), (std::vector<HostId>{0}));
  EXPECT_EQ(net.path_hops(0, 3), 3u);
  EXPECT_EQ(net.path_hops(0, 0), 0u);
}

TEST(PhysicalNetwork, UnreachableHosts) {
  Graph g{3};
  g.add_edge(0, 1, 1.0);  // node 2 isolated
  PhysicalNetwork net{std::move(g)};
  EXPECT_EQ(net.delay(0, 2), kUnreachable);
  EXPECT_TRUE(net.path(0, 2).empty());
}

TEST(PhysicalNetwork, OutOfRangeThrows) {
  PhysicalNetwork net{diamond()};
  EXPECT_THROW(net.delay(0, 9), std::out_of_range);
  EXPECT_THROW(net.delay(9, 0), std::out_of_range);
  EXPECT_THROW(net.path(0, 9), std::out_of_range);
}

TEST(PhysicalNetwork, CachesRows) {
  PhysicalNetwork net{diamond()};
  net.delay(0, 1);
  net.delay(0, 2);
  net.delay(0, 3);
  EXPECT_EQ(net.rows_computed(), 1u);  // one Dijkstra served all three
}

TEST(PhysicalNetwork, ReusesReverseRow) {
  PhysicalNetwork net{diamond()};
  net.delay(0, 3);  // computes row 0
  net.delay(3, 0);  // should reuse row 0 by symmetry
  EXPECT_EQ(net.rows_computed(), 1u);
}

TEST(PhysicalNetwork, EvictionBoundRespected) {
  Rng rng{1};
  BaOptions options;
  options.nodes = 64;
  PhysicalNetwork net{barabasi_albert(options, rng), /*max_cached_rows=*/4};
  for (HostId a = 0; a < 32; ++a) net.delay(a, (a + 1) % 64);
  EXPECT_LE(net.rows_cached(), 4u);
  // Still correct after evictions.
  EXPECT_DOUBLE_EQ(net.delay(0, 5), net.delay(5, 0));
}

TEST(PhysicalNetwork, AgreesWithDirectDijkstra) {
  Rng rng{2};
  BaOptions options;
  options.nodes = 200;
  Graph g = barabasi_albert(options, rng);
  const auto ref = dijkstra(g, 17);
  PhysicalNetwork net{std::move(g)};
  for (HostId v = 0; v < 200; v += 13)
    EXPECT_NEAR(net.delay(17, v), ref.dist[v], 1e-4);
}

}  // namespace
}  // namespace ace
