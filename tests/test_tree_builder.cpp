#include "ace/tree_builder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

namespace ace {
namespace {

struct Fixture {
  explicit Fixture(std::size_t hosts = 32) {
    Graph g{hosts};
    for (NodeId u = 0; u + 1 < hosts; ++u) g.add_edge(u, u + 1, 1.0);
    physical = std::make_unique<PhysicalNetwork>(std::move(g));
    overlay = std::make_unique<OverlayNetwork>(*physical);
  }
  std::unique_ptr<PhysicalNetwork> physical;
  std::unique_ptr<OverlayNetwork> overlay;
};

TEST(TreeBuilder, PrunesExpensiveDirectLink) {
  Fixture f;
  // Source A at host 0; B at host 1 (cost 1); C at host 10 (cost 10 from A,
  // cost 9 from B). The MST keeps A-B and B-C, so C becomes non-flooding.
  const PeerId a = f.overlay->add_peer(HostId{0});
  const PeerId b = f.overlay->add_peer(HostId{1});
  const PeerId c = f.overlay->add_peer(HostId{10});
  f.overlay->connect(a, b);
  f.overlay->connect(a, c);
  f.overlay->connect(b, c);
  const LocalClosure closure = build_closure(*f.overlay, a, 1);
  const LocalTree tree = build_local_tree(closure);
  EXPECT_EQ(std::set<PeerId>(tree.flooding.begin(), tree.flooding.end()),
            (std::set<PeerId>{b}));
  EXPECT_EQ(std::set<PeerId>(tree.non_flooding.begin(),
                             tree.non_flooding.end()),
            (std::set<PeerId>{c}));
  EXPECT_DOUBLE_EQ(tree.total_weight, 1.0 + 9.0);
}

TEST(TreeBuilder, StarKeepsAllNeighborsFlooding) {
  Fixture f;
  // No neighbor-neighbor links: the MST must include every direct edge.
  const PeerId a = f.overlay->add_peer(HostId{0});
  std::vector<PeerId> leaves;
  for (std::uint32_t h = 2; h < 7; ++h)
    leaves.push_back(f.overlay->add_peer(HostId{h}));
  for (const PeerId leaf : leaves) f.overlay->connect(a, leaf);
  const LocalClosure closure = build_closure(*f.overlay, a, 1);
  const LocalTree tree = build_local_tree(closure);
  EXPECT_EQ(tree.flooding.size(), leaves.size());
  EXPECT_TRUE(tree.non_flooding.empty());
}

TEST(TreeBuilder, TreeEdgesInGlobalIds) {
  Fixture f;
  const PeerId a = f.overlay->add_peer(HostId{0});
  const PeerId b = f.overlay->add_peer(HostId{1});
  f.overlay->connect(a, b);
  const LocalTree tree = build_local_tree(build_closure(*f.overlay, a, 1));
  ASSERT_EQ(tree.edges.size(), 1u);
  const PeerEdge& e = tree.edges[0];
  EXPECT_TRUE((e.u == a && e.v == b) || (e.u == b && e.v == a));
}

TEST(TreeBuilder, SpanningTreeCoversClosure) {
  Fixture f;
  std::vector<PeerId> peers;
  for (std::uint32_t h = 0; h < 12; ++h)
    peers.push_back(f.overlay->add_peer(HostId{h}));
  Rng rng{5};
  // Random connected overlay region.
  for (std::size_t i = 1; i < peers.size(); ++i)
    f.overlay->connect(peers[i], peers[rng.next_below(i)]);
  for (int extra = 0; extra < 8; ++extra)
    f.overlay->connect(peers[rng.next_below(peers.size())],
                       peers[rng.next_below(peers.size())]);
  const LocalClosure closure = build_closure(*f.overlay, peers[0], 3);
  const LocalTree tree = build_local_tree(closure);
  // Spanning tree over a connected closure: |V| - 1 edges.
  EXPECT_EQ(tree.edges.size(), closure.size() - 1);
  // flooding + non_flooding partition the direct neighbors.
  EXPECT_EQ(tree.flooding.size() + tree.non_flooding.size(),
            f.overlay->degree(peers[0]));
}

TEST(TreeBuilder, ShortestPathTreeVariant) {
  // A host 0, B host 4, C host 9: A-B = 4, B-C = 5, A-C = 9.
  Fixture g;
  const PeerId a2 = g.overlay->add_peer(HostId{0});
  const PeerId b2 = g.overlay->add_peer(HostId{4});
  const PeerId c2 = g.overlay->add_peer(HostId{9});
  g.overlay->connect(a2, b2);  // 4
  g.overlay->connect(b2, c2);  // 5
  g.overlay->connect(a2, c2);  // 9
  const LocalClosure closure = build_closure(*g.overlay, a2, 1);
  const LocalTree mst = build_local_tree(closure, TreeKind::kMinimumSpanning);
  const LocalTree spt = build_local_tree(closure, TreeKind::kShortestPath);
  // MST weight 4 + 5 = 9; SPT picks direct A-C (9) if cheaper than via-B
  // (4 + 5 = 9; tie -> either), here SPT dist to C = 9 both ways.
  EXPECT_DOUBLE_EQ(mst.total_weight, 9.0);
  EXPECT_EQ(spt.edges.size(), 2u);
}

TEST(TreeBuilder, EmptyClosureThrows) {
  LocalClosure closure;
  EXPECT_THROW(build_local_tree(closure), std::invalid_argument);
}

TEST(WalkQuery, FollowsPerPeerTrees) {
  Fixture f;
  const PeerId a = f.overlay->add_peer(HostId{0});
  const PeerId b = f.overlay->add_peer(HostId{1});
  const PeerId c = f.overlay->add_peer(HostId{2});
  f.overlay->connect(a, b);
  f.overlay->connect(b, c);
  f.overlay->connect(a, c);
  std::vector<std::vector<PeerId>> flooding(3);
  flooding[a.value()] = {b};
  flooding[b.value()] = {a, c};
  flooding[c.value()] = {b};
  const auto steps = walk_query_over_trees(*f.overlay, flooding, a);
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_EQ(steps[0].from, a);
  EXPECT_EQ(steps[0].to, b);
  EXPECT_EQ(steps[1].from, b);
  EXPECT_EQ(steps[1].to, c);
  EXPECT_FALSE(steps[0].duplicate);
  EXPECT_FALSE(steps[1].duplicate);
}

TEST(WalkQuery, MarksDuplicates) {
  Fixture f;
  const PeerId a = f.overlay->add_peer(HostId{0});
  const PeerId b = f.overlay->add_peer(HostId{1});
  const PeerId c = f.overlay->add_peer(HostId{2});
  f.overlay->connect(a, b);
  f.overlay->connect(b, c);
  f.overlay->connect(a, c);
  // Everybody floods everybody (blind-flooding trees).
  std::vector<std::vector<PeerId>> flooding(3);
  flooding[a.value()] = {b, c};
  flooding[b.value()] = {a, c};
  flooding[c.value()] = {a, b};
  const auto steps = walk_query_over_trees(*f.overlay, flooding, a);
  std::size_t duplicates = 0;
  for (const auto& s : steps)
    if (s.duplicate) ++duplicates;
  EXPECT_EQ(steps.size(), 4u);
  EXPECT_EQ(duplicates, 2u);
}

TEST(WalkQuery, SourceOutOfRangeThrows) {
  Fixture f;
  std::vector<std::vector<PeerId>> flooding(1);
  EXPECT_THROW(walk_query_over_trees(*f.overlay, flooding, PeerId{5}),
               std::out_of_range);
}

}  // namespace
}  // namespace ace
