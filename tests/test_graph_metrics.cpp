#include "graph/metrics.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace ace {
namespace {

Graph triangle_plus_tail() {
  // 0-1-2 triangle, 3 hanging off 2.
  Graph g{4};
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  return g;
}

TEST(Metrics, DegreeSequence) {
  const Graph g = triangle_plus_tail();
  EXPECT_EQ(degree_sequence(g), (std::vector<std::size_t>{2, 2, 3, 1}));
}

TEST(Metrics, LocalClusteringOfTriangleMembers) {
  const Graph g = triangle_plus_tail();
  EXPECT_DOUBLE_EQ(local_clustering(g, 0), 1.0);  // both neighbors adjacent
  EXPECT_DOUBLE_EQ(local_clustering(g, 1), 1.0);
  // Node 2 has neighbors {0,1,3}; only pair (0,1) adjacent: 1/3.
  EXPECT_NEAR(local_clustering(g, 2), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(local_clustering(g, 3), 0.0);  // degree 1
}

TEST(Metrics, MeanClustering) {
  const Graph g = triangle_plus_tail();
  EXPECT_NEAR(mean_clustering(g), (1.0 + 1.0 + 1.0 / 3.0 + 0.0) / 4.0, 1e-12);
}

TEST(Metrics, CompleteGraphClusteringIsOne) {
  Graph g{5};
  for (NodeId u = 0; u < 5; ++u)
    for (NodeId v = u + 1; v < 5; ++v) g.add_edge(u, v, 1.0);
  EXPECT_DOUBLE_EQ(mean_clustering(g), 1.0);
}

TEST(Metrics, TreeClusteringIsZero) {
  Graph g{7};
  for (NodeId v = 1; v < 7; ++v) g.add_edge(v, (v - 1) / 2, 1.0);
  EXPECT_DOUBLE_EQ(mean_clustering(g), 0.0);
}

TEST(Metrics, PathLengthOfPathGraph) {
  // Path of 5 nodes: exact mean distance = 2.0 (sum 40 over 20 ordered pairs).
  Graph g{5};
  for (NodeId u = 0; u + 1 < 5; ++u) g.add_edge(u, u + 1, 1.0);
  Rng rng{1};
  EXPECT_NEAR(mean_path_length(g, rng, 5), 2.0, 1e-12);
}

TEST(Metrics, PathLengthSampledCloseToExact) {
  Rng topo{2}, m1{3}, m2{3};
  BaOptions options;
  options.nodes = 400;
  const Graph g = barabasi_albert(options, topo);
  const double exact = mean_path_length(g, m1, 400);
  const double sampled = mean_path_length(g, m2, 64);
  EXPECT_NEAR(sampled, exact, exact * 0.1);
}

TEST(Metrics, PathLengthTrivialGraphs) {
  Rng rng{4};
  EXPECT_DOUBLE_EQ(mean_path_length(Graph{}, rng), 0.0);
  EXPECT_DOUBLE_EQ(mean_path_length(Graph{1}, rng), 0.0);
}

TEST(Metrics, BaGraphIsSmallWorldish) {
  Rng topo{5}, m{6};
  BaOptions options;
  options.nodes = 2000;
  options.edges_per_node = 3;
  const Graph g = barabasi_albert(options, topo);
  const SmallWorldReport report = small_world_report(g, m, 48);
  // Low diameter: average path length well under log2(n).
  EXPECT_LT(report.path_length, 11.0);
  EXPECT_GT(report.path_length, 1.0);
  // Clustering far above the ER null model.
  EXPECT_GT(report.clustering, report.random_clustering);
  EXPECT_GT(report.sigma, 1.0);
}

TEST(Metrics, WattsStrogatzStronglySmallWorld) {
  Rng topo{7}, m{8};
  WattsStrogatzOptions options;
  options.nodes = 500;
  options.k = 8;
  options.rewire_prob = 0.1;
  const Graph g = watts_strogatz(options, topo);
  const SmallWorldReport report = small_world_report(g, m, 64);
  EXPECT_GT(report.sigma, 2.0);
}

TEST(Metrics, ErdosRenyiSigmaNearOne) {
  Rng topo{9}, m{10};
  ErdosRenyiOptions options;
  options.nodes = 500;
  options.edge_prob = 0.02;
  const Graph g = erdos_renyi(options, topo);
  const SmallWorldReport report = small_world_report(g, m, 64);
  // The null model describes itself: sigma should hover near 1.
  EXPECT_GT(report.sigma, 0.3);
  EXPECT_LT(report.sigma, 3.0);
}

TEST(Metrics, PowerLawAlphaForBa) {
  Rng topo{11};
  BaOptions options;
  options.nodes = 3000;
  const Graph g = barabasi_albert(options, topo);
  const double alpha = degree_power_law_alpha(g, 3);
  EXPECT_GT(alpha, 1.5);
  EXPECT_LT(alpha, 4.5);
}

}  // namespace
}  // namespace ace
