#include "ace/optimizer.h"

#include <gtest/gtest.h>

#include <memory>

namespace ace {
namespace {

struct Fixture {
  explicit Fixture(std::size_t hosts = 64) {
    Graph g{hosts};
    for (NodeId u = 0; u + 1 < hosts; ++u) g.add_edge(u, u + 1, 1.0);
    physical = std::make_unique<PhysicalNetwork>(std::move(g));
    overlay = std::make_unique<OverlayNetwork>(*physical);
  }
  std::unique_ptr<PhysicalNetwork> physical;
  std::unique_ptr<OverlayNetwork> overlay;
  Rng rng{11};
  std::vector<PeerId> touched;
};

TEST(OptimizerPolicyNames, AllNamed) {
  EXPECT_STREQ(replacement_policy_name(ReplacementPolicy::kRandom), "random");
  EXPECT_STREQ(replacement_policy_name(ReplacementPolicy::kNaive), "naive");
  EXPECT_STREQ(replacement_policy_name(ReplacementPolicy::kClosest),
               "closest");
}

TEST(Optimizer, InvalidConfigThrows) {
  OptimizerConfig config;
  config.replacements_per_round = 0;
  EXPECT_THROW(Phase3Optimizer{config}, std::invalid_argument);
}

// Paper Fig 4(b): P at host 0, non-flooding neighbor B at host 10,
// candidate H (B's neighbor) at host 2. cost(P,H)=2 < cost(P,B)=10:
// replace B with H.
TEST(Optimizer, ReplacesFarNeighborWithCloseCandidate) {
  Fixture f;
  const PeerId p = f.overlay->add_peer(HostId{0});
  const PeerId b = f.overlay->add_peer(HostId{10});
  const PeerId h = f.overlay->add_peer(HostId{2});
  f.overlay->connect(p, b);
  f.overlay->connect(b, h);  // b keeps h after the cut (degree 1 allowed)
  Phase3Optimizer optimizer{OptimizerConfig{}};
  const std::vector<PeerId> non_flooding{b};
  const OptimizeOutcome outcome =
      optimizer.optimize_peer(*f.overlay, p, non_flooding, f.rng, f.touched);
  EXPECT_EQ(outcome.cuts, 1u);
  EXPECT_EQ(outcome.adds, 1u);
  EXPECT_GE(outcome.probes, 1u);
  EXPECT_GT(outcome.probe_traffic, 0.0);
  EXPECT_FALSE(f.overlay->are_connected(p, b));
  EXPECT_TRUE(f.overlay->are_connected(p, h));
}

// Paper Fig 4(c): candidate farther than B from P, but closer to P than to
// B -> P adds H while keeping B.
TEST(Optimizer, KeepsBothWhenCandidateUsefulButFarther) {
  Fixture f;
  const PeerId p = f.overlay->add_peer(HostId{10});
  const PeerId b = f.overlay->add_peer(HostId{11});  // cost(P,B) = 1
  const PeerId h = f.overlay->add_peer(HostId{14});  // cost(P,H) = 4... need BH > PH
  // B at 11, H at 14: BH = 3 < PH = 4. Bad. Put H at 6: PH=4, BH=5. Good.
  const PeerId h2 = f.overlay->add_peer(HostId{6});
  (void)h;
  f.overlay->connect(p, b);
  f.overlay->connect(b, h2);
  Phase3Optimizer optimizer{OptimizerConfig{}};
  const std::vector<PeerId> non_flooding{b};
  const OptimizeOutcome outcome =
      optimizer.optimize_peer(*f.overlay, p, non_flooding, f.rng, f.touched);
  EXPECT_EQ(outcome.cuts, 0u);
  EXPECT_EQ(outcome.adds, 1u);
  EXPECT_TRUE(f.overlay->are_connected(p, b));
  EXPECT_TRUE(f.overlay->are_connected(p, h2));
}

// Paper Fig 4(d): candidate worse on both counts -> nothing changes.
TEST(Optimizer, LeavesTopologyWhenCandidateUseless) {
  Fixture f;
  const PeerId p = f.overlay->add_peer(HostId{10});
  const PeerId b = f.overlay->add_peer(HostId{11});   // PB = 1
  const PeerId h = f.overlay->add_peer(HostId{13});   // PH = 3, BH = 2 < PH
  f.overlay->connect(p, b);
  f.overlay->connect(b, h);
  Phase3Optimizer optimizer{OptimizerConfig{}};
  const std::vector<PeerId> non_flooding{b};
  const OptimizeOutcome outcome =
      optimizer.optimize_peer(*f.overlay, p, non_flooding, f.rng, f.touched);
  EXPECT_EQ(outcome.cuts, 0u);
  EXPECT_EQ(outcome.adds, 0u);
  EXPECT_TRUE(f.overlay->are_connected(p, b));
  EXPECT_FALSE(f.overlay->are_connected(p, h));
}

TEST(Optimizer, KeepRuleCanBeDisabled) {
  Fixture f;
  const PeerId p = f.overlay->add_peer(HostId{10});
  const PeerId b = f.overlay->add_peer(HostId{11});
  const PeerId h = f.overlay->add_peer(HostId{6});  // PH=4 > PB=1, BH=5 > PH
  f.overlay->connect(p, b);
  f.overlay->connect(b, h);
  OptimizerConfig config;
  config.keep_rule = false;
  Phase3Optimizer optimizer{config};
  const std::vector<PeerId> non_flooding{b};
  const OptimizeOutcome outcome =
      optimizer.optimize_peer(*f.overlay, p, non_flooding, f.rng, f.touched);
  EXPECT_EQ(outcome.adds, 0u);
  EXPECT_FALSE(f.overlay->are_connected(p, h));
}

TEST(Optimizer, MinDegreeGuardPreventsStranding) {
  Fixture f;
  const PeerId p = f.overlay->add_peer(HostId{0});
  const PeerId b = f.overlay->add_peer(HostId{10});
  const PeerId h = f.overlay->add_peer(HostId{2});
  // b's only links are p and h: cutting p-b would leave b with degree 1
  // (allowed at min_degree=1) — raise min_degree to 2 to forbid the cut.
  f.overlay->connect(p, b);
  f.overlay->connect(b, h);
  OptimizerConfig config;
  config.min_degree = 2;
  Phase3Optimizer optimizer{config};
  const std::vector<PeerId> non_flooding{b};
  const OptimizeOutcome outcome =
      optimizer.optimize_peer(*f.overlay, p, non_flooding, f.rng, f.touched);
  // The add still happens; the cut is suppressed.
  EXPECT_EQ(outcome.cuts, 0u);
  EXPECT_EQ(outcome.adds, 1u);
  EXPECT_TRUE(f.overlay->are_connected(p, b));
  EXPECT_TRUE(f.overlay->are_connected(p, h));
}

TEST(Optimizer, ClosestPolicyProbesAllCandidates) {
  Fixture f;
  const PeerId p = f.overlay->add_peer(HostId{0});
  const PeerId b = f.overlay->add_peer(HostId{20});
  const PeerId far_candidate = f.overlay->add_peer(HostId{30});
  const PeerId near_candidate = f.overlay->add_peer(HostId{1});
  const PeerId anchor = f.overlay->add_peer(HostId{21});
  f.overlay->connect(p, b);
  f.overlay->connect(b, far_candidate);
  f.overlay->connect(b, near_candidate);
  f.overlay->connect(b, anchor);
  OptimizerConfig config;
  config.policy = ReplacementPolicy::kClosest;
  Phase3Optimizer optimizer{config};
  const std::vector<PeerId> non_flooding{b};
  const OptimizeOutcome outcome =
      optimizer.optimize_peer(*f.overlay, p, non_flooding, f.rng, f.touched);
  EXPECT_EQ(outcome.probes, 3u);  // every candidate probed
  EXPECT_TRUE(f.overlay->are_connected(p, near_candidate));
  EXPECT_FALSE(f.overlay->are_connected(p, b));
}

TEST(Optimizer, NaivePolicyReplacesMostExpensiveLink) {
  Fixture f;
  const PeerId p = f.overlay->add_peer(HostId{0});
  const PeerId cheap = f.overlay->add_peer(HostId{1});
  const PeerId expensive = f.overlay->add_peer(HostId{40});
  const PeerId candidate = f.overlay->add_peer(HostId{3});
  f.overlay->connect(p, cheap);
  f.overlay->connect(p, expensive);
  f.overlay->connect(expensive, candidate);
  OptimizerConfig config;
  config.policy = ReplacementPolicy::kNaive;
  Phase3Optimizer optimizer{config};
  // Naive ignores the non-flooding classification.
  const OptimizeOutcome outcome =
      optimizer.optimize_peer(*f.overlay, p, {}, f.rng, f.touched);
  EXPECT_EQ(outcome.cuts, 1u);
  EXPECT_FALSE(f.overlay->are_connected(p, expensive));
  EXPECT_TRUE(f.overlay->are_connected(p, candidate));
  EXPECT_TRUE(f.overlay->are_connected(p, cheap));
}

TEST(Optimizer, TrimCutsMostExpensiveNonFloodingLink) {
  Fixture f;
  const PeerId p = f.overlay->add_peer(HostId{0});
  std::vector<PeerId> neighbors;
  for (std::uint32_t h = 1; h <= 4; ++h)
    neighbors.push_back(f.overlay->add_peer(HostId{h * 10}));
  for (const PeerId n : neighbors) f.overlay->connect(p, n);
  // Anchor each neighbor so min-degree never blocks the trim.
  const PeerId anchor = f.overlay->add_peer(HostId{50});
  for (const PeerId n : neighbors) f.overlay->connect(n, anchor);
  OptimizerConfig config;
  config.max_degree = 2;
  Phase3Optimizer optimizer{config};
  // All neighbors classified non-flooding for the test.
  const OptimizeOutcome outcome =
      optimizer.optimize_peer(*f.overlay, p, neighbors, f.rng, f.touched);
  EXPECT_GE(outcome.trims, 2u);
  EXPECT_LE(f.overlay->degree(p), 2u + outcome.adds);
  // The most expensive link (host 40) must be gone.
  EXPECT_FALSE(f.overlay->are_connected(p, neighbors.back()));
}

TEST(Optimizer, OfflinePeerIsNoop) {
  Fixture f;
  const PeerId p = f.overlay->add_peer(HostId{0}, /*online=*/false);
  Phase3Optimizer optimizer{OptimizerConfig{}};
  const OptimizeOutcome outcome =
      optimizer.optimize_peer(*f.overlay, p, {}, f.rng, f.touched);
  EXPECT_EQ(outcome.probes, 0u);
  EXPECT_EQ(outcome.cuts + outcome.adds + outcome.trims, 0u);
}

TEST(Optimizer, NoCandidatesNoChanges) {
  Fixture f;
  const PeerId p = f.overlay->add_peer(HostId{0});
  const PeerId b = f.overlay->add_peer(HostId{10});
  f.overlay->connect(p, b);  // b has no other neighbors
  Phase3Optimizer optimizer{OptimizerConfig{}};
  const std::vector<PeerId> non_flooding{b};
  const OptimizeOutcome outcome =
      optimizer.optimize_peer(*f.overlay, p, non_flooding, f.rng, f.touched);
  EXPECT_EQ(outcome.probes, 0u);
  EXPECT_TRUE(f.overlay->are_connected(p, b));
}

TEST(Optimizer, OutcomeMergeSums) {
  OptimizeOutcome a, b;
  a.probes = 1;
  a.probe_traffic = 2.0;
  a.cuts = 1;
  b.probes = 2;
  b.probe_traffic = 3.0;
  b.adds = 4;
  b.trims = 5;
  a.merge(b);
  EXPECT_EQ(a.probes, 3u);
  EXPECT_DOUBLE_EQ(a.probe_traffic, 5.0);
  EXPECT_EQ(a.cuts, 1u);
  EXPECT_EQ(a.adds, 4u);
  EXPECT_EQ(a.trims, 5u);
}

}  // namespace
}  // namespace ace
