#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace ace {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng{11};
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowStaysInBound) {
  Rng rng{3};
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng{3};
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng{5};
  std::array<int, 10> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(10)];
  for (const int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.15);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng{9};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntBadRangeThrows) {
  Rng rng{9};
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, UniformRealRange) {
  Rng rng{13};
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real(5.0, 6.5);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 6.5);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng{17};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceProbabilityApproximatelyRespected) {
  Rng rng{19};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent{23};
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (parent.next() == child.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng{29};
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.shuffle(std::span<int>{v});
  EXPECT_FALSE(std::equal(v.begin(), v.end(), original.begin()));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng{31};
  const auto sample = rng.sample_indices(100, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const auto i : sample) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleIndicesFullPopulation) {
  Rng rng{37};
  const auto sample = rng.sample_indices(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleIndicesTooManyThrows) {
  Rng rng{37};
  EXPECT_THROW(rng.sample_indices(5, 6), std::invalid_argument);
}

TEST(Distributions, ExponentialMeanMatches) {
  Rng rng{41};
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += exponential(rng, 5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Distributions, ExponentialRejectsBadMean) {
  Rng rng{41};
  EXPECT_THROW(exponential(rng, 0.0), std::invalid_argument);
  EXPECT_THROW(exponential(rng, -1.0), std::invalid_argument);
}

TEST(Distributions, LognormalMeanAndVarianceMatch) {
  Rng rng{43};
  // The paper's lifetime distribution: mean 600 s, variance 300.
  const double mean = 600.0, variance = 300.0;
  double sum = 0, sumsq = 0;
  const int n = 300000;
  for (int i = 0; i < n; ++i) {
    const double x = lognormal_mean_var(rng, mean, variance);
    EXPECT_GT(x, 0.0);
    sum += x;
    sumsq += x * x;
  }
  const double m = sum / n;
  const double v = sumsq / n - m * m;
  EXPECT_NEAR(m, mean, mean * 0.01);
  EXPECT_NEAR(v, variance, variance * 0.1);
}

TEST(Distributions, StandardNormalMoments) {
  Rng rng{47};
  double sum = 0, sumsq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = standard_normal(rng);
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.02);
}

TEST(Distributions, ParetoBoundedBelowByScale) {
  Rng rng{53};
  for (int i = 0; i < 10000; ++i) EXPECT_GE(pareto(rng, 2.0, 1.5), 2.0);
}

TEST(Zipf, FirstRankMostPopular) {
  Rng rng{59};
  ZipfDistribution zipf{100, 1.0};
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
}

TEST(Zipf, ZeroExponentIsUniform) {
  Rng rng{61};
  ZipfDistribution zipf{10, 0.0};
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf(rng)];
  for (const int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.15);
}

TEST(Zipf, RatioFollowsPowerLaw) {
  Rng rng{67};
  ZipfDistribution zipf{1000, 1.0};
  std::vector<int> counts(1000, 0);
  const int n = 500000;
  for (int i = 0; i < n; ++i) ++counts[zipf(rng)];
  // P(0)/P(1) should be ~2 for exponent 1.
  EXPECT_NEAR(static_cast<double>(counts[0]) / counts[1], 2.0, 0.3);
}

TEST(Zipf, EmptyThrows) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
}

TEST(Splitmix, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_NE(first, second);
  std::uint64_t state2 = 0;
  EXPECT_EQ(splitmix64(state2), first);
}

}  // namespace
}  // namespace ace
