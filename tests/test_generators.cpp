#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/metrics.h"
#include "graph/shortest_path.h"

namespace ace {
namespace {

TEST(BarabasiAlbert, NodeAndEdgeCounts) {
  Rng rng{1};
  BaOptions options;
  options.nodes = 500;
  options.edges_per_node = 2;
  const Graph g = barabasi_albert(options, rng);
  EXPECT_EQ(g.node_count(), 500u);
  // seed clique C(3,2)=3 edges + 2 per additional node.
  EXPECT_EQ(g.edge_count(), 3u + 2u * (500 - 3));
}

TEST(BarabasiAlbert, Connected) {
  Rng rng{2};
  BaOptions options;
  options.nodes = 300;
  const Graph g = barabasi_albert(options, rng);
  EXPECT_TRUE(is_connected(g));
}

TEST(BarabasiAlbert, PowerLawDegreeDistribution) {
  Rng rng{3};
  BaOptions options;
  options.nodes = 5000;
  options.edges_per_node = 2;
  const Graph g = barabasi_albert(options, rng);
  // BA theory: exponent ~3. The MLE over a finite graph lands in [2, 4].
  const double alpha = degree_power_law_alpha(g, 3);
  EXPECT_GT(alpha, 2.0);
  EXPECT_LT(alpha, 4.0);
}

TEST(BarabasiAlbert, WeightsWithinRange) {
  Rng rng{4};
  BaOptions options;
  options.nodes = 100;
  options.min_delay = 2.0;
  options.max_delay = 5.0;
  const Graph g = barabasi_albert(options, rng);
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.weight, 2.0);
    EXPECT_LE(e.weight, 5.0);
  }
}

TEST(BarabasiAlbert, RejectsBadParameters) {
  Rng rng{5};
  BaOptions options;
  options.nodes = 2;
  options.edges_per_node = 2;
  EXPECT_THROW(barabasi_albert(options, rng), std::invalid_argument);
  options.edges_per_node = 0;
  EXPECT_THROW(barabasi_albert(options, rng), std::invalid_argument);
}

TEST(BarabasiAlbert, HubsEmerge) {
  Rng rng{6};
  BaOptions options;
  options.nodes = 2000;
  const Graph g = barabasi_albert(options, rng);
  std::size_t max_degree = 0;
  for (NodeId u = 0; u < g.node_count(); ++u)
    max_degree = std::max(max_degree, g.degree(u));
  // Preferential attachment produces hubs far above the mean (~4).
  EXPECT_GT(max_degree, 20u);
}

TEST(Waxman, ConnectedWhenForced) {
  Rng rng{7};
  WaxmanOptions options;
  options.nodes = 200;
  options.force_connected = true;
  const Graph g = waxman(options, rng);
  EXPECT_TRUE(is_connected(g));
}

TEST(Waxman, PositiveWeights) {
  Rng rng{8};
  WaxmanOptions options;
  options.nodes = 150;
  const Graph g = waxman(options, rng);
  for (const Edge& e : g.edges()) EXPECT_GT(e.weight, 0.0);
}

TEST(Waxman, HigherAlphaMoreEdges) {
  Rng rng1{9}, rng2{9};
  WaxmanOptions sparse, dense;
  sparse.nodes = dense.nodes = 200;
  sparse.alpha = 0.05;
  dense.alpha = 0.4;
  sparse.force_connected = dense.force_connected = false;
  EXPECT_LT(waxman(sparse, rng1).edge_count(),
            waxman(dense, rng2).edge_count());
}

TEST(TransitStub, StructureAndConnectivity) {
  Rng rng{10};
  TransitStubOptions options;
  options.transit_nodes = 8;
  options.stubs_per_transit = 3;
  options.nodes_per_stub = 10;
  const Graph g = transit_stub(options, rng);
  EXPECT_EQ(g.node_count(), 8u + 8u * 3u * 10u);
  EXPECT_TRUE(is_connected(g));
}

TEST(TransitStub, IntraStubCheaperThanBackbone) {
  Rng rng{11};
  TransitStubOptions options;
  const Graph g = transit_stub(options, rng);
  // A stub-internal edge weight equals stub_delay, backbone equals
  // transit_delay; the generator must keep the hierarchy.
  bool saw_stub = false, saw_transit = false;
  for (const Edge& e : g.edges()) {
    if (e.weight == options.stub_delay) saw_stub = true;
    if (e.weight == options.transit_delay) saw_transit = true;
  }
  EXPECT_TRUE(saw_stub);
  EXPECT_TRUE(saw_transit);
  EXPECT_LT(options.stub_delay, options.transit_delay);
}

TEST(RandomOverlay, ConnectedWithTargetDegree) {
  Rng rng{12};
  OverlayOptions options;
  options.peers = 400;
  options.mean_degree = 6.0;
  const Graph g = random_overlay(options, rng);
  EXPECT_TRUE(is_connected(g));
  EXPECT_NEAR(g.mean_degree(), 6.0, 1.2);
}

TEST(RandomOverlay, MinDegreeHonored) {
  Rng rng{13};
  OverlayOptions options;
  options.peers = 300;
  options.mean_degree = 4.0;
  options.min_degree = 3;
  const Graph g = random_overlay(options, rng);
  for (NodeId u = 0; u < g.node_count(); ++u) EXPECT_GE(g.degree(u), 3u);
}

TEST(RandomOverlay, Rejections) {
  Rng rng{14};
  OverlayOptions options;
  options.peers = 1;
  EXPECT_THROW(random_overlay(options, rng), std::invalid_argument);
  options.peers = 10;
  options.mean_degree = 0.5;
  EXPECT_THROW(random_overlay(options, rng), std::invalid_argument);
}

TEST(PowerLawOverlay, ConnectedAndSkewed) {
  Rng rng{15};
  OverlayOptions options;
  options.peers = 1000;
  options.mean_degree = 6.0;
  const Graph g = power_law_overlay(options, rng);
  EXPECT_TRUE(is_connected(g));
  std::size_t max_degree = 0;
  for (NodeId u = 0; u < g.node_count(); ++u)
    max_degree = std::max(max_degree, g.degree(u));
  EXPECT_GT(max_degree, 3 * static_cast<std::size_t>(g.mean_degree()));
}

TEST(WattsStrogatz, LatticeWhenNoRewire) {
  Rng rng{16};
  WattsStrogatzOptions options;
  options.nodes = 50;
  options.k = 4;
  options.rewire_prob = 0.0;
  const Graph g = watts_strogatz(options, rng);
  EXPECT_EQ(g.edge_count(), 50u * 4u / 2u);
  for (NodeId u = 0; u < g.node_count(); ++u) EXPECT_EQ(g.degree(u), 4u);
}

TEST(WattsStrogatz, RewiringShortensPaths) {
  Rng rng1{17}, rng2{17}, mrng{18};
  WattsStrogatzOptions lattice, rewired;
  lattice.nodes = rewired.nodes = 300;
  lattice.k = rewired.k = 6;
  lattice.rewire_prob = 0.0;
  rewired.rewire_prob = 0.2;
  const Graph g0 = watts_strogatz(lattice, rng1);
  const Graph g1 = watts_strogatz(rewired, rng2);
  EXPECT_LT(mean_path_length(g1, mrng, 50), mean_path_length(g0, mrng, 50));
}

TEST(WattsStrogatz, Rejections) {
  Rng rng{19};
  WattsStrogatzOptions options;
  options.nodes = 10;
  options.k = 3;  // odd
  EXPECT_THROW(watts_strogatz(options, rng), std::invalid_argument);
  options.k = 10;  // >= n
  EXPECT_THROW(watts_strogatz(options, rng), std::invalid_argument);
}

TEST(ErdosRenyi, EdgeCountNearExpectation) {
  Rng rng{20};
  ErdosRenyiOptions options;
  options.nodes = 200;
  options.edge_prob = 0.05;
  const Graph g = erdos_renyi(options, rng);
  const double expected = 0.05 * 200 * 199 / 2;
  EXPECT_NEAR(static_cast<double>(g.edge_count()), expected, expected * 0.2);
}

TEST(Generators, DeterministicForFixedSeed) {
  Rng a{99}, b{99};
  BaOptions options;
  options.nodes = 200;
  const Graph ga = barabasi_albert(options, a);
  const Graph gb = barabasi_albert(options, b);
  EXPECT_EQ(ga.edges(), gb.edges());
}

}  // namespace
}  // namespace ace
