// Cross-module integration: the full stack (physical topology -> overlay ->
// churn + workload + ACE engine) running together under the discrete-event
// simulator, checking the system-level guarantees the paper claims.
#include <gtest/gtest.h>

#include "ace/p2p_lab.h"

namespace ace {
namespace {

ScenarioConfig scenario_config(std::uint64_t seed = 7) {
  ScenarioConfig config;
  config.physical_nodes = 512;
  config.peers = 96;
  config.mean_degree = 6.0;
  config.catalog.object_count = 200;
  config.catalog.base_replication = 0.15;
  config.catalog.min_replication = 0.02;
  config.seed = seed;
  return config;
}

TEST(Integration, ScopeRetainedAfterFullOptimization) {
  Scenario scenario{scenario_config()};
  AceEngine engine{scenario.overlay(), AceConfig{}};
  const QueryStats before = scenario.measure_blind(30);
  for (int round = 0; round < 10; ++round) engine.step_round(scenario.rng());
  const QueryStats after = scenario.measure(
      ForwardingMode::kTreeRouting, &engine.forwarding(), 30);
  // "while retaining the search scope": tree routing reaches essentially
  // every peer blind flooding reached. A few percent can transiently hide
  // behind stale third-party relay instructions between tree rebuilds;
  // retention is 100% once optimization converges (see EXPERIMENTS.md).
  EXPECT_GE(after.mean_scope(), before.mean_scope() * 0.94);
}

TEST(Integration, TrafficMonotonicallyImprovesOnAverage) {
  Scenario scenario{scenario_config()};
  const StaticRunResult result =
      run_static_optimization(scenario, AceConfig{}, 10, 40);
  // Paper Fig 7: converges within ~10 steps; final well below baseline and
  // the last steps close to each other (converged).
  const double baseline = result.samples.front().traffic;
  const double final_traffic = result.samples.back().traffic;
  EXPECT_LT(final_traffic, baseline * 0.8);
  const double second_last = result.samples[result.samples.size() - 2].traffic;
  EXPECT_NEAR(final_traffic, second_last, baseline * 0.15);
}

TEST(Integration, DeterministicEndToEnd) {
  auto run = [] {
    Scenario scenario{scenario_config()};
    AceEngine engine{scenario.overlay(), AceConfig{}};
    for (int round = 0; round < 3; ++round) engine.step_round(scenario.rng());
    return scenario
        .measure(ForwardingMode::kTreeRouting, &engine.forwarding(), 20)
        .mean_traffic();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Integration, ChurnWithAceKeepsServingQueries) {
  Simulator sim;
  Scenario scenario{scenario_config(11)};
  Rng churn_rng = scenario.rng().fork();
  Rng ace_rng = scenario.rng().fork();
  Rng query_rng = scenario.rng().fork();

  AceEngine engine{scenario.overlay(), AceConfig{}};
  ChurnConfig churn_config;
  churn_config.mean_lifetime_s = 60.0;
  churn_config.lifetime_variance = 30.0;
  ChurnDriver churn{scenario.overlay(), sim, churn_rng, churn_config};
  churn.on_join = [&](PeerId p) { engine.on_peer_join(p); };
  churn.on_leave = [&](PeerId p, std::span<const PeerId> dropped) {
    engine.on_peer_leave(p, dropped);
  };
  churn.start();

  sim.every(10.0, [&](SimTime) { engine.step_round(ace_rng); });

  std::size_t queries = 0;
  QueryStats stats;
  sim.every(3.0, [&](SimTime) {
    const PeerId source = scenario.overlay().random_online_peer(query_rng);
    const ObjectId object = scenario.catalog().sample_object(query_rng);
    stats.add(run_query(scenario.overlay(), source, object, scenario.oracle(),
                        ForwardingMode::kTreeRouting, &engine.forwarding()));
    ++queries;
  });

  sim.run_until(240.0);
  EXPECT_GT(churn.leaves(), 20u);
  EXPECT_EQ(stats.queries(), queries);
  // Population constant; queries keep reaching a large share of the
  // overlay despite churn (repair + fallback flooding for stale trees).
  EXPECT_EQ(scenario.overlay().online_count(), 96u);
  EXPECT_GT(stats.mean_scope(), 96.0 * 0.6);
}

TEST(Integration, AceAndAotoBothBeatBlindAceWins) {
  Scenario ace_scenario{scenario_config(13)};
  Scenario aoto_scenario{scenario_config(13)};

  const double blind = ace_scenario.measure_blind(40).mean_traffic();

  AceConfig ace_config;
  ace_config.optimizer.policy = ReplacementPolicy::kClosest;
  AceEngine ace_engine{ace_scenario.overlay(), ace_config};
  for (int round = 0; round < 8; ++round)
    ace_engine.step_round(ace_scenario.rng());
  const double ace_traffic =
      ace_scenario
          .measure(ForwardingMode::kTreeRouting, &ace_engine.forwarding(), 40)
          .mean_traffic();

  AotoEngine aoto_engine{aoto_scenario.overlay(), AotoConfig{}};
  for (int round = 0; round < 8; ++round)
    aoto_engine.step_round(aoto_scenario.rng());
  const double aoto_traffic =
      aoto_scenario
          .measure(ForwardingMode::kTreeRouting, &aoto_engine.forwarding(),
                   40)
          .mean_traffic();

  // Both optimizers clearly beat blind flooding; ACE reaches a deep cut.
  // (The paper presents ACE as the refinement of its own AOTO design, not
  // as a head-to-head winner, and at this toy scale the two are close.)
  EXPECT_LT(ace_traffic, blind * 0.75);
  EXPECT_LT(aoto_traffic, blind);
  EXPECT_LT(ace_traffic, aoto_traffic * 1.2);
}

TEST(Integration, DistanceCacheServesWholeExperiment) {
  ScenarioConfig config = scenario_config();
  config.distance_cache_rows = 32;  // tiny cache must still be correct
  Scenario scenario{config};
  AceEngine engine{scenario.overlay(), AceConfig{}};
  engine.step_round(scenario.rng());
  const QueryStats stats = scenario.measure(
      ForwardingMode::kTreeRouting, &engine.forwarding(), 10);
  EXPECT_GT(stats.mean_scope(), 0.0);
  EXPECT_LE(scenario.physical().rows_cached(), 32u);
}

}  // namespace
}  // namespace ace
