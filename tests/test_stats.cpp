#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ace {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsCombinedStream) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  RunningStats small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 2);
  for (int i = 0; i < 1000; ++i) large.add(i % 2);
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Percentile, MedianOfOddSample) {
  const std::vector<double> v{3, 1, 2};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 2.0);
}

TEST(Percentile, Extremes) {
  const std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75), 7.5);
}

TEST(Percentile, Rejections) {
  const std::vector<double> empty;
  EXPECT_THROW(percentile(empty, 50), std::invalid_argument);
  const std::vector<double> v{1.0};
  EXPECT_THROW(percentile(v, -1), std::invalid_argument);
  EXPECT_THROW(percentile(v, 101), std::invalid_argument);
}

TEST(HistogramTest, CountsFallInCorrectBins) {
  Histogram h{0, 10, 5};
  h.add(0.5);   // bin 0
  h.add(3.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, OutOfRangeClamped) {
  Histogram h{0, 10, 5};
  h.add(-100);
  h.add(1e9);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
}

TEST(HistogramTest, BinEdges) {
  Histogram h{0, 10, 5};
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_THROW(h.bin_lo(5), std::out_of_range);
}

TEST(HistogramTest, InvalidConstruction) {
  EXPECT_THROW(Histogram(5, 5, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(0, 10, 0), std::invalid_argument);
}

TEST(HistogramTest, AsciiRendersOneLinePerBin) {
  Histogram h{0, 4, 4};
  h.add(1);
  const std::string art = h.ascii();
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
}

TEST(LinearFitTest, PerfectLine) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{3, 5, 7, 9};  // y = 1 + 2x
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(LinearFitTest, NoisyLineStillCloseFit) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i);
    ys.push_back(2.0 * i + ((i % 2) ? 0.5 : -0.5));
  }
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 0.01);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(LinearFitTest, Rejections) {
  const std::vector<double> one{1.0};
  EXPECT_THROW(linear_fit(one, one), std::invalid_argument);
  const std::vector<double> two{1.0, 2.0};
  const std::vector<double> three{1.0, 2.0, 3.0};
  EXPECT_THROW(linear_fit(two, three), std::invalid_argument);
}

TEST(PowerLawMle, RecoversExponentOfSyntheticSample) {
  // Degrees drawn from P(k) ~ k^-2.5 via inverse transform on a dense grid.
  std::vector<std::size_t> degrees;
  for (std::size_t k = 2; k <= 200; ++k) {
    const double p = std::pow(static_cast<double>(k), -2.5);
    const auto count = static_cast<std::size_t>(p * 2e6);
    for (std::size_t i = 0; i < count; ++i) degrees.push_back(k);
  }
  const double alpha = power_law_alpha_mle(degrees, 2);
  EXPECT_NEAR(alpha, 2.5, 0.15);
}

TEST(PowerLawMle, DegenerateReturnsZero) {
  const std::vector<std::size_t> tiny{1, 1, 1};
  EXPECT_DOUBLE_EQ(power_law_alpha_mle(tiny, 2), 0.0);
}

TEST(FrequencyTable, CountsOccurrences) {
  const std::vector<std::size_t> v{1, 2, 2, 3, 3, 3};
  const auto freq = frequency_table(v);
  EXPECT_EQ(freq.at(1), 1u);
  EXPECT_EQ(freq.at(2), 2u);
  EXPECT_EQ(freq.at(3), 3u);
  EXPECT_EQ(freq.size(), 3u);
}

}  // namespace
}  // namespace ace
