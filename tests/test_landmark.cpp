#include "baselines/landmark.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/shortest_path.h"

namespace ace {
namespace {

PhysicalNetwork line_network(std::size_t hosts = 64) {
  Graph g{hosts};
  for (NodeId u = 0; u + 1 < hosts; ++u) g.add_edge(u, u + 1, 1.0);
  return PhysicalNetwork{std::move(g)};
}

TEST(Landmark, CoordinatesAreLandmarkDelays) {
  PhysicalNetwork net = line_network();
  const std::vector<HostId> peers{HostId{0}, HostId{10}, HostId{20}};
  const std::vector<HostId> landmarks{HostId{5}, HostId{30}};
  const auto coords = landmark_coordinates(net, peers, landmarks);
  ASSERT_EQ(coords.size(), 3u);
  EXPECT_DOUBLE_EQ(coords[0][0], 5.0);   // host 0 -> landmark 5
  EXPECT_DOUBLE_EQ(coords[0][1], 30.0);  // host 0 -> landmark 30
  EXPECT_DOUBLE_EQ(coords[1][0], 5.0);   // host 10 -> landmark 5
  EXPECT_DOUBLE_EQ(coords[2][1], 10.0);  // host 20 -> landmark 30
}

TEST(Landmark, CoordinateDistanceEuclidean) {
  const std::vector<Weight> a{0.0, 3.0};
  const std::vector<Weight> b{4.0, 0.0};
  EXPECT_DOUBLE_EQ(coordinate_distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(coordinate_distance(a, a), 0.0);
  const std::vector<Weight> c{1.0};
  EXPECT_THROW(coordinate_distance(a, c), std::invalid_argument);
}

TEST(Landmark, BuildsOverlayWithProximityLinks) {
  PhysicalNetwork net = line_network(128);
  Rng rng{3};
  std::vector<HostId> peer_hosts;
  for (std::uint32_t h = 0; h < 128; h += 4) peer_hosts.push_back(HostId{h});
  LandmarkConfig config;
  config.landmarks = 4;
  config.proximity_links = 3;
  OverlayNetwork overlay =
      build_landmark_overlay(net, peer_hosts, config, rng);
  EXPECT_EQ(overlay.peer_count(), peer_hosts.size());
  for (PeerId p{0}; p < overlay.peer_count(); ++p)
    EXPECT_GE(overlay.degree(p), 1u);
}

TEST(Landmark, ProximityLinksArePhysicallyShort) {
  // On a line topology, landmark coordinates recover physical positions,
  // so proximity links should be much shorter than random ones.
  PhysicalNetwork net = line_network(128);
  Rng rng{5};
  std::vector<HostId> peer_hosts;
  for (std::uint32_t h = 0; h < 128; h += 2) peer_hosts.push_back(HostId{h});
  LandmarkConfig config;
  config.landmarks = 4;
  config.proximity_links = 3;
  OverlayNetwork clustered =
      build_landmark_overlay(net, peer_hosts, config, rng);

  Rng rng2{5};
  OverlayOptions oo;
  oo.peers = peer_hosts.size();
  oo.mean_degree = 6.0;
  const Graph random_logical = random_overlay(oo, rng2);
  OverlayNetwork random{net, random_logical, peer_hosts};

  const double clustered_mean =
      clustered.logical().total_weight() /
      static_cast<double>(clustered.logical().edge_count());
  const double random_mean =
      random.logical().total_weight() /
      static_cast<double>(random.logical().edge_count());
  EXPECT_LT(clustered_mean, random_mean / 4);
}

TEST(Landmark, PureSchemeCanPartition) {
  // The paper's critique: clustering by coordinates may shrink the search
  // scope. With zero random links on a line, far-apart clusters have no
  // reason to interconnect. We only require the builder not to hide it —
  // either connected or not, the component structure must be measurable.
  PhysicalNetwork net = line_network(128);
  Rng rng{7};
  std::vector<HostId> peer_hosts;
  for (std::uint32_t h = 0; h < 128; h += 2) peer_hosts.push_back(HostId{h});
  LandmarkConfig config;
  config.landmarks = 4;
  config.proximity_links = 2;
  config.random_links = 0;
  OverlayNetwork overlay =
      build_landmark_overlay(net, peer_hosts, config, rng);
  const auto labels = connected_components(overlay.logical());
  const auto max_label = *std::max_element(labels.begin(), labels.end());
  // At least one component; random links stitch things up when requested.
  EXPECT_GE(max_label + 1, 1u);

  Rng rng3{7};
  LandmarkConfig stitched = config;
  stitched.random_links = 2;
  OverlayNetwork repaired =
      build_landmark_overlay(net, peer_hosts, stitched, rng3);
  const auto labels2 = connected_components(repaired.logical());
  const auto components2 =
      *std::max_element(labels2.begin(), labels2.end()) + 1;
  EXPECT_LE(components2, max_label + 1);
}

TEST(Landmark, Rejections) {
  PhysicalNetwork net = line_network();
  Rng rng{9};
  const std::vector<HostId> peers{HostId{0}, HostId{1}};
  LandmarkConfig config;
  config.landmarks = 0;
  EXPECT_THROW(build_landmark_overlay(net, peers, config, rng),
               std::invalid_argument);
  config.landmarks = 2;
  const std::vector<HostId> one{HostId{0}};
  EXPECT_THROW(build_landmark_overlay(net, one, config, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace ace
