// The determinism contract of the parallel trial runner: the thread count
// changes wall-clock time and nothing else. Verified three ways — the
// depth sweep (samples AND digest-trace bytes) at 1/2/8 workers, exception
// propagation with pool survival, and the delay-oracle LRU row cache whose
// evictions must never change query results.
#include "core/trial_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "core/experiment.h"
#include "graph/generators.h"
#include "net/physical_network.h"
#include "util/digest.h"

namespace ace {
namespace {

ScenarioConfig sweep_scenario() {
  ScenarioConfig config;
  config.physical_nodes = 256;
  config.peers = 64;
  config.mean_degree = 6.0;
  config.catalog.object_count = 100;
  config.catalog.base_replication = 0.2;
  config.catalog.min_replication = 0.05;
  config.seed = 99;
  return config;
}

TEST(TrialRunner, ResultsLandInIndexOrder) {
  TrialRunner runner{4};
  EXPECT_EQ(runner.thread_count(), 4u);
  const std::vector<std::uint32_t> results =
      runner.run(32, [](TrialIndex i) { return i.value() * i.value(); });
  ASSERT_EQ(results.size(), 32u);
  for (std::size_t i = 0; i < results.size(); ++i)
    EXPECT_EQ(results[i], i * i);
}

TEST(TrialRunner, SingleThreadRunsInline) {
  TrialRunner runner{1};
  EXPECT_EQ(runner.thread_count(), 1u);
  std::size_t calls = 0;
  // ace-lint: allow(worker-shared-write): runner{1} runs inline on the caller thread
  runner.run_indexed(5, [&](TrialIndex) { ++calls; });
  EXPECT_EQ(calls, 5u);
}

TEST(TrialRunner, ZeroThreadsPicksHardwareConcurrency) {
  TrialRunner runner{0};
  EXPECT_GE(runner.thread_count(), 1u);
}

TEST(TrialRunner, EmptyRunIsANoOp) {
  TrialRunner runner{2};
  std::atomic<std::size_t> bodies_run{0};
  runner.run_indexed(0, [&](TrialIndex) { ++bodies_run; });
  EXPECT_EQ(bodies_run.load(), 0u);
}

// The tentpole guarantee: run_depth_sweep merges per-trial samples and
// digest-trace rows in trial-index order, so both the numbers and the
// trace CSV are byte-identical at every worker count.
TEST(TrialRunner, DepthSweepIsThreadCountInvariant) {
  const std::vector<std::uint32_t> depths{1, 2, 3, 4};
  DigestTrace sequential_trace;
  const auto sequential =
      run_depth_sweep(sweep_scenario(), AceConfig{}, depths, 4, 20,
                      &sequential_trace, {}, /*threads=*/1);
  ASSERT_EQ(sequential.size(), depths.size());
  ASSERT_GT(sequential_trace.rows(), 0u);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    DigestTrace trace;
    const auto parallel =
        run_depth_sweep(sweep_scenario(), AceConfig{}, depths, 4, 20, &trace,
                        {}, threads);
    ASSERT_EQ(parallel.size(), sequential.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < sequential.size(); ++i) {
      EXPECT_EQ(parallel[i].h, sequential[i].h);
      EXPECT_DOUBLE_EQ(parallel[i].traffic_blind, sequential[i].traffic_blind);
      EXPECT_DOUBLE_EQ(parallel[i].traffic_ace, sequential[i].traffic_ace);
      EXPECT_DOUBLE_EQ(parallel[i].reduction_rate,
                       sequential[i].reduction_rate);
      EXPECT_DOUBLE_EQ(parallel[i].overhead_per_round,
                       sequential[i].overhead_per_round);
      EXPECT_DOUBLE_EQ(parallel[i].gain_per_query,
                       sequential[i].gain_per_query);
      // Each trial owns its oracle, so cache behavior is per-depth
      // deterministic too.
      EXPECT_EQ(parallel[i].oracle_cache.hits, sequential[i].oracle_cache.hits);
      EXPECT_EQ(parallel[i].oracle_cache.misses,
                sequential[i].oracle_cache.misses);
    }
    // Byte-identical merged digest trace — the property
    // tools/determinism_check.py asserts across processes.
    EXPECT_EQ(trace.csv(), sequential_trace.csv()) << "threads=" << threads;
  }
}

TEST(TrialRunner, FirstExceptionRethrownOnCaller) {
  TrialRunner runner{4};
  std::atomic<std::size_t> completed{0};
  try {
    runner.run_indexed(16, [&](TrialIndex i) {
      if (i == 3) throw std::runtime_error{"trial 3 failed"};
      completed.fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "trial 3 failed");
  }
  // In-flight trials finished, unclaimed ones were skipped; either way no
  // more than the 15 non-throwing bodies ran.
  EXPECT_LE(completed.load(), 15u);
}

TEST(TrialRunner, PoolSurvivesExceptionAndStaysUsable) {
  TrialRunner runner{4};
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(runner.run_indexed(
                     8, [](TrialIndex i) {
                       if (i.value() % 2 == 1) throw std::invalid_argument{"odd"};
                     }),
                 std::invalid_argument);
    const std::vector<std::size_t> ok =
        runner.run(8, [](TrialIndex i) { return i.value() + std::size_t{1}; });
    ASSERT_EQ(ok.size(), 8u);
    for (std::size_t i = 0; i < ok.size(); ++i) EXPECT_EQ(ok[i], i + 1);
  }
}

// The cache policy the runner relies on (each trial's private oracle may
// evict under memory pressure): an evicted row recomputes to values
// identical to an uncapped oracle's.
TEST(TrialRunner, EvictedOracleRowsRecomputeIdentically) {
  Rng rng{5};
  BaOptions options;
  options.nodes = 96;
  const Graph g = barabasi_albert(options, rng);
  PhysicalNetwork capped{g, /*max_cached_rows=*/2};
  PhysicalNetwork unlimited{g, /*max_cached_rows=*/0, /*max_cache_bytes=*/0};

  // Walk enough distinct source rows to force evictions in the capped
  // oracle (row 0 included, so it is certainly evicted along the way).
  for (std::uint32_t a = 0; a < 16; ++a) {
    ASSERT_DOUBLE_EQ(capped.delay(HostId{a}, HostId{(a + 7) % 96}),
                     unlimited.delay(HostId{a}, HostId{(a + 7) % 96}));
  }
  const RowCacheStats stats = capped.row_cache_stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.rows, 2u);

  // Re-query every evicted row: recomputation must be value-identical.
  for (std::uint32_t b = 0; b < 96; ++b)
    EXPECT_DOUBLE_EQ(capped.delay(HostId{0}, HostId{b}),
                     unlimited.delay(HostId{0}, HostId{b}));
  EXPECT_GT(capped.row_cache_stats().misses, stats.misses);
}

}  // namespace
}  // namespace ace
