// Parallel query measurement (DESIGN.md §16): sample_queries pre-draws the
// (source, object) sequence sequentially, fans the independent run_query
// calls over the TrialRunner pool's lanes into index-ordered result slots,
// and replays QueryStats::add in canonical query order. These tests pin
// that contract: replayed adds reproduce the sequential aggregate exactly,
// digest traces are byte-identical at any lane count in ideal and lossy
// modes, and the *Stress* suite behind the tsan.query_parallel ctest entry
// cycles the lane pool enough for ThreadSanitizer to observe it.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ace/engine.h"
#include "core/experiment.h"
#include "core/trial_runner.h"
#include "graph/generators.h"
#include "search/flooding.h"
#include "transport/transport.h"
#include "util/digest.h"

namespace ace {
namespace {

// Mismatched overlay over a BA physical topology (the test_engine shape).
struct Fixture {
  explicit Fixture(std::size_t hosts = 256, std::size_t peers = 48,
                   double degree = 5.0, std::uint64_t seed = 3) {
    Rng topo{seed};
    BaOptions ba;
    ba.nodes = hosts;
    physical = std::make_unique<PhysicalNetwork>(barabasi_albert(ba, topo));
    OverlayOptions oo;
    oo.peers = peers;
    oo.mean_degree = degree;
    const Graph logical = random_overlay(oo, topo);
    const auto host_list = assign_hosts_uniform(*physical, peers, topo);
    overlay = std::make_unique<OverlayNetwork>(*physical, logical, host_list);
  }
  std::unique_ptr<PhysicalNetwork> physical;
  std::unique_ptr<OverlayNetwork> overlay;
};

// Property: an aggregate assembled by replaying per-query add() calls in
// canonical order digests identically to the sequential loop's, and a
// merge() of order-contiguous shards reproduces the same counts/means to
// within FP tolerance (merge uses the parallel-Welford combine, so its
// variance bytes may differ — which is exactly why the parallel path
// replays add() instead of merging shards).
TEST(QueryParallel, ReplayedAddsMatchSequentialAggregate) {
  for (const std::uint64_t seed : {5u, 19u, 83u}) {
    Fixture f{192, 40, 5.0, seed};
    const ObjectCatalog catalog{CatalogConfig{}};
    const CatalogOracle oracle{catalog};

    // Sequential reference and its per-query results.
    Rng rng_a{seed * 13 + 1};
    QueryScratch scratch;
    scratch.reserve(f.overlay->peer_count());
    std::vector<QueryResult> results;
    QueryStats sequential;
    for (std::size_t q = 0; q < 60; ++q) {
      const PeerId source = f.overlay->random_online_peer(rng_a);
      const ObjectId object = catalog.sample_object(rng_a);
      QueryResult result;
      run_query_into(*f.overlay, source, object, oracle,
                     ForwardingMode::kBlindFlooding, nullptr, {}, scratch,
                     result);
      results.push_back(result);
      sequential.add(result);
    }

    // Replayed add() in canonical order: byte-identical digest.
    QueryStats replayed;
    for (const QueryResult& result : results) replayed.add(result);
    EXPECT_EQ(sequential.digest(), replayed.digest()) << "seed " << seed;

    // Sharded merge(): same counts, means within FP tolerance.
    QueryStats merged;
    QueryStats shard;
    for (std::size_t q = 0; q < results.size(); ++q) {
      shard.add(results[q]);
      if ((q + 1) % 16 == 0 || q + 1 == results.size()) {
        merged.merge(shard);
        shard = QueryStats{};
      }
    }
    EXPECT_EQ(merged.queries(), sequential.queries());
    EXPECT_NEAR(merged.mean_traffic(), sequential.mean_traffic(),
                1e-9 * (1 + sequential.mean_traffic()));
    EXPECT_NEAR(merged.mean_scope(), sequential.mean_scope(),
                1e-9 * (1 + sequential.mean_scope()));
    EXPECT_NEAR(merged.mean_response_time(), sequential.mean_response_time(),
                1e-9 * (1 + sequential.mean_response_time()));
  }
}

// The parallel sample_queries path must produce a byte-identical aggregate
// (and identical caller-rng consumption) to the sequential path.
TEST(QueryParallel, ParallelSampleQueriesDigestsEqualSequential) {
  Fixture f{192, 40, 5.0, 7};
  const ObjectCatalog catalog{CatalogConfig{}};
  const CatalogOracle oracle{catalog};
  // 300 queries > 2*kQueryChunk, so the chunked path wraps at least twice.
  const std::size_t count = 300;

  Rng rng_seq{991};
  const QueryStats sequential =
      sample_queries(*f.overlay, catalog, oracle,
                     ForwardingMode::kBlindFlooding, nullptr, count, rng_seq);
  // Peek the sequential path's next draw without advancing rng_seq, so
  // every lane count below is compared against the same expectation.
  Rng probe = rng_seq;
  const std::uint64_t expected_next = probe.next();

  for (const std::size_t lanes : {2u, 8u}) {
    Rng rng_par{991};
    TrialRunner pool{lanes};
    QueryLanes lane_scratch;
    const QueryStats parallel = sample_queries(
        *f.overlay, catalog, oracle, ForwardingMode::kBlindFlooding, nullptr,
        count, rng_par, {}, nullptr, &pool, &lane_scratch);
    EXPECT_EQ(sequential.digest(), parallel.digest()) << lanes << " lanes";
    EXPECT_EQ(parallel.queries(), count);
    // Both paths must have drawn the same rng sequence.
    EXPECT_EQ(expected_next, rng_par.next()) << lanes << " lanes";
  }
}

// Full scenario trace (ACE rounds + measurement digest rows) for `lanes`
// query lanes, ideal or lossy transport — the in-process twin of the
// quickstart-query-intra determinism entry.
std::string trace_for(std::size_t lanes, bool lossy,
                      std::size_t rounds = 3) {
  ScenarioConfig config;
  config.physical_nodes = 192;
  config.peers = 48;
  config.mean_degree = 5.0;
  config.seed = 77;
  Scenario scenario{config};

  TrialRunner pool{lanes};
  if (lanes > 1) scenario.set_query_subtasks(&pool);

  DigestTrace trace;
  trace.record("measure-blind", "query-stats",
               scenario.measure_blind(120).digest());

  AceConfig ace;
  ace.transport = lossy ? TransportMode::kLossy : TransportMode::kIdeal;
  AceEngine engine{scenario.overlay(), ace};
  if (lanes > 1) engine.set_subtask_runner(&pool);
  Simulator sim;
  std::unique_ptr<Transport> wire;
  if (lossy) {
    TransportConfig tc;
    tc.mode = TransportMode::kLossy;
    tc.faults.drop_probability = 0.05;
    tc.faults.extra_jitter_max_s = 0.5;
    wire = std::make_unique<Transport>(sim, scenario.overlay(),
                                       scenario.guids(), tc,
                                       Rng::stream(config.seed, "transport"));
    engine.attach_transport(wire.get());
  }
  for (std::size_t r = 1; r <= rounds; ++r) {
    (void)engine.step_round(scenario.rng());
    if (lossy) sim.run_all();
    trace.record("round-" + std::to_string(r),
                 engine.state_digest(lossy ? &sim : nullptr));
  }
  trace.record("measure-ace", "query-stats",
               scenario.measure(ForwardingMode::kTreeRouting,
                                &engine.forwarding(), 120)
                   .digest());
  scenario.set_query_subtasks(nullptr);
  return trace.csv();
}

// Tentpole acceptance, in-process: measurement digest rows bracket the
// round trace and the whole file is byte-identical at 1, 2, and 8 lanes.
TEST(QueryParallel, TraceBytesIdenticalAcrossLaneCountsIdeal) {
  const std::string sequential = trace_for(1, /*lossy=*/false);
  ASSERT_FALSE(sequential.empty());
  EXPECT_EQ(sequential, trace_for(2, false));
  EXPECT_EQ(sequential, trace_for(8, false));
}

// Same through the lossy transport: the measurement runs against a
// transport-perturbed overlay, and its digest rows must still replay.
TEST(QueryParallel, TraceBytesIdenticalAcrossLaneCountsLossy) {
  const std::string sequential = trace_for(1, /*lossy=*/true);
  ASSERT_FALSE(sequential.empty());
  EXPECT_EQ(sequential, trace_for(2, true));
  EXPECT_EQ(sequential, trace_for(8, true));
}

// Stress workload for ThreadSanitizer (tsan.query_parallel repeats this
// suite 10 times): fresh 8-lane pool per repetition, chunked parallel
// measurement over both forwarding modes, so lane scratches, result slots,
// and the pool's job lifecycle cycle repeatedly.
TEST(QueryParallelStress, RepeatedParallelMeasurementIsRaceFree) {
  for (std::uint64_t rep = 0; rep < 4; ++rep) {
    Fixture f{128, 32, 5.0, 50 + rep};
    const ObjectCatalog catalog{CatalogConfig{}};
    const CatalogOracle oracle{catalog};
    TrialRunner pool{8};
    QueryLanes lanes;
    Rng rng{rep + 1};
    (void)sample_queries(*f.overlay, catalog, oracle,
                         ForwardingMode::kBlindFlooding, nullptr, 200, rng,
                         {}, nullptr, &pool, &lanes);
    AceEngine engine{*f.overlay, AceConfig{}};
    engine.set_subtask_runner(&pool);
    (void)engine.rebuild_all_trees();
    (void)sample_queries(*f.overlay, catalog, oracle,
                         ForwardingMode::kTreeRouting, &engine.forwarding(),
                         200, rng, {}, nullptr, &pool, &lanes);
  }
}

}  // namespace
}  // namespace ace
