#include "baselines/aoto.h"

#include <gtest/gtest.h>

#include <memory>

#include "graph/generators.h"
#include "graph/shortest_path.h"

namespace ace {
namespace {

struct Fixture {
  explicit Fixture(std::uint64_t seed = 3) {
    Rng topo{seed};
    BaOptions ba;
    ba.nodes = 256;
    physical = std::make_unique<PhysicalNetwork>(barabasi_albert(ba, topo));
    OverlayOptions oo;
    oo.peers = 48;
    oo.mean_degree = 5.0;
    const Graph logical = random_overlay(oo, topo);
    const auto hosts = assign_hosts_uniform(*physical, oo.peers, topo);
    overlay = std::make_unique<OverlayNetwork>(*physical, logical, hosts);
  }
  std::unique_ptr<PhysicalNetwork> physical;
  std::unique_ptr<OverlayNetwork> overlay;
  Rng rng{23};
};

TEST(Aoto, RoundInstallsForwardingEntries) {
  Fixture f;
  AotoEngine engine{*f.overlay, AotoConfig{}};
  const AotoRoundReport report = engine.step_round(f.rng);
  EXPECT_EQ(report.peers_stepped, f.overlay->online_count());
  EXPECT_GT(engine.forwarding().entries(), 0u);
  EXPECT_GT(report.total_overhead(), 0.0);
}

TEST(Aoto, ReducesTotalLinkCost) {
  Fixture f;
  const double before = f.overlay->logical().total_weight();
  AotoEngine engine{*f.overlay, AotoConfig{}};
  for (int round = 0; round < 8; ++round) engine.step_round(f.rng);
  EXPECT_LT(f.overlay->logical().total_weight(), before);
}

TEST(Aoto, PreservesConnectivity) {
  Fixture f;
  ASSERT_TRUE(is_connected(f.overlay->logical()));
  AotoEngine engine{*f.overlay, AotoConfig{}};
  for (int round = 0; round < 8; ++round) {
    engine.step_round(f.rng);
    EXPECT_TRUE(is_connected(f.overlay->logical())) << "round " << round;
  }
}

TEST(Aoto, HandoverMovesVictimToAdopter) {
  // P at host 0 with flooding neighbor F (host 1) and a far non-flooding
  // neighbor V (host 20) that F can also reach cheaply through the overlay
  // triangle. AOTO hands V over to F.
  Graph g{32};
  for (NodeId u = 0; u + 1 < 32; ++u) g.add_edge(u, u + 1, 1.0);
  PhysicalNetwork physical{std::move(g)};
  OverlayNetwork overlay{physical};
  const PeerId p = overlay.add_peer(HostId{0});
  const PeerId f_peer = overlay.add_peer(HostId{1});
  const PeerId v = overlay.add_peer(HostId{20});
  overlay.connect(p, f_peer);   // cost 1 (flooding: on MST)
  overlay.connect(p, v);        // cost 20
  overlay.connect(f_peer, v);   // cost 19 -> MST keeps p-f, f-v
  Rng rng{5};
  AotoEngine engine{overlay, AotoConfig{}};
  AotoRoundReport report;
  engine.step_peer(p, rng, report);
  EXPECT_EQ(report.cuts, 1u);
  EXPECT_FALSE(overlay.are_connected(p, v));
  EXPECT_TRUE(overlay.are_connected(f_peer, v));
}

TEST(Aoto, MinDegreeGuardBlocksCut) {
  Graph g{32};
  for (NodeId u = 0; u + 1 < 32; ++u) g.add_edge(u, u + 1, 1.0);
  PhysicalNetwork physical{std::move(g)};
  OverlayNetwork overlay{physical};
  const PeerId p = overlay.add_peer(HostId{0});
  const PeerId f_peer = overlay.add_peer(HostId{1});
  const PeerId v = overlay.add_peer(HostId{20});
  overlay.connect(p, f_peer);
  overlay.connect(p, v);
  overlay.connect(f_peer, v);
  AotoConfig config;
  config.min_degree = 2;  // v has degree 2; a cut would leave it at 1... but
  // the adopter link keeps it at 2, so the guard looks at pre-cut degree.
  Rng rng{5};
  AotoEngine engine{overlay, config};
  AotoRoundReport report;
  engine.step_peer(p, rng, report);
  // degree(v) == 2 == min_degree -> not eligible as victim.
  EXPECT_EQ(report.cuts, 0u);
  EXPECT_TRUE(overlay.are_connected(p, v));
}

TEST(Aoto, ReportMerge) {
  AotoRoundReport a, b;
  a.cuts = 1;
  a.adds = 2;
  a.peers_stepped = 3;
  b.cuts = 4;
  b.adds = 5;
  b.peers_stepped = 6;
  b.phase1.probe_traffic = 7.0;
  a.merge(b);
  EXPECT_EQ(a.cuts, 5u);
  EXPECT_EQ(a.adds, 7u);
  EXPECT_EQ(a.peers_stepped, 9u);
  EXPECT_DOUBLE_EQ(a.phase1.probe_traffic, 7.0);
}

}  // namespace
}  // namespace ace
