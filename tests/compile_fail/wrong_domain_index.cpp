// An IdVector is indexable only by its own domain: a per-peer array indexed
// with a closure-local id was exactly the silent off-by-a-domain bug the
// typed containers exist to stop.
#include "util/strong_id.h"

using ace::IdVector;
using ace::LocalNodeId;
using ace::PeerId;

double lookup(const IdVector<PeerId, double>& per_peer, LocalNodeId local) {
#ifdef COMPILE_FAIL
  return per_peer[local];  // wrong-domain index must not compile
#else
  (void)local;
  return per_peer[PeerId{0}];
#endif
}
