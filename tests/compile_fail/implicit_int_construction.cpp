// Raw integers do not silently become ids: construction is explicit, so
// every raw->domain crossing is visible (and lintable) at the call site.
#include "util/strong_id.h"

using ace::PeerId;

double link_cost(PeerId a, PeerId b) {
  return a.value() < b.value() ? 1.0 : 2.0;
}

double probe() {
#ifdef COMPILE_FAIL
  return link_cost(0, 1);  // int literals must not convert to PeerId
#else
  return link_cost(PeerId{0}, PeerId{1});
#endif
}
