// A peer id must not be assignable from a host id — the Fig. 2 mismatch
// bug class: treating an overlay slot as a physical vertex. The control
// build proves the file is otherwise well-formed.
#include "util/strong_id.h"

using ace::HostId;
using ace::PeerId;

PeerId convert(HostId h) {
#ifdef COMPILE_FAIL
  PeerId p = h;  // cross-domain copy-init must not compile
  return p;
#else
  // The sanctioned route: go through the raw value, explicitly.
  // ace-id: boundary(compile-fail control demonstrates the explicit route)
  return PeerId{h.value()};
#endif
}
