// The only arithmetic an index supports is increment and +/- offset within
// its domain. Multiplication and cross-id sums are meaningless on ids and
// must not compile; do the math on .value() when a formula needs it.
#include "util/strong_id.h"

using ace::PeerId;

unsigned spread(PeerId p, PeerId q) {
#ifdef COMPILE_FAIL
  const PeerId scaled = p * 2;  // no multiplication on ids
  const PeerId sum = p + q;     // no id-plus-id (difference IS allowed)
  return scaled.value() + sum.value();
#else
  return p.value() * 2 + q.value();
#endif
}
