// Ids from different domains are never comparable, even when both wrap the
// same underlying integer: peer 3 and host 3 are unrelated entities.
#include "util/strong_id.h"

using ace::HostId;
using ace::PeerId;

bool same_slot(PeerId p, HostId h) {
#ifdef COMPILE_FAIL
  return p == h;  // cross-domain comparison must not compile
#else
  return p.value() == h.value();  // raw comparison is a deliberate choice
#endif
}
