// Ids do not silently decay back to integers: indexing a raw vector or
// passing an id where a count is expected requires an explicit .value(),
// keeping the domain->kernel boundary visible.
#include <cstdint>
#include <vector>

#include "util/strong_id.h"

using ace::PeerId;

double pick(const std::vector<double>& raw, PeerId p) {
#ifdef COMPILE_FAIL
  const std::uint32_t i = p;  // no implicit conversion to the underlying
  return raw[i];
#else
  return raw[p.value()];
#endif
}
