# Negative-compile harness driver (ctest: lint.compile_fail). Each fixture
# in this directory encodes one id-domain misuse under #ifdef COMPILE_FAIL
# next to the sanctioned alternative. Every fixture is compiled twice with
# -fsyntax-only:
#   * control build (no define)  — MUST succeed: the file is well-formed
#     and the "right way" shown in the #else branch actually compiles;
#   * -DCOMPILE_FAIL build       — MUST fail: the misuse is rejected by the
#     type system, not by luck.
# A fixture whose control fails, or whose misuse compiles, fails the test —
# so the harness cannot rot into vacuously "passing" on broken fixtures.
#
# Usage (wired by tests/CMakeLists.txt):
#   cmake -DCOMPILER=<c++> -DSRC_INCLUDE=<repo>/src
#         -DCASE_DIR=<repo>/tests/compile_fail -P run_compile_fail.cmake
if(NOT COMPILER OR NOT SRC_INCLUDE OR NOT CASE_DIR)
  message(FATAL_ERROR
    "run_compile_fail.cmake needs -DCOMPILER, -DSRC_INCLUDE, -DCASE_DIR")
endif()

file(GLOB cases "${CASE_DIR}/*.cpp")
list(SORT cases)
list(LENGTH cases case_count)
if(case_count LESS 6)
  message(FATAL_ERROR
    "expected at least 6 compile-fail fixtures, found ${case_count}")
endif()

set(failures 0)
foreach(case ${cases})
  get_filename_component(name "${case}" NAME_WE)

  execute_process(
    COMMAND "${COMPILER}" -std=c++20 -fsyntax-only
            "-I${SRC_INCLUDE}" "${case}"
    RESULT_VARIABLE control_result
    ERROR_VARIABLE control_stderr)
  if(NOT control_result EQUAL 0)
    message(SEND_ERROR
      "[${name}] control build FAILED (fixture is broken):\n"
      "${control_stderr}")
    math(EXPR failures "${failures} + 1")
    continue()
  endif()

  execute_process(
    COMMAND "${COMPILER}" -std=c++20 -fsyntax-only -DCOMPILE_FAIL
            "-I${SRC_INCLUDE}" "${case}"
    RESULT_VARIABLE misuse_result
    OUTPUT_QUIET ERROR_QUIET)
  if(misuse_result EQUAL 0)
    message(SEND_ERROR
      "[${name}] misuse COMPILED — the type system no longer rejects it")
    math(EXPR failures "${failures} + 1")
  else()
    message(STATUS "[${name}] ok: control compiles, misuse rejected")
  endif()
endforeach()

if(failures GREATER 0)
  message(FATAL_ERROR "${failures} compile-fail fixture(s) failed")
endif()
message(STATUS "all ${case_count} compile-fail fixtures verified")
