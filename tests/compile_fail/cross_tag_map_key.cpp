// Keyed containers inherit the domain discipline: a map keyed by PeerId
// cannot be probed with a HostId, so "looked up the table with the wrong
// id space" dies at compile time instead of returning end().
#include <unordered_map>

#include "util/strong_id.h"

using ace::HostId;
using ace::PeerId;

int lookup(const std::unordered_map<PeerId, int>& table, HostId h) {
#ifdef COMPILE_FAIL
  const auto it = table.find(h);  // wrong-domain key must not compile
#else
  // ace-id: boundary(compile-fail control demonstrates the explicit route)
  const auto it = table.find(PeerId{h.value()});
#endif
  return it == table.end() ? -1 : it->second;
}
