// Incremental-engine regression tests (DESIGN.md §11): topology-version
// bump coverage of every overlay mutation path, the per-peer closure/tree
// cache and its counters, the ACE_FORCE_FULL_REBUILD differential oracle,
// and the query-path adjacency snapshot. The load-bearing contract: cached
// and freshly built rounds are bit-identical — the cache saves simulator
// CPU, never changes results.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "ace/engine.h"
#include "core/experiment.h"
#include "graph/generators.h"
#include "search/flooding.h"
#include "util/check.h"
#include "util/digest.h"

namespace ace {
namespace {

// Unit-delay line of hosts; peers and links are added per test.
struct Fixture {
  explicit Fixture(std::size_t online, std::size_t offline = 0) {
    Graph g{64};
    for (NodeId u = 0; u + 1 < 64; ++u) g.add_edge(u, u + 1, 1.0);
    physical = std::make_unique<PhysicalNetwork>(std::move(g));
    overlay = std::make_unique<OverlayNetwork>(*physical);
    for (std::size_t i = 0; i < online + offline; ++i)
      overlay->add_peer(static_cast<HostId>(i % 64), i < online);
    for (std::size_t i = 0; i + 1 < online; ++i)
      overlay->connect(static_cast<PeerId>(i), static_cast<PeerId>(i + 1));
  }
  std::unique_ptr<PhysicalNetwork> physical;
  std::unique_ptr<OverlayNetwork> overlay;
  Rng rng{17};
};

// Restores the process-wide force-full toggle on scope exit so a failing
// assertion cannot leak the oracle mode into later tests.
struct ForceFullGuard {
  explicit ForceFullGuard(bool enabled) { set_force_full_rebuild(enabled); }
  ~ForceFullGuard() { set_force_full_rebuild(false); }
};

// Tests that assert cache hits happen cannot run under the process-wide
// ACE_FORCE_FULL_REBUILD oracle (whose whole point is preventing hits).
#define ACE_SKIP_IF_FORCED_FULL()                                       \
  if (force_full_rebuild_enabled())                                     \
  GTEST_SKIP() << "ACE_FORCE_FULL_REBUILD disables the cache this test " \
                  "exercises"

// --- topology-version bump coverage ----------------------------------

TEST(TopologyVersion, AddPeerStartsAtZeroAndBumpsGlobalOnly) {
  Fixture f{2};
  const auto global = f.overlay->global_version();
  const PeerId p = f.overlay->add_peer(HostId{5}, /*online=*/true);
  EXPECT_EQ(f.overlay->topology_version(p), 0u);
  EXPECT_GT(f.overlay->global_version(), global);
}

TEST(TopologyVersion, ConnectBumpsBothEndpoints) {
  Fixture f{4};
  const auto va = f.overlay->topology_version(PeerId{0});
  const auto vc = f.overlay->topology_version(PeerId{2});
  const auto vb = f.overlay->topology_version(PeerId{1});
  ASSERT_TRUE(f.overlay->connect(PeerId{0}, PeerId{2}));
  EXPECT_EQ(f.overlay->topology_version(PeerId{0}), va + 1);
  EXPECT_EQ(f.overlay->topology_version(PeerId{2}), vc + 1);
  EXPECT_EQ(f.overlay->topology_version(PeerId{1}), vb);  // bystander untouched
}

TEST(TopologyVersion, FailedConnectDoesNotBump) {
  Fixture f{3, 1};
  const auto global = f.overlay->global_version();
  EXPECT_FALSE(f.overlay->connect(PeerId{0}, PeerId{1}));  // already connected
  EXPECT_FALSE(f.overlay->connect(PeerId{0}, PeerId{0}));  // self-loop
  EXPECT_FALSE(f.overlay->connect(PeerId{0}, PeerId{3}));  // peer 3 offline
  EXPECT_EQ(f.overlay->global_version(), global);
}

TEST(TopologyVersion, DisconnectBumpsBothEndpointsOnlyOnSuccess) {
  Fixture f{4};
  const auto va = f.overlay->topology_version(PeerId{0});
  const auto vb = f.overlay->topology_version(PeerId{1});
  ASSERT_TRUE(f.overlay->disconnect(PeerId{0}, PeerId{1}));
  EXPECT_EQ(f.overlay->topology_version(PeerId{0}), va + 1);
  EXPECT_EQ(f.overlay->topology_version(PeerId{1}), vb + 1);
  const auto global = f.overlay->global_version();
  EXPECT_FALSE(f.overlay->disconnect(PeerId{0}, PeerId{1}));  // no such link anymore
  EXPECT_EQ(f.overlay->global_version(), global);
}

TEST(TopologyVersion, JoinBumpsTheJoinerAndItsNewNeighbors) {
  Fixture f{6, 1};
  const PeerId joiner{6};
  std::vector<TopologyVersion> before;
  for (PeerId p{0}; p < f.overlay->peer_count(); ++p)
    before.push_back(f.overlay->topology_version(p));
  const std::size_t created = f.overlay->join(joiner, 2, f.rng);
  ASSERT_GT(created, 0u);
  // The online flip alone bumps the joiner; each created link bumps both
  // endpoints again.
  EXPECT_GE(f.overlay->topology_version(joiner),
            before[joiner.value()] + 1 + created);
  std::size_t bumped_neighbors = 0;
  for (PeerId p{0}; p < joiner; ++p)
    if (f.overlay->topology_version(p) > before[p.value()]) {
      ++bumped_neighbors;
      EXPECT_TRUE(f.overlay->are_connected(joiner, p));
    }
  EXPECT_EQ(bumped_neighbors, created);
}

TEST(TopologyVersion, LeaveBumpsPeerDroppedNeighborsAndRepairPartners) {
  Fixture f{8};
  const PeerId leaver{3};
  std::vector<TopologyVersion> before;
  for (PeerId p{0}; p < f.overlay->peer_count(); ++p)
    before.push_back(f.overlay->topology_version(p));
  const std::vector<PeerId> dropped =
      f.overlay->leave(leaver, /*repair_min_degree=*/2, f.rng);
  ASSERT_FALSE(dropped.empty());
  EXPECT_GT(f.overlay->topology_version(leaver), before[leaver.value()]);
  for (const PeerId q : dropped)
    EXPECT_GT(f.overlay->topology_version(q), before[q.value()]);
  // Repair links bump peers beyond the dropped set too; every changed
  // version must belong to a peer whose adjacency actually changed (the
  // leaver, a dropped neighbor, or a repair partner with a new link).
  for (PeerId p{0}; p < f.overlay->peer_count(); ++p) {
    if (f.overlay->topology_version(p) == before[p.value()]) continue;
    const bool is_leaver = p == leaver;
    const bool was_dropped =
        std::find(dropped.begin(), dropped.end(), p) != dropped.end();
    const bool repair_partner = f.overlay->degree(p) > 0;
    EXPECT_TRUE(is_leaver || was_dropped || repair_partner);
  }
}

TEST(TopologyVersion, LeaveOfIsolatedOfflinePeerIsANoOp) {
  Fixture f{4, 1};
  const PeerId ghost{4};  // offline, never connected
  const auto global = f.overlay->global_version();
  const std::vector<PeerId> dropped = f.overlay->leave(ghost, 2, f.rng);
  EXPECT_TRUE(dropped.empty());
  EXPECT_EQ(f.overlay->global_version(), global);
}

TEST(SnapshotIdentity, UniquePerInstanceIncludingCopies) {
  Fixture f{4};
  const OverlayNetwork copy = *f.overlay;
  EXPECT_NE(copy.snapshot_identity(), f.overlay->snapshot_identity());
  const Fixture g{4};
  EXPECT_NE(g.overlay->snapshot_identity(), f.overlay->snapshot_identity());
}

// --- engine cache behaviour ------------------------------------------

// Mismatched overlay over a BA physical topology (mirrors test_engine).
struct EngineFixture {
  explicit EngineFixture(std::size_t hosts = 256, std::size_t peers = 48,
                         double degree = 5.0, std::uint64_t seed = 3) {
    Rng topo{seed};
    BaOptions ba;
    ba.nodes = hosts;
    physical = std::make_unique<PhysicalNetwork>(barabasi_albert(ba, topo));
    OverlayOptions oo;
    oo.peers = peers;
    oo.mean_degree = degree;
    const Graph logical = random_overlay(oo, topo);
    const auto host_list = assign_hosts_uniform(*physical, peers, topo);
    overlay = std::make_unique<OverlayNetwork>(*physical, logical, host_list);
  }
  std::unique_ptr<PhysicalNetwork> physical;
  std::unique_ptr<OverlayNetwork> overlay;
  Rng rng{17};
};

// Phase-2 establishment and phase-3 cuts mutate the overlay, so a truly
// static topology needs establishment off (rebuild_all_trees already skips
// phase 3); the depth-sweep benches run exactly this configuration.
AceConfig static_topology_config() {
  AceConfig config;
  config.establish_tree_links = false;
  return config;
}

TEST(IncrementalCache, RepeatRoundOnStaticTopologyHitsEveryPeer) {
  ACE_SKIP_IF_FORCED_FULL();
  EngineFixture f;
  AceEngine engine{*f.overlay, static_topology_config()};
  const RoundReport first = engine.rebuild_all_trees();
  EXPECT_EQ(first.cache.closure_builds, f.overlay->online_count());
  EXPECT_EQ(first.cache.closure_hits, 0u);
  EXPECT_GT(first.cache.tree_builds, 0u);

  const RoundReport second = engine.rebuild_all_trees();
  EXPECT_EQ(second.cache.closure_hits, f.overlay->online_count());
  EXPECT_EQ(second.cache.closure_builds, 0u);
  EXPECT_EQ(second.cache.invalidations, 0u);
  EXPECT_EQ(second.cache.tree_builds, 0u);
  // Protocol accounting is cache-independent: the peers still probe and
  // exchange every round.
  EXPECT_DOUBLE_EQ(second.phase1.total(), first.phase1.total());
  EXPECT_DOUBLE_EQ(second.closure_traffic, first.closure_traffic);
}

TEST(IncrementalCache, MutationInvalidatesOnlyAffectedClosures) {
  ACE_SKIP_IF_FORCED_FULL();
  EngineFixture f;
  AceEngine engine{*f.overlay, static_topology_config()};
  engine.rebuild_all_trees();

  // Cut one existing link; only closures containing an endpoint go stale.
  PeerId a = kInvalidPeer, b = kInvalidPeer;
  for (PeerId p{0}; p < f.overlay->peer_count() && a == kInvalidPeer; ++p)
    if (f.overlay->degree(p) > 0) {
      a = p;
      b = peer_of(f.overlay->neighbors(p).front());
    }
  ASSERT_NE(a, kInvalidPeer);
  ASSERT_TRUE(f.overlay->disconnect(a, b));

  const RoundReport report = engine.rebuild_all_trees();
  EXPECT_GE(report.cache.invalidations, 2u);  // at least both endpoints
  EXPECT_EQ(report.cache.closure_builds, report.cache.invalidations);
  EXPECT_EQ(report.cache.closure_builds + report.cache.closure_hits,
            report.peers_stepped);
  EXPECT_LT(report.cache.closure_builds, report.peers_stepped);
}

TEST(IncrementalCache, ConfigFlagForcesFullRebuildEveryRound) {
  EngineFixture f;
  AceConfig config = static_topology_config();
  config.force_full_rebuild = true;
  AceEngine engine{*f.overlay, config};
  engine.rebuild_all_trees();
  const RoundReport second = engine.rebuild_all_trees();
  EXPECT_EQ(second.cache.closure_hits, 0u);
  EXPECT_EQ(second.cache.closure_builds, f.overlay->online_count());
}

TEST(IncrementalCache, EnvToggleForcesFullRebuildProcessWide) {
  EngineFixture f;
  AceEngine engine{*f.overlay, static_topology_config()};
  engine.rebuild_all_trees();
  {
    ForceFullGuard guard{true};
    const RoundReport forced = engine.rebuild_all_trees();
    EXPECT_EQ(forced.cache.closure_hits, 0u);
    EXPECT_EQ(forced.cache.closure_builds, f.overlay->online_count());
  }
  // Toggle restored: the rebuilt entries serve hits again.
  const RoundReport after = engine.rebuild_all_trees();
  EXPECT_EQ(after.cache.closure_hits, f.overlay->online_count());
}

TEST(IncrementalCache, CachedRoundsKeepTheStateDigestIdentical) {
  EngineFixture incremental, forced;
  AceConfig full;
  full.force_full_rebuild = true;
  AceEngine fast{*incremental.overlay, AceConfig{}};
  AceEngine slow{*forced.overlay, full};
  for (int round = 0; round < 3; ++round) {
    fast.step_round(incremental.rng);
    slow.step_round(forced.rng);
    EXPECT_EQ(fast.state_digest().combined(), slow.state_digest().combined())
        << "diverged at round " << round;
  }
}

// --- differential oracle: full dynamic run ----------------------------

DynamicConfig small_dynamic_config(DigestTrace* trace, bool force_full,
                                   bool lossy) {
  DynamicConfig config;
  config.scenario.physical_nodes = 128;
  config.scenario.peers = 32;
  config.scenario.mean_degree = 4.0;
  config.scenario.seed = 99;
  config.scenario.catalog.object_count = 100;
  config.churn.mean_lifetime_s = 60.0;
  config.churn.lifetime_variance = 30.0 * 30.0;
  config.churn.join_degree = 4;
  config.workload.queries_per_peer_per_s = 0.01;
  config.ace_period_s = 15.0;
  config.duration_s = 60.0;
  config.report_buckets = 2;
  config.ace.force_full_rebuild = force_full;
  if (lossy) {
    config.transport.mode = TransportMode::kLossy;
    config.transport.faults.drop_probability = 0.05;
    config.transport.faults.extra_jitter_max_s = 0.01;
  }
  config.digest_trace = trace;
  return config;
}

// The tentpole's acceptance contract in miniature: a dynamic run with
// churn, queries, and phase-3 topology mutations produces byte-identical
// digest traces with the incremental cache on and off.
TEST(ForceFullDifferential, IdealDynamicRunTracesAreByteIdentical) {
  DigestTrace incremental, forced;
  const DynamicResult fast = run_dynamic(
      small_dynamic_config(&incremental, /*force_full=*/false, false));
  const DynamicResult slow =
      run_dynamic(small_dynamic_config(&forced, /*force_full=*/true, false));
  ASSERT_GT(incremental.rows(), 0u);
  EXPECT_EQ(incremental.csv(), forced.csv());
  EXPECT_DOUBLE_EQ(fast.total_overhead, slow.total_overhead);
  EXPECT_EQ(fast.overall.queries(), slow.overall.queries());
  EXPECT_DOUBLE_EQ(fast.overall.mean_traffic(), slow.overall.mean_traffic());
  // With force-full on, the oracle side never serves a hit.
  EXPECT_EQ(slow.engine_cache.closure_hits, 0u);
}

// With churn quiesced and establishment off (the depth-sweep shape), the
// dynamic run converges and later rounds are served from the cache.
TEST(ForceFullDifferential, SteadyStateDynamicRunServesCacheHits) {
  ACE_SKIP_IF_FORCED_FULL();
  DigestTrace trace;
  DynamicConfig config =
      small_dynamic_config(&trace, /*force_full=*/false, false);
  config.churn.mean_lifetime_s = 1e6;  // no churn event inside duration_s
  config.churn.lifetime_variance = 1.0;
  config.ace.establish_tree_links = false;
  config.ace.pairwise_neighbor_probes = false;
  const DynamicResult result = run_dynamic(config);
  EXPECT_GT(result.engine_cache.closure_hits, 0u);
  EXPECT_GT(result.engine_cache.closure_builds, 0u);
}

TEST(ForceFullDifferential, LossyDynamicRunTracesAreByteIdentical) {
  DigestTrace incremental, forced;
  const DynamicResult fast = run_dynamic(
      small_dynamic_config(&incremental, /*force_full=*/false, true));
  const DynamicResult slow =
      run_dynamic(small_dynamic_config(&forced, /*force_full=*/true, true));
  ASSERT_GT(incremental.rows(), 0u);
  EXPECT_EQ(incremental.csv(), forced.csv());
  EXPECT_EQ(fast.transport.sent, slow.transport.sent);
  EXPECT_EQ(fast.transport.dropped, slow.transport.dropped);
  EXPECT_DOUBLE_EQ(fast.total_overhead, slow.total_overhead);
}

// --- local-id routing overload ----------------------------------------

// The engine's hot install path builds TreeRouting over closure-local ids
// (tree.local_edges); it must emit byte-identical relay lists to the
// global-id overload for every peer, depth, and closure flavor.
TEST(TreeRoutingOverload, LocalIdPathMatchesGlobalIdPath) {
  EngineFixture f;
  for (const std::uint32_t h : {1u, 2u, 3u}) {
    for (const ClosureEdges edges :
         {ClosureEdges::kOverlayOnly,
          ClosureEdges::kOverlayPlusNeighborProbes}) {
      for (PeerId p{0}; p < f.overlay->peer_count(); ++p) {
        if (!f.overlay->is_online(p)) continue;
        const LocalClosure closure = build_closure(*f.overlay, p, h, edges);
        const LocalTree tree = build_local_tree(closure);
        const TreeRouting by_global = make_tree_routing(tree, p);
        const TreeRouting by_local = make_tree_routing(closure, tree, p);
        EXPECT_EQ(by_local.children, by_global.children)
            << "peer " << p << " h=" << h;
        EXPECT_EQ(by_local.flooding, by_global.flooding)
            << "peer " << p << " h=" << h;
      }
    }
  }
}

// --- steady-state maintenance phase -----------------------------------

// The depth-sweep maintenance phase must change cache counters and nothing
// else: every figure metric and the digest trace stay byte-identical to a
// maintenance-free sweep (ideal transport), with or without the
// force-full-rebuild oracle.
TEST(MaintenancePhase, FiguresAndTracesInvariantWhileCacheServesHits) {
  ACE_SKIP_IF_FORCED_FULL();
  ScenarioConfig base;
  base.physical_nodes = 128;
  base.peers = 32;
  base.mean_degree = 4.0;
  base.seed = 99;
  base.catalog.object_count = 100;
  const std::vector<std::uint32_t> depths{1, 2};
  const std::size_t rounds = 3, queries = 25, maintenance = 6;
  const std::size_t online = Scenario{base}.overlay().online_count();
  ASSERT_GT(online, 0u);

  DigestTrace plain_trace, maint_trace, forced_trace;
  const auto plain = run_depth_sweep(base, AceConfig{}, depths, rounds,
                                     queries, &plain_trace);
  const auto maintained =
      run_depth_sweep(base, AceConfig{}, depths, rounds, queries,
                      &maint_trace, {}, 1, maintenance);
  ForceFullGuard guard{true};
  const auto forced =
      run_depth_sweep(base, AceConfig{}, depths, rounds, queries,
                      &forced_trace, {}, 1, maintenance);

  EXPECT_EQ(maint_trace.csv(), plain_trace.csv());
  EXPECT_EQ(forced_trace.csv(), plain_trace.csv());
  ASSERT_EQ(maintained.size(), plain.size());
  ASSERT_EQ(forced.size(), plain.size());
  std::size_t plain_hits = 0, maint_hits = 0;
  for (std::size_t i = 0; i < plain.size(); ++i) {
    for (const auto* s : {&maintained[i], &forced[i]}) {
      EXPECT_DOUBLE_EQ(s->traffic_blind, plain[i].traffic_blind);
      EXPECT_DOUBLE_EQ(s->traffic_ace, plain[i].traffic_ace);
      EXPECT_DOUBLE_EQ(s->reduction_rate, plain[i].reduction_rate);
      EXPECT_DOUBLE_EQ(s->overhead_per_round, plain[i].overhead_per_round);
      EXPECT_DOUBLE_EQ(s->gain_per_query, plain[i].gain_per_query);
    }
    plain_hits += plain[i].engine_cache.closure_hits;
    maint_hits += maintained[i].engine_cache.closure_hits;
    // The oracle side never hits, even through the maintenance phase.
    EXPECT_EQ(forced[i].engine_cache.closure_hits, 0u);
  }
  // From the second maintenance round on, every online peer is served from
  // its cache entry (the topology stopped moving after the last
  // optimization round).
  EXPECT_GE(maint_hits,
            plain_hits + depths.size() * (maintenance - 1) * online);
}

// --- query-path adjacency snapshot ------------------------------------

TEST(OverlaySnapshot, RebuildsOnlyWhenTheOverlayMutates) {
  Fixture f{8};
  OverlaySnapshot snapshot;
  EXPECT_TRUE(snapshot.refresh(*f.overlay));   // first build
  EXPECT_FALSE(snapshot.refresh(*f.overlay));  // unchanged
  ASSERT_TRUE(f.overlay->connect(PeerId{0}, PeerId{5}));
  EXPECT_TRUE(snapshot.refresh(*f.overlay));
  EXPECT_FALSE(snapshot.refresh(*f.overlay));
}

TEST(OverlaySnapshot, MirrorsLiveAdjacencyOrderAndCosts) {
  EngineFixture f;
  OverlaySnapshot snapshot;
  snapshot.refresh(*f.overlay);
  for (PeerId p{0}; p < f.overlay->peer_count(); ++p) {
    const auto live = f.overlay->neighbors(p);
    const auto snap = snapshot.neighbors(p);
    ASSERT_EQ(live.size(), snap.size());
    for (std::size_t i = 0; i < live.size(); ++i) {
      EXPECT_EQ(live[i].node, snap[i].node);
      EXPECT_DOUBLE_EQ(live[i].weight, snap[i].weight);
      EXPECT_TRUE(snapshot.are_connected(p, peer_of(live[i])));
      EXPECT_DOUBLE_EQ(snapshot.link_cost(p, peer_of(live[i])), live[i].weight);
    }
  }
}

TEST(OverlaySnapshot, QueryResultsIdenticalWithAndWithoutSnapshot) {
  ACE_SKIP_IF_FORCED_FULL();
  EngineFixture f;
  const ObjectCatalog catalog{CatalogConfig{}};
  const CatalogOracle oracle{catalog};
  QueryScratch scratch;
  QueryOptions direct;
  direct.allow_snapshot = false;
  QueryOptions snapshotted;  // allow_snapshot defaults true
  for (PeerId source{0}; source < 8; ++source) {
    const ObjectId object = static_cast<ObjectId>(source.value() * 7 + 1);
    const QueryResult a =
        run_query(*f.overlay, source, object, oracle,
                  ForwardingMode::kBlindFlooding, nullptr, direct, &scratch);
    const QueryResult b = run_query(*f.overlay, source, object, oracle,
                                    ForwardingMode::kBlindFlooding, nullptr,
                                    snapshotted, &scratch);
    EXPECT_DOUBLE_EQ(a.traffic_cost, b.traffic_cost);
    EXPECT_DOUBLE_EQ(a.response_time, b.response_time);
    EXPECT_EQ(a.scope, b.scope);
    EXPECT_EQ(a.found, b.found);
  }
  EXPECT_EQ(scratch.snapshot_rebuilds(), 1u);  // one topology, one build
}

TEST(OverlaySnapshot, ForceFullTogglePinsQueriesToTheDirectPath) {
  EngineFixture f;
  const ObjectCatalog catalog{CatalogConfig{}};
  const CatalogOracle oracle{catalog};
  QueryScratch scratch;
  ForceFullGuard guard{true};
  (void)run_query(*f.overlay, PeerId{0}, 1, oracle,
                  ForwardingMode::kBlindFlooding,
                  nullptr, QueryOptions{}, &scratch);
  EXPECT_EQ(scratch.snapshot_rebuilds(), 0u);
}

}  // namespace
}  // namespace ace
