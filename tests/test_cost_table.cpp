#include "ace/cost_table.h"

#include <gtest/gtest.h>

#include <memory>

#include "graph/shortest_path.h"

namespace ace {
namespace {

struct Fixture {
  Fixture() {
    Graph g{8};
    for (NodeId u = 0; u + 1 < 8; ++u) g.add_edge(u, u + 1, 1.0);
    physical = std::make_unique<PhysicalNetwork>(std::move(g));
    overlay = std::make_unique<OverlayNetwork>(*physical);
    for (std::uint32_t h = 0; h < 8; ++h) overlay->add_peer(HostId{h});
  }
  std::unique_ptr<PhysicalNetwork> physical;
  std::unique_ptr<OverlayNetwork> overlay;
};

TEST(NeighborCostTableTest, RecordAndLookup) {
  NeighborCostTable table;
  table.record(PeerId{3}, 1.5);
  table.record(PeerId{7}, 2.5);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_TRUE(table.contains(PeerId{3}));
  EXPECT_FALSE(table.contains(PeerId{4}));
  EXPECT_DOUBLE_EQ(table.cost_to(PeerId{7}), 2.5);
  EXPECT_THROW(table.cost_to(PeerId{4}), std::out_of_range);
}

TEST(NeighborCostTableTest, RecordOverwrites) {
  NeighborCostTable table;
  table.record(PeerId{3}, 1.5);
  table.record(PeerId{3}, 9.0);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_DOUBLE_EQ(table.cost_to(PeerId{3}), 9.0);
}

TEST(NeighborCostTableTest, Clear) {
  NeighborCostTable table;
  table.record(PeerId{1}, 1.0);
  table.clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.contains(PeerId{1}));
}

TEST(CostTableStoreTest, RefreshRecordsLinkCosts) {
  Fixture f;
  f.overlay->connect(PeerId{0}, PeerId{1});  // cost 1
  f.overlay->connect(PeerId{0}, PeerId{4});  // cost 4
  CostTableStore store;
  store.ensure_size(f.overlay->peer_count());
  ProbeOverhead overhead;
  store.refresh_peer(*f.overlay, PeerId{0}, overhead);
  EXPECT_DOUBLE_EQ(store.table(PeerId{0}).cost_to(PeerId{1}), 1.0);
  EXPECT_DOUBLE_EQ(store.table(PeerId{0}).cost_to(PeerId{4}), 4.0);
  EXPECT_EQ(overhead.probes, 2u);
  // Probe overhead: (probe + reply sizes) x link delays = 0.5 * (1 + 4).
  MessageSizing sizing;
  const double per = sizing.probe + sizing.probe_reply;
  EXPECT_DOUBLE_EQ(overhead.probe_traffic, per * 5.0);
}

TEST(CostTableStoreTest, ExchangeChargesPerNeighbor) {
  Fixture f;
  f.overlay->connect(PeerId{0}, PeerId{1});
  f.overlay->connect(PeerId{0}, PeerId{2});
  CostTableStore store;
  store.ensure_size(f.overlay->peer_count());
  ProbeOverhead refresh_overhead;
  store.refresh_peer(*f.overlay, PeerId{0}, refresh_overhead);
  ProbeOverhead exchange;
  store.charge_exchange(*f.overlay, PeerId{0}, exchange);
  EXPECT_EQ(exchange.exchanges, 2u);
  MessageSizing sizing;
  const double msg = size_factor(sizing, MessageType::kCostTable, 2);
  EXPECT_DOUBLE_EQ(exchange.exchange_traffic, msg * (1.0 + 2.0));
}

TEST(CostTableStoreTest, KnownCostConsultsBothSides) {
  Fixture f;
  f.overlay->connect(PeerId{0}, PeerId{1});
  f.overlay->connect(PeerId{1}, PeerId{2});
  CostTableStore store;
  store.ensure_size(f.overlay->peer_count());
  ProbeOverhead overhead;
  store.refresh_peer(*f.overlay, PeerId{1}, overhead);
  // Peer 0's table is empty; peer 1's covers the 0-1 link.
  EXPECT_DOUBLE_EQ(store.known_cost(PeerId{0}, PeerId{1}), 1.0);
  EXPECT_DOUBLE_EQ(store.known_cost(PeerId{1}, PeerId{0}), 1.0);
  EXPECT_EQ(store.known_cost(PeerId{0}, PeerId{2}), kUnreachable);
}

TEST(CostTableStoreTest, RefreshReplacesStaleEntries) {
  Fixture f;
  f.overlay->connect(PeerId{0}, PeerId{1});
  CostTableStore store;
  store.ensure_size(f.overlay->peer_count());
  ProbeOverhead overhead;
  store.refresh_peer(*f.overlay, PeerId{0}, overhead);
  EXPECT_TRUE(store.table(PeerId{0}).contains(PeerId{1}));
  f.overlay->disconnect(PeerId{0}, PeerId{1});
  f.overlay->connect(PeerId{0}, PeerId{3});
  store.refresh_peer(*f.overlay, PeerId{0}, overhead);
  EXPECT_FALSE(store.table(PeerId{0}).contains(PeerId{1}));
  EXPECT_TRUE(store.table(PeerId{0}).contains(PeerId{3}));
}

TEST(CostTableStoreTest, OutOfRangeThrows) {
  CostTableStore store;
  EXPECT_THROW(store.table(PeerId{0}), std::out_of_range);
}

TEST(ProbeOverheadTest, MergeSums) {
  ProbeOverhead a, b;
  a.probes = 2;
  a.probe_traffic = 1.5;
  a.exchanges = 1;
  a.exchange_traffic = 0.5;
  b.probes = 3;
  b.probe_traffic = 2.5;
  b.exchanges = 2;
  b.exchange_traffic = 1.0;
  a.merge(b);
  EXPECT_EQ(a.probes, 5u);
  EXPECT_DOUBLE_EQ(a.probe_traffic, 4.0);
  EXPECT_EQ(a.exchanges, 3u);
  EXPECT_DOUBLE_EQ(a.exchange_traffic, 1.5);
  EXPECT_DOUBLE_EQ(a.total(), 5.5);
}

}  // namespace
}  // namespace ace
