#include "ace/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "graph/generators.h"
#include "graph/shortest_path.h"

namespace ace {
namespace {

// A mismatched overlay over a BA physical topology: random logical links
// across random hosts, exactly the setting ACE optimizes.
struct Fixture {
  explicit Fixture(std::size_t hosts = 256, std::size_t peers = 48,
                   double degree = 5.0, std::uint64_t seed = 3) {
    Rng topo{seed};
    BaOptions ba;
    ba.nodes = hosts;
    physical = std::make_unique<PhysicalNetwork>(barabasi_albert(ba, topo));
    OverlayOptions oo;
    oo.peers = peers;
    oo.mean_degree = degree;
    const Graph logical = random_overlay(oo, topo);
    const auto host_list = assign_hosts_uniform(*physical, peers, topo);
    overlay = std::make_unique<OverlayNetwork>(*physical, logical, host_list);
  }
  std::unique_ptr<PhysicalNetwork> physical;
  std::unique_ptr<OverlayNetwork> overlay;
  Rng rng{17};
};

double mean_link_cost(const OverlayNetwork& overlay) {
  const std::size_t edges = overlay.logical().edge_count();
  return edges ? overlay.logical().total_weight() /
                     static_cast<double>(edges)
               : 0.0;
}

TEST(Engine, RebuildInstallsTreesForAllOnlinePeers) {
  Fixture f;
  AceEngine engine{*f.overlay, AceConfig{}};
  const RoundReport report = engine.rebuild_all_trees();
  EXPECT_EQ(report.peers_stepped, f.overlay->online_count());
  EXPECT_EQ(engine.forwarding().entries(), f.overlay->online_count());
  EXPECT_GT(report.phase1.total(), 0.0);
}

TEST(Engine, DepthOneHasNoClosureTraffic) {
  Fixture f;
  AceConfig config;
  config.closure_depth = 1;
  AceEngine engine{*f.overlay, config};
  const RoundReport report = engine.rebuild_all_trees();
  EXPECT_DOUBLE_EQ(report.closure_traffic, 0.0);
}

TEST(Engine, DeeperClosuresCostMore) {
  double previous = 0;
  for (const std::uint32_t h : {1u, 2u, 3u}) {
    Fixture f;  // same seed -> identical topology
    AceConfig config;
    config.closure_depth = h;
    AceEngine engine{*f.overlay, config};
    const RoundReport report = engine.rebuild_all_trees();
    EXPECT_GE(report.closure_traffic, previous);
    previous = report.closure_traffic;
  }
  EXPECT_GT(previous, 0.0);
}

TEST(Engine, FullPropagationCostsMoreThanDigest) {
  Fixture f1, f2;
  AceConfig digest;
  digest.closure_depth = 3;
  digest.overhead_model = OverheadModel::kBoundedDigest;
  AceConfig full = digest;
  full.overhead_model = OverheadModel::kFullPropagation;
  AceEngine e1{*f1.overlay, digest};
  AceEngine e2{*f2.overlay, full};
  const double digest_traffic = e1.rebuild_all_trees().closure_traffic;
  const double full_traffic = e2.rebuild_all_trees().closure_traffic;
  EXPECT_GT(full_traffic, digest_traffic);
}

TEST(Engine, StepRoundReducesMeanLinkCost) {
  Fixture f;
  const double before = mean_link_cost(*f.overlay);
  AceEngine engine{*f.overlay, AceConfig{}};
  for (int round = 0; round < 8; ++round) engine.step_round(f.rng);
  const double after = mean_link_cost(*f.overlay);
  // Replacement + establishment swap expensive links for physically short
  // ones (the link count itself may grow toward the degree ceiling, so the
  // right invariant is the mean, not the total).
  EXPECT_LT(after, before * 0.9);
}

TEST(Engine, OverlayStaysConnectedThroughOptimization) {
  Fixture f;
  ASSERT_TRUE(is_connected(f.overlay->logical()));
  AceEngine engine{*f.overlay, AceConfig{}};
  for (int round = 0; round < 10; ++round) {
    engine.step_round(f.rng);
    EXPECT_TRUE(is_connected(f.overlay->logical())) << "round " << round;
  }
}

TEST(Engine, DegreeStaysBounded) {
  Fixture f;
  const double initial = f.overlay->mean_online_degree();
  AceConfig config;
  config.degree_slack = 2;
  AceEngine engine{*f.overlay, config};
  for (int round = 0; round < 12; ++round) engine.step_round(f.rng);
  // The trim rule keeps mean degree from creeping past the ceiling, while
  // individual (physically central) hubs may hold up to twice the trim
  // ceiling — they carry the overlay's long-range tree links.
  EXPECT_LT(f.overlay->mean_online_degree(), initial + 3.0);
  std::size_t max_degree = 0;
  for (const PeerId p : f.overlay->online_peers())
    max_degree = std::max(max_degree, f.overlay->degree(p));
  EXPECT_LE(max_degree,
            2 * (static_cast<std::size_t>(std::ceil(initial)) + 2));
}

TEST(Engine, LifetimeReportAccumulates) {
  Fixture f;
  AceEngine engine{*f.overlay, AceConfig{}};
  engine.step_round(f.rng);
  const double after_one = engine.lifetime_report().total_overhead();
  engine.step_round(f.rng);
  EXPECT_GT(engine.lifetime_report().total_overhead(), after_one);
}

TEST(Engine, JoinLeaveHooksInvalidateForwarding) {
  Fixture f;
  AceEngine engine{*f.overlay, AceConfig{}};
  engine.rebuild_all_trees();
  const PeerId victim = f.overlay->online_peers().front();
  std::vector<PeerId> neighbors;
  for (const auto& n : f.overlay->neighbors(victim))
    neighbors.push_back(peer_of(n));
  ASSERT_TRUE(engine.forwarding().has_entry(victim));
  f.overlay->leave(victim, 0, f.rng);
  engine.on_peer_leave(victim, neighbors);
  EXPECT_FALSE(engine.forwarding().has_entry(victim));
  for (const PeerId n : neighbors)
    EXPECT_FALSE(engine.forwarding().has_entry(n));
}

TEST(Engine, Phase3EveryThrottlesMutations) {
  Fixture f1, f2;
  AceConfig every_step;
  AceConfig throttled;
  throttled.phase3_every = 1000000;  // effectively never
  AceEngine e1{*f1.overlay, every_step};
  AceEngine e2{*f2.overlay, throttled};
  const RoundReport r1 = e1.step_round(f1.rng);
  const RoundReport r2 = e2.step_round(f2.rng);
  EXPECT_GT(r1.phase3.probes + r1.phase3.cuts + r1.phase3.adds, 0u);
  EXPECT_EQ(r2.phase3.probes + r2.phase3.cuts + r2.phase3.adds +
                r2.phase3.trims,
            0u);
}

TEST(Engine, StepPeerSkipsOffline) {
  Fixture f;
  AceEngine engine{*f.overlay, AceConfig{}};
  const PeerId victim = f.overlay->online_peers().front();
  f.overlay->leave(victim, 0, f.rng);
  RoundReport report;
  engine.step_peer(victim, f.rng, report);
  EXPECT_EQ(report.peers_stepped, 0u);
}

TEST(Engine, RoundReportMerge) {
  RoundReport a, b;
  a.closure_traffic = 1.0;
  a.closure_entries = 2;
  a.peers_stepped = 3;
  b.closure_traffic = 4.0;
  b.closure_entries = 5;
  b.peers_stepped = 6;
  b.phase3.cuts = 7;
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.closure_traffic, 5.0);
  EXPECT_EQ(a.closure_entries, 7u);
  EXPECT_EQ(a.peers_stepped, 9u);
  EXPECT_EQ(a.phase3.cuts, 7u);
}

}  // namespace
}  // namespace ace
