// Choosing the closure depth h for a deployment — the engineering question
// the paper's §5.3 answers. Given a measured frequency ratio R (how many
// queries the system serves per cost-information change), this example
// sweeps h, computes the gain/penalty "optimization rate" for your R, and
// recommends the smallest h whose rate exceeds 1 (the break-even the paper
// defines), or tells you ACE is not worth running at that R.
//
//   $ ./depth_tuning --ratio=1.5 [--mean-degree=6] [--peers=N]
#include <cstdio>
#include <iostream>

#include "ace/p2p_lab.h"

int main(int argc, char** argv) {
  using namespace ace;
  const Options options{argc, argv};
  if (options.help_requested()) {
    std::printf("depth_tuning [--ratio=R] [--mean-degree=C] [--peers=N] "
                "[--max-depth=N] [--seed=N] [--transport=ideal|lossy] "
                "[--loss-rate=P] [--jitter=S] [--intra-threads=N] "
                "[--oracle=exact|landmark:K|vivaldi:D] [--digest-out=FILE]\n");
    return 0;
  }
  const std::string digest_out = options.get_string("digest-out", "");
  const TransportConfig transport_config =
      transport_config_from_options(options);

  const double ratio = options.get_double("ratio", 1.5);
  ScenarioConfig scenario;
  scenario.physical_nodes =
      static_cast<std::size_t>(options.get_int("phys-nodes", 1024));
  scenario.peers = static_cast<std::size_t>(options.get_int("peers", 256));
  scenario.mean_degree = options.get_double("mean-degree", 6.0);
  scenario.seed = static_cast<std::uint64_t>(options.get_int("seed", 11));
  scenario.oracle = parse_oracle_spec(options.get_string("oracle", "exact"));
  const auto max_depth =
      static_cast<std::uint32_t>(options.get_int("max-depth", 6));
  // Intra-trial rebuild lanes (DESIGN.md §15): any value produces the same
  // table and digest trace — only wall-clock changes.
  const auto intra_threads =
      static_cast<std::size_t>(options.get_int("intra-threads", 1));

  std::printf("Tuning h for R=%.2f on a C=%.0f overlay of %zu peers...\n\n",
              ratio, scenario.mean_degree, scenario.peers);

  std::vector<std::uint32_t> depths;
  for (std::uint32_t h = 1; h <= max_depth; ++h) depths.push_back(h);
  DigestTrace trace;
  const auto sweep =
      run_depth_sweep(scenario, AceConfig{}, depths, 8, 60,
                      digest_out.empty() ? nullptr : &trace,
                      transport_config, /*threads=*/1,
                      /*maintenance_rounds=*/0, intra_threads);

  TableWriter table{"Depth sweep",
                    {"h", "traffic reduction %", "overhead/round",
                     "optimization rate"}};
  table.set_precision(2);
  ProvenanceEntries provenance =
      transport_provenance(scenario.seed, transport_config);
  append_oracle_provenance(provenance, scenario.oracle);
  table.set_provenance(provenance);
  std::uint32_t best = 0;
  for (const DepthSample& s : sweep) {
    const double rate = optimization_rate(s, ratio);
    table.add_row({static_cast<std::int64_t>(s.h), 100 * s.reduction_rate,
                   s.overhead_per_round, rate});
    if (best == 0 && rate >= 1.0) best = s.h;
  }
  table.print(std::cout);

  if (best == 0) {
    std::printf("\nNo depth reaches optimization rate >= 1 at R=%.2f: the "
                "overlay changes too often relative to the query load for "
                "ACE to pay off. Re-run with a larger --ratio.\n",
                ratio);
  } else {
    std::printf("\nRecommendation: h = %u (smallest depth with gain/penalty "
                ">= 1 at R=%.2f).\n",
                best, ratio);
  }

  if (!digest_out.empty()) {
    if (!trace.write(digest_out, provenance)) {
      std::fprintf(stderr, "cannot write digest trace to %s\n",
                   digest_out.c_str());
      return 1;
    }
    std::printf("digest trace: %zu rows -> %s\n", trace.rows(),
                digest_out.c_str());
  }
  return 0;
}
