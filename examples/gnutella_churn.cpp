// Gnutella under churn: the paper's dynamic environment as a runnable
// scenario. Peers live ~10 minutes (log-normal), leave, and are replaced by
// fresh joiners who connect to random bootstrap peers; every peer issues
// 0.3 queries/minute; ACE peers optimize twice a minute. The example
// prints a live time series comparing the Gnutella-like baseline and the
// ACE-enabled system — the shape of the paper's Figures 9 and 10.
//
//   $ ./gnutella_churn [--peers=N] [--duration=SECONDS] [--seed=N]
#include <cstdio>
#include <fstream>

#include "ace/p2p_lab.h"

int main(int argc, char** argv) {
  using namespace ace;
  const Options options{argc, argv};
  if (options.help_requested()) {
    std::printf("gnutella_churn [--peers=N] [--phys-nodes=N] "
                "[--duration=SECONDS] [--seed=N] [--transport=ideal|lossy] "
                "[--loss-rate=P] [--jitter=S] [--intra-threads=N] "
                "[--oracle=exact|landmark:K|vivaldi:D] [--digest-out=FILE]\n");
    return 0;
  }
  const std::string digest_out = options.get_string("digest-out", "");

  DynamicConfig config;
  config.transport = transport_config_from_options(options);
  config.scenario.physical_nodes =
      static_cast<std::size_t>(options.get_int("phys-nodes", 1024));
  config.scenario.peers =
      static_cast<std::size_t>(options.get_int("peers", 256));
  config.scenario.mean_degree = 6.0;
  config.scenario.seed = static_cast<std::uint64_t>(options.get_int("seed", 7));
  config.scenario.oracle =
      parse_oracle_spec(options.get_string("oracle", "exact"));
  config.churn.mean_lifetime_s = 600.0;              // 10 minutes (paper)
  config.churn.lifetime_variance = 300.0 * 300.0;    // sigma = mean/2
  config.churn.join_degree = 6;
  config.workload.queries_per_peer_per_s = 0.005;  // 0.3 / minute
  config.ace_period_s = 30.0;                      // optimize twice a minute
  config.duration_s = options.get_double("duration", 1200.0);
  config.report_buckets = 8;
  // Intra-trial rebuild lanes (DESIGN.md §15): any value yields the same
  // output bytes, digest traces included.
  config.intra_threads =
      static_cast<std::size_t>(options.get_int("intra-threads", 1));

  std::printf("Simulating %zu peers for %.0f s: mean lifetime 10 min, "
              "0.3 queries/min/peer...\n\n",
              config.scenario.peers, config.duration_s);

  DynamicConfig baseline = config;
  baseline.enable_ace = false;
  // Phase-boundary digest traces for reproducibility checking
  // (tools/determinism_check.py diffs the --digest-out files of two runs).
  DigestTrace baseline_trace;
  DigestTrace ace_trace;
  if (!digest_out.empty()) {
    baseline.digest_trace = &baseline_trace;
    config.digest_trace = &ace_trace;
  }
  const DynamicResult gnutella = run_dynamic(baseline);
  const DynamicResult ace = run_dynamic(config);

  std::printf("%10s | %22s | %22s\n", "", "gnutella-like", "ACE-enabled");
  std::printf("%10s | %10s %11s | %10s %11s\n", "t (s)", "traffic", "response",
              "traffic", "response");
  std::printf("-----------+------------------------+---------------------\n");
  for (std::size_t b = 0; b < gnutella.buckets.size(); ++b) {
    std::printf("%10.0f | %10.0f %11.1f | %10.0f %11.1f\n",
                gnutella.buckets[b].t_end,
                gnutella.buckets[b].mean_traffic,
                gnutella.buckets[b].mean_response_time,
                ace.buckets[b].mean_traffic,
                ace.buckets[b].mean_response_time);
  }

  if (config.transport.mode == TransportMode::kLossy) {
    const TransportStats& ts = ace.transport;
    std::printf("\ntransport: %zu sent, %zu dropped, %zu retries, "
                "%zu probe failures, %zu stale tables, %zu failed connects\n",
                ts.sent, ts.dropped, ts.retries, ts.probe_failures,
                ts.stale_tables, ts.connects_failed);
  }

  std::printf("\nchurn: %zu departures (population constant at %zu)\n",
              ace.leaves, config.scenario.peers);
  std::printf("overall: traffic -%.0f%%, response -%.0f%% "
              "(ACE overhead amortized into its traffic column)\n",
              100 * (1 - ace.overall.mean_traffic() /
                             gnutella.overall.mean_traffic()),
              100 * (1 - ace.overall.mean_response_time() /
                             gnutella.overall.mean_response_time()));

  if (!digest_out.empty()) {
    std::ofstream file{digest_out};
    if (!file) {
      std::fprintf(stderr, "cannot write digest trace to %s\n",
                   digest_out.c_str());
      return 1;
    }
    ProvenanceEntries provenance =
        transport_provenance(config.scenario.seed, config.transport);
    append_oracle_provenance(provenance, config.scenario.oracle);
    for (const auto& [key, value] : provenance)
      file << "# " << key << ": " << value << '\n';
    file << "# baseline\n" << baseline_trace.csv()
         << "# ace\n" << ace_trace.csv();
    std::printf("digest trace: %zu rows -> %s\n",
                baseline_trace.rows() + ace_trace.rows(), digest_out.c_str());
  }
  return 0;
}
