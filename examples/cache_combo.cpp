// ACE composed with response-index caching (paper §5.2): each peer keeps a
// small LRU cache of object -> known-holder pointers learned from responses
// passing through it; a cache hit answers the query on the spot and stops
// that branch of the flood. The paper reports that ACE plus a 20-item cache
// removes ~75% of traffic and ~70% of response time together.
//
//   $ ./cache_combo [--cache-size=N] [--peers=N] [--duration=SECONDS]
#include <cstdio>

#include "ace/p2p_lab.h"

int main(int argc, char** argv) {
  using namespace ace;
  const Options options{argc, argv};
  if (options.help_requested()) {
    std::printf("cache_combo [--cache-size=N] [--peers=N] [--phys-nodes=N] "
                "[--duration=SECONDS] [--seed=N] [--transport=ideal|lossy] "
                "[--loss-rate=P] [--jitter=S] [--intra-threads=N] "
                "[--oracle=exact|landmark:K|vivaldi:D] [--digest-out=FILE]\n");
    return 0;
  }
  const std::string digest_out = options.get_string("digest-out", "");

  DynamicConfig config;
  config.transport = transport_config_from_options(options);
  config.scenario.physical_nodes =
      static_cast<std::size_t>(options.get_int("phys-nodes", 1024));
  config.scenario.peers =
      static_cast<std::size_t>(options.get_int("peers", 256));
  config.scenario.mean_degree = 6.0;
  config.scenario.seed = static_cast<std::uint64_t>(options.get_int("seed", 5));
  config.scenario.oracle =
      parse_oracle_spec(options.get_string("oracle", "exact"));
  // A compact, popularity-skewed catalog: caches only help when queries
  // repeat, as they do in measured Gnutella workloads.
  config.scenario.catalog.object_count = 200;
  config.scenario.catalog.zipf_exponent = 1.0;
  config.churn.mean_lifetime_s = 600.0;
  config.churn.lifetime_variance = 300.0 * 300.0;  // sigma = mean/2
  config.churn.join_degree = 6;
  config.workload.queries_per_peer_per_s = 0.005;
  config.duration_s = options.get_double("duration", 1200.0);
  config.report_buckets = 4;
  // Intra-trial rebuild lanes (DESIGN.md §15): any value yields the same
  // output bytes, digest traces included.
  config.intra_threads =
      static_cast<std::size_t>(options.get_int("intra-threads", 1));

  const auto cache_size =
      static_cast<std::size_t>(options.get_int("cache-size", 20));

  std::printf("Comparing four systems over %.0f s of churn "
              "(%zu peers, %zu-item caches)...\n\n",
              config.duration_s, config.scenario.peers, cache_size);

  struct Variant {
    const char* name;
    bool ace;
    bool cache;
  };
  const Variant variants[] = {
      {"gnutella-like", false, false},
      {"index cache only", false, true},
      {"ACE only", true, false},
      {"ACE + index cache", true, true},
  };

  // One trace spanning all four variants: run_dynamic appends its
  // start/round/end rows per variant, in variant order.
  DigestTrace trace;
  double base_traffic = 0, base_response = 0;
  for (const Variant& v : variants) {
    DynamicConfig run_config = config;
    run_config.enable_ace = v.ace;
    run_config.enable_cache = v.cache;
    run_config.cache_capacity = cache_size;
    run_config.digest_trace = digest_out.empty() ? nullptr : &trace;
    const DynamicResult result = run_dynamic(run_config);
    const double traffic = result.overall.mean_traffic();
    const double response = result.overall.mean_response_time();
    if (base_traffic == 0) {
      base_traffic = traffic;
      base_response = response;
    }
    std::printf("%-18s traffic %8.0f (-%3.0f%%)  response %6.1f (-%3.0f%%)  "
                "cache hits %zu\n",
                v.name, traffic, 100 * (1 - traffic / base_traffic), response,
                100 * (1 - response / base_response), result.cache_hits);
  }

  std::printf("\nPaper (§5.2): ACE with a 20-item cache cuts ~75%% of the "
              "traffic cost and ~70%% of the response time.\n");

  if (!digest_out.empty()) {
    ProvenanceEntries provenance =
        transport_provenance(config.scenario.seed, config.transport);
    append_oracle_provenance(provenance, config.scenario.oracle);
    if (!trace.write(digest_out, provenance)) {
      std::fprintf(stderr, "cannot write digest trace to %s\n",
                   digest_out.c_str());
      return 1;
    }
    std::printf("digest trace: %zu rows -> %s\n", trace.rows(),
                digest_out.c_str());
  }
  return 0;
}
