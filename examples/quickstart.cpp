// Quickstart: build the substrate stack, run ACE, and see the topology
// mismatch disappear.
//
//   $ ./quickstart [--peers=N] [--phys-nodes=N] [--rounds=N] [--seed=N]
//
// Walks through the library's main objects:
//   1. Scenario      — physical Internet topology (BA model) + mismatched
//                      small-world overlay + content catalog, one config.
//   2. AceEngine     — the paper's three phases, one round at a time.
//   3. run_query /   — flooding vs tree-routed search, with the paper's
//      QueryStats      metrics (traffic cost, search scope, response time).
#include <cstdio>
#include <memory>

#include "ace/p2p_lab.h"

int main(int argc, char** argv) {
  using namespace ace;
  const Options options{argc, argv};
  if (options.help_requested()) {
    std::printf(
        "quickstart [--peers=N] [--phys-nodes=N] [--rounds=N] [--queries=N] "
        "[--seed=N] [--transport=ideal|lossy] [--loss-rate=P] [--jitter=S] "
        "[--intra-threads=N] [--oracle=exact|landmark:K|vivaldi:D] "
        "[--digest-out=FILE]\n");
    return 0;
  }
  // --digest-out: write the per-round StateDigest trace for reproducibility
  // checks (tools/determinism_check.py runs the example twice and diffs).
  const std::string digest_out = options.get_string("digest-out", "");
  DigestTrace trace;
  // --transport=lossy routes every ACE probe/exchange/establishment through
  // the event-driven lossy transport (DESIGN.md §8).
  const TransportConfig transport_config =
      transport_config_from_options(options);
  const bool lossy = transport_config.mode == TransportMode::kLossy;

  // 1. The substrate: a 1024-host physical Internet (Barabasi-Albert, the
  //    BRITE model the paper uses), 256 peers attached to random hosts,
  //    logically wired as a small-world overlay that ignores physical
  //    distance entirely — the mismatch problem in its purest form.
  ScenarioConfig config;
  config.physical_nodes =
      static_cast<std::size_t>(options.get_int("phys-nodes", 1024));
  config.peers = static_cast<std::size_t>(options.get_int("peers", 256));
  config.mean_degree = 6.0;
  config.seed = static_cast<std::uint64_t>(options.get_int("seed", 42));
  // --oracle=landmark:K / vivaldi:D makes peers decide from estimated
  // proximity (DESIGN.md §14) while the network keeps charging true delays;
  // the default exact mode attaches nothing and is byte-identical to
  // pre-oracle builds.
  config.oracle =
      parse_oracle_spec(options.get_string("oracle", "exact"));
  Scenario scenario{config};

  std::printf("physical hosts : %zu\n", scenario.physical().host_count());
  std::printf("peers          : %zu (mean degree %.1f)\n",
              scenario.overlay().peer_count(),
              scenario.overlay().mean_online_degree());

  // --intra-threads=N also fans the measurement loops out across the
  // pool's lanes (per-lane scratch, canonical-order replay): the printed
  // stats and the query-stats digest rows are byte-identical at any value.
  const auto intra_threads =
      static_cast<std::size_t>(options.get_int("intra-threads", 1));
  TrialRunner intra{intra_threads};
  if (intra_threads > 1) scenario.set_query_subtasks(&intra);
  const auto queries =
      static_cast<std::size_t>(options.get_int("queries", 50));

  // 2. Measure the unoptimized baseline: blind flooding, Gnutella-style.
  const QueryStats before = scenario.measure_blind(queries);
  std::printf("\nblind flooding : traffic %.0f | response %.1f | scope %.1f\n",
              before.mean_traffic(), before.mean_response_time(),
              before.mean_scope());
  // The aggregate's digest joins the trace: determinism_check's
  // quickstart-query-intra entry diffs it across 1-vs-8-lane runs.
  if (!digest_out.empty())
    trace.record("measure-blind", "query-stats", before.digest());

  // 3. Run ACE. Each round every peer executes the three phases: probe +
  //    exchange neighbor cost tables, build its local multicast tree, and
  //    adaptively replace far-away non-flooding neighbors with closer ones.
  AceConfig ace_config;
  ace_config.transport = transport_config.mode;
  AceEngine engine{scenario.overlay(), ace_config};
  // --intra-threads=N rebuilds each round's stale closures in conflict-free
  // parallel batches (DESIGN.md §15). The printed report, measurements, and
  // digest trace are byte-identical at any value — only wall-clock moves.
  if (intra_threads > 1) engine.set_subtask_runner(&intra);
  Simulator sim;
  std::unique_ptr<Transport> wire;
  if (lossy) {
    wire = std::make_unique<Transport>(
        sim, scenario.overlay(), scenario.guids(), transport_config,
        Rng::stream(config.seed, "transport"));
    engine.attach_transport(wire.get());
  }
  const auto rounds =
      static_cast<std::size_t>(options.get_int("rounds", 10));
  for (std::size_t r = 1; r <= rounds; ++r) {
    const RoundReport report = engine.step_round(scenario.rng());
    if (lossy) sim.run_all();  // drain the round's in-flight deliveries
    std::printf("round %2zu: %3zu cuts, %3zu adds, %3zu links established, "
                "overhead %.0f\n",
                r, report.phase3.cuts, report.phase3.adds,
                report.establishments, report.total_overhead());
    if (!digest_out.empty())
      trace.record("round-" + std::to_string(r),
                   engine.state_digest(lossy ? &sim : nullptr));
  }
  if (lossy) {
    const TransportStats& ts = wire->stats();
    std::printf("transport: %zu sent, %zu delivered, %zu dropped, "
                "%zu retries, %zu probe failures, %zu stale tables\n",
                ts.sent, ts.delivered, ts.dropped, ts.retries,
                ts.probe_failures, ts.stale_tables);
  }

  // 4. Measure again with tree routing over the optimized overlay.
  const QueryStats after = scenario.measure(
      ForwardingMode::kTreeRouting, &engine.forwarding(), queries);
  if (!digest_out.empty())
    trace.record("measure-ace", "query-stats", after.digest());
  std::printf("\nwith ACE       : traffic %.0f | response %.1f | scope %.1f\n",
              after.mean_traffic(), after.mean_response_time(),
              after.mean_scope());
  std::printf("improvement    : traffic -%.0f%% | response -%.0f%% | "
              "scope retained %.1f%%\n",
              100 * (1 - after.mean_traffic() / before.mean_traffic()),
              100 * (1 - after.mean_response_time() /
                             before.mean_response_time()),
              100 * after.mean_scope() / before.mean_scope());

  if (!digest_out.empty()) {
    trace.record("end", engine.state_digest(lossy ? &sim : nullptr));
    ProvenanceEntries provenance =
        transport_provenance(config.seed, transport_config);
    append_oracle_provenance(provenance, config.oracle);
    if (!trace.write(digest_out, provenance)) {
      std::fprintf(stderr, "cannot write digest trace to %s\n",
                   digest_out.c_str());
      return 1;
    }
    std::printf("digest trace   : %zu rows -> %s\n", trace.rows(),
                digest_out.c_str());
  }
  return 0;
}
