// Million-peer end-to-end bench (ROADMAP item 1's proof point): a
// power-law Gnutella-shaped overlay of >= 10^6 peers on a BA physical
// topology, driven entirely through the estimated-cost regime — landmark
// link pricing (O(K) per link instead of a per-source Dijkstra row over
// 2^20 hosts), the SoA peer/engine state, and the streaming TTL-bounded
// query measurement on the intra-trial lane pool.
//
//   $ ./bench_million                         # full 10^6-peer trial
//   $ ./bench_million --peers=20000 --phys-nodes=32768 --queries=64
//
// The CSV carries only deterministic metrics (traffic, response, scope,
// success — byte-identical at any --intra-threads). The perf record
// BENCH_million.json adds qps, rebuild_s, and peak_rss_bytes; those are
// wall-clock facts and move between runs.
#include "bench_common.h"

#include <memory>

int main(int argc, char** argv) {
  using namespace ace;
  using namespace ace::bench;
  const Options options{argc, argv};
  if (options.help_requested()) {
    std::printf(
        "bench_million [--phys-nodes=N] [--peers=N] [--queries=N] "
        "[--ttl=N] [--seed=N] [--intra-threads=N] "
        "[--oracle=exact|landmark:K|vivaldi:D] [--out-dir=DIR]\n");
    return 0;
  }
  // Defaults size the full proof run: 2^20 hosts, 10^6 peers. The oracle
  // defaults to landmark estimation — the only regime where pricing three
  // million overlay links is payable — but stays overridable for reduced
  // runs that want exact ground truth.
  BenchScale scale = parse_scale(options, /*default_phys=*/1u << 20,
                                 /*default_peers=*/1000000,
                                 /*default_queries=*/256,
                                 /*default_rounds=*/1);
  scale.oracle = options.get_string("oracle", "landmark:8");
  // Unbounded flooding visits all 10^6 peers per query; the Gnutella TTL
  // keeps the flood ring (~degree^ttl peers) measurable.
  const auto ttl =
      static_cast<std::uint8_t>(options.get_int("ttl", 5));
  print_header("Million-peer query engine (estimated link pricing)", scale);

  WallTimer total_timer;

  // Physical substrate: BA preferential attachment, the paper's BRITE
  // model, at 2^20 routers.
  Rng topo_rng = Rng::stream(scale.seed, "million-physical");
  BaOptions ba;
  ba.nodes = scale.physical_nodes;
  ba.edges_per_node = 2;
  WallTimer phys_timer;
  PhysicalNetwork physical{barabasi_albert(ba, topo_rng)};
  const double phys_s = phys_timer.elapsed_s();

  WallTimer oracle_timer;
  const std::unique_ptr<CostOracle> oracle =
      make_cost_oracle(physical, oracle_config(scale), scale.seed);
  const double oracle_s = oracle_timer.elapsed_s();

  // Gnutella-shaped logical overlay (power-law degree), wired through the
  // manual path so the oracle and estimated pricing are attached BEFORE
  // any link is priced — the Scenario constructor prices links exactly,
  // which is the unpayable case this bench exists to avoid.
  Rng overlay_rng = Rng::stream(scale.seed, "million-overlay");
  OverlayOptions shape;
  shape.peers = scale.peers;
  shape.mean_degree = 6.0;
  WallTimer overlay_timer;
  const Graph logical = power_law_overlay(shape, overlay_rng);
  const std::vector<HostId> hosts =
      assign_hosts_uniform(physical, scale.peers, overlay_rng);
  OverlayNetwork overlay{physical};
  overlay.set_cost_oracle(oracle.get());
  overlay.set_estimated_link_pricing(true);
  for (std::size_t i = 0; i < scale.peers; ++i) (void)overlay.add_peer(hosts[i]);
  for (std::uint32_t u = 0; u < logical.node_count(); ++u) {
    for (const Neighbor& n : logical.neighbors(u)) {
      if (n.node > u) (void)overlay.connect(PeerId{u}, PeerId{n.node});
    }
  }
  const double overlay_s = overlay_timer.elapsed_s();
  std::printf("built: %zu hosts (%.1fs), oracle %s (%.1fs), "
              "%zu peers / %zu links (%.1fs)\n",
              physical.host_count(), phys_s, scale.oracle.c_str(), oracle_s,
              overlay.peer_count(), overlay.logical().edge_count(),
              overlay_s);

  // Content catalog is stateless hash placement — O(objects), not
  // O(peers), so a million peers cost nothing here.
  CatalogConfig catalog_config;
  catalog_config.object_count = 500;
  catalog_config.base_replication = 0.1;
  catalog_config.min_replication = 0.01;
  const ObjectCatalog catalog{catalog_config};
  const CatalogOracle content{catalog};

  // ACE phases 1-2 over every peer, timed: closure + local MST + routing
  // for 10^6 peers. No establishment, so the overlay never mutates and the
  // measured stats below stay deterministic.
  AceConfig ace;
  ace.establish_tree_links = false;
  // Pairwise neighbor probes build the COMPLETE neighbor cost graph —
  // O(degree^2) per peer, which a power-law overlay's hubs (degree ~
  // sqrt(peers)) turn into tens of GB of probed pairs. No real servent
  // probes millions of neighbor pairs either; at this scale the closure
  // ranges over existing overlay links only.
  ace.pairwise_neighbor_probes = false;
  AceEngine engine{overlay, ace};
  TrialRunner intra{scale.intra_threads};
  TrialRunner* subtasks = scale.intra_threads > 1 ? &intra : nullptr;
  if (subtasks != nullptr) engine.set_subtask_runner(subtasks);
  WallTimer rebuild_timer;
  const RoundReport rebuild = engine.rebuild_all_trees();
  const double rebuild_s = rebuild_timer.elapsed_s();
  std::printf("rebuild_all_trees: %.1fs (%zu closure builds, %zu tree "
              "builds)\n",
              rebuild_s, rebuild.cache.closure_builds,
              rebuild.cache.tree_builds);

  // TTL-bounded measurement, flooding vs tree routing, on the query lane
  // pool. Both passes replay the same (source, object) sequence from a
  // fresh identically-named stream, so the comparison is paired.
  QueryOptions qopts;
  qopts.ttl = ttl;
  QueryLanes lanes;
  Rng flood_rng = Rng::stream(scale.seed, "million-measure");
  WallTimer flood_timer;
  const QueryStats flood = sample_queries(
      overlay, catalog, content, ForwardingMode::kBlindFlooding, nullptr,
      scale.queries, flood_rng, qopts, nullptr, subtasks, &lanes);
  const double flood_s = flood_timer.elapsed_s();
  Rng tree_rng = Rng::stream(scale.seed, "million-measure");
  WallTimer tree_timer;
  const QueryStats tree = sample_queries(
      overlay, catalog, content, ForwardingMode::kTreeRouting,
      &engine.forwarding(), scale.queries, tree_rng, qopts, nullptr,
      subtasks, &lanes);
  const double tree_s = tree_timer.elapsed_s();
  const double measure_s = flood_s + tree_s;
  const double qps =
      measure_s > 0
          ? static_cast<double>(flood.queries() + tree.queries()) / measure_s
          : 0;

  TableWriter table{"million-peer search (TTL-bounded)",
                    {"mode", "traffic/query", "response", "scope",
                     "success %"}};
  table.set_precision(1);
  stamp_provenance(table, scale);
  table.add_row({std::string{"blind flooding"}, flood.mean_traffic(),
                 flood.mean_response_time(), flood.mean_scope(),
                 100 * flood.success_rate()});
  table.add_row({std::string{"ACE tree routing"}, tree.mean_traffic(),
                 tree.mean_response_time(), tree.mean_scope(),
                 100 * tree.success_rate()});
  table.print(std::cout, csv_path(scale, "million"));

  // Custom perf record: the standard top-level fields every BENCH_*.json
  // carries, plus the qps this bench is gated on (tools/bench_compare.py
  // treats a qps decrease as the regression direction).
  const std::string path = scale.out_dir + "/BENCH_million.json";
  std::ofstream out{path};
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return 0;
  }
  out << "{\n  \"name\": \"million\",\n";
  out << "  \"wall_time_s\": " << total_timer.elapsed_s() << ",\n";
  out << "  \"rebuild_s\": " << rebuild_s << ",\n";
  out << "  \"qps\": " << qps << ",\n";
  out << "  \"measure_s\": " << measure_s << ",\n";
  out << "  \"build_physical_s\": " << phys_s << ",\n";
  out << "  \"build_oracle_s\": " << oracle_s << ",\n";
  out << "  \"build_overlay_s\": " << overlay_s << ",\n";
  out << "  \"peers\": " << overlay.peer_count() << ",\n";
  out << "  \"hosts\": " << physical.host_count() << ",\n";
  out << "  \"links\": " << overlay.logical().edge_count() << ",\n";
  out << "  \"queries\": " << flood.queries() + tree.queries() << ",\n";
  out << "  \"ttl\": " << static_cast<int>(ttl) << ",\n";
  out << "  \"trials\": 1,\n";
  out << "  \"threads\": 1,\n";
  out << "  \"intra_threads\": " << scale.intra_threads << ",\n";
  out << "  \"peak_rss_bytes\": " << peak_rss_bytes() << ",\n";
  out << "  \"engine_cache\": {\n";
  out << "    \"closure_builds\": " << rebuild.cache.closure_builds << ",\n";
  out << "    \"closure_hits\": " << rebuild.cache.closure_hits << ",\n";
  out << "    \"invalidations\": " << rebuild.cache.invalidations << ",\n";
  out << "    \"tree_builds\": " << rebuild.cache.tree_builds << ",\n";
  out << "    \"snapshot_rebuilds\": " << lanes.snapshot_rebuilds() << "\n";
  out << "  },\n";
  out << "  \"provenance\": {";
  ProvenanceEntries entries = run_provenance(scale.seed, scale_digest(scale));
  append_oracle_provenance(entries, oracle_config(scale));
  entries.emplace_back("ttl", std::to_string(static_cast<int>(ttl)));
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out << (i ? ",\n    \"" : "\n    \"") << json_escape(entries[i].first)
        << "\": \"" << json_escape(entries[i].second) << "\"";
  }
  out << "\n  }\n}\n";
  std::printf("perf record: %s\n", path.c_str());
  return 0;
}
