// Optimization-rate trial at scale: ONE depth-sweep cell (fixed h, C=10)
// sized so each round rebuilds hundreds of closures — the workload the
// intra-trial conflict-free batch path (DESIGN.md §15) exists for. With a
// single trial, cross-trial sharding has nothing to do, so --threads drives
// the intra-trial lane count directly (--intra-threads overrides it).
// Every output — the table, optrate.csv, and the --digest-out trace — is
// byte-identical at any lane count; only wall_time_s and rebuild_s in
// BENCH_optrate.json move. tools/determinism_check.py double-runs this
// bench at different lane counts and diffs the trace to pin that down.
#include "bench_common.h"

namespace {

using namespace ace;
using namespace ace::bench;

}  // namespace

int main(int argc, char** argv) {
  const Options options{argc, argv};
  if (options.help_requested()) {
    std::printf(
        "bench_optrate [--phys-nodes=N] [--peers=N] [--queries=N] "
        "[--rounds=N] [--depth=H] [--maintenance-rounds=N] [--seed=N] "
        "[--threads=N] [--intra-threads=N] [--digest-out=FILE] "
        "[--out-dir=DIR]\n");
    return 0;
  }
  BenchScale scale = parse_scale(options, 4096, 1024, 80, 10);
  const auto depth = static_cast<std::uint32_t>(options.get_int("depth", 4));
  const auto maintenance_rounds = static_cast<std::size_t>(
      options.get_int("maintenance-rounds", 10));
  const std::string digest_out = options.get_string("digest-out", "");
  // Single trial: reuse --threads for the intra-trial pool unless
  // --intra-threads says otherwise.
  const std::size_t lanes =
      scale.intra_threads > 1 ? scale.intra_threads : scale.threads;
  print_header("Optimization rate, single large trial (intra-trial batches)",
               scale);

  const std::uint32_t depths[] = {depth};
  DigestTrace trace;
  WallTimer timer;
  const std::vector<DepthSample> sweep = run_depth_sweep(
      make_scenario(scale, 10.0), AceConfig{}, depths, scale.rounds,
      scale.queries, digest_out.empty() ? nullptr : &trace, {},
      /*threads=*/1, maintenance_rounds, lanes);
  const DepthSample& sample = sweep.front();

  BenchReport report;
  report.name = "optrate";
  report.wall_time_s = timer.elapsed_s();
  report.rebuild_s = sample.rebuild_s;
  report.trials = 1;
  report.threads = 1;
  report.intra_threads = lanes;
  accumulate(report.oracle_cache, sample.oracle_cache);
  accumulate(report.engine_cache, sample.engine_cache);
  write_bench_json(scale, report);

  TableWriter table{"Optimization rate at h=" + std::to_string(depth) +
                        " (C=10)",
                    {"h", "traffic_blind", "traffic_ace", "reduction %",
                     "overhead/round", "rate@R=1", "rate@R=2", "rate@R=4"}};
  table.set_precision(2);
  table.add_row({static_cast<std::int64_t>(sample.h), sample.traffic_blind,
                 sample.traffic_ace, 100 * sample.reduction_rate,
                 sample.overhead_per_round, optimization_rate(sample, 1.0),
                 optimization_rate(sample, 2.0),
                 optimization_rate(sample, 4.0)});
  stamp_provenance(table, scale);
  table.print(std::cout, csv_path(scale, "optrate"));

  if (!digest_out.empty()) {
    ProvenanceEntries provenance =
        run_provenance(scale.seed, scale_digest(scale));
    append_oracle_provenance(provenance, oracle_config(scale));
    if (!trace.write(digest_out, provenance)) {
      std::fprintf(stderr, "cannot write digest trace to %s\n",
                   digest_out.c_str());
      return 1;
    }
    std::printf("digest trace: %zu rows -> %s\n", trace.rows(),
                digest_out.c_str());
  }
  return 0;
}
