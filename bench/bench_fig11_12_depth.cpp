// Figures 11 & 12: the impact of the closure depth h. Query-traffic
// reduction rate over blind flooding (Fig 11) and optimization overhead
// traffic (Fig 12) versus the depth of the neighbor closure used to build
// the overlay trees, one curve per C in {4, 6, 8, 10}.
// Shapes to reproduce: reduction grows with h and with C then saturates;
// overhead grows with h and with C.
#include "bench_common.h"

namespace {

using namespace ace;
using namespace ace::bench;

}  // namespace

int main(int argc, char** argv) {
  const Options options{argc, argv};
  if (options.help_requested()) {
    std::printf(
        "bench_fig11_12_depth [--phys-nodes=N] [--peers=N] [--queries=N] "
        "[--rounds=N] [--max-depth=N] [--seed=N] [--threads=N] "
        "[--intra-threads=N] [--out-dir=DIR]\n");
    return 0;
  }
  BenchScale scale = parse_scale(options, 2048, 384, 80, 8);
  const auto max_depth =
      static_cast<std::uint32_t>(options.get_int("max-depth", 8));
  print_header("Figures 11-12: traffic reduction rate and overhead traffic "
               "vs. closure depth h",
               scale);

  std::vector<std::uint32_t> depths;
  for (std::uint32_t h = 1; h <= max_depth; ++h) depths.push_back(h);
  const std::vector<double> degrees{4, 6, 8, 10};

  WallTimer timer;
  std::vector<std::vector<DepthSample>> sweeps;
  for (const double degree : degrees) {
    sweeps.push_back(run_depth_sweep(make_scenario(scale, degree), AceConfig{},
                                     depths, scale.rounds, scale.queries,
                                     nullptr, {}, scale.threads, 0,
                                     scale.intra_threads));
  }

  BenchReport report;
  report.name = "fig11_12";
  report.wall_time_s = timer.elapsed_s();
  report.threads = scale.threads;
  report.intra_threads = scale.intra_threads;
  for (const auto& sweep : sweeps) {
    report.trials += sweep.size();
    for (const DepthSample& s : sweep) {
      report.rebuild_s += s.rebuild_s;
      accumulate(report.oracle_cache, s.oracle_cache);
      accumulate(report.engine_cache, s.engine_cache);
    }
  }
  write_bench_json(scale, report);

  TableWriter fig11{"Figure 11: query traffic reduction rate (%) vs. h",
                    {"h", "C=4", "C=6", "C=8", "C=10"}};
  fig11.set_precision(1);
  TableWriter fig12{"Figure 12: overhead traffic per optimization round vs. h",
                    {"h", "C=4", "C=6", "C=8", "C=10"}};
  fig12.set_precision(0);
  for (std::size_t i = 0; i < depths.size(); ++i) {
    std::vector<Cell> row11{static_cast<std::int64_t>(depths[i])};
    std::vector<Cell> row12{static_cast<std::int64_t>(depths[i])};
    for (const auto& sweep : sweeps) {
      row11.emplace_back(100 * sweep[i].reduction_rate);
      row12.emplace_back(sweep[i].overhead_per_round);
    }
    fig11.add_row(std::move(row11));
    fig12.add_row(std::move(row12));
  }
  stamp_provenance(fig11, scale);
  stamp_provenance(fig12, scale);
  fig11.print(std::cout, csv_path(scale, "fig11_reduction_vs_depth"));
  std::printf("\n");
  fig12.print(std::cout, csv_path(scale, "fig12_overhead_vs_depth"));

  // Machine-readable dump reused by the optimization-rate bench narrative.
  TableWriter raw{"Raw depth sweep (gain per query / overhead per round)",
                  {"C", "h", "traffic_blind", "traffic_ace", "gain",
                   "overhead_per_round"}};
  raw.set_precision(1);
  for (std::size_t c = 0; c < degrees.size(); ++c) {
    for (const DepthSample& s : sweeps[c]) {
      raw.add_row({degrees[c], static_cast<std::int64_t>(s.h),
                   s.traffic_blind, s.traffic_ace, s.gain_per_query,
                   s.overhead_per_round});
    }
  }
  stamp_provenance(raw, scale);
  raw.print(std::cout, csv_path(scale, "fig11_12_raw"));
  return 0;
}
