// Ablation (DESIGN.md §6): phase-3 candidate policies. The paper's
// simulations use the random policy and its conclusion sketches naive and
// closest as future work; this bench compares all three plus the effect of
// disabling the Fig-4(c) "keep both" rule, reporting converged traffic and
// the probe overhead each policy spends to get there.
#include "bench_common.h"

namespace {

using namespace ace;
using namespace ace::bench;

struct Outcome {
  double traffic;
  double response;
  double scope;
  double probe_traffic;
  std::size_t cuts;
  std::size_t adds;
  double rebuild_s;
};

Outcome run(const BenchScale& scale, ReplacementPolicy policy, bool keep_rule,
            std::size_t rounds, std::size_t queries, TrialRunner* subtasks) {
  Scenario scenario{make_scenario(scale, 6.0)};
  AceConfig config;
  config.optimizer.policy = policy;
  config.optimizer.keep_rule = keep_rule;
  AceEngine engine{scenario.overlay(), config};
  if (subtasks != nullptr) engine.set_subtask_runner(subtasks);
  WallTimer rebuild_timer;
  for (std::size_t r = 0; r < rounds; ++r) engine.step_round(scenario.rng());
  const double rebuild_s = rebuild_timer.elapsed_s();
  const QueryStats stats = scenario.measure(
      ForwardingMode::kTreeRouting, &engine.forwarding(), queries);
  const RoundReport& life = engine.lifetime_report();
  return {stats.mean_traffic(),       stats.mean_response_time(),
          stats.mean_scope(),         life.phase3.probe_traffic,
          life.phase3.cuts,           life.phase3.adds,
          rebuild_s};
}

}  // namespace

int main(int argc, char** argv) {
  const Options options{argc, argv};
  if (options.help_requested()) {
    std::printf(
        "bench_ablation_policy [--phys-nodes=N] [--peers=N] [--queries=N] "
        "[--rounds=N] [--seed=N] [--threads=N] [--intra-threads=N] "
        "[--out-dir=DIR]\n");
    return 0;
  }
  const BenchScale scale = parse_scale(options, 2048, 384, 80, 12);
  print_header("Ablation: phase-3 replacement policy and keep-rule", scale);

  TableWriter table{"Replacement policy comparison (C=6)",
                    {"policy", "traffic/query", "reduction %",
                     "response time", "scope", "probe overhead", "cuts",
                     "adds"}};
  table.set_precision(1);

  struct Case {
    std::string name;
    ReplacementPolicy policy;
    bool keep_rule;
  };
  const std::vector<Case> cases{
      {"random (paper)", ReplacementPolicy::kRandom, true},
      {"random, no keep-rule", ReplacementPolicy::kRandom, false},
      {"naive", ReplacementPolicy::kNaive, true},
      {"closest", ReplacementPolicy::kClosest, true},
      {"closest, no keep-rule", ReplacementPolicy::kClosest, false},
  };

  // Trial 0 is the blind-flooding baseline, trials 1..N the policy cases —
  // all independent, sharded over the runner, merged in case order.
  WallTimer timer;
  TrialRunner intra{scale.intra_threads};
  TrialRunner* subtasks = scale.intra_threads > 1 ? &intra : nullptr;
  TrialRunner runner{scale.threads};
  const std::vector<Outcome> outcomes =
      runner.run(cases.size() + 1, [&](TrialIndex ti) {
        const std::size_t i = ti.value();
        if (i == 0) {
          Scenario baseline{make_scenario(scale, 6.0)};
          const QueryStats blind = baseline.measure_blind(scale.queries);
          return Outcome{blind.mean_traffic(), blind.mean_response_time(),
                         blind.mean_scope(), 0.0, 0, 0, 0.0};
        }
        const Case& c = cases[i - 1];
        return run(scale, c.policy, c.keep_rule, scale.rounds, scale.queries,
                   subtasks);
      });

  BenchReport report;
  report.name = "ablation_policy";
  report.threads = scale.threads;
  report.intra_threads = scale.intra_threads;
  report.trials = cases.size() + 1;
  report.wall_time_s = timer.elapsed_s();
  for (const Outcome& o : outcomes) report.rebuild_s += o.rebuild_s;
  write_bench_json(scale, report);

  const Outcome& blind = outcomes[0];
  table.add_row({std::string{"blind flooding"}, blind.traffic, 0.0,
                 blind.response, blind.scope, 0.0, std::int64_t{0},
                 std::int64_t{0}});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Outcome& o = outcomes[i + 1];
    table.add_row({cases[i].name, o.traffic,
                   100 * (1 - o.traffic / blind.traffic), o.response,
                   o.scope, o.probe_traffic,
                   static_cast<std::int64_t>(o.cuts),
                   static_cast<std::int64_t>(o.adds)});
  }
  stamp_provenance(table, scale);
  table.print(std::cout, csv_path(scale, "ablation_policy"));
  std::printf("\nExpected: closest converges deepest but spends the most "
              "probes; naive is cheap but weaker; the keep-rule preserves "
              "useful midpoint links.\n");
  return 0;
}
