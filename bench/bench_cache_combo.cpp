// §5.2 combination experiment: ACE employed together with a 20-item
// response-index cache at each peer, in the dynamic churn environment. The
// paper reports that ACE + index caching cuts ~75% of traffic cost and
// ~70% of response time relative to the Gnutella-like baseline.
#include "bench_common.h"

namespace {

using namespace ace;
using namespace ace::bench;

DynamicConfig base_config(const BenchScale& scale, double duration) {
  DynamicConfig config;
  config.scenario = make_scenario(scale, 6.0);
  config.churn.mean_lifetime_s = 600.0;
  config.churn.lifetime_variance = 300.0 * 300.0;  // sigma = mean/2
  config.churn.join_degree = 6;
  config.workload.queries_per_peer_per_s = 0.3 / 60.0;
  config.ace_period_s = 30.0;
  config.duration_s = duration;
  config.report_buckets = 6;
  // Cache benefits require repeated queries for the same objects: a
  // compact hot catalog, as in trace-driven cache studies.
  config.scenario.catalog.object_count = 200;
  config.scenario.catalog.zipf_exponent = 1.0;
  config.intra_threads = scale.intra_threads;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options{argc, argv};
  if (options.help_requested()) {
    std::printf(
        "bench_cache_combo [--phys-nodes=N] [--peers=N] "
        "[--duration=SECONDS] [--cache-size=N] [--seed=N] [--threads=N] "
        "[--intra-threads=N] [--out-dir=DIR]\n");
    return 0;
  }
  BenchScale scale = parse_scale(options, 2048, 384);
  const double duration = options.get_double("duration", 1800.0);
  const auto cache_size =
      static_cast<std::size_t>(options.get_int("cache-size", 20));
  print_header("Section 5.2: ACE + response index caching (dynamic)", scale);

  DynamicConfig gnutella = base_config(scale, duration);
  gnutella.enable_ace = false;

  DynamicConfig ace_only = base_config(scale, duration);

  DynamicConfig ace_cache = base_config(scale, duration);
  ace_cache.enable_cache = true;
  ace_cache.cache_capacity = cache_size;

  DynamicConfig cache_only = base_config(scale, duration);
  cache_only.enable_ace = false;
  cache_only.enable_cache = true;
  cache_only.cache_capacity = cache_size;

  struct Row {
    const char* name;
    DynamicResult result;
  };
  // Four independent systems; the runner shards them and returns results
  // in system order, so the table never depends on the thread count.
  const std::vector<std::pair<const char*, DynamicConfig>> systems{
      {"gnutella-like", gnutella},
      {"cache only", cache_only},
      {"ACE only", ace_only},
      {"ACE + cache", ace_cache}};
  WallTimer timer;
  TrialRunner runner{scale.threads};
  const std::vector<DynamicResult> results =
      runner.run(systems.size(),
                 [&](TrialIndex i) { return run_dynamic(systems[i.value()].second); });
  std::vector<Row> rows;
  for (std::size_t i = 0; i < systems.size(); ++i)
    rows.push_back({systems[i].first, results[i]});

  BenchReport report;
  report.name = "cache_combo";
  report.threads = scale.threads;
  report.intra_threads = scale.intra_threads;
  report.trials = systems.size();
  report.wall_time_s = timer.elapsed_s();
  for (const Row& row : rows) {
    report.rebuild_s += row.result.rebuild_s;
    accumulate(report.engine_cache, row.result.engine_cache);
  }
  write_bench_json(scale, report);

  const double base_traffic = rows[0].result.overall.mean_traffic();
  const double base_response = rows[0].result.overall.mean_response_time();

  TableWriter table{
      "ACE with a " + std::to_string(cache_size) + "-item index cache",
      {"system", "queries", "traffic/query", "traffic cut %",
       "response time", "response cut %", "cache hits"}};
  table.set_precision(1);
  for (const Row& row : rows) {
    table.add_row(
        {std::string{row.name},
         static_cast<std::int64_t>(row.result.overall.queries()),
         row.result.overall.mean_traffic(),
         100 * (1 - row.result.overall.mean_traffic() / base_traffic),
         row.result.overall.mean_response_time(),
         100 * (1 - row.result.overall.mean_response_time() / base_response),
         static_cast<std::int64_t>(row.result.cache_hits)});
  }
  stamp_provenance(table, scale);
  table.print(std::cout, csv_path(scale, "cache_combo"));
  std::printf("\nPaper: ACE + 20-item cache cuts ~75%% of traffic and ~70%% "
              "of response time vs the Gnutella-like baseline.\n");
  return 0;
}
