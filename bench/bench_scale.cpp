// Cost-query scale bench: how each CostOracle behaves as the physical
// topology grows from 10^4 toward 10^6 hosts. For every (hosts, oracle)
// cell it measures oracle build time, steady-state query throughput over a
// pre-drawn workload, estimation error against exact Dijkstra delays on a
// sampled pair set, and the oracle's own estimation-state footprint —
// dropped into BENCH_scale.json (plus a scale.csv table) next to the other
// benches' perf records.
//
// Query sources are confined to a small sampled source set (--sources) so
// the exact oracle's row cache stays bounded: that is the regime the exact
// oracle is usable in at all. The approximate oracles answer ANY pair from
// O(K*N)/O(D*N) coordinates — the point this bench exists to demonstrate —
// so the same workload exercises both fairly.
//
// Determinism: topology, source set, query pairs, and error-sample pairs
// are all drawn from named streams of --seed; two runs produce identical
// tables and identical JSON apart from wall-clock/RSS perf fields.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"

namespace {

using namespace ace;
using namespace ace::bench;

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

struct ScaleRecord {
  std::size_t hosts = 0;
  std::string oracle;
  double build_s = 0;
  double queries_per_sec = 0;
  double mean_rel_error = 0;
  std::size_t error_pairs = 0;     // pairs the error mean is over
  std::size_t oracle_bytes = 0;    // estimation state (CostOracle)
  std::size_t row_cache_bytes = 0; // physical row cache after this cell
  double rebuild_s = 0;  // ACE tree rebuilds on a bounded overlay (below)
};

}  // namespace

int main(int argc, char** argv) {
  const Options options{argc, argv};
  // Standard knobs reused where they fit: --queries (workload size),
  // --seed, --out-dir. Bench-specific: --hosts (comma list of topology
  // sizes), --oracles (comma list of specs), --sources (query source-set
  // size), --sample-pairs (error sample size).
  BenchScale scale = parse_scale(options, /*default_phys=*/0,
                                 /*default_peers=*/0,
                                 /*default_queries=*/200000,
                                 /*default_rounds=*/0);
  const std::string hosts_list =
      options.get_string("hosts", "10000,100000");
  const std::string oracle_list =
      options.get_string("oracles", "exact,landmark:16,vivaldi:4");
  const std::size_t source_count =
      static_cast<std::size_t>(options.get_int("sources", 32));
  const std::size_t sample_pairs =
      static_cast<std::size_t>(options.get_int("sample-pairs", 2000));

  std::vector<std::size_t> host_scales;
  for (const std::string& h : split_list(hosts_list))
    host_scales.push_back(static_cast<std::size_t>(std::stoull(h)));
  const std::vector<std::string> oracle_specs = split_list(oracle_list);
  for (const std::string& spec : oracle_specs)
    (void)parse_oracle_spec(spec);  // fail fast on a malformed list

  std::printf(
      "# cost-oracle scale bench\n# hosts={%s}, oracles={%s}, queries=%zu, "
      "sources=%zu, sample-pairs=%zu, seed=%llu\n\n",
      hosts_list.c_str(), oracle_list.c_str(), scale.queries, source_count,
      sample_pairs, static_cast<unsigned long long>(scale.seed));

  WallTimer total_timer;
  std::vector<ScaleRecord> records;

  for (const std::size_t hosts : host_scales) {
    // Power-law (BA) physical topology, the paper's model, at this scale.
    // Per-scale streams keep every cell independent of list order.
    Rng topo_rng = Rng::stream(scale.seed + hosts, "scale-topology");
    BaOptions ba;
    ba.nodes = hosts;
    ba.edges_per_node = 2;
    PhysicalNetwork physical{barabasi_albert(ba, topo_rng)};

    // Bounded source set (the exact-feasible regime) + pre-drawn workload.
    Rng query_rng = Rng::stream(scale.seed + hosts, "scale-queries");
    std::vector<HostId> sources;
    for (const std::size_t s :
         query_rng.sample_indices(hosts, std::min(source_count, hosts)))
      // ace-id: boundary(sampled indices range over the physical host table)
      sources.push_back(HostId{static_cast<std::uint32_t>(s)});

    std::vector<std::pair<HostId, HostId>> pairs;
    pairs.reserve(scale.queries);
    for (std::size_t q = 0; q < scale.queries; ++q) {
      const HostId src = sources[query_rng.next_below(sources.size())];
      // ace-id: boundary(a uniform draw below host_count is a host id)
      const HostId dst{
          static_cast<std::uint32_t>(query_rng.next_below(hosts))};
      pairs.emplace_back(src, dst);
    }

    // Error sample: exact ground truth computed once (sources only, so the
    // row cache stays within the same bounded working set).
    std::vector<std::pair<HostId, HostId>> err_pairs;
    std::vector<Weight> err_exact;
    err_pairs.reserve(sample_pairs);
    err_exact.reserve(sample_pairs);
    for (std::size_t i = 0; i < sample_pairs; ++i) {
      const HostId src = sources[query_rng.next_below(sources.size())];
      // ace-id: boundary(a uniform draw below host_count is a host id)
      const HostId dst{
          static_cast<std::uint32_t>(query_rng.next_below(hosts))};
      err_pairs.emplace_back(src, dst);
      err_exact.push_back(physical.delay(src, dst));
    }

    for (const std::string& spec : oracle_specs) {
      ScaleRecord record;
      record.hosts = hosts;
      record.oracle = spec;

      WallTimer build_timer;
      const std::unique_ptr<CostOracle> oracle =
          make_cost_oracle(physical, parse_oracle_spec(spec), scale.seed);
      record.build_s = build_timer.elapsed_s();

      WallTimer query_timer;
      Weight sink = 0;
      for (const auto& [src, dst] : pairs) {
        sink += oracle->delay(src, dst);
        benchmark::DoNotOptimize(sink);
      }
      const double elapsed = query_timer.elapsed_s();
      record.queries_per_sec =
          elapsed > 0 ? static_cast<double>(pairs.size()) / elapsed : 0;

      double err_sum = 0;
      for (std::size_t i = 0; i < err_pairs.size(); ++i) {
        if (err_exact[i] <= 0) continue;  // co-located pair: no ratio
        const Weight est = oracle->delay(err_pairs[i].first,
                                         err_pairs[i].second);
        err_sum += std::abs(est - err_exact[i]) / err_exact[i];
        ++record.error_pairs;
      }
      record.mean_rel_error =
          record.error_pairs > 0
              ? err_sum / static_cast<double>(record.error_pairs)
              : 0;
      record.oracle_bytes = oracle->memory_bytes();
      record.row_cache_bytes = physical.row_cache_stats().bytes;

      // ACE rebuild timing for this cell: a bounded small-world overlay on
      // the same topology (peers capped so the exact oracle stays in its
      // feasible regime), phases 1-2 over three full passes — one cold
      // build the conflict-free batch path can parallelize, then two warm
      // passes the incremental cache should absorb. No establishment, so
      // the overlay never mutates and the cell stays deterministic; only
      // this wall-clock field moves between runs.
      {
        Rng overlay_rng = Rng::stream(scale.seed + hosts, "scale-overlay");
        const std::size_t peers =
            std::min(hosts, std::max<std::size_t>(64, 2 * source_count));
        OverlayOptions overlay_options;
        overlay_options.peers = peers;
        overlay_options.mean_degree = 6.0;
        const Graph logical = small_world_overlay(overlay_options,
                                                  overlay_rng);
        const std::vector<HostId> assigned =
            assign_hosts_uniform(physical, peers, overlay_rng);
        OverlayNetwork overlay{physical, logical, assigned};
        overlay.set_cost_oracle(oracle.get());
        AceConfig ace;
        ace.establish_tree_links = false;
        AceEngine engine{overlay, ace};
        TrialRunner intra{scale.intra_threads};
        if (scale.intra_threads > 1) engine.set_subtask_runner(&intra);
        WallTimer rebuild_timer;
        for (int pass = 0; pass < 3; ++pass)
          (void)engine.rebuild_all_trees();
        record.rebuild_s = rebuild_timer.elapsed_s();
      }
      records.push_back(record);
    }
  }

  TableWriter table{"cost-oracle scale",
                    {"hosts", "oracle", "build_s", "queries/s",
                     "mean_rel_err", "oracle_MiB", "row_cache_MiB",
                     "rebuild_s"}};
  table.set_precision(3);
  stamp_provenance(table, scale);
  for (const ScaleRecord& r : records) {
    table.add_row({static_cast<std::int64_t>(r.hosts), r.oracle, r.build_s,
                   r.queries_per_sec, r.mean_rel_error,
                   static_cast<double>(r.oracle_bytes) / (1 << 20),
                   static_cast<double>(r.row_cache_bytes) / (1 << 20),
                   r.rebuild_s});
  }
  table.print(std::cout, csv_path(scale, "scale"));

  // Custom perf record: one JSON object per (hosts, oracle) cell so
  // tools/bench_compare.py can carry memory/error context; the standard
  // top-level fields (name, wall_time_s, peak_rss_bytes, provenance) match
  // every other BENCH_*.json.
  const std::string path = scale.out_dir + "/BENCH_scale.json";
  std::ofstream out{path};
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return 0;
  }
  double rebuild_total = 0;
  for (const ScaleRecord& r : records) rebuild_total += r.rebuild_s;
  out << "{\n  \"name\": \"scale\",\n";
  out << "  \"wall_time_s\": " << total_timer.elapsed_s() << ",\n";
  out << "  \"rebuild_s\": " << rebuild_total << ",\n";
  out << "  \"trials\": " << records.size() << ",\n";
  out << "  \"threads\": 1,\n";
  out << "  \"intra_threads\": " << scale.intra_threads << ",\n";
  out << "  \"peak_rss_bytes\": " << peak_rss_bytes() << ",\n";
  out << "  \"records\": [";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const ScaleRecord& r = records[i];
    out << (i ? ",\n    {" : "\n    {");
    out << "\"hosts\": " << r.hosts << ", \"oracle\": \""
        << json_escape(r.oracle) << "\", \"build_s\": " << r.build_s
        << ", \"queries_per_sec\": " << r.queries_per_sec
        << ", \"mean_rel_error\": " << r.mean_rel_error
        << ", \"error_pairs\": " << r.error_pairs
        << ", \"oracle_bytes\": " << r.oracle_bytes
        << ", \"row_cache_bytes\": " << r.row_cache_bytes
        << ", \"rebuild_s\": " << r.rebuild_s << "}";
  }
  out << "\n  ],\n";
  ProvenanceEntries entries = run_provenance(scale.seed, scale_digest(scale));
  entries.emplace_back("hosts", hosts_list);
  entries.emplace_back("oracles", oracle_list);
  entries.emplace_back("sources", std::to_string(source_count));
  entries.emplace_back("sample-pairs", std::to_string(sample_pairs));
  out << "  \"provenance\": {";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out << (i ? ",\n    \"" : "\n    \"") << json_escape(entries[i].first)
        << "\": \"" << json_escape(entries[i].second) << "\"";
  }
  out << "\n  }\n}\n";
  std::printf("perf record: %s\n", path.c_str());
  return 0;
}
