// Tables 1 & 2 + Figure 3 reproduction: the paper's worked example of query
// paths and costs over per-peer overlay trees built in 1- and 2-neighbor
// closures, against blind flooding. The OCR of the paper loses the original
// example's letters and constants, so this bench regenerates the same
// *structure* on a concrete five-peer example region: every query
// transmission with its cost, the totals, and the count of twice-traversed
// paths for blind flooding vs h=1 vs h=2.
#include "bench_common.h"

#include <memory>
#include <set>

#include "ace/tree_builder.h"

namespace {

using namespace ace;

struct Example {
  Example() {
    // Hosts on a physical line (delay = host distance) — five peers F, C,
    // D, E, B placed to create a clearly mismatched ring-with-chords
    // overlay, mirroring the shape of the paper's Figure 5 example.
    Graph g{24};
    for (NodeId u = 0; u + 1 < 24; ++u) g.add_edge(u, u + 1, 1.0);
    physical = std::make_unique<PhysicalNetwork>(std::move(g));
    overlay = std::make_unique<OverlayNetwork>(*physical);
    f = overlay->add_peer(HostId{0});
    c = overlay->add_peer(HostId{5});
    d = overlay->add_peer(HostId{9});
    e = overlay->add_peer(HostId{14});
    b = overlay->add_peer(HostId{20});
    overlay->connect(f, c);  // 5
    overlay->connect(c, d);  // 4
    overlay->connect(d, e);  // 5
    overlay->connect(e, b);  // 6
    overlay->connect(f, b);  // 20
    overlay->connect(c, e);  // 9
    overlay->connect(f, d);  // 9
  }

  const char* name(PeerId p) const {
    if (p == f) return "F";
    if (p == c) return "C";
    if (p == d) return "D";
    if (p == e) return "E";
    return "B";
  }

  std::vector<std::vector<PeerId>> blind_sets() const {
    std::vector<std::vector<PeerId>> sets(overlay->peer_count());
    for (const PeerId p : overlay->online_peers())
      for (const auto& n : overlay->neighbors(p))
        sets[p.value()].push_back(peer_of(n));
    return sets;
  }

  std::vector<std::vector<PeerId>> tree_sets(std::uint32_t h) const {
    std::vector<std::vector<PeerId>> sets(overlay->peer_count());
    for (const PeerId p : overlay->online_peers())
      sets[p.value()] = build_local_tree(build_closure(*overlay, p, h)).flooding;
    return sets;
  }

  std::unique_ptr<PhysicalNetwork> physical;
  std::unique_ptr<OverlayNetwork> overlay;
  PeerId f, c, d, e, b;
};

void emit(const Example& ex, const std::string& title,
          const std::vector<std::vector<PeerId>>& sets,
          const std::string& csv) {
  const auto steps = walk_query_over_trees(*ex.overlay, sets, ex.f);
  TableWriter table{title, {"from", "to", "cost", "duplicate"}};
  double total = 0;
  std::size_t duplicates = 0;
  std::set<PeerId> reached;
  for (const auto& s : steps) {
    table.add_row({std::string{ex.name(s.from)}, std::string{ex.name(s.to)},
                   s.cost, std::string{s.duplicate ? "yes" : ""}});
    total += s.cost;
    if (s.duplicate)
      ++duplicates;
    else
      reached.insert(s.to);
  }
  table.set_provenance(build_provenance());
  table.print(std::cout, csv);
  std::printf("total cost = %.0f   unnecessary (duplicate) messages = %zu   "
              "peers reached = %zu of 4\n\n",
              total, duplicates, reached.size());
}

}  // namespace

int main(int argc, char** argv) {
  const ace::Options options{argc, argv};
  if (options.help_requested()) {
    std::printf("bench_tables_example [--out-dir=DIR]\n");
    return 0;
  }
  const std::string out_dir = options.get_string("out-dir", ".");

  Example ex;
  std::printf("# Tables 1-2 / Figure 3 example: query from peer F over the\n"
              "# five-peer example overlay (link costs = physical delays).\n\n");

  TableWriter links{"Example overlay links", {"link", "cost"}};
  for (const ace::Edge& edge : ex.overlay->logical().edges()) {
    links.add_row(
        {std::string{ex.name(static_cast<ace::PeerId>(edge.u))} + "-" +
             ex.name(static_cast<ace::PeerId>(edge.v)),
         edge.weight});
  }
  links.print(std::cout);
  std::printf("\n");

  emit(ex, "Blind flooding (baseline, cf. Figure 3 left)", ex.blind_sets(),
       out_dir + "/tables_example_blind.csv");
  emit(ex, "Table 1: query paths/costs on overlay trees, 1-neighbor closure",
       ex.tree_sets(1), out_dir + "/tables_example_h1.csv");
  emit(ex, "Table 2: query paths/costs on overlay tree, 2-neighbor closure",
       ex.tree_sets(2), out_dir + "/tables_example_h2.csv");
  return 0;
}
