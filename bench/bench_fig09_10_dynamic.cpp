// Figures 9 & 10: dynamic environment. Average traffic cost per query
// (Fig 9, including ACE's own optimization overhead) and average response
// time (Fig 10) over simulated time, for a Gnutella-like system (blind
// flooding under churn) vs the same system with ACE enabled. Paper
// parameters: mean peer lifetime 10 minutes, 0.3 queries/minute/peer, ACE
// optimization twice per minute per peer.
#include "bench_common.h"

namespace {

using namespace ace;
using namespace ace::bench;

DynamicConfig dynamic_config(const BenchScale& scale, bool enable_ace,
                             double duration) {
  DynamicConfig config;
  config.scenario = make_scenario(scale, 6.0);
  config.churn.mean_lifetime_s = 600.0;  // 10 min (paper)
  // "variance ... half of the value of the mean": read as sigma = mean/2
  // (the literal reading, variance = 300 s^2, gives sigma ~ 17 s -- nearly
  // deterministic lifetimes and absurd synchronized churn waves).
  config.churn.lifetime_variance = 300.0 * 300.0;
  config.churn.join_degree = 6;  // fresh joiners keep the density at C
  config.workload.queries_per_peer_per_s = 0.3 / 60.0;  // paper
  config.ace_period_s = 30.0;             // twice per minute (paper)
  config.duration_s = duration;
  config.report_buckets = 12;
  config.enable_ace = enable_ace;
  config.intra_threads = scale.intra_threads;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options{argc, argv};
  if (options.help_requested()) {
    std::printf(
        "bench_fig09_10_dynamic [--phys-nodes=N] [--peers=N] "
        "[--duration=SECONDS] [--seed=N] [--threads=N] [--intra-threads=N] "
        "[--out-dir=DIR]\n");
    return 0;
  }
  BenchScale scale = parse_scale(options, 2048, 384);
  const double duration = options.get_double("duration", 1800.0);
  print_header("Figures 9-10: dynamic environment, Gnutella-like vs ACE",
               scale);

  // The two systems are independent trials; shard them over the runner.
  WallTimer timer;
  TrialRunner runner{scale.threads};
  const std::vector<DynamicResult> results =
      runner.run(2, [&](TrialIndex ti) {
        const std::size_t i = ti.value();
        return run_dynamic(dynamic_config(scale, /*enable_ace=*/i == 1,
                                          duration));
      });
  const DynamicResult& gnutella = results[0];
  const DynamicResult& ace = results[1];

  BenchReport report;
  report.name = "fig09_10";
  report.threads = scale.threads;
  report.intra_threads = scale.intra_threads;
  report.trials = results.size();
  report.wall_time_s = timer.elapsed_s();
  for (const DynamicResult& r : results) {
    report.rebuild_s += r.rebuild_s;
    accumulate(report.engine_cache, r.engine_cache);
  }
  write_bench_json(scale, report);

  TableWriter fig9{
      "Figure 9: avg traffic cost per query over time (overhead included)",
      {"t_end_s", "queries(gnutella)", "gnutella-like", "queries(ace)",
       "ACE", "ACE overhead/query"}};
  fig9.set_precision(0);
  for (std::size_t i = 0; i < gnutella.buckets.size(); ++i) {
    const auto& g = gnutella.buckets[i];
    const auto& a = ace.buckets[i];
    fig9.add_row({g.t_end, static_cast<std::int64_t>(g.queries),
                  g.mean_traffic, static_cast<std::int64_t>(a.queries),
                  a.mean_traffic,
                  a.queries ? a.overhead / static_cast<double>(a.queries)
                            : 0.0});
  }
  stamp_provenance(fig9, scale);
  fig9.print(std::cout, csv_path(scale, "fig09_dynamic_traffic"));
  std::printf("\n");

  TableWriter fig10{"Figure 10: avg response time per query over time",
                    {"t_end_s", "gnutella-like", "ACE"}};
  fig10.set_precision(1);
  for (std::size_t i = 0; i < gnutella.buckets.size(); ++i) {
    fig10.add_row({gnutella.buckets[i].t_end,
                   gnutella.buckets[i].mean_response_time,
                   ace.buckets[i].mean_response_time});
  }
  stamp_provenance(fig10, scale);
  fig10.print(std::cout, csv_path(scale, "fig10_dynamic_response"));

  const double traffic_cut =
      100 * (1 - ace.overall.mean_traffic() / gnutella.overall.mean_traffic());
  const double response_cut =
      100 * (1 - ace.overall.mean_response_time() /
                     gnutella.overall.mean_response_time());
  std::printf(
      "\nOverall: queries gnutella=%zu ace=%zu | churn joins=%zu | "
      "query-traffic cut %.0f%%, response cut %.0f%% "
      "(ACE overhead total %.0f, %.1f%% of its query traffic)\n",
      gnutella.overall.queries(), ace.overall.queries(), ace.joins,
      traffic_cut, response_cut, ace.total_overhead,
      100 * ace.total_overhead /
          (ace.overall.mean_traffic() *
           static_cast<double>(std::max<std::size_t>(1, ace.overall.queries()))));
  return 0;
}
