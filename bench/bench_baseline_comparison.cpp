// Head-to-head comparison of the topology-optimization approaches the
// paper's related-work section discusses, all on the same physical
// topology, peer placement, and query sample:
//
//   blind flooding          — unoptimized Gnutella baseline
//   landmark clustering     — related work [16]: global landmark vectors
//                             (the paper's critique: extra infrastructure,
//                             possible scope loss)
//   LTM                     — the authors' detector-based scheme [9]
//   AOTO                    — the authors' preliminary design [8]
//   ACE (random / closest)  — this paper
//
// Reported: traffic per query, response time, search scope, and the
// optimization overhead each scheme spends per round.
#include "bench_common.h"

#include <functional>

#include "baselines/landmark.h"
#include "baselines/ltm.h"

namespace {

using namespace ace;
using namespace ace::bench;

struct Row {
  std::string name;
  QueryStats stats;
  double overhead_per_round = 0;
};

QueryStats measure(OverlayNetwork& overlay, const ObjectCatalog& catalog,
                   ForwardingMode mode, const ForwardingTable* table,
                   std::size_t queries, Rng& rng,
                   TrialRunner* subtasks = nullptr) {
  CatalogOracle oracle{catalog};
  // Trial-local lane pool: lane-indexed scratches may be shared within one
  // subtask job, never across concurrently-running trials.
  QueryLanes lanes;
  return sample_queries(overlay, catalog, oracle, mode, table, queries, rng,
                        {}, nullptr, subtasks, &lanes);
}

}  // namespace

int main(int argc, char** argv) {
  const Options options{argc, argv};
  if (options.help_requested()) {
    std::printf(
        "bench_baseline_comparison [--phys-nodes=N] [--peers=N] "
        "[--queries=N] [--rounds=N] [--seed=N] [--threads=N] "
        "[--intra-threads=N] [--out-dir=DIR]\n");
    return 0;
  }
  const BenchScale scale = parse_scale(options, 2048, 384, 80, 10);
  print_header("Baseline comparison: flooding / landmark / LTM / AOTO / ACE",
               scale);

  const double mean_degree = 6.0;

  // Shared catalog + measurement RNG (fresh stream per system, same seed).
  // The catalog is read-only during measurement, so sharing it across the
  // runner's trial threads is safe.
  const ObjectCatalog catalog{CatalogConfig{}};

  // Each system is an independent trial (own scenario, engine, and RNG
  // streams); the runner shards them and keeps the rows in system order.
  // The ACE systems additionally share one intra-trial rebuild pool.
  TrialRunner intra{scale.intra_threads};
  TrialRunner* subtasks = scale.intra_threads > 1 ? &intra : nullptr;
  std::vector<std::function<Row()>> systems;

  // --- blind flooding on the mismatched overlay --------------------------
  systems.emplace_back([&] {
    Scenario scenario{make_scenario(scale, mean_degree)};
    Rng mrng{scale.seed ^ 0x11};
    return Row{"blind flooding",
               measure(scenario.overlay(), catalog,
                       ForwardingMode::kBlindFlooding, nullptr, scale.queries,
                       mrng, subtasks),
               0.0};
  });

  // --- landmark clustering ------------------------------------------------
  systems.emplace_back([&] {
    Scenario scenario{make_scenario(scale, mean_degree)};
    Rng build_rng{scale.seed ^ 0x22};
    std::vector<HostId> hosts;
    for (PeerId p{0}; p < scenario.overlay().peer_count(); ++p)
      hosts.push_back(scenario.overlay().host_of(p));
    LandmarkConfig config;
    config.landmarks = 8;
    // Each peer initiates 3 links -> mean degree ~6, matching the other
    // systems' C. No random links: the pure scheme, so its scope-loss
    // failure mode (the paper's critique) stays observable.
    config.proximity_links = 3;
    config.random_links = 0;
    OverlayNetwork clustered = build_landmark_overlay(
        scenario.physical(), hosts, config, build_rng);
    Rng mrng{scale.seed ^ 0x11};
    return Row{"landmark clustering",
               measure(clustered, catalog, ForwardingMode::kBlindFlooding,
                       nullptr, scale.queries, mrng, subtasks),
               0.0};
  });

  // --- HPF ([3]): partial flooding + periodic full floods, no topology
  //     optimization at all ------------------------------------------------
  systems.emplace_back([&] {
    Scenario scenario{make_scenario(scale, mean_degree)};
    Rng mrng{scale.seed ^ 0x11};
    CatalogOracle oracle{catalog};
    QueryOptions hpf_options;
    hpf_options.hpf_partial = 3;
    hpf_options.hpf_period = 3;
    QueryLanes lanes;
    return Row{"HPF (partial flood, [3])",
               sample_queries(scenario.overlay(), catalog, oracle,
                              ForwardingMode::kHybridPeriodical, nullptr,
                              scale.queries, mrng, hpf_options, nullptr,
                              subtasks, &lanes),
               0.0};
  });

  // --- LTM ----------------------------------------------------------------
  systems.emplace_back([&] {
    Scenario scenario{make_scenario(scale, mean_degree)};
    LtmEngine engine{scenario.overlay(), LtmConfig{}};
    double overhead = 0;
    for (std::size_t r = 0; r < scale.rounds; ++r)
      overhead += engine.step_round(scenario.rng()).total_overhead();
    Rng mrng{scale.seed ^ 0x11};
    return Row{"LTM (detector, [9])",
               measure(scenario.overlay(), catalog,
                       ForwardingMode::kBlindFlooding, nullptr, scale.queries,
                       mrng, subtasks),
               overhead / static_cast<double>(scale.rounds)};
  });

  // --- AOTO ---------------------------------------------------------------
  systems.emplace_back([&] {
    Scenario scenario{make_scenario(scale, mean_degree)};
    AotoEngine engine{scenario.overlay(), AotoConfig{}};
    double overhead = 0;
    for (std::size_t r = 0; r < scale.rounds; ++r)
      overhead += engine.step_round(scenario.rng()).total_overhead();
    Rng mrng{scale.seed ^ 0x11};
    return Row{"AOTO ([8])",
               measure(scenario.overlay(), catalog,
                       ForwardingMode::kTreeRouting, &engine.forwarding(),
                       scale.queries, mrng, subtasks),
               overhead / static_cast<double>(scale.rounds)};
  });

  // --- ACE, random and closest policies ------------------------------------
  for (const ReplacementPolicy policy :
       {ReplacementPolicy::kRandom, ReplacementPolicy::kClosest}) {
    systems.emplace_back([&, policy] {
      Scenario scenario{make_scenario(scale, mean_degree)};
      AceConfig config;
      config.optimizer.policy = policy;
      AceEngine engine{scenario.overlay(), config};
      if (subtasks != nullptr) engine.set_subtask_runner(subtasks);
      double overhead = 0;
      for (std::size_t r = 0; r < scale.rounds; ++r)
        overhead += engine.step_round(scenario.rng()).total_overhead();
      Rng mrng{scale.seed ^ 0x11};
      return Row{
          std::string{"ACE ("} + replacement_policy_name(policy) + ")",
          measure(scenario.overlay(), catalog, ForwardingMode::kTreeRouting,
                  &engine.forwarding(), scale.queries, mrng, subtasks),
          overhead / static_cast<double>(scale.rounds)};
    });
  }

  WallTimer timer;
  TrialRunner runner{scale.threads};
  const std::vector<Row> rows =
      runner.run(systems.size(), [&](TrialIndex i) { return systems[i.value()](); });

  BenchReport report;
  report.name = "baseline_comparison";
  report.threads = scale.threads;
  report.intra_threads = scale.intra_threads;
  report.trials = systems.size();
  report.wall_time_s = timer.elapsed_s();
  write_bench_json(scale, report);

  const double base_traffic = rows.front().stats.mean_traffic();
  const double base_response = rows.front().stats.mean_response_time();

  TableWriter table{"Optimization scheme comparison (C=6)",
                    {"system", "traffic/query", "cut %", "response",
                     "cut %", "scope", "overhead/round"}};
  table.set_precision(1);
  for (const Row& row : rows) {
    table.add_row({row.name, row.stats.mean_traffic(),
                   100 * (1 - row.stats.mean_traffic() / base_traffic),
                   row.stats.mean_response_time(),
                   100 * (1 - row.stats.mean_response_time() / base_response),
                   row.stats.mean_scope(), row.overhead_per_round});
  }
  stamp_provenance(table, scale);
  table.print(std::cout, csv_path(scale, "baseline_comparison"));
  std::printf("\nNote the landmark row's scope column: coordinate clustering "
              "can shrink the reachable set, the paper's main argument "
              "against global landmark schemes.\n");
  return 0;
}
