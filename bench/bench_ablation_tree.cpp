// Ablation (DESIGN.md §6): phase-2 tree construction — the paper's Prim MST
// versus a Dijkstra shortest-path tree rooted at the source. The MST
// minimizes total link usage (traffic); the SPT minimizes source-to-member
// delay (response time). The paper picks MST; this bench quantifies what
// that choice trades.
#include "bench_common.h"

namespace {

using namespace ace;
using namespace ace::bench;

struct Outcome {
  double traffic;
  double response;
  double scope;
};

Outcome run(const BenchScale& scale, double degree, TreeKind kind,
            std::size_t rounds, std::size_t queries) {
  Scenario scenario{make_scenario(scale, degree)};
  AceConfig config;
  config.tree_kind = kind;
  AceEngine engine{scenario.overlay(), config};
  for (std::size_t r = 0; r < rounds; ++r) engine.step_round(scenario.rng());
  const QueryStats stats = scenario.measure(
      ForwardingMode::kTreeRouting, &engine.forwarding(), queries);
  return {stats.mean_traffic(), stats.mean_response_time(),
          stats.mean_scope()};
}

}  // namespace

int main(int argc, char** argv) {
  const Options options{argc, argv};
  if (options.help_requested()) {
    std::printf(
        "bench_ablation_tree [--phys-nodes=N] [--peers=N] [--queries=N] "
        "[--rounds=N] [--seed=N] [--out-dir=DIR]\n");
    return 0;
  }
  const BenchScale scale = parse_scale(options, 2048, 384, 80, 10);
  print_header("Ablation: phase-2 tree kind (Prim MST vs shortest-path tree)",
               scale);

  TableWriter table{"MST vs SPT local trees",
                    {"C", "tree", "traffic/query", "response time", "scope"}};
  table.set_precision(1);
  for (const double degree : {4.0, 6.0, 8.0, 10.0}) {
    Scenario baseline_scenario{make_scenario(scale, degree)};
    const QueryStats blind = baseline_scenario.measure_blind(scale.queries);
    table.add_row({degree, std::string{"blind flooding"},
                   blind.mean_traffic(), blind.mean_response_time(),
                   blind.mean_scope()});
    const Outcome mst = run(scale, degree, TreeKind::kMinimumSpanning,
                            scale.rounds, scale.queries);
    table.add_row({degree, std::string{"MST (paper)"}, mst.traffic,
                   mst.response, mst.scope});
    const Outcome spt = run(scale, degree, TreeKind::kShortestPath,
                            scale.rounds, scale.queries);
    table.add_row({degree, std::string{"SPT"}, spt.traffic, spt.response,
                   spt.scope});
  }
  stamp_provenance(table, scale);
  table.print(std::cout, csv_path(scale, "ablation_tree"));
  std::printf(
      "\nFinding: the paper's MST choice is essential. A shortest-path tree "
      "over the probed\nlocal cost graph degenerates to a star (probed "
      "delays obey the triangle inequality,\nso the direct edge is always "
      "the shortest path): every neighbor stays a flooding\nneighbor, phase "
      "3 never engages, and 'SPT ACE' collapses to blind flooding.\n");
  return 0;
}
