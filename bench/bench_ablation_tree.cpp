// Ablation (DESIGN.md §6): phase-2 tree construction — the paper's Prim MST
// versus a Dijkstra shortest-path tree rooted at the source. The MST
// minimizes total link usage (traffic); the SPT minimizes source-to-member
// delay (response time). The paper picks MST; this bench quantifies what
// that choice trades.
#include "bench_common.h"

namespace {

using namespace ace;
using namespace ace::bench;

struct Outcome {
  double traffic;
  double response;
  double scope;
  double rebuild_s;
};

Outcome run(const BenchScale& scale, double degree, TreeKind kind,
            std::size_t rounds, std::size_t queries, TrialRunner* subtasks) {
  Scenario scenario{make_scenario(scale, degree)};
  AceConfig config;
  config.tree_kind = kind;
  AceEngine engine{scenario.overlay(), config};
  if (subtasks != nullptr) engine.set_subtask_runner(subtasks);
  WallTimer rebuild_timer;
  for (std::size_t r = 0; r < rounds; ++r) engine.step_round(scenario.rng());
  const double rebuild_s = rebuild_timer.elapsed_s();
  const QueryStats stats = scenario.measure(
      ForwardingMode::kTreeRouting, &engine.forwarding(), queries);
  return {stats.mean_traffic(), stats.mean_response_time(),
          stats.mean_scope(), rebuild_s};
}

}  // namespace

int main(int argc, char** argv) {
  const Options options{argc, argv};
  if (options.help_requested()) {
    std::printf(
        "bench_ablation_tree [--phys-nodes=N] [--peers=N] [--queries=N] "
        "[--rounds=N] [--seed=N] [--threads=N] [--intra-threads=N] "
        "[--out-dir=DIR]\n");
    return 0;
  }
  const BenchScale scale = parse_scale(options, 2048, 384, 80, 10);
  print_header("Ablation: phase-2 tree kind (Prim MST vs shortest-path tree)",
               scale);

  TableWriter table{"MST vs SPT local trees",
                    {"C", "tree", "traffic/query", "response time", "scope"}};
  table.set_precision(1);

  // Every (degree, tree-kind) cell is an independent trial; shard them all
  // and emit the rows from the in-order results.
  struct Cell_ {
    double degree;
    int kind;  // 0 = blind, 1 = MST, 2 = SPT
  };
  std::vector<Cell_> cells;
  for (const double degree : {4.0, 6.0, 8.0, 10.0})
    for (int kind = 0; kind < 3; ++kind) cells.push_back({degree, kind});

  WallTimer timer;
  TrialRunner intra{scale.intra_threads};
  TrialRunner* subtasks = scale.intra_threads > 1 ? &intra : nullptr;
  TrialRunner runner{scale.threads};
  const std::vector<Outcome> outcomes =
      runner.run(cells.size(), [&](TrialIndex ti) {
        const std::size_t i = ti.value();
        const Cell_& cell = cells[i];
        if (cell.kind == 0) {
          Scenario scenario{make_scenario(scale, cell.degree)};
          const QueryStats blind = scenario.measure_blind(scale.queries);
          return Outcome{blind.mean_traffic(), blind.mean_response_time(),
                         blind.mean_scope(), 0.0};
        }
        return run(scale, cell.degree,
                   cell.kind == 1 ? TreeKind::kMinimumSpanning
                                  : TreeKind::kShortestPath,
                   scale.rounds, scale.queries, subtasks);
      });

  BenchReport report;
  report.name = "ablation_tree";
  report.threads = scale.threads;
  report.intra_threads = scale.intra_threads;
  report.trials = cells.size();
  report.wall_time_s = timer.elapsed_s();
  for (const Outcome& o : outcomes) report.rebuild_s += o.rebuild_s;
  write_bench_json(scale, report);

  static const char* kKindName[] = {"blind flooding", "MST (paper)", "SPT"};
  for (std::size_t i = 0; i < cells.size(); ++i) {
    table.add_row({cells[i].degree, std::string{kKindName[cells[i].kind]},
                   outcomes[i].traffic, outcomes[i].response,
                   outcomes[i].scope});
  }
  stamp_provenance(table, scale);
  table.print(std::cout, csv_path(scale, "ablation_tree"));
  std::printf(
      "\nFinding: the paper's MST choice is essential. A shortest-path tree "
      "over the probed\nlocal cost graph degenerates to a star (probed "
      "delays obey the triangle inequality,\nso the direct edge is always "
      "the shortest path): every neighbor stays a flooding\nneighbor, phase "
      "3 never engages, and 'SPT ACE' collapses to blind flooding.\n");
  return 0;
}
