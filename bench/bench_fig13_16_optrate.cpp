// Figures 13-16: the gain/penalty ("optimization rate") trade-off.
//   Fig 13: optimization rate vs. closure depth h, C = 10, curves R=1.0..2.0
//   Fig 14: optimization rate vs. closure depth h, C = 4,  curves R=1.0..2.0
//   Fig 15: optimization rate vs. frequency ratio R, C = 10, curves h=1..8
//   Fig 16: optimization rate vs. frequency ratio R, C = 4,  curves h=1..8
// Shapes to reproduce: rate is linear in R; rate grows with h then
// saturates; rate > 1 (ACE worth using) requires R above a threshold; the
// minimal h for rate >= 1 shrinks as R or C grows; for R = 1 the rate stays
// below 1.
#include "bench_common.h"

namespace {

using namespace ace;
using namespace ace::bench;

void fig_rate_vs_h(const std::string& title, const BenchScale& scale,
                   const std::vector<DepthSample>& sweep,
                   std::span<const double> ratios, const std::string& csv) {
  std::vector<std::string> columns{"h"};
  for (const double r : ratios) columns.push_back("R=" + fixed(r, 1));
  TableWriter table{title, columns};
  table.set_precision(2);
  for (const DepthSample& s : sweep) {
    std::vector<Cell> row{static_cast<std::int64_t>(s.h)};
    for (const double r : ratios) row.emplace_back(optimization_rate(s, r));
    table.add_row(std::move(row));
  }
  stamp_provenance(table, scale);
  table.print(std::cout, csv);
  std::printf("\n");
}

void fig_rate_vs_r(const std::string& title, const BenchScale& scale,
                   const std::vector<DepthSample>& sweep,
                   std::span<const double> ratios, const std::string& csv) {
  std::vector<std::string> columns{"R"};
  for (const DepthSample& s : sweep)
    columns.push_back("h=" + std::to_string(s.h));
  TableWriter table{title, columns};
  table.set_precision(2);
  for (const double r : ratios) {
    std::vector<Cell> row{r};
    for (const DepthSample& s : sweep)
      row.emplace_back(optimization_rate(s, r));
    table.add_row(std::move(row));
  }
  stamp_provenance(table, scale);
  table.print(std::cout, csv);
  std::printf("\n");
}

// Smallest h achieving rate >= 1 at ratio R; 0 when none does.
std::uint32_t minimal_h(const std::vector<DepthSample>& sweep, double ratio) {
  for (const DepthSample& s : sweep)
    if (optimization_rate(s, ratio) >= 1.0) return s.h;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options{argc, argv};
  if (options.help_requested()) {
    std::printf(
        "bench_fig13_16_optrate [--phys-nodes=N] [--peers=N] [--queries=N] "
        "[--rounds=N] [--max-depth=N] [--maintenance-rounds=N] [--seed=N] "
        "[--threads=N] [--intra-threads=N] [--out-dir=DIR]\n");
    return 0;
  }
  BenchScale scale = parse_scale(options, 2048, 384, 80, 8);
  const auto max_depth =
      static_cast<std::uint32_t>(options.get_int("max-depth", 8));
  // Steady-state segment after the optimization rounds: phases 1-2 only,
  // every figure byte-identical to --maintenance-rounds=0 (see
  // run_depth_sweep). This is where the incremental cache pays off — the
  // optimization rounds churn the topology every step, the steady state
  // does not — so the cache counters in BENCH_fig13_16_optrate.json
  // measure both regimes.
  const auto maintenance_rounds = static_cast<std::size_t>(
      options.get_int("maintenance-rounds", 20));
  print_header("Figures 13-16: optimization rate (gain/penalty) vs. h and R",
               scale);

  std::vector<std::uint32_t> depths;
  for (std::uint32_t h = 1; h <= max_depth; ++h) depths.push_back(h);

  WallTimer timer;
  const auto sweep_c10 = run_depth_sweep(make_scenario(scale, 10.0),
                                         AceConfig{}, depths, scale.rounds,
                                         scale.queries, nullptr, {},
                                         scale.threads, maintenance_rounds,
                                         scale.intra_threads);
  const auto sweep_c4 = run_depth_sweep(make_scenario(scale, 4.0),
                                        AceConfig{}, depths, scale.rounds,
                                        scale.queries, nullptr, {},
                                        scale.threads, maintenance_rounds,
                                        scale.intra_threads);

  BenchReport report;
  report.name = "fig13_16";
  report.wall_time_s = timer.elapsed_s();
  report.trials = sweep_c10.size() + sweep_c4.size();
  report.threads = scale.threads;
  report.intra_threads = scale.intra_threads;
  for (const DepthSample& s : sweep_c10) {
    report.rebuild_s += s.rebuild_s;
    accumulate(report.oracle_cache, s.oracle_cache);
    accumulate(report.engine_cache, s.engine_cache);
  }
  for (const DepthSample& s : sweep_c4) {
    report.rebuild_s += s.rebuild_s;
    accumulate(report.oracle_cache, s.oracle_cache);
    accumulate(report.engine_cache, s.engine_cache);
  }
  write_bench_json(scale, report);

  const std::vector<double> h_ratios{1.0, 1.2, 1.4, 1.6, 1.8, 2.0};
  fig_rate_vs_h("Figure 13: optimization rate vs. h (C=10)", scale, sweep_c10,
                h_ratios, csv_path(scale, "fig13_rate_vs_h_c10"));
  fig_rate_vs_h("Figure 14: optimization rate vs. h (C=4)", scale, sweep_c4,
                h_ratios, csv_path(scale, "fig14_rate_vs_h_c4"));

  const std::vector<double> r_ratios{0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0};
  fig_rate_vs_r("Figure 15: optimization rate vs. R (C=10)", scale, sweep_c10,
                r_ratios, csv_path(scale, "fig15_rate_vs_r_c10"));
  fig_rate_vs_r("Figure 16: optimization rate vs. R (C=4)", scale, sweep_c4,
                r_ratios, csv_path(scale, "fig16_rate_vs_r_c4"));

  std::printf("Minimal h for optimization rate >= 1 (0 = never):\n");
  for (const double r : h_ratios) {
    std::printf("  R=%.1f: C=10 -> h=%u, C=4 -> h=%u\n", r,
                minimal_h(sweep_c10, r), minimal_h(sweep_c4, r));
  }
  return 0;
}
