// Ablation (DESIGN.md §2/§3): the h-hop table-propagation overhead model.
// The default "bounded digest" accounting (aggregation + change
// suppression; grows ~linearly in h) against the worst-case "full
// propagation" accounting (every member's table travels to every source
// each round; grows with the closure size). The choice changes Figures
// 12-16's absolute overheads and therefore where the optimization rate
// crosses 1 — this bench makes the sensitivity explicit.
#include "bench_common.h"

namespace {

using namespace ace;
using namespace ace::bench;

}  // namespace

int main(int argc, char** argv) {
  const Options options{argc, argv};
  if (options.help_requested()) {
    std::printf(
        "bench_ablation_overhead [--phys-nodes=N] [--peers=N] [--queries=N] "
        "[--rounds=N] [--max-depth=N] [--seed=N] [--threads=N] "
        "[--intra-threads=N] [--out-dir=DIR]\n");
    return 0;
  }
  const BenchScale scale = parse_scale(options, 2048, 256, 60, 6);
  const auto max_depth =
      static_cast<std::uint32_t>(options.get_int("max-depth", 6));
  print_header("Ablation: overhead accounting model (digest vs full "
               "propagation)",
               scale);

  std::vector<std::uint32_t> depths;
  for (std::uint32_t h = 1; h <= max_depth; ++h) depths.push_back(h);

  AceConfig digest;
  digest.overhead_model = OverheadModel::kBoundedDigest;
  AceConfig full;
  full.overhead_model = OverheadModel::kFullPropagation;

  WallTimer timer;
  const auto digest_sweep = run_depth_sweep(
      make_scenario(scale, 6.0), digest, depths, scale.rounds, scale.queries,
      nullptr, {}, scale.threads, 0, scale.intra_threads);
  const auto full_sweep = run_depth_sweep(
      make_scenario(scale, 6.0), full, depths, scale.rounds, scale.queries,
      nullptr, {}, scale.threads, 0, scale.intra_threads);

  BenchReport report;
  report.name = "ablation_overhead";
  report.wall_time_s = timer.elapsed_s();
  report.trials = digest_sweep.size() + full_sweep.size();
  report.threads = scale.threads;
  report.intra_threads = scale.intra_threads;
  for (const DepthSample& s : digest_sweep) {
    report.rebuild_s += s.rebuild_s;
    accumulate(report.oracle_cache, s.oracle_cache);
    accumulate(report.engine_cache, s.engine_cache);
  }
  for (const DepthSample& s : full_sweep) {
    report.rebuild_s += s.rebuild_s;
    accumulate(report.oracle_cache, s.oracle_cache);
    accumulate(report.engine_cache, s.engine_cache);
  }
  write_bench_json(scale, report);

  TableWriter table{"Overhead per round and optimization rate at R=2 (C=6)",
                    {"h", "digest overhead", "full overhead",
                     "rate@R=2 (digest)", "rate@R=2 (full)"}};
  table.set_precision(2);
  for (std::size_t i = 0; i < depths.size(); ++i) {
    table.add_row({static_cast<std::int64_t>(depths[i]),
                   digest_sweep[i].overhead_per_round,
                   full_sweep[i].overhead_per_round,
                   optimization_rate(digest_sweep[i], 2.0),
                   optimization_rate(full_sweep[i], 2.0)});
  }
  stamp_provenance(table, scale);
  table.print(std::cout, csv_path(scale, "ablation_overhead"));
  std::printf("\nExpected: both models agree at h=1; full propagation blows "
              "up with the closure size, pushing the rate-=1 crossover to "
              "much larger R for deep closures.\n");
  return 0;
}
