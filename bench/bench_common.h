// Shared plumbing for the figure/table benches: CLI/env configuration with
// paper-scale knobs, plus the CSV output directory. Every bench prints the
// paper-shaped ASCII table to stdout and drops a CSV next to the binary
// (or into --out-dir).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "ace/p2p_lab.h"

namespace ace::bench {

struct BenchScale {
  std::size_t physical_nodes;
  std::size_t peers;
  std::size_t queries;
  std::size_t rounds;
  std::uint64_t seed;
  std::size_t threads;
  // Intra-trial rebuild lanes (engine batch path, DESIGN.md §15). Like
  // --threads, any value yields byte-identical tables/CSVs — only
  // wall-clock and rebuild_s move — so it is NOT folded into scale_digest.
  std::size_t intra_threads;
  std::string out_dir;
  // Cost-oracle spec (exact | landmark:K | vivaldi:D). "exact" attaches no
  // oracle and leaves every output byte-identical to pre-oracle builds.
  std::string oracle;
};

// Common knobs: --phys-nodes / ACE_PHYS_NODES, --peers / ACE_PEERS,
// --queries / ACE_QUERIES, --rounds / ACE_ROUNDS, --seed / ACE_SEED,
// --threads / ACE_THREADS, --intra-threads / ACE_INTRA_THREADS,
// --out-dir / ACE_OUT_DIR, --oracle / ACE_ORACLE.
// Paper-scale runs:
// ACE_PHYS_NODES=20000 ACE_PEERS=8000 (slower; defaults keep the whole
// suite in minutes). --threads shards independent trials over a
// TrialRunner pool; --intra-threads parallelizes rebuild batches *within*
// each trial; every table and CSV is byte-identical at any value of either.
inline BenchScale parse_scale(const Options& options,
                              std::size_t default_phys = 2048,
                              std::size_t default_peers = 512,
                              std::size_t default_queries = 120,
                              std::size_t default_rounds = 12) {
  BenchScale scale;
  scale.physical_nodes = static_cast<std::size_t>(
      options.get_int("phys-nodes", static_cast<std::int64_t>(default_phys)));
  scale.peers = static_cast<std::size_t>(
      options.get_int("peers", static_cast<std::int64_t>(default_peers)));
  scale.queries = static_cast<std::size_t>(
      options.get_int("queries", static_cast<std::int64_t>(default_queries)));
  scale.rounds = static_cast<std::size_t>(
      options.get_int("rounds", static_cast<std::int64_t>(default_rounds)));
  scale.seed = static_cast<std::uint64_t>(options.get_int("seed", 20040326));
  scale.threads = static_cast<std::size_t>(options.get_int("threads", 1));
  scale.intra_threads =
      static_cast<std::size_t>(options.get_int("intra-threads", 1));
  scale.out_dir = options.get_string("out-dir", ".");
  scale.oracle = options.get_string("oracle", "exact");
  return scale;
}

// Parsed form of the scale's oracle spec (validates it as a side effect).
inline OracleConfig oracle_config(const BenchScale& scale) {
  return parse_oracle_spec(scale.oracle);
}

inline ScenarioConfig make_scenario(const BenchScale& scale,
                                    double mean_degree) {
  ScenarioConfig config;
  config.physical_nodes = scale.physical_nodes;
  config.peers = scale.peers;
  config.mean_degree = mean_degree;
  config.seed = scale.seed;
  config.catalog.object_count = 500;
  config.catalog.base_replication = 0.1;
  config.catalog.min_replication = 0.01;
  config.oracle = oracle_config(scale);
  return config;
}

inline std::string csv_path(const BenchScale& scale, const std::string& name) {
  return scale.out_dir + "/" + name + ".csv";
}

// FNV digest of the knobs that shape the run — stamped into CSV provenance
// so a figure file can be matched to the exact configuration behind it.
inline std::uint64_t scale_digest(const BenchScale& scale) {
  Fnv1a digest;
  digest.update(static_cast<std::uint64_t>(scale.physical_nodes));
  digest.update(static_cast<std::uint64_t>(scale.peers));
  digest.update(static_cast<std::uint64_t>(scale.queries));
  digest.update(static_cast<std::uint64_t>(scale.rounds));
  // Exact runs fold nothing extra, so their config digest — and therefore
  // every provenance header on disk — is byte-identical to pre-oracle
  // builds. Approximate runs fold the canonical spec.
  const OracleConfig oracle = oracle_config(scale);
  if (oracle.kind != OracleKind::kExact)
    digest.update(std::string_view{oracle_spec(oracle)});
  return digest.value();
}

// Attaches `# git/build-type/seed/config-digest` comment lines to the
// table's CSV output (plus `# oracle:` for approximate runs). Call once per
// TableWriter before print().
inline void stamp_provenance(TableWriter& table, const BenchScale& scale) {
  ProvenanceEntries entries = run_provenance(scale.seed, scale_digest(scale));
  append_oracle_provenance(entries, oracle_config(scale));
  table.set_provenance(std::move(entries));
}

inline void print_header(const std::string& what, const BenchScale& scale) {
  std::printf(
      "# %s\n# physical=%zu hosts, peers=%zu, queries/cell=%zu, "
      "rounds=%zu, seed=%llu, threads=%zu\n\n",
      what.c_str(), scale.physical_nodes, scale.peers, scale.queries,
      scale.rounds, static_cast<unsigned long long>(scale.seed),
      scale.threads);
}

// Wall-clock stopwatch for the perf record. This is the one sanctioned use
// of real time in the repo: it measures the bench process itself and is
// reported only in BENCH_*.json, never fed into simulation results.
class WallTimer {
 public:
  WallTimer()
      // ace-lint: allow(banned-clock): perf measurement only — wall time
      // goes to BENCH_*.json, never into simulation state.
      : start_{std::chrono::steady_clock::now()} {}

  double elapsed_s() const {
    // ace-lint: allow(banned-clock): perf measurement only (see ctor).
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Peak resident set size of this process in bytes (getrusage ru_maxrss),
// or 0 where the platform doesn't provide it. Captured centrally by
// write_bench_json so every BENCH_*.json carries a memory high-water mark
// next to its wall time; tools/bench_compare.py reports it informationally
// and never gates on it.
inline std::size_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

// Machine-readable perf record every bench drops next to its CSVs
// (BENCH_<name>.json). tools/bench_compare.py diffs these against the
// checked-in baselines to catch wall-clock regressions in CI.
struct BenchReport {
  std::string name;           // bench id, e.g. "fig13_16"
  double wall_time_s = 0;     // whole-bench wall time
  // Wall time spent inside engine rounds across all trials — the portion
  // the intra-trial batch path accelerates. bench_compare.py gates on it
  // like wall_time_s.
  double rebuild_s = 0;
  std::size_t trials = 0;     // independent trials executed
  std::size_t threads = 1;    // TrialRunner width used
  std::size_t intra_threads = 1;  // intra-trial rebuild lanes used
  RowCacheStats oracle_cache{};  // delay-oracle cache totals over all trials
  // Incremental-engine cache totals over all trials (closure builds/hits,
  // invalidations, tree builds, query-snapshot rebuilds — DESIGN.md §11).
  CacheCounters engine_cache{};
};

// Sums the monotonic counters across trials; rows/bytes are point-in-time
// occupancy gauges, so the aggregate keeps the high-water mark instead of a
// meaningless total.
inline void accumulate(RowCacheStats& into, const RowCacheStats& from) {
  into.hits += from.hits;
  into.misses += from.misses;
  into.evictions += from.evictions;
  into.rows = std::max(into.rows, from.rows);
  into.bytes = std::max(into.bytes, from.bytes);
}

// All engine-cache counters are monotonic; a plain sum aggregates trials.
inline void accumulate(CacheCounters& into, const CacheCounters& from) {
  into.merge(from);
}

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // drop control chars
    out.push_back(c);
  }
  return out;
}

inline void write_bench_json(const BenchScale& scale,
                             const BenchReport& report) {
  const std::string path =
      scale.out_dir + "/BENCH_" + report.name + ".json";
  std::ofstream out{path};
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  const double tps = report.wall_time_s > 0
                         ? static_cast<double>(report.trials) /
                               report.wall_time_s
                         : 0.0;
  out << "{\n";
  out << "  \"name\": \"" << json_escape(report.name) << "\",\n";
  out << "  \"wall_time_s\": " << report.wall_time_s << ",\n";
  out << "  \"rebuild_s\": " << report.rebuild_s << ",\n";
  out << "  \"trials\": " << report.trials << ",\n";
  out << "  \"trials_per_sec\": " << tps << ",\n";
  out << "  \"threads\": " << report.threads << ",\n";
  out << "  \"intra_threads\": " << report.intra_threads << ",\n";
  out << "  \"peak_rss_bytes\": " << peak_rss_bytes() << ",\n";
  out << "  \"oracle_cache\": {\n";
  out << "    \"hits\": " << report.oracle_cache.hits << ",\n";
  out << "    \"misses\": " << report.oracle_cache.misses << ",\n";
  out << "    \"evictions\": " << report.oracle_cache.evictions << "\n";
  out << "  },\n";
  out << "  \"engine_cache\": {\n";
  out << "    \"closure_builds\": " << report.engine_cache.closure_builds
      << ",\n";
  out << "    \"closure_hits\": " << report.engine_cache.closure_hits << ",\n";
  out << "    \"invalidations\": " << report.engine_cache.invalidations
      << ",\n";
  out << "    \"tree_builds\": " << report.engine_cache.tree_builds << ",\n";
  out << "    \"snapshot_rebuilds\": "
      << report.engine_cache.snapshot_rebuilds << "\n";
  out << "  },\n";
  out << "  \"provenance\": {";
  ProvenanceEntries entries =
      run_provenance(scale.seed, scale_digest(scale));
  append_oracle_provenance(entries, oracle_config(scale));
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out << (i ? ",\n    \"" : "\n    \"") << json_escape(entries[i].first)
        << "\": \"" << json_escape(entries[i].second) << "\"";
  }
  out << "\n  }\n";
  out << "}\n";
  std::printf("perf record: %s\n", path.c_str());
}

}  // namespace ace::bench
