// Shared plumbing for the figure/table benches: CLI/env configuration with
// paper-scale knobs, plus the CSV output directory. Every bench prints the
// paper-shaped ASCII table to stdout and drops a CSV next to the binary
// (or into --out-dir).
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "ace/p2p_lab.h"

namespace ace::bench {

struct BenchScale {
  std::size_t physical_nodes;
  std::size_t peers;
  std::size_t queries;
  std::size_t rounds;
  std::uint64_t seed;
  std::string out_dir;
};

// Common knobs: --phys-nodes / ACE_PHYS_NODES, --peers / ACE_PEERS,
// --queries / ACE_QUERIES, --rounds / ACE_ROUNDS, --seed / ACE_SEED,
// --out-dir / ACE_OUT_DIR. Paper-scale runs: ACE_PHYS_NODES=20000
// ACE_PEERS=8000 (slower; defaults keep the whole suite in minutes).
inline BenchScale parse_scale(const Options& options,
                              std::size_t default_phys = 2048,
                              std::size_t default_peers = 512,
                              std::size_t default_queries = 120,
                              std::size_t default_rounds = 12) {
  BenchScale scale;
  scale.physical_nodes = static_cast<std::size_t>(
      options.get_int("phys-nodes", static_cast<std::int64_t>(default_phys)));
  scale.peers = static_cast<std::size_t>(
      options.get_int("peers", static_cast<std::int64_t>(default_peers)));
  scale.queries = static_cast<std::size_t>(
      options.get_int("queries", static_cast<std::int64_t>(default_queries)));
  scale.rounds = static_cast<std::size_t>(
      options.get_int("rounds", static_cast<std::int64_t>(default_rounds)));
  scale.seed = static_cast<std::uint64_t>(options.get_int("seed", 20040326));
  scale.out_dir = options.get_string("out-dir", ".");
  return scale;
}

inline ScenarioConfig make_scenario(const BenchScale& scale,
                                    double mean_degree) {
  ScenarioConfig config;
  config.physical_nodes = scale.physical_nodes;
  config.peers = scale.peers;
  config.mean_degree = mean_degree;
  config.seed = scale.seed;
  config.catalog.object_count = 500;
  config.catalog.base_replication = 0.1;
  config.catalog.min_replication = 0.01;
  return config;
}

inline std::string csv_path(const BenchScale& scale, const std::string& name) {
  return scale.out_dir + "/" + name + ".csv";
}

// FNV digest of the knobs that shape the run — stamped into CSV provenance
// so a figure file can be matched to the exact configuration behind it.
inline std::uint64_t scale_digest(const BenchScale& scale) {
  Fnv1a digest;
  digest.update(static_cast<std::uint64_t>(scale.physical_nodes));
  digest.update(static_cast<std::uint64_t>(scale.peers));
  digest.update(static_cast<std::uint64_t>(scale.queries));
  digest.update(static_cast<std::uint64_t>(scale.rounds));
  return digest.value();
}

// Attaches `# git/build-type/seed/config-digest` comment lines to the
// table's CSV output. Call once per TableWriter before print().
inline void stamp_provenance(TableWriter& table, const BenchScale& scale) {
  table.set_provenance(run_provenance(scale.seed, scale_digest(scale)));
}

inline void print_header(const std::string& what, const BenchScale& scale) {
  std::printf(
      "# %s\n# physical=%zu hosts, peers=%zu, queries/cell=%zu, "
      "rounds=%zu, seed=%llu\n\n",
      what.c_str(), scale.physical_nodes, scale.peers, scale.queries,
      scale.rounds, static_cast<unsigned long long>(scale.seed));
}

}  // namespace ace::bench
