// Micro-benchmarks (google-benchmark) for the algorithmic substrates:
// Dijkstra rows, Prim MSTs, closure construction, event-queue throughput,
// and single-query execution. These bound the simulation's own costs and
// document the scalability headroom for paper-scale runs.
#include <benchmark/benchmark.h>

#include <memory>

#include "ace/p2p_lab.h"

namespace {

using namespace ace;

Graph make_ba(std::size_t nodes, std::uint64_t seed = 1) {
  Rng rng{seed};
  BaOptions options;
  options.nodes = nodes;
  options.edges_per_node = 2;
  return barabasi_albert(options, rng);
}

void BM_DijkstraBA(benchmark::State& state) {
  const Graph g = make_ba(static_cast<std::size_t>(state.range(0)));
  NodeId source = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dijkstra(g, source));
    source = (source + 7) % static_cast<NodeId>(g.node_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.node_count()));
}
BENCHMARK(BM_DijkstraBA)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_PrimMst(benchmark::State& state) {
  const Graph g = make_ba(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(prim_mst(g, 0));
}
BENCHMARK(BM_PrimMst)->Arg(256)->Arg(1024)->Arg(4096);

struct OverlayFixture {
  explicit OverlayFixture(std::size_t peers, double degree) {
    Rng rng{3};
    physical = std::make_unique<PhysicalNetwork>(make_ba(4 * peers, 2));
    OverlayOptions oo;
    oo.peers = peers;
    oo.mean_degree = degree;
    const Graph logical = small_world_overlay(oo, rng);
    const auto hosts = assign_hosts_uniform(*physical, peers, rng);
    overlay = std::make_unique<OverlayNetwork>(*physical, logical, hosts);
  }
  std::unique_ptr<PhysicalNetwork> physical;
  std::unique_ptr<OverlayNetwork> overlay;
};

void BM_ClosureBuild(benchmark::State& state) {
  OverlayFixture f{512, 8.0};
  const auto depth = static_cast<std::uint32_t>(state.range(0));
  PeerId p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_closure(*f.overlay, p, depth));
    p = (p + 13) % 512;
  }
}
BENCHMARK(BM_ClosureBuild)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_LocalTree(benchmark::State& state) {
  OverlayFixture f{512, 8.0};
  const auto depth = static_cast<std::uint32_t>(state.range(0));
  const LocalClosure closure = build_closure(*f.overlay, 0, depth);
  for (auto _ : state) benchmark::DoNotOptimize(build_local_tree(closure));
}
BENCHMARK(BM_LocalTree)->Arg(1)->Arg(2)->Arg(4);

void BM_AceStepRound(benchmark::State& state) {
  OverlayFixture f{static_cast<std::size_t>(state.range(0)), 6.0};
  AceEngine engine{*f.overlay, AceConfig{}};
  Rng rng{9};
  for (auto _ : state) benchmark::DoNotOptimize(engine.step_round(rng));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AceStepRound)->Arg(128)->Arg(512);

void BM_BlindFloodQuery(benchmark::State& state) {
  OverlayFixture f{static_cast<std::size_t>(state.range(0)), 6.0};
  CatalogConfig cc;
  ObjectCatalog catalog{cc};
  CatalogOracle oracle{catalog};
  Rng rng{11};
  for (auto _ : state) {
    const PeerId source = f.overlay->random_online_peer(rng);
    benchmark::DoNotOptimize(run_query(*f.overlay, source, 0, oracle,
                                       ForwardingMode::kBlindFlooding,
                                       nullptr));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BlindFloodQuery)->Arg(256)->Arg(1024);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue queue;
    int sink = 0;
    for (int i = 0; i < state.range(0); ++i)
      queue.schedule(static_cast<SimTime>((i * 7919) % 1000),
                     [&sink] { ++sink; });
    while (!queue.empty()) queue.run_next();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1000)->Arg(10000);

void BM_PhysicalDelayCached(benchmark::State& state) {
  PhysicalNetwork net{make_ba(4096)};
  // Warm one row.
  net.delay(0, 1);
  HostId target = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.delay(0, target));
    target = (target + 17) % 4096;
  }
}
BENCHMARK(BM_PhysicalDelayCached);

}  // namespace

BENCHMARK_MAIN();
