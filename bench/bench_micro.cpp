// Micro-benchmarks (google-benchmark) for the algorithmic substrates:
// Dijkstra rows (CSR kernel vs the adjacency-list reference), Prim MSTs,
// closure construction, event-queue throughput, and single-query execution
// with and without searcher-owned scratch. These bound the simulation's
// own costs and document the scalability headroom for paper-scale runs.
// A custom main captures every case's ns/op into BENCH_micro.json for
// tools/bench_compare.py.
#include <benchmark/benchmark.h>

#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ace/p2p_lab.h"

namespace {

using namespace ace;

Graph make_ba(std::size_t nodes, std::uint64_t seed = 1) {
  Rng rng{seed};
  BaOptions options;
  options.nodes = nodes;
  options.edges_per_node = 2;
  return barabasi_albert(options, rng);
}

// The production path: CSR snapshot + flat-heap solve per call.
void BM_DijkstraBA(benchmark::State& state) {
  const Graph g = make_ba(static_cast<std::size_t>(state.range(0)));
  NodeId source = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dijkstra(g, source));
    source = (source + 7) % static_cast<NodeId>(g.node_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.node_count()));
}
BENCHMARK(BM_DijkstraBA)->Arg(1024)->Arg(4096)->Arg(16384);

// The pre-CSR implementation kept as dijkstra_reference: binary heap
// straight over the pointer-chasing adjacency lists.
void BM_DijkstraAdjacencyList(benchmark::State& state) {
  const Graph g = make_ba(static_cast<std::size_t>(state.range(0)));
  NodeId source = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dijkstra_reference(g, source));
    source = (source + 7) % static_cast<NodeId>(g.node_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.node_count()));
}
BENCHMARK(BM_DijkstraAdjacencyList)->Arg(1024)->Arg(4096)->Arg(16384);

// The oracle's steady state: CSR built once, solver buffers reused across
// sources (epoch-stamped, no per-run clears).
void BM_DijkstraCsrPersistent(benchmark::State& state) {
  const Graph g = make_ba(static_cast<std::size_t>(state.range(0)));
  const CsrGraph csr{g};
  CsrDijkstra solver{csr};
  NodeId source = 0;
  for (auto _ : state) {
    solver.run(source);
    benchmark::DoNotOptimize(solver.dist(0));
    source = (source + 7) % static_cast<NodeId>(csr.node_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(csr.node_count()));
}
BENCHMARK(BM_DijkstraCsrPersistent)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_PrimMst(benchmark::State& state) {
  const Graph g = make_ba(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(prim_mst(g, 0));
}
BENCHMARK(BM_PrimMst)->Arg(256)->Arg(1024)->Arg(4096);

// Zero-cost claim for the strong-id layer (DESIGN §13): a strided
// reduction over IdVector<PeerId, ...> indexed by PeerId must run at the
// same speed as the identical loop over std::vector indexed by a raw
// uint32_t. Both variants share one workload so a regression shows up as
// a ratio shift between adjacent rows in BENCH_micro.json.
void BM_RawIndexReduce(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::vector<std::uint32_t> raw(n);
  for (std::uint32_t i = 0; i < n; ++i) raw[i] = i * 2654435761u;
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (std::uint32_t i = 0; i < n; ++i) sum += raw[(i * 7919u) % n];
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RawIndexReduce)->Arg(4096)->Arg(65536);

void BM_TypedIndexReduce(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  IdVector<PeerId, std::uint32_t> typed;
  typed.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) typed[PeerId{i}] = i * 2654435761u;
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (std::uint32_t i = 0; i < n; ++i) sum += typed[PeerId{(i * 7919u) % n}];
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TypedIndexReduce)->Arg(4096)->Arg(65536);

struct OverlayFixture {
  explicit OverlayFixture(std::size_t peers, double degree) {
    Rng rng{3};
    physical = std::make_unique<PhysicalNetwork>(make_ba(4 * peers, 2));
    OverlayOptions oo;
    oo.peers = peers;
    oo.mean_degree = degree;
    const Graph logical = small_world_overlay(oo, rng);
    const auto hosts = assign_hosts_uniform(*physical, peers, rng);
    overlay = std::make_unique<OverlayNetwork>(*physical, logical, hosts);
  }
  std::unique_ptr<PhysicalNetwork> physical;
  std::unique_ptr<OverlayNetwork> overlay;
};

void BM_ClosureBuild(benchmark::State& state) {
  OverlayFixture f{512, 8.0};
  const auto depth = static_cast<std::uint32_t>(state.range(0));
  std::uint32_t p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_closure(*f.overlay, PeerId{p}, depth));
    p = (p + 13) % 512;
  }
}
BENCHMARK(BM_ClosureBuild)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_LocalTree(benchmark::State& state) {
  OverlayFixture f{512, 8.0};
  const auto depth = static_cast<std::uint32_t>(state.range(0));
  const LocalClosure closure = build_closure(*f.overlay, PeerId{0}, depth);
  for (auto _ : state) benchmark::DoNotOptimize(build_local_tree(closure));
}
BENCHMARK(BM_LocalTree)->Arg(1)->Arg(2)->Arg(4);

void BM_AceStepRound(benchmark::State& state) {
  OverlayFixture f{static_cast<std::size_t>(state.range(0)), 6.0};
  AceEngine engine{*f.overlay, AceConfig{}};
  Rng rng{9};
  for (auto _ : state) benchmark::DoNotOptimize(engine.step_round(rng));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AceStepRound)->Arg(128)->Arg(512);

// Per-query allocations included (no scratch): the cost a cold caller pays.
void BM_BlindFloodQuery(benchmark::State& state) {
  OverlayFixture f{static_cast<std::size_t>(state.range(0)), 6.0};
  CatalogConfig cc;
  ObjectCatalog catalog{cc};
  CatalogOracle oracle{catalog};
  Rng rng{11};
  for (auto _ : state) {
    const PeerId source = f.overlay->random_online_peer(rng);
    benchmark::DoNotOptimize(run_query(*f.overlay, source, 0, oracle,
                                       ForwardingMode::kBlindFlooding,
                                       nullptr));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BlindFloodQuery)->Arg(256)->Arg(1024);

// The measurement-loop path: searcher-owned QueryScratch, zero per-query
// allocations. Results are bit-identical to the scratchless variant.
void BM_BlindFloodQueryScratch(benchmark::State& state) {
  OverlayFixture f{static_cast<std::size_t>(state.range(0)), 6.0};
  CatalogConfig cc;
  ObjectCatalog catalog{cc};
  CatalogOracle oracle{catalog};
  Rng rng{11};
  QueryScratch scratch;
  scratch.reserve(f.overlay->peer_count());
  for (auto _ : state) {
    const PeerId source = f.overlay->random_online_peer(rng);
    benchmark::DoNotOptimize(run_query(*f.overlay, source, 0, oracle,
                                       ForwardingMode::kBlindFlooding,
                                       nullptr, {}, &scratch));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BlindFloodQueryScratch)->Arg(256)->Arg(1024);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue queue;
    int sink = 0;
    for (int i = 0; i < state.range(0); ++i)
      queue.schedule(static_cast<SimTime>((i * 7919) % 1000),
                     [&sink] { ++sink; });
    while (!queue.empty()) queue.run_next();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1000)->Arg(10000);

void BM_PhysicalDelayCached(benchmark::State& state) {
  PhysicalNetwork net{make_ba(4096)};
  // Warm one row.
  net.delay(HostId{0}, HostId{1});
  std::uint32_t target = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.delay(HostId{0}, HostId{target}));
    target = (target + 17) % 4096;
  }
}
BENCHMARK(BM_PhysicalDelayCached);

// Console reporter that also captures each case's real ns/op so main can
// drop a BENCH_micro.json perf record next to the other benches' reports.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      cases.emplace_back(run.benchmark_name(),
                         run.real_accumulated_time / iters * 1e9);
    }
    ConsoleReporter::ReportRuns(report);
  }

  std::vector<std::pair<std::string, double>> cases;
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out.push_back(c);
  }
  return out;
}

}  // namespace

// Custom main: google-benchmark consumes its --benchmark_* flags first,
// then ace::Options reads --out-dir/ACE_OUT_DIR for the JSON drop site.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const Options options{argc, argv};
  const std::string out_dir = options.get_string("out-dir", ".");

  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  const std::string path = out_dir + "/BENCH_micro.json";
  std::ofstream out{path};
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return 0;
  }
  out << "{\n  \"name\": \"micro\",\n";
  out << "  \"trials\": " << reporter.cases.size() << ",\n";
  out << "  \"threads\": 1,\n";
  out << "  \"cases\": {";
  for (std::size_t i = 0; i < reporter.cases.size(); ++i) {
    out << (i ? ",\n    \"" : "\n    \"")
        << json_escape(reporter.cases[i].first)
        << "\": " << reporter.cases[i].second;
  }
  out << "\n  },\n";
  const ProvenanceEntries entries = build_provenance();
  out << "  \"provenance\": {";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out << (i ? ",\n    \"" : "\n    \"") << json_escape(entries[i].first)
        << "\": \"" << json_escape(entries[i].second) << "\"";
  }
  out << "\n  }\n}\n";
  std::printf("perf record: %s\n", path.c_str());
  return 0;
}
