// Figures 7 & 8: static environment. Traffic cost per query (Fig 7) and
// average response time (Fig 8) versus the number of ACE optimization
// steps, one curve per average-connection count C in {4, 6, 8, 10}.
// Paper result to reproduce in shape: ~50% traffic reduction and ~35%
// response-time reduction, converging within ~10 steps, better for larger C.
#include "bench_common.h"

namespace {

using namespace ace;
using namespace ace::bench;

}  // namespace

int main(int argc, char** argv) {
  const Options options{argc, argv};
  if (options.help_requested()) {
    std::printf(
        "bench_fig07_08_static [--phys-nodes=N] [--peers=N] [--queries=N] "
        "[--rounds=N] [--seed=N] [--threads=N] [--intra-threads=N] "
        "[--out-dir=DIR]\n");
    return 0;
  }
  const BenchScale scale = parse_scale(options);
  print_header("Figures 7-8: traffic cost and response time vs. "
               "optimization steps (static)",
               scale);

  const std::vector<double> degrees{4, 6, 8, 10};
  TableWriter fig7{"Figure 7: avg traffic cost per query vs. step",
                   {"step", "C=4", "C=6", "C=8", "C=10"}};
  TableWriter fig8{"Figure 8: avg response time per query vs. step",
                   {"step", "C=4", "C=6", "C=8", "C=10"}};
  fig7.set_precision(0);
  fig8.set_precision(1);

  // One independent trial per degree, sharded over the runner; results
  // land in degree order so the tables are identical at any thread count.
  struct StaticTrial {
    StaticRunResult run;
    RowCacheStats cache;
  };
  WallTimer timer;
  // One shared intra-trial pool serves every trial's engine (run_subtasks
  // multiplexes concurrent batch jobs), so both sharding levels compose
  // without a thread explosion.
  TrialRunner intra{scale.intra_threads};
  TrialRunner* subtasks = scale.intra_threads > 1 ? &intra : nullptr;
  TrialRunner runner{scale.threads};
  const std::vector<StaticTrial> trials =
      runner.run(degrees.size(), [&](TrialIndex ti) {
        const std::size_t i = ti.value();
        Scenario scenario{make_scenario(scale, degrees[i])};
        StaticTrial trial;
        trial.run = run_static_optimization(scenario, AceConfig{},
                                            scale.rounds, scale.queries,
                                            subtasks);
        trial.cache = scenario.physical().row_cache_stats();
        return trial;
      });
  std::vector<StaticRunResult> runs;
  BenchReport report;
  report.name = "fig07_08";
  report.threads = scale.threads;
  report.intra_threads = scale.intra_threads;
  report.trials = trials.size();
  for (const StaticTrial& trial : trials) {
    runs.push_back(trial.run);
    report.rebuild_s += trial.run.rebuild_s;
    accumulate(report.oracle_cache, trial.cache);
    accumulate(report.engine_cache, trial.run.engine_cache);
  }
  report.wall_time_s = timer.elapsed_s();
  write_bench_json(scale, report);

  for (std::size_t step = 0; step <= scale.rounds; ++step) {
    std::vector<Cell> traffic_row{static_cast<std::int64_t>(step)};
    std::vector<Cell> response_row{static_cast<std::int64_t>(step)};
    for (const auto& run : runs) {
      traffic_row.emplace_back(run.samples[step].traffic);
      response_row.emplace_back(run.samples[step].response_time);
    }
    fig7.add_row(std::move(traffic_row));
    fig8.add_row(std::move(response_row));
  }

  stamp_provenance(fig7, scale);
  stamp_provenance(fig8, scale);
  fig7.print(std::cout, csv_path(scale, "fig07_traffic_vs_steps"));
  std::printf("\n");
  fig8.print(std::cout, csv_path(scale, "fig08_response_vs_steps"));

  std::printf("\nReductions at convergence (paper: ~50%% traffic, ~35%% "
              "response):\n");
  for (std::size_t i = 0; i < degrees.size(); ++i) {
    std::printf("  C=%-2.0f traffic -%.0f%%  response -%.0f%%  "
                "(scope %.1f -> %.1f)\n",
                degrees[i], 100 * runs[i].traffic_reduction(),
                100 * runs[i].response_reduction(),
                runs[i].samples.front().scope, runs[i].samples.back().scope);
  }
  return 0;
}
