// Query propagation engine. Executes one query over the current overlay as
// a time-ordered expansion (a message crossing a logical link takes that
// link's physical-path delay), under a pluggable forwarding policy:
//
//   * BlindFlooding  — Gnutella baseline: forward to every neighbor except
//     the one the query came from; duplicates are dropped on arrival.
//   * TreeForwarding — ACE phase 2: forward only to the peer's *flooding
//     neighbors* (its adjacent edges on its own local multicast tree),
//     falling back to blind flooding for peers with no tree yet.
//
// Responses route back along the inverse query path (symmetric delays), so
// the first response reaches the source at twice the arrival time of the
// earliest answering peer.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "overlay/overlay_network.h"
#include "overlay/workload.h"
#include "proto/message.h"
#include "search/metrics.h"

namespace ace {

class TrialRunner;  // core/trial_runner.h — the subtask pool

// One peer's local multicast tree in routing form: for every tree node,
// its children (the peers it is expected to relay the query to). The
// root's children are the peer's flooding neighbors. Queries carry these
// relay instructions down the tree (paper §3.3: the source "expects that
// node B will forward the message to node C"); peers past the tree's
// frontier continue with their own trees.
struct TreeRouting {
  // Relay instructions: (peer x, peers x relays to within the owner's
  // tree), sorted by x, nodes without children absent. A sorted flat
  // vector instead of a hash map: iteration order is deterministic (the
  // state digest and auditors walk it), and the hot-path lookup is a
  // binary search over a cache-friendly array.
  std::vector<std::pair<PeerId, std::vector<PeerId>>> children;
  // The owner's direct tree children (flooding neighbors), sorted.
  std::vector<PeerId> flooding;

  // Relay children of x within this tree, or nullptr when x has none.
  const std::vector<PeerId>* find_children(PeerId x) const;
};

// Per-peer routing trees maintained by the ACE engine. A peer without a
// valid entry floods blindly (a fresh joiner that has not run phase 2 yet).
class ForwardingTable {
 public:
  void ensure_size(std::size_t peers);

  // Installs the flooding set for `peer` with no deeper relay hints
  // (1-closure trees need none beyond phase-2 classification).
  void set_flooding(PeerId peer, std::vector<PeerId> flooding);
  // Installs the full routing tree for `peer` (overwrites).
  void set_tree(PeerId peer, TreeRouting tree);
  // Drops the entry (peer reverts to blind flooding).
  void invalidate(PeerId peer);
  void invalidate_all();

  bool has_entry(PeerId peer) const;
  // Valid only when has_entry(peer).
  std::span<const PeerId> flooding(PeerId peer) const;
  const TreeRouting& tree(PeerId peer) const;

  // Non-flooding neighbors = current overlay neighbors minus flooding set.
  std::vector<PeerId> non_flooding(const OverlayNetwork& overlay,
                                   PeerId peer) const;

  std::size_t entries() const noexcept { return valid_count_; }

  // Invariant auditor (ACE_CHECK-fatal): liveness of every valid entry —
  // the owner is online, its flooding set is sorted/unique and made of
  // peers it is currently connected to, and no peer appears twice as a
  // relay child. (Entries must be invalidated whenever a link incident to
  // the owner is dropped; this catches stale ones.)
  void debug_validate(const OverlayNetwork& overlay) const;

  // Digest of every valid entry (flooding sets and relay instructions) in
  // peer order — the forwarding-tree component of the engine's
  // phase-boundary StateDigest.
  void digest_into(Fnv1a& digest) const;

 private:
  IdVector<PeerId, TreeRouting> sets_;
  // uint8_t, not vector<bool>: IdVector indexing returns real references.
  IdVector<PeerId, std::uint8_t> valid_;
  std::size_t valid_count_ = 0;
};

// How a peer answers a query.
enum class AnswerKind : std::uint8_t {
  kNo,      // cannot answer
  kHolds,   // owns the object (keeps forwarding — Gnutella semantics)
  kCached,  // answers from a response-index cache (stops forwarding)
};

// Content resolution interface; adapters exist for the plain catalog and
// for catalog+cache (see baselines/index_cache.h).
class ContentOracle {
 public:
  virtual ~ContentOracle() = default;
  virtual AnswerKind answers(PeerId peer, ObjectId object) const = 0;
};

class CatalogOracle final : public ContentOracle {
 public:
  explicit CatalogOracle(const ObjectCatalog& catalog) : catalog_{&catalog} {}
  AnswerKind answers(PeerId peer, ObjectId object) const override {
    return catalog_->holds(peer, object) ? AnswerKind::kHolds : AnswerKind::kNo;
  }

 private:
  const ObjectCatalog* catalog_;
};

// CSR-style immutable snapshot of the overlay's logical adjacency: per-peer
// offsets into one contiguous arc array, arc order identical to the live
// adjacency order, so every traversal over the snapshot visits neighbors in
// exactly the order the mutation-friendly Graph would — results are
// bit-identical. Rebuilt lazily: refresh() compares the overlay's
// (snapshot_identity, global_version) pair and rebuilds only when a
// mutation happened since the last build, so query bursts between ACE
// rounds (the common shape of every measurement loop) pay the O(V+E) copy
// once and then run on flat cache-friendly arrays.
class OverlaySnapshot {
 public:
  // Rebuilds iff stale; returns true when a rebuild happened.
  bool refresh(const OverlayNetwork& overlay);

  std::span<const Neighbor> neighbors(PeerId p) const {
    return {arcs_.data() + offsets_[p.value()],
            offsets_[p.value() + 1] - offsets_[p.value()]};
  }
  bool are_connected(PeerId a, PeerId b) const {
    for (const Neighbor& n : neighbors(a))
      if (n.node == b.value()) return true;
    return false;
  }
  // Requires the link to exist (mirrors OverlayNetwork::link_cost on the
  // hot path, where callers only ask about known-connected pairs).
  Weight link_cost(PeerId a, PeerId b) const;

 private:
  std::uint64_t identity_ = 0;  // 0 = never built (ids start at 1)
  std::uint64_t version_ = 0;
  std::vector<std::uint32_t> offsets_;
  std::vector<Neighbor> arcs_;
};

struct QueryOptions {
  // Gnutella default TTL is 7; 0 means unlimited (paper's static study
  // covers "all peers" as the search scope).
  std::uint8_t ttl = 0;
  MessageSizing sizing{};
  // Record (peer, parent) visit pairs in the result (needed by the index
  // cache to populate entries along the response path).
  bool record_paths = false;
  // Hybrid Periodical Flooding parameters (kHybridPeriodical mode, the
  // authors' ICPP'03 scheme, reference [3] of the paper): forward to the
  // hpf_partial cheapest neighbors per hop, but flood to every neighbor on
  // hops that are multiples of hpf_period (hop 0 — the source — always
  // floods, so the first ring is fully covered).
  std::size_t hpf_partial = 3;
  std::size_t hpf_period = 3;
  // Permit the scratch-owned CSR adjacency snapshot to back this query
  // (requires a QueryScratch; results are bit-identical either way). The
  // process-wide ACE_FORCE_FULL_REBUILD toggle overrides this to the
  // direct-adjacency path (the differential oracle, DESIGN.md §11).
  bool allow_snapshot = true;
};

enum class ForwardingMode : std::uint8_t {
  kBlindFlooding,
  kTreeRouting,
  // Partial flooding with periodic full floods — reference [3]'s
  // infrastructure-free traffic reduction; no topology optimization.
  kHybridPeriodical,
};

// Reusable per-searcher scratch for run_query. A query's working set
// (visit marks, response-path parents, the pending-transmission heap) is
// proportional to the overlay size; owning these buffers at the call site
// removes every per-query allocation from the hot measurement loops.
// Visit marks are epoch-stamped, so reuse costs no O(peers) clear either.
// Contents between calls are unspecified; one scratch serves one thread.
class QueryScratch {
 public:
  QueryScratch() = default;
  // Pre-sizes the buffers for an overlay of `peers` (optional — run_query
  // grows them on demand).
  void reserve(std::size_t peers);

  // How many times the owned adjacency snapshot was (re)built — the
  // snapshot_rebuilds cache counter surfaced in BENCH_*.json.
  std::size_t snapshot_rebuilds() const noexcept { return snapshot_rebuilds_; }

 private:
  friend class QueryEngine;
  friend QueryResult run_query(const OverlayNetwork& overlay, PeerId source,
                               ObjectId object, const ContentOracle& oracle,
                               ForwardingMode mode,
                               const ForwardingTable* table,
                               const QueryOptions& options,
                               QueryScratch* scratch);
  friend void run_query_into(const OverlayNetwork& overlay, PeerId source,
                             ObjectId object, const ContentOracle& oracle,
                             ForwardingMode mode, const ForwardingTable* table,
                             const QueryOptions& options,
                             QueryScratch& scratch, QueryResult& result);

  // Pending transmission (heap element of the time-ordered expansion).
  struct Hop {
    double arrive_time;  // cumulative logical-path delay from the source
    PeerId to;
    PeerId from;
    // Peer whose local tree is instructing this branch (tree routing
    // only); kInvalidPeer means no instructions (blind flooding).
    PeerId tree_owner;
    std::uint32_t hops;  // logical hops taken (for TTL)
    std::uint64_t seq;   // deterministic tie-break
  };
  // A forwarding decision: target peer plus the tree owner whose relay
  // instructions the copy carries onward (kInvalidPeer = none).
  struct Target {
    PeerId to;
    PeerId owner;
  };

  IdVector<PeerId, std::uint32_t> visited_;  // epoch-stamped visit marks
  IdVector<PeerId, PeerId> parent_;
  std::vector<Hop> heap_;
  std::vector<Target> targets_;
  std::vector<Neighbor> candidates_;  // HPF partial-sort scratch
  std::uint32_t epoch_ = 0;
  OverlaySnapshot snapshot_;  // lazily rebuilt adjacency snapshot
  std::size_t snapshot_rebuilds_ = 0;
};

// Executes one query synchronously against the overlay snapshot.
// `source` must be online. `table` may be null for blind flooding.
// `scratch` (optional) supplies reusable buffers; results are identical
// with or without it — expansion order, tie-breaks, and all metrics are
// bit-for-bit the same.
QueryResult run_query(const OverlayNetwork& overlay, PeerId source,
                      ObjectId object, const ContentOracle& oracle,
                      ForwardingMode mode, const ForwardingTable* table,
                      const QueryOptions& options = {},
                      QueryScratch* scratch = nullptr);

// Allocation-free variant for the measurement loops: writes the metrics of
// one query into `result` (reset first, visit_parents capacity kept), using
// the caller-owned `scratch`. Bit-identical to run_query; reads only the
// overlay/oracle/table and writes only `scratch` and `result`, so
// concurrent calls with distinct scratches and result slots are race-free —
// the contract the parallel sample_queries path is built on.
void run_query_into(const OverlayNetwork& overlay, PeerId source,
                    ObjectId object, const ContentOracle& oracle,
                    ForwardingMode mode, const ForwardingTable* table,
                    const QueryOptions& options, QueryScratch& scratch,
                    QueryResult& result);

// Per-lane QueryScratch pool for the parallel measurement path: one scratch
// per TrialRunner lane (the caller participates as lane 0), each owning its
// own adjacency snapshot, so lanes share no mutable state. Grown on demand;
// buffers and snapshots persist across measurement calls.
class QueryLanes {
 public:
  // Grows the pool to `lanes` scratches, each pre-sized for `peers`.
  void ensure(std::size_t lanes, std::size_t peers);
  QueryScratch& lane(std::size_t i) { return lanes_[i]; }
  std::size_t size() const noexcept { return lanes_.size(); }
  // Sum of the per-lane snapshot rebuild counters. Perf accounting only
  // (BENCH_*.json): how the rebuilds split across lanes depends on the
  // lane count; the query results do not.
  std::size_t snapshot_rebuilds() const noexcept;

 private:
  std::vector<QueryScratch> lanes_;
};

// Convenience: average query metrics over `count` random (source, object)
// pairs drawn from the catalog's popularity distribution. `scratch`
// (optional) carries buffers and the adjacency snapshot across calls; when
// null a call-local scratch is used (results identical either way).
//
// When both `subtasks` and `lanes` are supplied and the pool has more than
// one lane, the measurement loop runs in parallel under the determinism
// bar: (source, object) keys are pre-drawn from `rng` sequentially on the
// caller in exactly the order the sequential loop would draw them
// (run_query itself never draws), the independent run_query calls execute
// across lanes into index-ordered result slots, and QueryStats::add is
// replayed in canonical query order — the returned stats (and any digest
// of them) are byte-identical at every --intra-threads value.
QueryStats sample_queries(const OverlayNetwork& overlay,
                          const ObjectCatalog& catalog,
                          const ContentOracle& oracle, ForwardingMode mode,
                          const ForwardingTable* table, std::size_t count,
                          Rng& rng, const QueryOptions& options = {},
                          QueryScratch* scratch = nullptr,
                          TrialRunner* subtasks = nullptr,
                          QueryLanes* lanes = nullptr);

}  // namespace ace
