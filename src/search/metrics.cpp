#include "search/metrics.h"

namespace ace {

void QueryStats::add(const QueryResult& result) {
  ++queries_;
  traffic_.add(result.traffic_cost);
  scope_.add(static_cast<double>(result.scope));
  messages_.add(static_cast<double>(result.messages));
  duplicates_.add(static_cast<double>(result.duplicates));
  if (result.found) {
    ++found_;
    response_.add(result.response_time);
  }
}

void QueryStats::merge(const QueryStats& other) {
  queries_ += other.queries_;
  found_ += other.found_;
  traffic_.merge(other.traffic_);
  response_.merge(other.response_);
  scope_.merge(other.scope_);
  messages_.merge(other.messages_);
  duplicates_.merge(other.duplicates_);
}

double QueryStats::success_rate() const noexcept {
  return queries_ ? static_cast<double>(found_) /
                        static_cast<double>(queries_)
                  : 0.0;
}

double QueryStats::traffic_per_scope() const noexcept {
  const double s = scope_.mean();
  return s > 0 ? traffic_.mean() / s : 0.0;
}

}  // namespace ace
