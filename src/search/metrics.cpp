#include "search/metrics.h"

namespace ace {

// ace-hot
void QueryResult::reset() noexcept {
  traffic_cost = 0;
  response_traffic = 0;
  messages = 0;
  duplicates = 0;
  scope = 0;
  response_time = 0;
  found = false;
  first_responder = kInvalidPeer;
  answered_from_cache = false;
  visit_parents.clear();
}

void QueryStats::add(const QueryResult& result) {
  ++queries_;
  traffic_.add(result.traffic_cost);
  scope_.add(static_cast<double>(result.scope));
  messages_.add(static_cast<double>(result.messages));
  duplicates_.add(static_cast<double>(result.duplicates));
  if (result.found) {
    ++found_;
    response_.add(result.response_time);
  }
}

void QueryStats::merge(const QueryStats& other) {
  queries_ += other.queries_;
  found_ += other.found_;
  traffic_.merge(other.traffic_);
  response_.merge(other.response_);
  scope_.merge(other.scope_);
  messages_.merge(other.messages_);
  duplicates_.merge(other.duplicates_);
}

double QueryStats::success_rate() const noexcept {
  return queries_ ? static_cast<double>(found_) /
                        static_cast<double>(queries_)
                  : 0.0;
}

double QueryStats::traffic_per_scope() const noexcept {
  const double s = scope_.mean();
  return s > 0 ? traffic_.mean() / s : 0.0;
}

namespace {

void digest_running(Fnv1a& digest, const RunningStats& s) {
  digest.update(static_cast<std::uint64_t>(s.count()));
  digest.update_double(s.mean());
  digest.update_double(s.variance());
  digest.update_double(s.sum());
  digest.update_double(s.min());
  digest.update_double(s.max());
}

}  // namespace

void QueryStats::digest_into(Fnv1a& digest) const {
  digest.update(static_cast<std::uint64_t>(queries_));
  digest.update(static_cast<std::uint64_t>(found_));
  digest_running(digest, traffic_);
  digest_running(digest, response_);
  digest_running(digest, scope_);
  digest_running(digest, messages_);
  digest_running(digest, duplicates_);
}

std::uint64_t QueryStats::digest() const {
  Fnv1a digest;
  digest_into(digest);
  return digest.value();
}

}  // namespace ace
