#include "search/flooding.h"

#include <algorithm>
#include <stdexcept>

#include "core/trial_runner.h"
#include "util/check.h"

namespace ace {

const std::vector<PeerId>* TreeRouting::find_children(PeerId x) const {
  const auto it = std::lower_bound(
      children.begin(), children.end(), x,
      [](const auto& entry, PeerId key) { return entry.first < key; });
  if (it == children.end() || it->first != x) return nullptr;
  return &it->second;
}

void ForwardingTable::ensure_size(std::size_t peers) {
  if (sets_.size() < peers) {
    sets_.resize(peers);
    valid_.resize(peers, 0);
  }
}

void ForwardingTable::set_flooding(PeerId peer, std::vector<PeerId> flooding) {
  TreeRouting tree;
  tree.flooding = std::move(flooding);
  set_tree(peer, std::move(tree));
}

void ForwardingTable::set_tree(PeerId peer, TreeRouting tree) {
  ensure_size(peer.value() + 1);
  if (!valid_[peer]) {
    valid_[peer] = 1;
    ++valid_count_;
  }
  std::sort(tree.flooding.begin(), tree.flooding.end());
  sets_[peer] = std::move(tree);
}

void ForwardingTable::invalidate(PeerId peer) {
  if (peer < valid_.size() && valid_[peer]) {
    valid_[peer] = 0;
    sets_[peer] = TreeRouting{};
    --valid_count_;
  }
}

void ForwardingTable::invalidate_all() {
  std::fill(valid_.begin(), valid_.end(), std::uint8_t{0});
  for (auto& s : sets_) s = TreeRouting{};
  valid_count_ = 0;
}

bool ForwardingTable::has_entry(PeerId peer) const {
  return peer < valid_.size() && valid_[peer];
}

std::span<const PeerId> ForwardingTable::flooding(PeerId peer) const {
  if (!has_entry(peer))
    throw std::logic_error{"ForwardingTable: no entry for peer"};
  return sets_[peer].flooding;
}

const TreeRouting& ForwardingTable::tree(PeerId peer) const {
  if (!has_entry(peer))
    throw std::logic_error{"ForwardingTable: no entry for peer"};
  return sets_[peer];
}

void ForwardingTable::debug_validate(const OverlayNetwork& overlay) const {
  ACE_CHECK_EQ(sets_.size(), valid_.size()) << " — table storage misaligned";
  std::size_t valid = 0;
  for (PeerId p{0}; p < valid_.size(); ++p) {
    if (!valid_[p]) continue;
    ++valid;
    ACE_CHECK_LT(p, overlay.peer_count())
        << " — forwarding entry for unknown peer";
    ACE_CHECK(overlay.is_online(p))
        << "forwarding entry for offline peer " << p;
    const auto& flood = sets_[p].flooding;
    ACE_CHECK(std::is_sorted(flood.begin(), flood.end()))
        << "flooding set of peer " << p << " not sorted";
    ACE_CHECK(std::adjacent_find(flood.begin(), flood.end()) == flood.end())
        << "duplicate flooding neighbor for peer " << p;
    for (const PeerId q : flood) {
      ACE_CHECK(overlay.are_connected(p, q))
          << "stale flooding entry: peer " << p
          << " would forward to non-neighbor " << q;
    }
    // Relay keys must be sorted and unique (find_children binary-searches).
    const auto& relays = sets_[p].children;
    for (std::size_t i = 1; i < relays.size(); ++i) {
      ACE_CHECK_LT(relays[i - 1].first, relays[i].first)
          << " — relay instructions of peer " << p
          << " not sorted/unique by relay peer";
    }
    // Tree property: within one peer's relay instructions, no peer is the
    // child of two parents.
    std::vector<PeerId> children;
    for (const auto& [node, kids] : relays)
      children.insert(children.end(), kids.begin(), kids.end());
    std::sort(children.begin(), children.end());
    ACE_CHECK(std::adjacent_find(children.begin(), children.end()) ==
              children.end())
        << "peer " << p << "'s relay tree gives a peer two parents";
  }
  ACE_CHECK_EQ(valid, valid_count_) << " — valid_count out of sync";
}

void ForwardingTable::digest_into(Fnv1a& digest) const {
  digest.update(static_cast<std::uint64_t>(valid_count_));
  for (PeerId p{0}; p < valid_.size(); ++p) {
    if (!valid_[p]) continue;
    digest.update(p);
    const TreeRouting& routing = sets_[p];
    digest.update(static_cast<std::uint64_t>(routing.flooding.size()));
    for (const PeerId q : routing.flooding) digest.update(q);
    digest.update(static_cast<std::uint64_t>(routing.children.size()));
    for (const auto& [node, kids] : routing.children) {
      digest.update(node);
      digest.update(static_cast<std::uint64_t>(kids.size()));
      for (const PeerId q : kids) digest.update(q);
    }
  }
}

std::vector<PeerId> ForwardingTable::non_flooding(
    const OverlayNetwork& overlay, PeerId peer) const {
  std::vector<PeerId> out;
  if (!has_entry(peer)) return out;  // all neighbors are flooding targets
  const auto& flood = sets_[peer].flooding;
  for (const auto& n : overlay.neighbors(peer)) {
    if (!std::binary_search(flood.begin(), flood.end(), peer_of(n)))
      out.push_back(peer_of(n));
  }
  return out;
}

bool OverlaySnapshot::refresh(const OverlayNetwork& overlay) {
  const std::uint64_t identity = overlay.snapshot_identity();
  const std::uint64_t version = overlay.global_version();
  if (identity_ == identity && version_ == version) return false;
  const std::size_t n = overlay.peer_count();
  offsets_.resize(n + 1);
  arcs_.clear();
  for (PeerId p{0}; p < n; ++p) {
    offsets_[p.value()] = static_cast<std::uint32_t>(arcs_.size());
    const auto row = overlay.neighbors(p);
    arcs_.insert(arcs_.end(), row.begin(), row.end());
  }
  offsets_[n] = static_cast<std::uint32_t>(arcs_.size());
  identity_ = identity;
  version_ = version;
  return true;
}

Weight OverlaySnapshot::link_cost(PeerId a, PeerId b) const {
  for (const Neighbor& n : neighbors(a))
    if (n.node == b) return n.weight;
  throw std::invalid_argument{"OverlaySnapshot: peers not connected"};
}

void QueryScratch::reserve(std::size_t peers) {
  visited_.reserve(peers);
  parent_.reserve(peers);
  heap_.reserve(peers);
  targets_.reserve(64);
  candidates_.reserve(64);
}

namespace {

// Adjacency views the query engine is instantiated over: the snapshot view
// reads the scratch-owned CSR copy, the direct view walks the live overlay.
// Both present the same neighbor order, so expansion order, tie-breaks, and
// every metric are bit-identical between them.
struct DirectAdjacency {
  const OverlayNetwork* overlay;
  std::span<const Neighbor> neighbors(PeerId p) const {
    return overlay->neighbors(p);
  }
  bool are_connected(PeerId a, PeerId b) const {
    return overlay->are_connected(a, b);
  }
  Weight link_cost(PeerId a, PeerId b) const {
    return overlay->link_cost(a, b);
  }
};

struct SnapshotAdjacency {
  const OverlaySnapshot* snapshot;
  std::span<const Neighbor> neighbors(PeerId p) const {
    return snapshot->neighbors(p);
  }
  bool are_connected(PeerId a, PeerId b) const {
    return snapshot->are_connected(a, b);
  }
  Weight link_cost(PeerId a, PeerId b) const {
    return snapshot->link_cost(a, b);
  }
};

}  // namespace

// The query expansion engine. A plain class (not an anonymous-namespace
// function) so it can be the single friend of QueryScratch. The pending-
// transmission heap is a std::vector driven by push_heap/pop_heap with the
// exact comparator the old std::priority_queue used, so pop order —
// including arrival-time ties broken by sequence number — is bit-identical
// to the allocating implementation.
class QueryEngine {
 public:
  using Hop = QueryScratch::Hop;
  using Target = QueryScratch::Target;

  struct HopAfter {
    bool operator()(const Hop& a, const Hop& b) const {
      if (a.arrive_time != b.arrive_time) return a.arrive_time > b.arrive_time;
      return a.seq > b.seq;
    }
  };

  // Computes the forwarding targets of `peer` for a query arriving from
  // `from` (kInvalidPeer at the source) under relay instructions from
  // `tree_owner`'s local tree. A relaying peer serves two trees at once:
  // the branch the owner delegated to it (those copies keep the owner's
  // instructions — the owner's tree may reach deeper) and its own subtree
  // (those copies carry the peer's fresh instructions). `overlay` is any
  // adjacency view (live overlay or CSR snapshot).
  // ace-hot
  template <typename Adjacency>
  static void forwarding_targets(const Adjacency& overlay, PeerId peer,
                                 PeerId from, PeerId tree_owner,
                                 ForwardingMode mode,
                                 const ForwardingTable* table,
                                 std::uint32_t hops,
                                 const QueryOptions& options,
                                 QueryScratch& s) {
    std::vector<Target>& out = s.targets_;
    out.clear();
    if (mode == ForwardingMode::kHybridPeriodical) {
      // Periodic hops (including the source's hop 0) flood everyone; other
      // hops forward only over the hpf_partial cheapest links.
      const bool flood_all =
          options.hpf_period == 0 || hops % options.hpf_period == 0;
      std::vector<Neighbor>& candidates = s.candidates_;
      candidates.clear();
      for (const auto& n : overlay.neighbors(peer))
        if (n.node != from.value()) candidates.push_back(n);
      if (!flood_all && candidates.size() > options.hpf_partial) {
        std::partial_sort(candidates.begin(),
                          candidates.begin() +
                              static_cast<std::ptrdiff_t>(options.hpf_partial),
                          candidates.end(),
                          [](const Neighbor& a, const Neighbor& b) {
                            return a.weight < b.weight;
                          });
        candidates.resize(options.hpf_partial);
      }
      for (const auto& n : candidates)
        out.push_back({peer_of(n), kInvalidPeer});
      return;
    }
    if (mode != ForwardingMode::kTreeRouting || table == nullptr ||
        !table->has_entry(peer)) {
      // Blind flooding — also the fallback for a peer with no tree of its
      // own (a fresh joiner or an invalidated entry): a superset of any
      // relay instructions.
      for (const auto& n : overlay.neighbors(peer))
        if (n.node != from.value()) out.push_back({peer_of(n), kInvalidPeer});
      return;
    }

    auto push_unique = [&out](PeerId q, PeerId owner) {
      for (const Target& t : out)
        if (t.to == q) return;
      out.push_back({q, owner});
    };

    // Relay instructions from the current tree owner, when it has any for
    // us; the copies keep the owner's instructions.
    if (tree_owner != kInvalidPeer && tree_owner != peer &&
        table->has_entry(tree_owner)) {
      const TreeRouting& routing = table->tree(tree_owner);
      if (const auto* kids = routing.find_children(peer)) {
        for (const PeerId q : *kids) {
          // Tree entries can be stale under churn: forward only over links
          // that still exist.
          if (q != from && overlay.are_connected(peer, q))
            push_unique(q, tree_owner);
        }
      }
    }

    // Our own tree children (fresh instructions for those branches).
    for (const PeerId q : table->flooding(peer))
      if (q != from && overlay.are_connected(peer, q)) push_unique(q, peer);
  }

  // ace-hot
  template <typename Adjacency>
  static void run(const OverlayNetwork& live, const Adjacency& overlay,
                  PeerId source, ObjectId object, const ContentOracle& oracle,
                  ForwardingMode mode, const ForwardingTable* table,
                  const QueryOptions& options, QueryScratch& s,
                  QueryResult& result) {
    if (!live.is_online(source))
      throw std::invalid_argument{"run_query: source is offline"};

    result.reset();
    const double query_size = size_factor(options.sizing, MessageType::kQuery);
    const double hit_size =
        size_factor(options.sizing, MessageType::kQueryHit);

    // Epoch-stamped visit marks: bumping the epoch invalidates every stale
    // mark at once, so buffer reuse costs no O(peers) clear. On the (very
    // rare) wrap, reset the marks so epoch-0 stamps cannot alias.
    const std::size_t n = live.peer_count();
    if (s.visited_.size() < n) s.visited_.resize(n, 0);
    if (s.parent_.size() < n) s.parent_.resize(n, kInvalidPeer);
    if (++s.epoch_ == 0) {
      std::fill(s.visited_.begin(), s.visited_.end(), 0u);
      s.epoch_ = 1;
    }
    const std::uint32_t epoch = s.epoch_;
    auto visited = [&s, epoch](PeerId p) { return s.visited_[p] == epoch; };
    auto mark_visited = [&s, epoch](PeerId p) { s.visited_[p] = epoch; };

    std::vector<Hop>& heap = s.heap_;
    heap.clear();
    std::uint64_t seq = 0;

    mark_visited(source);
    // parent_ entries are only ever read for visited peers, which are
    // always written first this query — except the source, whose sentinel
    // terminates the response-path walk and must be set explicitly.
    s.parent_[source] = kInvalidPeer;
    if (options.record_paths) {
      // Path recording is the one per-query growth, reserved lazily: only a
      // query that records paths sizes the vector (once, one entry per
      // visited peer, bounded by the online population); the hot
      // measurement path never touches it (asserted below).
      result.visit_parents.reserve(n);
      result.visit_parents.emplace_back(source, kInvalidPeer);
    }

    double best_response = -1.0;

    // The source itself never "responds to itself": if the source holds
    // the object the user already has it; queries in the paper measure
    // remote search, so we start expansion unconditionally.
    auto expand = [&](PeerId peer, PeerId from, PeerId tree_owner, double at,
                      std::uint32_t hops) {
      if (options.ttl != 0 && hops >= options.ttl) return;
      forwarding_targets(overlay, peer, from, tree_owner, mode, table, hops,
                         options, s);
      for (const Target& t : s.targets_) {
        const Weight w = overlay.link_cost(peer, t.to);
        heap.push_back({at + w, t.to, peer, t.owner, hops + 1, seq++});
        std::push_heap(heap.begin(), heap.end(), HopAfter{});
        result.traffic_cost += query_size * w;
        ++result.messages;
      }
    };

    expand(source, kInvalidPeer, kInvalidPeer, 0.0, 0);

    // A peer that accepted a relay obligation in an owner's tree honors it
    // even when the copy carrying the instructions arrives late (after the
    // peer already saw the query from elsewhere): otherwise the owner's
    // subtree silently starves whenever the instruction copy loses a
    // delivery race. The instruction tree is a tree, so this stays bounded.
    auto relay_instructions = [&](const Hop& tx) {
      if (mode != ForwardingMode::kTreeRouting || table == nullptr) return;
      if (tx.tree_owner == kInvalidPeer || tx.tree_owner == tx.to) return;
      if (options.ttl != 0 && tx.hops >= options.ttl) return;
      if (!table->has_entry(tx.tree_owner)) return;
      const TreeRouting& routing = table->tree(tx.tree_owner);
      const auto* kids = routing.find_children(tx.to);
      if (kids == nullptr) return;
      for (const PeerId q : *kids) {
        if (q == tx.from || visited(q)) continue;
        if (!overlay.are_connected(tx.to, q)) continue;
        const Weight w = overlay.link_cost(tx.to, q);
        heap.push_back({tx.arrive_time + w, q, tx.to, tx.tree_owner,
                        tx.hops + 1, seq++});
        std::push_heap(heap.begin(), heap.end(), HopAfter{});
        result.traffic_cost += query_size * w;
        ++result.messages;
      }
    };

    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), HopAfter{});
      const Hop tx = heap.back();
      heap.pop_back();
      if (visited(tx.to)) {
        ++result.duplicates;
        relay_instructions(tx);
        continue;
      }
      mark_visited(tx.to);
      s.parent_[tx.to] = tx.from;
      ++result.scope;
      if (options.record_paths)
        result.visit_parents.emplace_back(tx.to, tx.from);

      const AnswerKind answer = oracle.answers(tx.to, object);
      if (answer != AnswerKind::kNo) {
        // Response returns along the inverse path: symmetric delays make
        // the response arrive at 2x the query arrival time.
        const double response_at = 2.0 * tx.arrive_time;
        if (!result.found || response_at < best_response) {
          best_response = response_at;
          result.found = true;
          result.first_responder = tx.to;
          result.response_time = response_at;
          result.answered_from_cache = answer == AnswerKind::kCached;
        }
        if (answer == AnswerKind::kCached) continue;  // cache hit: stop
      }
      expand(tx.to, tx.from, tx.tree_owner, tx.arrive_time, tx.hops);
    }

    // Response traffic: the first response crosses each logical link of
    // the inverse path once.
    if (result.found) {
      for (PeerId v = result.first_responder;
           s.parent_[v] != kInvalidPeer; v = s.parent_[v])
        result.response_traffic +=
            hit_size * overlay.link_cost(s.parent_[v], v);
      // first_responder may be a direct neighbor of the source: loop above
      // already handles it (parent[source] == kInvalidPeer terminates).
    }
    if (!options.record_paths) {
      ACE_DCHECK(result.visit_parents.empty())
          << "visit_parents grew on a query without record_paths";
    }
  }
};

// ace-hot
void run_query_into(const OverlayNetwork& overlay, PeerId source,
                    ObjectId object, const ContentOracle& oracle,
                    ForwardingMode mode, const ForwardingTable* table,
                    const QueryOptions& options, QueryScratch& scratch,
                    QueryResult& result) {
  if (options.allow_snapshot && !force_full_rebuild_enabled()) {
    if (scratch.snapshot_.refresh(overlay)) ++scratch.snapshot_rebuilds_;
    QueryEngine::run(overlay, SnapshotAdjacency{&scratch.snapshot_}, source,
                     object, oracle, mode, table, options, scratch, result);
    return;
  }
  QueryEngine::run(overlay, DirectAdjacency{&overlay}, source, object, oracle,
                   mode, table, options, scratch, result);
}

QueryResult run_query(const OverlayNetwork& overlay, PeerId source,
                      ObjectId object, const ContentOracle& oracle,
                      ForwardingMode mode, const ForwardingTable* table,
                      const QueryOptions& options, QueryScratch* scratch) {
  QueryResult result;
  if (scratch != nullptr) {
    run_query_into(overlay, source, object, oracle, mode, table, options,
                   *scratch, result);
  } else {
    // The snapshot path needs a scratch to own the snapshot; without one a
    // per-query rebuild would cost more than it saves, so one-shot callers
    // stay on the direct path.
    QueryScratch local;
    QueryEngine::run(overlay, DirectAdjacency{&overlay}, source, object,
                     oracle, mode, table, options, local, result);
  }
  return result;
}

void QueryLanes::ensure(std::size_t lanes, std::size_t peers) {
  if (lanes_.size() < lanes) lanes_.resize(lanes);
  for (QueryScratch& s : lanes_) s.reserve(peers);
}

std::size_t QueryLanes::snapshot_rebuilds() const noexcept {
  std::size_t total = 0;
  for (const QueryScratch& s : lanes_) total += s.snapshot_rebuilds();
  return total;
}

namespace {

// Streaming chunk of the parallel measurement loop: keys and result slots
// are bounded by this, never by the trial's total query count. The chunk
// size is independent of the lane count — it only bounds the buffers, so it
// cannot influence results (each query is independent and the adds are
// replayed in canonical order regardless of chunking).
constexpr std::size_t kQueryChunk = 128;

}  // namespace

QueryStats sample_queries(const OverlayNetwork& overlay,
                          const ObjectCatalog& catalog,
                          const ContentOracle& oracle, ForwardingMode mode,
                          const ForwardingTable* table, std::size_t count,
                          Rng& rng, const QueryOptions& options,
                          QueryScratch* scratch, TrialRunner* subtasks,
                          QueryLanes* lanes) {
  QueryStats stats;
  const bool parallel = subtasks != nullptr && lanes != nullptr &&
                        subtasks->subtask_lanes() > 1 && count > 1;
  if (!parallel) {
    QueryScratch local;
    QueryScratch& buffers = scratch ? *scratch : local;
    buffers.reserve(overlay.peer_count());
    QueryResult result;
    for (std::size_t i = 0; i < count; ++i) {
      const PeerId source = overlay.random_online_peer(rng);
      const ObjectId object = catalog.sample_object(rng);
      run_query_into(overlay, source, object, oracle, mode, table, options,
                     buffers, result);
      stats.add(result);
    }
    return stats;
  }

  struct QueryKey {
    PeerId source = kInvalidPeer;
    ObjectId object = 0;
  };
  lanes->ensure(subtasks->subtask_lanes(), overlay.peer_count());
  std::vector<QueryKey> keys(std::min(count, kQueryChunk));
  std::vector<QueryResult> slots(keys.size());
  for (std::size_t done = 0; done < count;) {
    const std::size_t chunk = std::min(kQueryChunk, count - done);
    // Every rng draw stays on the caller, in exactly the order the
    // sequential loop above would make them (run_query draws nothing).
    for (std::size_t i = 0; i < chunk; ++i)
      keys[i] = {overlay.random_online_peer(rng), catalog.sample_object(rng)};
    // Independent queries fan out across lanes; each writes only its own
    // index-ordered slot and its lane's scratch.
    subtasks->run_subtasks(chunk, [&](std::size_t lane, std::size_t index) {
      run_query_into(overlay, keys[index].source, keys[index].object, oracle,
                     mode, table, options, lanes->lane(lane), slots[index]);
    });
    // Replay the adds in canonical query order: the running moments are
    // floating-point-order-sensitive, so the commit order must not depend
    // on lane scheduling.
    for (std::size_t i = 0; i < chunk; ++i) stats.add(slots[i]);
    done += chunk;
  }
  return stats;
}

}  // namespace ace
