// Per-query measurement records and aggregation, matching the paper's §4.2
// metric definitions: traffic cost (network resource consumed by all query
// transmissions), search scope (distinct peers reached), and response time
// (query issue until the first response arrives back at the source).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "overlay/overlay_network.h"
#include "util/digest.h"
#include "util/stats.h"

namespace ace {

struct QueryResult {
  // Sum over every query transmission of size_factor * logical-link delay.
  double traffic_cost = 0;
  // Traffic of the first response routed back along the inverse path
  // (reported separately; the paper's traffic-cost curves are query
  // traffic).
  double response_traffic = 0;
  // Number of query transmissions (one per logical-link crossing).
  std::size_t messages = 0;
  // Transmissions that arrived at a peer that had already seen the query
  // (dropped on arrival — pure waste).
  std::size_t duplicates = 0;
  // Distinct peers reached, source excluded.
  std::size_t scope = 0;
  // Simulated seconds from issue to first response at the source;
  // meaningful only when found.
  double response_time = 0;
  bool found = false;
  PeerId first_responder = kInvalidPeer;
  // True when the first response came from a cached index rather than an
  // actual holder.
  bool answered_from_cache = false;
  // (peer, parent) pairs in visit order when QueryOptions::record_paths is
  // set; parent == kInvalidPeer for the source. Reserved lazily — a query
  // that does not record paths never touches (or allocates) this vector.
  std::vector<std::pair<PeerId, PeerId>> visit_parents;

  // Resets to the freshly-constructed state while keeping visit_parents'
  // capacity, so result slots reused across chunked measurement loops stay
  // allocation-free.
  void reset() noexcept;
};

// Aggregates query results for one experimental cell.
class QueryStats {
 public:
  void add(const QueryResult& result);
  void merge(const QueryStats& other);

  std::size_t queries() const noexcept { return queries_; }
  double mean_traffic() const noexcept { return traffic_.mean(); }
  double mean_scope() const noexcept { return scope_.mean(); }
  double mean_messages() const noexcept { return messages_.mean(); }
  double mean_duplicates() const noexcept { return duplicates_.mean(); }
  // Mean response time over *found* queries only.
  double mean_response_time() const noexcept { return response_.mean(); }
  double success_rate() const noexcept;
  // Traffic per peer reached — the paper's cost-at-equal-scope comparison.
  double traffic_per_scope() const noexcept;

  const RunningStats& traffic() const noexcept { return traffic_; }
  const RunningStats& response() const noexcept { return response_; }
  const RunningStats& scope() const noexcept { return scope_; }

  // Digest of the full aggregate (counts plus every running moment). The
  // query-stats component of phase-boundary digest traces: because the
  // parallel measurement path replays add() in canonical query order,
  // these values are byte-identical at any --intra-threads lane count.
  void digest_into(Fnv1a& digest) const;
  std::uint64_t digest() const;

 private:
  std::size_t queries_ = 0;
  std::size_t found_ = 0;
  RunningStats traffic_;
  RunningStats response_;
  RunningStats scope_;
  RunningStats messages_;
  RunningStats duplicates_;
};

}  // namespace ace
