// Gnutella-flavoured message vocabulary. The paper implements ACE by
// "modifying the LimeWire implementation of the Gnutella protocol by adding
// one routing message type"; we model the same message set at the
// granularity that matters for traffic accounting: every transmission of a
// message over a logical link costs (size-factor x physical path delay).
#pragma once

#include <cstdint>
#include <string>

namespace ace {

enum class MessageType : std::uint8_t {
  kPing,           // keep-alive / host discovery
  kPong,           // ping response carrying host info
  kQuery,          // flooded content search
  kQueryHit,       // response routed back along the inverse query path
  kProbe,          // ACE cost probe (the added routing message type)
  kProbeReply,     // probe echo
  kCostTable,      // ACE neighbor-cost-table exchange
  kConnect,        // open logical link
  kDisconnect,     // close logical link
};

const char* message_type_name(MessageType type) noexcept;

// Relative wire sizes (multiples of a nominal MTU-sized unit). Traffic cost
// of one transmission = size_factor(type, payload) * link delay, making a
// cost-table exchange proportionally more expensive than a tiny ping. The
// constants mirror rough Gnutella message sizes (QUERY ~ bytes of keywords,
// PING tiny, cost tables scale with the number of entries).
struct MessageSizing {
  double ping = 0.1;
  double pong = 0.1;
  double query = 1.0;       // keyword payload (~hundreds of bytes)
  double query_hit = 1.0;
  double probe = 0.1;       // tiny timestamped control messages
  double probe_reply = 0.1;
  double cost_table_base = 0.1;
  double cost_table_per_entry = 0.02;
  double connect = 0.1;
  double disconnect = 0.1;
};

double size_factor(const MessageSizing& sizing, MessageType type,
                   std::size_t payload_entries = 0);

// Unique message id; Gnutella uses 16-byte GUIDs for duplicate
// suppression, a counter is equivalent in simulation.
using Guid = std::uint64_t;

// Per-simulation Guid counter, owned by the experiment (Scenario) rather
// than a process-global atomic: message ids — and any digest that includes
// them — depend only on the run itself, never on how many other
// tests/benches executed earlier in the same process.
class GuidAllocator {
 public:
  Guid next() noexcept { return next_++; }
  // Guids handed out so far (next() returns issued() + 1).
  Guid issued() const noexcept { return next_ - 1; }

 private:
  Guid next_ = 1;
};

// Descriptor header as carried through the overlay.
struct MessageHeader {
  Guid guid = 0;
  MessageType type = MessageType::kPing;
  std::uint8_t ttl = 7;
  std::uint8_t hops = 0;
};

std::string to_string(const MessageHeader& header);

}  // namespace ace
