#include "proto/message.h"

#include <sstream>
#include <stdexcept>

namespace ace {

const char* message_type_name(MessageType type) noexcept {
  switch (type) {
    case MessageType::kPing:
      return "PING";
    case MessageType::kPong:
      return "PONG";
    case MessageType::kQuery:
      return "QUERY";
    case MessageType::kQueryHit:
      return "QUERY_HIT";
    case MessageType::kProbe:
      return "PROBE";
    case MessageType::kProbeReply:
      return "PROBE_REPLY";
    case MessageType::kCostTable:
      return "COST_TABLE";
    case MessageType::kConnect:
      return "CONNECT";
    case MessageType::kDisconnect:
      return "DISCONNECT";
  }
  return "?";
}

double size_factor(const MessageSizing& sizing, MessageType type,
                   std::size_t payload_entries) {
  switch (type) {
    case MessageType::kPing:
      return sizing.ping;
    case MessageType::kPong:
      return sizing.pong;
    case MessageType::kQuery:
      return sizing.query;
    case MessageType::kQueryHit:
      return sizing.query_hit;
    case MessageType::kProbe:
      return sizing.probe;
    case MessageType::kProbeReply:
      return sizing.probe_reply;
    case MessageType::kCostTable:
      return sizing.cost_table_base +
             sizing.cost_table_per_entry *
                 static_cast<double>(payload_entries);
    case MessageType::kConnect:
      return sizing.connect;
    case MessageType::kDisconnect:
      return sizing.disconnect;
  }
  throw std::invalid_argument{"size_factor: unknown message type"};
}

std::string to_string(const MessageHeader& header) {
  std::ostringstream out;
  out << message_type_name(header.type) << "#" << header.guid
      << " ttl=" << static_cast<int>(header.ttl)
      << " hops=" << static_cast<int>(header.hops);
  return out.str();
}

}  // namespace ace
