// Response index caching (paper §5.2): each peer keeps a small LRU cache of
// (object -> known holder) learned from responses that pass through it. A
// query arriving at a peer with a cached entry is answered immediately and
// not forwarded further on that branch — the "transparent query caching"
// effect the paper combines with ACE (20-item caches cut traffic by ~75%
// and response time by ~70% together with ACE).
#pragma once

#include <cstddef>
#include <list>
#include <unordered_map>
#include <vector>

#include "overlay/workload.h"
#include "search/flooding.h"

namespace ace {

// One peer's LRU object->holder index.
class LruIndexCache {
 public:
  explicit LruIndexCache(std::size_t capacity = 20);

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return map_.size(); }

  // Returns the cached holder for `object`, refreshing recency; or
  // kInvalidPeer on a miss.
  PeerId lookup(ObjectId object);
  // Peek without touching recency (const diagnostics).
  PeerId peek(ObjectId object) const;

  void insert(ObjectId object, PeerId holder);
  void erase(ObjectId object);
  void clear();

  std::size_t hits() const noexcept { return hits_; }
  std::size_t misses() const noexcept { return misses_; }

 private:
  struct Entry {
    ObjectId object;
    PeerId holder;
  };
  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  // ace-lint: allow(unordered-container): keyed lookup only — eviction
  // order lives in the LRU list; the map is never iterated.
  std::unordered_map<ObjectId, std::list<Entry>::iterator> map_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

// All peers' caches + the ContentOracle that lets run_query consult them.
class IndexCacheLayer final : public ContentOracle {
 public:
  IndexCacheLayer(const ObjectCatalog& catalog, std::size_t peers,
                  std::size_t capacity_per_peer = 20);

  // ContentOracle: a real holder answers kHolds; a peer with a *valid*
  // cached pointer (the cached holder is still online and still holds the
  // object) answers kCached; stale entries are evicted on the spot.
  AnswerKind answers(PeerId peer, ObjectId object) const override;

  // Call with the result of a run_query executed with record_paths=true:
  // peers on the inverse path from the first responder to the source learn
  // (object -> responder).
  void learn_from(const QueryResult& result, ObjectId object);

  // Drop a departing peer's cache (its state is lost when it leaves).
  void on_peer_leave(PeerId peer);

  // The overlay used for staleness checks (holder must be online).
  void bind_overlay(const OverlayNetwork& overlay) { overlay_ = &overlay; }

  const LruIndexCache& cache_of(PeerId peer) const;
  std::size_t total_entries() const;

 private:
  const ObjectCatalog* catalog_;
  const OverlayNetwork* overlay_ = nullptr;
  // Mutable: lookup refreshes LRU recency and evicts stale entries; both
  // are logically-const cache maintenance.
  mutable IdVector<PeerId, LruIndexCache> caches_;
};

}  // namespace ace
