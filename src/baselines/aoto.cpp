#include "baselines/aoto.h"

#include <algorithm>

namespace ace {

void AotoRoundReport::merge(const AotoRoundReport& other) noexcept {
  phase1.merge(other.phase1);
  cuts += other.cuts;
  adds += other.adds;
  peers_stepped += other.peers_stepped;
}

AotoEngine::AotoEngine(OverlayNetwork& overlay, AotoConfig config)
    : overlay_{&overlay}, config_{config}, tables_{config.sizing} {
  tables_.ensure_size(overlay.peer_count());
  forwarding_.ensure_size(overlay.peer_count());
}

void AotoEngine::step_peer(PeerId peer, Rng& rng, AotoRoundReport& report) {
  (void)rng;
  if (!overlay_->is_online(peer)) return;
  ++report.peers_stepped;

  tables_.ensure_size(overlay_->peer_count());
  forwarding_.ensure_size(overlay_->peer_count());
  tables_.refresh_peer(*overlay_, peer, report.phase1);
  tables_.charge_exchange(*overlay_, peer, report.phase1);

  const LocalClosure closure = build_closure(*overlay_, peer, 1);
  const LocalTree tree = build_local_tree(closure);
  forwarding_.set_tree(peer, make_tree_routing(tree, peer));

  // Reorganization: hand the most expensive non-flooding neighbor over to
  // the cheapest flooding neighbor.
  for (std::size_t move = 0; move < config_.moves_per_round; ++move) {
    if (tree.flooding.empty()) break;
    PeerId victim = kInvalidPeer;
    Weight victim_cost = -1;
    for (const PeerId b : tree.non_flooding) {
      if (!overlay_->are_connected(peer, b)) continue;
      if (overlay_->degree(b) <= config_.min_degree) continue;
      const Weight c = overlay_->link_cost(peer, b);
      if (c > victim_cost) {
        victim_cost = c;
        victim = b;
      }
    }
    if (victim == kInvalidPeer) break;
    PeerId adopter = kInvalidPeer;
    Weight adopter_cost = kUnreachable;
    for (const PeerId f : tree.flooding) {
      if (!overlay_->are_connected(peer, f)) continue;
      const Weight c = overlay_->link_cost(peer, f);
      if (c < adopter_cost && f != victim) {
        adopter_cost = c;
        adopter = f;
      }
    }
    if (adopter == kInvalidPeer) break;
    // Adopt first so the victim is never stranded, then cut.
    const bool added = overlay_->connect(adopter, victim);
    if (added) ++report.adds;
    if (added || overlay_->are_connected(adopter, victim)) {
      if (overlay_->disconnect(peer, victim)) {
        ++report.cuts;
        forwarding_.invalidate(victim);
        forwarding_.invalidate(adopter);
      }
    }
  }
  // Rebuild this peer's tree after mutations.
  const LocalClosure updated = build_closure(*overlay_, peer, 1);
  const LocalTree fresh = build_local_tree(updated);
  forwarding_.set_tree(peer, make_tree_routing(fresh, peer));
}

AotoRoundReport AotoEngine::step_round(Rng& rng) {
  AotoRoundReport report;
  std::vector<PeerId> order = overlay_->online_peers();
  rng.shuffle(std::span<PeerId>{order});
  for (const PeerId p : order) step_peer(p, rng, report);
  return report;
}

}  // namespace ace
