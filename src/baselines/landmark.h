// Landmark-based overlay construction — the related-work approach the paper
// argues against (its reference [16], "building topology-aware overlays
// using global soft-state"): every peer measures its latency to a handful
// of stable, globally-known landmark servers; the delay vector is the
// peer's coordinate, and peers connect to coordinate-nearby peers. The
// paper's critique: it needs extra landmark infrastructure, its global
// measurement is expensive, and clustering by coordinates can shrink the
// search scope (nearby peers interconnect densely while inter-cluster
// links thin out). This module exists so the critique is measurable
// (bench_baseline_comparison).
#pragma once

#include <cstddef>
#include <vector>

// landmark_coordinates / coordinate_distance — the measurement and
// clustering primitives this baseline is built from — live in the oracle
// library (oracle/landmark_oracle.h) and are shared with LandmarkOracle:
// one triangulation implementation, whether it builds an overlay or
// answers cost queries.
#include "oracle/landmark_oracle.h"
#include "overlay/overlay_network.h"
#include "util/rng.h"

namespace ace {

struct LandmarkConfig {
  std::size_t landmarks = 8;
  // Links per peer toward its coordinate-nearest peers.
  std::size_t proximity_links = 4;
  // Extra uniformly random links per peer (0 reproduces the pure scheme;
  // a couple of random links is the standard fix for its partitioning).
  std::size_t random_links = 0;
};

// Builds a landmark-clustered overlay over the given peer hosts: each peer
// links to its `proximity_links` coordinate-nearest peers plus
// `random_links` random ones. NOTE: deliberately *no* connectivity repair —
// whether the scheme partitions the overlay is one of the measured
// outcomes.
OverlayNetwork build_landmark_overlay(const PhysicalNetwork& physical,
                                      std::span<const HostId> peer_hosts,
                                      const LandmarkConfig& config, Rng& rng);

}  // namespace ace
