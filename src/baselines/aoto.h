// AOTO — Adaptive Overlay Topology Optimization (Liu et al., GLOBECOM'03),
// the paper's own preliminary design ([8]) and the natural baseline between
// blind flooding and full ACE. AOTO runs the same phase 1/2 (cost tables +
// 1-closure spanning tree) but its reorganization step is simpler: a peer
// picks its most *expensive* non-flooding neighbor and hands it over to the
// closest flooding neighbor ("will be closer to it than to me"), i.e. cut
// P-B and have F adopt B — without probing candidate costs first.
#pragma once

#include <span>
#include <vector>

#include "ace/engine.h"

namespace ace {

struct AotoConfig {
  MessageSizing sizing{};
  std::size_t min_degree = 1;
  // Reorganizations attempted per peer per round.
  std::size_t moves_per_round = 1;
};

struct AotoRoundReport {
  ProbeOverhead phase1;
  std::size_t cuts = 0;
  std::size_t adds = 0;
  std::size_t peers_stepped = 0;

  double total_overhead() const noexcept { return phase1.total(); }
  void merge(const AotoRoundReport& other) noexcept;
};

class AotoEngine {
 public:
  AotoEngine(OverlayNetwork& overlay, AotoConfig config);

  const ForwardingTable& forwarding() const noexcept { return forwarding_; }

  void step_peer(PeerId peer, Rng& rng, AotoRoundReport& report);
  AotoRoundReport step_round(Rng& rng);

 private:
  OverlayNetwork* overlay_;
  AotoConfig config_;
  CostTableStore tables_;
  ForwardingTable forwarding_;
};

}  // namespace ace
