#include "baselines/ltm.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace ace {

void LtmRoundReport::merge(const LtmRoundReport& other) noexcept {
  detectors += other.detectors;
  detector_traffic += other.detector_traffic;
  cuts += other.cuts;
  adds += other.adds;
  peers_stepped += other.peers_stepped;
}

LtmEngine::LtmEngine(OverlayNetwork& overlay, LtmConfig config)
    : overlay_{&overlay}, config_{config} {
  if (config_.max_degree == 0) {
    // Default ceiling: the overlay's connectivity density — otherwise
    // "add closer nodes" densifies the overlay without bound and floods
    // cost more, not less.
    config_.max_degree = std::max<std::size_t>(
        config_.min_degree + 1,
        static_cast<std::size_t>(overlay.mean_online_degree()));
  }
}

void LtmEngine::step_peer(PeerId peer, Rng& rng, LtmRoundReport& report) {
  if (!overlay_->is_online(peer)) return;
  ++report.peers_stepped;

  // TTL-2 detector flood: one transmission per direct link, then one per
  // neighbor's link (the detector is tiny — PING-sized).
  const double detector_size = size_factor(config_.sizing, MessageType::kPing);
  std::vector<PeerId> neighbors;
  for (const auto& n : overlay_->neighbors(peer)) {
    neighbors.push_back(peer_of(n));
    ++report.detectors;
    report.detector_traffic += detector_size * n.weight;
  }
  for (const PeerId v : neighbors) {
    for (const auto& n2 : overlay_->neighbors(v)) {
      if (peer_of(n2) == peer) continue;
      ++report.detectors;
      report.detector_traffic += detector_size * n2.weight;
    }
  }

  // Cut slow connections: for each direct neighbor v, if some relay r
  // (also a direct neighbor) provides a two-hop path no slower than the
  // direct link, the link peer-v is redundant for v's reachability.
  for (const PeerId v : neighbors) {
    if (!overlay_->are_connected(peer, v)) continue;  // cut earlier this step
    if (overlay_->degree(peer) <= config_.min_degree) break;
    if (overlay_->degree(v) <= config_.min_degree) continue;
    const Weight direct = overlay_->link_cost(peer, v);
    for (const PeerId r : neighbors) {
      if (r == v || !overlay_->are_connected(peer, r)) continue;
      if (!overlay_->are_connected(r, v)) continue;
      const Weight via =
          overlay_->link_cost(peer, r) + overlay_->link_cost(r, v);
      if (via <= config_.slack * direct) {
        overlay_->disconnect(peer, v);
        ++report.cuts;
        break;
      }
    }
  }

  // Add closer nodes: probe random two-hop peers; adopt one that is closer
  // than the current most expensive neighbor.
  for (std::size_t add = 0; add < config_.adds_per_round; ++add) {
    if (config_.max_degree != 0 &&
        overlay_->degree(peer) >= config_.max_degree)
      break;
    // Current worst link.
    Weight worst = 0;
    for (const auto& n : overlay_->neighbors(peer))
      worst = std::max(worst, n.weight);
    if (worst == 0) break;
    // Candidate pool: neighbors of neighbors, not already adjacent.
    std::vector<PeerId> pool;
    for (const auto& n : overlay_->neighbors(peer))
      for (const auto& n2 : overlay_->neighbors(peer_of(n)))
        if (peer_of(n2) != peer && !overlay_->are_connected(peer, peer_of(n2)))
          pool.push_back(peer_of(n2));
    if (pool.empty()) break;
    const PeerId candidate = pool[rng.next_below(pool.size())];
    // The LTM peer decides from its measured belief (oracle estimate when
    // one is attached); the installed link still carries the true weight.
    if (overlay_->peer_cost_estimate(peer, candidate) < worst)
      if (overlay_->connect(peer, candidate)) ++report.adds;
  }

  // Keep the connectivity density: while above the ceiling, drop the most
  // expensive link (the "cut inefficient connections" half of LTM).
  while (config_.max_degree != 0 &&
         overlay_->degree(peer) > config_.max_degree) {
    PeerId victim = kInvalidPeer;
    Weight worst = -1;
    for (const auto& n : overlay_->neighbors(peer)) {
      if (overlay_->degree(peer_of(n)) <= config_.min_degree) continue;
      if (n.weight > worst) {
        worst = n.weight;
        victim = peer_of(n);
      }
    }
    if (victim == kInvalidPeer) break;
    overlay_->disconnect(peer, victim);
    ++report.cuts;
  }
}

LtmRoundReport LtmEngine::step_round(Rng& rng) {
  LtmRoundReport report;
  std::vector<PeerId> order = overlay_->online_peers();
  rng.shuffle(std::span<PeerId>{order});
  for (const PeerId p : order) step_peer(p, rng, report);
  return report;
}

}  // namespace ace
