// LTM — Location-aware Topology Matching (Liu et al., INFOCOM 2004), the
// paper's reference [9] and its own closest comparator: "each peer issues a
// detector in a small region so that the peers receiving the detector can
// record relative delay information. Based on the delay information, a
// receiver can detect and cut most of the inefficient and redundant
// logical links, and add closer nodes as its direct neighbors."
//
// Modeled here at the same granularity as ACE: a peer floods a TTL-2
// detector (overhead charged per transmission); every neighbor pair
// (v, via relay r) whose two-hop path is no slower than the direct link
// marks the direct link redundant and cuts it; two-hop peers that probe
// closer than the current farthest neighbor are added. Unlike ACE, LTM
// does no tree routing — its entire benefit is the reshaped topology, so
// searches remain blind flooding.
#pragma once

#include <cstddef>

#include "overlay/overlay_network.h"
#include "proto/message.h"
#include "util/rng.h"

namespace ace {

struct LtmConfig {
  MessageSizing sizing{};
  // Slack factor: cut the direct link s-v when
  //   d(s,r) + d(r,v) <= slack * d(s,v).
  // The INFOCOM paper cuts when the two-hop path is not slower; slack
  // slightly above 1 compensates probe jitter.
  double slack = 1.0;
  std::size_t min_degree = 2;
  // Two-hop peers adopted per peer per round (0 disables adding).
  std::size_t adds_per_round = 1;
  // Never grow a peer past this degree via adds (0 = derive from the
  // overlay's mean degree + 2 at engine construction).
  std::size_t max_degree = 0;
};

struct LtmRoundReport {
  std::size_t detectors = 0;        // detector transmissions
  double detector_traffic = 0;      // size x delay units
  std::size_t cuts = 0;
  std::size_t adds = 0;
  std::size_t peers_stepped = 0;

  double total_overhead() const noexcept { return detector_traffic; }
  void merge(const LtmRoundReport& other) noexcept;
};

class LtmEngine {
 public:
  LtmEngine(OverlayNetwork& overlay, LtmConfig config);

  void step_peer(PeerId peer, Rng& rng, LtmRoundReport& report);
  LtmRoundReport step_round(Rng& rng);

 private:
  OverlayNetwork* overlay_;
  LtmConfig config_;
};

}  // namespace ace
