#include "baselines/landmark.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ace {

// landmark_coordinates / coordinate_distance are defined in
// oracle/landmark_oracle.cpp — shared with LandmarkOracle.

OverlayNetwork build_landmark_overlay(const PhysicalNetwork& physical,
                                      std::span<const HostId> peer_hosts,
                                      const LandmarkConfig& config, Rng& rng) {
  if (config.landmarks == 0)
    throw std::invalid_argument{"build_landmark_overlay: need landmarks"};
  if (peer_hosts.size() < 2)
    throw std::invalid_argument{"build_landmark_overlay: need >= 2 peers"};

  // Landmarks are stable well-known hosts: pick them uniformly from the
  // physical topology (the real scheme uses dedicated servers).
  std::vector<HostId> landmarks;
  for (const std::size_t i :
       rng.sample_indices(physical.host_count(), config.landmarks))
    // ace-id: boundary(sampled indices range over the physical host table)
    landmarks.push_back(HostId{static_cast<std::uint32_t>(i)});

  const auto coords = landmark_coordinates(physical, peer_hosts, landmarks);

  OverlayNetwork overlay{physical};
  for (const HostId h : peer_hosts) overlay.add_peer(h);

  const std::size_t n = peer_hosts.size();
  std::vector<std::size_t> order(n);
  for (PeerId p{0}; p < n; ++p) {
    // Coordinate-nearest peers (coords is indexed in peer order).
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(
        order.begin(),
        order.begin() +
            static_cast<std::ptrdiff_t>(
                std::min(config.proximity_links + 1, n)),
        order.end(), [&](std::size_t a, std::size_t b) {
          return coordinate_distance(coords[p.value()], coords[a]) <
                 coordinate_distance(coords[p.value()], coords[b]);
        });
    std::size_t made = 0;
    for (const std::size_t q : order) {
      if (q == p.value()) continue;
      if (made >= config.proximity_links) break;
      // ace-id: boundary(the sort order ranges over peer slots)
      overlay.connect(p, PeerId{static_cast<std::uint32_t>(q)});
      ++made;  // counts attempts so already-connected pairs still consume
    }
    for (std::size_t r = 0; r < config.random_links; ++r) {
      // ace-id: boundary(a uniform draw below peer_count is a peer slot)
      const PeerId q{static_cast<std::uint32_t>(rng.next_below(n))};
      if (q != p) overlay.connect(p, q);
    }
  }
  return overlay;
}

}  // namespace ace
