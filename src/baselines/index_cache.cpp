#include "baselines/index_cache.h"

#include <stdexcept>

namespace ace {

LruIndexCache::LruIndexCache(std::size_t capacity) : capacity_{capacity} {
  if (capacity == 0)
    throw std::invalid_argument{"LruIndexCache: capacity must be > 0"};
}

PeerId LruIndexCache::lookup(ObjectId object) {
  const auto it = map_.find(object);
  if (it == map_.end()) {
    ++misses_;
    return kInvalidPeer;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // move to front
  return it->second->holder;
}

PeerId LruIndexCache::peek(ObjectId object) const {
  const auto it = map_.find(object);
  return it == map_.end() ? kInvalidPeer : it->second->holder;
}

void LruIndexCache::insert(ObjectId object, PeerId holder) {
  if (const auto it = map_.find(object); it != map_.end()) {
    it->second->holder = holder;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    map_.erase(lru_.back().object);
    lru_.pop_back();
  }
  lru_.push_front({object, holder});
  map_.emplace(object, lru_.begin());
}

void LruIndexCache::erase(ObjectId object) {
  const auto it = map_.find(object);
  if (it == map_.end()) return;
  lru_.erase(it->second);
  map_.erase(it);
}

void LruIndexCache::clear() {
  lru_.clear();
  map_.clear();
}

IndexCacheLayer::IndexCacheLayer(const ObjectCatalog& catalog,
                                 std::size_t peers,
                                 std::size_t capacity_per_peer)
    : catalog_{&catalog} {
  caches_.reserve(peers);
  for (std::size_t i = 0; i < peers; ++i)
    caches_.emplace_back(capacity_per_peer);
}

AnswerKind IndexCacheLayer::answers(PeerId peer, ObjectId object) const {
  if (catalog_->holds(peer, object)) return AnswerKind::kHolds;
  if (peer >= caches_.size()) return AnswerKind::kNo;
  LruIndexCache& cache = caches_[peer];
  const PeerId cached = cache.lookup(object);
  if (cached == kInvalidPeer) return AnswerKind::kNo;
  // Staleness: the pointed-to holder must still be online and still hold
  // the object (placement is static, so only liveness can go stale).
  const bool valid =
      catalog_->holds(cached, object) &&
      (overlay_ == nullptr || overlay_->is_online(cached));
  if (!valid) {
    cache.erase(object);
    return AnswerKind::kNo;
  }
  return AnswerKind::kCached;
}

void IndexCacheLayer::learn_from(const QueryResult& result, ObjectId object) {
  if (!result.found || result.visit_parents.empty()) return;
  // The actual holder behind the response: for a cached answer the cache
  // entry's target, otherwise the responder itself.
  PeerId holder = result.first_responder;
  if (result.answered_from_cache && result.first_responder < caches_.size()) {
    const PeerId target = caches_[result.first_responder].peek(object);
    if (target != kInvalidPeer) holder = target;
  }
  // Walk the inverse path responder -> source via the recorded parents.
  // ace-lint: allow(unordered-container): keyed lookup only — the walk
  // follows parent pointers one by one; the map is never iterated.
  std::unordered_map<PeerId, PeerId> parent;
  parent.reserve(result.visit_parents.size());
  for (const auto& [peer, from] : result.visit_parents)
    parent.emplace(peer, from);
  PeerId v = result.first_responder;
  std::size_t guard = 0;
  while (v != kInvalidPeer && guard++ <= parent.size()) {
    if (v < caches_.size() && v != holder) caches_[v].insert(object, holder);
    const auto it = parent.find(v);
    if (it == parent.end()) break;
    v = it->second;
  }
}

void IndexCacheLayer::on_peer_leave(PeerId peer) {
  if (peer < caches_.size()) caches_[peer].clear();
}

const LruIndexCache& IndexCacheLayer::cache_of(PeerId peer) const {
  if (peer >= caches_.size())
    throw std::out_of_range{"IndexCacheLayer: peer out of range"};
  return caches_[peer];
}

std::size_t IndexCacheLayer::total_entries() const {
  std::size_t total = 0;
  for (const auto& c : caches_) total += c.size();
  return total;
}

}  // namespace ace
