// Shortest paths and spanning trees: Dijkstra (the physical delay oracle),
// BFS (hop-count closures), and Prim's MST (ACE phase 2 builds its local
// multicast tree with Prim, as the paper specifies).
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace ace {

inline constexpr Weight kUnreachable = std::numeric_limits<Weight>::infinity();

struct ShortestPathResult {
  // dist[v] = cost of the shortest path source->v (kUnreachable when none).
  std::vector<Weight> dist;
  // parent[v] = predecessor of v on that path (kInvalidNode for the source
  // and unreachable nodes).
  std::vector<NodeId> parent;
};

// Single-source Dijkstra over non-negative weights. Implemented on the
// flat-array CSR kernel (graph/csr.h): the graph is snapshotted to CSR and
// solved with a 4-ary heap. Distance values are bit-identical to
// dijkstra_reference (they are a min over path sums, independent of heap
// pop order); parent choices can differ only between exactly-equal-cost
// paths.
ShortestPathResult dijkstra(const Graph& graph, NodeId source);

// Dijkstra that stops once every node in `targets` is finalized — used by
// the physical network's on-demand host-distance cache.
ShortestPathResult dijkstra_to_targets(const Graph& graph, NodeId source,
                                       std::span<const NodeId> targets);

// The original binary-heap adjacency-list implementation, kept as the
// differential-testing oracle for the CSR kernel and as the baseline side
// of the bench_micro CSR-vs-adjacency comparison. Semantics identical to
// dijkstra/dijkstra_to_targets (empty `targets` = full run).
ShortestPathResult dijkstra_reference(const Graph& graph, NodeId source,
                                      std::span<const NodeId> targets = {});

// Reconstructs the node sequence source..target from a parent array.
// Returns empty when target is unreachable.
std::vector<NodeId> extract_path(const ShortestPathResult& result,
                                 NodeId target);

// Unweighted BFS hop counts from source; kUnreachableHops when unreachable.
inline constexpr std::uint32_t kUnreachableHops =
    std::numeric_limits<std::uint32_t>::max();
std::vector<std::uint32_t> bfs_hops(const Graph& graph, NodeId source);

// All nodes within `max_hops` hops of source, in BFS order (source first).
std::vector<NodeId> nodes_within_hops(const Graph& graph, NodeId source,
                                      std::uint32_t max_hops);

struct MstResult {
  // Edges of the spanning forest (one tree per connected component that
  // contains the root's component; isolated parts of the input are absent).
  std::vector<Edge> edges;
  Weight total_weight = 0;
};

// Prim's algorithm rooted at `root`, spanning root's connected component.
MstResult prim_mst(const Graph& graph, NodeId root);

// True when every node is reachable from node 0 (empty graph is connected).
bool is_connected(const Graph& graph);

// Connected component label per node (labels are 0..k-1, assigned in
// discovery order).
std::vector<std::uint32_t> connected_components(const Graph& graph);

}  // namespace ace
