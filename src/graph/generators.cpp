#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ace {

namespace {

// Draws a uniform weight in [lo, hi]; degenerate ranges return lo.
Weight draw_weight(Rng& rng, Weight lo, Weight hi) {
  if (!(lo > 0)) throw std::invalid_argument{"generator: delays must be > 0"};
  if (hi < lo) throw std::invalid_argument{"generator: max delay < min delay"};
  if (hi == lo) return lo;
  return rng.uniform_real(lo, hi);
}

}  // namespace

Graph barabasi_albert(const BaOptions& options, Rng& rng) {
  const std::size_t m = options.edges_per_node;
  if (m == 0) throw std::invalid_argument{"barabasi_albert: edges_per_node == 0"};
  if (options.nodes < m + 1)
    throw std::invalid_argument{"barabasi_albert: need at least m+1 nodes"};

  Graph graph{options.nodes};
  // `attachment` holds one entry per edge endpoint, so sampling uniformly
  // from it is sampling proportional to degree.
  std::vector<NodeId> attachment;
  attachment.reserve(2 * m * options.nodes);

  // Seed: clique over the first m+1 nodes.
  for (NodeId u = 0; u <= m; ++u) {
    for (NodeId v = u + 1; v <= m; ++v) {
      graph.add_edge(u, v, draw_weight(rng, options.min_delay, options.max_delay));
      attachment.push_back(u);
      attachment.push_back(v);
    }
  }

  std::vector<NodeId> chosen;
  chosen.reserve(m);
  for (NodeId t = static_cast<NodeId>(m + 1); t < options.nodes; ++t) {
    chosen.clear();
    // Rejection-sample m distinct targets proportional to degree.
    while (chosen.size() < m) {
      const NodeId pick =
          attachment[rng.next_below(attachment.size())];
      if (std::find(chosen.begin(), chosen.end(), pick) == chosen.end())
        chosen.push_back(pick);
    }
    for (const NodeId target : chosen) {
      graph.add_edge(t, target,
                     draw_weight(rng, options.min_delay, options.max_delay));
      attachment.push_back(t);
      attachment.push_back(target);
    }
  }
  return graph;
}

Graph waxman(const WaxmanOptions& options, Rng& rng) {
  if (options.nodes == 0) throw std::invalid_argument{"waxman: zero nodes"};
  Graph graph{options.nodes};
  std::vector<double> xs(options.nodes), ys(options.nodes);
  for (std::size_t i = 0; i < options.nodes; ++i) {
    xs[i] = rng.next_double();
    ys[i] = rng.next_double();
  }
  const double max_dist = std::sqrt(2.0);
  auto dist = [&](std::size_t a, std::size_t b) {
    const double dx = xs[a] - xs[b];
    const double dy = ys[a] - ys[b];
    return std::sqrt(dx * dx + dy * dy);
  };
  for (std::size_t u = 0; u < options.nodes; ++u) {
    for (std::size_t v = u + 1; v < options.nodes; ++v) {
      const double d = dist(u, v);
      const double p = options.alpha * std::exp(-d / (options.beta * max_dist));
      if (rng.chance(p)) {
        const Weight w = std::max(1e-3, d * options.delay_scale);
        graph.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v), w);
      }
    }
  }
  if (options.force_connected) {
    // Union-find over current edges; attach each non-main component to its
    // geometrically nearest node of the main component.
    std::vector<NodeId> parent(options.nodes);
    std::iota(parent.begin(), parent.end(), 0);
    std::vector<NodeId> rank(options.nodes, 0);
    auto find = [&](NodeId x) {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };
    auto unite = [&](NodeId a, NodeId b) {
      a = find(a);
      b = find(b);
      if (a == b) return;
      if (rank[a] < rank[b]) std::swap(a, b);
      parent[b] = a;
      if (rank[a] == rank[b]) ++rank[a];
    };
    for (const Edge& e : graph.edges()) unite(e.u, e.v);
    // Largest component root.
    std::vector<std::size_t> size(options.nodes, 0);
    for (NodeId u = 0; u < options.nodes; ++u) ++size[find(u)];
    NodeId main_root = 0;
    for (NodeId u = 0; u < options.nodes; ++u)
      if (size[u] > size[main_root]) main_root = u;
    for (NodeId u = 0; u < options.nodes; ++u) {
      if (find(u) == main_root) continue;
      // Nearest node currently in the main component.
      NodeId best = kInvalidNode;
      double best_d = std::numeric_limits<double>::infinity();
      for (NodeId v = 0; v < options.nodes; ++v) {
        if (find(v) != main_root) continue;
        const double d = dist(u, v);
        if (d < best_d) {
          best_d = d;
          best = v;
        }
      }
      const Weight w = std::max(1e-3, best_d * options.delay_scale);
      graph.add_edge(u, best, w);
      unite(u, best);
    }
  }
  return graph;
}

Graph transit_stub(const TransitStubOptions& options, Rng& rng) {
  if (options.transit_nodes == 0)
    throw std::invalid_argument{"transit_stub: zero transit nodes"};
  const std::size_t total =
      options.transit_nodes +
      options.transit_nodes * options.stubs_per_transit * options.nodes_per_stub;
  Graph graph{total};

  // Backbone: ring + random chords for redundancy.
  for (std::size_t i = 0; i < options.transit_nodes; ++i) {
    const auto u = static_cast<NodeId>(i);
    const auto v = static_cast<NodeId>((i + 1) % options.transit_nodes);
    if (u != v) graph.add_edge(u, v, options.transit_delay);
  }
  const std::size_t chords = options.transit_nodes / 2;
  for (std::size_t c = 0; c < chords; ++c) {
    const auto u = static_cast<NodeId>(rng.next_below(options.transit_nodes));
    const auto v = static_cast<NodeId>(rng.next_below(options.transit_nodes));
    if (u != v) graph.add_edge(u, v, options.transit_delay);
  }

  NodeId next = static_cast<NodeId>(options.transit_nodes);
  for (std::size_t t = 0; t < options.transit_nodes; ++t) {
    for (std::size_t s = 0; s < options.stubs_per_transit; ++s) {
      const NodeId stub_first = next;
      for (std::size_t i = 0; i < options.nodes_per_stub; ++i) {
        const NodeId u = next++;
        if (i == 0) {
          // Gateway connects the stub to its transit router.
          graph.add_edge(u, static_cast<NodeId>(t), options.transit_stub_delay);
        } else {
          // Chain to keep the stub connected, plus random intra-stub chords.
          graph.add_edge(u, static_cast<NodeId>(u - 1), options.stub_delay);
        }
      }
      // Extra random intra-stub edges (dense local cluster).
      for (NodeId u = stub_first; u < next; ++u) {
        for (NodeId v = u + 1; v < next; ++v) {
          if (graph.has_edge(u, v)) continue;
          if (rng.chance(options.stub_extra_edge_prob))
            graph.add_edge(u, v, options.stub_delay);
        }
      }
    }
  }
  return graph;
}

namespace {

// Random spanning tree by random attachment order: node i (in shuffled
// order) connects to a uniformly random earlier node. Equivalent to a
// random recursive tree; mirrors bootstrap joining.
void add_random_spanning_tree(Graph& graph, Rng& rng, Weight weight) {
  const std::size_t n = graph.node_count();
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(std::span<NodeId>{order});
  for (std::size_t i = 1; i < n; ++i) {
    const NodeId u = order[i];
    const NodeId v = order[rng.next_below(i)];
    graph.add_edge(u, v, weight);
  }
}

void add_random_edges_to_target(Graph& graph, Rng& rng, std::size_t target_edges,
                                Weight weight) {
  const std::size_t n = graph.node_count();
  if (n < 2) return;
  const std::size_t max_edges = n * (n - 1) / 2;
  target_edges = std::min(target_edges, max_edges);
  std::size_t attempts = 0;
  const std::size_t max_attempts = 50 * (target_edges + 1);
  while (graph.edge_count() < target_edges && attempts < max_attempts) {
    ++attempts;
    const auto u = static_cast<NodeId>(rng.next_below(n));
    const auto v = static_cast<NodeId>(rng.next_below(n));
    if (u == v) continue;
    graph.add_edge(u, v, weight);
  }
}

void backfill_min_degree(Graph& graph, Rng& rng, std::size_t min_degree,
                         Weight weight) {
  const std::size_t n = graph.node_count();
  if (n < 2) return;
  min_degree = std::min(min_degree, n - 1);
  for (NodeId u = 0; u < n; ++u) {
    std::size_t guard = 0;
    while (graph.degree(u) < min_degree && guard++ < 100 * n) {
      const auto v = static_cast<NodeId>(rng.next_below(n));
      if (v == u) continue;
      graph.add_edge(u, v, weight);
    }
  }
}

}  // namespace

Graph random_overlay(const OverlayOptions& options, Rng& rng) {
  if (options.peers < 2)
    throw std::invalid_argument{"random_overlay: need >= 2 peers"};
  if (!(options.mean_degree >= 1.0))
    throw std::invalid_argument{"random_overlay: mean_degree must be >= 1"};
  Graph graph{options.peers};
  add_random_spanning_tree(graph, rng, 1.0);
  const auto target_edges = static_cast<std::size_t>(
      options.mean_degree * static_cast<double>(options.peers) / 2.0);
  add_random_edges_to_target(graph, rng, target_edges, 1.0);
  backfill_min_degree(graph, rng, options.min_degree, 1.0);
  return graph;
}

Graph power_law_overlay(const OverlayOptions& options, Rng& rng) {
  if (options.peers < 4)
    throw std::invalid_argument{"power_law_overlay: need >= 4 peers"};
  BaOptions ba;
  ba.nodes = options.peers;
  // Use roughly half the target degree for attachment; the rest is filled
  // with uniform random edges, giving a power-law core with random chords
  // (matches measured Gnutella snapshots better than pure BA).
  ba.edges_per_node =
      std::max<std::size_t>(1, static_cast<std::size_t>(options.mean_degree / 4.0));
  ba.min_delay = 1.0;
  ba.max_delay = 1.0;
  Graph graph = barabasi_albert(ba, rng);
  const auto target_edges = static_cast<std::size_t>(
      options.mean_degree * static_cast<double>(options.peers) / 2.0);
  add_random_edges_to_target(graph, rng, target_edges, 1.0);
  backfill_min_degree(graph, rng, options.min_degree, 1.0);
  return graph;
}

Graph small_world_overlay(const OverlayOptions& options, Rng& rng,
                          double rewire_prob) {
  if (options.peers < 4)
    throw std::invalid_argument{"small_world_overlay: need >= 4 peers"};
  WattsStrogatzOptions ws;
  ws.nodes = options.peers;
  // k must be even and >= 2; round mean_degree down to the nearest even.
  auto k = static_cast<std::size_t>(options.mean_degree);
  if (k % 2 == 1) --k;
  ws.k = std::max<std::size_t>(2, std::min(k, options.peers - 2));
  ws.rewire_prob = rewire_prob;
  Graph graph = watts_strogatz(ws, rng);
  backfill_min_degree(graph, rng, options.min_degree, 1.0);
  return graph;
}

Graph watts_strogatz(const WattsStrogatzOptions& options, Rng& rng) {
  if (options.nodes < 3) throw std::invalid_argument{"watts_strogatz: too few nodes"};
  if (options.k % 2 != 0 || options.k == 0 || options.k >= options.nodes)
    throw std::invalid_argument{"watts_strogatz: k must be even, 0 < k < n"};
  const std::size_t n = options.nodes;
  Graph graph{n};
  // Ring lattice.
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t j = 1; j <= options.k / 2; ++j) {
      const auto v = static_cast<NodeId>((u + j) % n);
      graph.add_edge(static_cast<NodeId>(u), v, options.weight);
    }
  }
  // Rewire each original lattice edge with probability rewire_prob.
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t j = 1; j <= options.k / 2; ++j) {
      const auto v = static_cast<NodeId>((u + j) % n);
      if (!rng.chance(options.rewire_prob)) continue;
      if (!graph.has_edge(static_cast<NodeId>(u), v)) continue;  // already rewired away
      // Pick a new endpoint w != u, not already adjacent.
      std::size_t guard = 0;
      while (guard++ < 100) {
        const auto w = static_cast<NodeId>(rng.next_below(n));
        if (w == u || graph.has_edge(static_cast<NodeId>(u), w)) continue;
        graph.remove_edge(static_cast<NodeId>(u), v);
        graph.add_edge(static_cast<NodeId>(u), w, options.weight);
        break;
      }
    }
  }
  return graph;
}

Graph erdos_renyi(const ErdosRenyiOptions& options, Rng& rng) {
  Graph graph{options.nodes};
  for (std::size_t u = 0; u < options.nodes; ++u)
    for (std::size_t v = u + 1; v < options.nodes; ++v)
      if (rng.chance(options.edge_prob))
        graph.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v),
                       options.weight);
  return graph;
}

}  // namespace ace
