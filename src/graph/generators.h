// Topology generators. The paper generates physical topologies with BRITE's
// BA (Barabási-Albert) option — BA graphs exhibit the small-world and
// power-law properties measured for the real Internet — and logical overlays
// as random graphs with a target mean degree. BRITE is not available, so
// this module is the substitute substrate: the same generative processes,
// implemented from scratch (see DESIGN.md §2).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace ace {

// ---------------------------------------------------------------------------
// Physical-layer generators
// ---------------------------------------------------------------------------

struct BaOptions {
  std::size_t nodes = 1000;
  // Edges added per new node (BRITE's m parameter). The seed clique has
  // edges_per_node + 1 nodes.
  std::size_t edges_per_node = 2;
  // Edge delays are drawn uniformly from [min_delay, max_delay]. BRITE
  // assigns delays from router placement; a uniform draw preserves the
  // property that matters here (heterogeneous per-hop delay).
  Weight min_delay = 1.0;
  Weight max_delay = 10.0;
};

// Barabási-Albert preferential attachment. Node t connects to
// edges_per_node distinct existing nodes chosen with probability
// proportional to their current degree. Produces the power-law degree
// distribution (alpha ~ 3) and low diameter the paper's methodology cites.
Graph barabasi_albert(const BaOptions& options, Rng& rng);

struct WaxmanOptions {
  std::size_t nodes = 1000;
  // P(edge between u,v) = alpha * exp(-d(u,v) / (beta * L)), d Euclidean on
  // the unit square, L = sqrt(2) the max distance.
  double alpha = 0.15;
  double beta = 0.2;
  // Delay per edge = distance * delay_scale (propagation-delay model).
  Weight delay_scale = 20.0;
  // When true, extra edges are added to connect stray components to the
  // largest one (each stray node links to its geometrically nearest
  // connected node).
  bool force_connected = true;
};

// Waxman random geometric graph — the classic flat router-level model;
// provided as an alternative physical substrate and for generator ablation.
Graph waxman(const WaxmanOptions& options, Rng& rng);

struct TransitStubOptions {
  std::size_t transit_nodes = 16;       // backbone routers
  std::size_t stubs_per_transit = 4;    // stub domains hanging off each
  std::size_t nodes_per_stub = 15;      // hosts per stub domain
  Weight transit_delay = 20.0;          // backbone link delay (long haul)
  Weight transit_stub_delay = 5.0;      // access link delay
  Weight stub_delay = 1.0;              // intra-domain link delay
  double stub_extra_edge_prob = 0.3;    // extra random intra-stub edges
};

// Two-level transit-stub topology (GT-ITM style): a connected backbone of
// transit routers, each with several densely-connected stub domains. This
// captures the property at the heart of the mismatch problem — intra-domain
// hops are cheap, inter-domain hops are expensive (MSU vs Tsinghua in the
// paper's Fig. 2).
Graph transit_stub(const TransitStubOptions& options, Rng& rng);

// ---------------------------------------------------------------------------
// Overlay-layer generators
// ---------------------------------------------------------------------------

struct OverlayOptions {
  std::size_t peers = 512;
  // Target mean number of logical neighbors per peer (the paper's C,
  // "average edge connections", swept over {4, 6, 8, 10}).
  double mean_degree = 6.0;
  // Minimum degree each peer should end with (Gnutella clients keep a
  // handful of connections open); clamped to peers-1.
  std::size_t min_degree = 2;
};

// Random overlay: a connected random graph with the target mean degree.
// Construction: random spanning tree (guarantees connectivity, mirrors
// bootstrap joining), then uniformly random extra edges up to the target
// edge count, then degree back-fill to min_degree. Edge weights are
// placeholders (1.0) — the overlay manager re-weights logical links with
// physical path delays.
Graph random_overlay(const OverlayOptions& options, Rng& rng);

struct WattsStrogatzOptions {
  std::size_t nodes = 512;
  std::size_t k = 6;         // each node connected to k nearest ring neighbors (even)
  double rewire_prob = 0.1;  // per-edge rewiring probability
  Weight weight = 1.0;
};

// Watts-Strogatz small-world ring; used in tests to validate the
// clustering/path-length metrics and as an alternative overlay shape.
Graph watts_strogatz(const WattsStrogatzOptions& options, Rng& rng);

struct ErdosRenyiOptions {
  std::size_t nodes = 512;
  double edge_prob = 0.02;
  Weight weight = 1.0;
};

// G(n, p) random graph (reference model for metric tests).
Graph erdos_renyi(const ErdosRenyiOptions& options, Rng& rng);

// Power-law overlay: BA attachment over peers, then random extra edges to
// reach the requested mean degree. Mirrors measured Gnutella snapshots
// (power-law-ish overlay degree); used as the "trace-like" overlay
// substitute for the paper's DSS Clip2 trace experiment.
Graph power_law_overlay(const OverlayOptions& options, Rng& rng);

// Small-world overlay (the paper's §4.1 default: P2P overlays follow small
// world *and* power law properties): a Watts-Strogatz ring over the peers
// with k = mean_degree and mild rewiring. The resulting high clustering is
// what gives ACE material to work with — 1-neighbor closures contain
// neighbor-neighbor links, so local MSTs genuinely prune redundant edges.
// Ring positions are arbitrary peer indices, entirely uncorrelated with the
// physical host placement, so the overlay is maximally mismatched.
Graph small_world_overlay(const OverlayOptions& options, Rng& rng,
                          double rewire_prob = 0.15);

}  // namespace ace
