#include "graph/graph.h"

#include <algorithm>
#include <stdexcept>

#include "util/check.h"

namespace ace {

Graph::Graph(std::size_t node_count) : adjacency_(node_count) {}

void Graph::reset_nodes(std::size_t n) {
  if (adjacency_.size() > n) adjacency_.resize(n);
  for (auto& list : adjacency_) list.clear();
  adjacency_.resize(n);
  edge_count_ = 0;
}

NodeId Graph::add_node() {
  adjacency_.emplace_back();
  return static_cast<NodeId>(adjacency_.size() - 1);
}

void Graph::check_node(NodeId u) const {
  if (u >= adjacency_.size())
    throw std::out_of_range{"Graph: node id " + std::to_string(u) +
                            " out of range (n=" +
                            std::to_string(adjacency_.size()) + ")"};
}

bool Graph::add_edge(NodeId u, NodeId v, Weight weight) {
  check_node(u);
  check_node(v);
  if (u == v) return false;
  if (!(weight > 0))
    throw std::invalid_argument{"Graph::add_edge: weight must be positive"};
  if (has_edge(u, v)) return false;
  adjacency_[u].push_back({v, weight});
  adjacency_[v].push_back({u, weight});
  ++edge_count_;
  return true;
}

void Graph::add_new_edge(NodeId u, NodeId v, Weight weight) {
  check_node(u);
  check_node(v);
  if (!(weight > 0))
    throw std::invalid_argument{"Graph::add_new_edge: weight must be positive"};
  adjacency_[u].push_back({v, weight});
  adjacency_[v].push_back({u, weight});
  ++edge_count_;
}

namespace {
bool erase_neighbor(std::vector<Neighbor>& list, NodeId target) {
  const auto it = std::find_if(list.begin(), list.end(), [target](const Neighbor& n) {
    return n.node == target;
  });
  if (it == list.end()) return false;
  *it = list.back();
  list.pop_back();
  return true;
}
}  // namespace

bool Graph::remove_edge(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  if (!erase_neighbor(adjacency_[u], v)) return false;
  erase_neighbor(adjacency_[v], u);
  --edge_count_;
  return true;
}

bool Graph::set_weight(NodeId u, NodeId v, Weight weight) {
  check_node(u);
  check_node(v);
  if (!(weight > 0))
    throw std::invalid_argument{"Graph::set_weight: weight must be positive"};
  auto update = [weight](std::vector<Neighbor>& list, NodeId target) {
    for (auto& n : list) {
      if (n.node == target) {
        n.weight = weight;
        return true;
      }
    }
    return false;
  };
  if (!update(adjacency_[u], v)) return false;
  update(adjacency_[v], u);
  return true;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  // Scan the smaller adjacency list.
  const auto& list =
      adjacency_[u].size() <= adjacency_[v].size() ? adjacency_[u] : adjacency_[v];
  const NodeId target = adjacency_[u].size() <= adjacency_[v].size() ? v : u;
  return std::any_of(list.begin(), list.end(), [target](const Neighbor& n) {
    return n.node == target;
  });
}

std::optional<Weight> Graph::edge_weight(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  for (const auto& n : adjacency_[u])
    if (n.node == v) return n.weight;
  return std::nullopt;
}

std::span<const Neighbor> Graph::neighbors(NodeId u) const {
  check_node(u);
  return adjacency_[u];
}

std::size_t Graph::degree(NodeId u) const {
  check_node(u);
  return adjacency_[u].size();
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(edge_count_);
  for (NodeId u = 0; u < adjacency_.size(); ++u)
    for (const auto& n : adjacency_[u])
      if (u < n.node) out.push_back({u, n.node, n.weight});
  return out;
}

Weight Graph::total_weight() const {
  Weight total = 0;
  for (NodeId u = 0; u < adjacency_.size(); ++u)
    for (const auto& n : adjacency_[u])
      if (u < n.node) total += n.weight;
  return total;
}

std::vector<NodeId> Graph::isolate(NodeId u) {
  check_node(u);
  std::vector<NodeId> removed;
  removed.reserve(adjacency_[u].size());
  for (const auto& n : adjacency_[u]) removed.push_back(n.node);
  for (const NodeId v : removed) {
    erase_neighbor(adjacency_[v], u);
    --edge_count_;
  }
  adjacency_[u].clear();
  return removed;
}

void Graph::debug_validate() const {
  std::size_t directed_edges = 0;
  for (NodeId u = 0; u < adjacency_.size(); ++u) {
    for (const Neighbor& n : adjacency_[u]) {
      ACE_CHECK_NE(n.node, u) << " — self-loop at node " << u;
      ACE_CHECK_LT(n.node, adjacency_.size())
          << " — node " << u << " links to nonexistent node " << n.node;
      ACE_CHECK_GT(n.weight, 0) << " — non-positive weight on edge " << u
                                << "-" << n.node;
      const auto back = edge_weight(n.node, u);
      ACE_CHECK(back.has_value())
          << "adjacency asymmetry: " << u << "->" << n.node
          << " present, reverse missing";
      ACE_CHECK_EQ(back.value(), n.weight)
          << " — weight mismatch across directions of edge " << u << "-"
          << n.node;
      ++directed_edges;
    }
    // Duplicate neighbor entries would double-count traffic silently.
    std::vector<NodeId> ids;
    ids.reserve(adjacency_[u].size());
    for (const Neighbor& n : adjacency_[u]) ids.push_back(n.node);
    std::sort(ids.begin(), ids.end());
    ACE_CHECK(std::adjacent_find(ids.begin(), ids.end()) == ids.end())
        << "duplicate adjacency entry at node " << u;
  }
  ACE_CHECK_EQ(directed_edges, 2 * edge_count_)
      << " — edge_count out of sync with adjacency lists";
}

double Graph::mean_degree() const noexcept {
  if (adjacency_.empty()) return 0.0;
  return 2.0 * static_cast<double>(edge_count_) /
         static_cast<double>(adjacency_.size());
}

void Graph::digest_into(Fnv1a& digest) const {
  digest.update(static_cast<std::uint64_t>(adjacency_.size()));
  digest.update(static_cast<std::uint64_t>(edge_count_));
  for (NodeId u = 0; u < adjacency_.size(); ++u) {
    UnorderedDigest neighbors;
    for (const Neighbor& n : adjacency_[u]) {
      Fnv1a entry;
      entry.update(n.node);
      entry.update_double(n.weight);
      neighbors.add(entry.value());
    }
    digest.update(neighbors.value());
  }
}

}  // namespace ace
