#include "graph/csr.h"

#include <algorithm>
#include <stdexcept>

#include "graph/shortest_path.h"

namespace ace {

CsrGraph::CsrGraph(const Graph& graph) {
  const std::size_t n = graph.node_count();
  offsets_.assign(n + 1, 0);
  std::size_t arcs = 0;
  for (NodeId u = 0; u < n; ++u) {
    arcs += graph.degree(u);
    offsets_[u + 1] = static_cast<std::uint32_t>(arcs);
  }
  targets_.resize(arcs);
  weights_.resize(arcs);
  std::size_t at = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (const Neighbor& nb : graph.neighbors(u)) {
      targets_[at] = nb.node;
      weights_[at] = nb.weight;
      ++at;
    }
  }
}

Weight CsrDijkstra::unreachable_() noexcept { return kUnreachable; }

CsrDijkstra::CsrDijkstra(const CsrGraph& graph) : graph_{&graph} {
  const std::size_t n = graph.node_count();
  dist_.resize(n);
  parent_.resize(n);
  stamp_.assign(n, 0);
  done_stamp_.assign(n, 0);
  target_stamp_.assign(n, 0);
  heap_.reserve(n);
}

void CsrDijkstra::begin_epoch_() {
  if (++epoch_ == 0) {
    // Epoch counter wrapped (after ~4 billion runs): hard-reset the stamps
    // so stale marks from epoch 0 cannot alias as current.
    std::fill(stamp_.begin(), stamp_.end(), 0u);
    std::fill(done_stamp_.begin(), done_stamp_.end(), 0u);
    std::fill(target_stamp_.begin(), target_stamp_.end(), 0u);
    epoch_ = 1;
  }
  heap_.clear();
}

// ace-hot
void CsrDijkstra::heap_push_(Weight key, NodeId node) {
  // 4-ary sift-up; ties keep the earlier-inserted element above, which is
  // deterministic (pop order is a pure function of the push sequence).
  std::size_t i = heap_.size();
  heap_.push_back({key, node});
  while (i > 0) {
    const std::size_t up = (i - 1) / 4;
    if (heap_[up].key <= key) break;
    heap_[i] = heap_[up];
    i = up;
  }
  heap_[i] = {key, node};
}

// ace-hot
CsrDijkstra::HeapSlot CsrDijkstra::heap_pop_() {
  const HeapSlot top = heap_.front();
  const HeapSlot last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    std::size_t i = 0;
    const std::size_t size = heap_.size();
    for (;;) {
      const std::size_t first_child = 4 * i + 1;
      if (first_child >= size) break;
      const std::size_t child_end = std::min(first_child + 4, size);
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < child_end; ++c) {
        if (heap_[c].key < heap_[best].key) best = c;
      }
      if (heap_[best].key >= last.key) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

// ace-hot
void CsrDijkstra::run_to_targets(NodeId source,
                                 std::span<const NodeId> targets) {
  const std::size_t n = graph_->node_count();
  if (source >= n) throw std::out_of_range{"dijkstra: source out of range"};
  begin_epoch_();

  std::size_t targets_left = targets.size();
  for (const NodeId t : targets) {
    if (t >= n) throw std::out_of_range{"dijkstra: target out of range"};
    if (target_stamp_[t] == epoch_) {
      --targets_left;  // duplicate target
    } else {
      target_stamp_[t] = epoch_;
    }
  }

  const std::span<const std::uint32_t> offsets = graph_->offsets();
  const std::span<const NodeId> arc_targets = graph_->arc_targets();
  const std::span<const Weight> arc_weights = graph_->arc_weights();

  dist_[source] = 0;
  parent_[source] = kInvalidNode;
  stamp_[source] = epoch_;
  heap_push_(0, source);
  while (!heap_.empty()) {
    const auto [d, u] = heap_pop_();
    if (done_stamp_[u] == epoch_) continue;
    done_stamp_[u] = epoch_;
    if (!targets.empty() && target_stamp_[u] == epoch_ &&
        --targets_left == 0)
      break;
    const std::uint32_t arc_end = offsets[u + 1];
    for (std::uint32_t a = offsets[u]; a < arc_end; ++a) {
      const NodeId v = arc_targets[a];
      const Weight nd = d + arc_weights[a];
      if (stamp_[v] != epoch_ || nd < dist_[v]) {
        dist_[v] = nd;
        parent_[v] = u;
        stamp_[v] = epoch_;
        heap_push_(nd, v);
      }
    }
  }
}

void CsrDijkstra::export_row(std::span<float> dist_out,
                             std::span<NodeId> parent_out) const {
  const std::size_t n = graph_->node_count();
  for (std::size_t v = 0; v < n; ++v) {
    if (stamp_[v] == epoch_) {
      dist_out[v] = static_cast<float>(dist_[v]);
      parent_out[v] = parent_[v];
    } else {
      dist_out[v] = static_cast<float>(kUnreachable);
      parent_out[v] = kInvalidNode;
    }
  }
}

}  // namespace ace
