#include "graph/metrics.h"

#include <algorithm>
#include <cmath>

#include "graph/shortest_path.h"
#include "util/stats.h"

namespace ace {

std::vector<std::size_t> degree_sequence(const Graph& graph) {
  std::vector<std::size_t> degrees(graph.node_count());
  for (NodeId u = 0; u < graph.node_count(); ++u) degrees[u] = graph.degree(u);
  return degrees;
}

double degree_power_law_alpha(const Graph& graph, std::size_t x_min) {
  const auto degrees = degree_sequence(graph);
  return power_law_alpha_mle(degrees, x_min);
}

double local_clustering(const Graph& graph, NodeId u) {
  const auto neighbors = graph.neighbors(u);
  const std::size_t k = neighbors.size();
  if (k < 2) return 0.0;
  std::size_t links = 0;
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = i + 1; j < k; ++j)
      if (graph.has_edge(neighbors[i].node, neighbors[j].node)) ++links;
  return 2.0 * static_cast<double>(links) /
         (static_cast<double>(k) * static_cast<double>(k - 1));
}

double mean_clustering(const Graph& graph) {
  if (graph.node_count() == 0) return 0.0;
  double sum = 0.0;
  for (NodeId u = 0; u < graph.node_count(); ++u)
    sum += local_clustering(graph, u);
  return sum / static_cast<double>(graph.node_count());
}

double mean_path_length(const Graph& graph, Rng& rng, std::size_t samples) {
  const std::size_t n = graph.node_count();
  if (n < 2) return 0.0;
  std::vector<NodeId> sources;
  if (samples >= n) {
    sources.resize(n);
    for (NodeId u = 0; u < n; ++u) sources[u] = u;
  } else {
    for (const std::size_t i : rng.sample_indices(n, samples))
      sources.push_back(static_cast<NodeId>(i));
  }
  double total = 0.0;
  std::size_t pairs = 0;
  for (const NodeId s : sources) {
    const auto hops = bfs_hops(graph, s);
    for (NodeId v = 0; v < n; ++v) {
      if (v == s || hops[v] == kUnreachableHops) continue;
      total += static_cast<double>(hops[v]);
      ++pairs;
    }
  }
  return pairs ? total / static_cast<double>(pairs) : 0.0;
}

SmallWorldReport small_world_report(const Graph& graph, Rng& rng,
                                    std::size_t samples) {
  SmallWorldReport report;
  const std::size_t n = graph.node_count();
  if (n < 2) return report;
  report.clustering = mean_clustering(graph);
  report.path_length = mean_path_length(graph, rng, samples);
  const double k = graph.mean_degree();
  report.random_clustering = k / static_cast<double>(n);
  report.random_path_length =
      k > 1.0 ? std::log(static_cast<double>(n)) / std::log(k) : 0.0;
  if (report.random_clustering > 0 && report.random_path_length > 0 &&
      report.path_length > 0) {
    report.sigma = (report.clustering / report.random_clustering) /
                   (report.path_length / report.random_path_length);
  }
  return report;
}

}  // namespace ace
