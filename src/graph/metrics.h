// Graph-property metrics used to validate that generated topologies exhibit
// the small-world and power-law characteristics the paper's methodology
// requires (§4.1 cites both for physical Internet and P2P overlay graphs).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace ace {

// Degree of every node.
std::vector<std::size_t> degree_sequence(const Graph& graph);

// MLE power-law exponent of the degree distribution for degrees >= x_min
// (see util/stats.h). 0 when the fit is impossible.
double degree_power_law_alpha(const Graph& graph, std::size_t x_min = 2);

// Local clustering coefficient of node u: fraction of neighbor pairs that
// are themselves adjacent. 0 for degree < 2.
double local_clustering(const Graph& graph, NodeId u);

// Average of local clustering over all nodes (Watts-Strogatz definition).
double mean_clustering(const Graph& graph);

// Average shortest-path hop length, estimated by BFS from `samples` random
// sources (exact when samples >= node count). Unreachable pairs are
// skipped. Returns 0 for graphs with < 2 nodes.
double mean_path_length(const Graph& graph, Rng& rng, std::size_t samples = 64);

struct SmallWorldReport {
  double clustering = 0;            // mean clustering coefficient
  double path_length = 0;           // mean shortest-path hops (sampled)
  double random_clustering = 0;     // C_rand ~ mean_degree / n
  double random_path_length = 0;    // L_rand ~ ln(n) / ln(mean_degree)
  // Humphries-Gurney small-world index: (C/C_rand) / (L/L_rand); > 1 is
  // small-world-ish, >> 1 strongly so.
  double sigma = 0;
};

// Computes the small-world report against the Erdős–Rényi null model.
SmallWorldReport small_world_report(const Graph& graph, Rng& rng,
                                    std::size_t samples = 64);

}  // namespace ace
