// Undirected weighted graph with dynamic edge insertion/removal. This is the
// shared representation for both the physical topology (static after
// generation) and logical overlays (mutated continuously by churn and by the
// ACE optimizer).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/digest.h"

namespace ace {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

// Edge weights are delays/costs in abstract "delay units" (the paper's
// figures use the same abstraction; we treat 1 unit ~ 1 ms when a physical
// interpretation helps).
using Weight = double;

struct Edge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  Weight weight = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

struct Neighbor {
  NodeId node = kInvalidNode;
  Weight weight = 0;

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t node_count);

  std::size_t node_count() const noexcept { return adjacency_.size(); }
  std::size_t edge_count() const noexcept { return edge_count_; }

  // Appends an isolated node, returning its id.
  NodeId add_node();

  // Adds edge u-v with the given positive weight. Returns false (and leaves
  // the graph unchanged) when the edge already exists or u == v.
  bool add_edge(NodeId u, NodeId v, Weight weight);

  // add_edge without the duplicate-edge scan: the caller guarantees u != v
  // and that the edge is absent. For bulk construction from a deduplicated
  // edge source (e.g. an induced subgraph visiting each pair once), where
  // the O(degree) has_edge probe dominates. Misuse is caught by
  // debug_validate at the audit points.
  void add_new_edge(NodeId u, NodeId v, Weight weight);

  // Removes edge u-v. Returns false when it does not exist.
  bool remove_edge(NodeId u, NodeId v);

  // Replaces the weight of an existing edge; returns false when missing.
  bool set_weight(NodeId u, NodeId v, Weight weight);

  bool has_edge(NodeId u, NodeId v) const;
  std::optional<Weight> edge_weight(NodeId u, NodeId v) const;

  std::span<const Neighbor> neighbors(NodeId u) const;
  std::size_t degree(NodeId u) const;

  // Snapshot of all edges with u < v (each undirected edge once).
  std::vector<Edge> edges() const;

  // Sum of all edge weights (each undirected edge counted once).
  Weight total_weight() const;

  // Drops all edges incident to u (used when a peer leaves the overlay).
  // Returns the neighbors that were disconnected.
  std::vector<NodeId> isolate(NodeId u);

  // Average degree over all nodes (0 for an empty graph).
  double mean_degree() const noexcept;

  void reserve_nodes(std::size_t n) { adjacency_.reserve(n); }

  // Reverts to `n` isolated nodes, keeping the surviving nodes' adjacency
  // capacity. For rebuild-heavy hot paths (closure induced subgraphs) where
  // constructing a fresh Graph per rebuild would churn the allocator.
  void reset_nodes(std::size_t n);

  // Invariant auditor (ACE_CHECK-fatal): adjacency symmetry with matching
  // weights, no self-loops or duplicate entries, positive weights, and
  // edge_count consistency. O(V + E*d); call at audit points only.
  void debug_validate() const;

  // Structural digest: per-node neighbor sets hashed order-insensitively
  // (adjacency order is history-dependent after removals), chained in node
  // order. Two graphs digest equally iff they have the same node count and
  // edge/weight sets.
  void digest_into(Fnv1a& digest) const;

 private:
  void check_node(NodeId u) const;

  std::vector<std::vector<Neighbor>> adjacency_;
  std::size_t edge_count_ = 0;
};

}  // namespace ace
