// Immutable compressed-sparse-row (CSR) graph snapshot and the flat-array
// Dijkstra kernel that runs over it. The mutable adjacency-list Graph is
// the right structure for overlays under churn; the physical topology,
// however, is frozen after generation and queried millions of times by the
// delay oracle. A CSR snapshot packs every arc into two contiguous arrays
// (targets, weights) indexed by a per-node offset table, so a Dijkstra
// relaxation touches sequential memory instead of chasing per-node vector
// headers.
//
// Determinism: arcs are laid out in the exact adjacency order of the source
// Graph, and the kernel's relaxation arithmetic (double sums, strict-<
// improvement) matches the reference implementation in shortest_path.cpp,
// so finalized distance values are bit-identical to the adjacency-list
// version (final distances are a min over path sums and do not depend on
// heap pop order among ties; see DESIGN.md §9).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace ace {

class CsrGraph {
 public:
  CsrGraph() = default;
  // Snapshot of `graph` at construction time; later mutations of `graph`
  // are not reflected. Arc order per node equals graph.neighbors(u) order.
  explicit CsrGraph(const Graph& graph);

  std::size_t node_count() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  // Directed arc count (2x the undirected edge count).
  std::size_t arc_count() const noexcept { return targets_.size(); }

  std::size_t degree(NodeId u) const noexcept {
    return offsets_[u + 1] - offsets_[u];
  }
  std::span<const NodeId> targets(NodeId u) const noexcept {
    return {targets_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
  }
  std::span<const Weight> weights(NodeId u) const noexcept {
    return {weights_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
  }

  // Raw arrays for kernels that index arcs directly.
  std::span<const std::uint32_t> offsets() const noexcept { return offsets_; }
  std::span<const NodeId> arc_targets() const noexcept { return targets_; }
  std::span<const Weight> arc_weights() const noexcept { return weights_; }

 private:
  // offsets_[u]..offsets_[u+1] delimit u's arcs; size node_count()+1.
  std::vector<std::uint32_t> offsets_;
  std::vector<NodeId> targets_;
  std::vector<Weight> weights_;
};

// Reusable single-source Dijkstra solver over a CSR snapshot: flat 4-ary
// heap (better cache behavior than a binary heap: shallower tree, children
// in one cache line) with lazy deletion, and epoch-stamped visit marks so
// back-to-back runs skip the O(V) per-run reset. One solver instance serves
// one thread; the CSR snapshot it points at may be shared read-only.
class CsrDijkstra {
 public:
  // `graph` must outlive the solver.
  explicit CsrDijkstra(const CsrGraph& graph);

  // Full single-source run. Results valid until the next run.
  void run(NodeId source) { run_to_targets(source, {}); }
  // Stops once every node in `targets` is finalized (same early-stop
  // semantics as dijkstra_to_targets). Empty targets = full run.
  void run_to_targets(NodeId source, std::span<const NodeId> targets);

  // Distance of the last run (kUnreachable when not reached).
  Weight dist(NodeId v) const noexcept {
    return stamp_[v] == epoch_ ? dist_[v] : unreachable_();
  }
  // Predecessor on the discovered shortest path (kInvalidNode when none).
  NodeId parent(NodeId v) const noexcept {
    return stamp_[v] == epoch_ ? parent_[v] : kInvalidNode;
  }

  // Bulk export of the last run into compact row arrays (the delay oracle's
  // cache format). Spans must have length node_count(); unreached nodes get
  // +inf / kInvalidNode.
  void export_row(std::span<float> dist_out,
                  std::span<NodeId> parent_out) const;

 private:
  static Weight unreachable_() noexcept;
  void begin_epoch_();

  struct HeapSlot {
    Weight key;
    NodeId node;
  };
  void heap_push_(Weight key, NodeId node);
  HeapSlot heap_pop_();

  const CsrGraph* graph_;
  std::vector<Weight> dist_;
  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> stamp_;       // dist_/parent_ valid this epoch
  std::vector<std::uint32_t> done_stamp_;  // node finalized this epoch
  std::vector<std::uint32_t> target_stamp_;
  std::vector<HeapSlot> heap_;
  std::uint32_t epoch_ = 0;
};

}  // namespace ace
