#include "graph/shortest_path.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "graph/csr.h"

namespace ace {

namespace {

struct HeapItem {
  Weight dist;
  NodeId node;
  friend bool operator>(const HeapItem& a, const HeapItem& b) {
    return a.dist > b.dist;
  }
};

using MinHeap =
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>>;

ShortestPathResult dijkstra_impl(const Graph& graph, NodeId source,
                                 std::span<const NodeId> targets) {
  const std::size_t n = graph.node_count();
  if (source >= n) throw std::out_of_range{"dijkstra: source out of range"};
  ShortestPathResult result;
  result.dist.assign(n, kUnreachable);
  result.parent.assign(n, kInvalidNode);
  std::vector<bool> done(n, false);

  std::size_t targets_left = targets.size();
  std::vector<bool> is_target;
  if (!targets.empty()) {
    is_target.assign(n, false);
    for (const NodeId t : targets) {
      if (t >= n) throw std::out_of_range{"dijkstra: target out of range"};
      if (!is_target[t]) {
        is_target[t] = true;
      } else {
        --targets_left;  // duplicate target
      }
    }
  }

  MinHeap heap;
  result.dist[source] = 0;
  heap.push({0, source});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (done[u]) continue;
    done[u] = true;
    if (!targets.empty() && is_target[u] && --targets_left == 0) break;
    for (const auto& [v, w] : graph.neighbors(u)) {
      const Weight nd = d + w;
      if (nd < result.dist[v]) {
        result.dist[v] = nd;
        result.parent[v] = u;
        heap.push({nd, v});
      }
    }
  }
  return result;
}

// Snapshot-and-solve on the CSR kernel. The snapshot is O(V+E) — the same
// order as the solve itself — and the flat arrays more than pay for it on
// the graphs the oracle sees (long-lived topologies use a persistent
// CsrGraph + CsrDijkstra instead; see net/physical_network.h).
ShortestPathResult csr_dijkstra(const Graph& graph, NodeId source,
                                std::span<const NodeId> targets) {
  const CsrGraph csr{graph};
  CsrDijkstra solver{csr};
  solver.run_to_targets(source, targets);
  const std::size_t n = graph.node_count();
  ShortestPathResult result;
  result.dist.resize(n);
  result.parent.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    result.dist[v] = solver.dist(v);
    result.parent[v] = solver.parent(v);
  }
  return result;
}

}  // namespace

ShortestPathResult dijkstra(const Graph& graph, NodeId source) {
  return csr_dijkstra(graph, source, {});
}

ShortestPathResult dijkstra_to_targets(const Graph& graph, NodeId source,
                                       std::span<const NodeId> targets) {
  return csr_dijkstra(graph, source, targets);
}

ShortestPathResult dijkstra_reference(const Graph& graph, NodeId source,
                                      std::span<const NodeId> targets) {
  return dijkstra_impl(graph, source, targets);
}

std::vector<NodeId> extract_path(const ShortestPathResult& result,
                                 NodeId target) {
  if (target >= result.dist.size())
    throw std::out_of_range{"extract_path: target out of range"};
  if (result.dist[target] == kUnreachable) return {};
  std::vector<NodeId> path;
  for (NodeId v = target; v != kInvalidNode; v = result.parent[v])
    path.push_back(v);
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<std::uint32_t> bfs_hops(const Graph& graph, NodeId source) {
  const std::size_t n = graph.node_count();
  if (source >= n) throw std::out_of_range{"bfs_hops: source out of range"};
  std::vector<std::uint32_t> hops(n, kUnreachableHops);
  std::queue<NodeId> queue;
  hops[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    for (const auto& [v, w] : graph.neighbors(u)) {
      (void)w;
      if (hops[v] == kUnreachableHops) {
        hops[v] = hops[u] + 1;
        queue.push(v);
      }
    }
  }
  return hops;
}

std::vector<NodeId> nodes_within_hops(const Graph& graph, NodeId source,
                                      std::uint32_t max_hops) {
  const std::size_t n = graph.node_count();
  if (source >= n)
    throw std::out_of_range{"nodes_within_hops: source out of range"};
  std::vector<std::uint32_t> hops(n, kUnreachableHops);
  std::vector<NodeId> order;
  std::queue<NodeId> queue;
  hops[source] = 0;
  queue.push(source);
  order.push_back(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    if (hops[u] == max_hops) continue;
    for (const auto& [v, w] : graph.neighbors(u)) {
      (void)w;
      if (hops[v] == kUnreachableHops) {
        hops[v] = hops[u] + 1;
        queue.push(v);
        order.push_back(v);
      }
    }
  }
  return order;
}

// ace-hot
MstResult prim_mst(const Graph& graph, NodeId root) {
  const std::size_t n = graph.node_count();
  if (root >= n) throw std::out_of_range{"prim_mst: root out of range"};
  MstResult result;
  result.edges.reserve(n - 1);  // a spanning tree of the component
  std::vector<std::uint8_t> in_tree(n, 0);
  std::vector<Weight> best(n, kUnreachable);
  std::vector<NodeId> best_from(n, kInvalidNode);

  // Manual heap over a reserved vector. std::priority_queue is specified
  // as push_heap/pop_heap over its container, so with the same comparator
  // and push sequence the pop order — including equal-weight ties — is
  // identical to the previous implementation.
  std::vector<HeapItem> heap;
  heap.reserve(n);
  best[root] = 0;
  heap.push_back({0, root});
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
    const auto [d, u] = heap.back();
    heap.pop_back();
    if (in_tree[u]) continue;
    in_tree[u] = 1;
    if (best_from[u] != kInvalidNode) {
      result.edges.push_back({best_from[u], u, best[u]});
      result.total_weight += best[u];
    }
    for (const auto& [v, w] : graph.neighbors(u)) {
      if (!in_tree[v] && w < best[v]) {
        best[v] = w;
        best_from[v] = u;
        heap.push_back({w, v});
        std::push_heap(heap.begin(), heap.end(), std::greater<>{});
      }
    }
  }
  return result;
}

bool is_connected(const Graph& graph) {
  if (graph.node_count() == 0) return true;
  const auto hops = bfs_hops(graph, 0);
  return std::none_of(hops.begin(), hops.end(), [](std::uint32_t h) {
    return h == kUnreachableHops;
  });
}

std::vector<std::uint32_t> connected_components(const Graph& graph) {
  const std::size_t n = graph.node_count();
  std::vector<std::uint32_t> label(n, kUnreachableHops);
  std::uint32_t next_label = 0;
  std::queue<NodeId> queue;
  for (NodeId start = 0; start < n; ++start) {
    if (label[start] != kUnreachableHops) continue;
    label[start] = next_label;
    queue.push(start);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop();
      for (const auto& [v, w] : graph.neighbors(u)) {
        (void)w;
        if (label[v] == kUnreachableHops) {
          label[v] = next_label;
          queue.push(v);
        }
      }
    }
    ++next_label;
  }
  return label;
}

}  // namespace ace
