#include "net/physical_network.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "graph/shortest_path.h"
#include "util/logging.h"

namespace ace {

namespace {

std::size_t resolve_byte_budget(std::size_t requested, std::size_t hosts) {
  if (requested != PhysicalNetwork::kAutoCacheBytes) return requested;
  // Auto policy: small topologies cache everything (the whole matrix is
  // cheap); large ones get a hard byte cap so the row cache cannot grow
  // unboundedly with the query working set.
  return hosts <= PhysicalNetwork::kAutoUncappedHosts
             ? 0
             : PhysicalNetwork::kAutoByteBudget;
}

}  // namespace

PhysicalNetwork::PhysicalNetwork(Graph topology, std::size_t max_cached_rows,
                                 std::size_t max_cache_bytes)
    : topology_{std::move(topology)},
      csr_{topology_},
      max_cached_rows_{max_cached_rows},
      max_cache_bytes_{
          resolve_byte_budget(max_cache_bytes, topology_.node_count())},
      solver_{csr_} {
  slots_.resize(topology_.node_count());
  stats_.max_rows = max_cached_rows_;
  stats_.max_bytes = max_cache_bytes_;
}

void PhysicalNetwork::lru_unlink_(std::uint32_t slot) const {
  RowSlot& s = slots_[slot];
  if (s.lru_prev != kNoSlot)
    slots_[s.lru_prev].lru_next = s.lru_next;
  else
    lru_head_ = s.lru_next;
  if (s.lru_next != kNoSlot)
    slots_[s.lru_next].lru_prev = s.lru_prev;
  else
    lru_tail_ = s.lru_prev;
  s.lru_prev = kNoSlot;
  s.lru_next = kNoSlot;
}

void PhysicalNetwork::lru_push_front_(std::uint32_t slot) const {
  RowSlot& s = slots_[slot];
  s.lru_prev = kNoSlot;
  s.lru_next = lru_head_;
  if (lru_head_ != kNoSlot) slots_[lru_head_].lru_prev = slot;
  lru_head_ = slot;
  if (lru_tail_ == kNoSlot) lru_tail_ = slot;
}

void PhysicalNetwork::evict_to_budget_() const {
  const std::size_t bytes_per_row = row_bytes_();
  while (lru_tail_ != kNoSlot &&
         ((max_cached_rows_ != 0 && cached_rows_ > max_cached_rows_) ||
          (max_cache_bytes_ != 0 &&
           cached_rows_ * bytes_per_row > max_cache_bytes_))) {
    if (cached_rows_ == 1) break;  // always keep the row just computed
    const std::size_t rows_before_evict = cached_rows_;
    const std::uint32_t victim = lru_tail_;
    lru_unlink_(victim);
    RowSlot& s = slots_[victim];
    // Release the payload for real (clear() would keep the capacity and
    // defeat the byte budget).
    s.dist = {};
    s.parent = {};
    s.cached = false;
    --cached_rows_;
    ++stats_.evictions;
    // Warn once per ownership epoch (detach_owner starts a new one). The
    // compare-exchange claims the epoch, so concurrent rebuild workers
    // evicting at the same time log exactly once.
    const std::uint64_t epoch =
        rebind_epoch_.load(std::memory_order_relaxed);
    std::uint64_t warned = warned_epoch_.load(std::memory_order_relaxed);
    if (warned != epoch &&
        warned_epoch_.compare_exchange_strong(warned, epoch,
                                              std::memory_order_relaxed)) {
      ACE_LOG(kWarn) << "PhysicalNetwork: distance-row cache budget reached "
                     << "(rows=" << rows_before_evict
                     << ", max_rows=" << max_cached_rows_
                     << ", max_bytes=" << max_cache_bytes_
                     << "); evicting least-recently-used rows — results are "
                     << "unchanged, evicted rows recompute on demand";
    }
  }
}

const PhysicalNetwork::RowSlot& PhysicalNetwork::row_for(
    HostId source) const {
  if (source >= topology_.node_count())
    throw std::out_of_range{"PhysicalNetwork: host out of range"};
  const std::uint32_t slot = source.value();
  RowSlot& s = slots_[slot];
  if (s.cached) {
    ++stats_.hits;
    // LRU touch: move to the front of the recency list.
    if (lru_head_ != slot) {
      lru_unlink_(slot);
      lru_push_front_(slot);
    }
    return s;
  }

  ++stats_.misses;
  solver_.run(source.value());
  s.dist.resize(topology_.node_count());
  s.parent.resize(topology_.node_count());
  solver_.export_row(s.dist, s.parent);
  s.cached = true;
  ++cached_rows_;
  lru_push_front_(slot);
  evict_to_budget_();
  return s;
}

std::size_t PhysicalNetwork::rows_computed() const noexcept {
  MutexLock lock{mutex_};
  return stats_.misses;
}

std::size_t PhysicalNetwork::rows_cached() const noexcept {
  MutexLock lock{mutex_};
  return cached_rows_;
}

RowCacheStats PhysicalNetwork::row_cache_stats() const noexcept {
  MutexLock lock{mutex_};
  RowCacheStats stats = stats_;
  stats.rows = cached_rows_;
  stats.bytes = cached_rows_ * row_bytes_();
  return stats;
}

Weight PhysicalNetwork::delay(HostId a, HostId b) const {
  MutexLock lock{mutex_};
  if (b >= topology_.node_count())
    throw std::out_of_range{"PhysicalNetwork: host out of range"};
  if (a == b) return 0;
  // Use whichever endpoint already has a cached row to avoid duplicates
  // (delays are symmetric, so either row answers the query).
  if (a >= topology_.node_count())
    throw std::out_of_range{"PhysicalNetwork: host out of range"};
  if (!slots_[a.value()].cached && slots_[b.value()].cached) std::swap(a, b);
  return static_cast<Weight>(row_for(a).dist[b.value()]);
}

std::size_t PhysicalNetwork::path_hops(HostId a, HostId b) const {
  const std::vector<HostId> nodes = path(a, b);
  return nodes.empty() ? 0 : nodes.size() - 1;
}

std::vector<HostId> PhysicalNetwork::path(HostId a, HostId b) const {
  MutexLock lock{mutex_};
  if (b >= topology_.node_count())
    throw std::out_of_range{"PhysicalNetwork: host out of range"};
  if (a == b) return {a};
  const RowSlot& row = row_for(a);
  if (row.dist[b.value()] == static_cast<float>(kUnreachable) ||
      (row.parent[b.value()] == kInvalidNode && b != a))
    return {};
  std::vector<HostId> nodes;
  for (NodeId v = b.value(); v != kInvalidNode; v = row.parent[v])
    nodes.push_back(HostId{v});  // ace-id: boundary(Dijkstra parent chain is raw kernel node ids over the host topology)
  std::reverse(nodes.begin(), nodes.end());
  return nodes;
}

}  // namespace ace
