#include "net/physical_network.h"

#include <algorithm>
#include <stdexcept>

#include "graph/shortest_path.h"

namespace ace {

PhysicalNetwork::PhysicalNetwork(Graph topology, std::size_t max_cached_rows)
    : topology_{std::move(topology)}, max_cached_rows_{max_cached_rows} {}

const PhysicalNetwork::Row& PhysicalNetwork::row_for(HostId source) const {
  if (source >= topology_.node_count())
    throw std::out_of_range{"PhysicalNetwork: host out of range"};
  if (const auto it = cache_.find(source); it != cache_.end()) return it->second;

  auto result = dijkstra(topology_, source);
  Row row;
  row.dist.reserve(result.dist.size());
  for (const Weight d : result.dist) row.dist.push_back(static_cast<float>(d));
  row.parent = std::move(result.parent);
  ++rows_computed_;

  if (max_cached_rows_ != 0 && cache_.size() >= max_cached_rows_) {
    // FIFO eviction: oldest row leaves.
    const HostId victim = eviction_order_.front();
    eviction_order_.pop_front();
    cache_.erase(victim);
  }
  eviction_order_.push_back(source);
  return cache_.emplace(source, std::move(row)).first->second;
}

Weight PhysicalNetwork::delay(HostId a, HostId b) const {
  if (b >= topology_.node_count())
    throw std::out_of_range{"PhysicalNetwork: host out of range"};
  if (a == b) return 0;
  // Use whichever endpoint already has a cached row to avoid duplicates.
  if (!cache_.contains(a) && cache_.contains(b)) std::swap(a, b);
  return static_cast<Weight>(row_for(a).dist[b]);
}

std::size_t PhysicalNetwork::path_hops(HostId a, HostId b) const {
  return path(a, b).empty() ? 0 : path(a, b).size() - 1;
}

std::vector<HostId> PhysicalNetwork::path(HostId a, HostId b) const {
  if (b >= topology_.node_count())
    throw std::out_of_range{"PhysicalNetwork: host out of range"};
  if (a == b) return {a};
  const Row& row = row_for(a);
  if (row.dist[b] == static_cast<float>(kUnreachable) ||
      (row.parent[b] == kInvalidNode && b != a))
    return {};
  std::vector<HostId> nodes;
  for (NodeId v = b; v != kInvalidNode; v = row.parent[v]) nodes.push_back(v);
  std::reverse(nodes.begin(), nodes.end());
  return nodes;
}

}  // namespace ace
