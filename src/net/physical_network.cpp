#include "net/physical_network.h"

#include <algorithm>
#include <stdexcept>

#include "graph/shortest_path.h"
#include "util/logging.h"

namespace ace {

namespace {

std::size_t resolve_byte_budget(std::size_t requested, std::size_t hosts) {
  if (requested != PhysicalNetwork::kAutoCacheBytes) return requested;
  // Auto policy: small topologies cache everything (the whole matrix is
  // cheap); large ones get a hard byte cap so the row cache cannot grow
  // unboundedly with the query working set.
  return hosts <= PhysicalNetwork::kAutoUncappedHosts
             ? 0
             : PhysicalNetwork::kAutoByteBudget;
}

}  // namespace

PhysicalNetwork::PhysicalNetwork(Graph topology, std::size_t max_cached_rows,
                                 std::size_t max_cache_bytes)
    : topology_{std::move(topology)},
      csr_{topology_},
      max_cached_rows_{max_cached_rows},
      max_cache_bytes_{
          resolve_byte_budget(max_cache_bytes, topology_.node_count())},
      solver_{csr_} {
  stats_.max_rows = max_cached_rows_;
  stats_.max_bytes = max_cache_bytes_;
}

void PhysicalNetwork::evict_to_budget_() const {
  const std::size_t bytes_per_row = row_bytes_();
  while (!lru_.empty() &&
         ((max_cached_rows_ != 0 && cache_.size() > max_cached_rows_) ||
          (max_cache_bytes_ != 0 &&
           cache_.size() * bytes_per_row > max_cache_bytes_))) {
    if (cache_.size() == 1) break;  // always keep the row just computed
    const std::size_t rows_before_evict = cache_.size();
    const HostId victim = lru_.back();
    lru_.pop_back();
    cache_.erase(victim);
    ++stats_.evictions;
    if (!warned_eviction_) {
      warned_eviction_ = true;
      ACE_LOG(kWarn) << "PhysicalNetwork: distance-row cache budget reached "
                     << "(rows=" << rows_before_evict
                     << ", max_rows=" << max_cached_rows_
                     << ", max_bytes=" << max_cache_bytes_
                     << "); evicting least-recently-used rows — results are "
                     << "unchanged, evicted rows recompute on demand";
    }
  }
}

const PhysicalNetwork::Row& PhysicalNetwork::row_for(HostId source) const {
  if (source >= topology_.node_count())
    throw std::out_of_range{"PhysicalNetwork: host out of range"};
  if (const auto it = cache_.find(source); it != cache_.end()) {
    ++stats_.hits;
    // LRU touch: move to the front of the recency list.
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.row;
  }

  ++stats_.misses;
  solver_.run(source.value());
  Row row;
  row.dist.resize(topology_.node_count());
  row.parent.resize(topology_.node_count());
  solver_.export_row(row.dist, row.parent);

  lru_.push_front(source);
  auto& entry = cache_[source];
  entry.row = std::move(row);
  entry.lru_pos = lru_.begin();
  evict_to_budget_();
  return cache_.find(source)->second.row;
}

RowCacheStats PhysicalNetwork::row_cache_stats() const noexcept {
  owner_.assert_held();
  RowCacheStats stats = stats_;
  stats.rows = cache_.size();
  stats.bytes = cache_.size() * row_bytes_();
  return stats;
}

Weight PhysicalNetwork::delay(HostId a, HostId b) const {
  owner_.assert_held();
  if (b >= topology_.node_count())
    throw std::out_of_range{"PhysicalNetwork: host out of range"};
  if (a == b) return 0;
  // Use whichever endpoint already has a cached row to avoid duplicates
  // (delays are symmetric, so either row answers the query).
  if (!cache_.contains(a) && cache_.contains(b)) std::swap(a, b);
  return static_cast<Weight>(row_for(a).dist[b.value()]);
}

std::size_t PhysicalNetwork::path_hops(HostId a, HostId b) const {
  const std::vector<HostId> nodes = path(a, b);
  return nodes.empty() ? 0 : nodes.size() - 1;
}

std::vector<HostId> PhysicalNetwork::path(HostId a, HostId b) const {
  owner_.assert_held();
  if (b >= topology_.node_count())
    throw std::out_of_range{"PhysicalNetwork: host out of range"};
  if (a == b) return {a};
  const Row& row = row_for(a);
  if (row.dist[b.value()] == static_cast<float>(kUnreachable) ||
      (row.parent[b.value()] == kInvalidNode && b != a))
    return {};
  std::vector<HostId> nodes;
  for (NodeId v = b.value(); v != kInvalidNode; v = row.parent[v])
    nodes.push_back(HostId{v});  // ace-id: boundary(Dijkstra parent chain is raw kernel node ids over the host topology)
  std::reverse(nodes.begin(), nodes.end());
  return nodes;
}

}  // namespace ace
