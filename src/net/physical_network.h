// Physical-layer substrate: wraps the generated Internet topology and
// answers "what does it cost to send one message between hosts A and B?" —
// the delay of the physical shortest path. This is the measurement that ACE
// peers probe in phase 1 and the unit in which all traffic costs are
// accounted (a logical-hop transmission consumes the physical path under
// it; see DESIGN.md §3).
//
// The topology is frozen after generation, so the constructor snapshots it
// into an immutable CSR layout (graph/csr.h) and all Dijkstra rows run on
// the flat-array kernel. Rows of the all-pairs distance matrix are computed
// lazily and cached as compact float/NodeId arrays under a least-recently-
// used policy bounded both by row count and by a byte budget, because only
// hosts that carry peers are ever queried (a few thousand rows out of a
// 20k-node topology). The cache is structure-of-arrays: one HostId-indexed
// slot table (payload + intrusive LRU links + cached flag), so lookup,
// touch, and eviction are flat array operations with no hash walk. Cached
// rows are value-identical to recomputation, so the cache policy affects
// wall-clock time only, never results.
//
// Thread-safe: the row cache, solver, and stats are internally synchronized
// by a Mutex (util/sync.h, ACE_GUARDED_BY-annotated), because intra-trial
// rebuild batches (DESIGN.md §15) run concurrent closure builds whose cost
// estimates all funnel into delay(). Determinism survives sharing: a row is
// a pure function of the frozen topology, so whichever thread computes it
// (and whichever endpoint's row answers a symmetric query) the returned
// values are identical — only the hit/miss/eviction *counters* are
// schedule-dependent, and those feed perf records (BENCH_*.json), never
// digests or CSVs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "graph/graph.h"
#include "util/strong_id.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace ace {

// HostId (util/strong_id.h) is its own domain: a peer id no longer works as
// a host id by accident — the overlay converts explicitly at the peer→host
// attachment point (OverlayNetwork::host_of).

// Snapshot of the delay oracle's row-cache behavior (monotonic counters
// since construction plus the current occupancy and configured bounds).
struct RowCacheStats {
  std::size_t hits = 0;        // queries served from a cached row
  std::size_t misses = 0;      // rows computed (== rows_computed())
  std::size_t evictions = 0;   // rows dropped to stay within budget
  std::size_t rows = 0;        // rows currently cached
  std::size_t bytes = 0;       // bytes currently cached (row payloads)
  std::size_t max_rows = 0;    // configured row bound (0 = unlimited)
  std::size_t max_bytes = 0;   // configured byte budget (0 = unlimited)
};

class PhysicalNetwork {
 public:
  // Sentinel for `max_cache_bytes`: pick the budget from the graph size —
  // unlimited for small topologies (every row fits comfortably), capped for
  // large ones where an unbounded cache would grow without limit.
  static constexpr std::size_t kAutoCacheBytes = static_cast<std::size_t>(-1);
  // Auto policy knobs: graphs up to kAutoUncappedHosts hosts get an
  // unlimited byte budget; larger ones are capped at kAutoByteBudget.
  static constexpr std::size_t kAutoUncappedHosts = 4096;
  static constexpr std::size_t kAutoByteBudget = 256ull << 20;  // 256 MiB

  // `max_cached_rows` bounds the row count (0 = unlimited); each cached row
  // is one float + one NodeId per physical node. `max_cache_bytes` bounds
  // the total row payload (0 = unlimited, kAutoCacheBytes = auto policy).
  explicit PhysicalNetwork(Graph topology, std::size_t max_cached_rows = 8192,
                           std::size_t max_cache_bytes = kAutoCacheBytes);

  const Graph& topology() const noexcept { return topology_; }
  const CsrGraph& csr() const noexcept { return csr_; }
  std::size_t host_count() const noexcept { return topology_.node_count(); }

  // Shortest-path delay between two hosts. Throws std::out_of_range for bad
  // ids; returns kUnreachable for disconnected pairs (generators produce
  // connected graphs, so this indicates a test-constructed topology).
  Weight delay(HostId a, HostId b) const;

  // Hop count of the shortest-delay path (number of physical links the
  // message crosses); 0 for a == b.
  std::size_t path_hops(HostId a, HostId b) const;

  // Node sequence of the shortest-delay path a..b (empty if unreachable).
  std::vector<HostId> path(HostId a, HostId b) const;

  // Round-trip probe cost as a peer would measure it (2x one-way delay) —
  // what ACE phase 1 records in neighbor cost tables.
  Weight probe_rtt(HostId a, HostId b) const { return 2 * delay(a, b); }

  // Diagnostics: how many Dijkstra row computations have run / are cached.
  std::size_t rows_computed() const noexcept;
  std::size_t rows_cached() const noexcept;
  RowCacheStats row_cache_stats() const noexcept;

  // Ownership-handoff marker (build here, query over there). The cache is
  // internally synchronized, so this is not needed for safety; it starts a
  // new *ownership epoch* for the first-eviction budget warning — the next
  // owner gets its own once-per-epoch warning instead of inheriting a
  // consumed process-lifetime flag. The epoch counters are atomics so
  // concurrent rebuild workers can neither double-log nor race a rebind.
  void detach_owner() const noexcept {
    rebind_epoch_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  // Row payload plus intrusive LRU links, one slot per host (SoA layout:
  // the slot table is flat and HostId-indexed, so lookup is one array read
  // and eviction follows prev/next links — no hash map, no node list).
  struct RowSlot {
    std::vector<float> dist;
    std::vector<NodeId> parent;
    std::uint32_t lru_prev = kNoSlot;
    std::uint32_t lru_next = kNoSlot;
    bool cached = false;
  };
  static constexpr std::uint32_t kNoSlot = static_cast<std::uint32_t>(-1);

  const RowSlot& row_for(HostId source) const ACE_REQUIRES(mutex_);
  std::size_t row_bytes_() const noexcept {
    return host_count() * (sizeof(float) + sizeof(NodeId));
  }
  void evict_to_budget_() const ACE_REQUIRES(mutex_);
  void lru_unlink_(std::uint32_t slot) const ACE_REQUIRES(mutex_);
  void lru_push_front_(std::uint32_t slot) const ACE_REQUIRES(mutex_);

  Graph topology_;
  CsrGraph csr_;
  std::size_t max_cached_rows_;
  std::size_t max_cache_bytes_;
  // Guards the whole mutable cache block below; public queries lock it,
  // private helpers require it. Mutable: cache and solver are
  // implementation details of a logically-const distance query.
  mutable Mutex mutex_;
  mutable std::vector<RowSlot> slots_ ACE_GUARDED_BY(mutex_);
  mutable std::uint32_t lru_head_ ACE_GUARDED_BY(mutex_) = kNoSlot;
  mutable std::uint32_t lru_tail_ ACE_GUARDED_BY(mutex_) = kNoSlot;
  mutable std::size_t cached_rows_ ACE_GUARDED_BY(mutex_) = 0;
  mutable CsrDijkstra solver_ ACE_GUARDED_BY(mutex_);
  mutable RowCacheStats stats_ ACE_GUARDED_BY(mutex_);
  // Eviction-warning epochs (see detach_owner): the warning fires once per
  // ownership epoch, claimed by compare-exchange so concurrent evictors
  // log exactly once.
  mutable std::atomic<std::uint64_t> rebind_epoch_{1};
  mutable std::atomic<std::uint64_t> warned_epoch_{0};
};

}  // namespace ace
