// Physical-layer substrate: wraps the generated Internet topology and
// answers "what does it cost to send one message between hosts A and B?" —
// the delay of the physical shortest path. This is the measurement that ACE
// peers probe in phase 1 and the unit in which all traffic costs are
// accounted (a logical-hop transmission consumes the physical path under
// it; see DESIGN.md §3).
//
// The topology is frozen after generation, so the constructor snapshots it
// into an immutable CSR layout (graph/csr.h) and all Dijkstra rows run on
// the flat-array kernel. Rows of the all-pairs distance matrix are computed
// lazily and cached as compact float/NodeId arrays under a least-recently-
// used policy bounded both by row count and by a byte budget, because only
// hosts that carry peers are ever queried (a few thousand rows out of a
// 20k-node topology). Cached rows are value-identical to recomputation, so
// the cache policy affects wall-clock time only, never results.
//
// Not thread-safe: one PhysicalNetwork serves one trial/thread (the trial
// runner gives every parallel trial its own Scenario, hence its own oracle).
// That contract is enforced statically: the mutable row-cache state is
// ACE_GUARDED_BY the ThreadOwnership capability (util/sync.h), so the clang
// thread-safety build rejects any new code path that touches the cache
// without asserting single-thread ownership, and audit builds verify the
// owning thread at runtime.
#pragma once

#include <cstddef>
#include <list>
#include <unordered_map>
#include <vector>

#include "graph/csr.h"
#include "graph/graph.h"
#include "util/strong_id.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace ace {

// HostId (util/strong_id.h) is its own domain: a peer id no longer works as
// a host id by accident — the overlay converts explicitly at the peer→host
// attachment point (PeerRecord::host).

// Snapshot of the delay oracle's row-cache behavior (monotonic counters
// since construction plus the current occupancy and configured bounds).
struct RowCacheStats {
  std::size_t hits = 0;        // queries served from a cached row
  std::size_t misses = 0;      // rows computed (== rows_computed())
  std::size_t evictions = 0;   // rows dropped to stay within budget
  std::size_t rows = 0;        // rows currently cached
  std::size_t bytes = 0;       // bytes currently cached (row payloads)
  std::size_t max_rows = 0;    // configured row bound (0 = unlimited)
  std::size_t max_bytes = 0;   // configured byte budget (0 = unlimited)
};

class PhysicalNetwork {
 public:
  // Sentinel for `max_cache_bytes`: pick the budget from the graph size —
  // unlimited for small topologies (every row fits comfortably), capped for
  // large ones where an unbounded cache would grow without limit.
  static constexpr std::size_t kAutoCacheBytes = static_cast<std::size_t>(-1);
  // Auto policy knobs: graphs up to kAutoUncappedHosts hosts get an
  // unlimited byte budget; larger ones are capped at kAutoByteBudget.
  static constexpr std::size_t kAutoUncappedHosts = 4096;
  static constexpr std::size_t kAutoByteBudget = 256ull << 20;  // 256 MiB

  // `max_cached_rows` bounds the row count (0 = unlimited); each cached row
  // is one float + one NodeId per physical node. `max_cache_bytes` bounds
  // the total row payload (0 = unlimited, kAutoCacheBytes = auto policy).
  explicit PhysicalNetwork(Graph topology, std::size_t max_cached_rows = 8192,
                           std::size_t max_cache_bytes = kAutoCacheBytes);

  const Graph& topology() const noexcept { return topology_; }
  const CsrGraph& csr() const noexcept { return csr_; }
  std::size_t host_count() const noexcept { return topology_.node_count(); }

  // Shortest-path delay between two hosts. Throws std::out_of_range for bad
  // ids; returns kUnreachable for disconnected pairs (generators produce
  // connected graphs, so this indicates a test-constructed topology).
  Weight delay(HostId a, HostId b) const;

  // Hop count of the shortest-delay path (number of physical links the
  // message crosses); 0 for a == b.
  std::size_t path_hops(HostId a, HostId b) const;

  // Node sequence of the shortest-delay path a..b (empty if unreachable).
  std::vector<HostId> path(HostId a, HostId b) const;

  // Round-trip probe cost as a peer would measure it (2x one-way delay) —
  // what ACE phase 1 records in neighbor cost tables.
  Weight probe_rtt(HostId a, HostId b) const { return 2 * delay(a, b); }

  // Diagnostics: how many Dijkstra row computations have run / are cached.
  std::size_t rows_computed() const noexcept {
    owner_.assert_held();
    return stats_.misses;
  }
  std::size_t rows_cached() const noexcept {
    owner_.assert_held();
    return cache_.size();
  }
  RowCacheStats row_cache_stats() const noexcept;

  // Sequential cross-thread handoff (build here, query over there):
  // releases the audit-build thread binding; the next query rebinds.
  void detach_owner() const noexcept { owner_.detach(); }

 private:
  struct Row {
    std::vector<float> dist;
    std::vector<NodeId> parent;
  };
  struct CacheEntry {
    Row row;
    std::list<HostId>::iterator lru_pos;
  };

  const Row& row_for(HostId source) const ACE_REQUIRES(owner_);
  std::size_t row_bytes_() const noexcept {
    return host_count() * (sizeof(float) + sizeof(NodeId));
  }
  void evict_to_budget_() const ACE_REQUIRES(owner_);

  Graph topology_;
  CsrGraph csr_;
  std::size_t max_cached_rows_;
  std::size_t max_cache_bytes_;
  // One-thread-at-a-time capability guarding the whole mutable cache block
  // below; public queries assert it, private helpers require it.
  ThreadOwnership owner_;
  // Mutable: the cache and solver are implementation details of a
  // logically-const distance query.
  // ace-lint: allow(unordered-container): keyed lookup only — eviction
  // follows lru_ (least-recently-used list); the map is never iterated, and
  // cached rows are value-identical to recomputation.
  mutable std::unordered_map<HostId, CacheEntry> cache_ ACE_GUARDED_BY(owner_);
  // front = most recently used
  mutable std::list<HostId> lru_ ACE_GUARDED_BY(owner_);
  mutable CsrDijkstra solver_ ACE_GUARDED_BY(owner_);
  mutable RowCacheStats stats_ ACE_GUARDED_BY(owner_);
  mutable bool warned_eviction_ ACE_GUARDED_BY(owner_) = false;
};

}  // namespace ace
