// Physical-layer substrate: wraps the generated Internet topology and
// answers "what does it cost to send one message between hosts A and B?" —
// the delay of the physical shortest path. This is the measurement that ACE
// peers probe in phase 1 and the unit in which all traffic costs are
// accounted (a logical-hop transmission consumes the physical path under
// it; see DESIGN.md §3).
//
// Rows of the all-pairs distance matrix are computed lazily with Dijkstra
// and cached with FIFO eviction, because only hosts that carry peers are
// ever queried (a few thousand rows out of a 20k-node topology).
#pragma once

#include <cstddef>
#include <deque>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace ace {

using HostId = NodeId;

class PhysicalNetwork {
 public:
  // `max_cached_rows` bounds memory: each cached row is one float per
  // physical node. 0 means unlimited.
  explicit PhysicalNetwork(Graph topology, std::size_t max_cached_rows = 8192);

  const Graph& topology() const noexcept { return topology_; }
  std::size_t host_count() const noexcept { return topology_.node_count(); }

  // Shortest-path delay between two hosts. Throws std::out_of_range for bad
  // ids; returns kUnreachable for disconnected pairs (generators produce
  // connected graphs, so this indicates a test-constructed topology).
  Weight delay(HostId a, HostId b) const;

  // Hop count of the shortest-delay path (number of physical links the
  // message crosses); 0 for a == b.
  std::size_t path_hops(HostId a, HostId b) const;

  // Node sequence of the shortest-delay path a..b (empty if unreachable).
  std::vector<HostId> path(HostId a, HostId b) const;

  // Round-trip probe cost as a peer would measure it (2x one-way delay) —
  // what ACE phase 1 records in neighbor cost tables.
  Weight probe_rtt(HostId a, HostId b) const { return 2 * delay(a, b); }

  // Diagnostics: how many Dijkstra row computations have run / are cached.
  std::size_t rows_computed() const noexcept { return rows_computed_; }
  std::size_t rows_cached() const noexcept { return cache_.size(); }

 private:
  struct Row {
    std::vector<float> dist;
    std::vector<NodeId> parent;
  };

  const Row& row_for(HostId source) const;

  Graph topology_;
  std::size_t max_cached_rows_;
  // Mutable: the cache is an implementation detail of a logically-const
  // distance query.
  // ace-lint: allow(unordered-container): keyed lookup only — eviction
  // follows eviction_order_ (FIFO deque); the map is never iterated, and
  // cached rows are value-identical to recomputation.
  mutable std::unordered_map<HostId, Row> cache_;
  mutable std::deque<HostId> eviction_order_;
  mutable std::size_t rows_computed_ = 0;
};

}  // namespace ace
