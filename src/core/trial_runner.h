// Deterministic parallel trial execution. Every figure in the paper is an
// average over independent trials (one scenario per closure depth, per
// churn configuration, per baseline system, ...). Each trial is a pure
// function of its index: it builds its own Scenario from a config, seeds
// its own generators (Rng::stream / forked streams keyed on the master
// seed), and shares no mutable state with other trials. The runner shards
// trial indices across an owned std::thread pool and collects results into
// trial-index-ordered slots, so the merged output is byte-identical to a
// sequential run at any worker count — the thread count changes wall-clock
// time and nothing else (enforced by tests/test_trial_runner.cpp and
// tools/determinism_check.py).
//
// The same pool also serves *intra-trial* subtask batches (run_subtasks):
// an engine hands over a batch of independent rebuild slots and the caller
// thread joins the workers in draining it (DESIGN.md §15). Jobs coexist —
// a pool shared by several concurrent trials interleaves their subtask
// batches with the trial job itself; idle workers drain whichever job
// still has unclaimed indices.
//
// Exception policy: the first exception (in claim order) is captured;
// remaining unclaimed indices are skipped, in-flight ones finish, and the
// exception is rethrown on the caller thread after the job drains. The
// runner stays usable afterwards.
#pragma once

#include <cstddef>
#include <functional>
#include <type_traits>
#include <vector>

#include "util/strong_id.h"

namespace ace {

class TrialRunner {
 public:
  // `threads` == 0 picks std::thread::hardware_concurrency(). 1 (the
  // default) runs every trial inline on the caller thread — no pool, no
  // synchronization, trivially identical to a plain loop.
  explicit TrialRunner(std::size_t threads = 1);
  ~TrialRunner();
  TrialRunner(const TrialRunner&) = delete;
  TrialRunner& operator=(const TrialRunner&) = delete;

  std::size_t thread_count() const noexcept;

  // Runs body(TrialIndex{i}) for every i in [0, count), sharding across the
  // pool. Blocks until all claimed trials finish; rethrows the first trial
  // exception. `body` must treat distinct indices as independent (it is
  // called concurrently from pool threads when thread_count() > 1). The
  // caller thread does NOT participate: trial bodies assume at most
  // thread_count() of them run concurrently.
  void run_indexed(std::size_t count,
                   const std::function<void(TrialIndex)>& body);

  // Intra-trial fan-out: runs body(lane, i) for every i in [0, count),
  // sharding across the pool with the CALLER participating as lane 0 (pool
  // worker t is lane t + 1). Caller participation makes nesting safe: a
  // trial body already running on a pool worker can fan out its own
  // subtasks and is guaranteed forward progress even when every other
  // worker is busy. Distinct concurrent executors of one job always hold
  // distinct lanes, so lane-indexed scratch arenas (one per lane,
  // subtask_lanes() total) are race-free. Blocks until the batch drains;
  // rethrows the first subtask exception. `body` must treat distinct
  // indices as independent and restrict writes to per-index slots and
  // per-lane scratch (enforced by the ace-lint worker-shared-write rule).
  void run_subtasks(
      std::size_t count,
      const std::function<void(std::size_t lane, std::size_t index)>& body);

  // Number of distinct lanes run_subtasks can hand out: caller + workers
  // when a pool exists, 1 when subtasks run inline. Size lane-indexed
  // scratch arenas with this.
  std::size_t subtask_lanes() const noexcept;

  // Typed convenience: returns fn(i) results in trial-index order. Result
  // must be default-constructible and movable, and must not be bool:
  // std::vector<bool> packs elements into shared bitfield words, so
  // concurrent slots[i] writes from pool threads would be a data race.
  // Return a small struct or uint8_t instead.
  template <typename Fn>
  auto run(std::size_t count, Fn&& fn)
      -> std::vector<decltype(fn(TrialIndex{}))> {
    using Result = decltype(fn(TrialIndex{}));
    static_assert(!std::is_same_v<Result, bool>,
                  "TrialRunner::run cannot return std::vector<bool>: "
                  "concurrent per-index writes to packed bits are a data "
                  "race; return uint8_t or a struct instead");
    std::vector<Result> slots(count);
    run_indexed(count, [&](TrialIndex i) { slots[i.value()] = fn(i); });
    return slots;
  }

 private:
  struct Pool;  // owned worker pool; absent when thread_count() <= 1
  Pool* pool_ = nullptr;
  std::size_t threads_;
};

}  // namespace ace
