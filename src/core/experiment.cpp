#include "core/experiment.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "util/logging.h"

namespace ace {

namespace {

// Monotonic seconds for the rebuild_s perf counter. Never feeds simulation
// state, rng draws, or digests — it times engine rounds the way the bench
// WallTimer times whole runs.
double perf_now_s() {
  // ace-lint: allow(banned-clock): perf counter (rebuild_s) only — lands
  // in BENCH_*.json records, never in simulation state or digests.
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

}  // namespace

Graph build_physical_graph(const ScenarioConfig& config, Rng& rng) {
  switch (config.physical_model) {
    case PhysicalModel::kBarabasiAlbert: {
      BaOptions options;
      options.nodes = config.physical_nodes;
      options.edges_per_node = config.ba_edges_per_node;
      return barabasi_albert(options, rng);
    }
    case PhysicalModel::kWaxman: {
      WaxmanOptions options;
      options.nodes = config.physical_nodes;
      return waxman(options, rng);
    }
    case PhysicalModel::kTransitStub: {
      TransitStubOptions options;
      // Scale the two-level layout to roughly the requested node count.
      const std::size_t hosts_per_transit =
          options.stubs_per_transit * options.nodes_per_stub + 1;
      options.transit_nodes = std::max<std::size_t>(
          4, config.physical_nodes / hosts_per_transit);
      return transit_stub(options, rng);
    }
  }
  throw std::invalid_argument{"build_physical_graph: unknown model"};
}

Graph build_overlay_graph(const ScenarioConfig& config, Rng& rng) {
  OverlayOptions options;
  options.peers = config.peers;
  options.mean_degree = config.mean_degree;
  options.min_degree = config.overlay_min_degree;
  switch (config.overlay_model) {
    case OverlayModel::kSmallWorld:
      return small_world_overlay(options, rng);
    case OverlayModel::kRandom:
      return random_overlay(options, rng);
    case OverlayModel::kPowerLaw:
      return power_law_overlay(options, rng);
  }
  throw std::invalid_argument{"build_overlay_graph: unknown model"};
}

Scenario::Scenario(const ScenarioConfig& config)
    : config_{config}, rng_{config.seed} {
  if (config.peers > config.physical_nodes)
    throw std::invalid_argument{"Scenario: more peers than physical hosts"};
  Rng topo_rng = rng_.fork();
  physical_ = std::make_unique<PhysicalNetwork>(
      build_physical_graph(config, topo_rng), config.distance_cache_rows);
  const Graph logical = build_overlay_graph(config, topo_rng);
  const auto hosts = assign_hosts_uniform(*physical_, config.peers, topo_rng);
  overlay_ = std::make_unique<OverlayNetwork>(*physical_, logical, hosts);
  // Approximate modes build + attach an estimation oracle; kExact attaches
  // nothing so exact runs stay bit-for-bit what they were before the
  // oracle subsystem existed (no "oracle" draws, no extra digest
  // component, no landmark rows in the delay cache).
  if (config.oracle.kind != OracleKind::kExact) {
    cost_oracle_ = make_cost_oracle(*physical_, config.oracle, config.seed);
    overlay_->set_cost_oracle(cost_oracle_.get());
  }
  catalog_ = std::make_unique<ObjectCatalog>(config.catalog);
  oracle_ = std::make_unique<CatalogOracle>(*catalog_);
  ACE_LOG(kInfo) << "scenario: physical=" << physical_->host_count()
                 << " hosts, peers=" << overlay_->peer_count()
                 << ", mean logical degree="
                 << overlay_->mean_online_degree();
}

QueryStats Scenario::measure(ForwardingMode mode, const ForwardingTable* table,
                             std::size_t queries,
                             const QueryOptions& options) {
  return sample_queries(*overlay_, *catalog_, *oracle_, mode, table, queries,
                        rng_, options, &scratch_, query_subtasks_,
                        &query_lanes_);
}

// ---------------------------------------------------------------------
// Static optimization
// ---------------------------------------------------------------------

double StaticRunResult::traffic_reduction() const {
  if (samples.size() < 2 || samples.front().traffic <= 0) return 0;
  return 1.0 - samples.back().traffic / samples.front().traffic;
}

double StaticRunResult::response_reduction() const {
  if (samples.size() < 2 || samples.front().response_time <= 0) return 0;
  return 1.0 - samples.back().response_time / samples.front().response_time;
}

StaticRunResult run_static_optimization(Scenario& scenario,
                                        const AceConfig& ace,
                                        std::size_t steps,
                                        std::size_t queries_per_step,
                                        TrialRunner* subtasks) {
  StaticRunResult result;
  AceEngine engine{scenario.overlay(), ace};
  if (subtasks != nullptr) engine.set_subtask_runner(subtasks);
  // The same pool also fans out the per-step query measurement; detached
  // before returning because the scenario may outlive the pool.
  scenario.set_query_subtasks(subtasks);
  // The caller may have measured on this scenario already; count only the
  // snapshot rebuilds this run causes.
  const std::size_t snapshot_rebuilds_before = scenario.snapshot_rebuilds();

  // Step 0: unoptimized blind flooding baseline.
  {
    const QueryStats stats = scenario.measure_blind(queries_per_step);
    StepSample sample;
    sample.step = 0;
    sample.traffic = stats.mean_traffic();
    sample.response_time = stats.mean_response_time();
    sample.scope = stats.mean_scope();
    sample.mean_degree = scenario.overlay().mean_online_degree();
    result.samples.push_back(sample);
  }

  for (std::size_t step = 1; step <= steps; ++step) {
    const double t0 = perf_now_s();
    const RoundReport report = engine.step_round(scenario.rng());
    result.rebuild_s += perf_now_s() - t0;
    result.engine_cache.merge(report.cache);
    const QueryStats stats =
        scenario.measure(ForwardingMode::kTreeRouting, &engine.forwarding(),
                         queries_per_step);
    StepSample sample;
    sample.step = step;
    sample.traffic = stats.mean_traffic();
    sample.response_time = stats.mean_response_time();
    sample.scope = stats.mean_scope();
    sample.overhead = report.total_overhead();
    sample.cuts = report.phase3.cuts;
    sample.adds = report.phase3.adds;
    sample.mean_degree = scenario.overlay().mean_online_degree();
    result.samples.push_back(sample);
  }
  result.engine_cache.snapshot_rebuilds +=
      scenario.snapshot_rebuilds() - snapshot_rebuilds_before;
  scenario.set_query_subtasks(nullptr);
  return result;
}

// ---------------------------------------------------------------------
// Depth sweep
// ---------------------------------------------------------------------

namespace {

// One depth's full trial: fresh scenario, `rounds` optimization rounds,
// before/after query measurement. Pure function of (base, ace, transport,
// h) — no state shared with other depths — so depths can run concurrently.
struct DepthTrial {
  DepthSample sample;
  DigestTrace trace;
};

DepthTrial run_depth_trial(const ScenarioConfig& base, const AceConfig& ace,
                           std::uint32_t h, std::size_t rounds,
                           std::size_t queries, bool want_trace,
                           const TransportConfig& transport,
                           std::size_t maintenance_rounds,
                           TrialRunner* subtasks) {
  const bool lossy = transport.mode == TransportMode::kLossy;
  DepthTrial trial;
  Scenario scenario{base};  // identical starting topology per depth
  AceConfig config = ace;
  config.closure_depth = h;
  config.transport = transport.mode;
  // The depth experiments study what propagated cost tables alone buy
  // (the paper's §3.4 h-closure trees are built from overlay links, as
  // in its Figure 5/6 examples) — pairwise probing + establishment
  // would give depth-independent knowledge and flatten the h axis.
  config.pairwise_neighbor_probes = false;
  config.establish_tree_links = false;
  AceEngine engine{scenario.overlay(), config};
  if (subtasks != nullptr) engine.set_subtask_runner(subtasks);
  // The pool serves the trial's query measurements too (the scenario is
  // trial-local, so no detach is needed — the pool outlives it).
  scenario.set_query_subtasks(subtasks);
  Simulator sim;
  std::unique_ptr<Transport> wire;
  if (lossy) {
    wire = std::make_unique<Transport>(
        sim, scenario.overlay(), scenario.guids(), transport,
        Rng::stream(base.seed, "transport"));
    engine.attach_transport(wire.get());
  }

  DepthSample& sample = trial.sample;
  sample.h = h;
  sample.traffic_blind = scenario.measure_blind(queries).mean_traffic();

  double overhead_total = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    const double t0 = perf_now_s();
    const RoundReport report = engine.step_round(scenario.rng());
    sample.rebuild_s += perf_now_s() - t0;
    // Deliver the round's in-flight messages (cost-table pushes) before
    // the next round's versions go out; no periodics, so this drains.
    if (lossy) sim.run_all();
    overhead_total += report.total_overhead();
    sample.engine_cache.merge(report.cache);
    if (want_trace)
      trial.trace.record("h" + std::to_string(h) + "-round-" +
                             std::to_string(r + 1),
                         engine.state_digest(lossy ? &sim : nullptr));
  }
  sample.overhead_per_round =
      rounds ? overhead_total / static_cast<double>(rounds) : 0;

  sample.traffic_ace =
      scenario
          .measure(ForwardingMode::kTreeRouting, &engine.forwarding(),
                   queries)
          .mean_traffic();
  sample.gain_per_query = sample.traffic_blind - sample.traffic_ace;
  sample.reduction_rate =
      sample.traffic_blind > 0 ? sample.gain_per_query / sample.traffic_blind
                               : 0;

  // Steady-state maintenance phase: phases 1-2 only for every online peer.
  // No phase 3, no establishment, no topology mutation — the overlay's
  // versions stop moving, so after the first maintenance round (which
  // converges entries the last optimization round's mutations left stale)
  // the incremental cache serves every peer from its entry. It runs AFTER
  // the query measurement, so every figure metric and the digest trace are
  // byte-identical to a maintenance_rounds=0 run in both transport modes;
  // its phase-1 overhead is likewise excluded from overhead_per_round.
  // Only the perf counters below (engine cache, oracle row cache) observe
  // this phase — it is the steady-state segment those counters are meant
  // to characterize.
  for (std::size_t r = 0; r < maintenance_rounds; ++r) {
    const double t0 = perf_now_s();
    const RoundReport report = engine.rebuild_all_trees();
    sample.rebuild_s += perf_now_s() - t0;
    if (lossy) sim.run_all();
    sample.engine_cache.merge(report.cache);
  }

  sample.oracle_cache = scenario.physical().row_cache_stats();
  sample.engine_cache.snapshot_rebuilds += scenario.snapshot_rebuilds();
  return trial;
}

}  // namespace

std::vector<DepthSample> run_depth_sweep(const ScenarioConfig& base,
                                         const AceConfig& ace,
                                         std::span<const std::uint32_t> depths,
                                         std::size_t rounds,
                                         std::size_t queries,
                                         DigestTrace* trace,
                                         const TransportConfig& transport,
                                         std::size_t threads,
                                         std::size_t maintenance_rounds,
                                         std::size_t intra_threads) {
  // Each depth is an independent trial; the runner shards them across
  // workers and the merge below walks the slots in depth order, so samples
  // and trace rows come out byte-identical to a sequential sweep.
  // One shared intra-trial pool serves every depth's engine: its run_subtasks
  // entry point multiplexes concurrent batch jobs (callers participate as
  // lane 0), so cross-trial and intra-trial sharding compose without a
  // thread explosion.
  TrialRunner intra{intra_threads};
  TrialRunner* subtasks = intra_threads > 1 ? &intra : nullptr;
  TrialRunner runner{threads};
  std::vector<DepthTrial> trials =
      runner.run(depths.size(), [&](TrialIndex i) {
        return run_depth_trial(base, ace, depths[i.value()], rounds, queries,
                               trace != nullptr, transport,
                               maintenance_rounds, subtasks);
      });

  std::vector<DepthSample> out;
  out.reserve(trials.size());
  for (DepthTrial& trial : trials) {
    if (trace != nullptr) trace->extend(trial.trace);
    out.push_back(trial.sample);
  }
  return out;
}

double optimization_rate(const DepthSample& sample, double frequency_ratio) {
  if (sample.overhead_per_round <= 0) return 0;
  // One exchange period sees R queries, each saving gain_per_query,
  // against one round of overhead. Both sides are whole-network totals
  // (a round steps every peer; a query floods the network), so the ratio
  // is directly the paper's gain/penalty.
  return frequency_ratio * sample.gain_per_query / sample.overhead_per_round;
}

// ---------------------------------------------------------------------
// Dynamic environment
// ---------------------------------------------------------------------

DynamicResult run_dynamic(const DynamicConfig& config) {
  Scenario scenario{config.scenario};
  Simulator sim;
  // Named streams keyed on (master seed, component): each component's
  // sequence is a pure function of the seed, so toggling churn, the cache,
  // or ACE leaves the others' draws bit-identical (test_determinism pins
  // this down).
  Rng churn_rng = Rng::stream(config.scenario.seed, "churn");
  Rng query_rng = Rng::stream(config.scenario.seed, "workload");
  Rng ace_rng = Rng::stream(config.scenario.seed, "ace");

  AceConfig ace_config = config.ace;
  ace_config.transport = config.transport.mode;
  AceEngine engine{scenario.overlay(), ace_config};
  TrialRunner intra{config.intra_threads};
  if (config.intra_threads > 1) engine.set_subtask_runner(&intra);
  std::unique_ptr<Transport> wire;
  if (config.transport.mode == TransportMode::kLossy) {
    // The fault stream is its own named stream: enabling loss perturbs
    // neither churn, nor the workload, nor ACE's own draws.
    wire = std::make_unique<Transport>(
        sim, scenario.overlay(), scenario.guids(), config.transport,
        Rng::stream(config.scenario.seed, "transport"));
    engine.attach_transport(wire.get());
  }
  std::unique_ptr<IndexCacheLayer> cache;
  if (config.enable_cache) {
    cache = std::make_unique<IndexCacheLayer>(scenario.catalog(),
                                              config.scenario.peers,
                                              config.cache_capacity);
    cache->bind_overlay(scenario.overlay());
  }

  DynamicResult result;
  result.buckets.resize(std::max<std::size_t>(1, config.report_buckets));
  const double bucket_span =
      config.duration_s / static_cast<double>(result.buckets.size());
  for (std::size_t b = 0; b < result.buckets.size(); ++b)
    result.buckets[b].t_end = bucket_span * static_cast<double>(b + 1);

  std::vector<QueryStats> bucket_stats(result.buckets.size());
  std::vector<double> bucket_overhead(result.buckets.size(), 0);

  auto bucket_for = [&](SimTime t) {
    auto idx = static_cast<std::size_t>(t / bucket_span);
    return std::min(idx, result.buckets.size() - 1);
  };

  // Churn.
  ChurnDriver churn{scenario.overlay(), sim, churn_rng, config.churn};
  churn.on_join = [&](PeerId p) {
    if (config.enable_ace) engine.on_peer_join(p);
  };
  churn.on_leave = [&](PeerId p, std::span<const PeerId> dropped) {
    if (config.enable_ace) engine.on_peer_leave(p, dropped);
    if (cache) cache->on_peer_leave(p);
  };
  churn.start();

  // ACE optimization rounds (all peers step once per period — equivalent
  // in aggregate to each peer optimizing independently at that rate).
  std::size_t round_no = 0;
  if (config.enable_ace) {
    sim.every(config.ace_period_s, [&](SimTime t) {
      const double t0 = perf_now_s();
      const RoundReport report = engine.step_round(ace_rng);
      result.rebuild_s += perf_now_s() - t0;
      result.engine_cache.merge(report.cache);
      const double overhead = report.total_overhead();
      result.total_overhead += overhead;
      bucket_overhead[bucket_for(t)] += overhead;
      if (config.digest_trace != nullptr)
        config.digest_trace->record("round-" + std::to_string(++round_no),
                                    engine.state_digest(&sim));
    });
  }

  // Queries.
  QueryOptions qopts = config.query_options;
  qopts.record_paths = config.enable_cache;
  const ContentOracle* oracle =
      cache ? static_cast<const ContentOracle*>(cache.get())
            : static_cast<const ContentOracle*>(&scenario.oracle());
  const ForwardingMode mode = config.enable_ace
                                  ? ForwardingMode::kTreeRouting
                                  : ForwardingMode::kBlindFlooding;
  QueryScratch query_scratch;
  query_scratch.reserve(scenario.overlay().peer_count());
  QueryWorkload workload{
      scenario.overlay(), scenario.catalog(), sim, query_rng,
      config.workload,
      [&](SimTime t, PeerId source, ObjectId object) {
        const QueryResult qr = run_query(
            scenario.overlay(), source, object, *oracle, mode,
            config.enable_ace ? &engine.forwarding() : nullptr, qopts,
            &query_scratch);
        if (cache) cache->learn_from(qr, object);
        if (qr.answered_from_cache) ++result.cache_hits;
        bucket_stats[bucket_for(t)].add(qr);
        result.overall.add(qr);
      }};
  workload.start();

  if (config.digest_trace != nullptr)
    config.digest_trace->record("start", engine.state_digest(&sim));
  sim.run_until(config.duration_s);
  if (config.digest_trace != nullptr)
    config.digest_trace->record("end", engine.state_digest(&sim));

  result.joins = churn.joins();
  result.leaves = churn.leaves();
  result.engine_cache.snapshot_rebuilds += query_scratch.snapshot_rebuilds();
  if (wire) result.transport = wire->stats();
  for (std::size_t b = 0; b < result.buckets.size(); ++b) {
    DynamicBucket& bucket = result.buckets[b];
    const QueryStats& stats = bucket_stats[b];
    bucket.queries = stats.queries();
    bucket.mean_query_traffic = stats.mean_traffic();
    bucket.mean_response_time = stats.mean_response_time();
    bucket.mean_scope = stats.mean_scope();
    bucket.overhead = bucket_overhead[b];
    // The paper's Fig 9 traffic "includes the overhead needed by each
    // operation in the optimization steps": amortize the bucket's overhead
    // across its queries.
    bucket.mean_traffic =
        bucket.queries
            ? bucket.mean_query_traffic +
                  bucket.overhead / static_cast<double>(bucket.queries)
            : 0;
  }
  return result;
}

}  // namespace ace
