// Experiment driver: builds the full substrate stack (physical topology ->
// overlay -> content catalog) from one config and runs the paper's three
// experiment families — static optimization (Figs 7-8), dynamic churn
// (Figs 9-10, §5.2 cache combination), and the depth/frequency trade-off
// sweeps (Figs 11-16). Benches and examples are thin wrappers over this.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "ace/engine.h"
#include "baselines/index_cache.h"
#include "core/trial_runner.h"
#include "graph/generators.h"
#include "net/physical_network.h"
#include "oracle/cost_oracle.h"
#include "overlay/churn.h"
#include "overlay/workload.h"
#include "search/flooding.h"

namespace ace {

enum class PhysicalModel : std::uint8_t {
  kBarabasiAlbert,  // BRITE's BA option — the paper's physical model
  kWaxman,
  kTransitStub,
};

enum class OverlayModel : std::uint8_t {
  // Small-world overlay (default): the paper's §4.1 methodology — P2P
  // overlay topologies exhibit small-world clustering, which is what makes
  // local MSTs prune links and feeds phase 3 with non-flooding neighbors.
  kSmallWorld,
  kRandom,    // locally tree-like random overlay (ablation)
  kPowerLaw,  // trace-like power-law overlay (DSS Clip2 substitute)
};

struct ScenarioConfig {
  PhysicalModel physical_model = PhysicalModel::kBarabasiAlbert;
  std::size_t physical_nodes = 4096;
  std::size_t ba_edges_per_node = 2;
  OverlayModel overlay_model = OverlayModel::kSmallWorld;
  std::size_t peers = 1024;
  // The paper's C: average number of logical neighbors.
  double mean_degree = 6.0;
  std::size_t overlay_min_degree = 2;
  CatalogConfig catalog{};
  std::uint64_t seed = 20040326;
  std::size_t distance_cache_rows = 16384;
  // Cost-estimation oracle for the decision path (--oracle=). The default
  // kExact attaches NO oracle: every code path, digest, and CSV is
  // byte-identical to builds that predate the oracle subsystem.
  OracleConfig oracle{};
};

// Owns one experiment's substrate stack.
class Scenario {
 public:
  explicit Scenario(const ScenarioConfig& config);

  const ScenarioConfig& config() const noexcept { return config_; }
  PhysicalNetwork& physical() noexcept { return *physical_; }
  OverlayNetwork& overlay() noexcept { return *overlay_; }
  const ObjectCatalog& catalog() const noexcept { return *catalog_; }
  const CatalogOracle& oracle() const noexcept { return *oracle_; }
  // Attached cost-estimation oracle; nullptr in exact mode.
  const CostOracle* cost_oracle() const noexcept { return cost_oracle_.get(); }
  Rng& rng() noexcept { return rng_; }
  // Per-simulation message-id allocator (each scenario starts at guid 1, so
  // ids never depend on what else ran earlier in the process).
  GuidAllocator& guids() noexcept { return guids_; }

  // Mean query metrics over `queries` random (source, object) pairs. The
  // scenario-owned QueryScratch (and its lazily rebuilt adjacency
  // snapshot) backs every measurement; one scenario serves one thread.
  // With a query subtask pool attached (set_query_subtasks) the loop runs
  // across the pool's lanes with per-lane scratches instead — results are
  // byte-identical either way (see sample_queries).
  QueryStats measure(ForwardingMode mode, const ForwardingTable* table,
                     std::size_t queries, const QueryOptions& options = {});
  QueryStats measure_blind(std::size_t queries) {
    return measure(ForwardingMode::kBlindFlooding, nullptr, queries);
  }

  // Attaches (nullptr detaches) a TrialRunner whose subtask lanes execute
  // measure()'s query loop in parallel: rng draws stay on the caller and
  // the per-query adds replay in canonical order, so any lane count yields
  // the same bytes. The pool must outlive the attachment.
  void set_query_subtasks(TrialRunner* subtasks) noexcept {
    query_subtasks_ = subtasks;
  }

  // Adjacency snapshot rebuilds performed by measure() so far (the
  // snapshot_rebuilds cache counter), summed over the sequential scratch
  // and every query lane. How the total splits across lanes depends on the
  // lane count (perf accounting only); the measured stats do not.
  std::size_t snapshot_rebuilds() const noexcept {
    return scratch_.snapshot_rebuilds() + query_lanes_.snapshot_rebuilds();
  }

 private:
  ScenarioConfig config_;
  Rng rng_;
  GuidAllocator guids_;
  std::unique_ptr<PhysicalNetwork> physical_;
  // Declared before overlay_ (which borrows it) so destruction order is
  // overlay first, oracle second, physical last.
  std::unique_ptr<CostOracle> cost_oracle_;
  std::unique_ptr<OverlayNetwork> overlay_;
  std::unique_ptr<ObjectCatalog> catalog_;
  std::unique_ptr<CatalogOracle> oracle_;
  QueryScratch scratch_;
  QueryLanes query_lanes_;
  TrialRunner* query_subtasks_ = nullptr;
};

// ---------------------------------------------------------------------
// Static optimization (Figures 7 and 8)
// ---------------------------------------------------------------------

struct StepSample {
  std::size_t step = 0;          // 0 = unoptimized blind flooding
  double traffic = 0;            // mean query traffic cost
  double response_time = 0;      // mean response time (found queries)
  double scope = 0;              // mean distinct peers reached
  double overhead = 0;           // optimization overhead spent this step
  std::size_t cuts = 0;
  std::size_t adds = 0;
  double mean_degree = 0;        // overlay mean degree after the step
};

struct StaticRunResult {
  std::vector<StepSample> samples;  // samples[0] is the baseline
  // Wall time spent inside engine rounds (perf counter; see
  // DepthSample::rebuild_s).
  double rebuild_s = 0;
  // Incremental-cache behaviour over the whole run (engine counters plus
  // the measurement scratch's snapshot rebuilds).
  CacheCounters engine_cache{};
  // Convergence summary.
  double traffic_reduction() const;       // fraction vs samples[0]
  double response_reduction() const;      // fraction vs samples[0]
};

// `subtasks` (optional) attaches an intra-trial pool to both the run's
// engine (AceEngine::set_subtask_runner, conflict-free rebuild batches)
// and the scenario's query measurement loops (Scenario::set_query_subtasks,
// detached again before returning); results are byte-identical at any lane
// count.
StaticRunResult run_static_optimization(Scenario& scenario,
                                        const AceConfig& ace,
                                        std::size_t steps,
                                        std::size_t queries_per_step,
                                        TrialRunner* subtasks = nullptr);

// ---------------------------------------------------------------------
// Depth sweep (Figures 11-16)
// ---------------------------------------------------------------------

struct DepthSample {
  std::uint32_t h = 0;
  double traffic_blind = 0;
  double traffic_ace = 0;        // after convergence
  double reduction_rate = 0;     // (blind - ace) / blind
  double overhead_per_round = 0; // mean per optimization round
  double gain_per_query = 0;     // blind - ace
  // Wall time spent inside engine rounds (step_round + rebuild_all_trees
  // calls) for this depth's trial. A perf counter like the cache stats
  // below: it lands in BENCH_*.json records (never in CSVs or digests) and
  // is what the intra-trial parallelism speedup is measured on.
  double rebuild_s = 0;
  // Delay-oracle row-cache behavior of this depth's trial (benches
  // aggregate these into BENCH_*.json perf records).
  RowCacheStats oracle_cache{};
  // Incremental-cache behaviour of this depth's trial (same destination).
  CacheCounters engine_cache{};
};

// For each depth: a fresh scenario from `base` (same seed -> identical
// starting topology) optimized for `rounds` rounds; query traffic measured
// with `queries` samples before/after. When `trace` is set the engine's
// StateDigest is recorded after every round (label "h<depth>-round-<r>")
// for reproducibility checking.
// `transport` defaults to the analytic kIdeal mode; kLossy gives each depth
// its own Simulator + Transport (fault stream Rng::stream(seed,
// "transport")) and drains in-flight deliveries after every round.
// Depths are independent trials (each owns its scenario, engine, and
// digest trace) sharded over `threads` workers by a TrialRunner; samples
// and trace rows are merged in depth order, so the output — including the
// digest trace — is byte-identical at every thread count.
// `maintenance_rounds` appends a steady-state phase after the optimization
// rounds AND the query measurement: each maintenance round re-runs phases
// 1-2 for every online peer (rebuild_all_trees) without touching phase 3,
// so the topology stops moving and the incremental cache can serve hits.
// Because it runs after everything the figures observe, every figure
// metric (traffic, overhead, reduction rate, digest trace rows) is
// byte-identical to a maintenance_rounds=0 run in both transport modes —
// only the perf counters (engine_cache, oracle_cache) change. The phase
// exists to measure steady-state cache effectiveness (and its wall-time
// payoff) in the depth benches; its phase-1 overhead is NOT added to
// overhead_per_round.
// `intra_threads` > 1 additionally parallelizes *within* each trial: one
// shared subtask pool serves every depth's engine, which partitions each
// round's stale-peer rebuilds into conflict-free batches (DESIGN.md §15).
// Both sharding levels compose and neither changes a byte of output —
// samples, trace rows, and digests are identical for any (threads,
// intra_threads) pair; only rebuild_s and wall-clock move.
std::vector<DepthSample> run_depth_sweep(const ScenarioConfig& base,
                                         const AceConfig& ace,
                                         std::span<const std::uint32_t> depths,
                                         std::size_t rounds,
                                         std::size_t queries,
                                         DigestTrace* trace = nullptr,
                                         const TransportConfig& transport = {},
                                         std::size_t threads = 1,
                                         std::size_t maintenance_rounds = 0,
                                         std::size_t intra_threads = 1);

// Optimization rate (paper §4.2): gain/penalty with frequency ratio R =
// query frequency / cost-info exchange frequency. Over one exchange period
// R queries run, each saving `gain_per_query`, against one round of
// overhead.
double optimization_rate(const DepthSample& sample, double frequency_ratio);

// ---------------------------------------------------------------------
// Dynamic environment (Figures 9-10, §5.2 cache combination)
// ---------------------------------------------------------------------

struct DynamicConfig {
  ScenarioConfig scenario{};
  ChurnConfig churn{};
  WorkloadConfig workload{};
  AceConfig ace{};
  // Paper: every peer optimizes twice per minute.
  double ace_period_s = 30.0;
  double duration_s = 3600.0;
  std::size_t report_buckets = 12;
  bool enable_ace = true;
  bool enable_cache = false;
  std::size_t cache_capacity = 20;
  QueryOptions query_options{};
  // Optional determinism probe: when set, the engine's StateDigest is
  // recorded here at the start of the run, at every ACE round boundary,
  // and at the end (labels "start", "round-<n>", "end"). Two runs of the
  // same config must produce identical traces; the first differing row
  // names the subsystem that diverged.
  DigestTrace* digest_trace = nullptr;
  // Message transport. kIdeal (default) keeps the analytic accounting;
  // kLossy routes ACE protocol messages through an event-driven Transport
  // with the configured fault plan (overrides ace.transport).
  TransportConfig transport{};
  // Intra-trial rebuild parallelism: lanes for the engine's conflict-free
  // batch path (DESIGN.md §15). 1 = sequential; any value yields the same
  // bytes (digest trace included) — only wall-clock changes.
  std::size_t intra_threads = 1;
};

struct DynamicBucket {
  double t_end = 0;
  std::size_t queries = 0;
  double mean_traffic = 0;       // includes amortized ACE overhead
  double mean_query_traffic = 0; // excludes overhead
  double mean_response_time = 0;
  double mean_scope = 0;
  double overhead = 0;           // total optimization overhead in bucket
};

struct DynamicResult {
  std::vector<DynamicBucket> buckets;
  QueryStats overall;
  std::size_t joins = 0;
  std::size_t leaves = 0;
  double total_overhead = 0;
  std::size_t cache_hits = 0;  // queries answered from an index cache
  // Wall time spent inside engine rounds (perf counter; see
  // DepthSample::rebuild_s).
  double rebuild_s = 0;
  // What the lossy transport did (all-zero under kIdeal).
  TransportStats transport{};
  // Incremental-cache behaviour over the run (engine counters plus the
  // query workload's snapshot rebuilds).
  CacheCounters engine_cache{};
};

DynamicResult run_dynamic(const DynamicConfig& config);

// ---------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------

// Builds the physical graph for a model (exposed for tests).
Graph build_physical_graph(const ScenarioConfig& config, Rng& rng);
// Builds the logical overlay graph (weights are placeholders).
Graph build_overlay_graph(const ScenarioConfig& config, Rng& rng);

}  // namespace ace
