#include "core/trial_runner.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

namespace ace {

// Persistent worker pool. Workers sleep on a condition variable between
// jobs; run_indexed installs one job and wakes everyone. Indices are
// claimed with fetch_add, so the assignment of trials to workers is racy —
// which is exactly why results must land in index-ordered slots (the
// caller's lambda writes slots[i]) and why trials must be independent.
// Determinism lives in the trial/seed contract, not in the scheduling.
//
// Each job owns its state (claim counter, body pointer, completion count)
// in a shared_ptr that workers copy under the lock at wake-up. This closes
// a lifetime race: a worker that picked up job N but got descheduled before
// claiming an index can wake after run() returned and job N+1 started. With
// per-job state it can only fetch_add job N's exhausted counter (>= count,
// so it never dereferences the stale body) — it can never claim job N+1's
// indices or call job N's destroyed std::function.
struct TrialRunner::Pool {
  struct Job {
    std::size_t count = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    std::atomic<std::size_t> next_index{0};
    std::size_t outstanding = 0;  // claimed-and-finished bookkeeping (mutex)
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;  // guarded by the pool mutex
  };

  explicit Pool(std::size_t threads) {
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t)
      workers.emplace_back([this] { worker_loop(); });
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock{mutex};
      stopping = true;
    }
    wake_workers.notify_all();
    for (std::thread& w : workers) w.join();
  }

  void run(std::size_t count, const std::function<void(std::size_t)>& body) {
    auto job = std::make_shared<Job>();
    job->count = count;
    job->body = &body;
    job->outstanding = count;
    std::exception_ptr error;
    {
      std::unique_lock<std::mutex> lock{mutex};
      current_job = job;
      ++job_generation;
      wake_workers.notify_all();
      job_done.wait(lock, [&] { return job->outstanding == 0; });
      current_job = nullptr;
      // Take the exception out of the Job while still under the lock: a
      // stale worker may hold the last reference to the Job and destroy it
      // off-thread, and the exception object must be released on the
      // caller thread that rethrows and handles it.
      error = std::move(job->first_error);
    }
    // outstanding == 0 means every index in [0, count) was claimed and
    // executed; `body` cannot be invoked again (the claim counter is
    // exhausted), so returning — and destroying the caller's function — is
    // safe even if a stale worker still holds a reference to this job.
    if (error) std::rethrow_exception(error);
  }

  void worker_loop() {
    std::uint64_t seen_generation = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock{mutex};
        wake_workers.wait(lock, [&] {
          return stopping || job_generation != seen_generation;
        });
        if (stopping) return;
        seen_generation = job_generation;
        job = current_job;
      }
      // The job may already be finished and detached (a late wake-up);
      // nothing was claimed here, so there is nothing to report.
      if (!job) continue;
      std::size_t finished = 0;
      for (;;) {
        const std::size_t i =
            job->next_index.fetch_add(1, std::memory_order_relaxed);
        if (i >= job->count) break;
        if (!job->failed.load(std::memory_order_acquire)) {
          try {
            (*job->body)(i);
          } catch (...) {
            std::lock_guard<std::mutex> lock{mutex};
            if (!job->first_error) job->first_error = std::current_exception();
            job->failed.store(true, std::memory_order_release);
          }
        }
        ++finished;
      }
      if (finished != 0) {
        std::lock_guard<std::mutex> lock{mutex};
        job->outstanding -= finished;
        if (job->outstanding == 0) job_done.notify_all();
      }
      // `job` (the last keep-alive if run() already returned) drops here,
      // before the worker goes back to sleep.
    }
  }

  std::vector<std::thread> workers;
  std::mutex mutex;
  std::condition_variable wake_workers;
  std::condition_variable job_done;
  std::shared_ptr<Job> current_job;
  std::uint64_t job_generation = 0;
  bool stopping = false;
};

TrialRunner::TrialRunner(std::size_t threads) : threads_{threads} {
  if (threads_ == 0) {
    threads_ = std::thread::hardware_concurrency();
    if (threads_ == 0) threads_ = 1;
  }
  if (threads_ > 1) pool_ = new Pool{threads_};
}

TrialRunner::~TrialRunner() { delete pool_; }

std::size_t TrialRunner::thread_count() const noexcept { return threads_; }

void TrialRunner::run_indexed(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (pool_ == nullptr) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  pool_->run(count, body);
}

}  // namespace ace
