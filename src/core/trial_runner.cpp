#include "core/trial_runner.h"

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <thread>

#include "util/check.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace ace {

// Persistent worker pool. Workers sleep on a condition variable between
// jobs; run_indexed installs one job and wakes everyone. Indices are
// claimed with fetch_add, so the assignment of trials to workers is racy —
// which is exactly why results must land in index-ordered slots (the
// caller's lambda writes slots[i]) and why trials must be independent.
// Determinism lives in the trial/seed contract, not in the scheduling.
//
// Each job owns its state (claim counter, body pointer, completion count)
// in a shared_ptr that workers copy under the pool lock at wake-up. This
// closes a lifetime race: a worker that picked up job N but got descheduled
// before claiming an index can wake after run() returned and job N+1
// started. With per-job state it can only fetch_add job N's exhausted
// counter (>= count, so it never dereferences the stale body) — it can
// never claim job N+1's indices or call job N's destroyed std::function.
//
// Lock discipline (checked by clang -Wthread-safety via the annotations):
// the pool mutex guards job installation (current_job, job_generation,
// stopping); each Job carries its own mutex guarding its completion state
// (outstanding, first_error), so the guarded-by expressions resolve on the
// same base object the accessor holds. The two locks are never nested.
struct TrialRunner::Pool {
  struct Job {
    // count/body are immutable after publication: run() fills them in
    // before installing the job under the pool mutex, and workers only see
    // the job via that mutex (the release/acquire pair orders the writes).
    std::size_t count = 0;
    const std::function<void(TrialIndex)>* body = nullptr;
    std::atomic<std::size_t> next_index{0};
    std::atomic<bool> failed{false};
    Mutex mutex;
    CondVar done;  // signaled when outstanding hits zero
    std::size_t outstanding ACE_GUARDED_BY(mutex) = 0;
    std::exception_ptr first_error ACE_GUARDED_BY(mutex);
  };

  explicit Pool(std::size_t threads) {
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t)
      workers.emplace_back([this] { worker_loop(); });
  }

  ~Pool() {
    {
      MutexLock lock{mutex};
      stopping = true;
    }
    wake_workers.notify_all();
    for (std::thread& w : workers) w.join();
  }

  void run(std::size_t count, const std::function<void(TrialIndex)>& body)
      ACE_EXCLUDES(mutex) {
    auto job = std::make_shared<Job>();
    job->count = count;
    job->body = &body;
    {
      MutexLock lock{job->mutex};
      job->outstanding = count;
    }
    {
      MutexLock lock{mutex};
      current_job = job;
      ++job_generation;
    }
    wake_workers.notify_all();
    std::exception_ptr error;
    {
      MutexLock lock{job->mutex};
      while (job->outstanding != 0) job->done.wait(lock);
      // Take the exception out of the Job while still under its lock: a
      // stale worker may hold the last reference to the Job and destroy it
      // off-thread, and the exception object must be released on the
      // caller thread that rethrows and handles it.
      error = std::move(job->first_error);
    }
    {
      MutexLock lock{mutex};
      current_job = nullptr;
    }
    // outstanding == 0 means every index in [0, count) was claimed and
    // executed; `body` cannot be invoked again (the claim counter is
    // exhausted), so returning — and destroying the caller's function — is
    // safe even if a stale worker still holds a reference to this job.
    if (error) std::rethrow_exception(error);
  }

  void worker_loop() ACE_EXCLUDES(mutex) {
    std::uint64_t seen_generation = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        MutexLock lock{mutex};
        while (!stopping && job_generation == seen_generation)
          wake_workers.wait(lock);
        if (stopping) return;
        seen_generation = job_generation;
        job = current_job;
      }
      // The job may already be finished and detached (a late wake-up);
      // nothing was claimed here, so there is nothing to report.
      if (!job) continue;
      std::size_t finished = 0;
      for (;;) {
        const std::size_t i =
            job->next_index.fetch_add(1, std::memory_order_relaxed);
        if (i >= job->count) break;
        if (!job->failed.load(std::memory_order_acquire)) {
          try {
            // ace-id: boundary(the claimed counter position is the trial slot)
            (*job->body)(TrialIndex{static_cast<std::uint32_t>(i)});
          } catch (...) {
            MutexLock lock{job->mutex};
            if (!job->first_error) job->first_error = std::current_exception();
            job->failed.store(true, std::memory_order_release);
          }
        }
        ++finished;
      }
      if (finished != 0) {
        MutexLock lock{job->mutex};
        job->outstanding -= finished;
        if (job->outstanding == 0) job->done.notify_all();
      }
      // `job` (the last keep-alive if run() already returned) drops here,
      // before the worker goes back to sleep.
    }
  }

  std::vector<std::thread> workers;
  Mutex mutex;
  CondVar wake_workers;
  std::shared_ptr<Job> current_job ACE_GUARDED_BY(mutex);
  std::uint64_t job_generation ACE_GUARDED_BY(mutex) = 0;
  bool stopping ACE_GUARDED_BY(mutex) = false;
};

TrialRunner::TrialRunner(std::size_t threads) : threads_{threads} {
  if (threads_ == 0) {
    threads_ = std::thread::hardware_concurrency();
    if (threads_ == 0) threads_ = 1;
  }
  if (threads_ > 1) pool_ = new Pool{threads_};
}

TrialRunner::~TrialRunner() { delete pool_; }

std::size_t TrialRunner::thread_count() const noexcept { return threads_; }

void TrialRunner::run_indexed(std::size_t count,
                              const std::function<void(TrialIndex)>& body) {
  if (count == 0) return;
  ACE_CHECK_LE(count, static_cast<std::size_t>(UINT32_MAX))
      << " — trial count exceeds the TrialIndex domain";
  if (pool_ == nullptr) {
    for (std::size_t i = 0; i < count; ++i)
      // ace-id: boundary(the inline loop counter is the trial slot)
      body(TrialIndex{static_cast<std::uint32_t>(i)});
    return;
  }
  pool_->run(count, body);
}

}  // namespace ace
