#include "core/trial_runner.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

namespace ace {

// Persistent worker pool. Workers sleep on a condition variable between
// jobs; run_indexed installs one job (count + shared claim counter) and
// wakes everyone. Indices are claimed with fetch_add, so the assignment of
// trials to workers is racy — which is exactly why results must land in
// index-ordered slots (the caller's lambda writes slots[i]) and why trials
// must be independent. Determinism lives in the trial/seed contract, not in
// the scheduling.
struct TrialRunner::Pool {
  explicit Pool(std::size_t threads) {
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t)
      workers.emplace_back([this] { worker_loop(); });
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock{mutex};
      stopping = true;
    }
    wake_workers.notify_all();
    for (std::thread& w : workers) w.join();
  }

  void run(std::size_t count, const std::function<void(std::size_t)>& body) {
    std::unique_lock<std::mutex> lock{mutex};
    job_body = &body;
    job_count = count;
    next_index.store(0, std::memory_order_relaxed);
    outstanding = count;
    failed.store(false, std::memory_order_relaxed);
    first_error = nullptr;
    ++job_generation;
    wake_workers.notify_all();
    job_done.wait(lock, [this] { return outstanding == 0; });
    job_body = nullptr;
    if (first_error) std::rethrow_exception(first_error);
  }

  void worker_loop() {
    std::uint64_t seen_generation = 0;
    for (;;) {
      const std::function<void(std::size_t)>* body = nullptr;
      std::size_t count = 0;
      {
        std::unique_lock<std::mutex> lock{mutex};
        wake_workers.wait(lock, [&] {
          return stopping || job_generation != seen_generation;
        });
        if (stopping) return;
        seen_generation = job_generation;
        body = job_body;
        count = job_count;
      }
      std::size_t finished = 0;
      for (;;) {
        const std::size_t i =
            next_index.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) break;
        if (!failed.load(std::memory_order_acquire)) {
          try {
            (*body)(i);
          } catch (...) {
            std::lock_guard<std::mutex> lock{mutex};
            if (!first_error) first_error = std::current_exception();
            failed.store(true, std::memory_order_release);
          }
        }
        ++finished;
      }
      if (finished != 0) {
        std::lock_guard<std::mutex> lock{mutex};
        outstanding -= finished;
        if (outstanding == 0) job_done.notify_all();
      } else {
        // Claimed nothing (another worker drained the job): nothing to
        // report; outstanding was decremented by whoever ran the trials.
      }
    }
  }

  std::vector<std::thread> workers;
  std::mutex mutex;
  std::condition_variable wake_workers;
  std::condition_variable job_done;
  const std::function<void(std::size_t)>* job_body = nullptr;
  std::size_t job_count = 0;
  std::atomic<std::size_t> next_index{0};
  std::size_t outstanding = 0;
  std::uint64_t job_generation = 0;
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  bool stopping = false;
};

TrialRunner::TrialRunner(std::size_t threads) : threads_{threads} {
  if (threads_ == 0) {
    threads_ = std::thread::hardware_concurrency();
    if (threads_ == 0) threads_ = 1;
  }
  if (threads_ > 1) pool_ = new Pool{threads_};
}

TrialRunner::~TrialRunner() { delete pool_; }

std::size_t TrialRunner::thread_count() const noexcept { return threads_; }

void TrialRunner::run_indexed(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (pool_ == nullptr) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  pool_->run(count, body);
}

}  // namespace ace
