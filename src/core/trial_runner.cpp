#include "core/trial_runner.h"

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <thread>

#include "util/check.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace ace {

// Persistent worker pool. Workers sleep on a condition variable between
// jobs; run_job appends one job and wakes everyone. Indices are claimed
// with fetch_add, so the assignment of indices to executors is racy —
// which is exactly why results must land in index-ordered slots (the
// caller's lambda writes slots[i]) and why indices must be independent.
// Determinism lives in the body/seed contract, not in the scheduling.
//
// Several jobs can be live at once: concurrent trials sharing one pool
// each fan out their own subtask batches (run_subtasks) while the
// cross-trial job itself is still draining. `active` holds every live job;
// a woken worker drains the first job with unclaimed indices and sleeps
// only when every live job is fully claimed.
//
// Each job owns its state (claim counter, body pointer, completion count)
// in a shared_ptr that executors copy under the pool lock at wake-up. This
// closes a lifetime race: a worker that picked up job N but got descheduled
// before claiming an index can wake after run_job returned and the job was
// retired. With per-job state it can only fetch_add job N's exhausted
// counter (>= count, so it never dereferences the stale body) — it can
// never claim another job's indices or call job N's destroyed function.
//
// Lock discipline (checked by clang -Wthread-safety via the annotations):
// the pool mutex guards the live-job list (active, stopping); each Job
// carries its own mutex guarding its completion state (outstanding,
// first_error), so the guarded-by expressions resolve on the same base
// object the accessor holds. The two locks are never nested.
struct TrialRunner::Pool {
  struct Job {
    // count/body are immutable after publication: run_job fills them in
    // before appending the job under the pool mutex, and workers only see
    // the job via that mutex (the release/acquire pair orders the writes).
    std::size_t count = 0;
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::atomic<std::size_t> next_index{0};
    std::atomic<bool> failed{false};
    Mutex mutex;
    CondVar done;  // signaled when outstanding hits zero
    std::size_t outstanding ACE_GUARDED_BY(mutex) = 0;
    std::exception_ptr first_error ACE_GUARDED_BY(mutex);
  };

  explicit Pool(std::size_t threads) {
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t)
      // Worker t executes as subtask lane t + 1; lane 0 is the
      // run_subtasks caller (run_job's participate path).
      workers.emplace_back([this, t] { worker_loop(t + 1); });
  }

  ~Pool() {
    {
      MutexLock lock{mutex};
      stopping = true;
    }
    wake_workers.notify_all();
    for (std::thread& w : workers) w.join();
  }

  // Claim-and-execute loop shared by workers and participating callers.
  // Every executor of one job holds a distinct `lane`, so lane-indexed
  // scratch handed to `body` is private to it for the whole drain.
  static void drain(Job& job, std::size_t lane) {
    std::size_t finished = 0;
    for (;;) {
      const std::size_t i =
          job.next_index.fetch_add(1, std::memory_order_relaxed);
      if (i >= job.count) break;
      if (!job.failed.load(std::memory_order_acquire)) {
        try {
          (*job.body)(lane, i);
        } catch (...) {
          MutexLock lock{job.mutex};
          if (!job.first_error) job.first_error = std::current_exception();
          job.failed.store(true, std::memory_order_release);
        }
      }
      ++finished;
    }
    if (finished != 0) {
      MutexLock lock{job.mutex};
      job.outstanding -= finished;
      if (job.outstanding == 0) job.done.notify_all();
    }
  }

  // Publishes one job, optionally drains it from the caller thread (as
  // lane 0), then blocks until every claimed index finished and rethrows
  // the first captured exception.
  void run_job(std::size_t count,
               const std::function<void(std::size_t, std::size_t)>& body,
               bool participate) ACE_EXCLUDES(mutex) {
    auto job = std::make_shared<Job>();
    job->count = count;
    job->body = &body;
    {
      MutexLock lock{job->mutex};
      job->outstanding = count;
    }
    {
      MutexLock lock{mutex};
      active.push_back(job);
    }
    wake_workers.notify_all();
    if (participate) drain(*job, 0);
    std::exception_ptr error;
    {
      MutexLock lock{job->mutex};
      while (job->outstanding != 0) job->done.wait(lock);
      // Take the exception out of the Job while still under its lock: a
      // stale worker may hold the last reference to the Job and destroy it
      // off-thread, and the exception object must be released on the
      // caller thread that rethrows and handles it.
      error = std::move(job->first_error);
    }
    {
      MutexLock lock{mutex};
      for (std::size_t k = 0; k < active.size(); ++k) {
        if (active[k] == job) {
          active.erase(active.begin() +
                       static_cast<std::ptrdiff_t>(k));
          break;
        }
      }
    }
    // outstanding == 0 means every index in [0, count) was claimed and
    // executed; `body` cannot be invoked again (the claim counter is
    // exhausted), so returning — and destroying the caller's function — is
    // safe even if a stale worker still holds a reference to this job.
    if (error) std::rethrow_exception(error);
  }

  // First live job with unclaimed indices, in publication order (so idle
  // workers prefer the oldest job — typically the cross-trial shard —
  // and fall through to newer subtask batches).
  std::shared_ptr<Job> claimable_job() ACE_REQUIRES(mutex) {
    for (const std::shared_ptr<Job>& job : active) {
      if (job->next_index.load(std::memory_order_relaxed) < job->count)
        return job;
    }
    return nullptr;
  }

  void worker_loop(std::size_t lane) ACE_EXCLUDES(mutex) {
    for (;;) {
      std::shared_ptr<Job> job;
      {
        MutexLock lock{mutex};
        while (!stopping && (job = claimable_job()) == nullptr)
          wake_workers.wait(lock);
        if (stopping) return;
      }
      drain(*job, lane);
      // `job` (the last keep-alive if run_job already returned) drops
      // here, before the worker goes back to sleep.
      job.reset();
    }
  }

  std::vector<std::thread> workers;
  Mutex mutex;
  CondVar wake_workers;
  std::vector<std::shared_ptr<Job>> active ACE_GUARDED_BY(mutex);
  bool stopping ACE_GUARDED_BY(mutex) = false;
};

TrialRunner::TrialRunner(std::size_t threads) : threads_{threads} {
  if (threads_ == 0) {
    threads_ = std::thread::hardware_concurrency();
    if (threads_ == 0) threads_ = 1;
  }
  if (threads_ > 1) pool_ = new Pool{threads_};
}

TrialRunner::~TrialRunner() { delete pool_; }

std::size_t TrialRunner::thread_count() const noexcept { return threads_; }

void TrialRunner::run_indexed(std::size_t count,
                              const std::function<void(TrialIndex)>& body) {
  if (count == 0) return;
  ACE_CHECK_LE(count, static_cast<std::size_t>(UINT32_MAX))
      << " — trial count exceeds the TrialIndex domain";
  if (pool_ == nullptr) {
    for (std::size_t i = 0; i < count; ++i)
      // ace-id: boundary(the inline loop counter is the trial slot)
      body(TrialIndex{static_cast<std::uint32_t>(i)});
    return;
  }
  // Trials ignore the lane (each owns a full Scenario, no shared scratch)
  // and the caller does not participate: trial bodies assume at most
  // thread_count() of them run concurrently.
  const std::function<void(std::size_t, std::size_t)> wrapped =
      [&body](std::size_t, std::size_t i) {
        // ace-id: boundary(the claimed counter position is the trial slot)
        body(TrialIndex{static_cast<std::uint32_t>(i)});
      };
  pool_->run_job(count, wrapped, /*participate=*/false);
}

void TrialRunner::run_subtasks(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  if (pool_ == nullptr) {
    for (std::size_t i = 0; i < count; ++i) body(0, i);
    return;
  }
  pool_->run_job(count, body, /*participate=*/true);
}

std::size_t TrialRunner::subtask_lanes() const noexcept {
  return pool_ == nullptr ? 1 : threads_ + 1;
}

}  // namespace ace
