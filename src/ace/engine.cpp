#include "ace/engine.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "core/trial_runner.h"
#include "oracle/cost_oracle.h"
#include "sim/simulator.h"
#include "util/check.h"

namespace ace {

void RoundReport::merge(const RoundReport& other) noexcept {
  phase1.merge(other.phase1);
  closure_traffic += other.closure_traffic;
  closure_entries += other.closure_entries;
  pair_probes += other.pair_probes;
  pair_probe_traffic += other.pair_probe_traffic;
  establishments += other.establishments;
  establish_traffic += other.establish_traffic;
  refills += other.refills;
  phase3.merge(other.phase3);
  peers_stepped += other.peers_stepped;
  cache.merge(other.cache);
}

AceEngine::AceEngine(OverlayNetwork& overlay, AceConfig config)
    : overlay_{&overlay},
      config_{config},
      optimizer_{[&] {
        OptimizerConfig opt = config.optimizer;
        opt.sizing = config.sizing;
        const auto mean_degree = static_cast<std::size_t>(
            std::ceil(overlay.mean_online_degree()));
        if (config.max_degree > 0) {
          opt.max_degree = config.max_degree;
        } else if (opt.max_degree == 0) {
          opt.max_degree = mean_degree + config.degree_slack;
        }
        // Degree floor: repeated replacements by *other* peers must not
        // strip a peer bare — keep everyone at half the connectivity
        // density (at least 2), preserving the search scope.
        if (opt.min_degree <= 1)
          opt.min_degree = std::max<std::size_t>(2, mean_degree / 2);
        return opt;
      }()},
      tables_{config.sizing} {
  tables_.ensure_size(overlay.peer_count());
  forwarding_.ensure_size(overlay.peer_count());
  target_degree_ = static_cast<std::size_t>(
      std::lround(overlay.mean_online_degree()));
}

bool AceEngine::lossy() const {
  if (config_.transport != TransportMode::kLossy) return false;
  ACE_CHECK(transport_ != nullptr)
      << " — AceEngine: TransportMode::kLossy requires attach_transport()";
  return true;
}

void AceEngine::charge_closure(PeerId peer, const LocalClosure& closure,
                               RoundReport& report) const {
  // Account the table entries the source works with either way.
  std::uint32_t max_depth = 0;
  for (LocalNodeId li{1}; li < closure.size(); ++li) {
    report.closure_entries += overlay_->degree(closure.nodes[li]);
    max_depth = std::max(max_depth, closure.depth[li]);
  }
  if (max_depth <= 1) return;  // h == 1 is covered by the phase-1 exchange

  if (config_.overhead_model == OverheadModel::kFullPropagation) {
    // Worst case: every member's full table travels its BFS path to the
    // source each round. Depth-1 members are already paid for in phase 1.
    for (LocalNodeId li{1}; li < closure.size(); ++li) {
      if (closure.depth[li] <= 1) continue;
      const std::size_t entries = overlay_->degree(closure.nodes[li]);
      const double msg =
          size_factor(config_.sizing, MessageType::kCostTable, entries);
      report.closure_traffic += msg * closure.path_cost[li];
    }
    return;
  }

  // Bounded digest: each additional closure level costs one more digest
  // exchange with the direct neighbors. In steady state the digest carries
  // only *changed* entries, so it is priced at the base table message
  // (aggregation + change suppression bound its size). Levels past where
  // the closure stopped growing (max_depth) carry nothing.
  double one_exchange = 0;
  const double msg = size_factor(config_.sizing, MessageType::kCostTable, 0);
  for (const auto& n : overlay_->neighbors(peer)) one_exchange += msg * n.weight;
  report.closure_traffic += static_cast<double>(max_depth - 1) * one_exchange;
}

bool AceEngine::cache_valid(const PeerCacheEntry& entry) const {
  const std::size_t n = entry.closure.nodes.size();
  ACE_DCHECK_EQ(entry.member_versions.size(), n);
  for (LocalNodeId i{0}; i < n; ++i) {
    if (overlay_->topology_version(entry.closure.nodes[i]) !=
        entry.member_versions[i])
      return false;
  }
  return true;
}

void AceEngine::snapshot_versions(PeerCacheEntry& entry) const {
  entry.member_versions.clear();
  entry.member_versions.reserve(entry.closure.nodes.size());
  for (const PeerId member : entry.closure.nodes)
    entry.member_versions.push_back(overlay_->topology_version(member));
}

void AceEngine::ensure_cache_size() {
  const std::size_t n = overlay_->peer_count();
  if (cache_.size() < n) {
    cache_.resize(n);
    cache_valid_.resize(n);      // new slots read 0: not yet built
    cache_pre_probe_.resize(n);
  }
}

const LocalTree& AceEngine::refresh_peer_tree(PeerId peer,
                                              RoundReport& report,
                                              RebuildSlot* slot) {
  // Phase 1: probe direct neighbors, exchange tables. Under the lossy
  // transport probes can time out (stale entries survive) and the exchange
  // is real versioned kCostTable messages. This always runs — phase 1 is
  // real per-round protocol traffic regardless of what the cache holds.
  tables_.ensure_size(overlay_->peer_count());
  forwarding_.ensure_size(overlay_->peer_count());
  ensure_cache_size();
  if (lossy()) {
    tables_.refresh_peer_via(*overlay_, peer, *transport_, report.phase1);
    tables_.publish_via(*overlay_, peer, *transport_, report.phase1);
  } else {
    tables_.refresh_peer(*overlay_, peer, report.phase1);
    tables_.charge_exchange(*overlay_, peer, report.phase1);
  }

  // Closure assembly (+ pairwise neighbor probes) and the phase-2 tree.
  // Cache hit: no closure member's topology version moved, so build_closure
  // would return byte-for-byte the cached pre-probe closure — skip it.
  const ClosureEdges edges = closure_edges();
  PeerCacheEntry& entry = cache_[peer];
  const bool hit =
      cache_valid_[peer] != 0 && !force_full() && cache_valid(entry);
  bool adopted = false;
  if (hit) {
    ++report.cache.closure_hits;
  } else {
    if (cache_valid_[peer] && !force_full()) ++report.cache.invalidations;
    if (slot != nullptr && slot_valid(*slot)) {
      // Adopt the batch-precomputed rebuild: no member version moved since
      // the parallel build, so an inline build_closure_into here would
      // produce these exact bytes (the cache-hit invariant, applied to the
      // slot snapshot). Swap, don't move: the retired entry buffers flow
      // back into the slot for the next batch, keeping both sides'
      // capacity in circulation (allocation-free steady state).
      std::swap(entry.closure, slot->closure);
      std::swap(entry.member_versions, slot->versions);
      adopted = true;
    } else {
      // No slot, or an earlier commit in this batch (establishment,
      // phase-3 replacement, degree refill) touched a member since the
      // parallel build: discard and rebuild inline, exactly like the
      // sequential path.
      build_closure_into(*overlay_, peer, config_.closure_depth, edges,
                         entry.closure, closure_scratch_);
      snapshot_versions(entry);
    }
    cache_valid_[peer] = 1;
    ++report.cache.closure_builds;
  }
  // The closure (hence its charges) is identical either way; the paper's
  // peers propagate tables every round, so the overhead is re-applied.
  charge_closure(peer, entry.closure, report);

  // Lossy probe failures prune edges for THIS round only; the cache keeps
  // the pre-probe closure (still version-valid) and the pruned copy lives
  // here. Copy-on-write: the overwhelmingly common all-probes-succeed round
  // touches nothing.
  bool pruned = false;
  LocalClosure pruned_closure;
  if (lossy()) {
    // Pair probes travel the transport; a pair whose probe gives up after
    // every retry is dropped from the local graph, so the phase-2 MST
    // ranges over what the peer actually measured this round (loss
    // degrades the tree instead of silently using unknown costs).
    std::vector<std::pair<LocalNodeId, LocalNodeId>> surviving;
    surviving.reserve(entry.closure.probed_pairs.size());
    for (const auto& [a, b] : entry.closure.probed_pairs) {
      ++report.pair_probes;
      const std::optional<Weight> cost =
          transport_->probe(entry.closure.to_global(a),
                            entry.closure.to_global(b),
                            report.pair_probe_traffic);
      if (cost.has_value()) {
        surviving.emplace_back(a, b);
      } else {
        if (!pruned) {
          pruned_closure = entry.closure;
          pruned = true;
        }
        pruned_closure.local.remove_edge(a.value(), b.value());
      }
    }
    if (pruned) pruned_closure.probed_pairs = std::move(surviving);
  } else {
    const double pair_probe_size =
        size_factor(config_.sizing, MessageType::kProbe) +
        size_factor(config_.sizing, MessageType::kProbeReply);
    for (const auto& [a, b] : entry.closure.probed_pairs) {
      ++report.pair_probes;
      report.pair_probe_traffic +=
          pair_probe_size *
          entry.closure.local.edge_weight(a.value(), b.value()).value();
    }
  }

  // The closure the rest of this round works against (audits, phase 3).
  const LocalClosure* active = pruned ? &pruned_closure : &entry.closure;

  bool tree_built = false;
  // True while entry.tree/closure are byte-identical to the slot's, so the
  // precomputed routing can be installed as-is.
  bool routing_from_slot = false;
  if (pruned) {
    entry.tree = build_local_tree(pruned_closure, config_.tree_kind);
    cache_pre_probe_[peer] = 0;
    tree_built = true;
  } else if (!hit || !cache_pre_probe_[peer]) {
    if (adopted) {
      // The slot tree was built from the adopted closure; build_local_tree
      // is deterministic, so this swap installs the bytes the line below
      // would compute.
      std::swap(entry.tree, slot->tree);
      routing_from_slot = true;
    } else {
      entry.tree = build_local_tree(entry.closure, config_.tree_kind);
    }
    cache_pre_probe_[peer] = 1;
    tree_built = true;
  }
  if (tree_built) ++report.cache.tree_builds;

  // Connection establishment: realize tree edges that were only probed
  // costs. The new links make the expected neighbor-to-neighbor forwarding
  // possible (and are physically short by construction). Runs on cache
  // hits too — on a hit the tree (hence its virtual edges) is exactly what
  // a fresh build would recommend, and the attempts are real protocol
  // actions (capacity checks, handshake draws, connects).
  if (config_.establish_tree_links && !entry.tree.virtual_edges.empty()) {
    const double connect_size =
        size_factor(config_.sizing, MessageType::kConnect);
    bool changed = false;
    std::size_t established = 0;
    for (const PeerEdge& e : entry.tree.virtual_edges) {
      if (config_.max_establish_per_step != 0 &&
          established >= config_.max_establish_per_step)
        break;
      const PeerId u = e.u;
      const PeerId v = e.v;
      // Peers refuse connections beyond their hard capacity (2x the trim
      // ceiling — see Phase3Optimizer::consider_candidate on why central
      // hubs get headroom).
      const std::size_t ceiling = 2 * optimizer_.config().max_degree;
      if (ceiling != 0 && (overlay_->degree(u) >= ceiling ||
                           overlay_->degree(v) >= ceiling))
        continue;
      // Lossy: establishment is a real CONNECT/ACK handshake (charged by
      // the transport, both legs); losing it aborts this edge cleanly.
      if (lossy() &&
          !transport_->connect_handshake(u, v, report.establish_traffic))
        continue;
      if (overlay_->connect(u, v)) {
        ++established;
        ++report.establishments;
        if (!lossy()) report.establish_traffic += connect_size * e.weight;
        forwarding_.invalidate(u);
        forwarding_.invalidate(v);
        changed = true;
      }
    }
    if (changed) {
      // The new links change the local topology; rebuild so the flooding
      // classification reflects what is now real. The rebuild is pre-probe
      // (ideal pair costs) and version-snapshotted after the connects, so
      // it seeds the cache for the next round.
      build_closure_into(*overlay_, peer, config_.closure_depth, edges,
                         entry.closure, closure_scratch_);
      snapshot_versions(entry);
      ++report.cache.closure_builds;
      entry.tree = build_local_tree(entry.closure, config_.tree_kind);
      cache_pre_probe_[peer] = 1;
      ++report.cache.tree_builds;
      tree_built = true;
      pruned = false;
      routing_from_slot = false;  // the tree just diverged from the slot's
      active = &entry.closure;
    }
  }

  // Phase 1/2 boundary audit: the closure honors its hop bound and index
  // bijection, the tree spans it, and this peer's fresh table agrees with
  // the live overlay. On a cache hit this audits the cached pair — the
  // same objects a fresh build would have produced.
  if (invariant_audits_enabled()) {
    active->debug_validate(config_.closure_depth);
    debug_validate_tree(*active, entry.tree);
  }

  if (tree_built || !forwarding_.has_entry(peer)) {
    // Fresh tree, or a pure hit whose forwarding entry was invalidated
    // (e.g. a neighbor left and the churn hook dropped it). The routing is
    // a pure function of the tree, so rebuilding it from the cached tree
    // installs exactly what a fresh build would; moving it into the table
    // avoids a per-step deep copy of the relay lists. The local-id overload
    // is valid even when the tree came from a lossy-pruned closure: pruning
    // removes edges, never members, so the cached closure's node list still
    // indexes the tree. When the adopted slot survived untouched its
    // precomputed routing IS that pure function's value — install it
    // without recomputing.
    if (routing_from_slot) {
      forwarding_.set_tree(peer, std::move(slot->routing));
    } else {
      forwarding_.set_tree(peer,
                           make_tree_routing(entry.closure, entry.tree, peer));
    }
  }
  // Otherwise the installed entry is the routing we set last time from the
  // identical tree — reinstalling would be a byte-identical no-op.
  return entry.tree;
}

void AceEngine::rebuild_into_cache(PeerId peer, RoundReport& report) {
  ensure_cache_size();
  PeerCacheEntry& entry = cache_[peer];
  build_closure_into(*overlay_, peer, config_.closure_depth, closure_edges(),
                     entry.closure, closure_scratch_);
  snapshot_versions(entry);
  cache_valid_[peer] = 1;
  ++report.cache.closure_builds;
  entry.tree = build_local_tree(entry.closure, config_.tree_kind);
  cache_pre_probe_[peer] = 1;
  ++report.cache.tree_builds;
  if (invariant_audits_enabled()) {
    entry.closure.debug_validate(config_.closure_depth);
    debug_validate_tree(entry.closure, entry.tree);
  }
  forwarding_.set_tree(peer,
                       make_tree_routing(entry.closure, entry.tree, peer));
}

void AceEngine::step_peer(PeerId peer, Rng& rng, RoundReport& report) {
  owner_.assert_held();
  step_peer_with_slot(peer, rng, report, nullptr);
}

void AceEngine::step_peer_with_slot(PeerId peer, Rng& rng,
                                    RoundReport& report, RebuildSlot* slot) {
  if (!overlay_->is_online(peer)) return;
  ++report.peers_stepped;

  const LocalTree& tree = refresh_peer_tree(peer, report, slot);

  // Phase 3: adaptive connection replacement.
  ++steps_;
  if (config_.phase3_every <= 1 || steps_ % config_.phase3_every == 0) {
    std::vector<PeerId> touched;
    const OptimizeOutcome outcome = optimizer_.optimize_peer(
        *overlay_, peer, tree.non_flooding, rng, touched,
        lossy() ? transport_ : nullptr);
    report.phase3.merge(outcome);
    // Any peer whose neighbor set changed has a stale tree; peers rebuild
    // on their own next step, but mark entries invalid so tree routing
    // falls back to flooding instead of using a wrong tree.
    for (const PeerId q : touched) forwarding_.invalidate(q);

    // Connectivity-density maintenance: a Gnutella client below its target
    // connection count opens fresh connections from its host cache
    // (modeled as random online peers). Keeps the paper's C constant.
    bool refilled = false;
    if (config_.maintain_degree && overlay_->online_count() > 1) {
      const double connect_size =
          size_factor(config_.sizing, MessageType::kConnect);
      std::size_t guard = 0;
      while (overlay_->degree(peer) < target_degree_ && guard++ < 20) {
        const PeerId q = overlay_->random_online_peer(rng, peer);
        if (lossy() &&
            !transport_->connect_handshake(peer, q,
                                           report.establish_traffic))
          continue;
        if (overlay_->connect(peer, q)) {
          ++report.refills;
          if (!lossy())
            report.establish_traffic +=
                connect_size * overlay_->link_cost(peer, q);
          forwarding_.invalidate(q);
          refilled = true;
        }
      }
    }

    if (!touched.empty() || refilled) {
      // The stepping peer can rebuild immediately (it has fresh tables);
      // this pass charges no additional probe overhead. Rebuilding into
      // the cache also re-arms it for the next round (the version
      // snapshot is taken after the phase-3 mutations).
      rebuild_into_cache(peer, report);
    }
  }

  // Phase 3 boundary audit: topology mutations (replacement, establishment,
  // degree refills) must leave the overlay symmetric, the cost tables
  // link-consistent, and every surviving forwarding entry live.
  if (invariant_audits_enabled()) {
    overlay_->debug_validate();
    tables_.debug_validate(*overlay_);
    forwarding_.debug_validate(*overlay_);
  }
}

RoundReport AceEngine::step_round(Rng& rng) {
  owner_.assert_held();
  RoundReport report;
  std::vector<PeerId> order = overlay_->online_peers();
  rng.shuffle(std::span<PeerId>{order});
  if (intra_parallel_enabled()) {
    run_batched(std::span<const PeerId>{order}, &rng, report);
  } else {
    for (const PeerId p : order) step_peer_with_slot(p, rng, report, nullptr);
  }
  lifetime_.merge(report);
  return report;
}

RoundReport AceEngine::rebuild_all_trees() {
  owner_.assert_held();
  RoundReport report;
  const std::vector<PeerId> order = overlay_->online_peers();
  if (intra_parallel_enabled()) {
    run_batched(std::span<const PeerId>{order}, nullptr, report);
  } else {
    for (const PeerId p : order) {
      ++report.peers_stepped;
      refresh_peer_tree(p, report, nullptr);
    }
  }
  // Establishment invalidates entries of peers refreshed earlier in the
  // pass; fix them up so every online peer leaves with a valid tree (no
  // extra overhead charged: the tables are already paid for this round).
  // The fix-up rebuild runs the same invariant audits as the primary pass.
  for (const PeerId p : overlay_->online_peers()) {
    if (forwarding_.has_entry(p)) continue;
    rebuild_into_cache(p, report);
  }
  lifetime_.merge(report);
  return report;
}

void AceEngine::set_subtask_runner(TrialRunner* runner) {
  subtasks_ = runner;
  lane_scratch_.clear();
  lane_scratch_.resize(runner != nullptr ? runner->subtask_lanes() : 1);
}

bool AceEngine::intra_parallel_enabled() const noexcept {
  // ACE_FORCE_FULL_REBUILD keeps the differential oracle sequential: every
  // peer is "stale" under it, so batching would degenerate to a
  // one-batch-per-closure-overlap crawl while complicating the oracle.
  return subtasks_ != nullptr && subtasks_->subtask_lanes() > 1 &&
         !force_full();
}

void AceEngine::collect_members(PeerId source, std::vector<PeerId>& out) {
  if (member_mark_.size() < overlay_->peer_count())
    member_mark_.resize(overlay_->peer_count());
  ++member_epoch_;
  out.clear();
  member_depths_.clear();
  out.push_back(source);
  member_depths_.push_back(0);
  member_mark_[source] = member_epoch_;
  for (std::size_t head = 0; head < out.size(); ++head) {
    const std::uint32_t d = member_depths_[head];
    if (d >= config_.closure_depth) continue;
    for (const Neighbor& n : overlay_->neighbors(out[head])) {
      const PeerId q = peer_of(n);
      if (member_mark_[q] == member_epoch_) continue;
      member_mark_[q] = member_epoch_;
      out.push_back(q);
      member_depths_.push_back(d + 1);
    }
  }
}

bool AceEngine::slot_valid(const RebuildSlot& slot) const {
  const std::size_t n = slot.closure.nodes.size();
  ACE_DCHECK_EQ(slot.versions.size(), n);
  for (LocalNodeId i{0}; i < n; ++i) {
    if (overlay_->topology_version(slot.closure.nodes[i]) !=
        slot.versions[i])
      return false;
  }
  return true;
}

void AceEngine::precompute_slot(PeerId peer, RebuildSlot& slot,
                                ClosureScratch& scratch) const {
  // Runs on pool workers: reads the overlay (frozen for the whole parallel
  // phase — mutations happen only in the sequential commit), writes only
  // this slot and this lane's arena. No owner_-guarded state is touched.
  build_closure_into(*overlay_, peer, config_.closure_depth, closure_edges(),
                     slot.closure, scratch);
  slot.versions.clear();
  slot.versions.reserve(slot.closure.nodes.size());
  for (const PeerId member : slot.closure.nodes)
    slot.versions.push_back(overlay_->topology_version(member));
  slot.tree = build_local_tree(slot.closure, config_.tree_kind);
  slot.routing = make_tree_routing(slot.closure, slot.tree, peer);
  slot.peer = peer;
}

std::size_t AceEngine::prepare_batch(std::span<const PeerId> order,
                                     std::size_t pos) {
  if (claim_mark_.size() < overlay_->peer_count())
    claim_mark_.resize(overlay_->peer_count());
  ++claim_epoch_;
  batch_.clear();
  if (record_batches_) last_batches_.emplace_back();
  std::size_t scan = pos;
  for (; scan < order.size(); ++scan) {
    const PeerId p = order[scan];
    if (!overlay_->is_online(p)) continue;
    // Predicted hit: rides along in the slice, nothing to precompute. The
    // prediction can be wrong (an earlier commit may bump a member before
    // this peer commits) — then the commit rebuilds inline; the reverse
    // (predicted-stale turning into a hit) cannot happen, versions only
    // move forward. The flag column keeps the common still-valid sweep off
    // the heavyweight entries entirely.
    if (cache_valid_[p] && cache_valid(cache_[p])) continue;
    // Stale: its post-rebuild membership comes from a fresh BFS (the
    // outdated cache entry cannot be trusted to name it).
    collect_members(p, member_scratch_);
    bool conflict = false;
    for (const PeerId m : member_scratch_) {
      if (claim_mark_[m] == claim_epoch_) {
        conflict = true;
        break;
      }
    }
    // Closure-overlap coloring invariant: no two peers in one batch share
    // a closure member. Overlap ends the batch — the overlapping peer
    // starts the next one (the claim set is fresh, so it always enters).
    if (conflict) break;
    for (const PeerId m : member_scratch_) claim_mark_[m] = claim_epoch_;
    batch_.push_back(BatchItem{scan, p});
    if (record_batches_) {
      last_batches_.back().peers.push_back(p);
      last_batches_.back().members.push_back(member_scratch_);
    }
  }
  if (record_batches_ && last_batches_.back().peers.empty())
    last_batches_.pop_back();

  if (slots_.size() < batch_.size()) slots_.resize(batch_.size());
  if (batch_.size() == 1) {
    // Pool dispatch for a singleton batch buys nothing; build it here
    // (lane 0 is the caller's lane either way).
    precompute_slot(batch_[0].peer, slots_[0], lane_scratch_[0]);
  } else if (!batch_.empty()) {
    subtasks_->run_subtasks(
        batch_.size(), [this](std::size_t lane, std::size_t index) {
          precompute_slot(batch_[index].peer, slots_[index],
                          lane_scratch_[lane]);
        });
  }
  return scan;
}

void AceEngine::run_batched(std::span<const PeerId> order, Rng* rng,
                            RoundReport& report) {
  ensure_cache_size();
  last_batches_.clear();
  std::size_t pos = 0;
  while (pos < order.size()) {
    const std::size_t end = prepare_batch(order, pos);
    ACE_DCHECK_GT(end, pos);
    // Sequential commit in the round's canonical order: ALL mutations,
    // probe charges, rng draws, and transport draws happen here, one peer
    // at a time, with byte-identical inputs to the sequential path — the
    // parallel phase only filled slots.
    std::size_t cursor = 0;
    for (std::size_t i = pos; i < end; ++i) {
      RebuildSlot* slot = nullptr;
      if (cursor < batch_.size() && batch_[cursor].order_pos == i)
        slot = &slots_[cursor++];
      const PeerId p = order[i];
      if (rng != nullptr) {
        step_peer_with_slot(p, *rng, report, slot);
      } else {
        if (!overlay_->is_online(p)) continue;
        ++report.peers_stepped;
        refresh_peer_tree(p, report, slot);
      }
    }
    ACE_DCHECK_EQ(cursor, batch_.size());
    pos = end;
  }
}

void AceEngine::on_peer_join(PeerId peer) {
  forwarding_.ensure_size(overlay_->peer_count());
  tables_.ensure_size(overlay_->peer_count());
  forwarding_.invalidate(peer);
  // Its new neighbors' trees are stale too.
  for (const auto& n : overlay_->neighbors(peer))
    forwarding_.invalidate(peer_of(n));
}

void AceEngine::on_peer_leave(PeerId peer,
                              std::span<const PeerId> former_neighbors) {
  forwarding_.ensure_size(overlay_->peer_count());
  forwarding_.invalidate(peer);
  for (const PeerId q : former_neighbors) forwarding_.invalidate(q);
}

StateDigest AceEngine::state_digest(const Simulator* sim) const {
  StateDigest snapshot;
  {
    Fnv1a d;
    overlay_->digest_into(d);
    snapshot.add("overlay-adjacency", d.value());
  }
  {
    Fnv1a d;
    tables_.digest_into(d);
    snapshot.add("cost-tables", d.value());
  }
  {
    Fnv1a d;
    forwarding_.digest_into(d);
    snapshot.add("forwarding-trees", d.value());
  }
  if (sim != nullptr) {
    Fnv1a d;
    sim->digest_into(d);
    snapshot.add("event-queue", d.value());
  }
  // Only present when a transport is attached, so kIdeal digests (and the
  // pinned golden digest) are bit-for-bit what they were before the
  // transport subsystem existed.
  if (transport_ != nullptr) {
    Fnv1a d;
    transport_->digest_into(d);
    snapshot.add("transport-inflight", d.value());
  }
  // Same rule for the cost oracle: only approximate runs (an oracle
  // attached to the overlay) carry the component, so exact runs digest
  // exactly as builds that predate the oracle subsystem.
  if (overlay_->cost_oracle() != nullptr) {
    Fnv1a d;
    overlay_->cost_oracle()->digest_into(d);
    snapshot.add("cost-oracle", d.value());
  }
  return snapshot;
}

}  // namespace ace
