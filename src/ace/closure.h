// h-neighbor closures (paper §3.4): the set of peers within h overlay hops
// of a source, together with the mini-topology the source learns about them
// from propagated cost tables. With depth h the source holds the cost table
// of every closure member, so it knows every overlay edge whose both
// endpoints lie inside the closure — the induced subgraph.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "overlay/overlay_network.h"
#include "util/check.h"

namespace ace {

// What the closure's local graph contains.
enum class ClosureEdges : std::uint8_t {
  // Only existing overlay links among closure members (what propagated
  // cost tables describe).
  kOverlayOnly,
  // Overlay links plus probed costs between every pair of the source's
  // *direct* neighbors (phase 1: "a peer can obtain the cost between any
  // pair of its logical neighbors"). The probed pairs are recorded so the
  // engine can charge probe overhead and establish chosen tree edges.
  kOverlayPlusNeighborProbes,
};

struct LocalClosure {
  // Closure members in BFS discovery order; nodes[0] is the source. Indexed
  // by LocalNodeId — the closure-local id domain (util/strong_id.h).
  IdVector<LocalNodeId, PeerId> nodes;
  // Overlay hop depth of each member (aligned with `nodes`).
  IdVector<LocalNodeId, std::uint32_t> depth;
  // Cumulative link cost along the BFS discovery path source -> member
  // (aligned with `nodes`). This is the distance a member's cost table
  // travels to reach the source, so it prices the h-hop table propagation.
  IdVector<LocalNodeId, Weight> path_cost;
  // Local graph over the members; local node i corresponds to
  // nodes[LocalNodeId{i}] — the raw kernel index IS the local id's value.
  // Edge weights are overlay link costs (and probed pair costs when
  // requested).
  Graph local;
  // Reverse map: (global peer, local id) pairs sorted by peer id. A
  // closure-sized sparse index, NOT a peer_count-sized flat array: the
  // engine caches one closure per peer, so a flat map here is O(peers^2)
  // across the cache — at 10^6 peers that is terabytes. to_local is a
  // binary search over closure-member-count entries (degree+1 at h=1); the
  // build's O(1) visited map lives in ClosureScratch, shared per lane.
  std::vector<std::pair<PeerId, LocalNodeId>> member_index;
  // Local-id pairs that exist only as probed costs, not as overlay links
  // (empty under ClosureEdges::kOverlayOnly). Sorted pairs (a < b).
  std::vector<std::pair<LocalNodeId, LocalNodeId>> probed_pairs;

  bool is_probed_pair(LocalNodeId a, LocalNodeId b) const;

  std::size_t size() const noexcept { return nodes.size(); }
  PeerId to_global(LocalNodeId local_id) const {
    ACE_CHECK_LT(local_id, nodes.size())
        << " — local id outside this closure";
    return nodes[local_id];
  }
  // kInvalidLocalNode when the peer is outside the closure.
  LocalNodeId to_local(PeerId peer) const;

  // Total table entries a source must receive to know this closure: the
  // sum of member degrees (each member's full neighbor cost table). Used
  // for the information-exchange overhead model.
  std::size_t table_entries() const;

  // Invariant auditor (ACE_CHECK-fatal): member/depth/path-cost alignment,
  // hop bound respected (depth <= hop_bound, BFS-monotone), the
  // member_index <-> nodes bijection, a well-formed induced graph, and
  // probed pairs that are sorted, in range, and present as local edges.
  void debug_validate(std::uint32_t hop_bound) const;
};

// Builds the h-neighbor closure of `source` over the current overlay.
// h == 0 yields just the source; h == 1 is the paper's default ACE scope
// (source + direct neighbors).
// Reusable scratch for build_closure_into: the direct-neighbor worklist of
// the pairwise-probe pass plus the BFS visited map. One instance per
// engine/driver (per lane under the batch path); the same buffers serve
// every rebuild, so the steady-state hot path allocates nothing.
struct ClosureScratch {
  std::vector<LocalNodeId> direct;
  // peer -> local id for the build in flight; all-invalid between builds
  // (build_closure_into restores the entries it set), so each build touches
  // only a closure-sized slice. Scratch-owned so a *cached* closure carries
  // only closure-sized state — see LocalClosure::member_index.
  IdVector<PeerId, LocalNodeId> visited;
};

// build_closure writing into `out`, reusing its vectors' capacity (and
// `scratch`) instead of allocating fresh ones. `out` may hold any previous
// closure; the result is byte-identical to build_closure's return value.
void build_closure_into(const OverlayNetwork& overlay, PeerId source,
                        std::uint32_t h, ClosureEdges edges, LocalClosure& out,
                        ClosureScratch& scratch);

LocalClosure build_closure(const OverlayNetwork& overlay, PeerId source,
                           std::uint32_t h,
                           ClosureEdges edges = ClosureEdges::kOverlayOnly);

}  // namespace ace
