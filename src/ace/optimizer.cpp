#include "ace/optimizer.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <stdexcept>

#include "transport/transport.h"

namespace ace {

const char* replacement_policy_name(ReplacementPolicy policy) noexcept {
  switch (policy) {
    case ReplacementPolicy::kRandom:
      return "random";
    case ReplacementPolicy::kNaive:
      return "naive";
    case ReplacementPolicy::kClosest:
      return "closest";
  }
  return "?";
}

void OptimizeOutcome::merge(const OptimizeOutcome& other) noexcept {
  probes += other.probes;
  probe_traffic += other.probe_traffic;
  cuts += other.cuts;
  adds += other.adds;
  trims += other.trims;
}

Phase3Optimizer::Phase3Optimizer(OptimizerConfig config) : config_{config} {
  if (config_.replacements_per_round == 0)
    throw std::invalid_argument{
        "Phase3Optimizer: replacements_per_round must be > 0"};
}

std::optional<Weight> Phase3Optimizer::probe(const OverlayNetwork& overlay,
                                             PeerId a, PeerId b,
                                             Transport* transport,
                                             OptimizeOutcome& outcome) const {
  ++outcome.probes;
  if (transport != nullptr) {
    return transport->probe(a, b, outcome.probe_traffic);
  }
  // Probe traffic is priced with the true wire delay (the messages really
  // cross the network); the value the prober learns is its belief — the
  // oracle estimate when one is attached, which is the same number when
  // not.
  const Weight wire = overlay.peer_delay(a, b);
  outcome.probe_traffic +=
      (size_factor(config_.sizing, MessageType::kProbe) +
       size_factor(config_.sizing, MessageType::kProbeReply)) *
      wire;
  return overlay.peer_cost_estimate(a, b);
}

namespace {

// Candidates for replacing non-flooding neighbor b of `peer`: b's current
// neighbors, excluding peer itself and peers already adjacent to `peer`.
std::vector<PeerId> candidate_list(const OverlayNetwork& overlay, PeerId peer,
                                   PeerId b) {
  std::vector<PeerId> out;
  for (const auto& n : overlay.neighbors(b)) {
    const PeerId q = peer_of(n);
    if (q == peer) continue;
    if (overlay.are_connected(peer, q)) continue;
    out.push_back(q);
  }
  return out;
}

}  // namespace

bool Phase3Optimizer::consider_candidate(OverlayNetwork& overlay, PeerId peer,
                                         PeerId b, PeerId candidate,
                                         Weight candidate_cost,
                                         OptimizeOutcome& outcome,
                                         std::vector<PeerId>& touched) const {
  if (!overlay.are_connected(peer, b)) return false;  // raced with a cut
  // A candidate refuses links at its hard capacity. This is deliberately
  // twice the trim ceiling: physically central peers naturally attract
  // links and serve as the overlay's long-range relays (their links are
  // tree links, so the trim rule leaves them alone); refusing them early
  // would destroy the shortcuts that keep response times low.
  if (config_.max_degree != 0 &&
      overlay.degree(candidate) >= 2 * config_.max_degree)
    return false;
  const Weight cost_pb = overlay.link_cost(peer, b);
  if (candidate_cost < cost_pb) {
    // Fig 4(b): H is closer than B -> replace, unless the cut would strand B.
    const bool can_cut = overlay.degree(b) > config_.min_degree;
    // When the cut is blocked the add has no paired removal; refuse it at
    // the hard capacity.
    if (!can_cut && config_.max_degree != 0 &&
        overlay.degree(peer) >= 2 * config_.max_degree)
      return false;
    if (overlay.connect(peer, candidate)) {
      ++outcome.adds;
      touched.push_back(candidate);
      if (can_cut && overlay.disconnect(peer, b)) {
        ++outcome.cuts;
        touched.push_back(b);
      }
      touched.push_back(peer);
      return true;
    }
    return false;
  }
  // Fig 4(c): B is closer than H, but P-H is still shorter than B-H, so the
  // P-H link is globally useful; keep both (B's own phase 3 cleans up B-H).
  // Skipped at the hard capacity — the add has no paired cut.
  if (config_.keep_rule &&
      (config_.max_degree == 0 ||
       overlay.degree(peer) < 2 * config_.max_degree)) {
    const auto cost_bh = overlay.link_cost(b, candidate);
    if (candidate_cost < cost_bh) {
      if (overlay.connect(peer, candidate)) {
        ++outcome.adds;
        touched.push_back(candidate);
        touched.push_back(peer);
        return true;
      }
    }
  }
  // Fig 4(d): nothing gained; caller probes the next candidate.
  return false;
}

void Phase3Optimizer::trim_excess(OverlayNetwork& overlay, PeerId peer,
                                  std::span<const PeerId> non_flooding,
                                  OptimizeOutcome& outcome,
                                  std::vector<PeerId>& touched) const {
  if (config_.max_degree == 0) return;
  while (overlay.degree(peer) > config_.max_degree) {
    // Cut the most expensive *non-flooding* link (redundant for the local
    // tree, so the search scope survives); stop when none remains.
    PeerId victim = kInvalidPeer;
    Weight worst = -1;
    for (const PeerId q : non_flooding) {
      if (!overlay.are_connected(peer, q)) continue;
      if (overlay.degree(q) <= config_.min_degree) continue;
      const Weight c = overlay.link_cost(peer, q);
      if (c > worst) {
        worst = c;
        victim = q;
      }
    }
    if (victim == kInvalidPeer) return;
    overlay.disconnect(peer, victim);
    ++outcome.trims;
    touched.push_back(victim);
    touched.push_back(peer);
  }
}

OptimizeOutcome Phase3Optimizer::optimize_peer(
    OverlayNetwork& overlay, PeerId peer,
    std::span<const PeerId> non_flooding, Rng& rng,
    std::vector<PeerId>& touched, Transport* transport) {
  OptimizeOutcome outcome;
  if (!overlay.is_online(peer)) return outcome;

  if (config_.policy == ReplacementPolicy::kNaive) {
    // Naive policy (paper's conclusion): disconnect the most expensive
    // neighbor outright if any neighbor-of-neighbor probes cheaper.
    for (std::size_t round = 0; round < config_.replacements_per_round;
         ++round) {
      PeerId worst = kInvalidPeer;
      Weight worst_cost = -1;
      for (const auto& n : overlay.neighbors(peer)) {
        const PeerId q = peer_of(n);
        if (n.weight > worst_cost && overlay.degree(q) > config_.min_degree) {
          worst_cost = n.weight;
          worst = q;
        }
      }
      if (worst == kInvalidPeer) break;
      const auto candidates = candidate_list(overlay, peer, worst);
      if (candidates.empty()) break;
      const PeerId pick =
          candidates[rng.next_below(candidates.size())];
      const std::optional<Weight> c =
          probe(overlay, peer, pick, transport, outcome);
      if (c.has_value() && *c < worst_cost) {
        if (overlay.connect(peer, pick)) {
          ++outcome.adds;
          overlay.disconnect(peer, worst);
          ++outcome.cuts;
          touched.push_back(pick);
          touched.push_back(worst);
          touched.push_back(peer);
        }
      }
    }
    trim_excess(overlay, peer, non_flooding, outcome, touched);
    return outcome;
  }

  // Random / closest policies walk the non-flooding neighbors.
  std::vector<PeerId> order(non_flooding.begin(), non_flooding.end());
  rng.shuffle(std::span<PeerId>{order});
  std::size_t examined = 0;
  for (const PeerId b : order) {
    if (examined >= config_.replacements_per_round) break;
    if (!overlay.are_connected(peer, b)) continue;  // stale classification
    const auto candidates = candidate_list(overlay, peer, b);
    if (candidates.empty()) continue;
    ++examined;

    if (config_.policy == ReplacementPolicy::kRandom) {
      const PeerId pick = candidates[rng.next_below(candidates.size())];
      const std::optional<Weight> c =
          probe(overlay, peer, pick, transport, outcome);
      if (c.has_value())
        consider_candidate(overlay, peer, b, pick, *c, outcome, touched);
    } else {  // kClosest: probe everything, act on the minimum
      PeerId best = kInvalidPeer;
      Weight best_cost = std::numeric_limits<Weight>::infinity();
      for (const PeerId candidate : candidates) {
        const std::optional<Weight> c =
            probe(overlay, peer, candidate, transport, outcome);
        if (c.has_value() && *c < best_cost) {
          best_cost = *c;
          best = candidate;
        }
      }
      if (best != kInvalidPeer)
        consider_candidate(overlay, peer, b, best, best_cost, outcome,
                           touched);
    }
  }
  trim_excess(overlay, peer, non_flooding, outcome, touched);
  return outcome;
}

}  // namespace ace
