// AceEngine: orchestrates the three ACE phases for every peer and accounts
// all optimization overhead. This is the library's primary public entry
// point together with ace/p2p_lab.h.
//
// Per peer step (the unit a live peer runs twice a minute in the paper's
// dynamic experiments):
//   phase 1 - probe direct neighbors, exchange cost tables (overhead);
//   ...       propagate tables h hops to assemble the h-neighbor closure
//             (overhead grows with h and the connectivity density C);
//   phase 2 - Prim MST over the closure; classify flooding/non-flooding
//             neighbors and install the flooding set in the forwarding
//             table used by tree-routed search;
//   phase 3 - adaptive connection replacement (Phase3Optimizer).
#pragma once

#include <cstdint>
#include <vector>

#include "ace/closure.h"
#include "ace/cost_table.h"
#include "ace/optimizer.h"
#include "ace/tree_builder.h"
#include "search/flooding.h"
#include "transport/transport.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace ace {

class Simulator;

// How the h-hop table-propagation overhead is priced (DESIGN.md §3).
enum class OverheadModel : std::uint8_t {
  // Each extra closure level costs one more digest exchange with direct
  // neighbors (aggregation + change-suppression bound the digest to one
  // table): overhead grows ~linearly in h and saturates when the closure
  // stops growing. This matches the paper's Figure 12-16 shapes and is the
  // default.
  kBoundedDigest,
  // Every closure member's full table is shipped along its BFS path to the
  // source each round: a worst-case accounting that grows with the closure
  // size (ablation: bench_ablation_overhead).
  kFullPropagation,
};

struct AceConfig {
  // Closure depth h (paper default 1; Figures 11-16 sweep 1..8).
  std::uint32_t closure_depth = 1;
  OverheadModel overhead_model = OverheadModel::kBoundedDigest;
  TreeKind tree_kind = TreeKind::kMinimumSpanning;
  // Phase 1 per the paper: the source knows the cost between ANY pair of
  // its direct neighbors (pairwise probes), so the local MST ranges over
  // the complete neighbor cost graph, not just existing overlay links.
  bool pairwise_neighbor_probes = true;
  // Realize MST edges between unconnected neighbor pairs as actual overlay
  // connections (the "Connection Establishment" in ACE): the source expects
  // neighbor B to forward its query to neighbor C, which needs a B-C link.
  bool establish_tree_links = true;
  // At most this many new links per peer step (smooths the initial
  // transient; 0 = unlimited).
  std::size_t max_establish_per_step = 2;
  // Optional: after each step a peer below the overlay's initial mean
  // degree reconnects to random online peers (Gnutella's keep-N-connections
  // behaviour). Off by default: the constant stream of fresh random
  // long-haul links fights the optimizer and models a *different* client
  // policy; the dynamic experiments already get this effect from churn
  // joins. Ablated in bench_ablation_policy.
  bool maintain_degree = false;
  OptimizerConfig optimizer{};
  MessageSizing sizing{};
  // When > 0 overrides optimizer.max_degree; when 0 the engine derives the
  // trim ceiling from the overlay's mean degree at construction (+slack).
  std::size_t max_degree = 0;
  std::size_t degree_slack = 2;
  // Phase 3 runs only every `phase3_every` steps (1 = every step).
  std::size_t phase3_every = 1;
  // kIdeal (default): probes/exchanges/establishments are accounted
  // analytically and always succeed — the paper-faithful mode, golden
  // digests depend on it. kLossy: they travel an attached Transport
  // (attach_transport) and can time out, retry, arrive stale, or fail.
  TransportMode transport = TransportMode::kIdeal;
  // Disables the incremental closure/tree cache for this engine: every
  // step runs the full BFS + probe assembly + Prim + routing build (the
  // differential oracle, DESIGN.md §11). The ACE_FORCE_FULL_REBUILD
  // environment variable (util/check.h) forces the same process-wide.
  // Results are bit-identical either way.
  bool force_full_rebuild = false;
};

// Simulator-side cache effectiveness counters. These have no protocol
// meaning — the paper's peers probe and exchange every round regardless,
// and all overhead accounting is unchanged by caching — they count saved
// simulator CPU: how often a step was served from the incremental cache
// instead of re-running the closure BFS and tree build.
struct CacheCounters {
  std::size_t closure_builds = 0;    // full BFS + induced-subgraph builds
  std::size_t closure_hits = 0;      // steps served from the peer cache
  std::size_t invalidations = 0;     // valid entries found version-stale
  std::size_t tree_builds = 0;       // Prim/SPT runs
  std::size_t snapshot_rebuilds = 0; // query-path adjacency snapshots

  void merge(const CacheCounters& other) noexcept {
    closure_builds += other.closure_builds;
    closure_hits += other.closure_hits;
    invalidations += other.invalidations;
    tree_builds += other.tree_builds;
    snapshot_rebuilds += other.snapshot_rebuilds;
  }
};

// Everything one optimization round cost and changed.
struct RoundReport {
  ProbeOverhead phase1;           // neighbor probes + 1-hop table exchange
  double closure_traffic = 0;     // h-hop table propagation (size x delay)
  std::size_t closure_entries = 0;
  std::size_t pair_probes = 0;    // neighbor-pair cost probes
  double pair_probe_traffic = 0;
  std::size_t establishments = 0; // new links created to realize trees
  double establish_traffic = 0;   // CONNECT handshakes
  std::size_t refills = 0;        // random links re-opened to hold degree
  OptimizeOutcome phase3;
  std::size_t peers_stepped = 0;
  CacheCounters cache;            // simulator CPU saved, not traffic

  // Total overhead traffic in the same units as query traffic cost.
  double total_overhead() const noexcept {
    return phase1.total() + closure_traffic + pair_probe_traffic +
           establish_traffic + phase3.probe_traffic;
  }
  void merge(const RoundReport& other) noexcept;
};

class AceEngine {
 public:
  // `overlay` must outlive the engine.
  AceEngine(OverlayNetwork& overlay, AceConfig config);

  const AceConfig& config() const noexcept { return config_; }
  const ForwardingTable& forwarding() const noexcept { return forwarding_; }

  // Routes protocol messages through `transport` when the config says
  // kLossy (required before the first step in that mode; must outlive the
  // engine). Also adds a "transport-inflight" component to state_digest.
  void attach_transport(Transport* transport) noexcept {
    transport_ = transport;
  }
  const Transport* transport() const noexcept { return transport_; }

  // Runs one full ACE step (phases 1-3) for a single peer.
  void step_peer(PeerId peer, Rng& rng, RoundReport& report);

  // One synchronized round: every online peer steps once, in random order
  // (the algorithm is fully distributed; random order avoids an artificial
  // global schedule). Returns the aggregated report.
  RoundReport step_round(Rng& rng);

  // Phase 1+2 only, for every online peer: refresh trees without mutating
  // the topology (used to initialize tree routing before measurement).
  RoundReport rebuild_all_trees();

  // Churn hooks: drop stale forwarding state.
  void on_peer_join(PeerId peer);
  void on_peer_leave(PeerId peer, std::span<const PeerId> former_neighbors);

  // Cumulative overhead across all steps so far.
  const RoundReport& lifetime_report() const noexcept { return lifetime_; }

  // Snapshot digest of every protocol-visible state component, taken at
  // phase/round boundaries. Components are named so a mismatch between two
  // runs identifies the first diverging subsystem (see
  // first_divergence()). Pass the driving simulator to include the pending
  // event timeline; null skips that component (static experiments).
  StateDigest state_digest(const Simulator* sim = nullptr) const;

 private:
  // One peer's incremental state: the last closure/tree it built, plus the
  // topology version of every closure member at build time. The
  // cached closure is always the PRE-probe build (ideal pair costs, full
  // probed_pairs list) — exactly what build_closure would return today
  // whenever no member's version moved — so a cache hit replays the same
  // probe schedule, charges, and transport draws as a fresh build.
  struct PeerCacheEntry {
    bool valid = false;
    // True when `tree` was built from `closure` unmodified; false when the
    // last round's lossy probe failures pruned edges first (the pruned
    // closure is per-round state and is not cached).
    bool tree_from_pre_probe = false;
    LocalClosure closure;
    LocalTree tree;
    // Aligned with closure.nodes (same LocalNodeId index space).
    IdVector<LocalNodeId, TopologyVersion> member_versions;
  };

  // True when protocol messages travel the lossy transport; ACE_CHECKs
  // that one is attached.
  bool lossy() const;

  // Charges the h-hop table-propagation overhead for `peer`'s closure
  // under the configured OverheadModel.
  void charge_closure(PeerId peer, const LocalClosure& closure,
                      RoundReport& report) const;

  ClosureEdges closure_edges() const noexcept {
    return config_.pairwise_neighbor_probes
               ? ClosureEdges::kOverlayPlusNeighborProbes
               : ClosureEdges::kOverlayOnly;
  }

  // O(|closure|) staleness scan: the cached closure is reusable iff no
  // member's topology version moved since the snapshot (every mutation
  // that can change the closure bumps at least one member — see
  // OverlayNetwork versioning).
  bool cache_valid(const PeerCacheEntry& entry) const ACE_REQUIRES(owner_);
  void snapshot_versions(PeerCacheEntry& entry) const ACE_REQUIRES(owner_);

  // Full closure + tree + routing rebuild for `peer` straight into its
  // cache entry (audited, counted, installed). Charges no probe overhead:
  // used by the phase-3 immediate rebuild and the rebuild_all_trees fix-up
  // pass, where the round's tables are already paid for.
  void rebuild_into_cache(PeerId peer, RoundReport& report)
      ACE_REQUIRES(owner_);

  // Phases 1-2 for one peer: probe, build closure + tree (or validate the
  // cached ones), establish recommended links, install the flooding set.
  // Returns the step's final tree (owned by the peer's cache entry) so
  // step_peer can feed phase 3.
  const LocalTree& refresh_peer_tree(PeerId peer, RoundReport& report)
      ACE_REQUIRES(owner_);

  OverlayNetwork* overlay_;
  AceConfig config_;
  Transport* transport_ = nullptr;
  Phase3Optimizer optimizer_;
  CostTableStore tables_;
  ForwardingTable forwarding_;
  RoundReport lifetime_;
  std::size_t steps_ = 0;
  // Connectivity-density target (initial online mean degree, rounded).
  std::size_t target_degree_ = 0;
  // Combined force-full-rebuild switch: config flag OR the process-wide
  // ACE_FORCE_FULL_REBUILD toggle (read live, so tests can flip it).
  bool force_full() const noexcept {
    return config_.force_full_rebuild || force_full_rebuild_enabled();
  }

  // An engine serves one trial/thread (the trial runner gives each trial
  // its own Scenario + engine); the capability makes that statically
  // checkable for the cache machinery below.
  ThreadOwnership owner_;
  // Incremental per-peer cache, indexed by PeerId.
  IdVector<PeerId, PeerCacheEntry> cache_ ACE_GUARDED_BY(owner_);
  // Rebuild scratch shared by every closure build this engine runs: after
  // the first round the BFS/induced-subgraph path allocates nothing.
  ClosureScratch closure_scratch_ ACE_GUARDED_BY(owner_);
};

}  // namespace ace
