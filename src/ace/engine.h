// AceEngine: orchestrates the three ACE phases for every peer and accounts
// all optimization overhead. This is the library's primary public entry
// point together with ace/p2p_lab.h.
//
// Per peer step (the unit a live peer runs twice a minute in the paper's
// dynamic experiments):
//   phase 1 - probe direct neighbors, exchange cost tables (overhead);
//   ...       propagate tables h hops to assemble the h-neighbor closure
//             (overhead grows with h and the connectivity density C);
//   phase 2 - Prim MST over the closure; classify flooding/non-flooding
//             neighbors and install the flooding set in the forwarding
//             table used by tree-routed search;
//   phase 3 - adaptive connection replacement (Phase3Optimizer).
#pragma once

#include <cstdint>
#include <vector>

#include "ace/closure.h"
#include "ace/cost_table.h"
#include "ace/optimizer.h"
#include "ace/tree_builder.h"
#include "search/flooding.h"
#include "transport/transport.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace ace {

class Simulator;
class TrialRunner;

// How the h-hop table-propagation overhead is priced (DESIGN.md §3).
enum class OverheadModel : std::uint8_t {
  // Each extra closure level costs one more digest exchange with direct
  // neighbors (aggregation + change-suppression bound the digest to one
  // table): overhead grows ~linearly in h and saturates when the closure
  // stops growing. This matches the paper's Figure 12-16 shapes and is the
  // default.
  kBoundedDigest,
  // Every closure member's full table is shipped along its BFS path to the
  // source each round: a worst-case accounting that grows with the closure
  // size (ablation: bench_ablation_overhead).
  kFullPropagation,
};

struct AceConfig {
  // Closure depth h (paper default 1; Figures 11-16 sweep 1..8).
  std::uint32_t closure_depth = 1;
  OverheadModel overhead_model = OverheadModel::kBoundedDigest;
  TreeKind tree_kind = TreeKind::kMinimumSpanning;
  // Phase 1 per the paper: the source knows the cost between ANY pair of
  // its direct neighbors (pairwise probes), so the local MST ranges over
  // the complete neighbor cost graph, not just existing overlay links.
  bool pairwise_neighbor_probes = true;
  // Realize MST edges between unconnected neighbor pairs as actual overlay
  // connections (the "Connection Establishment" in ACE): the source expects
  // neighbor B to forward its query to neighbor C, which needs a B-C link.
  bool establish_tree_links = true;
  // At most this many new links per peer step (smooths the initial
  // transient; 0 = unlimited).
  std::size_t max_establish_per_step = 2;
  // Optional: after each step a peer below the overlay's initial mean
  // degree reconnects to random online peers (Gnutella's keep-N-connections
  // behaviour). Off by default: the constant stream of fresh random
  // long-haul links fights the optimizer and models a *different* client
  // policy; the dynamic experiments already get this effect from churn
  // joins. Ablated in bench_ablation_policy.
  bool maintain_degree = false;
  OptimizerConfig optimizer{};
  MessageSizing sizing{};
  // When > 0 overrides optimizer.max_degree; when 0 the engine derives the
  // trim ceiling from the overlay's mean degree at construction (+slack).
  std::size_t max_degree = 0;
  std::size_t degree_slack = 2;
  // Phase 3 runs only every `phase3_every` steps (1 = every step).
  std::size_t phase3_every = 1;
  // kIdeal (default): probes/exchanges/establishments are accounted
  // analytically and always succeed — the paper-faithful mode, golden
  // digests depend on it. kLossy: they travel an attached Transport
  // (attach_transport) and can time out, retry, arrive stale, or fail.
  TransportMode transport = TransportMode::kIdeal;
  // Disables the incremental closure/tree cache for this engine: every
  // step runs the full BFS + probe assembly + Prim + routing build (the
  // differential oracle, DESIGN.md §11). The ACE_FORCE_FULL_REBUILD
  // environment variable (util/check.h) forces the same process-wide.
  // Results are bit-identical either way.
  bool force_full_rebuild = false;
};

// Simulator-side cache effectiveness counters. These have no protocol
// meaning — the paper's peers probe and exchange every round regardless,
// and all overhead accounting is unchanged by caching — they count saved
// simulator CPU: how often a step was served from the incremental cache
// instead of re-running the closure BFS and tree build.
struct CacheCounters {
  std::size_t closure_builds = 0;    // full BFS + induced-subgraph builds
  std::size_t closure_hits = 0;      // steps served from the peer cache
  std::size_t invalidations = 0;     // valid entries found version-stale
  std::size_t tree_builds = 0;       // Prim/SPT runs
  std::size_t snapshot_rebuilds = 0; // query-path adjacency snapshots

  void merge(const CacheCounters& other) noexcept {
    closure_builds += other.closure_builds;
    closure_hits += other.closure_hits;
    invalidations += other.invalidations;
    tree_builds += other.tree_builds;
    snapshot_rebuilds += other.snapshot_rebuilds;
  }
};

// Everything one optimization round cost and changed.
struct RoundReport {
  ProbeOverhead phase1;           // neighbor probes + 1-hop table exchange
  double closure_traffic = 0;     // h-hop table propagation (size x delay)
  std::size_t closure_entries = 0;
  std::size_t pair_probes = 0;    // neighbor-pair cost probes
  double pair_probe_traffic = 0;
  std::size_t establishments = 0; // new links created to realize trees
  double establish_traffic = 0;   // CONNECT handshakes
  std::size_t refills = 0;        // random links re-opened to hold degree
  OptimizeOutcome phase3;
  std::size_t peers_stepped = 0;
  CacheCounters cache;            // simulator CPU saved, not traffic

  // Total overhead traffic in the same units as query traffic cost.
  double total_overhead() const noexcept {
    return phase1.total() + closure_traffic + pair_probe_traffic +
           establish_traffic + phase3.probe_traffic;
  }
  void merge(const RoundReport& other) noexcept;
};

class AceEngine {
 public:
  // `overlay` must outlive the engine.
  AceEngine(OverlayNetwork& overlay, AceConfig config);

  const AceConfig& config() const noexcept { return config_; }
  const ForwardingTable& forwarding() const noexcept { return forwarding_; }

  // Routes protocol messages through `transport` when the config says
  // kLossy (required before the first step in that mode; must outlive the
  // engine). Also adds a "transport-inflight" component to state_digest.
  void attach_transport(Transport* transport) noexcept {
    transport_ = transport;
  }
  const Transport* transport() const noexcept { return transport_; }

  // Runs one full ACE step (phases 1-3) for a single peer.
  void step_peer(PeerId peer, Rng& rng, RoundReport& report);

  // Intra-trial parallelism (DESIGN.md §15). When a runner with a pool is
  // attached, step_round / rebuild_all_trees partition each round's stale
  // peers into conflict-free batches (no two batch members share a closure
  // member), precompute their closure/tree/routing on the pool, and commit
  // in the round's canonical order — results are byte-identical to the
  // sequential path at any lane count. nullptr (the default) and
  // single-lane runners run the plain sequential path; so does
  // ACE_FORCE_FULL_REBUILD (the differential oracle stays single-minded).
  // `runner` must outlive the engine. One engine still serves one trial:
  // the engine fans work *out* to the pool, but its public API remains
  // single-owner (ThreadOwnership below).
  void set_subtask_runner(TrialRunner* runner);

  // Test/diagnostic hook: record the conflict-free batches the next
  // batched round forms (peers plus their formation-time closure
  // membership). Off by default — recording copies every member list.
  void set_record_batches(bool on) noexcept { record_batches_ = on; }
  struct RebuildBatch {
    std::vector<PeerId> peers;  // rebuilding peers, commit order
    // members[i] = formation-time closure membership of peers[i].
    std::vector<std::vector<PeerId>> members;
  };
  // Batches of the last batched round (empty when the sequential path ran
  // or recording is off).
  const std::vector<RebuildBatch>& last_rebuild_batches() const noexcept {
    return last_batches_;
  }

  // One synchronized round: every online peer steps once, in random order
  // (the algorithm is fully distributed; random order avoids an artificial
  // global schedule). Returns the aggregated report.
  RoundReport step_round(Rng& rng);

  // Phase 1+2 only, for every online peer: refresh trees without mutating
  // the topology (used to initialize tree routing before measurement).
  RoundReport rebuild_all_trees();

  // Churn hooks: drop stale forwarding state.
  void on_peer_join(PeerId peer);
  void on_peer_leave(PeerId peer, std::span<const PeerId> former_neighbors);

  // Cumulative overhead across all steps so far.
  const RoundReport& lifetime_report() const noexcept { return lifetime_; }

  // Snapshot digest of every protocol-visible state component, taken at
  // phase/round boundaries. Components are named so a mismatch between two
  // runs identifies the first diverging subsystem (see
  // first_divergence()). Pass the driving simulator to include the pending
  // event timeline; null skips that component (static experiments).
  StateDigest state_digest(const Simulator* sim = nullptr) const;

 private:
  // One peer's incremental state: the last closure/tree it built, plus the
  // topology version of every closure member at build time. The
  // cached closure is always the PRE-probe build (ideal pair costs, full
  // probed_pairs list) — exactly what build_closure would return today
  // whenever no member's version moved — so a cache hit replays the same
  // probe schedule, charges, and transport draws as a fresh build.
  // The entry's validity and pre-probe flags live in the flat
  // cache_valid_/cache_pre_probe_ columns below, not here: the
  // prepare_batch predicted-hit sweep reads one byte per peer instead of
  // dragging each entry's closure/tree buffers through cache.
  struct PeerCacheEntry {
    LocalClosure closure;
    LocalTree tree;
    // Aligned with closure.nodes (same LocalNodeId index space).
    IdVector<LocalNodeId, TopologyVersion> member_versions;
  };

  // True when protocol messages travel the lossy transport; ACE_CHECKs
  // that one is attached.
  bool lossy() const;

  // Charges the h-hop table-propagation overhead for `peer`'s closure
  // under the configured OverheadModel.
  void charge_closure(PeerId peer, const LocalClosure& closure,
                      RoundReport& report) const;

  ClosureEdges closure_edges() const noexcept {
    return config_.pairwise_neighbor_probes
               ? ClosureEdges::kOverlayPlusNeighborProbes
               : ClosureEdges::kOverlayOnly;
  }

  // O(|closure|) staleness scan: the cached closure is reusable iff no
  // member's topology version moved since the snapshot (every mutation
  // that can change the closure bumps at least one member — see
  // OverlayNetwork versioning).
  bool cache_valid(const PeerCacheEntry& entry) const ACE_REQUIRES(owner_);
  void snapshot_versions(PeerCacheEntry& entry) const ACE_REQUIRES(owner_);

  // Grows all peer-cache columns (entries + flag arrays) to the current
  // peer count; the SoA columns must stay index-aligned.
  void ensure_cache_size() ACE_REQUIRES(owner_);

  // Full closure + tree + routing rebuild for `peer` straight into its
  // cache entry (audited, counted, installed). Charges no probe overhead:
  // used by the phase-3 immediate rebuild and the rebuild_all_trees fix-up
  // pass, where the round's tables are already paid for.
  void rebuild_into_cache(PeerId peer, RoundReport& report)
      ACE_REQUIRES(owner_);

  // One peer's precomputed rebuild, produced by a pool worker during the
  // parallel phase of a batch (DESIGN.md §15): the pre-probe closure, the
  // member-version snapshot taken at build time, and the tree/routing
  // derived from it. Adopted at commit iff no member version moved since
  // (slot_valid) — the same invariant that makes cache hits sound — so the
  // adopted bytes equal what an inline rebuild would produce; otherwise
  // the slot is discarded and the commit rebuilds inline.
  struct RebuildSlot {
    PeerId peer = kInvalidPeer;
    LocalClosure closure;
    IdVector<LocalNodeId, TopologyVersion> versions;
    LocalTree tree;
    TreeRouting routing;
  };

  // Phases 1-2 for one peer: probe, build closure + tree (or validate the
  // cached ones), establish recommended links, install the flooding set.
  // `slot` (may be null) offers a precomputed rebuild to adopt. Returns the
  // step's final tree (owned by the peer's cache entry) so step_peer can
  // feed phase 3.
  const LocalTree& refresh_peer_tree(PeerId peer, RoundReport& report,
                                     RebuildSlot* slot) ACE_REQUIRES(owner_);

  // step_peer body with an optional precomputed slot for the refresh.
  void step_peer_with_slot(PeerId peer, Rng& rng, RoundReport& report,
                           RebuildSlot* slot) ACE_REQUIRES(owner_);

  // True when a pooled subtask runner is attached and force-full mode is
  // off: step_round / rebuild_all_trees take the batched path.
  bool intra_parallel_enabled() const noexcept;

  // Membership-only closure BFS (same member set build_closure_into
  // discovers, no induced subgraph): batch formation must predict a stale
  // peer's post-rebuild membership, which its outdated cache entry cannot
  // provide. Epoch-marked visited set; allocation-free in steady state.
  void collect_members(PeerId source, std::vector<PeerId>& out)
      ACE_REQUIRES(owner_);

  // Greedy conflict-free batch formation over order[pos..): predicted-hit
  // peers ride along unclaimed; each predicted-stale peer claims its
  // closure members and the first overlap ends the batch (two peers whose
  // closures share a member never rebuild concurrently). Fills batch_,
  // precomputes slots_ on the pool, returns the slice end. Purely a
  // discard-minimizer: commit-time slot validation is what guarantees
  // correctness against phase-3 mutations no coloring can predict.
  std::size_t prepare_batch(std::span<const PeerId> order, std::size_t pos)
      ACE_REQUIRES(owner_);

  // Parallel-phase worker body: build `slot` for `peer` using a per-lane
  // scratch arena. Reads the overlay only; writes nothing guarded by
  // owner_ (slots and lane arenas are lane/index-partitioned).
  void precompute_slot(PeerId peer, RebuildSlot& slot,
                       ClosureScratch& scratch) const;

  // O(|closure|) commit-time validation: every member version unmoved
  // since the parallel build.
  bool slot_valid(const RebuildSlot& slot) const;

  // Batched round driver shared by step_round (rng != nullptr: full steps)
  // and rebuild_all_trees (rng == nullptr: refresh only): form a batch,
  // precompute in parallel, commit sequentially in `order` order.
  void run_batched(std::span<const PeerId> order, Rng* rng,
                   RoundReport& report) ACE_REQUIRES(owner_);

  OverlayNetwork* overlay_;
  AceConfig config_;
  Transport* transport_ = nullptr;
  Phase3Optimizer optimizer_;
  CostTableStore tables_;
  ForwardingTable forwarding_;
  RoundReport lifetime_;
  std::size_t steps_ = 0;
  // Connectivity-density target (initial online mean degree, rounded).
  std::size_t target_degree_ = 0;
  // Combined force-full-rebuild switch: config flag OR the process-wide
  // ACE_FORCE_FULL_REBUILD toggle (read live, so tests can flip it).
  bool force_full() const noexcept {
    return config_.force_full_rebuild || force_full_rebuild_enabled();
  }

  // An engine serves one trial/thread (the trial runner gives each trial
  // its own Scenario + engine); the capability makes that statically
  // checkable for the cache machinery below.
  ThreadOwnership owner_;
  // Incremental per-peer cache, indexed by PeerId. Structure-of-arrays
  // (ROADMAP item 1): the hot flags ride in flat byte columns alongside
  // the heavy entries, so whole-table scans touch contiguous bytes.
  IdVector<PeerId, PeerCacheEntry> cache_ ACE_GUARDED_BY(owner_);
  // 1 iff cache_[p] holds a version-snapshotted closure (uint8_t, not
  // vector<bool>: IdVector indexing returns real references).
  IdVector<PeerId, std::uint8_t> cache_valid_ ACE_GUARDED_BY(owner_);
  // 1 iff cache_[p].tree was built from the cached closure unmodified; 0
  // when the last round's lossy probe failures pruned edges first (the
  // pruned closure is per-round state and is not cached).
  IdVector<PeerId, std::uint8_t> cache_pre_probe_ ACE_GUARDED_BY(owner_);
  // Rebuild scratch shared by every sequential closure build this engine
  // runs: after the first round the BFS/induced-subgraph path allocates
  // nothing. (Parallel builds use lane_scratch_ instead.)
  ClosureScratch closure_scratch_ ACE_GUARDED_BY(owner_);

  // --- Intra-trial batch machinery (DESIGN.md §15) -----------------------
  // Not guarded by owner_: slots_/lane_scratch_ are written by pool
  // workers during the parallel phase under the lane/index partition
  // discipline (worker lane L touches lane_scratch_[L] only, subtask i
  // touches slots_[i] only — the ace-lint worker-shared-write rule checks
  // the lambda); everything else is touched only between run_subtasks
  // calls, i.e. from the owning thread.
  TrialRunner* subtasks_ = nullptr;
  // One closure-build arena per subtask lane (lane 0 = the caller).
  std::vector<ClosureScratch> lane_scratch_;
  // Per-batch precompute slots, indexed by position in batch_.
  std::vector<RebuildSlot> slots_;
  struct BatchItem {
    std::size_t order_pos = 0;  // index into the round's commit order
    PeerId peer = kInvalidPeer;
  };
  std::vector<BatchItem> batch_;
  // Epoch-stamped flat claim marks for batch formation (claimed closure
  // members of the batch under construction) and the membership-BFS
  // visited set — linear scans over PeerId-indexed arrays, no hashing.
  IdVector<PeerId, std::uint64_t> claim_mark_;
  std::uint64_t claim_epoch_ = 0;
  IdVector<PeerId, std::uint64_t> member_mark_;
  std::uint64_t member_epoch_ = 0;
  std::vector<PeerId> member_scratch_;
  std::vector<std::uint32_t> member_depths_;
  bool record_batches_ = false;
  std::vector<RebuildBatch> last_batches_;
};

}  // namespace ace
