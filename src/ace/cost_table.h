// ACE phase 1: neighbor cost tables. Each peer probes the network delay to
// its immediate logical neighbors and records the results; neighboring
// peers exchange their tables so a peer learns the cost between any pair of
// its own neighbors. In simulation the probed value is the physical
// shortest-path delay, and every probe/exchange is charged to the overhead
// account (that overhead is exactly what Figures 12-16 trade off against
// query-traffic savings).
#pragma once

#include <cstddef>
#include <vector>

#include "overlay/overlay_network.h"
#include "proto/message.h"

namespace ace {

class Transport;

struct CostEntry {
  PeerId neighbor = kInvalidPeer;
  Weight cost = 0;
};

// One peer's neighbor cost table.
class NeighborCostTable {
 public:
  void clear() { entries_.clear(); }
  void record(PeerId neighbor, Weight cost);
  bool contains(PeerId neighbor) const;
  // Throws std::out_of_range when absent.
  Weight cost_to(PeerId neighbor) const;
  std::size_t size() const noexcept { return entries_.size(); }
  const std::vector<CostEntry>& entries() const noexcept { return entries_; }

  // Monotone refresh counter carried by cost-table messages under the
  // lossy transport so receivers can reject reordered (stale) updates.
  // Deliberately NOT part of digest_into: kIdeal never bumps it, and the
  // table *contents* are what protocol decisions read.
  std::uint64_t version() const noexcept { return version_; }
  void bump_version() noexcept { ++version_; }

 private:
  std::vector<CostEntry> entries_;
  std::uint64_t version_ = 0;
};

// Overhead charged while refreshing cost information; aggregated per round.
struct ProbeOverhead {
  std::size_t probes = 0;       // PROBE/PROBE_REPLY exchanges
  double probe_traffic = 0;     // size x delay units
  std::size_t exchanges = 0;    // COST_TABLE messages
  double exchange_traffic = 0;  // size x delay units

  double total() const noexcept { return probe_traffic + exchange_traffic; }
  void merge(const ProbeOverhead& other) noexcept;
};

// Store of every peer's table, refreshed from the overlay. Probing a
// neighbor costs one PROBE + PROBE_REPLY over the link; a table exchange
// costs one COST_TABLE message (size proportional to entries) per neighbor.
class CostTableStore {
 public:
  explicit CostTableStore(const MessageSizing& sizing = {});

  void ensure_size(std::size_t peers);

  // Re-probes all of `peer`'s current neighbors, replacing its table, and
  // charges probe overhead.
  void refresh_peer(const OverlayNetwork& overlay, PeerId peer,
                    ProbeOverhead& overhead);

  // Charges the phase-1 table-exchange overhead for `peer`: its table is
  // sent to each of its neighbors (the paper's periodic exchange).
  void charge_exchange(const OverlayNetwork& overlay, PeerId peer,
                       ProbeOverhead& overhead) const;

  // Lossy-transport variant of refresh_peer: each neighbor is probed
  // through `transport` (timeouts, retries, loss). A failed probe keeps the
  // previous refresh's entry when one exists — stale-but-correct beats
  // absent, and link costs are constant physical delays so a stale entry
  // for a still-connected neighbor is never wrong. Bumps the table version.
  void refresh_peer_via(const OverlayNetwork& overlay, PeerId peer,
                        Transport& transport, ProbeOverhead& overhead);

  // Lossy-transport variant of charge_exchange: pushes `peer`'s versioned
  // table to each neighbor as real kCostTable messages (receivers reject
  // reordered stale versions at delivery time).
  void publish_via(const OverlayNetwork& overlay, PeerId peer,
                   Transport& transport, ProbeOverhead& overhead) const;

  const NeighborCostTable& table(PeerId peer) const;
  NeighborCostTable& table(PeerId peer);

  // Cost between two peers as known from the stored tables: a's table is
  // consulted first, then b's (tables are symmetric in steady state but can
  // drift under churn). Returns kUnreachable when neither knows.
  Weight known_cost(PeerId a, PeerId b) const;

  // Invariant auditor (ACE_CHECK-fatal): entries reference valid distinct
  // peers with positive costs and no duplicates; mutually-recorded costs
  // are symmetric; and whenever the overlay link still exists the recorded
  // cost matches it (probes copy the link weight, which is the constant
  // physical delay, so drift here means corruption — not churn).
  void debug_validate(const OverlayNetwork& overlay) const;

  // Digest of every stored table. Entry order within one table follows the
  // neighbor list at refresh time (history-dependent), so entries are
  // hashed order-insensitively; tables are chained in peer order.
  void digest_into(Fnv1a& digest) const;

 private:
  // ace-digest: exempt(sizing_): pricing constants fixed at construction;
  // their effect is digested through the traffic totals they produce.
  MessageSizing sizing_;
  IdVector<PeerId, NeighborCostTable> tables_;
};

}  // namespace ace
