// Umbrella header: the library's public API in one include.
//
//   #include "ace/p2p_lab.h"
//
//   ace::ScenarioConfig cfg;            // physical + overlay + content
//   ace::Scenario scenario{cfg};        // build the substrate stack
//   ace::AceEngine engine{scenario.overlay(), ace::AceConfig{}};
//   engine.step_round(scenario.rng());  // one ACE optimization round
//   auto stats = scenario.measure(ace::ForwardingMode::kTreeRouting,
//                                 &engine.forwarding(), 100);
//
// See examples/quickstart.cpp for a complete walk-through and DESIGN.md for
// the module inventory.
#pragma once

#include "ace/closure.h"
#include "ace/cost_table.h"
#include "ace/engine.h"
#include "ace/optimizer.h"
#include "ace/tree_builder.h"
#include "baselines/aoto.h"
#include "baselines/index_cache.h"
#include "core/experiment.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/metrics.h"
#include "graph/shortest_path.h"
#include "net/physical_network.h"
#include "oracle/cost_oracle.h"
#include "oracle/exact_oracle.h"
#include "oracle/landmark_oracle.h"
#include "oracle/vivaldi_oracle.h"
#include "overlay/churn.h"
#include "overlay/overlay_network.h"
#include "overlay/workload.h"
#include "proto/message.h"
#include "search/flooding.h"
#include "search/metrics.h"
#include "sim/simulator.h"
#include "transport/transport.h"
#include "util/digest.h"
#include "util/options.h"
#include "util/provenance.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
