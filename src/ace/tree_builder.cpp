#include "ace/tree_builder.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace ace {

LocalTree build_local_tree(const LocalClosure& closure, TreeKind kind) {
  if (closure.size() == 0)
    throw std::invalid_argument{"build_local_tree: empty closure"};
  LocalTree tree;
  const PeerId source = closure.nodes[0];

  std::vector<Edge> local_edges;
  if (kind == TreeKind::kMinimumSpanning) {
    const MstResult mst = prim_mst(closure.local, 0);
    local_edges = mst.edges;
    tree.total_weight = mst.total_weight;
  } else {
    const ShortestPathResult spt = dijkstra(closure.local, 0);
    for (NodeId v = 1; v < closure.local.node_count(); ++v) {
      if (spt.parent[v] == kInvalidNode) continue;
      const auto w = closure.local.edge_weight(spt.parent[v], v);
      local_edges.push_back({spt.parent[v], v, *w});
      tree.total_weight += *w;
    }
  }

  // Map to global ids and find the source's tree-adjacent peers.
  std::vector<bool> adjacent_to_source(closure.size(), false);
  tree.edges.reserve(local_edges.size());
  for (const Edge& e : local_edges) {
    const Edge global{closure.to_global(e.u), closure.to_global(e.v),
                      e.weight};
    tree.edges.push_back(global);
    if (closure.is_probed_pair(e.u, e.v)) tree.virtual_edges.push_back(global);
    if (e.u == 0) adjacent_to_source[e.v] = true;
    if (e.v == 0) adjacent_to_source[e.u] = true;
  }

  // Classify direct neighbors: the closure's depth-1 members are exactly
  // the source's logical neighbors.
  for (NodeId li = 1; li < closure.size(); ++li) {
    if (closure.depth[li] != 1) continue;
    const PeerId peer = closure.nodes[li];
    if (adjacent_to_source[li])
      tree.flooding.push_back(peer);
    else if (closure.local.degree(li) == 0 ||
             closure.to_local(peer) == kInvalidNode)
      tree.flooding.push_back(peer);  // defensive: isolated in closure
    else
      tree.non_flooding.push_back(peer);
  }

  // Neighbors whose component was disconnected from the source inside the
  // induced subgraph never appear in the tree; keep them as flooding
  // targets so the search scope is retained (paper's guarantee).
  // (prim_mst spans the source's component only.)
  std::vector<bool> in_tree_component(closure.size(), false);
  in_tree_component[0] = true;
  for (const Edge& e : local_edges) {
    in_tree_component[e.u] = true;
    in_tree_component[e.v] = true;
  }
  for (auto it = tree.non_flooding.begin(); it != tree.non_flooding.end();) {
    const NodeId li = closure.to_local(*it);
    if (!in_tree_component[li]) {
      tree.flooding.push_back(*it);
      it = tree.non_flooding.erase(it);
    } else {
      ++it;
    }
  }
  (void)source;
  return tree;
}

TreeRouting make_tree_routing(const LocalTree& tree, PeerId source) {
  TreeRouting routing;
  routing.flooding = tree.flooding;
  if (tree.edges.empty()) return routing;

  // Adjacency over the tree edges, then BFS from the source to orient.
  std::unordered_map<PeerId, std::vector<PeerId>> adjacency;
  for (const Edge& e : tree.edges) {
    adjacency[static_cast<PeerId>(e.u)].push_back(static_cast<PeerId>(e.v));
    adjacency[static_cast<PeerId>(e.v)].push_back(static_cast<PeerId>(e.u));
  }
  std::unordered_map<PeerId, PeerId> parent;
  parent.emplace(source, kInvalidPeer);
  std::queue<PeerId> queue;
  queue.push(source);
  while (!queue.empty()) {
    const PeerId u = queue.front();
    queue.pop();
    const auto it = adjacency.find(u);
    if (it == adjacency.end()) continue;
    for (const PeerId v : it->second) {
      if (parent.contains(v)) continue;
      parent.emplace(v, u);
      routing.children[u].push_back(v);
      queue.push(v);
    }
  }
  return routing;
}

namespace {
struct Tx {
  double at;
  PeerId to, from;
  std::uint64_t seq;
  friend bool operator>(const Tx& a, const Tx& b) {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }
};
}  // namespace

std::vector<TreeWalkStep> walk_query_over_trees(
    const OverlayNetwork& overlay,
    const std::vector<std::vector<PeerId>>& flooding_sets, PeerId source) {
  if (source >= flooding_sets.size())
    throw std::out_of_range{"walk_query_over_trees: source out of range"};

  std::priority_queue<Tx, std::vector<Tx>, std::greater<>> heap;
  std::vector<TreeWalkStep> steps;
  std::vector<bool> visited(overlay.peer_count(), false);
  visited[source] = true;
  std::uint64_t seq = 0;

  auto expand = [&](PeerId peer, PeerId from, double at) {
    for (const PeerId q : flooding_sets[peer]) {
      if (q == from) continue;
      if (!overlay.are_connected(peer, q)) continue;
      heap.push({at + overlay.link_cost(peer, q), q, peer, seq++});
    }
  };
  expand(source, kInvalidPeer, 0.0);
  while (!heap.empty()) {
    const Tx tx = heap.top();
    heap.pop();
    TreeWalkStep step;
    step.from = tx.from;
    step.to = tx.to;
    step.cost = overlay.link_cost(tx.from, tx.to);
    step.duplicate = visited[tx.to];
    steps.push_back(step);
    if (step.duplicate) continue;
    visited[tx.to] = true;
    expand(tx.to, tx.from, tx.at);
  }
  return steps;
}

}  // namespace ace
