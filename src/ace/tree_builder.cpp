#include "ace/tree_builder.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <utility>

#include "util/check.h"

namespace ace {

LocalTree build_local_tree(const LocalClosure& closure, TreeKind kind) {
  if (closure.size() == 0)
    throw std::invalid_argument{"build_local_tree: empty closure"};
  LocalTree tree;
  const PeerId source = closure.nodes[LocalNodeId{0}];

  std::vector<LocalEdge>& local_edges = tree.local_edges;
  if (kind == TreeKind::kMinimumSpanning) {
    const MstResult mst = prim_mst(closure.local, 0);
    local_edges.reserve(mst.edges.size());
    for (const Edge& e : mst.edges)
      // ace-id: boundary(MST node indices over closure.local ARE local ids)
      local_edges.push_back({LocalNodeId{e.u}, LocalNodeId{e.v}, e.weight});
    tree.total_weight = mst.total_weight;
  } else {
    const ShortestPathResult spt = dijkstra(closure.local, 0);
    for (NodeId v = 1; v < closure.local.node_count(); ++v) {
      if (spt.parent[v] == kInvalidNode) continue;
      const Weight w = closure.local.edge_weight(spt.parent[v], v).value();
      // ace-id: boundary(SPT node indices over closure.local ARE local ids)
      local_edges.push_back({LocalNodeId{spt.parent[v]}, LocalNodeId{v}, w});
      tree.total_weight += w;
    }
  }

  // Map to global ids and find the source's tree-adjacent peers.
  std::vector<bool> adjacent_to_source(closure.size(), false);
  tree.edges.reserve(local_edges.size());
  for (const LocalEdge& e : local_edges) {
    const PeerEdge global{closure.to_global(e.u), closure.to_global(e.v),
                          e.weight};
    tree.edges.push_back(global);
    if (closure.is_probed_pair(e.u, e.v)) tree.virtual_edges.push_back(global);
    if (e.u == 0) adjacent_to_source[e.v.value()] = true;
    if (e.v == 0) adjacent_to_source[e.u.value()] = true;
  }

  // Classify direct neighbors: the closure's depth-1 members are exactly
  // the source's logical neighbors.
  for (LocalNodeId li{1}; li < closure.size(); ++li) {
    if (closure.depth[li] != 1) continue;
    const PeerId peer = closure.nodes[li];
    // Tree-adjacent neighbors flood; neighbors isolated inside the closure
    // flood defensively (the search scope must never shrink).
    if (adjacent_to_source[li.value()] ||
        closure.local.degree(li.value()) == 0 ||
        closure.to_local(peer) == kInvalidLocalNode)
      tree.flooding.push_back(peer);
    else
      tree.non_flooding.push_back(peer);
  }

  // Neighbors whose component was disconnected from the source inside the
  // induced subgraph never appear in the tree; keep them as flooding
  // targets so the search scope is retained (paper's guarantee).
  // (prim_mst spans the source's component only.)
  std::vector<bool> in_tree_component(closure.size(), false);
  in_tree_component[0] = true;
  for (const LocalEdge& e : local_edges) {
    in_tree_component[e.u.value()] = true;
    in_tree_component[e.v.value()] = true;
  }
  for (auto it = tree.non_flooding.begin(); it != tree.non_flooding.end();) {
    const LocalNodeId li = closure.to_local(*it);
    if (!in_tree_component[li.value()]) {
      tree.flooding.push_back(*it);
      it = tree.non_flooding.erase(it);
    } else {
      ++it;
    }
  }
  (void)source;
  return tree;
}

void debug_validate_tree(const LocalClosure& closure, const LocalTree& tree) {
  // Union-find over local ids: every tree edge must join two previously
  // separate components (acyclicity) and land inside the closure.
  std::vector<NodeId> parent(closure.size());
  for (NodeId i = 0; i < parent.size(); ++i) parent[i] = i;
  const auto find = [&parent](NodeId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  Weight edge_sum = 0;
  for (const PeerEdge& e : tree.edges) {
    const LocalNodeId lu = closure.to_local(e.u);
    const LocalNodeId lv = closure.to_local(e.v);
    ACE_CHECK_NE(lu, kInvalidLocalNode)
        << " — tree edge endpoint " << e.u << " outside the closure";
    ACE_CHECK_NE(lv, kInvalidLocalNode)
        << " — tree edge endpoint " << e.v << " outside the closure";
    ACE_CHECK_GT(e.weight, 0) << " — non-positive tree edge weight";
    const NodeId ru = find(lu.value()), rv = find(lv.value());
    ACE_CHECK_NE(ru, rv) << " — cycle through tree edge " << e.u << "-" << e.v;
    parent[ru] = rv;
    edge_sum += e.weight;
  }
  ACE_CHECK_LE(std::abs(edge_sum - tree.total_weight),
               1e-9 * (1.0 + std::abs(edge_sum)))
      << " — total_weight out of sync with the edge set";

  // Spanning + rootedness: every member reachable from the source inside
  // the induced subgraph must share the source's tree component.
  std::vector<bool> reachable(closure.size(), false);
  std::queue<NodeId> queue;
  reachable[0] = true;
  queue.push(0);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    for (const Neighbor& n : closure.local.neighbors(u)) {
      if (reachable[n.node]) continue;
      reachable[n.node] = true;
      queue.push(n.node);
    }
  }
  const NodeId source_root = find(0);
  for (LocalNodeId li{0}; li < closure.size(); ++li) {
    if (!reachable[li.value()]) continue;
    ACE_CHECK_EQ(find(li.value()), source_root)
        << " — reachable member " << closure.nodes[li]
        << " not spanned by the tree";
  }

  // flooding/non_flooding must partition the source's direct neighbors.
  std::vector<PeerId> classified = tree.flooding;
  classified.insert(classified.end(), tree.non_flooding.begin(),
                    tree.non_flooding.end());
  std::sort(classified.begin(), classified.end());
  ACE_CHECK(std::adjacent_find(classified.begin(), classified.end()) ==
            classified.end())
      << "a neighbor is classified both flooding and non-flooding";
  std::vector<PeerId> direct;
  for (LocalNodeId li{1}; li < closure.size(); ++li)
    if (closure.depth[li] == 1) direct.push_back(closure.nodes[li]);
  std::sort(direct.begin(), direct.end());
  ACE_CHECK(classified == direct)
      << "flooding/non-flooding classification does not cover the source's "
         "direct neighbors exactly";

  // local_edges must mirror edges index-for-index under the closure's
  // global id table (make_tree_routing's local-id overload relies on it).
  ACE_CHECK_EQ(tree.local_edges.size(), tree.edges.size())
      << " — local_edges out of sync with edges";
  for (std::size_t i = 0; i < tree.local_edges.size(); ++i) {
    const LocalEdge& le = tree.local_edges[i];
    const PeerEdge& ge = tree.edges[i];
    ACE_CHECK_LT(le.u, closure.size()) << " — local edge outside the closure";
    ACE_CHECK_LT(le.v, closure.size()) << " — local edge outside the closure";
    ACE_CHECK_EQ(closure.to_global(le.u), ge.u)
        << " — local_edges[" << i << "] does not map to edges[" << i << "]";
    ACE_CHECK_EQ(closure.to_global(le.v), ge.v)
        << " — local_edges[" << i << "] does not map to edges[" << i << "]";
    ACE_CHECK_EQ(le.weight, ge.weight)
        << " — local/global edge weight mismatch at index " << i;
  }

  for (const PeerEdge& v : tree.virtual_edges) {
    ACE_CHECK(std::find(tree.edges.begin(), tree.edges.end(), v) !=
              tree.edges.end())
        << "virtual edge " << v.u << "-" << v.v << " is not a tree edge";
    const LocalNodeId lu = closure.to_local(v.u);
    const LocalNodeId lv = closure.to_local(v.v);
    ACE_CHECK(closure.is_probed_pair(lu, lv))
        << "virtual edge " << v.u << "-" << v.v
        << " is not backed by a probed pair";
  }
}

TreeRouting make_tree_routing(const LocalTree& tree, PeerId source) {
  TreeRouting routing;
  routing.flooding = tree.flooding;
  if (tree.edges.empty()) return routing;

  // Index the tree's members: sorted unique peer ids, looked up by binary
  // search. No hash map anywhere on this path, so the routing structure is
  // a pure function of the edge set — identical across runs and platforms.
  std::vector<PeerId> members;
  members.reserve(2 * tree.edges.size() + 1);
  members.push_back(source);
  for (const PeerEdge& e : tree.edges) {
    members.push_back(e.u);
    members.push_back(e.v);
  }
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  const auto index_of = [&members](PeerId p) {
    return static_cast<std::size_t>(
        std::lower_bound(members.begin(), members.end(), p) - members.begin());
  };

  // Adjacency over the tree edges in compressed-sparse-row form — two
  // counting passes into one flat array instead of a vector per member.
  // The fill pass walks edges in the same order the old per-member appends
  // did, so every member's neighbor order (and thus the BFS orientation
  // below) is unchanged.
  const std::size_t m = members.size();
  std::vector<std::uint32_t> eu(tree.edges.size());
  std::vector<std::uint32_t> ev(tree.edges.size());
  std::vector<std::uint32_t> offsets(m + 1, 0);
  for (std::size_t i = 0; i < tree.edges.size(); ++i) {
    const PeerEdge& e = tree.edges[i];
    eu[i] = static_cast<std::uint32_t>(index_of(e.u));
    ev[i] = static_cast<std::uint32_t>(index_of(e.v));
    ++offsets[eu[i] + 1];
    ++offsets[ev[i] + 1];
  }
  for (std::size_t i = 0; i < m; ++i) offsets[i + 1] += offsets[i];
  std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  std::vector<std::uint32_t> adjacency(2 * tree.edges.size());
  for (std::size_t i = 0; i < tree.edges.size(); ++i) {
    adjacency[cursor[eu[i]]++] = ev[i];
    adjacency[cursor[ev[i]]++] = eu[i];
  }

  // BFS from the source over member indices; the discovery vector with a
  // head index doubles as the FIFO queue.
  std::vector<std::uint8_t> seen(m, 0);
  std::vector<std::uint32_t> queue;
  queue.reserve(m);
  const std::uint32_t si = static_cast<std::uint32_t>(index_of(source));
  seen[si] = 1;
  queue.push_back(si);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::uint32_t ui = queue[head];
    std::vector<PeerId> kids;
    for (std::uint32_t k = offsets[ui]; k < offsets[ui + 1]; ++k) {
      const std::uint32_t vi = adjacency[k];
      if (seen[vi]) continue;
      seen[vi] = 1;
      kids.push_back(members[vi]);
      queue.push_back(vi);
    }
    if (!kids.empty())
      routing.children.emplace_back(members[ui], std::move(kids));
  }
  // BFS emits relays in dequeue order; find_children needs key order.
  std::sort(routing.children.begin(), routing.children.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return routing;
}

TreeRouting make_tree_routing(const LocalClosure& closure,
                              const LocalTree& tree, PeerId source) {
  ACE_CHECK_EQ(closure.nodes[LocalNodeId{0}], source)
      << " — routing source is not the closure's source";
  ACE_CHECK_EQ(tree.local_edges.size(), tree.edges.size())
      << " — tree has no local edge list";
  TreeRouting routing;
  routing.flooding = tree.flooding;
  if (tree.local_edges.empty()) return routing;

  // Closure-local ids already index the tree's members (a superset: members
  // off the tree get empty adjacency rows and are never reached by the
  // BFS), so the sorted-unique indexing pass of the global-id overload is
  // unnecessary. The CSR fill walks the edges in the same order, so every
  // member's neighbor order — and thus the BFS orientation and the emitted
  // children lists — is byte-identical to the global-id overload's.
  const std::size_t m = closure.size();
  std::vector<std::uint32_t> offsets(m + 1, 0);
  for (const LocalEdge& e : tree.local_edges) {
    ++offsets[e.u.value() + 1];
    ++offsets[e.v.value() + 1];
  }
  for (std::size_t i = 0; i < m; ++i) offsets[i + 1] += offsets[i];
  std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  std::vector<std::uint32_t> adjacency(2 * tree.local_edges.size());
  for (const LocalEdge& e : tree.local_edges) {
    adjacency[cursor[e.u.value()]++] = e.v.value();
    adjacency[cursor[e.v.value()]++] = e.u.value();
  }

  // BFS from the source (local id 0); the discovery vector with a head
  // index doubles as the FIFO queue.
  std::vector<std::uint8_t> seen(m, 0);
  std::vector<std::uint32_t> queue;
  queue.reserve(m);
  seen[0] = 1;
  queue.push_back(0);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::uint32_t ui = queue[head];
    std::vector<PeerId> kids;
    for (std::uint32_t k = offsets[ui]; k < offsets[ui + 1]; ++k) {
      const std::uint32_t vi = adjacency[k];
      if (seen[vi]) continue;
      seen[vi] = 1;
      // ace-id: boundary(the CSR BFS stores local ids as raw queue entries)
      kids.push_back(closure.nodes[LocalNodeId{vi}]);
      queue.push_back(vi);
    }
    if (!kids.empty())
      // ace-id: boundary(the CSR BFS stores local ids as raw queue entries)
      routing.children.emplace_back(closure.nodes[LocalNodeId{ui}],
                                    std::move(kids));
  }
  // BFS emits relays in dequeue order; find_children needs key order.
  std::sort(routing.children.begin(), routing.children.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return routing;
}

namespace {
struct Tx {
  double at;
  PeerId to, from;
  std::uint64_t seq;
  friend bool operator>(const Tx& a, const Tx& b) {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }
};
}  // namespace

std::vector<TreeWalkStep> walk_query_over_trees(
    const OverlayNetwork& overlay,
    const std::vector<std::vector<PeerId>>& flooding_sets, PeerId source) {
  if (source >= flooding_sets.size())
    throw std::out_of_range{"walk_query_over_trees: source out of range"};

  std::priority_queue<Tx, std::vector<Tx>, std::greater<>> heap;
  std::vector<TreeWalkStep> steps;
  std::vector<bool> visited(overlay.peer_count(), false);
  visited[source.value()] = true;
  std::uint64_t seq = 0;

  auto expand = [&](PeerId peer, PeerId from, double at) {
    for (const PeerId q : flooding_sets[peer.value()]) {
      if (q == from) continue;
      if (!overlay.are_connected(peer, q)) continue;
      heap.push({at + overlay.link_cost(peer, q), q, peer, seq++});
    }
  };
  expand(source, kInvalidPeer, 0.0);
  while (!heap.empty()) {
    const Tx tx = heap.top();
    heap.pop();
    TreeWalkStep step;
    step.from = tx.from;
    step.to = tx.to;
    step.cost = overlay.link_cost(tx.from, tx.to);
    step.duplicate = visited[tx.to.value()];
    steps.push_back(step);
    if (step.duplicate) continue;
    visited[tx.to.value()] = true;
    expand(tx.to, tx.from, tx.at);
  }
  return steps;
}

}  // namespace ace
