// ACE phase 2: each peer builds a minimum spanning tree (Prim, as in the
// paper) over its h-neighbor closure and classifies its direct logical
// neighbors as flooding (adjacent on the tree) or non-flooding (kept, cost
// tables still exchanged, but no queries sent). The multicast tree itself
// is also exposed so the Table 1/2 example benches can enumerate query
// paths and costs.
#pragma once

#include <cstdint>
#include <vector>

#include "ace/closure.h"
#include "graph/shortest_path.h"
#include "search/flooding.h"

namespace ace {

enum class TreeKind : std::uint8_t {
  kMinimumSpanning,   // paper's choice (Prim)
  kShortestPath,      // ablation: Dijkstra SPT rooted at the source
};

struct LocalTree {
  // Tree edges in *global* peer ids.
  std::vector<PeerEdge> edges;
  // The same edges in closure-local ids, in the same order (so
  // local_edges[i] maps to edges[i] under the closure's nodes[] table).
  // Kept so routing can be rebuilt over local ids without re-indexing the
  // global id set; valid against any closure sharing the source closure's
  // node list (lossy pruning removes edges, never members).
  std::vector<LocalEdge> local_edges;
  Weight total_weight = 0;
  // The source's direct neighbors that lie adjacent to it on the tree.
  std::vector<PeerId> flooding;
  // The source's remaining direct neighbors.
  std::vector<PeerId> non_flooding;
  // Tree edges that are probed neighbor-pair costs rather than existing
  // overlay links (global ids). These are the connections ACE recommends
  // ESTABLISHING so the multicast tree is realizable: the source expects
  // e.g. neighbor B to forward its query to neighbor C, which requires a
  // B-C link. Empty when the closure was built kOverlayOnly.
  std::vector<PeerEdge> virtual_edges;
};

// Builds the local multicast tree for closure.nodes[0]. Direct neighbors
// unreachable inside the closure's induced subgraph (possible only in
// degenerate topologies) are kept as flooding neighbors so the search scope
// never shrinks.
LocalTree build_local_tree(const LocalClosure& closure,
                           TreeKind kind = TreeKind::kMinimumSpanning);

// Invariant auditor (ACE_CHECK-fatal) for a tree built from `closure`:
// every edge stays inside the closure with positive weight, the edge set is
// acyclic and spans every member reachable from the source in the induced
// subgraph (rooted at the source), flooding/non-flooding partition the
// source's direct neighbors, virtual edges are tree edges backed by probed
// pairs, and total_weight matches the edge sum.
void debug_validate_tree(const LocalClosure& closure, const LocalTree& tree);

// Converts a LocalTree into routing form: the tree rooted at `source`,
// children lists per node. Installed into the ForwardingTable so queries
// can carry the source's relay instructions down the tree.
TreeRouting make_tree_routing(const LocalTree& tree, PeerId source);

// Same result, computed over closure-local ids (tree.local_edges) instead
// of re-indexing the global id set — the engine's hot install path.
// `closure` must share the node list the tree was built from and `source`
// must be its source (nodes[0]). Byte-identical to the overload above: the
// CSR fill walks the same edge order, so the BFS orientation and children
// lists match.
TreeRouting make_tree_routing(const LocalClosure& closure,
                              const LocalTree& tree, PeerId source);

// Query routing over a set of per-peer trees (used by the example-table
// bench): starting from `source`, a query is forwarded by each peer to its
// own tree-adjacent peers (minus the sender), with duplicate suppression.
// Returns the sequence of (from, to, cost) transmissions in time order.
struct TreeWalkStep {
  PeerId from = kInvalidPeer;
  PeerId to = kInvalidPeer;
  Weight cost = 0;
  bool duplicate = false;  // arrived at an already-visited peer
};

std::vector<TreeWalkStep> walk_query_over_trees(
    const OverlayNetwork& overlay,
    const std::vector<std::vector<PeerId>>& flooding_sets, PeerId source);

}  // namespace ace
