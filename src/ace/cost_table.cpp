#include "ace/cost_table.h"

#include <optional>
#include <stdexcept>

#include "graph/shortest_path.h"
#include "transport/transport.h"
#include "util/check.h"

namespace ace {

void NeighborCostTable::record(PeerId neighbor, Weight cost) {
  for (auto& e : entries_) {
    if (e.neighbor == neighbor) {
      e.cost = cost;
      return;
    }
  }
  entries_.push_back({neighbor, cost});
}

bool NeighborCostTable::contains(PeerId neighbor) const {
  for (const auto& e : entries_)
    if (e.neighbor == neighbor) return true;
  return false;
}

Weight NeighborCostTable::cost_to(PeerId neighbor) const {
  for (const auto& e : entries_)
    if (e.neighbor == neighbor) return e.cost;
  throw std::out_of_range{"NeighborCostTable: neighbor not recorded"};
}

void ProbeOverhead::merge(const ProbeOverhead& other) noexcept {
  probes += other.probes;
  probe_traffic += other.probe_traffic;
  exchanges += other.exchanges;
  exchange_traffic += other.exchange_traffic;
}

CostTableStore::CostTableStore(const MessageSizing& sizing)
    : sizing_{sizing} {}

void CostTableStore::ensure_size(std::size_t peers) {
  if (tables_.size() < peers) tables_.resize(peers);
}

void CostTableStore::refresh_peer(const OverlayNetwork& overlay, PeerId peer,
                                  ProbeOverhead& overhead) {
  ensure_size(overlay.peer_count());
  NeighborCostTable& table = tables_[peer];
  table.clear();
  const double probe_size = size_factor(sizing_, MessageType::kProbe) +
                            size_factor(sizing_, MessageType::kProbeReply);
  const bool estimated = overlay.cost_oracle() != nullptr;
  for (const auto& n : overlay.neighbors(peer)) {
    // The recorded cost is the peer's belief: the oracle estimate when one
    // is attached, else the link weight (true delay). Probe traffic is
    // always priced with the true weight — the probe crosses the wire.
    table.record(peer_of(n),
                 estimated ? overlay.probe_estimate(peer, peer_of(n))
                           : n.weight);
    ++overhead.probes;
    overhead.probe_traffic += probe_size * n.weight;
  }
}

void CostTableStore::charge_exchange(const OverlayNetwork& overlay,
                                     PeerId peer,
                                     ProbeOverhead& overhead) const {
  if (peer >= tables_.size()) return;
  const std::size_t entries = tables_[peer].size();
  const double msg = size_factor(sizing_, MessageType::kCostTable, entries);
  for (const auto& n : overlay.neighbors(peer)) {
    ++overhead.exchanges;
    overhead.exchange_traffic += msg * n.weight;
  }
}

void CostTableStore::refresh_peer_via(const OverlayNetwork& overlay,
                                      PeerId peer, Transport& transport,
                                      ProbeOverhead& overhead) {
  ensure_size(overlay.peer_count());
  NeighborCostTable& table = tables_[peer];
  const NeighborCostTable previous = table;
  table.clear();
  for (const auto& n : overlay.neighbors(peer)) {
    const PeerId neighbor = peer_of(n);
    ++overhead.probes;
    const std::optional<Weight> measured =
        transport.probe(peer, neighbor, overhead.probe_traffic);
    if (measured.has_value()) {
      table.record(neighbor, *measured);
    } else if (previous.contains(neighbor)) {
      // Every attempt lost: keep what the last successful probe measured.
      table.record(neighbor, previous.cost_to(neighbor));
    }
  }
  table.bump_version();
}

void CostTableStore::publish_via(const OverlayNetwork& overlay, PeerId peer,
                                 Transport& transport,
                                 ProbeOverhead& overhead) const {
  if (peer >= tables_.size()) return;
  const NeighborCostTable& table = tables_[peer];
  overhead.exchanges += overlay.degree(peer);
  transport.publish_table(peer, table.version(), table.size(),
                          overhead.exchange_traffic);
}

const NeighborCostTable& CostTableStore::table(PeerId peer) const {
  if (peer >= tables_.size())
    throw std::out_of_range{"CostTableStore: peer out of range"};
  return tables_[peer];
}

NeighborCostTable& CostTableStore::table(PeerId peer) {
  if (peer >= tables_.size())
    throw std::out_of_range{"CostTableStore: peer out of range"};
  return tables_[peer];
}

void CostTableStore::debug_validate(const OverlayNetwork& overlay) const {
  for (PeerId p{0}; p < tables_.size(); ++p) {
    for (const CostEntry& e : tables_[p].entries()) {
      ACE_CHECK_NE(e.neighbor, kInvalidPeer)
          << " — peer " << p << " recorded an invalid neighbor";
      ACE_CHECK_LT(e.neighbor, overlay.peer_count())
          << " — peer " << p << " recorded out-of-range neighbor";
      ACE_CHECK_NE(e.neighbor, p) << " — peer " << p << " recorded itself";
      ACE_CHECK_GT(e.cost, 0)
          << " — non-positive probed cost " << p << "->" << e.neighbor;
      std::size_t occurrences = 0;
      for (const CostEntry& other : tables_[p].entries())
        if (other.neighbor == e.neighbor) ++occurrences;
      ACE_CHECK_EQ(occurrences, 1u)
          << " — duplicate table entry " << p << "->" << e.neighbor;
      if (e.neighbor < tables_.size() && tables_[e.neighbor].contains(p)) {
        ACE_CHECK_EQ(tables_[e.neighbor].cost_to(p), e.cost)
            << " — cost-table asymmetry between " << p << " and "
            << e.neighbor;
      }
      if (overlay.are_connected(p, e.neighbor)) {
        // probe_estimate is the link cost when no oracle is attached and
        // the (clamped) oracle estimate when one is — either way it is
        // what a fresh probe of this live link would record.
        ACE_CHECK_EQ(overlay.probe_estimate(p, e.neighbor), e.cost)
            << " — table entry " << p << "->" << e.neighbor
            << " disagrees with the live overlay link";
      }
    }
  }
}

Weight CostTableStore::known_cost(PeerId a, PeerId b) const {
  if (a < tables_.size() && tables_[a].contains(b)) return tables_[a].cost_to(b);
  if (b < tables_.size() && tables_[b].contains(a)) return tables_[b].cost_to(a);
  return kUnreachable;
}

void CostTableStore::digest_into(Fnv1a& digest) const {
  digest.update(static_cast<std::uint64_t>(tables_.size()));
  for (const NeighborCostTable& table : tables_) {
    UnorderedDigest entries;
    for (const CostEntry& e : table.entries()) {
      Fnv1a entry;
      entry.update(e.neighbor);
      entry.update_double(e.cost);
      entries.add(entry.value());
    }
    digest.update(entries.value());
  }
}

}  // namespace ace
