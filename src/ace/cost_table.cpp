#include "ace/cost_table.h"

#include <stdexcept>

#include "graph/shortest_path.h"

namespace ace {

void NeighborCostTable::record(PeerId neighbor, Weight cost) {
  for (auto& e : entries_) {
    if (e.neighbor == neighbor) {
      e.cost = cost;
      return;
    }
  }
  entries_.push_back({neighbor, cost});
}

bool NeighborCostTable::contains(PeerId neighbor) const {
  for (const auto& e : entries_)
    if (e.neighbor == neighbor) return true;
  return false;
}

Weight NeighborCostTable::cost_to(PeerId neighbor) const {
  for (const auto& e : entries_)
    if (e.neighbor == neighbor) return e.cost;
  throw std::out_of_range{"NeighborCostTable: neighbor not recorded"};
}

void ProbeOverhead::merge(const ProbeOverhead& other) noexcept {
  probes += other.probes;
  probe_traffic += other.probe_traffic;
  exchanges += other.exchanges;
  exchange_traffic += other.exchange_traffic;
}

CostTableStore::CostTableStore(const MessageSizing& sizing)
    : sizing_{sizing} {}

void CostTableStore::ensure_size(std::size_t peers) {
  if (tables_.size() < peers) tables_.resize(peers);
}

void CostTableStore::refresh_peer(const OverlayNetwork& overlay, PeerId peer,
                                  ProbeOverhead& overhead) {
  ensure_size(overlay.peer_count());
  NeighborCostTable& table = tables_[peer];
  table.clear();
  const double probe_size = size_factor(sizing_, MessageType::kProbe) +
                            size_factor(sizing_, MessageType::kProbeReply);
  for (const auto& n : overlay.neighbors(peer)) {
    table.record(n.node, n.weight);
    ++overhead.probes;
    overhead.probe_traffic += probe_size * n.weight;
  }
}

void CostTableStore::charge_exchange(const OverlayNetwork& overlay,
                                     PeerId peer,
                                     ProbeOverhead& overhead) const {
  if (peer >= tables_.size()) return;
  const std::size_t entries = tables_[peer].size();
  const double msg = size_factor(sizing_, MessageType::kCostTable, entries);
  for (const auto& n : overlay.neighbors(peer)) {
    ++overhead.exchanges;
    overhead.exchange_traffic += msg * n.weight;
  }
}

const NeighborCostTable& CostTableStore::table(PeerId peer) const {
  if (peer >= tables_.size())
    throw std::out_of_range{"CostTableStore: peer out of range"};
  return tables_[peer];
}

NeighborCostTable& CostTableStore::table(PeerId peer) {
  if (peer >= tables_.size())
    throw std::out_of_range{"CostTableStore: peer out of range"};
  return tables_[peer];
}

Weight CostTableStore::known_cost(PeerId a, PeerId b) const {
  if (a < tables_.size() && tables_[a].contains(b)) return tables_[a].cost_to(b);
  if (b < tables_.size() && tables_[b].contains(a)) return tables_[b].cost_to(a);
  return kUnreachable;
}

}  // namespace ace
