#include "ace/closure.h"

#include <queue>
#include <stdexcept>
#include <utility>

namespace ace {

NodeId LocalClosure::to_local(PeerId peer) const {
  const auto it = local_index.find(peer);
  return it == local_index.end() ? kInvalidNode : it->second;
}

bool LocalClosure::is_probed_pair(NodeId a, NodeId b) const {
  if (a > b) std::swap(a, b);
  for (const auto& [x, y] : probed_pairs)
    if (x == a && y == b) return true;
  return false;
}

std::size_t LocalClosure::table_entries() const {
  std::size_t total = 0;
  for (NodeId i = 0; i < local.node_count(); ++i) total += local.degree(i);
  // Each member's table also lists neighbors outside the closure; the
  // induced degree is a lower bound but tracks the same growth. We charge
  // the induced count: it is what the source actually uses.
  return total;
}

LocalClosure build_closure(const OverlayNetwork& overlay, PeerId source,
                           std::uint32_t h, ClosureEdges edges) {
  if (!overlay.is_online(source))
    throw std::invalid_argument{"build_closure: source offline"};
  LocalClosure closure;

  // BFS out to depth h over the overlay.
  std::queue<PeerId> queue;
  closure.nodes.push_back(source);
  closure.depth.push_back(0);
  closure.path_cost.push_back(0);
  closure.local_index.emplace(source, 0);
  queue.push(source);
  while (!queue.empty()) {
    const PeerId u = queue.front();
    queue.pop();
    const NodeId lu = closure.local_index.at(u);
    const std::uint32_t du = closure.depth[lu];
    if (du == h) continue;
    for (const auto& n : overlay.neighbors(u)) {
      if (closure.local_index.contains(n.node)) continue;
      closure.local_index.emplace(n.node,
                                  static_cast<NodeId>(closure.nodes.size()));
      closure.nodes.push_back(n.node);
      closure.depth.push_back(du + 1);
      closure.path_cost.push_back(closure.path_cost[lu] + n.weight);
      queue.push(n.node);
    }
  }

  // Induced subgraph.
  closure.local = Graph{closure.nodes.size()};
  for (NodeId li = 0; li < closure.nodes.size(); ++li) {
    const PeerId u = closure.nodes[li];
    for (const auto& n : overlay.neighbors(u)) {
      const NodeId lj = closure.to_local(n.node);
      if (lj == kInvalidNode || lj <= li) continue;
      closure.local.add_edge(li, lj, n.weight);
    }
  }

  if (edges == ClosureEdges::kOverlayPlusNeighborProbes) {
    // Phase 1 gives the source the cost between ANY pair of its direct
    // neighbors: fill in the missing pairs with probed delays. Depth-1
    // members occupy a contiguous local-id prefix starting at 1.
    std::vector<NodeId> direct;
    for (NodeId li = 1;
         li < closure.size() && closure.depth[li] == 1; ++li)
      direct.push_back(li);
    for (std::size_t i = 0; i < direct.size(); ++i) {
      for (std::size_t j = i + 1; j < direct.size(); ++j) {
        const NodeId a = direct[i], b = direct[j];
        if (closure.local.has_edge(a, b)) continue;
        const Weight d =
            overlay.peer_delay(closure.nodes[a], closure.nodes[b]);
        closure.local.add_edge(a, b, d > 0 ? d : 1e-6);
        closure.probed_pairs.emplace_back(a, b);
      }
    }
  }
  return closure;
}

}  // namespace ace
