#include "ace/closure.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace ace {

LocalNodeId LocalClosure::to_local(PeerId peer) const {
  const auto it = std::lower_bound(
      member_index.begin(), member_index.end(), peer,
      [](const std::pair<PeerId, LocalNodeId>& entry, PeerId p) {
        return entry.first < p;
      });
  return it != member_index.end() && it->first == peer ? it->second
                                                       : kInvalidLocalNode;
}

bool LocalClosure::is_probed_pair(LocalNodeId a, LocalNodeId b) const {
  if (a > b) std::swap(a, b);
  // probed_pairs is lexicographically sorted by construction (ascending
  // (i, j) sweep over the ascending direct-neighbor list; lossy pruning
  // filters in order), which debug_validate audits.
  return std::binary_search(probed_pairs.begin(), probed_pairs.end(),
                            std::make_pair(a, b));
}

void LocalClosure::debug_validate(std::uint32_t hop_bound) const {
  ACE_CHECK(!nodes.empty()) << "closure must contain its source";
  ACE_CHECK_EQ(depth.size(), nodes.size()) << " — depth misaligned";
  ACE_CHECK_EQ(path_cost.size(), nodes.size()) << " — path_cost misaligned";
  ACE_CHECK_EQ(local.node_count(), nodes.size())
      << " — local graph size mismatch";
  ACE_CHECK_EQ(depth[LocalNodeId{0}], 0u) << " — source must sit at depth 0";
  ACE_CHECK_EQ(path_cost[LocalNodeId{0}], 0.0)
      << " — source path cost must be 0";
  for (LocalNodeId li{1}; li < nodes.size(); ++li) {
    ACE_CHECK_GE(depth[li], 1u) << " — only the source may be at depth 0";
    ACE_CHECK_LE(depth[li], hop_bound)
        << " — member " << nodes[li] << " breaches the hop bound";
    ACE_CHECK_GE(depth[li], depth[li - 1])
        << " — BFS discovery order violated at local id " << li;
    ACE_CHECK_GT(path_cost[li], 0)
        << " — non-positive discovery path cost for member " << nodes[li];
  }
  ACE_CHECK_EQ(member_index.size(), nodes.size())
      << " — member_index maps a different peer set than nodes[]";
  ACE_CHECK(std::is_sorted(member_index.begin(), member_index.end()))
      << "member_index not sorted by peer id";
  for (LocalNodeId li{0}; li < nodes.size(); ++li) {
    ACE_CHECK_EQ(to_local(nodes[li]), li)
        << " — member_index does not invert nodes[] for peer " << nodes[li];
  }
  ACE_CHECK(std::is_sorted(probed_pairs.begin(), probed_pairs.end()))
      << "probed pairs not sorted";
  for (const auto& [a, b] : probed_pairs) {
    ACE_CHECK_LT(a, b) << " — probed pair not stored sorted";
    ACE_CHECK_LT(b, nodes.size()) << " — probed pair outside the closure";
    ACE_CHECK(local.has_edge(a.value(), b.value()))
        << "probed pair " << a << "-" << b << " has no local edge";
  }
  local.debug_validate();
}

std::size_t LocalClosure::table_entries() const {
  std::size_t total = 0;
  for (NodeId i = 0; i < local.node_count(); ++i) total += local.degree(i);
  // Each member's table also lists neighbors outside the closure; the
  // induced degree is a lower bound but tracks the same growth. We charge
  // the induced count: it is what the source actually uses.
  return total;
}

// ace-hot
void build_closure_into(const OverlayNetwork& overlay, PeerId source,
                        std::uint32_t h, ClosureEdges edges, LocalClosure& out,
                        ClosureScratch& scratch) {
  if (!overlay.is_online(source))
    throw std::invalid_argument{"build_closure: source offline"};
  LocalClosure& closure = out;

  // The scratch's flat visited map doubles as the BFS visited set. It is
  // all-invalid between builds (this function restores the entries it sets
  // before returning), so each build touches only a closure-sized slice —
  // and the *cached* closure never carries a peer_count-sized array.
  IdVector<PeerId, LocalNodeId>& visited = scratch.visited;
  if (visited.size() < overlay.peer_count())
    visited.resize(overlay.peer_count(), kInvalidLocalNode);
  closure.nodes.clear();
  closure.depth.clear();
  closure.path_cost.clear();
  closure.member_index.clear();
  closure.probed_pairs.clear();

  // BFS out to depth h over the overlay. `nodes` in discovery order IS the
  // BFS queue (every dequeued peer appends its unseen neighbors), so a head
  // index over it replaces an explicit queue.
  closure.nodes.push_back(source);
  closure.depth.push_back(0);
  closure.path_cost.push_back(0);
  visited[source] = LocalNodeId{0};
  for (std::size_t head = 0; head < closure.nodes.size(); ++head) {
    // ace-id: boundary(the BFS head position is the member's local id)
    const LocalNodeId lu{static_cast<std::uint32_t>(head)};
    const PeerId u = closure.nodes[lu];
    const std::uint32_t du = closure.depth[lu];
    if (du == h) continue;
    for (const auto& n : overlay.neighbors(u)) {
      const PeerId q = peer_of(n);
      if (visited[q] != kInvalidLocalNode) continue;
      // ace-id: boundary(a new member's local id is its slot in nodes[])
      visited[q] = LocalNodeId{static_cast<std::uint32_t>(
          closure.nodes.size())};
      closure.nodes.push_back(q);
      closure.depth.push_back(du + 1);
      closure.path_cost.push_back(closure.path_cost[lu] + n.weight);
    }
  }

  // Induced subgraph (node storage reused across rebuilds).
  closure.local.reset_nodes(closure.nodes.size());
  for (LocalNodeId li{0}; li < closure.nodes.size(); ++li) {
    const PeerId u = closure.nodes[li];
    for (const auto& n : overlay.neighbors(u)) {
      const LocalNodeId lj = visited[peer_of(n)];
      if (lj == kInvalidLocalNode || lj <= li) continue;
      // Each member pair is visited exactly once (lj > li filter over an
      // overlay with unique edges), so skip add_edge's duplicate probe.
      closure.local.add_new_edge(li.value(), lj.value(), n.weight);
    }
  }

  // Freeze the reverse map into the closure-sized sorted form and restore
  // the scratch's all-invalid invariant; nothing below reads `visited`.
  closure.member_index.reserve(closure.nodes.size());
  for (LocalNodeId li{0}; li < closure.nodes.size(); ++li) {
    closure.member_index.emplace_back(closure.nodes[li], li);
    visited[closure.nodes[li]] = kInvalidLocalNode;
  }
  std::sort(closure.member_index.begin(), closure.member_index.end());

  if (edges == ClosureEdges::kOverlayPlusNeighborProbes) {
    // Phase 1 gives the source the cost between ANY pair of its direct
    // neighbors: fill in the missing pairs with probed delays. Depth-1
    // members occupy a contiguous local-id prefix starting at 1.
    std::vector<LocalNodeId>& direct = scratch.direct;
    direct.clear();
    for (LocalNodeId li{1};
         li < closure.size() && closure.depth[li] == 1; ++li)
      direct.push_back(li);
    for (std::size_t i = 0; i < direct.size(); ++i) {
      for (std::size_t j = i + 1; j < direct.size(); ++j) {
        const LocalNodeId a = direct[i], b = direct[j];
        if (closure.local.has_edge(a.value(), b.value())) continue;
        const Weight d =
            overlay.peer_cost_estimate(closure.nodes[a], closure.nodes[b]);
        closure.local.add_edge(a.value(), b.value(), d > 0 ? d : 1e-6);
        closure.probed_pairs.emplace_back(a, b);
      }
    }
  }
}

LocalClosure build_closure(const OverlayNetwork& overlay, PeerId source,
                           std::uint32_t h, ClosureEdges edges) {
  LocalClosure closure;
  ClosureScratch scratch;
  build_closure_into(overlay, source, h, edges, closure, scratch);
  return closure;
}

}  // namespace ace
