// ACE phase 3: adaptive connection replacement. A peer P examines a
// non-flooding neighbor B and probes one of B's neighbors H (the candidate
// selection policy is pluggable — the paper uses random and sketches naive
// and closest in its conclusion):
//
//   cost(P,H) < cost(P,B)                     -> cut P-B, add P-H   (Fig 4b)
//   cost(P,H) >= cost(P,B), cost(P,H) < cost(B,H) -> add P-H, keep P-B (Fig 4c)
//   otherwise                                 -> probe another candidate (4d)
//
// A later round cleans up the temporarily-kept expensive link: when a
// peer's degree exceeds its target, the most expensive non-flooding link is
// trimmed (the paper's deferred "A will cut A-B" step, realized without
// per-pair bookkeeping; DESIGN.md §6 ablates this rule).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "overlay/overlay_network.h"
#include "proto/message.h"
#include "util/rng.h"

namespace ace {

class Transport;

enum class ReplacementPolicy : std::uint8_t {
  kRandom,   // probe one random candidate per non-flooding neighbor (paper)
  kNaive,    // cut own most expensive link, probe for anything cheaper
  kClosest,  // probe every candidate, take the minimum
};

const char* replacement_policy_name(ReplacementPolicy policy) noexcept;

struct OptimizerConfig {
  ReplacementPolicy policy = ReplacementPolicy::kRandom;
  // Non-flooding neighbors examined per peer per round.
  std::size_t replacements_per_round = 2;
  MessageSizing sizing{};
  // Never cut a link that would leave either endpoint below this degree
  // (keeps degenerate topologies connected; churn repair enforces the rest).
  std::size_t min_degree = 1;
  // Degree ceiling for the trim rule; 0 disables trimming.
  std::size_t max_degree = 0;
  // Apply the Fig 4c "add H but keep B" rule. Disabled = aggressive mode
  // that only ever replaces (ablation knob).
  bool keep_rule = true;
};

struct OptimizeOutcome {
  std::size_t probes = 0;
  double probe_traffic = 0;  // size x delay units
  std::size_t cuts = 0;
  std::size_t adds = 0;
  std::size_t trims = 0;

  void merge(const OptimizeOutcome& other) noexcept;
};

class Phase3Optimizer {
 public:
  explicit Phase3Optimizer(OptimizerConfig config);

  const OptimizerConfig& config() const noexcept { return config_; }
  void set_max_degree(std::size_t max_degree) noexcept {
    config_.max_degree = max_degree;
  }

  // Runs phase 3 for `peer`, whose current non-flooding classification is
  // supplied by the engine. Mutates the overlay. Returns what happened so
  // the engine can invalidate forwarding entries and account overhead.
  // `touched` receives the ids of peers whose neighbor lists changed.
  // With a non-null `transport`, candidate probes travel the lossy
  // transport (timeouts, retries); a probe that fails after every retry
  // skips the candidate — the Fig 4(d) "nothing learned" outcome. Null
  // keeps the analytic always-succeeds accounting bit-for-bit.
  OptimizeOutcome optimize_peer(OverlayNetwork& overlay, PeerId peer,
                                std::span<const PeerId> non_flooding, Rng& rng,
                                std::vector<PeerId>& touched,
                                Transport* transport = nullptr);

 private:
  // Probes the candidate, charging overhead; returns the measured cost, or
  // nullopt when a lossy-transport probe gives up.
  std::optional<Weight> probe(const OverlayNetwork& overlay, PeerId a,
                              PeerId b, Transport* transport,
                              OptimizeOutcome& outcome) const;

  // Applies the replacement rules for candidate h against non-flooding
  // neighbor b. Returns true when the overlay changed.
  bool consider_candidate(OverlayNetwork& overlay, PeerId peer, PeerId b,
                          PeerId candidate, Weight candidate_cost,
                          OptimizeOutcome& outcome,
                          std::vector<PeerId>& touched) const;

  void trim_excess(OverlayNetwork& overlay, PeerId peer,
                   std::span<const PeerId> non_flooding,
                   OptimizeOutcome& outcome,
                   std::vector<PeerId>& touched) const;

  OptimizerConfig config_;
};

}  // namespace ace
