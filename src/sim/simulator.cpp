#include "sim/simulator.h"

#include <stdexcept>

#include "util/check.h"

namespace ace {

EventId Simulator::after(SimTime delay, EventQueue::Callback callback) {
  if (delay < 0) throw std::invalid_argument{"Simulator::after: negative delay"};
  return queue_.schedule(queue_.now() + delay, std::move(callback));
}

EventId Simulator::at(SimTime when, EventQueue::Callback callback) {
  return queue_.schedule(when, std::move(callback));
}

void Simulator::arm_periodic(std::size_t index, SimTime when) {
  Periodic& p = periodics_[index];
  if (p.stopped) return;
  p.next_event = queue_.schedule(when, [this, index, when] {
    Periodic& self = periodics_[index];
    self.next_event = kInvalidEvent;
    if (self.stopped) return;
    self.callback(when);
    if (!self.stopped) arm_periodic(index, when + self.period);
  });
}

std::size_t Simulator::every(SimTime period, PeriodicCallback callback,
                             SimTime start) {
  if (!(period > 0))
    throw std::invalid_argument{"Simulator::every: period must be > 0"};
  if (start < 0) start = queue_.now() + period;
  if (start < queue_.now())
    throw std::invalid_argument{"Simulator::every: start in the past"};
  periodics_.push_back(
      Periodic{period, std::move(callback), kInvalidEvent, false});
  const std::size_t handle = periodics_.size() - 1;
  arm_periodic(handle, start);
  return handle;
}

void Simulator::stop_periodic(std::size_t handle) {
  if (handle >= periodics_.size())
    throw std::out_of_range{"Simulator::stop_periodic: bad handle"};
  Periodic& p = periodics_[handle];
  p.stopped = true;
  if (p.next_event != kInvalidEvent) {
    queue_.cancel(p.next_event);
    p.next_event = kInvalidEvent;
  }
}

std::size_t Simulator::run_until(SimTime deadline) {
  if (deadline < queue_.now())
    throw std::invalid_argument{"Simulator::run_until: deadline in the past"};
  if (invariant_audits_enabled()) queue_.debug_validate();
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    queue_.run_next();
    ++executed;
  }
  return executed;
}

std::size_t Simulator::run_all(std::size_t max_events) {
  std::size_t executed = 0;
  while (!queue_.empty() && executed < max_events) {
    queue_.run_next();
    ++executed;
  }
  return executed;
}

}  // namespace ace
