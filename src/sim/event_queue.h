// Discrete-event queue: a binary min-heap of (time, sequence) ordered events
// with O(log n) push/pop and lazy cancellation. The sequence number makes
// simultaneous events fire in scheduling order, which keeps runs
// deterministic for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/digest.h"

namespace ace {

// Simulation time in seconds.
using SimTime = double;

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Schedules `callback` at absolute time `at`. Returns a handle usable
  // with cancel(). `at` must be >= the time of the last popped event.
  EventId schedule(SimTime at, Callback callback);

  // Cancels a pending event. Returns false when the event already fired,
  // was cancelled, or never existed. O(1) (lazy removal).
  bool cancel(EventId id);

  bool empty() const noexcept { return pending_.empty(); }
  std::size_t size() const noexcept { return pending_.size(); }

  // Time of the earliest pending event; requires !empty().
  SimTime next_time();

  // Pops and runs the earliest event; returns its time. Requires !empty().
  SimTime run_next();

  // Time of the most recently popped event (0 before any pop).
  SimTime now() const noexcept { return now_; }

  // Invariant auditor (ACE_CHECK-fatal): time monotonicity — no pending
  // event sits before now() — plus id/sequence bounds and agreement
  // between the heap and the pending-callback map. O(n log n) (copies the
  // heap); call at audit points only.
  void debug_validate() const;

  // Digest of the pending-event set: now(), id/seq counters, and every live
  // entry's (time, seq, id) triple hashed order-insensitively (heap layout
  // is an implementation detail; the *set* of scheduled events is the
  // meaningful state). Callback identity is not hashable — two runs agree
  // here iff they scheduled the same timeline.
  void digest_into(Fnv1a& digest) const;

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    EventId id;
    // Invert comparisons for earliest-first, breaking ties by sequence so
    // FIFO order holds for equal times.
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Removes cancelled entries sitting at the heap top.
  void skim();

  std::priority_queue<Entry> heap_;
  // ace-lint: allow(unordered-container): keyed lookup/erase only — firing
  // order comes from the heap, never from hash iteration.
  std::unordered_map<EventId, Callback> pending_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  SimTime now_ = 0;
};

}  // namespace ace
