#include "sim/event_queue.h"

#include <stdexcept>
#include <utility>

#include "util/check.h"

namespace ace {

EventId EventQueue::schedule(SimTime at, Callback callback) {
  if (at < now_)
    throw std::invalid_argument{"EventQueue::schedule: time in the past"};
  if (!callback)
    throw std::invalid_argument{"EventQueue::schedule: empty callback"};
  const EventId id = next_id_++;
  heap_.push({at, next_seq_++, id});
  pending_.emplace(id, std::move(callback));
  return id;
}

bool EventQueue::cancel(EventId id) { return pending_.erase(id) > 0; }

void EventQueue::skim() {
  while (!heap_.empty() && !pending_.contains(heap_.top().id)) heap_.pop();
}

SimTime EventQueue::next_time() {
  skim();
  if (heap_.empty()) throw std::logic_error{"EventQueue::next_time: empty"};
  return heap_.top().at;
}

SimTime EventQueue::run_next() {
  skim();
  if (heap_.empty()) throw std::logic_error{"EventQueue::run_next: empty"};
  const Entry entry = heap_.top();
  heap_.pop();
  const auto it = pending_.find(entry.id);
  // skim() guaranteed presence.
  Callback callback = std::move(it->second);
  pending_.erase(it);
  ACE_DCHECK_GE(entry.at, now_)
      << " — event queue time went backwards (id " << entry.id << ")";
  now_ = entry.at;
  callback();
  return entry.at;
}

void EventQueue::debug_validate() const {
  // Drain a copy of the heap: pop order must be time-monotone starting at
  // now(), and live heap entries must cover pending_ exactly.
  auto heap = heap_;
  std::size_t live = 0;
  SimTime last = now_;
  while (!heap.empty()) {
    const Entry entry = heap.top();
    heap.pop();
    ACE_CHECK_LT(entry.id, next_id_) << " — event id from the future";
    ACE_CHECK_LT(entry.seq, next_seq_) << " — sequence from the future";
    if (!pending_.contains(entry.id)) continue;  // lazily cancelled
    ++live;
    ACE_CHECK_GE(entry.at, last)
        << " — pending event " << entry.id << " scheduled before now()";
    last = entry.at;
  }
  ACE_CHECK_EQ(live, pending_.size())
      << " — pending callbacks without a heap entry";
}

void EventQueue::digest_into(Fnv1a& digest) const {
  digest.update_double(now_);
  digest.update(next_id_);
  digest.update(next_seq_);
  // Walk a copy of the heap, skipping lazily-cancelled entries; the live
  // set is hashed order-insensitively so the digest does not depend on the
  // heap's internal array layout.
  auto heap = heap_;
  UnorderedDigest live;
  std::size_t count = 0;
  while (!heap.empty()) {
    const Entry entry = heap.top();
    heap.pop();
    if (!pending_.contains(entry.id)) continue;
    ++count;
    Fnv1a e;
    e.update_double(entry.at);
    e.update(entry.seq);
    e.update(entry.id);
    live.add(e.value());
  }
  digest.update(static_cast<std::uint64_t>(count));
  digest.update(live.value());
}

}  // namespace ace
