#include "sim/event_queue.h"

#include <stdexcept>
#include <utility>

namespace ace {

EventId EventQueue::schedule(SimTime at, Callback callback) {
  if (at < now_)
    throw std::invalid_argument{"EventQueue::schedule: time in the past"};
  if (!callback)
    throw std::invalid_argument{"EventQueue::schedule: empty callback"};
  const EventId id = next_id_++;
  heap_.push({at, next_seq_++, id});
  pending_.emplace(id, std::move(callback));
  return id;
}

bool EventQueue::cancel(EventId id) { return pending_.erase(id) > 0; }

void EventQueue::skim() {
  while (!heap_.empty() && !pending_.contains(heap_.top().id)) heap_.pop();
}

SimTime EventQueue::next_time() {
  skim();
  if (heap_.empty()) throw std::logic_error{"EventQueue::next_time: empty"};
  return heap_.top().at;
}

SimTime EventQueue::run_next() {
  skim();
  if (heap_.empty()) throw std::logic_error{"EventQueue::run_next: empty"};
  const Entry entry = heap_.top();
  heap_.pop();
  const auto it = pending_.find(entry.id);
  // skim() guaranteed presence.
  Callback callback = std::move(it->second);
  pending_.erase(it);
  now_ = entry.at;
  callback();
  return entry.at;
}

}  // namespace ace
