// Simulator: thin driver over EventQueue adding relative scheduling,
// periodic processes, and run-until control. All protocol components (churn
// driver, workload generator, ACE engine, message delivery) hang off one
// Simulator instance per experiment.
#pragma once

#include <functional>
#include <vector>

#include "sim/event_queue.h"

namespace ace {

class Simulator {
 public:
  // Time of the most recently executed event (0 before any event runs).
  SimTime now() const noexcept { return queue_.now(); }

  // Schedule `callback` `delay` seconds from now (delay >= 0).
  EventId after(SimTime delay, EventQueue::Callback callback);

  // Schedule at an absolute time (>= now()).
  EventId at(SimTime when, EventQueue::Callback callback);

  bool cancel(EventId id) { return queue_.cancel(id); }

  // Registers a periodic process firing every `period` seconds, first at
  // absolute time `start` (default: one period from now). The callback
  // receives the firing time. Each periodic keeps exactly one pending
  // event, so an idle queue holds at most one event per periodic. Returns
  // a handle for stop_periodic.
  using PeriodicCallback = std::function<void(SimTime)>;
  std::size_t every(SimTime period, PeriodicCallback callback,
                    SimTime start = -1.0);
  void stop_periodic(std::size_t handle);

  // Runs all events with time <= deadline (events scheduled during the run
  // included). Events later than the deadline stay pending. Returns the
  // number of events executed.
  std::size_t run_until(SimTime deadline);

  // Runs until the queue is empty or `max_events` executed. Periodic
  // processes must be stopped first or this never terminates.
  std::size_t run_all(std::size_t max_events = static_cast<std::size_t>(-1));

  std::size_t pending_events() const noexcept { return queue_.size(); }

  // Digest of the pending timeline (see EventQueue::digest_into).
  void digest_into(Fnv1a& digest) const { queue_.digest_into(digest); }

 private:
  struct Periodic {
    SimTime period = 0;
    PeriodicCallback callback;
    EventId next_event = kInvalidEvent;
    bool stopped = false;
  };

  void arm_periodic(std::size_t index, SimTime when);

  EventQueue queue_;
  // ace-digest: exempt(periodics_): bookkeeping for re-arming; every armed
  // occurrence lives in queue_, which is digested in full.
  std::vector<Periodic> periodics_;
};

}  // namespace ace
