// Event-driven lossy message transport. The paper implements ACE "by
// modifying the LimeWire implementation of the Gnutella protocol": probes,
// cost-table exchanges, and connection establishment are real messages that
// cross the physical network and can be delayed, reordered, or lost. This
// subsystem models exactly that layer. Every transmission is a
// MessageHeader-tagged message scheduled on the Simulator with a delivery
// latency derived from the physical path delay between the endpoints'
// hosts, subject to a FaultPlan (drop probability, extra jitter, per-peer
// blackout windows) drawn from a dedicated named Rng stream so fault
// injection never perturbs churn/workload/ACE randomness.
//
// Protocol robustness on top of raw delivery (DESIGN.md §8):
//   * probes     — bounded exponential-backoff retry ladder; a probe whose
//                  every attempt is lost fails cleanly (the caller keeps
//                  stale cost information instead of wrong information);
//   * tables     — cost-table pushes carry the owner's table version;
//                  deliveries reordered by jitter are rejected as stale, so
//                  a receiver's view is monotone in the sender's versions;
//   * connect    — link establishment is a CONNECT/ACK handshake; losing
//                  either leg (after retries) aborts the establishment
//                  instead of half-creating a link.
//
// Outcome semantics: transaction outcomes (probe success/failure, handshake
// success/failure) are decided synchronously at call time from the
// deterministic fault stream, while the constituent wire messages are
// replayed on the event queue for latency, ordering, and in-flight
// accounting. This keeps the ACE engine's per-peer step synchronous (as in
// the analytic kIdeal mode) while making loss, staleness, and partial
// failure first-class observable behaviour. Cost-table deliveries are the
// genuinely asynchronous part: acceptance happens at delivery time, so
// version staleness depends on actual event order.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "overlay/overlay_network.h"
#include "proto/message.h"
#include "sim/simulator.h"
#include "util/options.h"
#include "util/provenance.h"
#include "util/rng.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace ace {

// Selects between the analytic accounting the reproduction shipped with
// (kIdeal — every probe/exchange succeeds instantly, the paper-faithful
// default) and the event-driven lossy transport (kLossy).
enum class TransportMode : std::uint8_t {
  kIdeal,
  kLossy,
};

const char* transport_mode_name(TransportMode mode) noexcept;
// Parses "ideal" / "lossy"; throws std::invalid_argument otherwise.
TransportMode parse_transport_mode(std::string_view name);

// One per-peer outage window: messages sent to or from `peer` while
// start <= t < end are dropped (models a crashed-but-not-departed peer or a
// routing brownout).
struct Blackout {
  PeerId peer = kInvalidPeer;
  SimTime start = 0;
  SimTime end = 0;
};

// Injected faults, evaluated per transmission against the transport's own
// named Rng stream.
struct FaultPlan {
  // Probability that any single transmission is lost.
  double drop_probability = 0.0;
  // Extra per-message delivery jitter, uniform in [0, extra_jitter_max_s).
  // Nonzero jitter reorders same-link messages, which is what exercises the
  // cost-table staleness rejection.
  double extra_jitter_max_s = 0.0;
  std::vector<Blackout> blackouts;

  bool blacked_out(PeerId peer, SimTime t) const noexcept;
};

struct TransportConfig {
  TransportMode mode = TransportMode::kIdeal;
  FaultPlan faults{};
  MessageSizing sizing{};
  // Probe robustness: attempt i is paced timeout * backoff^i after the
  // previous one; after max_probe_attempts the probe fails cleanly.
  double probe_timeout_s = 2.0;
  double backoff_factor = 2.0;
  std::size_t max_probe_attempts = 4;
  // CONNECT/ACK handshake attempts before establishment aborts.
  std::size_t max_connect_attempts = 2;
  // One-way delivery latency = latency_scale x physical path delay.
  double latency_scale = 1.0;
};

// Everything the transport did, for reporting and tests. Counters are per
// transmission (a retried probe counts each attempt separately).
struct TransportStats {
  std::size_t sent = 0;             // transmissions put on the wire
  std::size_t delivered = 0;        // delivery events fired
  std::size_t dropped = 0;          // lost to drop probability or blackout
  std::size_t retries = 0;          // extra probe/handshake attempts
  std::size_t probe_failures = 0;   // probes abandoned after every attempt
  std::size_t stale_tables = 0;     // versioned table updates rejected
  std::size_t connects_failed = 0;  // handshakes that gave up
  double traffic = 0;               // size x delay units put on the wire
};

class Transport {
 public:
  // A message arriving at its destination.
  struct Delivery {
    MessageHeader header;
    PeerId from = kInvalidPeer;
    PeerId to = kInvalidPeer;
    SimTime sent_at = 0;
    SimTime delivered_at = 0;
    std::uint64_t table_version = 0;  // kCostTable payloads only
    bool accepted = true;             // false: rejected as stale
  };
  using DeliveryHandler = std::function<void(const Delivery&)>;

  // `sim`, `overlay`, and `guids` must outlive the transport. `rng` should
  // be a dedicated named stream (Rng::stream(master, "transport")) so fault
  // draws cannot perturb any other component.
  Transport(Simulator& sim, const OverlayNetwork& overlay,
            GuidAllocator& guids, TransportConfig config, Rng rng);

  TransportMode mode() const noexcept { return config_.mode; }
  const TransportConfig& config() const noexcept { return config_; }
  const TransportStats& stats() const noexcept {
    owner_.assert_held();
    return stats_;
  }

  // Observer for every delivery (tests, tracing). One handler at a time.
  void set_delivery_handler(DeliveryHandler handler) {
    owner_.assert_held();
    handler_ = std::move(handler);
  }

  // Fire-and-forget datagram from -> to. Charges traffic, applies the
  // fault plan, and (unless dropped) schedules the delivery event. Returns
  // the message guid (allocated whether or not the message survives, like
  // a real sender would).
  Guid send(MessageType type, PeerId from, PeerId to,
            std::size_t payload_entries = 0);

  // Probe transaction with the bounded retry ladder. On success returns
  // the measured link cost (the physical path delay — identical to what
  // kIdeal records) and schedules the winning PROBE/PROBE_REPLY pair;
  // every attempt's traffic is charged to `traffic` as well as the
  // transport's own stats.
  std::optional<Weight> probe(PeerId from, PeerId to, double& traffic);

  // Versioned cost-table push to every current neighbor of `owner`.
  // Deliveries apply version acceptance at arrival time: a version <= the
  // receiver's last accepted version from `owner` is rejected as stale.
  void publish_table(PeerId owner, std::uint64_t version,
                     std::size_t entries, double& traffic);

  // Last table version `receiver` accepted from `sender` (0 = none yet).
  std::uint64_t accepted_version(PeerId receiver, PeerId sender) const;

  // CONNECT/ACK handshake for link establishment; retries up to
  // max_connect_attempts, then fails cleanly (returns false). Traffic for
  // every attempt is charged to `traffic`.
  bool connect_handshake(PeerId from, PeerId to, double& traffic);

  std::size_t in_flight() const noexcept {
    owner_.assert_held();
    return wire_.size();
  }

  // Digest of all protocol-visible transport state: the in-flight message
  // set (guid, endpoints, type, delivery time), accepted exchange versions,
  // and the stats counters — the engine's "transport-inflight" component.
  void digest_into(Fnv1a& digest) const;

 private:
  struct Wire {
    MessageHeader header;
    PeerId from = kInvalidPeer;
    PeerId to = kInvalidPeer;
    SimTime sent_at = 0;
    SimTime deliver_at = 0;
    std::uint64_t table_version = 0;
  };

  Weight one_way_delay(PeerId from, PeerId to) const;

  struct TransmitResult {
    Guid guid = 0;
    bool delivered = false;
  };

  // Puts one transmission on the wire `send_offset` seconds from now:
  // charges traffic, draws drop/blackout faults, and schedules the
  // delivery event unless the message is lost.
  TransmitResult transmit(MessageType type, PeerId from, PeerId to,
                          std::size_t payload_entries,
                          std::uint64_t table_version, SimTime send_offset,
                          double& traffic) ACE_REQUIRES(owner_);

  void deliver(Guid guid);

  // ace-digest: exempt(sim_): borrowed event queue — digested separately as
  // the engine's "event-queue" component, not transport state.
  Simulator* sim_;
  // ace-digest: exempt(overlay_): borrowed topology — digested separately
  // as the engine's "overlay-adjacency" component.
  const OverlayNetwork* overlay_;
  // ace-digest: exempt(guids_): shared allocator counter; every allocated
  // guid that matters lands in wire_, which is digested.
  GuidAllocator* guids_;
  TransportConfig config_;
  // One transport serves one trial/thread; the capability guards the
  // mutable wire/fault-stream state below (see util/sync.h).
  ThreadOwnership owner_;
  // ace-digest: exempt(rng_): fault-stream position is reproducible driver
  // state (named stream seeded per trial), not protocol-visible state.
  Rng rng_ ACE_GUARDED_BY(owner_);
  TransportStats stats_ ACE_GUARDED_BY(owner_);
  // ace-digest: exempt(handler_): test/tracing observer callback; has no
  // bearing on protocol state.
  DeliveryHandler handler_ ACE_GUARDED_BY(owner_);
  // In-flight messages keyed by guid; std::map so iteration (digests) is
  // deterministic.
  std::map<Guid, Wire> wire_ ACE_GUARDED_BY(owner_);
  // (receiver, sender) -> last accepted table version; ordered for digests.
  std::map<std::pair<PeerId, PeerId>, std::uint64_t> accepted_versions_
      ACE_GUARDED_BY(owner_);
};

// Shared CLI plumbing for the examples: --transport=ideal|lossy,
// --loss-rate=P (in [0,1]), --jitter=SECONDS. Unset keys fall back to the
// paper-faithful ideal mode.
TransportConfig transport_config_from_options(const Options& options);

// Run provenance extended with the transport mode and fault knobs, so a
// digest/figure CSV on disk records whether it came from an ideal or lossy
// run (and at which loss rate).
ProvenanceEntries transport_provenance(std::uint64_t seed,
                                       const TransportConfig& config);

}  // namespace ace
