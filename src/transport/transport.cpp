#include "transport/transport.h"

#include <sstream>
#include <stdexcept>
#include <string>

#include "util/check.h"

namespace ace {

const char* transport_mode_name(TransportMode mode) noexcept {
  switch (mode) {
    case TransportMode::kIdeal:
      return "ideal";
    case TransportMode::kLossy:
      return "lossy";
  }
  return "?";
}

TransportMode parse_transport_mode(std::string_view name) {
  if (name == "ideal") return TransportMode::kIdeal;
  if (name == "lossy") return TransportMode::kLossy;
  throw std::invalid_argument{"parse_transport_mode: unknown mode \"" +
                              std::string{name} + "\" (want ideal|lossy)"};
}

bool FaultPlan::blacked_out(PeerId peer, SimTime t) const noexcept {
  for (const Blackout& b : blackouts) {
    if (b.peer == peer && t >= b.start && t < b.end) return true;
  }
  return false;
}

Transport::Transport(Simulator& sim, const OverlayNetwork& overlay,
                     GuidAllocator& guids, TransportConfig config, Rng rng)
    : sim_(&sim),
      overlay_(&overlay),
      guids_(&guids),
      config_(config),
      rng_(rng) {
  ACE_CHECK(config_.latency_scale > 0.0)
      << " — Transport: latency_scale must be positive";
  ACE_CHECK(config_.max_probe_attempts > 0)
      << " — Transport: need at least one probe attempt";
  ACE_CHECK(config_.max_connect_attempts > 0)
      << " — Transport: need at least one connect attempt";
  ACE_CHECK(config_.faults.drop_probability >= 0.0 &&
            config_.faults.drop_probability <= 1.0)
      << " — Transport: drop probability outside [0, 1]";
}

Weight Transport::one_way_delay(PeerId from, PeerId to) const {
  return overlay_->peer_delay(from, to);
}

Transport::TransmitResult Transport::transmit(
    MessageType type, PeerId from, PeerId to, std::size_t payload_entries,
    std::uint64_t table_version, SimTime send_offset, double& traffic) {
  ACE_CHECK(send_offset >= 0.0) << " — Transport: send offset in the past";
  const SimTime send_at = sim_->now() + send_offset;
  const Weight delay = one_way_delay(from, to);
  const double cost =
      size_factor(config_.sizing, type, payload_entries) * delay;
  stats_.traffic += cost;
  traffic += cost;
  ++stats_.sent;

  TransmitResult result;
  result.guid = guids_->next();

  // Fixed draw schedule per transmission — the drop draw happens whenever
  // drop_probability > 0 and the jitter draw whenever jitter is enabled —
  // so a blackout never shifts the fault stream for later messages.
  const bool unlucky = rng_.chance(config_.faults.drop_probability);
  SimTime jitter = 0.0;
  if (config_.faults.extra_jitter_max_s > 0.0) {
    jitter = rng_.uniform_real(0.0, config_.faults.extra_jitter_max_s);
  }
  const bool lost = unlucky || config_.faults.blacked_out(from, send_at) ||
                    config_.faults.blacked_out(to, send_at);
  if (lost) {
    ++stats_.dropped;
    return result;
  }

  Wire wire;
  wire.header.guid = result.guid;
  wire.header.type = type;
  wire.from = from;
  wire.to = to;
  wire.sent_at = send_at;
  wire.deliver_at = send_at + config_.latency_scale * delay + jitter;
  wire.table_version = table_version;
  wire_.emplace(result.guid, wire);

  const Guid guid = result.guid;
  sim_->at(wire.deliver_at, [this, guid] { deliver(guid); });
  result.delivered = true;
  return result;
}

void Transport::deliver(Guid guid) {
  // Runs from a Simulator event callback — same thread as the schedulers.
  owner_.assert_held();
  const auto it = wire_.find(guid);
  ACE_CHECK(it != wire_.end()) << " — Transport: delivery for unknown guid";
  const Wire wire = it->second;
  wire_.erase(it);
  ++stats_.delivered;

  Delivery delivery;
  delivery.header = wire.header;
  delivery.from = wire.from;
  delivery.to = wire.to;
  delivery.sent_at = wire.sent_at;
  delivery.delivered_at = sim_->now();
  delivery.table_version = wire.table_version;

  if (wire.header.type == MessageType::kCostTable) {
    // Version acceptance happens here, at arrival time, so jitter-induced
    // reordering genuinely produces stale rejections.
    std::uint64_t& accepted =
        accepted_versions_[std::make_pair(wire.to, wire.from)];
    if (wire.table_version > accepted) {
      accepted = wire.table_version;
    } else {
      delivery.accepted = false;
      ++stats_.stale_tables;
    }
  }

  if (handler_) handler_(delivery);
}

Guid Transport::send(MessageType type, PeerId from, PeerId to,
                     std::size_t payload_entries) {
  owner_.assert_held();
  double ignored = 0.0;
  return transmit(type, from, to, payload_entries, /*table_version=*/0,
                  /*send_offset=*/0.0, ignored)
      .guid;
}

std::optional<Weight> Transport::probe(PeerId from, PeerId to,
                                       double& traffic) {
  owner_.assert_held();
  SimTime offset = 0.0;
  SimTime timeout = config_.probe_timeout_s;
  const Weight delay = one_way_delay(from, to);
  for (std::size_t attempt = 0; attempt < config_.max_probe_attempts;
       ++attempt) {
    if (attempt > 0) ++stats_.retries;
    const bool request_ok =
        transmit(MessageType::kProbe, from, to, 0, 0, offset, traffic)
            .delivered;
    if (request_ok) {
      // The echo leaves `to` once the request arrives (one scaled one-way
      // delay after the attempt started; the request's jitter, if any, is
      // wire-level and does not reset the prober's timeout clock).
      const SimTime reply_offset = offset + config_.latency_scale * delay;
      const bool reply_ok = transmit(MessageType::kProbeReply, to, from, 0,
                                     0, reply_offset, traffic)
                                .delivered;
      // Wire timing/traffic above use the true delay; the value reported
      // to the prober is its belief — the oracle estimate when one is
      // attached to the overlay (floored like link weights, so recorded
      // tables satisfy the same positivity the exact path guarantees),
      // the same true delay when not.
      if (reply_ok) {
        if (overlay_->cost_oracle() == nullptr) return delay;
        const Weight est = overlay_->peer_cost_estimate(from, to);
        return est > 0 ? est : 1e-6;
      }
    }
    offset += timeout;
    timeout *= config_.backoff_factor;
  }
  ++stats_.probe_failures;
  return std::nullopt;
}

void Transport::publish_table(PeerId owner, std::uint64_t version,
                              std::size_t entries, double& traffic) {
  owner_.assert_held();
  for (const Neighbor& n : overlay_->neighbors(owner)) {
    transmit(MessageType::kCostTable, owner, peer_of(n), entries, version,
             /*send_offset=*/0.0, traffic);
  }
}

std::uint64_t Transport::accepted_version(PeerId receiver,
                                          PeerId sender) const {
  owner_.assert_held();
  const auto it =
      accepted_versions_.find(std::make_pair(receiver, sender));
  return it == accepted_versions_.end() ? 0 : it->second;
}

bool Transport::connect_handshake(PeerId from, PeerId to, double& traffic) {
  owner_.assert_held();
  SimTime offset = 0.0;
  SimTime timeout = config_.probe_timeout_s;
  const Weight delay = one_way_delay(from, to);
  for (std::size_t attempt = 0; attempt < config_.max_connect_attempts;
       ++attempt) {
    if (attempt > 0) ++stats_.retries;
    const bool request_ok =
        transmit(MessageType::kConnect, from, to, 0, 0, offset, traffic)
            .delivered;
    if (request_ok) {
      // The ack is a CONNECT echo from the acceptor.
      const SimTime ack_offset = offset + config_.latency_scale * delay;
      const bool ack_ok = transmit(MessageType::kConnect, to, from, 0, 0,
                                   ack_offset, traffic)
                              .delivered;
      if (ack_ok) return true;
    }
    offset += timeout;
    timeout *= config_.backoff_factor;
  }
  ++stats_.connects_failed;
  return false;
}

void Transport::digest_into(Fnv1a& digest) const {
  owner_.assert_held();
  digest.update(static_cast<std::uint64_t>(config_.mode));
  digest.update(static_cast<std::uint64_t>(stats_.sent));
  digest.update(static_cast<std::uint64_t>(stats_.delivered));
  digest.update(static_cast<std::uint64_t>(stats_.dropped));
  digest.update(static_cast<std::uint64_t>(stats_.retries));
  digest.update(static_cast<std::uint64_t>(stats_.probe_failures));
  digest.update(static_cast<std::uint64_t>(stats_.stale_tables));
  digest.update(static_cast<std::uint64_t>(stats_.connects_failed));
  digest.update_double(stats_.traffic);

  digest.update(static_cast<std::uint64_t>(wire_.size()));
  for (const auto& [guid, wire] : wire_) {
    digest.update(guid);
    digest.update(static_cast<std::uint64_t>(wire.header.type));
    digest.update(wire.from);
    digest.update(wire.to);
    digest.update_double(wire.sent_at);
    digest.update_double(wire.deliver_at);
    digest.update(wire.table_version);
  }

  digest.update(static_cast<std::uint64_t>(accepted_versions_.size()));
  for (const auto& [key, version] : accepted_versions_) {
    digest.update(key.first);
    digest.update(key.second);
    digest.update(version);
  }
}

TransportConfig transport_config_from_options(const Options& options) {
  TransportConfig config;
  config.mode = parse_transport_mode(options.get_string("transport", "ideal"));
  const double loss = options.get_double("loss-rate", 0.0);
  if (loss < 0.0 || loss > 1.0) {
    throw std::invalid_argument{"--loss-rate must be in [0, 1]"};
  }
  config.faults.drop_probability = loss;
  const double jitter = options.get_double("jitter", 0.0);
  if (jitter < 0.0) {
    throw std::invalid_argument{"--jitter must be >= 0"};
  }
  config.faults.extra_jitter_max_s = jitter;
  return config;
}

namespace {

std::string format_double(double value) {
  std::ostringstream out;
  out << value;
  return out.str();
}

}  // namespace

ProvenanceEntries transport_provenance(std::uint64_t seed,
                                       const TransportConfig& config) {
  ProvenanceEntries entries = run_provenance(seed);
  entries.emplace_back("transport", transport_mode_name(config.mode));
  if (config.mode == TransportMode::kLossy) {
    entries.emplace_back("loss-rate",
                         format_double(config.faults.drop_probability));
    entries.emplace_back("jitter",
                         format_double(config.faults.extra_jitter_max_s));
  }
  return entries;
}

}  // namespace ace
