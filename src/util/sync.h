// Annotated synchronization primitives (util/thread_annotations.h). Two
// concurrency regimes exist in this codebase, and each gets a capability
// type the Clang thread-safety analysis can check:
//
//   * Mutex / MutexLock / CondVar — a thin annotated wrapper over
//     std::mutex / std::unique_lock / std::condition_variable for the few
//     genuinely multi-threaded structures (TrialRunner's worker pool).
//     CondVar::wait deliberately has no predicate overload: a predicate
//     lambda is analyzed as a separate function that does not hold the
//     caller's capability, so guarded reads inside it would defeat the
//     analysis. Callers write the `while (!cond) cv.wait(lock);` loop
//     themselves, where the scoped capability is visible.
//
//   * ThreadOwnership — a zero-cost capability expressing "this structure
//     is used by one thread at a time" (PhysicalNetwork's row cache,
//     AceEngine's peer cache, Transport's wire state: per-trial state that
//     the TrialRunner contract says is never shared). Members declared
//     ACE_GUARDED_BY(owner_) are only touchable from functions that called
//     owner_.assert_held() or are ACE_REQUIRES(owner_), so a future
//     intra-trial parallelism change that leaks such a structure across
//     worker threads fails the thread-safety build instead of racing. In
//     audit builds (ACE_AUDIT_INVARIANTS or !NDEBUG) assert_held also
//     checks the runtime thread identity: the first guarded access binds
//     the owning thread, later accesses must match until detach().
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "util/check.h"
#include "util/thread_annotations.h"

namespace ace {

// Exclusive mutex. Prefer MutexLock for scoped acquisition; the raw
// lock()/unlock() pair exists for the annotation's sake and for CondVar.
class ACE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACE_ACQUIRE() { impl_.lock(); }
  void unlock() ACE_RELEASE() { impl_.unlock(); }
  bool try_lock() ACE_TRY_ACQUIRE(true) { return impl_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex impl_;
};

// RAII scoped acquisition of a Mutex for its full lifetime (the analysis
// treats the capability as held from construction to destruction).
class ACE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACE_ACQUIRE(mutex) : lock_{mutex.impl_} {}
  ~MutexLock() ACE_RELEASE() = default;
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

// Condition variable usable only with MutexLock. wait() atomically releases
// the lock, sleeps, and reacquires before returning — from the analysis's
// point of view the capability is held throughout, which is sound because
// every return re-establishes it (guarded state may have changed, which is
// why callers must loop on their predicate).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { impl_.wait(lock.lock_); }
  void notify_one() noexcept { impl_.notify_one(); }
  void notify_all() noexcept { impl_.notify_all(); }

 private:
  std::condition_variable impl_;
};

// Capability for single-thread-at-a-time structures (see file comment).
// Copying or moving a ThreadOwnership (as part of its enclosing structure)
// resets the runtime binding: the copy/destination is a fresh handoff
// point, bound by its own first guarded access.
class ACE_CAPABILITY("thread ownership") ThreadOwnership {
 public:
  ThreadOwnership() noexcept = default;
  ThreadOwnership(const ThreadOwnership&) noexcept {}
  ThreadOwnership& operator=(const ThreadOwnership&) noexcept {
    owner_.store(std::thread::id{}, std::memory_order_relaxed);
    return *this;
  }

  // Declares (to the analysis) that the calling context owns the enclosing
  // structure. Free in release builds; audit builds verify the claim
  // against the actual thread identity and abort on a violation.
  void assert_held() const noexcept ACE_ASSERT_CAPABILITY(this) {
#if defined(ACE_AUDIT_INVARIANTS) || !defined(NDEBUG)
    check_owner_();
#endif
  }

  // Releases the runtime binding for an intentional sequential handoff
  // (build on one thread, hand to another). The next assert_held() rebinds.
  void detach() const noexcept {
    owner_.store(std::thread::id{}, std::memory_order_relaxed);
  }

 private:
  void check_owner_() const noexcept {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};
    if (owner_.compare_exchange_strong(expected, self,
                                       std::memory_order_relaxed))
      return;  // first guarded access binds the owner
    ACE_CHECK(expected == self)
        << "ThreadOwnership violation: structure touched from a second "
           "thread without detach() (bound owner vs this thread)";
  }

  mutable std::atomic<std::thread::id> owner_{};
};

}  // namespace ace
