#include "util/check.h"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace ace {

namespace {

bool initial_audit_state() noexcept {
#if defined(ACE_AUDIT_INVARIANTS)
  bool enabled = true;
#else
  bool enabled = false;
#endif
  if (const char* env = std::getenv("ACE_AUDIT")) {
    const std::string value{env};
    if (value == "0" || value == "off" || value == "false") enabled = false;
    if (value == "1" || value == "on" || value == "true") enabled = true;
  }
  return enabled;
}

std::atomic<bool>& audit_storage() noexcept {
  static std::atomic<bool> enabled{initial_audit_state()};
  return enabled;
}

bool initial_force_full_rebuild() noexcept {
  bool enabled = false;
  if (const char* env = std::getenv("ACE_FORCE_FULL_REBUILD")) {
    const std::string value{env};
    if (value == "0" || value == "off" || value == "false") enabled = false;
    if (value == "1" || value == "on" || value == "true") enabled = true;
  }
  return enabled;
}

std::atomic<bool>& force_full_rebuild_storage() noexcept {
  static std::atomic<bool> enabled{initial_force_full_rebuild()};
  return enabled;
}

}  // namespace

bool invariant_audits_enabled() noexcept {
  return audit_storage().load(std::memory_order_relaxed);
}

void set_invariant_audits(bool enabled) noexcept {
  audit_storage().store(enabled, std::memory_order_relaxed);
}

bool force_full_rebuild_enabled() noexcept {
  return force_full_rebuild_storage().load(std::memory_order_relaxed);
}

void set_force_full_rebuild(bool enabled) noexcept {
  force_full_rebuild_storage().store(enabled, std::memory_order_relaxed);
}

namespace detail {

void check_failed(const char* file, int line, const char* func,
                  const std::string& message) {
  // One flush-terminated stderr write: the process is about to abort, and
  // death tests / crash logs must see the full diagnostic.
  std::cerr << file << ':' << line << ": in " << func << ": " << message
            << std::endl;
  std::abort();
}

}  // namespace detail
}  // namespace ace
