// Paper-shaped output: every bench binary prints its figure/table as both an
// aligned ASCII table (human-readable, mirrors the paper's rows) and CSV
// (machine-readable, for replotting). One TableWriter per figure.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace ace {

// A cell is a string, an integer, or a double (printed with fixed precision).
using Cell = std::variant<std::string, std::int64_t, double>;

class TableWriter {
 public:
  explicit TableWriter(std::string title, std::vector<std::string> columns);

  // Number of decimal places for double cells (default 2).
  void set_precision(int digits);

  // Provenance entries emitted as `# key: value` comment lines ahead of
  // the CSV header (see util/provenance.h). ASCII output is unaffected.
  void set_provenance(
      std::vector<std::pair<std::string, std::string>> entries);

  void add_row(std::vector<Cell> cells);
  std::size_t rows() const noexcept { return rows_.size(); }

  // Aligned ASCII rendering with the title and a column header rule.
  std::string ascii() const;
  // RFC-4180-ish CSV (fields containing commas/quotes are quoted).
  std::string csv() const;

  // Print ascii() to `out` and, if csv_path is non-empty, write csv() there.
  void print(std::ostream& out, const std::string& csv_path = {}) const;

 private:
  std::string render_cell(const Cell& cell) const;

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::pair<std::string, std::string>> provenance_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 2;
};

// Convenience: format a double with fixed digits (used in log lines).
std::string fixed(double value, int digits = 2);

}  // namespace ace
