// Lightweight statistics toolkit used to summarize simulation measurements:
// running moments (Welford), histograms, percentiles, and the linear
// regression used to fit power-law exponents of degree distributions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace ace {

// Online mean/variance accumulator (Welford's algorithm). O(1) space,
// numerically stable for long runs.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

  // Half-width of the ~95% confidence interval for the mean, using the
  // normal approximation (1.96 * s / sqrt(n)).
  double ci95_halfwidth() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Percentile of a sample (linear interpolation between closest ranks).
// p in [0, 100]. The input span is copied and sorted.
double percentile(std::span<const double> values, double p);

// Fixed-bin histogram over [lo, hi); values outside are clamped into the
// first/last bin. Used for lifetime and delay distribution sanity checks.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::size_t bin_count(std::size_t bin) const;
  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t total() const noexcept { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  // Render a compact ASCII bar chart (for example programs / debugging).
  std::string ascii(std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

// Ordinary least squares fit y = a + b*x. Returns {a, b, r2}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

// Maximum-likelihood estimate of the power-law exponent alpha for discrete
// data x >= x_min (Clauset-Shalizi-Newman continuous approximation):
//   alpha = 1 + n / sum(ln(x_i / (x_min - 0.5)))
// Returns 0 when fewer than two qualifying samples exist.
double power_law_alpha_mle(std::span<const std::size_t> degrees,
                           std::size_t x_min = 2);

// Frequency count helper: value -> occurrences.
std::map<std::size_t, std::size_t> frequency_table(
    std::span<const std::size_t> values);

}  // namespace ace
