#include "util/digest.h"

#include <bit>
#include <fstream>

#include "util/check.h"

namespace ace {

void Fnv1a::update_double(double d) noexcept {
  if (d == 0.0) d = 0.0;  // collapse -0.0
  update(std::bit_cast<std::uint64_t>(d));
}

std::uint64_t UnorderedDigest::value() const noexcept {
  // splitmix64-style finalization of (sum, xor, count) so that structurally
  // different multisets with equal sums don't trivially collide.
  auto mix = [](std::uint64_t z) noexcept {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  return mix(sum_ + 0x9e3779b97f4a7c15ull) ^ mix(xor_) ^ mix(count_);
}

std::uint64_t StateDigest::combined() const noexcept {
  Fnv1a h;
  for (const auto& [name, value] : components) {
    h.update(name);
    h.update(value);
  }
  return h.value();
}

std::string digest_hex(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xf];
    value >>= 4;
  }
  return out;
}

std::string first_divergence(const StateDigest& a, const StateDigest& b) {
  const std::size_t shared = std::min(a.components.size(), b.components.size());
  for (std::size_t i = 0; i < shared; ++i) {
    if (a.components[i] != b.components[i]) {
      // A renamed component is itself a divergence; report the expected name.
      return a.components[i].first;
    }
  }
  if (a.components.size() != b.components.size()) return "component-set";
  return {};
}

void check_state_digests_equal(const StateDigest& expected,
                               const StateDigest& actual) {
  const std::string diverged = first_divergence(expected, actual);
  if (diverged.empty()) return;
  if (diverged == "component-set") {
    ACE_CHECK_EQ(expected.components.size(), actual.components.size())
        << " — state digests disagree on the component set itself";
    return;
  }
  std::uint64_t want = 0, got = 0;
  for (const auto& [name, value] : expected.components)
    if (name == diverged) want = value;
  for (const auto& [name, value] : actual.components)
    if (name == diverged) got = value;
  ACE_CHECK(false) << "state digest mismatch — first diverging component: "
                   << diverged << " (expected " << digest_hex(want)
                   << ", got " << digest_hex(got) << ")";
}

void DigestTrace::record(std::string_view label, const StateDigest& digest) {
  for (const auto& [component, value] : digest.components)
    rows_.push_back({std::string{label}, component, value});
  rows_.push_back({std::string{label}, "combined", digest.combined()});
}

void DigestTrace::record(std::string_view label, std::string_view component,
                         std::uint64_t value) {
  rows_.push_back({std::string{label}, std::string{component}, value});
}

void DigestTrace::extend(const DigestTrace& other) {
  rows_.insert(rows_.end(), other.rows_.begin(), other.rows_.end());
}

std::string DigestTrace::csv() const {
  std::string out = "label,component,digest\n";
  for (const Row& row : rows_) {
    out += row.label;
    out += ',';
    out += row.component;
    out += ',';
    out += digest_hex(row.value);
    out += '\n';
  }
  return out;
}

bool DigestTrace::write(const std::string& path) const {
  return write(path, {});
}

bool DigestTrace::write(
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& provenance)
    const {
  std::ofstream file{path};
  if (!file) return false;
  for (const auto& [key, value] : provenance)
    file << "# " << key << ": " << value << '\n';
  file << csv();
  return static_cast<bool>(file);
}

}  // namespace ace
