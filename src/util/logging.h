// Minimal leveled logger. Simulation code logs through this so that noisy
// per-message traces can be enabled during debugging (ACE_LOG=debug) without
// polluting bench output by default.
#pragma once

#include <sstream>
#include <string>

namespace ace {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global threshold; initialized from the ACE_LOG environment variable
// (debug|info|warn|error|off), default warn.
LogLevel log_threshold() noexcept;
void set_log_threshold(LogLevel level) noexcept;
// Throws std::invalid_argument for anything but debug|info|warn|error|off.
LogLevel parse_log_level(const std::string& name);
// Canonical lowercase name; round-trips through parse_log_level.
const char* log_level_name(LogLevel level) noexcept;

namespace detail {
void emit(LogLevel level, const std::string& message);
}

// Stream-style log statement that only evaluates its operands when enabled:
//   ACE_LOG(kInfo) << "peers=" << n;
#define ACE_LOG(level)                                        \
  for (bool ace_log_once =                                    \
           (::ace::LogLevel::level >= ::ace::log_threshold()); \
       ace_log_once; ace_log_once = false)                    \
  ::ace::LogStatement { ::ace::LogLevel::level }

class LogStatement {
 public:
  explicit LogStatement(LogLevel level) : level_{level} {}
  ~LogStatement() { detail::emit(level_, stream_.str()); }
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;

  template <typename T>
  LogStatement& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace ace
