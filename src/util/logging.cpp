#include "util/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace ace {

namespace {

LogLevel initial_threshold() {
  const char* env = std::getenv("ACE_LOG");
  // The default applies only when ACE_LOG is unset or empty; a present but
  // malformed value is a user error and must fail loudly, not silently run
  // the whole experiment at the wrong verbosity.
  if (env == nullptr || *env == '\0') return LogLevel::kWarn;
  try {
    return parse_log_level(env);
  } catch (const std::exception& e) {
    std::cerr << "ACE_LOG: " << e.what() << '\n';
    std::abort();
  }
}

std::atomic<LogLevel>& threshold_storage() noexcept {
  static std::atomic<LogLevel> threshold{initial_threshold()};
  return threshold;
}

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_threshold() noexcept {
  return threshold_storage().load(std::memory_order_relaxed);
}

void set_log_threshold(LogLevel level) noexcept {
  threshold_storage().store(level, std::memory_order_relaxed);
}

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "?";
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  throw std::invalid_argument{"unknown log level '" + name +
                              "' (expected debug|info|warn|error|off)"};
}

namespace detail {
void emit(LogLevel level, const std::string& message) {
  std::clog << '[' << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace ace
