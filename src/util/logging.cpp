#include "util/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace ace {

namespace {

LogLevel initial_threshold() {
  if (const char* env = std::getenv("ACE_LOG")) {
    try {
      return parse_log_level(env);
    } catch (const std::exception&) {
      // Fall through to the default on a malformed value.
    }
  }
  return LogLevel::kWarn;
}

std::atomic<LogLevel>& threshold_storage() noexcept {
  static std::atomic<LogLevel> threshold{initial_threshold()};
  return threshold;
}

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_threshold() noexcept {
  return threshold_storage().load(std::memory_order_relaxed);
}

void set_log_threshold(LogLevel level) noexcept {
  threshold_storage().store(level, std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  throw std::invalid_argument{"unknown log level: " + name};
}

namespace detail {
void emit(LogLevel level, const std::string& message) {
  std::clog << '[' << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace ace
