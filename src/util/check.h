// Runtime invariant checking. ACE_CHECK is always on and fatal: it prints a
// diagnostic (source location, failed condition, optional stream-style
// message) and aborts, so corrupted simulator state dies loudly instead of
// producing silently wrong figures. ACE_DCHECK compiles away in optimized
// builds unless the build enables invariant audits (-DACE_AUDIT_INVARIANTS=ON
// at configure time) or NDEBUG is off.
//
//   ACE_CHECK(ok) << "peer " << p << " lost its table";
//   ACE_CHECK_EQ(closure.nodes.size(), closure.depth.size());
//
// The _EQ/_NE/_LT/_LE/_GT/_GE variants print both operand values on failure.
// Subsystem debug_validate() auditors are built on these macros and are run
// by AceEngine at phase boundaries when invariant_audits_enabled().
#pragma once

#include <memory>
#include <sstream>
#include <string>

namespace ace {

// Whether AceEngine (and other hot paths) should run their debug_validate()
// invariant audits. Defaults to true when compiled with ACE_AUDIT_INVARIANTS,
// false otherwise; the ACE_AUDIT environment variable (0/1) overrides the
// compiled-in default, and tests may toggle it at runtime.
bool invariant_audits_enabled() noexcept;
void set_invariant_audits(bool enabled) noexcept;

// Whether the incremental fast paths (the engine's closure/tree cache and
// the query-path adjacency snapshot) are disabled process-wide, forcing the
// always-rebuild path every step — the differential oracle for the
// incremental engine (DESIGN.md §11). Defaults to false; the
// ACE_FORCE_FULL_REBUILD environment variable (0/1) overrides the default,
// and tests may toggle it at runtime. AceConfig::force_full_rebuild does
// the same for a single engine instance. Results are bit-identical either
// way — this flag only chooses which implementation produces them.
bool force_full_rebuild_enabled() noexcept;
void set_force_full_rebuild(bool enabled) noexcept;

namespace detail {

// Prints the failure diagnostic to stderr and aborts.
[[noreturn]] void check_failed(const char* file, int line, const char* func,
                               const std::string& message);

// Accumulates the user's stream-style message; the destructor fires the
// fatal diagnostic, so a CheckStream only ever exists on the failure path.
class CheckStream {
 public:
  CheckStream(const char* file, int line, const char* func,
              const char* condition) noexcept
      : file_{file}, line_{line}, func_{func} {
    stream_ << "ACE_CHECK failed: " << condition;
  }
  CheckStream(const CheckStream&) = delete;
  CheckStream& operator=(const CheckStream&) = delete;
  [[noreturn]] ~CheckStream() { check_failed(file_, line_, func_, stream_.str()); }

  std::ostream& stream() noexcept { return stream_; }

 private:
  const char* file_;
  int line_;
  const char* func_;
  std::ostringstream stream_;
};

// Swallows streamed operands of a disabled ACE_DCHECK.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) noexcept {
    return *this;
  }
};

// Builds the "expr (lhs vs rhs)" failure text for a binary check, or null
// when the comparison holds. Returning a heap string keeps the success path
// to a single branch.
template <typename A, typename B, typename Op>
std::unique_ptr<std::string> check_op_failure(const A& a, const B& b, Op op,
                                              const char* expr) {
  if (op(a, b)) return nullptr;
  std::ostringstream os;
  os << expr << " (" << a << " vs " << b << ")";
  return std::make_unique<std::string>(os.str());
}

}  // namespace detail
}  // namespace ace

// `while` (not `if`) avoids the dangling-else pitfall in unbraced callers;
// the body aborts, so it runs at most once. The CheckStream expression is
// parenthesized so the commas in its braced init don't split macro
// arguments when an ACE_CHECK lands inside another macro (EXPECT_DEATH).
#define ACE_CHECK(condition)   \
  while (!(condition))         \
  (::ace::detail::CheckStream{ \
       __FILE__, __LINE__, __func__, #condition}.stream())

#define ACE_CHECK_OP_(lhs, rhs, op, expr)                                     \
  while (auto ace_check_failure_ = ::ace::detail::check_op_failure(           \
             (lhs), (rhs),                                                    \
             [](const auto& ace_a_, const auto& ace_b_) {                     \
               return ace_a_ op ace_b_;                                       \
             },                                                               \
             expr))                                                           \
  (::ace::detail::CheckStream{__FILE__, __LINE__, __func__,                   \
                              ace_check_failure_->c_str()}                    \
       .stream())

#define ACE_CHECK_EQ(a, b) ACE_CHECK_OP_(a, b, ==, #a " == " #b)
#define ACE_CHECK_NE(a, b) ACE_CHECK_OP_(a, b, !=, #a " != " #b)
#define ACE_CHECK_LT(a, b) ACE_CHECK_OP_(a, b, <, #a " < " #b)
#define ACE_CHECK_LE(a, b) ACE_CHECK_OP_(a, b, <=, #a " <= " #b)
#define ACE_CHECK_GT(a, b) ACE_CHECK_OP_(a, b, >, #a " > " #b)
#define ACE_CHECK_GE(a, b) ACE_CHECK_OP_(a, b, >=, #a " >= " #b)

#if defined(ACE_AUDIT_INVARIANTS) || !defined(NDEBUG)
#define ACE_DCHECK(condition) ACE_CHECK(condition)
#define ACE_DCHECK_EQ(a, b) ACE_CHECK_EQ(a, b)
#define ACE_DCHECK_NE(a, b) ACE_CHECK_NE(a, b)
#define ACE_DCHECK_LT(a, b) ACE_CHECK_LT(a, b)
#define ACE_DCHECK_LE(a, b) ACE_CHECK_LE(a, b)
#define ACE_DCHECK_GT(a, b) ACE_CHECK_GT(a, b)
#define ACE_DCHECK_GE(a, b) ACE_CHECK_GE(a, b)
#else
// Operands stay syntactically checked but are never evaluated.
#define ACE_DCHECK_DISABLED_(condition) \
  while (false && !(condition)) ::ace::detail::NullStream {}
#define ACE_DCHECK(condition) ACE_DCHECK_DISABLED_(condition)
#define ACE_DCHECK_EQ(a, b) ACE_DCHECK_DISABLED_((a) == (b))
#define ACE_DCHECK_NE(a, b) ACE_DCHECK_DISABLED_((a) != (b))
#define ACE_DCHECK_LT(a, b) ACE_DCHECK_DISABLED_((a) < (b))
#define ACE_DCHECK_LE(a, b) ACE_DCHECK_DISABLED_((a) <= (b))
#define ACE_DCHECK_GT(a, b) ACE_DCHECK_DISABLED_((a) > (b))
#define ACE_DCHECK_GE(a, b) ACE_DCHECK_DISABLED_((a) >= (b))
#endif
