#include "util/provenance.h"

#include "util/build_info.h"
#include "util/digest.h"

namespace ace {

ProvenanceEntries build_provenance() {
  return {
      {"git", ACE_GIT_DESCRIBE},
      {"build-type", ACE_BUILD_TYPE},
  };
}

ProvenanceEntries run_provenance(std::uint64_t seed,
                                 std::uint64_t config_digest) {
  ProvenanceEntries entries = build_provenance();
  entries.emplace_back("seed", std::to_string(seed));
  if (config_digest != 0)
    entries.emplace_back("config-digest", digest_hex(config_digest));
  return entries;
}

}  // namespace ace
