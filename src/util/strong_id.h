// Strong index types for the simulator's id domains. The protocol translates
// between physical hosts, overlay peers, and closure-local vertex indices
// constantly; with every domain a raw uint32_t, a cross-domain mix compiles
// silently and surfaces only as a wrong digest or an out-of-bounds audit
// failure. StrongId<Tag> makes the domain part of the type: construction
// from a raw integer is explicit, there is no implicit conversion between
// tags or back to the underlying integer, and the only arithmetic is
// increment/+offset within a domain. The wrapper holds exactly one integer
// and every operation is a one-liner the optimizer flattens, so Release
// code is instruction-identical to the raw version (bench_micro's
// typed_vs_raw_index case pins this down).
//
// Domain map (DESIGN.md §13):
//   HostId          — physical topology vertices (net/physical_network.h);
//   PeerId          — overlay peers (overlay/overlay_network.h);
//   LocalNodeId     — closure-local vertex indices (ace/closure.h);
//   TrialIndex      — parallel trial slots (core/trial_runner.h);
//   TopologyVersion — per-peer dirty counters (cache invalidation).
//
// NodeId (graph/graph.h) deliberately stays a raw uint32_t: Graph, the CSR
// kernels, and Dijkstra are the domain-agnostic compute substrate that both
// the host and local domains run on. Conversions in and out of that kernel
// layer are explicit: feeding `id.value()` INTO a kernel is always fine;
// constructing a strong id FROM a raw value is a boundary that must carry a
// `// ace-id: boundary(reason)` annotation (enforced by the ace_lint
// raw-id-cast rule; see tools/ace_lint.py).
//
// IdVector<Id, T> / IdSpan<Id, T> wrap the flat SoA arrays so they are
// indexable only by their own domain. Under audit builds
// (-DACE_AUDIT_INVARIANTS=ON) every access is bounds-checked; Release
// builds compile the check away. Kernels that need the raw storage use
// data().
#pragma once

#include <compare>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/check.h"

namespace ace {

template <class Tag, class Underlying = std::uint32_t>
class StrongId {
  static_assert(std::unsigned_integral<Underlying>,
                "id domains are unsigned index spaces");

 public:
  using strong_id_tag = Tag;
  using underlying_type = Underlying;

  // Zero-initialized, like the raw integers it replaces.
  constexpr StrongId() noexcept = default;
  explicit constexpr StrongId(Underlying value) noexcept : value_{value} {}

  // All-ones sentinel — the same bit pattern the raw kInvalid* constants
  // used, so digests of sentinel-bearing state are unchanged.
  static constexpr StrongId invalid() noexcept {
    return StrongId{static_cast<Underlying>(-1)};
  }

  constexpr Underlying value() const noexcept { return value_; }
  constexpr Underlying to_underlying() const noexcept { return value_; }
  constexpr bool valid() const noexcept { return *this != invalid(); }

  // Same-domain comparison only; comparing against another tag's id is a
  // compile error (tests/compile_fail/cross_tag_compare.cpp).
  friend constexpr bool operator==(StrongId, StrongId) noexcept = default;
  friend constexpr auto operator<=>(StrongId, StrongId) noexcept = default;

  // id <op> raw integer — loop bounds (`p < overlay.peer_count()`) and test
  // literals (`EXPECT_EQ(host_of(p), 2u)`) compare against sizes and
  // constants without leaving the domain. Sign-safe for any mix of widths.
  template <std::integral I>
    requires(!std::same_as<I, bool>)
  friend constexpr bool operator==(StrongId a, I b) noexcept {
    return std::cmp_equal(a.value_, b);
  }
  template <std::integral I>
    requires(!std::same_as<I, bool>)
  friend constexpr std::strong_ordering operator<=>(StrongId a, I b) noexcept {
    if (std::cmp_less(a.value_, b)) return std::strong_ordering::less;
    if (std::cmp_equal(a.value_, b)) return std::strong_ordering::equivalent;
    return std::strong_ordering::greater;
  }

  // Within-domain arithmetic: increment (loops, version bumps) and +offset.
  // Everything else — multiplication, cross-domain sums — is meaningless on
  // an index and does not compile (tests/compile_fail/raw_arithmetic.cpp).
  constexpr StrongId& operator++() noexcept {
    ++value_;
    return *this;
  }
  constexpr StrongId operator++(int) noexcept {
    StrongId old{*this};
    ++value_;
    return old;
  }
  friend constexpr StrongId operator+(StrongId id, Underlying offset) noexcept {
    return StrongId{static_cast<Underlying>(id.value_ + offset)};
  }
  friend constexpr StrongId operator-(StrongId id, Underlying offset) noexcept {
    return StrongId{static_cast<Underlying>(id.value_ - offset)};
  }
  friend constexpr Underlying operator-(StrongId a, StrongId b) noexcept {
    return static_cast<Underlying>(a.value_ - b.value_);
  }

  // Prints the bare value, so ACE_CHECK/log messages read as before.
  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << id.value_;
  }

 private:
  Underlying value_ = 0;
};

// Matches any StrongId instantiation (digest feeding, generic helpers).
template <class T>
concept StrongIdType = requires(const T& t) {
  typename T::strong_id_tag;
  { t.value() } -> std::convertible_to<std::uint64_t>;
};

// --- the simulator's id domains -------------------------------------------

struct HostIdTag {};
struct PeerIdTag {};
struct LocalNodeIdTag {};
struct TrialIndexTag {};
struct TopologyVersionTag {};

// Physical topology vertex (a router/end host in the generated Internet).
using HostId = StrongId<HostIdTag>;
// Overlay peer (a Gnutella servent attached to some host).
using PeerId = StrongId<PeerIdTag>;
// Vertex index inside one peer's h-neighbor closure (0 = the source).
using LocalNodeId = StrongId<LocalNodeIdTag>;
// Parallel trial slot in a TrialRunner sweep.
using TrialIndex = StrongId<TrialIndexTag>;
// Monotone per-peer topology dirty counter (cache invalidation).
using TopologyVersion = StrongId<TopologyVersionTag, std::uint64_t>;

inline constexpr HostId kInvalidHost = HostId::invalid();
inline constexpr PeerId kInvalidPeer = PeerId::invalid();
inline constexpr LocalNodeId kInvalidLocalNode = LocalNodeId::invalid();

// An edge whose endpoints live in a strong id domain (tree edges in peer or
// closure-local ids). Graph's raw Edge stays the kernel-layer type.
template <class Id>
struct TypedEdge {
  Id u = Id::invalid();
  Id v = Id::invalid();
  double weight = 0;

  friend bool operator==(const TypedEdge&, const TypedEdge&) = default;
};

using PeerEdge = TypedEdge<PeerId>;
using LocalEdge = TypedEdge<LocalNodeId>;

// --- typed-index containers -----------------------------------------------

// std::vector indexable only by `Id` — the SoA arrays (peer_hosts_, version
// vectors, per-peer cache entries) become self-documenting and cannot be
// indexed with the wrong domain (tests/compile_fail/wrong_domain_index.cpp).
// Iteration (begin/end) walks the elements, not the ids, so range-for and
// <algorithm> use are unchanged; kernels take the flat storage via data().
template <class Id, class T>
class IdVector {
 public:
  using value_type = T;

  IdVector() = default;
  explicit IdVector(std::size_t count) : data_(count) {}
  IdVector(std::size_t count, const T& value) : data_(count, value) {}

  T& operator[](Id id) {
    ACE_DCHECK_LT(id.value(), data_.size());
    return data_[id.value()];
  }
  const T& operator[](Id id) const {
    ACE_DCHECK_LT(id.value(), data_.size());
    return data_[id.value()];
  }

  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }
  void clear() noexcept { data_.clear(); }
  void resize(std::size_t count) { data_.resize(count); }
  void resize(std::size_t count, const T& value) { data_.resize(count, value); }
  void assign(std::size_t count, const T& value) { data_.assign(count, value); }
  void reserve(std::size_t count) { data_.reserve(count); }
  void push_back(const T& value) { data_.push_back(value); }
  void push_back(T&& value) { data_.push_back(std::move(value)); }
  template <class... Args>
  T& emplace_back(Args&&... args) {
    return data_.emplace_back(std::forward<Args>(args)...);
  }
  void pop_back() { data_.pop_back(); }

  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }
  auto begin() noexcept { return data_.begin(); }
  auto begin() const noexcept { return data_.begin(); }
  auto end() noexcept { return data_.end(); }
  auto end() const noexcept { return data_.end(); }
  T& front() { return data_.front(); }
  const T& front() const { return data_.front(); }
  T& back() { return data_.back(); }
  const T& back() const { return data_.back(); }

  friend bool operator==(const IdVector&, const IdVector&) = default;

 private:
  std::vector<T> data_;
};

// Non-owning view with the same domain-checked indexing; T may be const.
template <class Id, class T>
class IdSpan {
 public:
  constexpr IdSpan() = default;
  constexpr IdSpan(T* data, std::size_t size) noexcept : span_{data, size} {}
  // NOLINTNEXTLINE(google-explicit-constructor): view adaptor, like span.
  IdSpan(IdVector<Id, std::remove_const_t<T>>& v) noexcept
    requires(!std::is_const_v<T>)
      : span_{v.data(), v.size()} {}
  // NOLINTNEXTLINE(google-explicit-constructor): view adaptor, like span.
  IdSpan(const IdVector<Id, std::remove_const_t<T>>& v) noexcept
    requires(std::is_const_v<T>)
      : span_{v.data(), v.size()} {}

  T& operator[](Id id) const {
    ACE_DCHECK_LT(id.value(), span_.size());
    return span_[id.value()];
  }

  std::size_t size() const noexcept { return span_.size(); }
  bool empty() const noexcept { return span_.empty(); }
  T* data() const noexcept { return span_.data(); }
  auto begin() const noexcept { return span_.begin(); }
  auto end() const noexcept { return span_.end(); }

 private:
  std::span<T> span_;
};

}  // namespace ace

template <class Tag, class Underlying>
struct std::hash<ace::StrongId<Tag, Underlying>> {
  std::size_t operator()(
      ace::StrongId<Tag, Underlying> id) const noexcept {
    return std::hash<Underlying>{}(id.value());
  }
};
