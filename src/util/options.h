// Bench/example configuration. Every knob can be set three ways, in
// increasing priority: built-in default, ACE_* environment variable,
// --key=value command-line argument. This keeps `for b in bench/*; do $b;
// done` runnable with sane defaults while allowing paper-scale runs.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace ace {

class Options {
 public:
  Options() = default;
  // Parses --key=value / --flag arguments; unknown positional arguments
  // throw. Environment variables named ACE_<KEY> (upper-cased, dashes to
  // underscores) are consulted by the getters when no CLI value exists.
  Options(int argc, const char* const* argv);

  // Explicit override (tests).
  void set(const std::string& key, std::string value);

  std::optional<std::string> raw(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  // `--help` or `-h` present.
  bool help_requested() const noexcept { return help_; }

 private:
  std::map<std::string, std::string> values_;
  bool help_ = false;
};

// The env-var name for a key: "phys-nodes" -> "ACE_PHYS_NODES".
std::string env_name_for(const std::string& key);

}  // namespace ace
