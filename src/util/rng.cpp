#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace ace {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument{"next_below: bound must be > 0"};
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument{"uniform_int: lo > hi"};
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  const std::uint64_t draw = (span == 0) ? next() : next_below(span);
  return lo + static_cast<std::int64_t>(draw);
}

double Rng::uniform_real(double lo, double hi) {
  if (!(lo <= hi)) throw std::invalid_argument{"uniform_real: lo > hi"};
  return lo + (hi - lo) * next_double();
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

void Rng::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaull, 0xd5a61266f0c9392cull, 0xa9582618e03fc9aaull,
      0x39abdc4529b1661cull};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (const std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ull << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

Rng Rng::fork() { return Rng{next()}; }

Rng Rng::stream(std::uint64_t master, std::string_view name) {
  // FNV-1a over the stream name, then splitmix64-mixed with the master
  // seed. Pure function of (master, name): re-ordering or removing other
  // streams cannot shift this one.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  std::uint64_t state = master ^ h;
  return Rng{splitmix64(state)};
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument{"sample_indices: k > n"};
  // Floyd's algorithm: for j in [n-k, n), pick t in [0, j]; insert t or j.
  std::vector<std::size_t> out;
  out.reserve(k);
  auto contains = [&out](std::size_t v) {
    for (const std::size_t x : out)
      if (x == v) return true;
    return false;
  };
  for (std::size_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::size_t>(next_below(j + 1));
    out.push_back(contains(t) ? j : t);
  }
  return out;
}

double exponential(Rng& rng, double mean) {
  if (!(mean > 0)) throw std::invalid_argument{"exponential: mean must be > 0"};
  double u;
  do {
    u = rng.next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double standard_normal(Rng& rng) {
  double u1;
  do {
    u1 = rng.next_double();
  } while (u1 <= 0.0);
  const double u2 = rng.next_double();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double lognormal_mean_var(Rng& rng, double mean, double variance) {
  if (!(mean > 0) || !(variance > 0))
    throw std::invalid_argument{"lognormal_mean_var: mean/variance must be > 0"};
  // If X ~ LogNormal(mu, sigma^2) then
  //   E[X]  = exp(mu + sigma^2/2)
  //   Var[X] = (exp(sigma^2) - 1) exp(2 mu + sigma^2)
  // Solve for mu, sigma given the target mean/variance.
  const double sigma2 = std::log(1.0 + variance / (mean * mean));
  const double mu = std::log(mean) - sigma2 / 2.0;
  return std::exp(mu + std::sqrt(sigma2) * standard_normal(rng));
}

double pareto(Rng& rng, double x_m, double alpha) {
  if (!(x_m > 0) || !(alpha > 0))
    throw std::invalid_argument{"pareto: parameters must be > 0"};
  double u;
  do {
    u = rng.next_double();
  } while (u <= 0.0);
  return x_m / std::pow(u, 1.0 / alpha);
}

ZipfDistribution::ZipfDistribution(std::size_t n, double exponent)
    : exponent_{exponent} {
  if (n == 0) throw std::invalid_argument{"ZipfDistribution: n must be > 0"};
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = sum;
  }
  for (auto& v : cdf_) v /= sum;
  cdf_.back() = 1.0;  // guard against floating point shortfall
}

std::size_t ZipfDistribution::operator()(Rng& rng) const {
  const double u = rng.next_double();
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

}  // namespace ace
