#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/check.h"

namespace ace {

void RunningStats::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  const double total = n + m;
  m2_ += other.m2_ + delta * delta * n * m / total;
  mean_ = (n * mean_ + m * other.mean_) / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) throw std::invalid_argument{"percentile: empty sample"};
  if (p < 0.0 || p > 100.0)
    throw std::invalid_argument{"percentile: p out of [0, 100]"};
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, counts_(bins, 0) {
  if (!(lo < hi)) throw std::invalid_argument{"Histogram: lo must be < hi"};
  if (bins == 0) throw std::invalid_argument{"Histogram: bins must be > 0"};
}

void Histogram::add(double x) noexcept {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(
      frac * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  ACE_CHECK_LT(bin, counts_.size()) << " — Histogram::bin_count out of range";
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range{"Histogram::bin_lo"};
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const {
  return bin_lo(bin) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (const std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar =
        static_cast<std::size_t>(static_cast<double>(counts_[b]) /
                                 static_cast<double>(peak) *
                                 static_cast<double>(width));
    out << '[' << bin_lo(b) << ", " << bin_hi(b) << ") "
        << std::string(bar, '#') << ' ' << counts_[b] << '\n';
  }
  return out.str();
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size())
    throw std::invalid_argument{"linear_fit: size mismatch"};
  if (xs.size() < 2) throw std::invalid_argument{"linear_fit: need >= 2 points"};
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) return fit;  // vertical line; report zero fit
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double r = ys[i] - (fit.intercept + fit.slope * xs[i]);
    ss_res += r * r;
  }
  fit.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

double power_law_alpha_mle(std::span<const std::size_t> degrees,
                           std::size_t x_min) {
  double log_sum = 0.0;
  std::size_t n = 0;
  for (const std::size_t d : degrees) {
    if (d < x_min) continue;
    log_sum += std::log(static_cast<double>(d) /
                        (static_cast<double>(x_min) - 0.5));
    ++n;
  }
  if (n < 2 || log_sum <= 0.0) return 0.0;
  return 1.0 + static_cast<double>(n) / log_sum;
}

std::map<std::size_t, std::size_t> frequency_table(
    std::span<const std::size_t> values) {
  std::map<std::size_t, std::size_t> freq;
  for (const std::size_t v : values) ++freq[v];
  return freq;
}

}  // namespace ace
