// Thread-safety annotation macros mapping to Clang's -Wthread-safety
// attributes (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) and
// expanding to nothing everywhere else. The analysis proves lock discipline
// at compile time: a member declared ACE_GUARDED_BY(mutex) can only be
// touched while `mutex` is held, a function declared ACE_REQUIRES(mutex)
// can only be called with it held, and violations are hard errors in the CI
// thread-safety job (clang, -Werror=thread-safety). GCC builds see plain
// declarations, so the macros cost nothing in the default toolchain.
//
// The annotated primitives built on these macros live in util/sync.h
// (Mutex, MutexLock, CondVar for real locks; ThreadOwnership for
// single-thread-at-a-time structures). Annotation targets and the lint
// rules that complement the compiler analysis are described in
// DESIGN.md §12.
#pragma once

#if defined(__clang__)
#define ACE_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define ACE_THREAD_ANNOTATION_ATTRIBUTE_(x)
#endif

// Declares a class to be a capability ("mutex", "thread role", ...). The
// name appears in diagnostics: "acquiring mutex 'mu' requires ...".
#define ACE_CAPABILITY(x) ACE_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

// Declares an RAII class whose lifetime acquires/releases a capability
// (constructor ACE_ACQUIRE, destructor ACE_RELEASE).
#define ACE_SCOPED_CAPABILITY ACE_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

// Data members: readable/writable only while the capability is held ...
#define ACE_GUARDED_BY(x) ACE_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))
// ... or, for a pointer member, the pointed-to data is guarded (the pointer
// itself may be read freely).
#define ACE_PT_GUARDED_BY(x) ACE_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

// Functions: the caller must hold the capability (exclusively / shared).
#define ACE_REQUIRES(...) \
  ACE_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))
#define ACE_REQUIRES_SHARED(...) \
  ACE_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

// Functions that acquire / release the capability themselves.
#define ACE_ACQUIRE(...) \
  ACE_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define ACE_ACQUIRE_SHARED(...) \
  ACE_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))
#define ACE_RELEASE(...) \
  ACE_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))
#define ACE_RELEASE_SHARED(...) \
  ACE_THREAD_ANNOTATION_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))

// Function that acquires the capability only when returning `result`
// (e.g. ACE_TRY_ACQUIRE(true) on a try_lock that returns true on success).
#define ACE_TRY_ACQUIRE(...) \
  ACE_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

// The caller must NOT hold the capability (catches self-deadlock on
// non-reentrant mutexes).
#define ACE_EXCLUDES(...) \
  ACE_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

// Runtime assertion that the capability is held; tells the analysis to
// treat it as held from here on (ThreadOwnership::assert_held).
#define ACE_ASSERT_CAPABILITY(x) \
  ACE_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))

// Function returning a reference to the named capability.
#define ACE_RETURN_CAPABILITY(x) \
  ACE_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

// Escape hatch: disables the analysis for one function. Every use needs a
// comment explaining why the discipline holds anyway.
#define ACE_NO_THREAD_SAFETY_ANALYSIS \
  ACE_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)
