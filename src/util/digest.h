// State digests for bitwise-reproducible simulation. Every protocol
// subsystem exposes digest_into(Fnv1a&); the engine combines them into a
// StateDigest whose named components let a divergence between two runs be
// attributed to the first subsystem that differs (overlay adjacency, cost
// tables, forwarding trees, event queue), not just "the run differed".
//
// Two hashing modes, chosen per collection:
//   * order-sensitive  — Fnv1a chaining, for data whose order is meaningful
//     (BFS discovery order, sorted flooding sets, event pop order);
//   * order-insensitive — UnorderedDigest commutative accumulation, for data
//     with set semantics whose in-memory order is history-dependent
//     (adjacency lists after edge removals, re-probed cost tables).
//
// All byte feeding is explicit little-endian, so a digest value is stable
// across platforms, standard libraries, and ASLR/hash-seed perturbations —
// which is exactly what tools/determinism_check.py asserts.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ace {

// FNV-1a, 64-bit. Not cryptographic — a fast, dependency-free fingerprint
// with stable cross-platform output.
class Fnv1a {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;

  void update_byte(std::uint8_t b) noexcept {
    hash_ = (hash_ ^ b) * kPrime;
  }
  // Feeds the 8 bytes of `x` little-endian regardless of host endianness.
  void update(std::uint64_t x) noexcept {
    for (int i = 0; i < 8; ++i) update_byte(static_cast<std::uint8_t>(x >> (8 * i)));
  }
  void update(std::string_view s) noexcept {
    for (const char c : s) update_byte(static_cast<std::uint8_t>(c));
    update(static_cast<std::uint64_t>(s.size()));  // length-delimit
  }
  // Strong ids (util/strong_id.h) feed their underlying value, so a digest
  // is byte-identical to the raw-integer feed the id replaced.
  template <class T>
    requires requires(const T& t) {
      typename T::strong_id_tag;
      { t.value() } -> std::convertible_to<std::uint64_t>;
    }
  void update(const T& id) noexcept {
    update(static_cast<std::uint64_t>(id.value()));
  }
  // Hashes the IEEE-754 bit pattern; +0.0 and -0.0 collapse to one value so
  // algebraically-equal states digest equally.
  void update_double(double d) noexcept;

  std::uint64_t value() const noexcept { return hash_; }

  static std::uint64_t hash(std::string_view s) noexcept {
    Fnv1a h;
    h.update(s);
    return h.value();
  }

 private:
  std::uint64_t hash_ = kOffsetBasis;
};

// Commutative accumulator: add() element hashes in any order, get one
// canonical value. Combines sum and xor (either alone is too collision-prone
// for near-identical multisets) plus the element count.
class UnorderedDigest {
 public:
  void add(std::uint64_t element_hash) noexcept {
    sum_ += element_hash;
    xor_ ^= element_hash;
    ++count_;
  }
  std::uint64_t value() const noexcept;

 private:
  std::uint64_t sum_ = 0;
  std::uint64_t xor_ = 0;
  std::uint64_t count_ = 0;
};

// One run's state fingerprint at a phase boundary: named component digests
// in a fixed order. Components are compared positionally so a divergence
// names the first subsystem that differs.
struct StateDigest {
  std::vector<std::pair<std::string, std::uint64_t>> components;

  void add(std::string name, std::uint64_t value) {
    components.emplace_back(std::move(name), value);
  }
  // Order-sensitive combination of every component (names included).
  std::uint64_t combined() const noexcept;

  friend bool operator==(const StateDigest&, const StateDigest&) = default;
};

// Fixed-width lowercase hex (16 digits), the serialization used by digest
// traces and golden tests.
std::string digest_hex(std::uint64_t value);

// Name of the first component whose value (or name) differs, or
// "component-set" when one digest has components the other lacks. Empty
// string when the digests are identical.
std::string first_divergence(const StateDigest& a, const StateDigest& b);

// ACE_CHECK-fatal unless the two digests are identical; the failure message
// names the first diverging component and both values, so a broken
// determinism invariant is attributable immediately.
void check_state_digests_equal(const StateDigest& expected,
                               const StateDigest& actual);

// Labeled sequence of phase-boundary digests collected over a run, written
// as CSV (label,component,digest). Two runs of the same seed must produce
// byte-identical traces; tools/determinism_check.py diffs these files.
class DigestTrace {
 public:
  void record(std::string_view label, const StateDigest& digest);
  void record(std::string_view label, std::string_view component,
              std::uint64_t value);
  // Appends every row of `other` after this trace's rows. Used by the
  // parallel trial runner: each trial records into a private trace, and the
  // per-trial traces are merged in trial-index order — byte-identical to
  // the trace a sequential run records directly.
  void extend(const DigestTrace& other);

  std::size_t rows() const noexcept { return rows_.size(); }
  std::string csv() const;
  // Returns false (and logs nothing) when the file cannot be opened.
  bool write(const std::string& path) const;
  // Same, prefixed with `# key: value` provenance comment lines (the
  // TableWriter CSV format), so a digest trace on disk records the build,
  // seed, and transport mode that produced it.
  bool write(const std::string& path,
             const std::vector<std::pair<std::string, std::string>>&
                 provenance) const;

 private:
  struct Row {
    std::string label;
    std::string component;
    std::uint64_t value;
  };
  std::vector<Row> rows_;
};

}  // namespace ace
