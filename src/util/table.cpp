#include "util/table.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ace {

TableWriter::TableWriter(std::string title, std::vector<std::string> columns)
    : title_{std::move(title)}, columns_{std::move(columns)} {
  if (columns_.empty())
    throw std::invalid_argument{"TableWriter: need at least one column"};
}

void TableWriter::set_precision(int digits) {
  if (digits < 0 || digits > 12)
    throw std::invalid_argument{"TableWriter: precision out of range"};
  precision_ = digits;
}

void TableWriter::set_provenance(
    std::vector<std::pair<std::string, std::string>> entries) {
  provenance_ = std::move(entries);
}

void TableWriter::add_row(std::vector<Cell> cells) {
  if (cells.size() != columns_.size())
    throw std::invalid_argument{"TableWriter: row width mismatch"};
  rows_.push_back(std::move(cells));
}

std::string TableWriter::render_cell(const Cell& cell) const {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&cell))
    return std::to_string(*i);
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision_) << std::get<double>(cell);
  return out.str();
}

std::string TableWriter::ascii() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c)
    widths[c] = columns_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(render_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : "  ") << std::left
          << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    out << '\n';
  };
  emit_row(columns_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    rule += widths[c] + (c == 0 ? 0 : 2);
  out << std::string(rule, '-') << '\n';
  for (const auto& row : rendered) emit_row(row);
  return out.str();
}

namespace {
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (const char ch : field) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}
}  // namespace

std::string TableWriter::csv() const {
  std::ostringstream out;
  for (const auto& [key, value] : provenance_)
    out << "# " << key << ": " << value << '\n';
  for (std::size_t c = 0; c < columns_.size(); ++c)
    out << (c == 0 ? "" : ",") << csv_escape(columns_[c]);
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      out << (c == 0 ? "" : ",") << csv_escape(render_cell(row[c]));
    out << '\n';
  }
  return out.str();
}

void TableWriter::print(std::ostream& out, const std::string& csv_path) const {
  out << ascii() << '\n';
  if (!csv_path.empty()) {
    std::ofstream file{csv_path};
    if (!file) throw std::runtime_error{"TableWriter: cannot open " + csv_path};
    file << csv();
  }
}

std::string fixed(double value, int digits) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(digits) << value;
  return out.str();
}

}  // namespace ace
