// CSV provenance: every figure CSV the benches emit carries `# key: value`
// comment lines identifying the exact build (git describe, build type) and
// run (seed, config digest) that produced it, so any plotted number can be
// traced back to a reproducible command. See DESIGN.md, "Determinism &
// Reproducibility".
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ace {

using ProvenanceEntries = std::vector<std::pair<std::string, std::string>>;

// Build-level entries: git-describe and build-type (configure-time values).
ProvenanceEntries build_provenance();

// Build-level entries plus the run's master seed and, when nonzero, the
// FNV digest of the experiment config that produced the table.
ProvenanceEntries run_provenance(std::uint64_t seed,
                                 std::uint64_t config_digest = 0);

}  // namespace ace
