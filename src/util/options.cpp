#include "util/options.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace ace {

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0)
      throw std::invalid_argument{"Options: unexpected argument '" + arg +
                                  "' (use --key=value)"};
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq == std::string::npos) {
      values_[body] = "true";  // bare flag
    } else {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    }
  }
  // google-benchmark passes --benchmark_* flags through; tolerate them by
  // simply storing them like any other key.
}

void Options::set(const std::string& key, std::string value) {
  values_[key] = std::move(value);
}

std::string env_name_for(const std::string& key) {
  std::string name = "ACE_";
  for (const char ch : key) {
    if (ch == '-' || ch == '.')
      name += '_';
    else
      name += static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
  }
  return name;
}

std::optional<std::string> Options::raw(const std::string& key) const {
  if (const auto it = values_.find(key); it != values_.end())
    return it->second;
  if (const char* env = std::getenv(env_name_for(key).c_str()))
    return std::string{env};
  return std::nullopt;
}

std::string Options::get_string(const std::string& key,
                                const std::string& fallback) const {
  return raw(key).value_or(fallback);
}

std::int64_t Options::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto value = raw(key);
  if (!value) return fallback;
  try {
    return std::stoll(*value);
  } catch (const std::exception&) {
    throw std::invalid_argument{"Options: '" + key + "' is not an integer: " +
                                *value};
  }
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto value = raw(key);
  if (!value) return fallback;
  try {
    return std::stod(*value);
  } catch (const std::exception&) {
    throw std::invalid_argument{"Options: '" + key + "' is not a number: " +
                                *value};
  }
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  const auto value = raw(key);
  if (!value) return fallback;
  std::string lower = *value;
  std::transform(lower.begin(), lower.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (lower == "1" || lower == "true" || lower == "yes" || lower == "on")
    return true;
  if (lower == "0" || lower == "false" || lower == "no" || lower == "off")
    return false;
  throw std::invalid_argument{"Options: '" + key + "' is not a boolean: " +
                              *value};
}

}  // namespace ace
