// Deterministic random number generation and the distributions used by the
// ACE reproduction: every simulation component draws from an explicitly
// seeded Rng so that experiments are exactly repeatable across runs.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace ace {

// splitmix64: used to expand a single 64-bit seed into the xoshiro state.
// Reference: Sebastiano Vigna, public-domain implementation.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

// xoshiro256** 1.0 — fast, high-quality, 256-bit state generator.
// Satisfies the UniformRandomBitGenerator concept so it can be used with
// <random> distributions as well.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  // Uniform double in [0, 1).
  double next_double() noexcept;

  // Uniform integer in [0, bound) using Lemire's rejection method
  // (unbiased). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  // Jump: advances the generator 2^128 steps; used to derive independent
  // streams for parallel components sharing one master seed.
  void jump() noexcept;

  // Derive an independent child generator (seeded from this stream).
  Rng fork();

  // Named stream derived from a master seed: the stream's state depends
  // only on (master, name), never on how many draws or forks other
  // components performed. Components that must not perturb each other
  // (churn vs. query workload) each take their own named stream, so
  // enabling one leaves the sequences of the others bit-identical.
  static Rng stream(std::uint64_t master, std::string_view name);

  // Fisher-Yates shuffle of a span.
  template <typename T>
  void shuffle(std::span<T> values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  // Sample k distinct indices from [0, n) (Floyd's algorithm, O(k)).
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  std::uint64_t s_[4];
};

// Exponential distribution with the given mean (NOT rate). mean > 0.
double exponential(Rng& rng, double mean);

// Log-normal distribution parameterized by the desired mean and variance of
// the *resulting* distribution (not of the underlying normal). Used for
// peer lifetimes: the paper uses mean 10 minutes, variance = mean/2.
double lognormal_mean_var(Rng& rng, double mean, double variance);

// Standard normal via Box-Muller (single value; simple and sufficient here).
double standard_normal(Rng& rng);

// Pareto distribution with scale x_m > 0 and shape alpha > 0.
double pareto(Rng& rng, double x_m, double alpha);

// Zipf sampler over ranks [0, n): P(k) proportional to 1/(k+1)^s.
// Precomputes the CDF once; sampling is O(log n).
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double exponent);

  std::size_t operator()(Rng& rng) const;
  std::size_t size() const noexcept { return cdf_.size(); }
  double exponent() const noexcept { return exponent_; }

 private:
  std::vector<double> cdf_;
  double exponent_;
};

}  // namespace ace
